#!/usr/bin/env python3
"""Validate BENCH_*.json bench reports against the vpic-bench-v1 schema.

Usage:
    check_bench_schema.py [--require BENCH:field,field...] FILE...

Every file (the shell expands the BENCH_*.json glob) must parse as JSON,
carry schema "vpic-bench-v1", a bench name matching its BENCH_<name>.json
filename, and a non-empty record list whose records all repeat the bench
name. `--require bench:fields` additionally pins bench-specific fields on
every record of that bench (repeatable). This is the CI-side twin of
vpic::bench::validate_bench_report (bench/bench_common.hpp), which benches
run on their own report before exiting.
"""
import argparse
import json
import os
import sys


def fail(path, msg):
    print(f"FAIL {path}: {msg}", file=sys.stderr)
    return False


def check(path, required):
    try:
        with open(path) as f:
            d = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"unreadable or not JSON: {e}")

    if d.get("schema") != "vpic-bench-v1":
        return fail(path, f"schema is {d.get('schema')!r}")
    bench = d.get("bench")
    expect = os.path.basename(path)
    if not (expect.startswith("BENCH_") and expect.endswith(".json")):
        return fail(path, "filename is not BENCH_<name>.json")
    if bench != expect[len("BENCH_"):-len(".json")]:
        return fail(path, f"bench {bench!r} does not match filename")
    records = d.get("records")
    if not isinstance(records, list) or not records:
        return fail(path, "empty or missing record list")
    for i, r in enumerate(records):
        if r.get("bench") != bench:
            return fail(path, f"record {i} bench is {r.get('bench')!r}")
    # Required fields must appear on at least one record (summary rows
    # carry fields the per-mode rows do not).
    for field in required.get(bench, []):
        if not any(field in r for r in records):
            return fail(path, f"no record carries required '{field}'")
    print(f"OK   {path}: {len(records)} records")
    return True


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("files", nargs="+")
    ap.add_argument("--require", action="append", default=[],
                    metavar="BENCH:F1,F2", help="per-bench required fields")
    args = ap.parse_args()

    required = {}
    for spec in args.require:
        bench, _, fields = spec.partition(":")
        required.setdefault(bench, []).extend(
            f for f in fields.split(",") if f)

    ok = all([check(p, required) for p in args.files])
    print(f"{len(args.files)} report(s) checked")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
