// Tests for vpic::farm (src/farm, docs/FARM.md):
//
//   * wire framing: encode/decode round trips, incomplete buffers,
//     oversize-header rejection, socketpair transport,
//   * scheduler lifecycle: submit validation, run-to-completion,
//     weighted fair interleaving, priority preemption,
//   * THE acceptance property: a job preempted (checkpoint + engine
//     release) and resumed mid-run finishes bit-identical to an
//     uninterrupted run of the same deck,
//   * steering: pause/resume/cancel (with ring purge), resume across
//     Scheduler instances (crash recovery via a surviving ring),
//   * StatusBus: command surface and the vpic-bench-v1 status envelope
//     over a live localhost socket,
//   * per-job prof counter scoping ("job.<name>.*").
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "ckpt/ring.hpp"
#include "core/core.hpp"
#include "farm/farm.hpp"
#include "prof/prof.hpp"

namespace core = vpic::core;
namespace farm = vpic::farm;
namespace pk = vpic::pk;
namespace prof = vpic::prof;
namespace wire = vpic::farm::wire;
namespace fs = std::filesystem;

namespace {

class PkEnv : public ::testing::Environment {
 public:
  // One kernel thread: the bit-identity test compares checkpoint bytes,
  // and float-atomic deposits are nondeterministic with wider teams. Farm
  // worker threads are independent of this setting. The tune cache is
  // pinned off: a stale .vpic_tune.json can flip sort/push dispatch
  // between the interrupted and uninterrupted runs being compared.
  void SetUp() override {
    setenv("VPIC_TUNE", "off", 1);
    pk::initialize(1);
  }
};
[[maybe_unused]] const auto* const env =
    ::testing::AddGlobalTestEnvironment(new PkEnv);

fs::path scratch(const std::string& tag) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("vpic_farm_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Small LPI deck, cheap enough for many-job farm runs.
core::Simulation make_lpi_small(std::uint64_t seed = 42) {
  core::decks::LpiParams p;
  p.nx = 12;
  p.ny = 4;
  p.nz = 4;
  p.ppc = 2;
  p.sort_interval = 10;
  p.seed = seed;
  auto sim = core::decks::make_lpi(p);
  sim.config().energy_interval = 5;
  return sim;
}

farm::JobSpec lpi_job(const std::string& name, std::int64_t steps,
                      std::uint64_t seed = 42) {
  farm::JobSpec spec;
  spec.name = name;
  spec.make = [seed] { return make_lpi_small(seed); };
  spec.total_steps = steps;
  return spec;
}

std::vector<char> read_bytes(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

/// Poll a job's status until `pred` holds or ~5 s elapse.
template <class Pred>
bool poll_status(farm::Scheduler& s, const std::string& name, Pred pred) {
  for (int i = 0; i < 500; ++i) {
    const auto st = s.status(name);
    if (st && pred(*st)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

}  // namespace

// ---- wire framing ---------------------------------------------------

TEST(FarmWire, EncodeDecodeRoundTrip) {
  const std::string payload = "status please\n\twith bytes \x01\x02";
  const std::string framed = wire::encode_frame(payload);
  ASSERT_EQ(framed.size(), payload.size() + 4);
  std::string out;
  EXPECT_EQ(wire::decode_frame(framed, out), framed.size());
  EXPECT_EQ(out, payload);

  // Two concatenated frames decode one at a time.
  const std::string two = framed + wire::encode_frame("second");
  std::string first;
  const std::size_t used = wire::decode_frame(two, first);
  ASSERT_EQ(used, framed.size());
  EXPECT_EQ(first, payload);
  std::string second;
  EXPECT_EQ(wire::decode_frame(std::string_view(two).substr(used), second),
            4 + 6u);
  EXPECT_EQ(second, "second");
}

TEST(FarmWire, EmptyAndIncompleteFrames) {
  std::string out;
  EXPECT_EQ(wire::decode_frame("", out), 0u);          // no header yet
  EXPECT_EQ(wire::decode_frame("\x02\x00\x00", out), 0u);  // short header
  const std::string framed = wire::encode_frame("abcd");
  EXPECT_EQ(wire::decode_frame(framed.substr(0, 6), out), 0u);  // short body
  EXPECT_EQ(wire::decode_frame(wire::encode_frame(""), out), 4u);
  EXPECT_TRUE(out.empty());
}

TEST(FarmWire, OversizeHeaderRejected) {
  std::string hdr = "\xff\xff\xff\x7f";  // ~2 GiB announced
  std::string out;
  EXPECT_THROW((void)wire::decode_frame(hdr, out), std::length_error);
  // The socket reader refuses instead of throwing.
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ASSERT_TRUE(wire::send_frame(sv[0], "x"));  // sane frame first
  std::string got;
  EXPECT_TRUE(wire::recv_frame(sv[1], got));
  EXPECT_EQ(got, "x");
  ::send(sv[0], hdr.data(), 4, 0);
  EXPECT_FALSE(wire::recv_frame(sv[1], got));
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST(FarmWire, SocketpairTransport) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const std::string big(100000, 'q');
  ASSERT_TRUE(wire::send_frame(sv[0], big));
  ASSERT_TRUE(wire::send_frame(sv[0], ""));
  std::string got;
  ASSERT_TRUE(wire::recv_frame(sv[1], got));
  EXPECT_EQ(got, big);
  ASSERT_TRUE(wire::recv_frame(sv[1], got));
  EXPECT_TRUE(got.empty());
  ::close(sv[0]);
  EXPECT_FALSE(wire::recv_frame(sv[1], got));  // EOF
  ::close(sv[1]);
}

// ---- scheduler basics -----------------------------------------------

TEST(FarmScheduler, SubmitValidation) {
  const auto dir = scratch("validate");
  farm::Scheduler::Options opt;
  opt.ring_dir = (dir / "rings").string();
  farm::Scheduler s(opt);
  EXPECT_THROW(s.submit(farm::JobSpec{}), std::invalid_argument);  // no name
  auto no_factory = lpi_job("a", 10);
  no_factory.make = nullptr;
  EXPECT_THROW(s.submit(no_factory), std::invalid_argument);
  auto no_steps = lpi_job("a", 0);
  EXPECT_THROW(s.submit(no_steps), std::invalid_argument);
  s.submit(lpi_job("a", 4));
  EXPECT_THROW(s.submit(lpi_job("a", 4)), std::invalid_argument);  // dup
  EXPECT_FALSE(s.pause("nope"));
  EXPECT_FALSE(s.resume("nope"));
  EXPECT_FALSE(s.cancel("nope"));
  EXPECT_FALSE(s.status("nope").has_value());
  EXPECT_FALSE(s.wait("nope").has_value());
  s.wait_idle();
}

TEST(FarmScheduler, RunsJobsToCompletion) {
  const auto dir = scratch("complete");
  farm::Scheduler::Options opt;
  opt.max_concurrent = 2;
  opt.slice_steps = 8;
  opt.ring_dir = (dir / "rings").string();
  farm::Scheduler s(opt);
  std::atomic<int> completions{0};
  for (int i = 0; i < 3; ++i) {
    auto spec = lpi_job("job" + std::to_string(i), 20, 42 + i);
    spec.on_complete = [&completions](core::Simulation& sim) {
      EXPECT_EQ(sim.step_count(), 20);
      ++completions;
    };
    s.submit(spec);
  }
  for (int i = 0; i < 3; ++i) {
    const auto st = s.wait("job" + std::to_string(i));
    ASSERT_TRUE(st.has_value());
    EXPECT_EQ(st->state, farm::JobState::Completed);
    EXPECT_EQ(st->step, 20);
    EXPECT_GE(st->slices, 3);  // 20 steps / 8-step quantum
    EXPECT_GT(st->latency_s, 0.0);
    EXPECT_GT(st->field_energy, 0.0);
    EXPECT_FALSE(st->kinetic.empty());
  }
  EXPECT_EQ(completions.load(), 3);
  s.wait_idle();
}

TEST(FarmScheduler, WeightedFairShares) {
  const auto dir = scratch("wfq");
  farm::Scheduler::Options opt;
  opt.max_concurrent = 1;  // force the two jobs to share one worker
  opt.slice_steps = 4;
  opt.ring_dir = (dir / "rings").string();
  farm::Scheduler s(opt);
  std::mutex mu;
  std::vector<std::string> completion_order;
  auto track = [&](const std::string& name) {
    return [&, name](core::Simulation&) {
      std::lock_guard lk(mu);
      completion_order.push_back(name);
    };
  };
  auto light = lpi_job("light", 32);
  light.weight = 1;
  light.on_complete = track("light");
  auto heavy = lpi_job("heavy", 32);
  heavy.weight = 3;  // entitled to 3x the steps of `light` under contention
  heavy.on_complete = track("heavy");
  s.submit(light);
  s.submit(heavy);
  ASSERT_TRUE(s.wait("light").has_value());
  ASSERT_TRUE(s.wait("heavy").has_value());
  // Equal step totals, 3x the weight: the heavy job must finish first
  // (it is scheduled ~3 slices for every light slice).
  ASSERT_EQ(completion_order.size(), 2u);
  EXPECT_EQ(completion_order.front(), "heavy");
  const auto lst = s.status("light");
  const auto hst = s.status("heavy");
  ASSERT_TRUE(lst && hst);
  // vtime normalizes service by weight — both ran 32 steps, so the
  // weighted virtual clocks end at 32/1 vs 32/3.
  EXPECT_NEAR(lst->vtime, 32.0, 1e-9);
  EXPECT_NEAR(hst->vtime, 32.0 / 3.0, 1e-9);
}

TEST(FarmScheduler, PriorityPreemptsRunningJob) {
  const auto dir = scratch("prio");
  farm::Scheduler::Options opt;
  opt.max_concurrent = 1;
  opt.slice_steps = 4;
  opt.ring_dir = (dir / "rings").string();
  farm::Scheduler s(opt);
  s.submit(lpi_job("low", 200));
  ASSERT_TRUE(poll_status(s, "low", [](const farm::JobStatus& st) {
    return st.step > 0;
  }));
  auto high = lpi_job("high", 8);
  high.priority = 10;
  s.submit(high);
  const auto hst = s.wait("high");
  ASSERT_TRUE(hst.has_value());
  EXPECT_EQ(hst->state, farm::JobState::Completed);
  // The low job must have yielded the only worker: checkpointed to its
  // ring, released, and (by now or later) restored.
  const auto lst = s.status("low");
  ASSERT_TRUE(lst.has_value());
  EXPECT_LT(lst->step, 200);
  EXPECT_GE(lst->preemptions, 1);
  EXPECT_GE(lst->checkpoints, 1);
  ASSERT_TRUE(s.cancel("low"));
  ASSERT_TRUE(poll_status(s, "low", [](const farm::JobStatus& st) {
    return st.state == farm::JobState::Cancelled;
  }));
}

// ---- THE acceptance property: preempt + resume is bit-identical ------

TEST(FarmScheduler, PreemptResumeBitIdentical) {
  const auto dir = scratch("bit_identical");
  constexpr std::int64_t kSteps = 60;

  // Reference: the same deck, uninterrupted, checkpointed at the end.
  const fs::path ref_ckpt = dir / "ref.ckpt";
  {
    auto ref = make_lpi_small();
    ref.run(static_cast<int>(kSteps));
    ref.checkpoint(ref_ckpt.string());
  }

  // Farm run: force several checkpoint-and-release preemptions mid-run.
  const fs::path farm_ckpt = dir / "farm.ckpt";
  farm::Scheduler::Options opt;
  opt.max_concurrent = 1;
  opt.slice_steps = 8;
  opt.ring_dir = (dir / "rings").string();
  {
    farm::Scheduler s(opt);
    auto spec = lpi_job("victim", kSteps);
    spec.on_complete = [&farm_ckpt](core::Simulation& sim) {
      sim.checkpoint(farm_ckpt.string());
    };
    s.submit(spec);
    // Keep preempting until the job has been parked at least twice (each
    // park is a full checkpoint + engine teardown + factory rebuild +
    // ring restore on the next slice).
    for (int i = 0; i < 500; ++i) {
      const auto st = s.status("victim");
      ASSERT_TRUE(st.has_value());
      if (st->state == farm::JobState::Completed || st->preemptions >= 2)
        break;
      s.preempt("victim");
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    const auto st = s.wait("victim");
    ASSERT_TRUE(st.has_value());
    ASSERT_EQ(st->state, farm::JobState::Completed)
        << "error: " << st->error;
    EXPECT_GE(st->preemptions, 1);
    EXPECT_EQ(st->restores, st->preemptions);
    EXPECT_EQ(st->step, kSteps);
  }

  // The checkpoint format is memcmp-reproducible, so byte equality means
  // the full simulation state (fields, particles, RNG, history) matches.
  const auto ref_bytes = read_bytes(ref_ckpt);
  const auto farm_bytes = read_bytes(farm_ckpt);
  ASSERT_FALSE(ref_bytes.empty());
  ASSERT_EQ(ref_bytes.size(), farm_bytes.size());
  EXPECT_TRUE(ref_bytes == farm_bytes)
      << "preempted+resumed state diverged from the uninterrupted run";
}

// ---- steering -------------------------------------------------------

TEST(FarmScheduler, PauseFreezesAndResumeContinues) {
  const auto dir = scratch("pause");
  farm::Scheduler::Options opt;
  opt.max_concurrent = 1;
  opt.slice_steps = 4;
  opt.ring_dir = (dir / "rings").string();
  farm::Scheduler s(opt);
  s.submit(lpi_job("job", 400));
  ASSERT_TRUE(poll_status(s, "job", [](const farm::JobStatus& st) {
    return st.step > 0;
  }));
  ASSERT_TRUE(s.pause("job"));
  ASSERT_TRUE(poll_status(s, "job", [](const farm::JobStatus& st) {
    return st.state == farm::JobState::Paused;
  }));
  // wait_idle returns with the job paused (paused jobs don't hold it
  // open), and the step count stays frozen.
  s.wait_idle();
  const auto frozen = s.status("job");
  ASSERT_TRUE(frozen.has_value());
  const std::int64_t at = frozen->step;
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(s.status("job")->step, at);
  EXPECT_FALSE(s.resume("nope"));
  ASSERT_TRUE(s.resume("job"));
  const auto st = s.wait("job");
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->state, farm::JobState::Completed);
  EXPECT_EQ(st->step, 400);
  EXPECT_GE(st->checkpoints, 1);  // the pause parked to the ring
}

TEST(FarmScheduler, CancelDropPurgesRing) {
  const auto dir = scratch("cancel");
  farm::Scheduler::Options opt;
  opt.max_concurrent = 1;
  opt.slice_steps = 4;
  opt.ring_dir = (dir / "rings").string();
  farm::Scheduler s(opt);
  s.submit(lpi_job("keep", 400));
  s.submit(lpi_job("drop", 400));
  // Park both at least once so both rings have generations.
  for (const char* name : {"keep", "drop"}) {
    ASSERT_TRUE(poll_status(s, name, [](const farm::JobStatus& st) {
      return st.step > 0;
    }));
    s.preempt(name);
    ASSERT_TRUE(poll_status(s, name, [&](const farm::JobStatus& st) {
      return st.checkpoints >= 1;
    }));
  }
  ASSERT_TRUE(s.cancel("keep"));
  ASSERT_TRUE(s.cancel("drop", /*drop_checkpoints=*/true));
  for (const char* name : {"keep", "drop"})
    ASSERT_TRUE(poll_status(s, name, [](const farm::JobStatus& st) {
      return st.state == farm::JobState::Cancelled;
    }));
  const auto keep_gens =
      vpic::ckpt::GenerationRing((fs::path(opt.ring_dir) / "keep").string())
          .generations();
  const auto drop_gens =
      vpic::ckpt::GenerationRing((fs::path(opt.ring_dir) / "drop").string())
          .generations();
  EXPECT_FALSE(keep_gens.empty());  // plain cancel keeps the ring
  EXPECT_TRUE(drop_gens.empty());   // drop purges it
  // Cancelling a terminal job is a no-op.
  EXPECT_FALSE(s.cancel("drop"));
}

TEST(FarmScheduler, ResumeAcrossSchedulerInstances) {
  const auto dir = scratch("across");
  constexpr std::int64_t kSteps = 200;
  const fs::path ref_ckpt = dir / "ref.ckpt";
  {
    auto ref = make_lpi_small();
    ref.run(static_cast<int>(kSteps));
    ref.checkpoint(ref_ckpt.string());
  }
  farm::Scheduler::Options opt;
  opt.max_concurrent = 1;
  opt.slice_steps = 4;
  opt.ring_dir = (dir / "rings").string();
  {  // Farm #1: make progress, pause (parks to ring), shut down. The
     // huge step budget guarantees the pause lands before completion;
     // the parked step is a handful of slices, far below kSteps.
    farm::Scheduler s(opt);
    s.submit(lpi_job("job", 1000000));
    ASSERT_TRUE(poll_status(s, "job", [](const farm::JobStatus& st) {
      return st.step >= 4;
    }));
    ASSERT_TRUE(s.pause("job"));
    ASSERT_TRUE(poll_status(s, "job", [](const farm::JobStatus& st) {
      return st.state == farm::JobState::Paused;
    }));
  }
  const fs::path farm_ckpt = dir / "farm.ckpt";
  {  // Farm #2: same job name ⇒ same ring ⇒ restores and finishes.
    farm::Scheduler s(opt);
    auto spec = lpi_job("job", kSteps);
    spec.on_complete = [&farm_ckpt](core::Simulation& sim) {
      sim.checkpoint(farm_ckpt.string());
    };
    s.submit(spec);
    const auto st = s.wait("job");
    ASSERT_TRUE(st.has_value());
    ASSERT_EQ(st->state, farm::JobState::Completed) << st->error;
    EXPECT_GE(st->restores, 1);  // picked the ring up at submit
  }
  EXPECT_TRUE(read_bytes(ref_ckpt) == read_bytes(farm_ckpt));
}

// ---- elastic rescale ------------------------------------------------

TEST(FarmScheduler, RescaleMidRunResumesAtNewShape) {
  const auto dir = scratch("rescale");
  constexpr std::int64_t kSteps = 200;

  // Reference: the same deck, uninterrupted, untiled. The rescaled job
  // switches to tiled Stealing execution mid-run, so the deposit
  // grouping differs by float roundoff — energies match to a tolerance,
  // not bitwise.
  double ref_field = 0;
  std::vector<double> ref_kinetic;
  {
    auto ref = make_lpi_small();
    ref.run(static_cast<int>(kSteps));
    const auto e = ref.energies();
    ref_field = e.field;
    ref_kinetic.assign(e.species.begin(), e.species.end());
  }

  farm::Scheduler::Options opt;
  opt.max_concurrent = 1;
  opt.slice_steps = 6;
  opt.ring_dir = (dir / "rings").string();
  farm::Scheduler s(opt);
  s.submit(lpi_job("scale", kSteps));
  ASSERT_TRUE(poll_status(s, "scale", [](const farm::JobStatus& st) {
    return st.step > 0;
  }));

  EXPECT_FALSE(s.rescale("ghost", 2));  // unknown job
  EXPECT_FALSE(s.rescale("scale", 0));  // bad worker count
  ASSERT_TRUE(s.rescale("scale", 2, 4));

  const auto st = s.wait("scale");
  ASSERT_TRUE(st.has_value());
  ASSERT_EQ(st->state, farm::JobState::Completed) << st->error;
  EXPECT_EQ(st->step, kSteps);
  EXPECT_GE(st->rescales, 1);
  EXPECT_EQ(st->rescale_workers, 2);
  EXPECT_EQ(st->rescale_tiles, 4);
  // The rescale parked the resident engine (checkpoint + release) and the
  // next slice rebuilt it at the new shape from the ring.
  EXPECT_GE(st->checkpoints, 1);
  EXPECT_GE(st->restores, 1);

  EXPECT_NEAR(st->field_energy, ref_field, 1e-2 * std::abs(ref_field));
  ASSERT_EQ(st->kinetic.size(), ref_kinetic.size());
  for (std::size_t i = 0; i < ref_kinetic.size(); ++i)
    EXPECT_NEAR(st->kinetic[i], ref_kinetic[i],
                1e-2 * std::abs(ref_kinetic[i]));

  // The Stealing engine actually ran post-rescale: pool telemetry landed
  // in the job's counter namespace.
  EXPECT_GE(prof::counter_value("job.scale.steal.tasks_run"), 1u);

  // Terminal jobs refuse further rescales.
  EXPECT_FALSE(s.rescale("scale", 4));
}

TEST(FarmStatusBus, RescaleCommandSteersAndReports) {
  const auto dir = scratch("rescale_bus");
  farm::Scheduler::Options opt;
  opt.max_concurrent = 1;
  opt.slice_steps = 4;
  opt.ring_dir = (dir / "rings").string();
  farm::Scheduler s(opt);
  farm::StatusBus bus(s, 0);

  EXPECT_NE(bus.handle_command("rescale").find("usage"), std::string::npos);
  EXPECT_NE(bus.handle_command("rescale ghost 2").find("\"ok\":false"),
            std::string::npos);

  s.submit(lpi_job("job", 400));
  ASSERT_TRUE(poll_status(s, "job", [](const farm::JobStatus& st) {
    return st.step > 0;
  }));
  EXPECT_NE(bus.handle_command("rescale job 0").find("\"ok\":false"),
            std::string::npos);
  EXPECT_EQ(bus.handle_command("rescale job 2 4"), "{\"ok\":true}");
  ASSERT_TRUE(poll_status(s, "job", [](const farm::JobStatus& st) {
    return st.rescales >= 1;
  }));

  const std::string status = bus.handle_command("status");
  EXPECT_NE(status.find("\"rescales\":"), std::string::npos);
  EXPECT_NE(status.find("\"rescale_workers\":2"), std::string::npos);
  EXPECT_NE(status.find("\"rescale_tiles\":4"), std::string::npos);

  ASSERT_TRUE(s.cancel("job"));
  ASSERT_TRUE(poll_status(s, "job", [](const farm::JobStatus& st) {
    return st.state == farm::JobState::Cancelled;
  }));
}

// ---- per-job prof counter scoping -----------------------------------

TEST(FarmProf, CounterScopePrefixesThisThreadOnly) {
  prof::counter_add("farm_test.plain");
  {
    prof::CounterScope scope("job.t1.");
    prof::counter_add("farm_test.scoped");
    EXPECT_EQ(prof::counter_prefix(), "job.t1.");
    std::thread([] {
      // Sibling threads are unaffected by this thread's scope.
      EXPECT_TRUE(prof::counter_prefix().empty());
      prof::counter_add("farm_test.other");
    }).join();
  }
  EXPECT_TRUE(prof::counter_prefix().empty());
  EXPECT_GE(prof::counter_value("farm_test.plain"), 1u);
  EXPECT_GE(prof::counter_value("job.t1.farm_test.scoped"), 1u);
  EXPECT_EQ(prof::counter_value("farm_test.scoped"), 0u);
  EXPECT_GE(prof::counter_value("farm_test.other"), 1u);
}

TEST(FarmProf, JobsRecordScopedSliceCounters) {
  const auto dir = scratch("counters");
  farm::Scheduler::Options opt;
  opt.ring_dir = (dir / "rings").string();
  farm::Scheduler s(opt);
  s.submit(lpi_job("ctrjob", 12));
  const auto st = s.wait("ctrjob");
  ASSERT_TRUE(st.has_value());
  ASSERT_EQ(st->state, farm::JobState::Completed);
  EXPECT_GE(prof::counter_value("job.ctrjob.farm.slice"),
            static_cast<std::uint64_t>(st->slices));
}

TEST(FarmProf, TiledStealingJobExportsStealCountersInStatusPayload) {
  const auto dir = scratch("tilectrs");
  farm::Scheduler::Options opt;
  opt.ring_dir = (dir / "rings").string();
  opt.slice_steps = 6;
  farm::Scheduler s(opt);
  farm::JobSpec spec;
  spec.name = "tiledjob";
  spec.make = [] {
    auto sim = make_lpi_small(7);
    sim.config().tiles.enabled = true;
    sim.config().tiles.count = 2;
    sim.config().tiles.exec = core::TileExec::Stealing;
    sim.config().tiles.workers = 2;
    return sim;
  };
  spec.total_steps = 12;
  s.submit(spec);
  const auto st = s.wait("tiledjob");
  ASSERT_TRUE(st.has_value());
  ASSERT_EQ(st->state, farm::JobState::Completed) << st->error;
  // StealPool::run() reports steal.* on the calling (stepping) thread,
  // inside the slice's CounterScope — so pool telemetry for a tiled job
  // lands in the job's namespace without any farm-side plumbing.
  EXPECT_GE(prof::counter_value("job.tiledjob.steal.tasks_run"), 1u);
  EXPECT_GE(prof::counter_value("job.tiledjob.tiles.step"), 12u);
  // And the status envelope carries them per job (prefix stripped).
  farm::StatusBus bus(s, 0);
  const std::string payload = bus.handle_command("status");
  EXPECT_NE(payload.find("\"steal.tasks_run\":"), std::string::npos);
  EXPECT_NE(payload.find("\"tiles.step\":"), std::string::npos);
}

// ---- status bus -----------------------------------------------------

TEST(FarmStatusBus, CommandsAndStatusOverSocket) {
  const auto dir = scratch("bus");
  farm::Scheduler::Options opt;
  opt.max_concurrent = 1;
  opt.slice_steps = 4;
  opt.ring_dir = (dir / "rings").string();
  farm::Scheduler s(opt);
  farm::StatusBus bus(s, 0);
  ASSERT_GT(bus.port(), 0);

  farm::WireClient cli(bus.port());
  EXPECT_EQ(cli.request("ping"), "{\"ok\":true,\"pong\":true}");
  EXPECT_NE(cli.request("bogus").find("\"ok\":false"), std::string::npos);
  EXPECT_NE(cli.request("pause").find("missing job name"),
            std::string::npos);
  EXPECT_NE(cli.request("pause ghost").find("\"ok\":false"),
            std::string::npos);

  s.submit(lpi_job("steer\"me", 600));  // exercises JSON escaping too
  ASSERT_TRUE(poll_status(s, "steer\"me", [](const farm::JobStatus& st) {
    return st.step > 0;
  }));
  EXPECT_EQ(cli.request("pause steer\"me"), "{\"ok\":true}");
  ASSERT_TRUE(poll_status(s, "steer\"me", [](const farm::JobStatus& st) {
    return st.state == farm::JobState::Paused;
  }));
  EXPECT_EQ(cli.request("prio steer\"me 7"), "{\"ok\":true}");
  EXPECT_EQ(s.status("steer\"me")->priority, 7);

  const std::string status = cli.request("status");
  EXPECT_NE(status.find("\"schema\":\"vpic-bench-v1\""), std::string::npos);
  EXPECT_NE(status.find("\"bench\":\"farm_status\""), std::string::npos);
  EXPECT_NE(status.find("\"job\":\"steer\\\"me\""), std::string::npos);
  EXPECT_NE(status.find("\"state\":\"paused\""), std::string::npos);
  EXPECT_NE(status.find("\"counters\":{"), std::string::npos);

  EXPECT_EQ(cli.request("resume steer\"me"), "{\"ok\":true}");
  EXPECT_EQ(cli.request("cancel steer\"me drop"), "{\"ok\":true}");
  ASSERT_TRUE(poll_status(s, "steer\"me", [](const farm::JobStatus& st) {
    return st.state == farm::JobState::Cancelled;
  }));

  // A second concurrent client works (thread-per-connection server).
  farm::WireClient cli2(bus.port());
  EXPECT_EQ(cli2.request("ping"), "{\"ok\":true,\"pong\":true}");
}

TEST(FarmStatusBus, HandleCommandWithoutSocket) {
  farm::Scheduler s;
  farm::StatusBus bus(s, 0);
  EXPECT_EQ(bus.handle_command("cancel x what"),
            "{\"ok\":false,\"error\":\"cancel: unknown flag 'what'\"}");
  EXPECT_NE(bus.handle_command("prio x").find("missing integer"),
            std::string::npos);
  EXPECT_NE(bus.handle_command("status").find("\"records\":[]"),
            std::string::npos);
}
