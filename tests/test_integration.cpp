// Integration tests: the four vectorization strategies must agree on the
// physics; the decks must produce their signature behaviour (laser
// injection, Weibel growth, reconnection onset); sorting must interact
// correctly with a running simulation.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "core/core.hpp"

namespace core = vpic::core;
namespace pk = vpic::pk;
using pk::index_t;

namespace {

core::Simulation make_plasma(core::VectorStrategy strat,
                             vpic::sort::SortOrder order =
                                 vpic::sort::SortOrder::Standard,
                             int sort_interval = 0) {
  core::SimulationConfig cfg;
  cfg.grid = core::Grid(6, 6, 6, 6, 6, 6, 0);
  cfg.grid.dt = core::Grid::courant_dt(1, 1, 1, 0.6f);
  cfg.strategy = strat;
  cfg.sort_order = order;
  cfg.sort_interval = sort_interval;
  cfg.seed = 77;
  core::Simulation sim(cfg);
  const auto e = sim.add_species("e", -1.0f, 1.0f, 4000);
  const auto i = sim.add_species("i", 1.0f, 50.0f, 4000);
  sim.load_uniform_plasma(e, 4, 0.15f, 0.05f, 0.0f, -0.02f);
  sim.load_uniform_plasma(i, 4, 0.01f);
  return sim;
}

}  // namespace

TEST(StrategyEquivalence, SingleStepMomentaMatch) {
  auto ref = make_plasma(core::VectorStrategy::Auto);
  ref.step();
  for (auto strat : {core::VectorStrategy::Guided,
                     core::VectorStrategy::Manual,
                     core::VectorStrategy::AdHoc}) {
    auto sim = make_plasma(strat);
    sim.step();
    SCOPED_TRACE(core::to_string(strat));
    const auto& pr = ref.species(0);
    const auto& ps = sim.species(0);
    ASSERT_EQ(pr.np, ps.np);
    double max_du = 0, max_dx = 0;
    for (index_t n = 0; n < pr.np; ++n) {
      max_du = std::max<double>(
          max_du, std::abs(pr.p(n).ux - ps.p(n).ux) +
                      std::abs(pr.p(n).uy - ps.p(n).uy) +
                      std::abs(pr.p(n).uz - ps.p(n).uz));
      max_dx = std::max<double>(max_dx, std::abs(pr.p(n).dx - ps.p(n).dx));
      EXPECT_EQ(pr.p(n).i, ps.p(n).i) << "particle " << n;
    }
    // Manual/AdHoc reassociate and use Newton rsqrt: small fp drift only.
    EXPECT_LT(max_du, 5e-5);
    EXPECT_LT(max_dx, 5e-4);
  }
}

TEST(StrategyEquivalence, MultiStepEnergiesMatch) {
  const double ref = [&] {
    auto sim = make_plasma(core::VectorStrategy::Auto);
    sim.run(10);
    return sim.energies().total();
  }();
  for (auto strat : {core::VectorStrategy::Guided,
                     core::VectorStrategy::Manual,
                     core::VectorStrategy::AdHoc}) {
    auto sim = make_plasma(strat);
    sim.run(10);
    EXPECT_NEAR(sim.energies().total(), ref, 2e-4 * ref)
        << core::to_string(strat);
  }
}

TEST(StrategyEquivalence, AllStrategiesWithAllSortOrders) {
  for (auto strat : {core::VectorStrategy::Auto, core::VectorStrategy::Guided,
                     core::VectorStrategy::Manual,
                     core::VectorStrategy::AdHoc}) {
    for (auto order :
         {vpic::sort::SortOrder::Standard, vpic::sort::SortOrder::Strided,
          vpic::sort::SortOrder::TiledStrided}) {
      auto sim = make_plasma(strat, order, /*sort_interval=*/2);
      sim.run(6);
      EXPECT_TRUE(std::isfinite(sim.energies().total()))
          << core::to_string(strat) << "/" << vpic::sort::to_string(order);
    }
  }
}

TEST(Decks, LpiLaserInjectsFieldEnergy) {
  core::decks::LpiParams p;
  p.nx = 16;
  p.ny = 6;
  p.nz = 6;
  p.ppc = 2;
  auto sim = core::decks::make_lpi(p);
  const double e0 = sim.energies().field;
  sim.run(30);
  const auto e1 = sim.energies();
  EXPECT_GT(e1.field, e0 + 1e-6) << "laser antenna injected no energy";
  EXPECT_TRUE(std::isfinite(e1.total()));
}

TEST(Decks, LpiPlasmaOnlyInSlab) {
  core::decks::LpiParams p;
  p.nx = 20;
  p.ny = 4;
  p.nz = 4;
  p.ppc = 2;
  p.slab_begin = 0.5f;
  auto sim = core::decks::make_lpi(p);
  const auto& g = sim.grid();
  const auto& sp = sim.species(0);
  ASSERT_GT(sp.np, 0);
  for (index_t n = 0; n < sp.np; ++n) {
    int ix, iy, iz;
    g.cell_of(sp.p(n).i, ix, iy, iz);
    EXPECT_GE(ix, 11) << "particle outside the plasma slab";
  }
}

TEST(Decks, WeibelInstabilityGrowsMagneticEnergy) {
  core::decks::WeibelParams p;
  p.nx = 12;
  p.ny = 12;
  p.nz = 12;
  p.ppc = 8;
  p.u_beam = 0.4f;
  auto sim = core::decks::make_weibel(p);
  const double b0 = sim.fields().field_energy();
  sim.run(60);
  const double b1 = sim.fields().field_energy();
  // Counter-streaming beams must grow EM fields from noise by orders of
  // magnitude (filamentation instability).
  EXPECT_GT(b1, 100.0 * std::max(b0, 1e-12));
  EXPECT_TRUE(std::isfinite(b1));
}

TEST(Decks, ReconnectionHarrisEquilibriumRuns) {
  core::decks::ReconnectionParams p;
  p.nx = 12;
  p.ny = 4;
  p.nz = 12;
  p.ppc = 4;
  auto sim = core::decks::make_reconnection(p);
  // The Harris field must have opposite Bx signs above/below the sheet.
  const auto& g = sim.grid();
  const float b_low = sim.fields().bx(g.voxel(6, 2, 2));
  const float b_high = sim.fields().bx(g.voxel(6, 2, g.nz - 1));
  EXPECT_LT(b_low, 0.0f);
  EXPECT_GT(b_high, 0.0f);
  const double e0 = sim.energies().total();
  sim.run(20);
  const double e1 = sim.energies().total();
  EXPECT_TRUE(std::isfinite(e1));
  EXPECT_NEAR(e1, e0, 0.1 * e0);
}

TEST(SortIntegration, ParticlesSortedOnInterval) {
  auto sim = make_plasma(core::VectorStrategy::Auto,
                         vpic::sort::SortOrder::Standard,
                         /*sort_interval=*/5);
  sim.run(5);  // triggers a sort at step 5
  const auto keys = sim.species(0).cell_keys();
  EXPECT_TRUE(vpic::sort::is_sorted_ascending(keys));
}

TEST(SortIntegration, StridedOrderAfterSort) {
  auto sim = make_plasma(core::VectorStrategy::Auto,
                         vpic::sort::SortOrder::Strided,
                         /*sort_interval=*/5);
  sim.run(5);
  const auto keys = sim.species(0).cell_keys();
  EXPECT_TRUE(vpic::sort::is_strided_order(keys));
  EXPECT_FALSE(vpic::sort::is_sorted_ascending(keys));
}

TEST(SortIntegration, SortPreservesParticleSet) {
  auto sim = make_plasma(core::VectorStrategy::Auto);
  auto& sp = sim.species(0);
  double ke_before = sp.kinetic_energy();
  core::sort_particles(sp, vpic::sort::SortOrder::TiledStrided, 8);
  EXPECT_NEAR(sp.kinetic_energy(), ke_before, 1e-9 * std::abs(ke_before));
}

TEST(PushTiming, AccumulatesAcrossSteps) {
  auto sim = make_plasma(core::VectorStrategy::Auto);
  EXPECT_EQ(sim.push_seconds(), 0.0);
  sim.run(3);
  EXPECT_GT(sim.push_seconds(), 0.0);
}

TEST(Determinism, FreshSameDeckRunsAreBitIdentical) {
  // The determinism baseline the checkpoint bit-identity guarantee
  // (docs/CHECKPOINT.md, tests/test_ckpt.cpp) builds on: two fresh
  // simulations from the same deck must agree to the last bit. Requires
  // one kernel thread — the float-atomic current deposits are
  // nondeterministic under OpenMP scheduling.
  pk::initialize(1);
  auto a = make_plasma(core::VectorStrategy::Auto,
                       vpic::sort::SortOrder::Standard, /*sort_interval=*/3);
  auto b = make_plasma(core::VectorStrategy::Auto,
                       vpic::sort::SortOrder::Standard, /*sort_interval=*/3);
  a.run(12);
  b.run(12);
  for (std::size_t s = 0; s < a.num_species(); ++s) {
    ASSERT_EQ(a.species(s).np, b.species(s).np);
    EXPECT_EQ(std::memcmp(a.species(s).p.data(), b.species(s).p.data(),
                          static_cast<std::size_t>(a.species(s).np) *
                              sizeof(core::Particle)),
              0)
        << "species " << s << " diverged";
  }
  const auto& fa = a.fields();
  const auto& fb = b.fields();
  EXPECT_EQ(std::memcmp(fa.ex.data(), fb.ex.data(),
                        static_cast<std::size_t>(fa.ex.size()) * sizeof(float)),
            0);
  EXPECT_EQ(std::memcmp(fa.bz.data(), fb.bz.data(),
                        static_cast<std::size_t>(fa.bz.size()) * sizeof(float)),
            0);
  pk::initialize();  // restore the default thread count
}

TEST(QuasiPlanar, SingleCellAxisRunsStable) {
  // nz = 1 degenerates to a quasi-2D run (periodic wrap onto the same
  // cell); the engine must remain stable and conservative.
  core::SimulationConfig cfg;
  cfg.grid = core::Grid(12, 12, 1, 12, 12, 1, 0);
  cfg.grid.dt = core::Grid::courant_dt(1, 1, 1, 0.5f);
  core::Simulation sim(cfg);
  const auto e = sim.add_species("e", -1.0f, 1.0f, 4000);
  const auto i = sim.add_species("i", 1.0f, 100.0f, 4000);
  sim.load_uniform_plasma(e, 8, 0.1f);
  sim.load_uniform_plasma(i, 8, 0.01f);
  const double e0 = sim.energies().total();
  sim.run(20);
  const double e1 = sim.energies().total();
  EXPECT_TRUE(std::isfinite(e1));
  EXPECT_NEAR(e1, e0, 0.05 * e0);
  EXPECT_EQ(sim.species(e).np, 12 * 12 * 8);
}
