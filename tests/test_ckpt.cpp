// Tests for vpic::ckpt (src/ckpt) and its Simulation integration
// (core/checkpoint.cpp, docs/CHECKPOINT.md):
//
//   * View serializer round trips (prefix encoding, shape validation),
//   * checkpoint file envelope + typed corruption detection — every
//     FaultInjector mode is pinned to the RestoreError kind restore must
//     classify it as,
//   * generation ring naming/pruning and corrupt-newest fallback,
//   * bit-identical resume: 50 steps + checkpoint + restore + 50 steps
//     equals 100 uninterrupted steps on the LPI deck,
//   * async snapshots: file bytes identical to a sync checkpoint taken at
//     the same step, isolated from subsequent stepping,
//   * config-driven periodic checkpointing under both step schedulers,
//   * coordinated DistributedSimulation checkpoint/restore.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "ckpt/ckpt.hpp"
#include "core/core.hpp"
#include "minimpi/minimpi.hpp"

namespace core = vpic::core;
namespace ckpt = vpic::ckpt;
namespace mpi = vpic::mpi;
namespace pk = vpic::pk;
namespace fs = std::filesystem;
using pk::index_t;

namespace {

class PkEnv : public ::testing::Environment {
 public:
  // One kernel thread: the bit-identity suites compare raw bytes, and
  // with >1 OpenMP threads the float-atomic current deposits are
  // nondeterministic even between two sequential runs. Instance worker
  // threads (graph scheduler, async checkpoint writer) are independent of
  // this setting.
  void SetUp() override { pk::initialize(1); }
};
[[maybe_unused]] const auto* const env =
    ::testing::AddGlobalTestEnvironment(new PkEnv);

/// Fresh unique scratch directory under the gtest temp dir.
fs::path scratch(const std::string& tag) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("vpic_ckpt_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Small LPI deck (the issue's bit-identity workload) with energy
/// diagnostics on, cheap enough for 100-step test runs.
core::Simulation make_lpi_small(
    std::uint64_t seed = 42,
    core::ParticleLayout layout = core::ParticleLayout::AoS) {
  core::decks::LpiParams p;
  p.nx = 12;
  p.ny = 4;
  p.nz = 4;
  p.ppc = 2;
  p.sort_interval = 10;
  p.seed = seed;
  p.layout = layout;
  auto sim = core::decks::make_lpi(p);
  sim.config().energy_interval = 5;
  return sim;
}

/// Canonical-AoS particle bytes of a species, valid for every layout.
std::vector<core::Particle> canon_particles(const core::Species& sp) {
  std::vector<core::Particle> out(static_cast<std::size_t>(sp.np));
  sp.p.export_aos(out.data(), sp.np);
  return out;
}

std::vector<std::byte> view_bytes(const pk::View<float, 1>& v) {
  std::vector<std::byte> b(static_cast<std::size_t>(v.size()) *
                           sizeof(float));
  std::memcpy(b.data(), v.data(), b.size());
  return b;
}

void expect_bit_identical(core::Simulation& a, core::Simulation& b) {
  EXPECT_EQ(a.step_count(), b.step_count());
  const auto& fa = a.fields();
  const auto& fb = b.fields();
  EXPECT_EQ(view_bytes(fa.ex), view_bytes(fb.ex));
  EXPECT_EQ(view_bytes(fa.ey), view_bytes(fb.ey));
  EXPECT_EQ(view_bytes(fa.ez), view_bytes(fb.ez));
  EXPECT_EQ(view_bytes(fa.bx), view_bytes(fb.bx));
  EXPECT_EQ(view_bytes(fa.by), view_bytes(fb.by));
  EXPECT_EQ(view_bytes(fa.bz), view_bytes(fb.bz));
  EXPECT_EQ(view_bytes(fa.jx), view_bytes(fb.jx));
  EXPECT_EQ(view_bytes(fa.jy), view_bytes(fb.jy));
  EXPECT_EQ(view_bytes(fa.jz), view_bytes(fb.jz));
  ASSERT_EQ(a.num_species(), b.num_species());
  for (std::size_t s = 0; s < a.num_species(); ++s) {
    const auto& sa = a.species(s);
    const auto& sb = b.species(s);
    ASSERT_EQ(sa.np, sb.np) << "species " << sa.name;
    // Compare in canonical AoS order: valid for every particle layout,
    // including cross-layout pairs (restore may retarget the layout).
    const auto pa = canon_particles(sa);
    const auto pb = canon_particles(sb);
    EXPECT_EQ(std::memcmp(pa.data(), pb.data(),
                          static_cast<std::size_t>(sa.np) *
                              sizeof(core::Particle)),
              0)
        << "species " << sa.name << " particle bytes differ";
  }
  EXPECT_EQ(a.energy_history().to_csv(), b.energy_history().to_csv());
}

std::vector<std::byte> slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::vector<char> c((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  std::vector<std::byte> b(c.size());
  std::memcpy(b.data(), c.data(), c.size());
  return b;
}

/// Write a small standalone checkpoint file (no simulation needed) for
/// the envelope / corruption tests.
void write_sample(const std::string& path, std::uint64_t fingerprint = 7,
                  std::int64_t step = 3) {
  ckpt::FileWriter w;
  pk::View<float, 1> v("v", 64);
  for (index_t i = 0; i < v.size(); ++i)
    v(i) = static_cast<float>(i) * 0.5f;
  w.add_view("alpha", v);
  std::vector<double> d(32, 1.25);
  w.add_vector("beta", d);
  w.add_pod("gamma", std::int64_t{42});
  w.commit(path, fingerprint, step);
}

/// Run `f`, expecting it to throw RestoreError; return the kind.
template <class F>
ckpt::RestoreErrorKind thrown_kind(F&& f) {
  try {
    f();
  } catch (const ckpt::RestoreError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "expected a ckpt::RestoreError";
  return ckpt::RestoreErrorKind::IoError;
}

}  // namespace

// ---- serializer ------------------------------------------------------

TEST(Serialize, Rank1RoundTrip) {
  pk::View<float, 1> v("v", 17);
  for (index_t i = 0; i < v.size(); ++i) v(i) = 3.0f * static_cast<float>(i);
  const auto s = ckpt::encode_view("v", v);
  EXPECT_EQ(s.elem_size, sizeof(float));
  EXPECT_EQ(s.rank, 1u);
  EXPECT_EQ(s.extents[0], 17);
  const auto back = ckpt::decode_view<float, 1>(s);
  ASSERT_EQ(back.size(), v.size());
  for (index_t i = 0; i < v.size(); ++i) EXPECT_EQ(back(i), v(i));
}

TEST(Serialize, Rank2RoundTripBothLayouts) {
  pk::View<double, 2> r("r", 5, 7);
  pk::View<double, 2, pk::LayoutLeft> l("l", 5, 7);
  for (index_t i = 0; i < 5; ++i)
    for (index_t j = 0; j < 7; ++j) {
      r(i, j) = static_cast<double>(10 * i + j);
      l(i, j) = static_cast<double>(10 * i + j);
    }
  const auto sr = ckpt::encode_view("r", r);
  const auto sl = ckpt::encode_view("l", l);
  EXPECT_EQ(sr.layout, ckpt::kLayoutRight);
  EXPECT_EQ(sl.layout, ckpt::kLayoutLeft);
  const auto br = ckpt::decode_view<double, 2>(sr);
  const auto bl = ckpt::decode_view<double, 2, pk::LayoutLeft>(sl);
  for (index_t i = 0; i < 5; ++i)
    for (index_t j = 0; j < 7; ++j) {
      EXPECT_EQ(br(i, j), r(i, j));
      EXPECT_EQ(bl(i, j), l(i, j));
    }
}

TEST(Serialize, PrefixEncodingAndLargerDestination) {
  pk::View<std::int32_t, 1> v("v", 100);
  for (index_t i = 0; i < v.size(); ++i) v(i) = static_cast<std::int32_t>(i);
  const auto s = ckpt::encode_view("v", v, /*count=*/10);
  EXPECT_EQ(s.extents[0], 10);
  EXPECT_EQ(s.payload.size(), 10 * sizeof(std::int32_t));
  // A rank-1 destination may be larger than the encoded prefix.
  pk::View<std::int32_t, 1> dst("dst", 50);
  ckpt::decode_view_into(s, dst);
  for (index_t i = 0; i < 10; ++i) EXPECT_EQ(dst(i), i);
}

TEST(Serialize, ShapeMismatchesAreTyped) {
  pk::View<float, 1> v("v", 8);
  const auto s = ckpt::encode_view("v", v);
  // Wrong element type.
  EXPECT_EQ(thrown_kind([&] { (void)ckpt::decode_view<double, 1>(s); }),
            ckpt::RestoreErrorKind::ShapeMismatch);
  // Wrong rank.
  EXPECT_EQ(thrown_kind([&] { (void)ckpt::decode_view<float, 2>(s); }),
            ckpt::RestoreErrorKind::ShapeMismatch);
  // Destination too small.
  pk::View<float, 1> tiny("tiny", 4);
  EXPECT_EQ(thrown_kind([&] { ckpt::decode_view_into(s, tiny); }),
            ckpt::RestoreErrorKind::ShapeMismatch);
}

// ---- file envelope ---------------------------------------------------

TEST(File, WriterReaderRoundTrip) {
  const auto dir = scratch("file_roundtrip");
  const std::string path = (dir / "a.ckpt").string();
  write_sample(path, /*fingerprint=*/99, /*step=*/123);

  ckpt::FileReader f(path);
  EXPECT_EQ(f.fingerprint(), 99u);
  EXPECT_EQ(f.step(), 123);
  EXPECT_EQ(f.section_count(), 3u);
  EXPECT_TRUE(f.has("alpha"));
  EXPECT_FALSE(f.has("nope"));
  const auto v = f.view<float, 1>("alpha");
  ASSERT_EQ(v.size(), 64);
  EXPECT_EQ(v(10), 5.0f);
  EXPECT_EQ(f.vector<double>("beta").size(), 32u);
  EXPECT_EQ(f.pod<std::int64_t>("gamma"), 42);
  EXPECT_NO_THROW(f.require_fingerprint(99));
  EXPECT_EQ(thrown_kind([&] { f.require_fingerprint(100); }),
            ckpt::RestoreErrorKind::FingerprintMismatch);
  EXPECT_EQ(thrown_kind([&] { (void)f.section("nope"); }),
            ckpt::RestoreErrorKind::MissingSection);
}

TEST(File, DuplicateSectionNameRejected) {
  ckpt::FileWriter w;
  w.add_pod("x", 1);
  EXPECT_THROW(w.add_pod("x", 2), std::invalid_argument);
}

TEST(File, CommitIsAtomicNoTmpLeftBehind) {
  const auto dir = scratch("file_atomic");
  const std::string path = (dir / "a.ckpt").string();
  write_sample(path);
  EXPECT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(File, UnwritableDirectoryIsIoError) {
  EXPECT_EQ(thrown_kind([&] {
              ckpt::FileWriter w;
              w.add_pod("x", 1);
              w.commit("/nonexistent_vpic_dir/a.ckpt", 0, 0);
            }),
            ckpt::RestoreErrorKind::IoError);
}

// ---- corruption modes: every injected fault -> its typed kind --------

TEST(Corruption, MissingFileIsIoError) {
  EXPECT_EQ(thrown_kind([&] { ckpt::FileReader f("/no/such/file.ckpt"); }),
            ckpt::RestoreErrorKind::IoError);
}

TEST(Corruption, TruncatedTailDetected) {
  const auto dir = scratch("trunc");
  const std::string path = (dir / "a.ckpt").string();
  write_sample(path);
  ckpt::FaultInjector::truncate_tail(path, 16);
  EXPECT_EQ(thrown_kind([&] { ckpt::FileReader f(path); }),
            ckpt::RestoreErrorKind::Truncated);
}

TEST(Corruption, TruncatedBelowHeaderDetected) {
  const auto dir = scratch("trunc_hdr");
  const std::string path = (dir / "a.ckpt").string();
  write_sample(path);
  const auto sz = fs::file_size(path);
  ckpt::FaultInjector::truncate_tail(path, sz - 20);
  EXPECT_EQ(thrown_kind([&] { ckpt::FileReader f(path); }),
            ckpt::RestoreErrorKind::Truncated);
}

TEST(Corruption, CorruptMagicDetected) {
  const auto dir = scratch("magic");
  const std::string path = (dir / "a.ckpt").string();
  write_sample(path);
  ckpt::FaultInjector::corrupt_magic(path);
  EXPECT_EQ(thrown_kind([&] { ckpt::FileReader f(path); }),
            ckpt::RestoreErrorKind::BadMagic);
}

TEST(Corruption, HeaderBitFlipDetected) {
  const auto dir = scratch("hdr_flip");
  const std::string path = (dir / "a.ckpt").string();
  write_sample(path);
  // Byte 20 is inside the header's fingerprint field: the header CRC
  // catches the flip before the fingerprint is ever believed.
  ckpt::FaultInjector::flip_bit(path, 20);
  EXPECT_EQ(thrown_kind([&] { ckpt::FileReader f(path); }),
            ckpt::RestoreErrorKind::HeaderCorrupt);
}

TEST(Corruption, StaleFormatVersionDetected) {
  const auto dir = scratch("version");
  const std::string path = (dir / "a.ckpt").string();
  write_sample(path);
  // set_version recomputes the header CRC: the file presents as a valid
  // checkpoint of another format era, not as damage.
  ckpt::FaultInjector::set_version(path, ckpt::kFormatVersion + 7);
  EXPECT_EQ(thrown_kind([&] { ckpt::FileReader f(path); }),
            ckpt::RestoreErrorKind::BadVersion);
}

TEST(Corruption, TableBitFlipDetected) {
  const auto dir = scratch("table_flip");
  const std::string path = (dir / "a.ckpt").string();
  write_sample(path);
  ckpt::FaultInjector::flip_bit(path, sizeof(ckpt::FileHeader) + 10);
  EXPECT_EQ(thrown_kind([&] { ckpt::FileReader f(path); }),
            ckpt::RestoreErrorKind::TableCorrupt);
}

TEST(Corruption, TornSectionDetectedLazily) {
  const auto dir = scratch("torn");
  const std::string path = (dir / "a.ckpt").string();
  write_sample(path);
  ckpt::FaultInjector::torn_section(path, 0);
  ckpt::FileReader f(path);  // envelope still validates
  EXPECT_EQ(thrown_kind([&] { (void)f.section("alpha"); }),
            ckpt::RestoreErrorKind::SectionCorrupt);
  // Other sections are unaffected.
  EXPECT_NO_THROW((void)f.pod<std::int64_t>("gamma"));
}

TEST(Corruption, PayloadBitFlipDetected) {
  const auto dir = scratch("payload_flip");
  const std::string path = (dir / "a.ckpt").string();
  write_sample(path);
  ckpt::FaultInjector::flip_payload_bit(path, 1);
  ckpt::FileReader f(path);
  EXPECT_EQ(thrown_kind([&] { f.validate_all(); }),
            ckpt::RestoreErrorKind::SectionCorrupt);
}

namespace {

/// Patch a file's header (and optionally its first section record) and
/// recompute the table/header CRCs, so the result presents as a *valid*
/// checkpoint rather than as damage. CRCs are attacker-controlled, so
/// they are no defense against a crafted file — only bounds checks are.
void rewrite_crafted(const std::string& path,
                     const std::function<void(ckpt::FileHeader&,
                                              ckpt::SectionRecord&)>& mutate) {
  auto blob = slurp(path);
  ckpt::FileHeader h;
  std::memcpy(&h, blob.data(), sizeof(h));
  ckpt::SectionRecord rec;
  std::byte* table = blob.data() + h.table_offset;
  std::memcpy(&rec, table, sizeof(rec));
  mutate(h, rec);
  std::memcpy(table, &rec, sizeof(rec));
  h.table_crc = ckpt::crc32(
      table, h.section_count * sizeof(ckpt::SectionRecord));
  h.header_crc = ckpt::crc32(&h, ckpt::kHeaderCrcBytes);
  std::memcpy(blob.data(), &h, sizeof(h));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
}

}  // namespace

TEST(Corruption, WrappingPayloadBoundsDetected) {
  const auto dir = scratch("wrap_payload");
  const std::string path = (dir / "a.ckpt").string();
  write_sample(path);
  // offset + bytes wraps uint64 to a small value below total_bytes: the
  // naive "offset + bytes > total" bound passes and crc32()/memcpy read
  // out of bounds. The overflow-safe form must reject it.
  rewrite_crafted(path, [](ckpt::FileHeader&, ckpt::SectionRecord& rec) {
    rec.payload_offset = 0xFFFFFFFFFFFFFF00ull;
    rec.payload_bytes = 0x200;
  });
  EXPECT_EQ(thrown_kind([&] { ckpt::FileReader f(path); }),
            ckpt::RestoreErrorKind::TableCorrupt);
}

TEST(Corruption, WrappingTableOffsetDetected) {
  const auto dir = scratch("wrap_table");
  const std::string path = (dir / "a.ckpt").string();
  write_sample(path);
  // Same wrap in the header's table bound, which is checked *before* the
  // table CRC is read — without the overflow-safe form the CRC pass
  // itself reads out of bounds.
  rewrite_crafted(path, [](ckpt::FileHeader& h, ckpt::SectionRecord&) {
    h.table_offset = 0xFFFFFFFFFFFFFF00ull;
  });
  EXPECT_EQ(thrown_kind([&] { ckpt::FileReader f(path); }),
            ckpt::RestoreErrorKind::TableCorrupt);
}

// ---- generation ring -------------------------------------------------

TEST(Ring, NamingAndNextGeneration) {
  const auto dir = scratch("ring_names");
  ckpt::GenerationRing ring((dir / "ck").string(), 3);
  EXPECT_EQ(ring.path_for(0), (dir / "ck.g0").string());
  EXPECT_EQ(ring.path_for(12), (dir / "ck.g12").string());
  EXPECT_TRUE(ring.generations().empty());
  EXPECT_EQ(ring.next_generation(), 0u);
  write_sample(ring.path_for(0));
  write_sample(ring.path_for(3));
  EXPECT_EQ(ring.generations(), (std::vector<std::uint64_t>{0, 3}));
  EXPECT_EQ(ring.next_generation(), 4u);
}

TEST(Ring, PruneKeepsNewestAndRemovesStaleTmp) {
  const auto dir = scratch("ring_prune");
  ckpt::GenerationRing ring((dir / "ck").string(), 2);
  for (std::uint64_t g = 0; g < 5; ++g) write_sample(ring.path_for(g));
  {
    std::ofstream tmp(ring.path_for(9) + ".tmp");
    tmp << "stale";
  }
  // prune() touches only committed generations: a .tmp file (possibly an
  // async commit in flight) must survive it...
  ring.prune();
  EXPECT_EQ(ring.generations(), (std::vector<std::uint64_t>{3, 4}));
  EXPECT_TRUE(fs::exists(ring.path_for(9) + ".tmp"));
  // ...and the explicit stale sweep (run only at quiescence) removes it.
  ring.remove_stale_tmp();
  EXPECT_FALSE(fs::exists(ring.path_for(9) + ".tmp"));
  EXPECT_EQ(ring.generations(), (std::vector<std::uint64_t>{3, 4}));
}

// A farm job cancelled mid-async-snapshot leaves a dangling
// "<base>.g<N>.tmp" that never got its rename-commit. restore_latest must
// not even consider it: the newest *committed* generation restores, and
// the wreck is left for the explicit quiescent sweep.
TEST(Ring, RestoreLatestIgnoresDanglingTmpFromCancelledSnapshot) {
  const auto dir = scratch("dangling_tmp");
  const std::string base = (dir / "ck").string();
  ckpt::GenerationRing ring(base, 3);

  auto ref = make_lpi_small();
  auto victim = make_lpi_small();
  ref.run(20);
  victim.run(20);
  victim.checkpoint(ring.path_for(0));
  {
    std::ofstream tmp(ring.path_for(1) + ".tmp", std::ios::binary);
    tmp << "half-written snapshot of a cancelled job";
  }

  auto resumed = make_lpi_small();
  const std::string used = resumed.restore_latest(base);
  EXPECT_EQ(used, ring.path_for(0));
  EXPECT_EQ(resumed.step_count(), 20);
  ref.run(20);
  resumed.run(20);
  expect_bit_identical(resumed, ref);
  EXPECT_TRUE(fs::exists(ring.path_for(1) + ".tmp"));  // restore won't sweep
}

// Two farm jobs parking to distinct rings under one shared directory:
// ownership is per base path, so one ring's prune/purge never touches a
// sibling's generations — even when one base name is a strict prefix of
// the other ("a" vs "ab").
TEST(Ring, SiblingRingsInOneDirectoryAreIsolated) {
  const auto dir = scratch("siblings");
  ckpt::GenerationRing a((dir / "a").string(), 2);
  ckpt::GenerationRing ab((dir / "ab").string(), 2);
  for (std::uint64_t g = 0; g < 5; ++g) {
    write_sample(a.path_for(g));
    write_sample(ab.path_for(g));
  }
  {
    std::ofstream tmp(a.path_for(7) + ".tmp");
    tmp << "stale";
  }

  a.prune();
  EXPECT_EQ(a.generations(), (std::vector<std::uint64_t>{3, 4}));
  EXPECT_EQ(ab.generations(), (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));

  // Purging "a" removes its 2 generations + 1 stale tmp, nothing of "ab".
  EXPECT_EQ(a.purge(), 2u);
  EXPECT_TRUE(a.generations().empty());
  EXPECT_FALSE(fs::exists(a.path_for(7) + ".tmp"));
  EXPECT_EQ(ab.generations(), (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));

  EXPECT_EQ(ab.purge(), 5u);
  EXPECT_TRUE(ab.generations().empty());
  EXPECT_EQ(ab.purge(), 0u);  // idempotent on an empty ring
}

// ---- Simulation integration -----------------------------------------

TEST(SimCkpt, FingerprintSeparatesDecks) {
  auto a = make_lpi_small(42);
  auto b = make_lpi_small(42);
  auto c = make_lpi_small(43);
  EXPECT_EQ(a.config_fingerprint(), b.config_fingerprint());
  EXPECT_NE(a.config_fingerprint(), c.config_fingerprint());
}

TEST(SimCkpt, BitIdenticalResumeOnLpi) {
  const auto dir = scratch("resume");
  const std::string path = (dir / "mid.ckpt").string();

  // Reference: 100 uninterrupted steps.
  auto ref = make_lpi_small();
  ref.run(100);

  // Interrupted: 50 steps, checkpoint, 50 more — checkpointing must not
  // perturb the run.
  auto victim = make_lpi_small();
  victim.run(50);
  const auto bytes = victim.checkpoint(path);
  EXPECT_GT(bytes, 0u);
  EXPECT_EQ(victim.checkpoints_written(), 1);
  victim.run(50);
  expect_bit_identical(victim, ref);

  // Resumed: a fresh same-deck simulation restored from the file.
  auto resumed = make_lpi_small();
  resumed.restore(path);
  EXPECT_EQ(resumed.step_count(), 50);
  resumed.run(50);
  expect_bit_identical(resumed, ref);
}

TEST(SimCkpt, NonAosRoundTripAndCrossLayoutRestore) {
  // The on-disk particle stream is canonical AoS whatever the in-memory
  // layout (docs/LAYOUT.md): a non-AoS species must round-trip
  // bit-identically, and the same file must restore into a simulation
  // running a *different* layout (the layout is deliberately not part of
  // the config fingerprint).
  for (const auto layout :
       {core::ParticleLayout::SoA, core::ParticleLayout::AoSoA}) {
    SCOPED_TRACE(core::to_string(layout));
    const auto dir =
        scratch(std::string("nonaos_") + core::to_string(layout));
    const std::string path = (dir / "mid.ckpt").string();

    auto ref = make_lpi_small(42, layout);
    ref.run(40);

    auto victim = make_lpi_small(42, layout);
    victim.run(20);
    EXPECT_GT(victim.checkpoint(path), 0u);
    victim.run(20);
    expect_bit_identical(victim, ref);

    // Same-layout resume.
    auto resumed = make_lpi_small(42, layout);
    resumed.restore(path);
    EXPECT_EQ(resumed.step_count(), 20);
    EXPECT_EQ(resumed.species(0).p.layout(), layout);
    resumed.run(20);
    expect_bit_identical(resumed, ref);

    // Cross-layout restore: an AoS deck consumes the non-AoS-written
    // file. Physics stays bit-identical because every kernel reads the
    // same particle values through its layout accessor.
    auto cross = make_lpi_small(42, core::ParticleLayout::AoS);
    cross.restore(path);
    EXPECT_EQ(cross.step_count(), 20);
    EXPECT_EQ(cross.species(0).p.layout(), core::ParticleLayout::AoS);
    cross.run(20);
    expect_bit_identical(cross, ref);
  }
}

TEST(SimCkpt, RestoreRejectsWrongDeck) {
  const auto dir = scratch("wrong_deck");
  const std::string path = (dir / "a.ckpt").string();
  auto a = make_lpi_small(42);
  a.run(3);
  a.checkpoint(path);
  auto b = make_lpi_small(43);
  EXPECT_EQ(thrown_kind([&] { b.restore(path); }),
            ckpt::RestoreErrorKind::FingerprintMismatch);
}

TEST(SimCkpt, RestoreGrowsParticleCapacity) {
  const auto dir = scratch("grow");
  const std::string path = (dir / "a.ckpt").string();
  core::SimulationConfig cfg;
  cfg.grid = core::Grid(4, 4, 4, 4, 4, 4, 0);
  cfg.grid.dt = core::Grid::courant_dt(1, 1, 1, 0.6f);
  core::Simulation big(cfg);
  big.add_species("e", -1.0f, 1.0f, 2000);
  big.load_uniform_plasma(0, 4, 0.1f);
  big.run(2);
  big.checkpoint(path);

  core::Simulation small(cfg);
  small.add_species("e", -1.0f, 1.0f, 8);  // capacity << live count
  small.restore(path);
  EXPECT_EQ(small.species(0).np, big.species(0).np);
  EXPECT_GE(small.species(0).capacity(), small.species(0).np);
  expect_bit_identical(small, big);
}

TEST(SimCkpt, CorruptRestoreLeavesStateUntouched) {
  const auto dir = scratch("no_mutate");
  const std::string path = (dir / "a.ckpt").string();
  auto sim = make_lpi_small();
  sim.run(10);
  sim.checkpoint(path);
  sim.run(5);  // sim is now *past* the checkpoint
  const auto before = view_bytes(sim.fields().ex);
  ckpt::FaultInjector::flip_payload_bit(path, 0);
  EXPECT_EQ(thrown_kind([&] { sim.restore(path); }),
            ckpt::RestoreErrorKind::SectionCorrupt);
  // Validate-then-mutate: the failed restore changed nothing.
  EXPECT_EQ(view_bytes(sim.fields().ex), before);
  EXPECT_EQ(sim.step_count(), 15);
}

TEST(SimCkpt, RestoreLatestFallsBackPastCorruptGeneration) {
  const auto dir = scratch("fallback");
  const std::string base = (dir / "ck").string();
  ckpt::GenerationRing ring(base, 3);

  auto sim = make_lpi_small();
  sim.run(10);
  sim.checkpoint(ring.path_for(0));
  sim.run(10);
  sim.checkpoint(ring.path_for(1));
  // Corrupt the newest generation; restore_latest must fall back to g0.
  ckpt::FaultInjector::flip_payload_bit(ring.path_for(1), 2);

  auto fresh = make_lpi_small();
  const std::string used = fresh.restore_latest(base);
  EXPECT_EQ(used, ring.path_for(0));
  EXPECT_EQ(fresh.step_count(), 10);

  // With every generation corrupt, the newest failure surfaces.
  ckpt::FaultInjector::truncate_tail(ring.path_for(0), 64);
  auto fresh2 = make_lpi_small();
  EXPECT_EQ(thrown_kind([&] { fresh2.restore_latest(base); }),
            ckpt::RestoreErrorKind::SectionCorrupt);
}

TEST(SimCkpt, AsyncMatchesSyncBytesAndIsolatesSnapshot) {
  const auto dir = scratch("async");
  const std::string sync_path = (dir / "sync.ckpt").string();
  const std::string async_path = (dir / "async.ckpt").string();

  auto sim = make_lpi_small();
  sim.run(7);
  sim.checkpoint(sync_path);
  sim.checkpoint_async(async_path);
  // Stepping continues while the background write is (possibly) still in
  // flight; the snapshot was deep-copied at submission.
  sim.run(3);
  sim.checkpoint_wait();
  EXPECT_EQ(sim.checkpoints_written(), 2);
  EXPECT_EQ(slurp(async_path), slurp(sync_path));

  auto restored = make_lpi_small();
  restored.restore(async_path);
  EXPECT_EQ(restored.step_count(), 7);
}

TEST(SimCkpt, AsyncWriteFailureSurfacesAtWait) {
  auto sim = make_lpi_small();
  sim.run(1);
  sim.checkpoint_async("/nonexistent_vpic_dir/a.ckpt");
  EXPECT_THROW(sim.checkpoint_wait(), ckpt::RestoreError);
}

TEST(SimCkpt, PeriodicRingUnderBothSchedulers) {
  for (auto sched :
       {core::StepScheduler::Sequential, core::StepScheduler::Graph}) {
    SCOPED_TRACE(core::to_string(sched));
    const auto dir =
        scratch(std::string("periodic_") + core::to_string(sched));
    auto sim = make_lpi_small();
    sim.config().scheduler = sched;
    sim.config().checkpoint_every = 5;
    sim.config().checkpoint_path = (dir / "ck").string();
    sim.config().checkpoint_keep_last = 2;
    sim.run(22);  // checkpoints at steps 5, 10, 15, 20
    sim.checkpoint_wait();
    EXPECT_EQ(sim.checkpoints_written(), 4);
    ckpt::GenerationRing ring((dir / "ck").string(), 2);
    EXPECT_EQ(ring.generations(), (std::vector<std::uint64_t>{2, 3}));

    auto fresh = make_lpi_small();
    fresh.config().scheduler = sched;
    const auto used = fresh.restore_latest((dir / "ck").string());
    EXPECT_EQ(used, ring.path_for(3));
    EXPECT_EQ(fresh.step_count(), 20);
  }
}

TEST(SimCkpt, PeriodicRingAsyncKeepsEveryGenerationDistinct) {
  // Async periodic checkpointing stresses two ring invariants at once:
  // generation numbers come from the in-memory counter (a directory
  // re-scan cannot see an async generation not yet renamed into place,
  // so it would hand out the same number twice and overwrite a retained
  // generation), and the stale-.tmp sweep never runs while a background
  // commit is in flight (it would unlink the writer's tmp file, fail the
  // rename, and surface a deferred IoError at the next fence).
  const auto dir = scratch("periodic_async");
  auto sim = make_lpi_small();
  sim.config().checkpoint_every = 1;  // submissions outpace commits
  sim.config().checkpoint_path = (dir / "ck").string();
  sim.config().checkpoint_keep_last = 100;  // retention out of the way
  sim.config().checkpoint_async = true;
  sim.run(10);
  EXPECT_NO_THROW(sim.checkpoint_wait());  // no deferred write failure
  EXPECT_EQ(sim.checkpoints_written(), 10);

  // Every submitted generation landed as its own committed file.
  ckpt::GenerationRing ring((dir / "ck").string(), 100);
  EXPECT_EQ(ring.generations(),
            (std::vector<std::uint64_t>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));

  auto fresh = make_lpi_small();
  const auto used = fresh.restore_latest((dir / "ck").string());
  EXPECT_EQ(used, ring.path_for(9));
  EXPECT_EQ(fresh.step_count(), 10);
}

TEST(SimCkpt, GraphCkptPhaseResumeIsBitIdentical) {
  // The graph-scheduled "ckpt" phase (declared read set, validated
  // race-free by StepGraph::validate inside step()) must capture exactly
  // the sequential tail's state: resume from a mid-run graph checkpoint
  // and land bit-identical to an uninterrupted graph run.
  const auto dir = scratch("graph_resume");
  auto ref = make_lpi_small();
  ref.config().scheduler = core::StepScheduler::Graph;
  ref.run(40);

  auto victim = make_lpi_small();
  victim.config().scheduler = core::StepScheduler::Graph;
  victim.config().checkpoint_every = 20;
  victim.config().checkpoint_path = (dir / "ck").string();
  victim.run(25);

  auto resumed = make_lpi_small();
  resumed.config().scheduler = core::StepScheduler::Graph;
  const auto used = resumed.restore_latest((dir / "ck").string());
  EXPECT_EQ(used, (dir / "ck.g0").string());
  EXPECT_EQ(resumed.step_count(), 20);
  resumed.run(20);
  expect_bit_identical(resumed, ref);
}

// ---- DistributedSimulation ------------------------------------------

namespace {

core::DomainConfig dist_config() {
  core::DomainConfig cfg;
  cfg.nx = 4;
  cfg.ny = 4;
  cfg.nz = 8;
  cfg.lx = 4;
  cfg.ly = 4;
  cfg.lz = 8;
  cfg.seed = 7;
  // The fenced schedule is the bit-deterministic reference; overlap
  // reorders fp current deposits (docs/ASYNC.md).
  cfg.overlap = false;
  return cfg;
}

}  // namespace

TEST(DistCkpt, CoordinatedRoundTripIsBitIdentical) {
  const auto dir = scratch("dist");
  const std::string ckdir = (dir / "set").string();
  mpi::run(2, [&](mpi::Comm& comm) {
    auto cfg = dist_config();
    core::DistributedSimulation sim(cfg, comm);
    sim.add_species("e", -1.0f, 1.0f, 8000);
    sim.load_uniform_plasma(0, 2, 0.2f, 0.0f, 0.0f, 0.1f);
    sim.run(10);
    sim.checkpoint(ckdir);
    sim.run(10);

    core::DistributedSimulation fresh(cfg, comm);
    fresh.add_species("e", -1.0f, 1.0f, 8000);
    fresh.restore(ckdir);
    EXPECT_EQ(fresh.step_count(), 10);
    fresh.run(10);

    // Byte-compare this rank's slab state.
    const auto& sa = sim.species(0);
    const auto& sb = fresh.species(0);
    ASSERT_EQ(sa.np, sb.np);
    EXPECT_EQ(std::memcmp(sa.p.data(), sb.p.data(),
                          static_cast<std::size_t>(sa.np) *
                              sizeof(core::Particle)),
              0);
    EXPECT_EQ(view_bytes(sim.fields().ex), view_bytes(fresh.fields().ex));
    EXPECT_EQ(view_bytes(sim.fields().by), view_bytes(fresh.fields().by));
    EXPECT_EQ(sim.exchanged_particles(), fresh.exchanged_particles());
  });
  EXPECT_TRUE(fs::exists(ckdir + "/manifest.ckpt"));
  EXPECT_TRUE(fs::exists(ckdir + "/rank0.ckpt"));
  EXPECT_TRUE(fs::exists(ckdir + "/rank1.ckpt"));
}

TEST(DistCkpt, ManifestStepDisagreementRejected) {
  const auto dir = scratch("dist_manifest");
  const std::string ck_a = (dir / "a").string();
  const std::string ck_b = (dir / "b").string();
  mpi::run(2, [&](mpi::Comm& comm) {
    auto cfg = dist_config();
    core::DistributedSimulation sim(cfg, comm);
    sim.add_species("e", -1.0f, 1.0f, 8000);
    sim.load_uniform_plasma(0, 2, 0.2f);
    sim.run(2);
    sim.checkpoint(ck_a);
    sim.run(3);
    sim.checkpoint(ck_b);
    comm.barrier();
    if (comm.rank() == 0) {
      // Splice b's manifest over a's: rank files now disagree with it.
      fs::copy_file(ck_b + "/manifest.ckpt", ck_a + "/manifest.ckpt",
                    fs::copy_options::overwrite_existing);
    }
    comm.barrier();
    core::DistributedSimulation fresh(cfg, comm);
    fresh.add_species("e", -1.0f, 1.0f, 8000);
    EXPECT_EQ(thrown_kind([&] { fresh.restore(ck_a); }),
              ckpt::RestoreErrorKind::ManifestMismatch);
  });
}

TEST(DistCkpt, MissingManifestRejectsPartialSet) {
  const auto dir = scratch("dist_partial");
  const std::string ckdir = (dir / "set").string();
  mpi::run(2, [&](mpi::Comm& comm) {
    auto cfg = dist_config();
    core::DistributedSimulation sim(cfg, comm);
    sim.add_species("e", -1.0f, 1.0f, 8000);
    sim.load_uniform_plasma(0, 2, 0.2f);
    sim.checkpoint(ckdir);
    comm.barrier();
    if (comm.rank() == 0) fs::remove(ckdir + "/manifest.ckpt");
    comm.barrier();
    core::DistributedSimulation fresh(cfg, comm);
    fresh.add_species("e", -1.0f, 1.0f, 8000);
    EXPECT_EQ(thrown_kind([&] { fresh.restore(ckdir); }),
              ckpt::RestoreErrorKind::IoError);
  });
}
