// Unit + property tests for the portable SIMD library (the manual
// vectorization substrate): arithmetic vs scalar reference across widths,
// masks and blending, math accuracy sweeps, register transposes.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "simd/simd.hpp"

using namespace vpic::simd;

template <class Pair>
class SimdOps : public ::testing::Test {};

template <class T, int W>
struct TW {
  using type = T;
  static constexpr int width = W;
};

using Widths =
    ::testing::Types<TW<float, 1>, TW<float, 4>, TW<float, 8>,
                     TW<float, 16>, TW<double, 2>, TW<double, 4>,
                     TW<double, 8>, TW<std::int32_t, 4>, TW<std::int32_t, 8>>;
TYPED_TEST_SUITE(SimdOps, Widths);

TYPED_TEST(SimdOps, BroadcastAndLanes) {
  using T = typename TypeParam::type;
  constexpr int W = TypeParam::width;
  simd<T, W> v(T{7});
  for (int i = 0; i < W; ++i) EXPECT_EQ(v[i], T{7});
  v.set(W - 1, T{9});
  EXPECT_EQ(v[W - 1], T{9});
}

TYPED_TEST(SimdOps, LoadStoreRoundTrip) {
  using T = typename TypeParam::type;
  constexpr int W = TypeParam::width;
  T in[W], out[W];
  for (int i = 0; i < W; ++i) in[i] = static_cast<T>(i + 1);
  auto v = simd<T, W>::load(in);
  v.store(out);
  for (int i = 0; i < W; ++i) EXPECT_EQ(out[i], in[i]);
}

TYPED_TEST(SimdOps, ArithmeticMatchesScalar) {
  using T = typename TypeParam::type;
  constexpr int W = TypeParam::width;
  simd<T, W> a([](int i) { return static_cast<T>(i + 1); });
  simd<T, W> b([](int i) { return static_cast<T>(2 * i + 1); });
  auto sum = a + b, dif = a - b, prod = a * b;
  for (int i = 0; i < W; ++i) {
    EXPECT_EQ(sum[i], static_cast<T>((i + 1) + (2 * i + 1)));
    EXPECT_EQ(dif[i], static_cast<T>((i + 1) - (2 * i + 1)));
    EXPECT_EQ(prod[i], static_cast<T>((i + 1) * (2 * i + 1)));
  }
}

TYPED_TEST(SimdOps, ComparisonsAndMaskOps) {
  using T = typename TypeParam::type;
  constexpr int W = TypeParam::width;
  simd<T, W> a = simd<T, W>::iota();
  simd<T, W> b(static_cast<T>(W / 2));
  auto m = a < b;
  EXPECT_EQ(m.count(), W / 2);
  EXPECT_EQ((!m).count(), W - W / 2);
  EXPECT_EQ((m || !m).count(), W);
  EXPECT_EQ((m && !m).count(), 0);
  EXPECT_EQ((a == a).count(), W);
}

TYPED_TEST(SimdOps, SelectBlends) {
  using T = typename TypeParam::type;
  constexpr int W = TypeParam::width;
  simd<T, W> a = simd<T, W>::iota();
  simd<T, W> hi(T{100}), lo(T{0});
  auto r = select(a < simd<T, W>(static_cast<T>(2)), hi, lo);
  for (int i = 0; i < W; ++i)
    EXPECT_EQ(r[i], i < 2 ? T{100} : T{0}) << "lane " << i;
}

TYPED_TEST(SimdOps, MinMaxReduce) {
  using T = typename TypeParam::type;
  constexpr int W = TypeParam::width;
  simd<T, W> a([](int i) { return static_cast<T>((i * 13) % 7); });
  T mn = a[0], mx = a[0], sm = 0;
  for (int i = 0; i < W; ++i) {
    mn = std::min(mn, a[i]);
    mx = std::max(mx, a[i]);
    sm = static_cast<T>(sm + a[i]);
  }
  EXPECT_EQ(a.reduce_min(), mn);
  EXPECT_EQ(a.reduce_max(), mx);
  EXPECT_EQ(a.reduce_sum(), sm);
}

TYPED_TEST(SimdOps, GatherScatter) {
  using T = typename TypeParam::type;
  constexpr int W = TypeParam::width;
  T table[64];
  for (int i = 0; i < 64; ++i) table[i] = static_cast<T>(i * 3);
  simd<std::int32_t, W> idx([](int i) { return (i * 7) % 64; });
  auto g = simd<T, W>::gather(table, idx);
  for (int i = 0; i < W; ++i)
    EXPECT_EQ(g[i], static_cast<T>(((i * 7) % 64) * 3));
  T out[64] = {};
  g.scatter(out, idx);
  for (int i = 0; i < W; ++i)
    EXPECT_EQ(out[(i * 7) % 64], g[i]);
}

TEST(SimdWhere, MaskedAssignment) {
  simd<float, 8> v(1.0f);
  auto m = simd<float, 8>::iota() < simd<float, 8>(4.0f);
  where(m, v) += simd<float, 8>(2.0f);
  for (int i = 0; i < 8; ++i)
    EXPECT_FLOAT_EQ(v[i], i < 4 ? 3.0f : 1.0f);
  where(m, v) = simd<float, 8>(-1.0f);
  for (int i = 0; i < 8; ++i)
    EXPECT_FLOAT_EQ(v[i], i < 4 ? -1.0f : 1.0f);
}

TEST(SimdMath, SqrtExact) {
  simd<double, 4> a([](int i) { return static_cast<double>(i * i); });
  auto r = sqrt(a);
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(r[i], i);
}

TEST(SimdMath, AbsAndFma) {
  simd<float, 8> a([](int i) { return i % 2 ? -1.5f : 1.5f; });
  auto r = abs(a);
  for (int i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(r[i], 1.5f);
  auto f = fma(simd<float, 8>(2.0f), simd<float, 8>(3.0f),
               simd<float, 8>(4.0f));
  EXPECT_FLOAT_EQ(f[0], 10.0f);
}

TEST(SimdMath, RsqrtAccuracy) {
  simd<double, 4> a([](int i) { return 0.5 + i; });
  auto r = rsqrt(a);
  for (int i = 0; i < 4; ++i)
    EXPECT_NEAR(r[i], 1.0 / std::sqrt(0.5 + i), 1e-12);
}

// Accuracy sweep for the vector exp against libm over the domain.
class ExpAccuracy : public ::testing::TestWithParam<double> {};

TEST_P(ExpAccuracy, DoubleWithin2e15Rel) {
  const double x = GetParam();
  simd<double, 4> v(x);
  const auto r = vpic::simd::exp(v);
  const double ref = std::exp(x);
  for (int i = 0; i < 4; ++i)
    EXPECT_NEAR(r[i], ref, std::abs(ref) * 2e-15 + 1e-300) << "x=" << x;
}

TEST_P(ExpAccuracy, FloatWithin4Ulp) {
  const auto x = static_cast<float>(GetParam());
  if (std::abs(x) > 80.0f) GTEST_SKIP() << "outside float clamp domain";
  simd<float, 8> v(x);
  const auto r = vpic::simd::exp(v);
  const float ref = std::exp(x);
  for (int i = 0; i < 8; ++i)
    EXPECT_NEAR(r[i], ref, std::abs(ref) * 5e-7f + 1e-40f) << "x=" << x;
}

INSTANTIATE_TEST_SUITE_P(
    Domain, ExpAccuracy,
    ::testing::Values(-700.0, -100.0, -10.0, -1.0, -0.1, -1e-8, 0.0, 1e-8,
                      0.1, 0.5, 1.0, 2.0, 10.0, 50.0, 100.0, 700.0));

TEST(SimdMath, ExpRandomSweepDouble) {
  std::mt19937_64 rng(12345);
  std::uniform_real_distribution<double> dist(-200.0, 200.0);
  for (int trial = 0; trial < 200; ++trial) {
    simd<double, 8> v([&](int) { return dist(rng); });
    const auto r = vpic::simd::exp(v);
    for (int i = 0; i < 8; ++i) {
      const double ref = std::exp(v[i]);
      EXPECT_NEAR(r[i], ref, std::abs(ref) * 2e-15);
    }
  }
}

TEST(SimdMath, ExpSaturatesOutsideDomain) {
  simd<double, 4> big(1000.0), small(-1000.0);
  EXPECT_TRUE(std::isfinite(vpic::simd::exp(big)[0]));
  EXPECT_NEAR(vpic::simd::exp(small)[0], 0.0, 1e-300);
}

TEST(Transpose, FourByFour) {
  std::array<simd<float, 4>, 4> rows;
  for (int r = 0; r < 4; ++r)
    rows[r] = simd<float, 4>([r](int c) {
      return static_cast<float>(r * 10 + c);
    });
  transpose<float, 4>(rows);
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c)
      EXPECT_FLOAT_EQ(rows[r][c], static_cast<float>(c * 10 + r));
}

TEST(Transpose, EightByEightRoundTrip) {
  std::array<simd<float, 8>, 8> rows;
  for (int r = 0; r < 8; ++r)
    rows[r] = simd<float, 8>([r](int c) {
      return static_cast<float>(r * 100 + c);
    });
  auto orig = rows;
  transpose<float, 8>(rows);
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c) EXPECT_EQ(rows[r][c], orig[c][r]);
  transpose<float, 8>(rows);
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c) EXPECT_EQ(rows[r][c], orig[r][c]);
}

TEST(Transpose, LoadTransposeAoS) {
  // 8 "structs" of 8 floats.
  float aos[64];
  for (int s = 0; s < 8; ++s)
    for (int f = 0; f < 8; ++f) aos[s * 8 + f] = static_cast<float>(s * 8 + f);
  auto soa = load_transpose<float, 8>(aos, 8);
  for (int f = 0; f < 8; ++f)
    for (int s = 0; s < 8; ++s)
      EXPECT_EQ(soa[f][s], static_cast<float>(s * 8 + f));
  float back[64] = {};
  store_transpose<float, 8>(soa, back, 8);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(back[i], aos[i]);
}

TEST(Abi, NativeWidthPositive) {
  EXPECT_GE(native_width<float>(), 1);
  EXPECT_GE(native_width<double>(), 1);
  EXPECT_EQ(native_width<float>(), 2 * native_width<double>());
  EXPECT_STRNE(native_isa_name(), "");
}

class LogAccuracy : public ::testing::TestWithParam<double> {};

TEST_P(LogAccuracy, DoubleWithin4e15Rel) {
  const double x = GetParam();
  simd<double, 4> v(x);
  const auto r = vpic::simd::log(v);
  const double ref = std::log(x);
  for (int i = 0; i < 4; ++i)
    EXPECT_NEAR(r[i], ref, std::max(std::abs(ref), 1.0) * 4e-15) << "x=" << x;
}

INSTANTIATE_TEST_SUITE_P(
    Domain, LogAccuracy,
    ::testing::Values(1e-300, 1e-10, 0.1, 0.5, 0.99, 1.0, 1.01, 2.0,
                      2.718281828, 10.0, 1e10, 1e300));

TEST(SimdMath, LogRandomSweep) {
  std::mt19937_64 rng(777);
  std::uniform_real_distribution<double> mant(0.1, 10.0);
  std::uniform_int_distribution<int> expo(-250, 250);
  for (int trial = 0; trial < 200; ++trial) {
    simd<double, 8> v([&](int) { return std::ldexp(mant(rng), expo(rng)); });
    const auto r = vpic::simd::log(v);
    for (int i = 0; i < 8; ++i) {
      const double ref = std::log(v[i]);
      EXPECT_NEAR(r[i], ref, std::max(std::abs(ref), 1.0) * 4e-15);
    }
  }
}

TEST(SimdMath, LogExpRoundTrip) {
  simd<double, 4> x([](int i) { return 0.5 + 0.37 * i; });
  const auto r = vpic::simd::log(vpic::simd::exp(x));
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(r[i], x[i], 1e-13);
}

TEST(SimdMath, Expm1AccurateNearZero) {
  for (double x : {-0.09, -1e-8, -1e-15, 0.0, 1e-15, 1e-8, 0.05, 0.09}) {
    simd<double, 4> v(x);
    const auto r = vpic::simd::expm1(v);
    const double ref = std::expm1(x);
    EXPECT_NEAR(r[0], ref, std::abs(ref) * 1e-14 + 1e-300) << "x=" << x;
  }
}

TEST(SimdMath, Expm1LargeMatchesExp) {
  simd<double, 4> v(3.0);
  EXPECT_NEAR(vpic::simd::expm1(v)[0], std::expm1(3.0),
              std::expm1(3.0) * 1e-13);
}
