// Tests for the sorting library: radix sort-by-key vs std::sort reference,
// the paper's Algorithm 1 (strided) and Algorithm 2 (tiled strided)
// postconditions as properties over randomized multisets, order
// predicates, and permutation application.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "pk/pk.hpp"
#include "sort/order_checks.hpp"
#include "sort/radix.hpp"
#include "sort/sorters.hpp"

namespace pk = vpic::pk;
namespace vs = vpic::sort;
using pk::index_t;

namespace {

pk::View<std::uint32_t, 1> random_keys(index_t n, std::uint32_t max_key,
                                       std::uint64_t seed) {
  pk::View<std::uint32_t, 1> keys("keys", n);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::uint32_t> dist(0, max_key);
  for (index_t i = 0; i < n; ++i) keys(i) = dist(rng);
  return keys;
}

pk::View<std::uint32_t, 1> iota_values(index_t n) {
  pk::View<std::uint32_t, 1> v("vals", n);
  for (index_t i = 0; i < n; ++i) v(i) = static_cast<std::uint32_t>(i);
  return v;
}

}  // namespace

TEST(RadixSort, MatchesStdSort) {
  auto keys = random_keys(5000, 1u << 20, 1);
  auto vals = iota_values(5000);
  std::vector<std::uint32_t> ref(keys.data(), keys.data() + keys.size());
  vs::sort_by_key(keys, vals);
  std::sort(ref.begin(), ref.end());
  for (index_t i = 0; i < keys.size(); ++i) EXPECT_EQ(keys(i), ref[i]);
}

TEST(RadixSort, StablePreservesTieOrder) {
  pk::View<std::uint32_t, 1> keys("k", 9), vals("v", 9);
  const std::uint32_t kv[9] = {3, 1, 3, 1, 2, 3, 1, 2, 2};
  for (int i = 0; i < 9; ++i) {
    keys(i) = kv[i];
    vals(i) = static_cast<std::uint32_t>(i);
  }
  vs::sort_by_key(keys, vals);
  // Values with equal keys must appear in original order.
  const std::uint32_t want_vals[9] = {1, 3, 6, 4, 7, 8, 0, 2, 5};
  for (int i = 0; i < 9; ++i) EXPECT_EQ(vals(i), want_vals[i]) << i;
}

TEST(RadixSort, PairsMoveTogether) {
  auto keys = random_keys(2048, 997, 7);
  auto vals = iota_values(2048);
  pk::View<std::uint32_t, 1> k0("k0", 2048), v0("v0", 2048);
  pk::deep_copy(k0, keys);
  pk::deep_copy(v0, vals);
  vs::sort_by_key(keys, vals);
  EXPECT_TRUE(vs::pairs_preserved(keys, vals, k0, v0));
}

TEST(RadixSort, EmptyAndSingle) {
  pk::View<std::uint32_t, 1> k0("k", 0), v0("v", 0);
  vs::sort_by_key(k0, v0);  // must not crash
  pk::View<std::uint32_t, 1> k1("k", 1), v1("v", 1);
  k1(0) = 42;
  vs::sort_by_key(k1, v1);
  EXPECT_EQ(k1(0), 42u);
}

TEST(RadixSort, AllZeroKeys) {
  pk::View<std::uint32_t, 1> k("k", 100), v("v", 100);
  for (index_t i = 0; i < 100; ++i) v(i) = static_cast<std::uint32_t>(i);
  vs::sort_by_key(k, v);
  for (index_t i = 0; i < 100; ++i) EXPECT_EQ(v(i), i);  // stable identity
}

TEST(RadixSort, WideKeysMultiPass) {
  auto keys = random_keys(4096, 0xFFFFFFFFu, 3);
  auto vals = iota_values(4096);
  std::vector<std::uint32_t> ref(keys.data(), keys.data() + keys.size());
  vs::sort_by_key(keys, vals);
  std::sort(ref.begin(), ref.end());
  for (index_t i = 0; i < keys.size(); ++i) EXPECT_EQ(keys(i), ref[i]);
}

TEST(RadixSort, ArgsortDoesNotMutateKeys) {
  auto keys = random_keys(1000, 100, 11);
  pk::View<std::uint32_t, 1> before("b", 1000);
  pk::deep_copy(before, keys);
  pk::View<index_t, 1> perm("perm", 1000);
  vs::argsort(keys, perm);
  for (index_t i = 0; i < 1000; ++i) EXPECT_EQ(keys(i), before(i));
  for (index_t i = 1; i < 1000; ++i)
    EXPECT_LE(keys(perm(i - 1)), keys(perm(i)));
}

TEST(RadixSort, ApplyPermutation) {
  pk::View<double, 1> src("s", 4), dst("d", 4);
  pk::View<index_t, 1> perm("p", 4);
  for (int i = 0; i < 4; ++i) src(i) = i * 1.5;
  perm(0) = 3;
  perm(1) = 1;
  perm(2) = 0;
  perm(3) = 2;
  vs::apply_permutation(perm, src, dst);
  EXPECT_EQ(dst(0), 4.5);
  EXPECT_EQ(dst(1), 1.5);
  EXPECT_EQ(dst(2), 0.0);
  EXPECT_EQ(dst(3), 3.0);
}

// ----------------------------------------------------------------------
// Property sweep: (n, key_range) grid for all three algorithms.
// ----------------------------------------------------------------------

struct SortCase {
  index_t n;
  std::uint32_t max_key;
  std::uint32_t tile;
};

class SortProperties : public ::testing::TestWithParam<SortCase> {};

TEST_P(SortProperties, StandardIsSortedPermutation) {
  const auto c = GetParam();
  auto keys = random_keys(c.n, c.max_key, c.n * 31 + c.max_key);
  auto vals = iota_values(c.n);
  pk::View<std::uint32_t, 1> orig("o", c.n);
  pk::deep_copy(orig, keys);
  vs::standard_sort(keys, vals);
  EXPECT_TRUE(vs::is_sorted_ascending(keys));
  EXPECT_TRUE(vs::is_permutation_of(keys, orig));
}

TEST_P(SortProperties, StridedPostcondition) {
  const auto c = GetParam();
  auto keys = random_keys(c.n, c.max_key, c.n * 37 + c.max_key);
  auto vals = iota_values(c.n);
  pk::View<std::uint32_t, 1> orig_k("ok", c.n), orig_v("ov", c.n);
  pk::deep_copy(orig_k, keys);
  pk::deep_copy(orig_v, vals);
  vs::strided_sort(keys, vals);
  EXPECT_TRUE(vs::is_strided_order(keys));
  EXPECT_TRUE(vs::is_permutation_of(keys, orig_k));
  EXPECT_TRUE(vs::pairs_preserved(keys, vals, orig_k, orig_v));
}

TEST_P(SortProperties, TiledStridedPostcondition) {
  const auto c = GetParam();
  auto keys = random_keys(c.n, c.max_key, c.n * 41 + c.max_key);
  auto vals = iota_values(c.n);
  pk::View<std::uint32_t, 1> orig_k("ok", c.n), orig_v("ov", c.n);
  pk::deep_copy(orig_k, keys);
  pk::deep_copy(orig_v, vals);
  vs::tiled_strided_sort(keys, vals, c.tile);
  EXPECT_TRUE(vs::is_tiled_strided_order(keys, c.tile));
  EXPECT_TRUE(vs::is_permutation_of(keys, orig_k));
  EXPECT_TRUE(vs::pairs_preserved(keys, vals, orig_k, orig_v));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SortProperties,
    ::testing::Values(SortCase{64, 7, 4}, SortCase{100, 3, 2},
                      SortCase{1000, 31, 8}, SortCase{1000, 999, 16},
                      SortCase{4096, 255, 32}, SortCase{10000, 99, 7},
                      SortCase{313, 312, 5}, SortCase{2048, 1, 2}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_k" +
             std::to_string(info.param.max_key) + "_t" +
             std::to_string(info.param.tile);
    });

TEST(StridedSort, ExampleFromPaperFigure2) {
  // Keys 0,0,0,1,1,2,2,2 -> strided order must interleave: 0,1,2,0,1,2,0,2
  pk::View<std::uint32_t, 1> keys("k", 8), vals("v", 8);
  const std::uint32_t kv[8] = {0, 0, 0, 1, 1, 2, 2, 2};
  for (int i = 0; i < 8; ++i) {
    keys(i) = kv[i];
    vals(i) = static_cast<std::uint32_t>(i);
  }
  vs::strided_sort(keys, vals);
  const std::uint32_t want[8] = {0, 1, 2, 0, 1, 2, 0, 2};
  for (int i = 0; i < 8; ++i) EXPECT_EQ(keys(i), want[i]) << "slot " << i;
}

TEST(StridedSort, MinKeyOffsetHandled) {
  // Keys not starting at zero must still produce a valid strided order.
  pk::View<std::uint32_t, 1> keys("k", 6), vals("v", 6);
  const std::uint32_t kv[6] = {10, 11, 10, 11, 10, 12};
  for (int i = 0; i < 6; ++i) {
    keys(i) = kv[i];
    vals(i) = static_cast<std::uint32_t>(i);
  }
  vs::strided_sort(keys, vals);
  EXPECT_TRUE(vs::is_strided_order(keys));
}

TEST(TiledStridedSort, KeysGroupedInChunks) {
  // 4 keys {0..3}, tile 2 -> chunks {0,1} and {2,3}: all 0/1 entries must
  // precede all 2/3 entries.
  pk::View<std::uint32_t, 1> keys("k", 12), vals("v", 12);
  for (int i = 0; i < 12; ++i) {
    keys(i) = static_cast<std::uint32_t>(i % 4);
    vals(i) = static_cast<std::uint32_t>(i);
  }
  vs::tiled_strided_sort(keys, vals, 2u);
  for (int i = 0; i < 6; ++i) EXPECT_LT(keys(i), 2u) << i;
  for (int i = 6; i < 12; ++i) EXPECT_GE(keys(i), 2u) << i;
}

TEST(RandomShuffle, DeterministicPermutation) {
  auto k1 = iota_values(500);
  auto v1 = iota_values(500);
  auto k2 = iota_values(500);
  auto v2 = iota_values(500);
  vs::random_shuffle(k1, v1, 99);
  vs::random_shuffle(k2, v2, 99);
  for (index_t i = 0; i < 500; ++i) {
    EXPECT_EQ(k1(i), k2(i));
    EXPECT_EQ(k1(i), v1(i));  // pairs stay together
  }
  auto sorted = iota_values(500);
  EXPECT_TRUE(vs::is_permutation_of(k1, sorted));
  // A different seed gives a different order.
  auto k3 = iota_values(500);
  auto v3 = iota_values(500);
  vs::random_shuffle(k3, v3, 100);
  bool any_diff = false;
  for (index_t i = 0; i < 500; ++i) any_diff |= (k3(i) != k1(i));
  EXPECT_TRUE(any_diff);
}

TEST(OrderChecks, NegativeCases) {
  // {0,0,1,2} = standard sorted, not strided (key 1's first occurrence
  // falls in run 1, but it should be in run 0).
  pk::View<std::uint32_t, 1> bad("b", 4);
  bad(0) = 0;
  bad(1) = 0;
  bad(2) = 1;
  bad(3) = 2;
  EXPECT_TRUE(vs::is_sorted_ascending(bad));
  EXPECT_FALSE(vs::is_strided_order(bad));

  // A standard-sorted repeated-key array is never strided.
  pk::View<std::uint32_t, 1> rep("r", 12);
  for (int i = 0; i < 12; ++i) rep(i) = static_cast<std::uint32_t>(i / 3);
  EXPECT_TRUE(vs::is_sorted_ascending(rep));
  EXPECT_FALSE(vs::is_strided_order(rep));

  // The canonical strided output IS strided.
  const std::uint32_t good_v[8] = {0, 1, 2, 0, 1, 2, 0, 2};
  pk::View<std::uint32_t, 1> good("g", 8);
  for (int i = 0; i < 8; ++i) good(i) = good_v[i];
  EXPECT_TRUE(vs::is_strided_order(good));

  pk::View<std::uint32_t, 1> notsorted("n", 3);
  notsorted(0) = 2;
  notsorted(1) = 1;
  notsorted(2) = 3;
  EXPECT_FALSE(vs::is_sorted_ascending(notsorted));
}

TEST(SortDispatch, SortPairsAllOrders) {
  for (auto order :
       {vs::SortOrder::Random, vs::SortOrder::Standard,
        vs::SortOrder::Strided, vs::SortOrder::TiledStrided}) {
    auto keys = random_keys(512, 15, 5);
    auto vals = iota_values(512);
    pk::View<std::uint32_t, 1> orig("o", 512);
    pk::deep_copy(orig, keys);
    vs::sort_pairs(order, keys, vals, 4u);
    EXPECT_TRUE(vs::is_permutation_of(keys, orig))
        << vs::to_string(order);
  }
}

TEST(KeyMinMax, FindsBounds) {
  auto keys = random_keys(1000, 5000, 17);
  keys(500) = 9999;
  keys(501) = 0;
  const auto mm = vs::key_minmax(keys);
  EXPECT_EQ(mm.min_val, 0u);
  EXPECT_EQ(mm.max_val, 9999u);
}

TEST(RadixSort, InPlacePermutationMatchesBuffered) {
  std::mt19937_64 rng(5150);
  for (int trial = 0; trial < 20; ++trial) {
    const index_t n = 1 + static_cast<index_t>(rng() % 500);
    // Random permutation.
    std::vector<index_t> p(static_cast<std::size_t>(n));
    std::iota(p.begin(), p.end(), index_t{0});
    std::shuffle(p.begin(), p.end(), rng);
    pk::View<index_t, 1> perm("perm", n);
    for (index_t i = 0; i < n; ++i) perm(i) = p[static_cast<std::size_t>(i)];

    pk::View<double, 1> a("a", n), b("b", n), ref("ref", n);
    for (index_t i = 0; i < n; ++i) a(i) = b(i) = std::sqrt(1.0 + i);
    vs::apply_permutation(perm, a, ref);
    vs::apply_permutation_in_place(perm, b);
    for (index_t i = 0; i < n; ++i) EXPECT_EQ(b(i), ref(i)) << "n=" << n;
  }
}

TEST(RadixSort, InPlaceIdentityAndSwap) {
  pk::View<index_t, 1> id("id", 4);
  pk::View<double, 1> d("d", 4);
  for (index_t i = 0; i < 4; ++i) {
    id(i) = i;
    d(i) = static_cast<double>(i);
  }
  vs::apply_permutation_in_place(id, d);
  for (index_t i = 0; i < 4; ++i) EXPECT_EQ(d(i), i);
  // One transposition.
  id(0) = 3;
  id(3) = 0;
  vs::apply_permutation_in_place(id, d);
  EXPECT_EQ(d(0), 3.0);
  EXPECT_EQ(d(3), 0.0);
  EXPECT_EQ(d(1), 1.0);
}
