// Tests for the roofline module and the codestats (Fig. 1) scanner.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "codestats/codestats.hpp"
#include "gpusim/device.hpp"
#include "roofline/roofline.hpp"

using namespace vpic;

TEST(Roofline, RidgePoint) {
  const auto& h100 = gpusim::device("H100");
  const double ridge = roofline::ridge_ai(h100);
  EXPECT_NEAR(ridge, h100.peak_fp32_gflops / h100.dram_bw_gbs, 1e-9);
  // Below the ridge: bandwidth-limited attainable; above: compute.
  EXPECT_LT(gpusim::roofline_attainable_gflops(h100, ridge * 0.5),
            h100.peak_fp32_gflops);
  EXPECT_EQ(gpusim::roofline_attainable_gflops(h100, ridge * 2.0),
            h100.peak_fp32_gflops);
}

TEST(Roofline, AnalyzeComputesUtilization) {
  const auto& dev = gpusim::device("A100");
  gpusim::KernelProfile p;
  p.flops = 1e9;
  p.dram_bytes = 1'000'000'000;  // AI = 1
  p.logical_bytes = p.dram_bytes;
  const auto pt = roofline::analyze(dev, p, "test");
  EXPECT_NEAR(pt.ai, 1.0, 1e-9);
  EXPECT_NEAR(pt.attainable_gflops, dev.dram_bw_gbs, 1e-6);
  // Kernel is DRAM-bound at AI=1: achieved == attainable.
  EXPECT_NEAR(pt.utilization, 1.0, 1e-6);
  EXPECT_EQ(pt.label, "test");
}

TEST(Roofline, PoorUtilizationFlagged) {
  const auto& dev = gpusim::device("MI250");
  gpusim::KernelProfile p;
  p.flops = 1e9;
  p.dram_bytes = 100'000'000;      // AI = 10
  p.logical_bytes = p.dram_bytes;
  p.atomic_serial = 500'000'000;   // contention wrecks throughput
  const auto pt = roofline::analyze(dev, p, "contended");
  EXPECT_LT(pt.utilization, 0.1);
  EXPECT_EQ(pt.bound, gpusim::Bound::Atomic);
}

TEST(Roofline, ReportContainsAllKernels) {
  const auto& dev = gpusim::device("H100");
  gpusim::KernelProfile p;
  p.flops = 1e9;
  p.dram_bytes = 1'000'000'000;
  p.logical_bytes = p.dram_bytes;
  std::vector<roofline::RooflinePoint> pts{
      roofline::analyze(dev, p, "alpha"),
      roofline::analyze(dev, p, "beta")};
  const std::string rep = roofline::format_report(dev, pts);
  EXPECT_NE(rep.find("H100"), std::string::npos);
  EXPECT_NE(rep.find("alpha"), std::string::npos);
  EXPECT_NE(rep.find("beta"), std::string::npos);
  EXPECT_NE(rep.find("ridge"), std::string::npos);
}

// ----------------------------------------------------------------------
// codestats
// ----------------------------------------------------------------------

namespace {

std::filesystem::path write_temp(const std::string& name,
                                 const std::string& content) {
  const auto dir = std::filesystem::temp_directory_path() / "vpic_codestats";
  std::filesystem::create_directories(dir / "v4");
  std::filesystem::create_directories(dir / "core");
  const auto p = dir / name;
  std::ofstream(p) << content;
  return p;
}

}  // namespace

TEST(CodeStats, CountsLineCategories) {
  const auto f = write_temp("v4/sample_avx2.cpp",
                            "// comment line\n"
                            "\n"
                            "int x = 1;  // trailing comment is code\n"
                            "/* block\n"
                            "   comment */\n"
                            "int y = 2;\n");
  const auto s = codestats::count_file(f);
  EXPECT_EQ(s.code_lines, 2);
  EXPECT_EQ(s.comment_lines, 3);
  EXPECT_EQ(s.blank_lines, 1);
}

TEST(CodeStats, ClassifiesByPath) {
  EXPECT_EQ(codestats::classify("src/v4/v8_avx2.hpp"), "simd:AVX2");
  EXPECT_EQ(codestats::classify("src/v4/v16_avx512.hpp"), "simd:AVX512");
  EXPECT_EQ(codestats::classify("src/v4/v4_sse.hpp"), "simd:SSE");
  EXPECT_EQ(codestats::classify("src/v4/v4_portable.hpp"), "simd:portable");
  EXPECT_EQ(codestats::classify("src/simd/vec.hpp"), "portable-simd");
  EXPECT_EQ(codestats::classify("src/core/push.cpp"), "kernel");
  EXPECT_EQ(codestats::classify("src/kernels/rajaperf_kernels.cpp"),
            "kernel");
  EXPECT_EQ(codestats::classify("src/pk/view.hpp"), "other");
}

TEST(CodeStats, ScanAggregates) {
  write_temp("v4/a_avx2.cpp", "int a;\nint b;\n");
  write_temp("core/push_x.cpp", "int c;\n");
  const auto dir = std::filesystem::temp_directory_path() / "vpic_codestats";
  const auto t = codestats::scan_tree(dir);
  EXPECT_GE(t.total_code_lines, 3);
  EXPECT_GT(t.fraction("simd:"), 0.0);
  EXPECT_GT(t.fraction("kernel"), 0.0);
  EXPECT_LE(t.fraction("simd:") + t.fraction("kernel") + t.fraction("other"),
            1.0 + 1e-9);
}

TEST(CodeStats, MissingTreeIsEmpty) {
  const auto t = codestats::scan_tree("/nonexistent/path/xyz");
  EXPECT_EQ(t.total_code_lines, 0);
  EXPECT_EQ(t.fraction("simd:"), 0.0);
}

TEST(CodeStats, ReferenceBreakdownSumsToHundred) {
  double total = 0;
  for (const auto& [k, v] : codestats::vpic12_reference_breakdown())
    total += v;
  EXPECT_NEAR(total, 100.0, 0.5);
  // Headline claims of Fig. 1.
  double simd = 0;
  for (const auto& [k, v] : codestats::vpic12_reference_breakdown())
    if (k.rfind("simd:", 0) == 0) simd += v;
  EXPECT_GE(simd, 57.0);
  EXPECT_NEAR(codestats::vpic12_reference_breakdown().at("kernels"), 11.0,
              1e-9);
}
