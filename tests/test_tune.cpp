// Tests for vpic::tune (src/tune, docs/LAYOUT.md "Autotuning"):
//
//   * host fingerprint format and stability,
//   * VPICTUNE1 encode/decode round trip,
//   * every typed cache failure kind (BadSchema, Parse, StaleFingerprint,
//     OutOfRange) and the decode-leaves-output-untouched contract,
//   * initialize_from(): probe on a cold cache, write-through, hit on the
//     second run, fall back past a corrupt/stale cache with the matching
//     prof counter, force re-probe,
//   * probe outputs always inside the documented clamp ranges,
//   * installation into core::active_push_gates()/sort::active_sort_model()
//     and reset_for_testing() restoring the built-in defaults.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "core/push_tuning.hpp"
#include "prof/prof.hpp"
#include "tune/tune.hpp"

namespace core = vpic::core;
namespace tune = vpic::tune;
namespace prof = vpic::prof;
namespace fs = std::filesystem;

namespace {

fs::path scratch(const std::string& tag) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("vpic_tune_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// A state with distinctive in-range values so round trips are meaningful.
tune::TuneState sample_state() {
  tune::TuneState s;
  s.fingerprint = tune::host_fingerprint();
  for (int i = 0; i < core::kNumParticleLayouts; ++i) {
    s.gates[i].min_particles = 128 + 64 * i;
    s.gates[i].max_stale = 32 + 8 * i;
    s.gates[i].min_mean_run = 3.5 + 0.25 * i;
  }
  s.sort_model.cells_per_n = 0.25;
  s.sort_model.cells_floor = 65536.0;
  return s;
}

void write_text(const fs::path& p, const std::string& text) {
  std::ofstream out(p, std::ios::trunc);
  out << text;
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

/// Clamp-range predicates mirroring tune.hpp's documented bounds.
void expect_gates_in_clamps(const core::PushGates& g) {
  EXPECT_GE(g.min_particles, 64);
  EXPECT_LE(g.min_particles, 4096);
  EXPECT_GE(g.max_stale, 8);
  EXPECT_LE(g.max_stale, 256);
  EXPECT_GE(g.min_mean_run, 2.0);
  EXPECT_LE(g.min_mean_run, 16.0);
}

void expect_model_in_clamps(const core::SortDispatchModel& m) {
  EXPECT_GE(m.cells_per_n, 1.0 / 64.0);
  EXPECT_LE(m.cells_per_n, 1.0);
  EXPECT_GE(m.cells_floor, 16384.0);
  EXPECT_LE(m.cells_floor, 4194304.0);
}

/// Restores untouched registries after each test: the suite mutates
/// process-global dispatch state.
class TuneTest : public ::testing::Test {
 protected:
  void TearDown() override { tune::reset_for_testing(); }
};

}  // namespace

// ---- fingerprint -----------------------------------------------------

TEST_F(TuneTest, FingerprintFormatAndStability) {
  const std::string fp = tune::host_fingerprint();
  EXPECT_EQ(fp.rfind("vpictune1;host=", 0), 0u) << fp;
  EXPECT_NE(fp.find(";threads="), std::string::npos) << fp;
  EXPECT_NE(fp.find(";isa="), std::string::npos) << fp;
  EXPECT_NE(fp.find(";w="), std::string::npos) << fp;
  EXPECT_NE(fp.find(";tile="), std::string::npos) << fp;
  EXPECT_NE(fp.find(";compiler="), std::string::npos) << fp;
  EXPECT_EQ(fp, tune::host_fingerprint());  // deterministic per process
}

// ---- encode/decode ---------------------------------------------------

TEST_F(TuneTest, CacheRoundTrip) {
  const tune::TuneState s = sample_state();
  const std::string text = tune::encode_cache(s);
  EXPECT_NE(text.find("\"schema\": \"VPICTUNE1\""), std::string::npos);

  tune::TuneState back;
  const auto err = tune::decode_cache(text, s.fingerprint, back);
  ASSERT_FALSE(err.has_value()) << tune::to_string(err->kind) << ": "
                                << err->detail;
  for (int i = 0; i < core::kNumParticleLayouts; ++i) {
    EXPECT_EQ(back.gates[i].min_particles, s.gates[i].min_particles);
    EXPECT_EQ(back.gates[i].max_stale, s.gates[i].max_stale);
    EXPECT_DOUBLE_EQ(back.gates[i].min_mean_run, s.gates[i].min_mean_run);
  }
  EXPECT_DOUBLE_EQ(back.sort_model.cells_per_n, s.sort_model.cells_per_n);
  EXPECT_DOUBLE_EQ(back.sort_model.cells_floor, s.sort_model.cells_floor);
}

TEST_F(TuneTest, DecodeRejectsBadSchema) {
  tune::TuneState out;
  auto err = tune::decode_cache("not json at all", "fp", out);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->kind, tune::TuneErrorKind::BadSchema);

  err = tune::decode_cache(R"({"schema": "VPICTUNE9"})", "fp", out);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->kind, tune::TuneErrorKind::BadSchema);
}

TEST_F(TuneTest, DecodeRejectsStaleFingerprint) {
  const tune::TuneState s = sample_state();
  tune::TuneState out;
  const auto err = tune::decode_cache(tune::encode_cache(s),
                                      "vpictune1;host=elsewhere", out);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->kind, tune::TuneErrorKind::StaleFingerprint);
  EXPECT_NE(err->detail.find(s.fingerprint), std::string::npos);
}

TEST_F(TuneTest, DecodeRejectsMissingKeysAsParse) {
  tune::TuneState out;
  // Valid schema + fingerprint but no gate payload.
  const std::string text = "{\"schema\": \"VPICTUNE1\", \"fingerprint\": \"" +
                           tune::host_fingerprint() + "\"}";
  const auto err = tune::decode_cache(text, tune::host_fingerprint(), out);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->kind, tune::TuneErrorKind::Parse);
}

TEST_F(TuneTest, DecodeRejectsOutOfRangeValues) {
  tune::TuneState s = sample_state();
  s.gates[0].min_mean_run = 500.0;  // far outside [2, 16]
  // encode_cache writes whatever it is given; the *decoder* owns the
  // range policy (a crafted cache cannot disable a dispatch path).
  tune::TuneState out;
  const auto err =
      tune::decode_cache(tune::encode_cache(s), s.fingerprint, out);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->kind, tune::TuneErrorKind::OutOfRange);
}

TEST_F(TuneTest, FailedDecodeLeavesOutputUntouched) {
  tune::TuneState out = sample_state();
  const auto before_mp = out.gates[0].min_particles;
  const auto err = tune::decode_cache("garbage", "fp", out);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(out.gates[0].min_particles, before_mp);
}

// ---- initialize_from pipeline ----------------------------------------

TEST_F(TuneTest, ColdCacheProbesAndWritesThrough) {
  const auto dir = scratch("cold");
  const std::string path = (dir / "cache.json").string();

  const auto probe_before = prof::counter_value("tune.probe");
  const auto written_before = prof::counter_value("tune.cache.written");
  const tune::TuneState s = tune::initialize_from(path, /*force=*/false);
  EXPECT_EQ(s.source, tune::Source::Probes);
  EXPECT_EQ(prof::counter_value("tune.probe"), probe_before + 1);
  EXPECT_EQ(prof::counter_value("tune.cache.written"), written_before + 1);
  ASSERT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));  // committed via rename

  for (int i = 0; i < core::kNumParticleLayouts; ++i) {
    SCOPED_TRACE(core::to_string(core::kAllParticleLayouts[i]));
    expect_gates_in_clamps(s.gates[i]);
    // initialize_from installs into the live registries.
    const auto& live = core::active_push_gates(core::kAllParticleLayouts[i]);
    EXPECT_EQ(live.min_particles, s.gates[i].min_particles);
    EXPECT_EQ(live.max_stale, s.gates[i].max_stale);
  }
  expect_model_in_clamps(s.sort_model);
  EXPECT_DOUBLE_EQ(vpic::sort::active_sort_model().cells_per_n,
                   s.sort_model.cells_per_n);

  // Second run on the same host: a cache hit with identical values.
  const auto hit_before = prof::counter_value("tune.cache.hit");
  const tune::TuneState again = tune::initialize_from(path, false);
  EXPECT_EQ(again.source, tune::Source::Cache);
  EXPECT_FALSE(again.cache_error.has_value());
  EXPECT_EQ(prof::counter_value("tune.cache.hit"), hit_before + 1);
  for (int i = 0; i < core::kNumParticleLayouts; ++i) {
    EXPECT_EQ(again.gates[i].min_particles, s.gates[i].min_particles);
    EXPECT_EQ(again.gates[i].max_stale, s.gates[i].max_stale);
    EXPECT_DOUBLE_EQ(again.gates[i].min_mean_run, s.gates[i].min_mean_run);
  }
  EXPECT_DOUBLE_EQ(again.sort_model.cells_floor, s.sort_model.cells_floor);
}

TEST_F(TuneTest, CorruptCacheFallsBackWithCounterAndRewrite) {
  const auto dir = scratch("corrupt");
  const std::string path = (dir / "cache.json").string();
  write_text(path, "{\"schema\": \"VPICTUNE1\", \"fingerprint");  // torn

  const auto corrupt_before = prof::counter_value("tune.cache.corrupt");
  const tune::TuneState s = tune::initialize_from(path, false);
  EXPECT_EQ(s.source, tune::Source::Probes);  // fell back, did not abort
  ASSERT_TRUE(s.cache_error.has_value());
  EXPECT_EQ(s.cache_error->kind, tune::TuneErrorKind::Parse);
  EXPECT_EQ(prof::counter_value("tune.cache.corrupt"), corrupt_before + 1);

  // The bad file was replaced by a good one: next run hits.
  tune::TuneState back;
  EXPECT_FALSE(
      tune::decode_cache(slurp(path), tune::host_fingerprint(), back)
          .has_value());
}

TEST_F(TuneTest, StaleCacheFallsBackWithStaleCounter) {
  const auto dir = scratch("stale");
  const std::string path = (dir / "cache.json").string();
  tune::TuneState other = sample_state();
  other.fingerprint = "vpictune1;host=another-machine;threads=1";
  write_text(path, tune::encode_cache(other));

  const auto stale_before = prof::counter_value("tune.cache.stale");
  const tune::TuneState s = tune::initialize_from(path, false);
  EXPECT_EQ(s.source, tune::Source::Probes);
  ASSERT_TRUE(s.cache_error.has_value());
  EXPECT_EQ(s.cache_error->kind, tune::TuneErrorKind::StaleFingerprint);
  EXPECT_EQ(prof::counter_value("tune.cache.stale"), stale_before + 1);
}

TEST_F(TuneTest, MissingCacheCountsAsMissNotCorrupt) {
  const auto dir = scratch("miss");
  const auto miss_before = prof::counter_value("tune.cache.miss");
  const auto corrupt_before = prof::counter_value("tune.cache.corrupt");
  const tune::TuneState s =
      tune::initialize_from((dir / "nope.json").string(), false);
  EXPECT_EQ(s.source, tune::Source::Probes);
  EXPECT_EQ(prof::counter_value("tune.cache.miss"), miss_before + 1);
  EXPECT_EQ(prof::counter_value("tune.cache.corrupt"), corrupt_before);
}

TEST_F(TuneTest, ForceSkipsValidCache) {
  const auto dir = scratch("force");
  const std::string path = (dir / "cache.json").string();
  (void)tune::initialize_from(path, false);  // seed a valid cache
  const auto forced_before = prof::counter_value("tune.forced");
  const tune::TuneState s = tune::initialize_from(path, /*force=*/true);
  EXPECT_EQ(s.source, tune::Source::Probes);
  EXPECT_EQ(prof::counter_value("tune.forced"), forced_before + 1);
}

TEST_F(TuneTest, EmptyPathDisablesCacheIo) {
  const tune::TuneState s = tune::initialize_from("", false);
  EXPECT_EQ(s.source, tune::Source::Probes);
  EXPECT_TRUE(s.cache_path.empty());
  EXPECT_FALSE(s.cache_error.has_value());
}

// ---- registry install / reset ----------------------------------------

TEST_F(TuneTest, ResetRestoresBuiltInDefaults) {
  const core::PushGates defaults;
  const core::SortDispatchModel default_model;
  (void)tune::initialize_from("", false);
  tune::reset_for_testing();
  for (const auto layout : core::kAllParticleLayouts) {
    const auto& g = core::active_push_gates(layout);
    EXPECT_EQ(g.min_particles, defaults.min_particles);
    EXPECT_EQ(g.max_stale, defaults.max_stale);
    EXPECT_DOUBLE_EQ(g.min_mean_run, defaults.min_mean_run);
  }
  EXPECT_DOUBLE_EQ(vpic::sort::active_sort_model().cells_per_n,
                   default_model.cells_per_n);
  EXPECT_DOUBLE_EQ(vpic::sort::active_sort_model().cells_floor,
                   default_model.cells_floor);
}
