// Tests for the ad hoc (VPIC 1.2-style) per-ISA SIMD library: each
// available ISA implementation is checked against the portable reference.
#include <gtest/gtest.h>

#include <cmath>

#include "v4/v4.hpp"

using namespace vpic::v4;

template <class V>
class V4Impl : public ::testing::Test {};

using Impls = ::testing::Types<
    v4float_portable
#if defined(__SSE2__)
    ,
    v4float_sse
#endif
    >;
TYPED_TEST_SUITE(V4Impl, Impls);

TYPED_TEST(V4Impl, BroadcastLoadStore) {
  using V = TypeParam;
  V a(2.5f);
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(a[i], 2.5f);
  float buf[4] = {1, 2, 3, 4};
  V b = V::load(buf);
  float out[4];
  b.store(out);
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(out[i], buf[i]);
}

TYPED_TEST(V4Impl, Arithmetic) {
  using V = TypeParam;
  float xa[4] = {1, 2, 3, 4}, xb[4] = {5, 6, 7, 8};
  V a = V::load(xa), b = V::load(xb);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ((a + b)[i], xa[i] + xb[i]);
    EXPECT_FLOAT_EQ((a - b)[i], xa[i] - xb[i]);
    EXPECT_FLOAT_EQ((a * b)[i], xa[i] * xb[i]);
    EXPECT_FLOAT_EQ((a / b)[i], xa[i] / xb[i]);
  }
}

TYPED_TEST(V4Impl, FmaSqrtHsum) {
  using V = TypeParam;
  V a(3.0f), b(4.0f), c(5.0f);
  EXPECT_FLOAT_EQ(V::fma(a, b, c)[2], 17.0f);
  float sq[4] = {1, 4, 9, 16};
  V s = V::sqrt(V::load(sq));
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(s[i], static_cast<float>(i + 1));
  float h[4] = {1, 2, 3, 4};
  EXPECT_FLOAT_EQ(V::load(h).hsum(), 10.0f);
}

TYPED_TEST(V4Impl, RsqrtNewtonAccuracy) {
  using V = TypeParam;
  float vals[4] = {0.25f, 1.0f, 4.0f, 100.0f};
  V r = V::rsqrt(V::load(vals));
  for (int i = 0; i < 4; ++i) {
    const float ref = 1.0f / std::sqrt(vals[i]);
    EXPECT_NEAR(r[i], ref, std::abs(ref) * 2e-5f) << "lane " << i;
  }
}

TYPED_TEST(V4Impl, Transpose4x4) {
  using V = TypeParam;
  float m[4][4];
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c) m[r][c] = static_cast<float>(r * 4 + c);
  V r0 = V::load(m[0]), r1 = V::load(m[1]), r2 = V::load(m[2]),
    r3 = V::load(m[3]);
  V::transpose(r0, r1, r2, r3);
  V rows[4] = {r0, r1, r2, r3};
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c) EXPECT_FLOAT_EQ(rows[r][c], m[c][r]);
}

TYPED_TEST(V4Impl, SetLane) {
  using V = TypeParam;
  V a(0.0f);
  a.set(2, 7.5f);
  EXPECT_FLOAT_EQ(a[2], 7.5f);
  EXPECT_FLOAT_EQ(a[1], 0.0f);
}

#if defined(__AVX2__)
TEST(V8Avx2, MatchesPortableSemantics) {
  float buf[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  auto v = v8float_avx2::load(buf);
  EXPECT_FLOAT_EQ(v.hsum(), 36.0f);
  auto w = v8float_avx2::fma(v, v8float_avx2(2.0f), v8float_avx2(1.0f));
  for (int i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(w[i], buf[i] * 2 + 1);
  auto mn = v8float_avx2::min(v, v8float_avx2(4.5f));
  auto mx = v8float_avx2::max(v, v8float_avx2(4.5f));
  for (int i = 0; i < 8; ++i) {
    EXPECT_FLOAT_EQ(mn[i], std::min(buf[i], 4.5f));
    EXPECT_FLOAT_EQ(mx[i], std::max(buf[i], 4.5f));
  }
}

TEST(V8Avx2, Gather) {
  float table[32];
  for (int i = 0; i < 32; ++i) table[i] = static_cast<float>(i * 2);
  int idx[8] = {0, 31, 3, 7, 15, 1, 30, 8};
  auto g = v8float_avx2::gather(table, idx);
  for (int i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(g[i], table[idx[i]]);
}

TEST(V8Avx2, Transpose8x8) {
  float m[8][8];
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c) m[r][c] = static_cast<float>(r * 8 + c);
  v8float_avx2 rows[8] = {
      v8float_avx2::load(m[0]), v8float_avx2::load(m[1]),
      v8float_avx2::load(m[2]), v8float_avx2::load(m[3]),
      v8float_avx2::load(m[4]), v8float_avx2::load(m[5]),
      v8float_avx2::load(m[6]), v8float_avx2::load(m[7])};
  v8float_avx2::transpose(rows[0], rows[1], rows[2], rows[3], rows[4],
                          rows[5], rows[6], rows[7]);
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c) EXPECT_FLOAT_EQ(rows[r][c], m[c][r]);
}
#endif  // __AVX2__

#if defined(__AVX512F__)
TEST(V16Avx512, BasicOpsAndReduce) {
  float buf[16];
  for (int i = 0; i < 16; ++i) buf[i] = static_cast<float>(i);
  auto v = v16float_avx512::load(buf);
  EXPECT_FLOAT_EQ(v.hsum(), 120.0f);
  auto r = v16float_avx512::rsqrt(v16float_avx512(4.0f));
  EXPECT_NEAR(r[5], 0.5f, 2e-5f);
}

TEST(V16Avx512, MaskedSelect) {
  auto a = v16float_avx512(1.0f);
  auto b = v16float_avx512(2.0f);
  // a < b everywhere -> if_true everywhere.
  auto sel = v16float_avx512::select_lt(a, b, v16float_avx512(10.0f),
                                        v16float_avx512(20.0f));
  for (int i = 0; i < 16; ++i) EXPECT_FLOAT_EQ(sel[i], 10.0f);
  auto sel2 = v16float_avx512::select_lt(b, a, v16float_avx512(10.0f),
                                         v16float_avx512(20.0f));
  for (int i = 0; i < 16; ++i) EXPECT_FLOAT_EQ(sel2[i], 20.0f);
}
#endif  // __AVX512F__

TEST(Dispatch, ActiveIsaConsistent) {
  EXPECT_GE(active_width(), 4);
  EXPECT_STRNE(active_isa(), "");
#if defined(__AVX512F__)
  EXPECT_STREQ(active_isa(), "AVX512");
  EXPECT_EQ(active_width(), 16);
#elif defined(__AVX2__)
  EXPECT_STREQ(active_isa(), "AVX2");
  EXPECT_EQ(active_width(), 8);
#endif
}

// ----------------------------------------------------------------------
// Integer vector companions (v4int family).
// ----------------------------------------------------------------------

template <class V>
class V4IntImpl : public ::testing::Test {};

using IntImpls = ::testing::Types<
    v4int_portable
#if defined(__SSE2__)
    ,
    v4int_sse
#endif
    >;
TYPED_TEST_SUITE(V4IntImpl, IntImpls);

TYPED_TEST(V4IntImpl, ArithmeticAndBitwise) {
  using V = TypeParam;
  V a(1, 2, 3, 4), b(10, 20, 30, 40);
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ((a + b)[k], (k + 1) * 11);
    EXPECT_EQ((b - a)[k], (k + 1) * 9);
    EXPECT_EQ((a * b)[k], (k + 1) * (k + 1) * 10);
  }
  V m(0xF0F0), n(0x0FF0);
  EXPECT_EQ((m & n)[0], 0x00F0);
  EXPECT_EQ((m | n)[0], 0xFFF0);
  EXPECT_EQ((m ^ n)[0], 0xFF00);
}

TYPED_TEST(V4IntImpl, Shifts) {
  using V = TypeParam;
  V a(1, 2, 4, -8);
  EXPECT_EQ((a << 2)[0], 4);
  EXPECT_EQ((a << 2)[2], 16);
  EXPECT_EQ((a >> 1)[1], 1);
  EXPECT_EQ((a >> 1)[3], -4);  // arithmetic shift preserves sign
}

TYPED_TEST(V4IntImpl, CompareAndMerge) {
  using V = TypeParam;
  V a(1, 5, 3, 7), b(2, 4, 3, 8);
  const V lt = V::cmplt(a, b);
  EXPECT_EQ(lt[0], -1);
  EXPECT_EQ(lt[1], 0);
  EXPECT_EQ(lt[2], 0);
  EXPECT_EQ(lt[3], -1);
  const V eq = V::cmpeq(a, b);
  EXPECT_EQ(eq[2], -1);
  EXPECT_EQ(eq[0], 0);
  const V merged = V::merge(lt, V(100), V(200));
  EXPECT_EQ(merged[0], 100);
  EXPECT_EQ(merged[1], 200);
  EXPECT_EQ(merged[3], 100);
}

TYPED_TEST(V4IntImpl, Predicates) {
  using V = TypeParam;
  EXPECT_FALSE(V(0).any());
  EXPECT_TRUE(V(0, 0, 1, 0).any());
  EXPECT_TRUE(V(1, 2, 3, 4).all());
  EXPECT_FALSE(V(1, 0, 3, 4).all());
  EXPECT_EQ(V(1, 2, 3, 4).hadd(), 10);
}

TYPED_TEST(V4IntImpl, LoadStoreSet) {
  using V = TypeParam;
  std::int32_t buf[4] = {9, 8, 7, 6};
  V v = V::load(buf);
  v.set(2, 77);
  std::int32_t out[4];
  v.store(out);
  EXPECT_EQ(out[0], 9);
  EXPECT_EQ(out[2], 77);
  EXPECT_EQ(out[3], 6);
}

#if defined(__AVX2__)
TEST(V8IntAvx2, WideOps) {
  std::int32_t buf[8] = {1, -2, 3, -4, 5, -6, 7, -8};
  auto v = v8int_avx2::load(buf);
  EXPECT_EQ(v.hadd(), -4);
  auto doubled = v + v;
  EXPECT_EQ(doubled[5], -12);
  auto sq = v * v;
  EXPECT_EQ(sq[7], 64);
  EXPECT_TRUE(v.any());
  EXPECT_FALSE(v8int_avx2(0).any());
  auto m = v8int_avx2::cmplt(v, v8int_avx2(0));
  auto abs = v8int_avx2::merge(m, v8int_avx2(0) - v, v);
  for (int k = 0; k < 8; ++k) EXPECT_EQ(abs[k], k + 1);
}
#endif

#if defined(__AVX512F__)
TEST(V16IntAvx512, OpsAndOpmaskBlend) {
  std::int32_t buf[16];
  for (int i = 0; i < 16; ++i) buf[i] = i - 8;
  auto v = v16int_avx512::load(buf);
  EXPECT_EQ(v.hadd(), -8);
  EXPECT_EQ((v + v)[3], -10);
  EXPECT_EQ((v * v)[0], 64);
  EXPECT_EQ((v << 1)[15], 14);
  EXPECT_EQ((v >> 1)[0], -4);
  const auto neg = v16int_avx512::cmplt_mask(v, v16int_avx512(0));
  const auto abs = v16int_avx512::merge(neg, v16int_avx512(0) - v, v);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(abs[i], std::abs(i - 8));
}
#endif
