// Tests for the RAJAPerf-derived microkernels: all three strategies must
// produce the same numerical results (the benchmark compares their speed,
// so their correctness equivalence is load-bearing).
#include <gtest/gtest.h>

#include <cmath>

#include "kernels/rajaperf_kernels.hpp"

using namespace vpic;
using kernels::Strategy;
using pk::index_t;

namespace {

class AllStrategies : public ::testing::TestWithParam<Strategy> {};

pk::View<double, 1> filled(const char* name, index_t n, double base,
                           double step) {
  pk::View<double, 1> v(name, n);
  for (index_t i = 0; i < n; ++i)
    v(i) = base + step * static_cast<double>(i % 1000);
  return v;
}

}  // namespace

TEST_P(AllStrategies, AxpyMatchesReference) {
  const index_t n = 10007;  // odd: exercises vector tails
  auto x = filled("x", n, 1.0, 0.001);
  auto y = filled("y", n, 2.0, 0.002);
  const double a = 1.5;
  kernels::axpy(GetParam(), a, x, y);
  for (index_t i = 0; i < n; i += 997) {
    const double ref =
        (2.0 + 0.002 * static_cast<double>(i % 1000)) +
        a * (1.0 + 0.001 * static_cast<double>(i % 1000));
    EXPECT_NEAR(y(i), ref, 1e-12) << "i=" << i;
  }
}

TEST_P(AllStrategies, PlanckianMatchesLibm) {
  const index_t n = 4099;
  auto x = filled("x", n, 0.5, 0.003);
  auto v = filled("v", n, 1.0, 0.001);
  auto u = filled("u", n, 2.0, 0.0);
  pk::View<double, 1> y("y", n);
  kernels::planckian(GetParam(), x, v, u, y);
  for (index_t i = 0; i < n; i += 101) {
    const double ref = u(i) / (std::exp(x(i) / v(i)) - 1.0);
    EXPECT_NEAR(y(i), ref, std::abs(ref) * 1e-12) << "i=" << i;
  }
}

TEST_P(AllStrategies, PiReduceConvergesToPi) {
  for (index_t n : {1000, 10007, 100003}) {
    const double pi = kernels::pi_reduce(GetParam(), n);
    // Midpoint rule error ~ 1/(24 n^2).
    EXPECT_NEAR(pi, 3.14159265358979, 1.0 / (static_cast<double>(n) *
                                             static_cast<double>(n)))
        << "n=" << n;
  }
}

TEST_P(AllStrategies, PlanckianLargeNegativeDomain) {
  // exp of strongly negative arguments: denominator -> -1, y -> -u.
  const index_t n = 257;
  pk::View<double, 1> x("x", n), v("v", n), u("u", n), y("y", n);
  pk::deep_copy(x, -100.0);
  pk::deep_copy(v, 1.0);
  pk::deep_copy(u, 3.0);
  kernels::planckian(GetParam(), x, v, u, y);
  for (index_t i = 0; i < n; ++i) EXPECT_NEAR(y(i), -3.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Strategies, AllStrategies,
                         ::testing::Values(Strategy::Auto, Strategy::Guided,
                                           Strategy::Manual),
                         [](const auto& info) {
                           return std::string(
                               kernels::to_string(info.param));
                         });

TEST(Kernels, StrategiesAgreePairwise) {
  const index_t n = 8192;
  auto x = filled("x", n, 0.2, 0.0007);
  auto v = filled("v", n, 0.9, 0.0005);
  auto u = filled("u", n, 1.0, 0.0002);
  pk::View<double, 1> ya("ya", n), yg("yg", n), ym("ym", n);
  kernels::planckian(Strategy::Auto, x, v, u, ya);
  kernels::planckian(Strategy::Guided, x, v, u, yg);
  kernels::planckian(Strategy::Manual, x, v, u, ym);
  for (index_t i = 0; i < n; i += 31) {
    EXPECT_DOUBLE_EQ(ya(i), yg(i)) << i;  // same libm path
    EXPECT_NEAR(ym(i), ya(i), std::abs(ya(i)) * 1e-13) << i;  // vector exp
  }
}
