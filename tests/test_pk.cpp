// Unit tests for the pk portability layer: Views/layouts, parallel
// dispatch on both backends, reducers, scans, atomics, hierarchical
// policies.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "pk/pk.hpp"

namespace pk = vpic::pk;
using pk::index_t;

namespace {

class PkEnv : public ::testing::Environment {
 public:
  void SetUp() override { pk::initialize(2); }
};
[[maybe_unused]] const auto* const env =
    ::testing::AddGlobalTestEnvironment(new PkEnv);

}  // namespace

TEST(View, ExtentsAndSize) {
  pk::View<float, 3> v("v", 4, 5, 6);
  EXPECT_EQ(v.extent(0), 4);
  EXPECT_EQ(v.extent(1), 5);
  EXPECT_EQ(v.extent(2), 6);
  EXPECT_EQ(v.size(), 120);
  EXPECT_EQ(v.size_bytes(), 480);
  EXPECT_TRUE(v.allocated());
  EXPECT_EQ(v.label(), "v");
}

TEST(View, ZeroInitialized) {
  pk::View<double, 1> v("v", 16);
  for (index_t i = 0; i < 16; ++i) EXPECT_EQ(v(i), 0.0);
}

TEST(View, LayoutRightStrides) {
  pk::View<int, 3, pk::LayoutRight> v("v", 2, 3, 4);
  EXPECT_EQ(v.stride(2), 1);
  EXPECT_EQ(v.stride(1), 4);
  EXPECT_EQ(v.stride(0), 12);
  EXPECT_EQ(&v(0, 0, 1) - &v(0, 0, 0), 1);
}

TEST(View, LayoutLeftStrides) {
  pk::View<int, 3, pk::LayoutLeft> v("v", 2, 3, 4);
  EXPECT_EQ(v.stride(0), 1);
  EXPECT_EQ(v.stride(1), 2);
  EXPECT_EQ(v.stride(2), 6);
  EXPECT_EQ(&v(1, 0, 0) - &v(0, 0, 0), 1);
}

TEST(View, SharedOwnership) {
  pk::View<int, 1> a("a", 8);
  {
    pk::View<int, 1> b = a;
    EXPECT_EQ(a.use_count(), 2);
    b(3) = 42;
  }
  EXPECT_EQ(a.use_count(), 1);
  EXPECT_EQ(a(3), 42);
}

TEST(View, UnmanagedWrap) {
  std::vector<float> storage(10, 1.5f);
  pk::View<float, 1> v(storage.data(), 10);
  EXPECT_EQ(v(4), 1.5f);
  v(4) = 2.5f;
  EXPECT_EQ(storage[4], 2.5f);
}

TEST(View, DeepCopySameLayout) {
  pk::View<double, 2> a("a", 3, 4), b("b", 3, 4);
  for (index_t i = 0; i < 3; ++i)
    for (index_t j = 0; j < 4; ++j) a(i, j) = static_cast<double>(i * 10 + j);
  pk::deep_copy(b, a);
  EXPECT_EQ(b(2, 3), 23.0);
}

TEST(View, DeepCopyTransposingLayout) {
  pk::View<int, 2, pk::LayoutRight> a("a", 3, 4);
  pk::View<int, 2, pk::LayoutLeft> b("b", 3, 4);
  for (index_t i = 0; i < 3; ++i)
    for (index_t j = 0; j < 4; ++j) a(i, j) = static_cast<int>(i * 10 + j);
  pk::deep_copy(b, a);
  for (index_t i = 0; i < 3; ++i)
    for (index_t j = 0; j < 4; ++j) EXPECT_EQ(b(i, j), a(i, j));
}

TEST(View, FillValue) {
  pk::View<float, 1> v("v", 100);
  pk::deep_copy(v, 3.5f);
  EXPECT_EQ(v(0), 3.5f);
  EXPECT_EQ(v(99), 3.5f);
}

TEST(View, MirrorCopy) {
  pk::View<int, 2> a("a", 2, 2);
  a(1, 1) = 7;
  auto m = pk::create_mirror_copy(a);
  EXPECT_EQ(m(1, 1), 7);
  EXPECT_NE(m.data(), a.data());
}

// ---------------------------------------------------------------------

template <class Space>
struct SpaceName;
template <>
struct SpaceName<pk::Serial> {
  static constexpr const char* value = "Serial";
};
template <>
struct SpaceName<pk::OpenMP> {
  static constexpr const char* value = "OpenMP";
};

template <class Space>
class ParallelTest : public ::testing::Test {};

using Spaces = ::testing::Types<pk::Serial, pk::OpenMP>;
TYPED_TEST_SUITE(ParallelTest, Spaces);

TYPED_TEST(ParallelTest, ForCoversRange) {
  using Space = TypeParam;
  pk::View<int, 1> v("v", 1000);
  pk::parallel_for(pk::RangePolicy<Space>(100, 900),
                   [&](index_t i) { v(i) = 1; });
  int sum = 0;
  for (index_t i = 0; i < 1000; ++i) sum += v(i);
  EXPECT_EQ(sum, 800);
  EXPECT_EQ(v(99), 0);
  EXPECT_EQ(v(900), 0);
}

TYPED_TEST(ParallelTest, ReduceSum) {
  using Space = TypeParam;
  double sum = 0;
  pk::parallel_reduce(
      pk::RangePolicy<Space>(10000),
      [](index_t i, double& acc) { acc += static_cast<double>(i); }, sum);
  EXPECT_DOUBLE_EQ(sum, 10000.0 * 9999.0 / 2.0);
}

TYPED_TEST(ParallelTest, ReduceMinMax) {
  using Space = TypeParam;
  pk::View<int, 1> v("v", 257);
  for (index_t i = 0; i < 257; ++i)
    v(i) = static_cast<int>((i * 7919) % 1000) - 500;
  pk::MinMaxValue<int> mm{};
  pk::parallel_reduce<pk::MinMax<int>>(
      pk::RangePolicy<Space>(257),
      [&](index_t i, pk::MinMaxValue<int>& acc) {
        acc.min_val = std::min(acc.min_val, v(i));
        acc.max_val = std::max(acc.max_val, v(i));
      },
      mm);
  int ref_min = v(0), ref_max = v(0);
  for (index_t i = 0; i < 257; ++i) {
    ref_min = std::min(ref_min, v(i));
    ref_max = std::max(ref_max, v(i));
  }
  EXPECT_EQ(mm.min_val, ref_min);
  EXPECT_EQ(mm.max_val, ref_max);
}

TYPED_TEST(ParallelTest, ScanExclusive) {
  using Space = TypeParam;
  const index_t n = 1000;
  pk::View<long, 1> in("in", n), out("out", n);
  for (index_t i = 0; i < n; ++i) in(i) = i % 7;
  long total = 0;
  pk::parallel_scan(
      pk::RangePolicy<Space>(n),
      [&](index_t i, long& partial, bool final_pass) {
        if (final_pass) out(i) = partial;
        partial += in(i);
      },
      total);
  long ref = 0;
  for (index_t i = 0; i < n; ++i) {
    EXPECT_EQ(out(i), ref) << "at " << i;
    ref += in(i);
  }
  EXPECT_EQ(total, ref);
}

TYPED_TEST(ParallelTest, MDRange2) {
  using Space = TypeParam;
  pk::View<int, 2> v("v", 8, 9);
  pk::parallel_for(pk::MDRangePolicy2<Space>(0, 8, 0, 9),
                   [&](index_t i, index_t j) {
                     v(i, j) = static_cast<int>(i * 100 + j);
                   });
  EXPECT_EQ(v(7, 8), 708);
}

TYPED_TEST(ParallelTest, TeamPolicyLeague) {
  using Space = TypeParam;
  const index_t league = 37;
  pk::View<int, 1> seen("seen", league);
  pk::parallel_for(pk::TeamPolicy<Space>(league, 1),
                   [&](const pk::TeamMember& tm) {
                     EXPECT_EQ(tm.league_size(), league);
                     EXPECT_EQ(tm.team_size(), 1);
                     seen(tm.league_rank()) += 1;
                   });
  for (index_t i = 0; i < league; ++i) EXPECT_EQ(seen(i), 1);
}

TEST(TeamNested, ThreadAndVectorRanges) {
  pk::View<int, 1> v("v", 64);
  pk::parallel_for(pk::TeamPolicy<>(4, 1), [&](const pk::TeamMember& tm) {
    pk::parallel_for(pk::TeamThreadRange(tm, 4), [&](index_t t) {
      pk::parallel_for(pk::ThreadVectorRange(tm, 4), [&](index_t l) {
        v(tm.league_rank() * 16 + t * 4 + l) = 1;
      });
    });
  });
  int sum = 0;
  for (index_t i = 0; i < 64; ++i) sum += v(i);
  EXPECT_EQ(sum, 64);
}

TEST(Atomics, FetchAddInt) {
  int counter = 0;
  pk::parallel_for(10000, [&](index_t) { pk::atomic_inc(&counter); });
  EXPECT_EQ(counter, 10000);
}

TEST(Atomics, FetchAddFloatCAS) {
  float sum = 0;
  pk::parallel_for(4096, [&](index_t) { pk::atomic_add(&sum, 0.5f); });
  EXPECT_FLOAT_EQ(sum, 2048.0f);
}

TEST(Atomics, FetchAddReturnsOld) {
  std::int64_t x = 5;
  const auto old = pk::atomic_fetch_add(&x, std::int64_t{3});
  EXPECT_EQ(old, 5);
  EXPECT_EQ(x, 8);
}

TEST(Atomics, MinMax) {
  int lo = 100, hi = -100;
  pk::parallel_for(1000, [&](index_t i) {
    pk::atomic_fetch_min(&lo, static_cast<int>(i % 313));
    pk::atomic_fetch_max(&hi, static_cast<int>(i % 313));
  });
  EXPECT_EQ(lo, 0);
  EXPECT_EQ(hi, 312);
}

TEST(Atomics, CompareExchange) {
  int x = 1;
  int expected = 1;
  EXPECT_TRUE(pk::atomic_compare_exchange(&x, expected, 2));
  EXPECT_EQ(x, 2);
  expected = 1;
  EXPECT_FALSE(pk::atomic_compare_exchange(&x, expected, 3));
  EXPECT_EQ(expected, 2);
}

TEST(Reducers, Identities) {
  EXPECT_EQ(pk::Sum<int>::identity(), 0);
  EXPECT_EQ(pk::Prod<int>::identity(), 1);
  EXPECT_EQ(pk::Min<float>::identity(), std::numeric_limits<float>::max());
  EXPECT_EQ(pk::Max<float>::identity(),
            std::numeric_limits<float>::lowest());
}

TEST(Timer, MeasuresElapsed) {
  pk::Timer t;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  EXPECT_GT(t.seconds(), 0.0);
  t.reset();
  EXPECT_LT(t.seconds(), 1.0);
}

// Property-style sweep: parallel_for + reduce agree with serial reference
// over many sizes, including empty and non-divisible ones.
class RangeSizes : public ::testing::TestWithParam<index_t> {};

TEST_P(RangeSizes, SumMatchesSerial) {
  const index_t n = GetParam();
  double par = 0;
  pk::parallel_reduce(
      pk::RangePolicy<pk::OpenMP>(n),
      [](index_t i, double& acc) { acc += std::sqrt(static_cast<double>(i)); },
      par);
  double ser = 0;
  for (index_t i = 0; i < n; ++i) ser += std::sqrt(static_cast<double>(i));
  EXPECT_NEAR(par, ser, 1e-9 * std::max(1.0, ser));
}

INSTANTIATE_TEST_SUITE_P(Sizes, RangeSizes,
                         ::testing::Values(0, 1, 2, 3, 7, 64, 65, 1000,
                                           4096, 10007));

TYPED_TEST(ParallelTest, MDRange3) {
  using Space = TypeParam;
  pk::View<int, 3> v("v", 4, 5, 6);
  pk::parallel_for(pk::MDRangePolicy3<Space>(0, 4, 0, 5, 0, 6),
                   [&](index_t i, index_t j, index_t k) {
                     v(i, j, k) = static_cast<int>(i * 100 + j * 10 + k);
                   });
  EXPECT_EQ(v(3, 4, 5), 345);
  EXPECT_EQ(v(0, 0, 0), 0);
  long sum = 0;
  for (index_t i = 0; i < v.size(); ++i) sum += v.flat(i);
  long ref = 0;
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 5; ++j)
      for (int k = 0; k < 6; ++k) ref += i * 100 + j * 10 + k;
  EXPECT_EQ(sum, ref);
}

TEST(ScopeGuard, InitializesAndFences) {
  {
    pk::ScopeGuard guard(2);
    pk::fence();  // global fence: no instances alive, returns immediately
    pk::View<int, 1> v("v", 10);
    pk::parallel_for(10, [&](index_t i) { v(i) = 1; });
    pk::fence();
    int sum = 0;
    for (index_t i = 0; i < 10; ++i) sum += v(i);
    EXPECT_EQ(sum, 10);
  }
  // Guard destroyed: re-initialization must work.
  pk::initialize(2);
}

TEST(Subview, RowOfLayoutRight) {
  pk::View<double, 2, pk::LayoutRight> m("m", 4, 6);
  for (index_t i = 0; i < 4; ++i)
    for (index_t j = 0; j < 6; ++j) m(i, j) = static_cast<double>(i * 10 + j);
  auto row = pk::subview(m, 2, pk::ALL);
  ASSERT_EQ(row.extent(0), 6);
  for (index_t j = 0; j < 6; ++j) EXPECT_EQ(row(j), 20.0 + j);
  row(3) = -1.0;  // writes through to the parent
  EXPECT_EQ(m(2, 3), -1.0);
}

TEST(Subview, ColumnOfLayoutLeft) {
  pk::View<int, 2, pk::LayoutLeft> m("m", 5, 3);
  for (index_t i = 0; i < 5; ++i)
    for (index_t j = 0; j < 3; ++j) m(i, j) = static_cast<int>(i * 10 + j);
  auto col = pk::subview(m, pk::ALL, 1);
  ASSERT_EQ(col.extent(0), 5);
  for (index_t i = 0; i < 5; ++i) EXPECT_EQ(col(i), i * 10 + 1);
}

TEST(Subview, Rank3InnerSlice) {
  pk::View<float, 3> v("v", 2, 3, 4);
  v(1, 2, 3) = 7.0f;
  auto s = pk::subview(v, 1, 2, pk::ALL);
  EXPECT_EQ(s.extent(0), 4);
  EXPECT_EQ(s(3), 7.0f);
}

TEST(Subview, KeepsParentAlive) {
  pk::View<int, 1, pk::LayoutRight> slice;
  {
    pk::View<int, 2, pk::LayoutRight> m("m", 3, 3);
    m(1, 1) = 42;
    slice = pk::subview(m, 1, pk::ALL);
    EXPECT_EQ(m.use_count(), 2);
  }
  // The parent went out of scope; the slice's shared ownership keeps the
  // allocation valid.
  EXPECT_EQ(slice(1), 42);
}

TEST(ScatterView, AtomicStrategyCorrect) {
  pk::View<double, 1> target("t", 64);
  pk::ScatterView<double> sv(target, pk::ScatterStrategy::Atomic);
  EXPECT_EQ(sv.replica_count(), 0u);
  pk::parallel_for(64 * 100, [&](index_t i) {
    sv.access().add(i % 64, 1.0);
  });
  sv.contribute();  // no-op for atomic
  for (index_t i = 0; i < 64; ++i) EXPECT_DOUBLE_EQ(target(i), 100.0);
}

TEST(ScatterView, DuplicatedStrategyCorrect) {
  pk::View<double, 1> target("t", 64);
  pk::ScatterView<double> sv(target, pk::ScatterStrategy::Duplicated);
  pk::parallel_for(64 * 100, [&](index_t i) {
    sv.access().add(i % 64, 0.5);
  });
  sv.contribute();
  for (index_t i = 0; i < 64; ++i) EXPECT_DOUBLE_EQ(target(i), 50.0);
}

TEST(ScatterView, ReusableAcrossSteps) {
  pk::View<double, 1> target("t", 8);
  pk::ScatterView<double> sv(target, pk::ScatterStrategy::Duplicated);
  for (int step = 0; step < 3; ++step) {
    pk::parallel_for(8, [&](index_t i) { sv.access().add(i, 1.0); });
    sv.contribute();
  }
  for (index_t i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(target(i), 3.0);
}

TEST(ScatterView, StrategiesAgree) {
  pk::View<double, 1> a("a", 128), b("b", 128);
  pk::ScatterView<double> sa(a, pk::ScatterStrategy::Atomic);
  pk::ScatterView<double> sb(b, pk::ScatterStrategy::Duplicated);
  auto work = [](auto& sv) {
    pk::parallel_for(10000, [&](index_t i) {
      sv.access().add((i * 13) % 128, 0.25);
    });
    sv.contribute();
  };
  work(sa);
  work(sb);
  for (index_t i = 0; i < 128; ++i) EXPECT_DOUBLE_EQ(a(i), b(i));
}

// ----------------------------------------------------------------------
// pk::Instance: asynchronous execution queues (docs/ASYNC.md).
// ----------------------------------------------------------------------

TEST(Instance, FifoOrderOnOneInstance) {
  pk::Instance<> q;
  std::vector<int> order;  // only the single worker thread appends
  for (int t = 0; t < 8; ++t)
    pk::async(q, "append", [&order, t] { order.push_back(t); });
  q.fence();
  ASSERT_EQ(order.size(), 8u);
  for (int t = 0; t < 8; ++t) EXPECT_EQ(order[static_cast<std::size_t>(t)], t);
}

TEST(Instance, ParallelForRunsAsynchronously) {
  pk::Instance<> q;
  pk::View<int, 1> v("v", 1000);
  pk::parallel_for(q, "fill", pk::RangePolicy<>(0, 1000),
                   [&](index_t i) { v(i) = static_cast<int>(i); });
  q.fence();
  for (index_t i = 0; i < 1000; ++i) EXPECT_EQ(v(i), static_cast<int>(i));
}

TEST(Instance, FenceWaitsForCompletion) {
  pk::Instance<> q;
  std::atomic<bool> done{false};
  pk::async(q, "slow", [&done] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    done.store(true);
  });
  q.fence();
  EXPECT_TRUE(done.load());
}

TEST(Instance, ReduceResultVisibleAfterFence) {
  pk::Instance<> q;
  long sum = 0;
  pk::parallel_reduce(q, "sum", pk::RangePolicy<>(1, 101),
                      [](index_t i, long& acc) { acc += static_cast<long>(i); },
                      sum);
  q.fence();
  EXPECT_EQ(sum, 5050);
}

TEST(Instance, ScanOnInstance) {
  pk::Instance<> q;
  pk::View<long, 1> out("out", 10);
  long total = 0;
  pk::parallel_scan(q, "scan", pk::RangePolicy<>(0, 10),
                    [&](index_t i, long& partial, bool final_pass) {
                      partial += static_cast<long>(i + 1);
                      if (final_pass) out(i) = partial;
                    },
                    total);
  q.fence();
  EXPECT_EQ(out(0), 1);
  EXPECT_EQ(out(9), 55);  // 1 + 2 + ... + 10
  EXPECT_EQ(total, 55);
}

TEST(Instance, DeepCopyOnInstance) {
  pk::Instance<> q;
  pk::View<float, 1> a("a", 64), b("b", 64);
  pk::deep_copy(q, a, 2.5f);
  pk::deep_copy(q, b, a);
  q.fence();
  for (index_t i = 0; i < 64; ++i) EXPECT_EQ(b(i), 2.5f);
}

TEST(Instance, DeferredExceptionRethrownAtFence) {
  pk::Instance<> q;
  pk::async(q, "boom", [] { throw std::runtime_error("boom"); });
  EXPECT_THROW(q.fence(), std::runtime_error);
  // The error is consumed; the instance stays usable.
  std::atomic<int> ran{0};
  pk::async(q, "after", [&ran] { ran.store(1); });
  q.fence();
  EXPECT_EQ(ran.load(), 1);
}

TEST(Instance, GlobalFenceCoversAllInstances) {
  pk::Instance<> q1, q2;
  std::atomic<int> done{0};
  for (auto* q : {&q1, &q2})
    pk::async(*q, "work", [&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      done.fetch_add(1);
    });
  pk::fence();  // global: must drain both queues
  EXPECT_EQ(done.load(), 2);
}

TEST(Instance, IndependentInstancesOverlapInTime) {
  pk::Instance<> q1, q2;
  std::atomic<int> active{0}, peak{0};
  auto body = [&] {
    const int now = active.fetch_add(1) + 1;
    int prev = peak.load();
    while (prev < now && !peak.compare_exchange_weak(prev, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    active.fetch_sub(1);
  };
  pk::async(q1, "a", body);
  pk::async(q2, "b", body);
  q1.fence();
  q2.fence();
  EXPECT_EQ(peak.load(), 2) << "queues did not run concurrently";
}

TEST(Instance, DistinctIdsAndPendingCount) {
  pk::Instance<> q1, q2;
  EXPECT_NE(q1.id(), q2.id());
  EXPECT_NE(q1.id(), 0u);  // 0 is the global/default instance
  q1.fence();
  EXPECT_EQ(q1.pending(), 0u);
}

TEST(Instance, ConcurrentStress) {
  // TSan target: many instances, many tasks, shared atomic counter plus
  // per-instance disjoint views.
  constexpr int kInstances = 4;
  constexpr int kTasks = 32;
  std::vector<pk::Instance<>> pool(kInstances);
  std::vector<pk::View<int, 1>> views;
  views.reserve(kInstances);
  for (int i = 0; i < kInstances; ++i) views.emplace_back("v", 256);
  std::atomic<long> total{0};
  for (int t = 0; t < kTasks; ++t) {
    const int slot = t % kInstances;
    auto v = views[static_cast<std::size_t>(slot)];
    pk::parallel_for(pool[static_cast<std::size_t>(slot)], "stress",
                     pk::RangePolicy<>(0, 256), [v, &total](index_t i) {
                       v(i) += 1;
                       total.fetch_add(1, std::memory_order_relaxed);
                     });
  }
  pk::fence();
  EXPECT_EQ(total.load(), static_cast<long>(kTasks) * 256);
  for (int s = 0; s < kInstances; ++s)
    for (index_t i = 0; i < 256; ++i)
      EXPECT_EQ(views[static_cast<std::size_t>(s)](i), kTasks / kInstances);
}
