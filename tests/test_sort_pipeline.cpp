// Tests for the zero-allocation particle-sort pipeline: counting sort
// correctness/stability against std::stable_sort ground truth across key
// distributions, backend dispatch equivalence, ping-pong sort_particles
// invariants (particle multiset and kinetic energy preserved bit-for-bit),
// and the steady-state zero-allocation property via pk::view_alloc_count.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <numeric>
#include <random>
#include <vector>

#include "core/particle.hpp"
#include "core/sort_particles.hpp"
#include "pk/pk.hpp"
#include "sort/counting.hpp"
#include "sort/order_checks.hpp"
#include "sort/radix.hpp"
#include "sort/sorters.hpp"

namespace pk = vpic::pk;
namespace vs = vpic::sort;
namespace core = vpic::core;
using pk::index_t;

namespace {

enum class KeyDist { Random, Ascending, SingleCell, MaxBound };

pk::View<std::uint32_t, 1> make_keys(index_t n, std::uint32_t bound,
                                     KeyDist dist, std::uint64_t seed) {
  pk::View<std::uint32_t, 1> keys("keys", n);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::uint32_t> d(0, bound - 1);
  for (index_t i = 0; i < n; ++i) {
    switch (dist) {
      case KeyDist::Random:
        keys(i) = d(rng);
        break;
      case KeyDist::Ascending:
        keys(i) = static_cast<std::uint32_t>(
            (static_cast<std::uint64_t>(i) * bound) /
            static_cast<std::uint64_t>(n));
        break;
      case KeyDist::SingleCell:
        keys(i) = bound / 2;
        break;
      case KeyDist::MaxBound:
        keys(i) = bound - 1;
        break;
    }
  }
  return keys;
}

core::Species make_species(index_t n, index_t nv, std::uint64_t seed,
                           core::ParticleLayout layout =
                               core::ParticleLayout::AoS) {
  core::Species sp("test", -1.0f, 1.0f, n, layout);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::int32_t> cell(
      0, static_cast<std::int32_t>(nv - 1));
  std::normal_distribution<float> mom(0.0f, 0.3f);
  for (index_t i = 0; i < n; ++i) {
    core::Particle p{};
    p.dx = mom(rng);
    p.dy = mom(rng);
    p.dz = mom(rng);
    p.i = cell(rng);
    p.ux = mom(rng);
    p.uy = mom(rng);
    p.uz = mom(rng);
    p.w = 1.0f;
    sp.p.set(i, p);
  }
  sp.np = n;
  return sp;
}

/// Byte image of a particle record, for exact multiset comparison.
using ParticleBytes = std::array<unsigned char, sizeof(core::Particle)>;

std::vector<ParticleBytes> particle_multiset(const core::Species& sp) {
  std::vector<ParticleBytes> out(static_cast<std::size_t>(sp.np));
  for (index_t i = 0; i < sp.np; ++i) {
    const core::Particle p = sp.p.get(i);
    std::memcpy(out[static_cast<std::size_t>(i)].data(), &p,
                sizeof(core::Particle));
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Order-independent kinetic energy: per-particle terms, sorted, summed —
/// bitwise reproducible across any permutation of the particle array.
double deterministic_ke(const core::Species& sp) {
  std::vector<double> terms(static_cast<std::size_t>(sp.np));
  for (index_t i = 0; i < sp.np; ++i) {
    const core::Particle p = sp.p.get(i);
    const double u2 = static_cast<double>(p.ux) * p.ux +
                      static_cast<double>(p.uy) * p.uy +
                      static_cast<double>(p.uz) * p.uz;
    terms[static_cast<std::size_t>(i)] =
        static_cast<double>(p.w) * sp.m * (std::sqrt(1.0 + u2) - 1.0);
  }
  std::sort(terms.begin(), terms.end());
  double total = 0;
  for (double t : terms) total += t;
  return total;
}

}  // namespace

// ----------------------------------------------------------------------
// Counting sort vs std::stable_sort ground truth.
// ----------------------------------------------------------------------

using CountingParam = std::tuple<index_t, std::uint32_t, KeyDist>;

class CountingSortProperty : public ::testing::TestWithParam<CountingParam> {};

std::string counting_param_name(
    const ::testing::TestParamInfo<CountingParam>& info) {
  const char* d[] = {"random", "ascending", "single", "maxbound"};
  return "n" + std::to_string(std::get<0>(info.param)) + "_b" +
         std::to_string(std::get<1>(info.param)) + "_" +
         d[static_cast<int>(std::get<2>(info.param))];
}

TEST_P(CountingSortProperty, StablePermutationMatchesStableSort) {
  const auto [n, bound, dist] = GetParam();
  auto keys = make_keys(n, bound, dist, 17 * n + bound);
  pk::View<std::uint32_t, 1> vals("vals", n);
  for (index_t i = 0; i < n; ++i) vals(i) = static_cast<std::uint32_t>(i);

  // Ground truth: stable sort of (key, original index) pairs by key.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ref(
      static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i)
    ref[static_cast<std::size_t>(i)] = {keys(i),
                                        static_cast<std::uint32_t>(i)};
  std::stable_sort(ref.begin(), ref.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });

  vs::counting_sort_by_key(keys, vals, static_cast<index_t>(bound));
  for (index_t i = 0; i < n; ++i) {
    EXPECT_EQ(keys(i), ref[static_cast<std::size_t>(i)].first) << i;
    EXPECT_EQ(vals(i), ref[static_cast<std::size_t>(i)].second) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, CountingSortProperty,
    ::testing::Combine(::testing::Values(index_t{100}, index_t{4096},
                                         index_t{30000}),
                       ::testing::Values(std::uint32_t{16},
                                         std::uint32_t{5832},  // 18^3 = nv
                                         std::uint32_t{65536}),
                       ::testing::Values(KeyDist::Random, KeyDist::Ascending,
                                         KeyDist::SingleCell,
                                         KeyDist::MaxBound)),
    counting_param_name);

TEST(CountingSort, DispatchMatchesForcedRadix) {
  const index_t n = 20000;
  auto k1 = make_keys(n, 4096, KeyDist::Random, 5);
  pk::View<std::uint32_t, 1> v1("v1", n), k2("k2", n), v2("v2", n);
  for (index_t i = 0; i < n; ++i) v1(i) = static_cast<std::uint32_t>(i);
  pk::deep_copy(k2, k1);
  pk::deep_copy(v2, v1);
  vs::sort_by_key(k1, v1);        // dispatcher (counting for this bound)
  vs::radix_sort_by_key(k2, v2);  // forced radix
  for (index_t i = 0; i < n; ++i) {
    ASSERT_EQ(k1(i), k2(i)) << i;
    ASSERT_EQ(v1(i), v2(i)) << i;
  }
}

TEST(CountingSort, WorkspaceReusesHistogram) {
  vs::SortWorkspace ws;
  const index_t n = 10000;
  for (int round = 0; round < 3; ++round) {
    auto keys = make_keys(n, 1024, KeyDist::Random, 100 + round);
    pk::View<std::uint32_t, 1> vals("v", n);
    vs::counting_sort_by_key(keys, vals, 1024, &ws);
    EXPECT_TRUE(vs::is_sorted_ascending(keys));
  }
  EXPECT_EQ(ws.grow_count, 1);  // histogram sized once, reused twice
}

TEST(CountingSort, EmptyAndSingle) {
  pk::View<std::uint32_t, 1> k0("k", 0), v0("v", 0);
  vs::counting_sort_by_key(k0, v0, 16);  // must not crash
  pk::View<std::uint32_t, 1> k1("k", 1), v1("v", 1);
  k1(0) = 7;
  vs::counting_sort_by_key(k1, v1, 16);
  EXPECT_EQ(k1(0), 7u);
}

// ----------------------------------------------------------------------
// Ping-pong sort_particles invariants — the whole pipeline section runs
// once per particle layout (the gather/scatter paths differ: AoS moves
// records directly, SoA/AoSoA go through a permutation + accessor pass).
// ----------------------------------------------------------------------

class SortPipelineLayouts : public ::testing::TestWithParam<int> {
 protected:
  core::ParticleLayout layout() const {
    return core::kAllParticleLayouts[GetParam()];
  }
};

std::string layout_param_name(const ::testing::TestParamInfo<int>& info) {
  return core::to_string(core::kAllParticleLayouts[info.param]);
}

INSTANTIATE_TEST_SUITE_P(Layouts, SortPipelineLayouts,
                         ::testing::Range(0, core::kNumParticleLayouts),
                         layout_param_name);

TEST_P(SortPipelineLayouts, PingPongPreservesParticleMultisetAllOrders) {
  const index_t n = 8192, nv = 512;
  for (auto order : {vs::SortOrder::Random, vs::SortOrder::Standard,
                     vs::SortOrder::Strided, vs::SortOrder::TiledStrided}) {
    core::Species sp = make_species(n, nv, 42, layout());
    const auto before = particle_multiset(sp);
    const double ke_before = deterministic_ke(sp);
    core::sort_particles(sp, order, 8, 99, nv);
    EXPECT_EQ(particle_multiset(sp), before) << vs::to_string(order);
    // Identical records => identical sorted terms => bit-for-bit equal sum.
    EXPECT_EQ(deterministic_ke(sp), ke_before) << vs::to_string(order);
  }
}

TEST_P(SortPipelineLayouts, OrdersMatchTheirPredicates) {
  const index_t n = 8192, nv = 512;
  {
    core::Species sp = make_species(n, nv, 7, layout());
    core::sort_particles(sp, vs::SortOrder::Standard, 0, 0, nv);
    EXPECT_TRUE(vs::is_sorted_ascending(sp.cell_keys()));
  }
  {
    core::Species sp = make_species(n, nv, 7, layout());
    core::sort_particles(sp, vs::SortOrder::Strided, 0, 0, nv);
    EXPECT_TRUE(vs::is_strided_order(sp.cell_keys()));
  }
  {
    core::Species sp = make_species(n, nv, 7, layout());
    core::sort_particles(sp, vs::SortOrder::TiledStrided, 8, 0, nv);
    // Tiled-strided on the raw cell keys: each tile's keys are strictly
    // increasing within a chunk — verified via the composite predicate on
    // the rewritten keys in test_sort.cpp; here just check permutation.
    EXPECT_TRUE(vs::is_permutation_of(
        sp.cell_keys(), make_species(n, nv, 7, layout()).cell_keys()));
  }
}

TEST_P(SortPipelineLayouts, StandardSortIsStableForEqualKeys) {
  // Particles in the same cell must keep their relative order (both the
  // direct counting scatter and the permutation+gather path are stable).
  // Tag particles via ux = original index.
  const index_t n = 4096, nv = 64;
  core::Species sp = make_species(n, nv, 3, layout());
  for (index_t i = 0; i < n; ++i) {
    core::Particle p = sp.p.get(i);
    p.ux = static_cast<float>(i);
    sp.p.set(i, p);
  }
  std::vector<std::pair<std::int32_t, float>> ref(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    const core::Particle p = sp.p.get(i);
    ref[static_cast<std::size_t>(i)] = {p.i, p.ux};
  }
  std::stable_sort(ref.begin(), ref.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  core::sort_particles(sp, vs::SortOrder::Standard, 0, 0, nv);
  for (index_t i = 0; i < n; ++i) {
    const core::Particle p = sp.p.get(i);
    ASSERT_EQ(p.i, ref[static_cast<std::size_t>(i)].first) << i;
    ASSERT_EQ(p.ux, ref[static_cast<std::size_t>(i)].second) << i;
  }
}

TEST_P(SortPipelineLayouts, RadixFallbackPathMatchesCounting) {
  // Force the radix fallback by omitting the key bound on a key range the
  // counting predicate rejects for tiny n (huge sparse keys), and check
  // the result is still sorted. n small so the test stays fast.
  const index_t n = 3000;
  core::Species sp = make_species(n, 1, 11, layout());
  std::mt19937_64 rng(13);
  for (index_t i = 0; i < n; ++i)
    sp.p.set_cell(i, static_cast<std::int32_t>(rng() % (1u << 30)));
  core::sort_particles(sp, vs::SortOrder::Standard, 0, 0, 0);
  EXPECT_TRUE(vs::is_sorted_ascending(sp.cell_keys()));
}

// ----------------------------------------------------------------------
// Zero allocations in steady state.
// ----------------------------------------------------------------------

TEST(SortPipeline, SteadyStateZeroViewAllocations) {
  const index_t n = 32768, nv = 4096;
  core::Species sp = make_species(n, nv, 123);

  // Warm-up: one sort per order sizes every workspace buffer (the key
  // multiset is fixed, so rewritten-key bounds are identical each round).
  core::sort_particles(sp, vs::SortOrder::Random, 0, 1, nv);
  core::sort_particles(sp, vs::SortOrder::Standard, 0, 2, nv);
  core::sort_particles(sp, vs::SortOrder::Strided, 0, 3, nv);
  core::sort_particles(sp, vs::SortOrder::TiledStrided, 8, 4, nv);

  const std::int64_t allocs0 = pk::view_alloc_count().load();
  const std::int64_t grows0 = sp.sort_ws.grow_count;
  const std::size_t hist_cap0 = sp.sort_ws.histogram.capacity();

  for (int round = 0; round < 5; ++round) {
    core::sort_particles(sp, vs::SortOrder::Random, 0, 100 + round, nv);
    core::sort_particles(sp, vs::SortOrder::Standard, 0, 0, nv);
    core::sort_particles(sp, vs::SortOrder::Strided, 0, 0, nv);
    core::sort_particles(sp, vs::SortOrder::TiledStrided, 8, 0, nv);
  }

  EXPECT_EQ(pk::view_alloc_count().load() - allocs0, 0)
      << "steady-state sort_particles allocated a pk::View";
  EXPECT_EQ(sp.sort_ws.grow_count, grows0);
  EXPECT_EQ(sp.sort_ws.histogram.capacity(), hist_cap0);
}

TEST(SortPipeline, WorkspaceGrowsGeometricallyOnCapacityIncrease) {
  vs::SortWorkspace ws;
  ws.reserve_pairs(1000);
  EXPECT_EQ(ws.grow_count, 1);
  ws.reserve_pairs(900);  // within capacity: no growth
  EXPECT_EQ(ws.grow_count, 1);
  ws.reserve_pairs(1100);  // grows to >= 1.5x
  EXPECT_EQ(ws.grow_count, 2);
  EXPECT_GE(ws.keys.size(), 1500);
  ws.reserve_pairs(1500);  // covered by the geometric growth
  EXPECT_EQ(ws.grow_count, 2);
}

TEST(SortPipeline, CellKeysIntoCallerView) {
  const index_t n = 1000, nv = 64;
  core::Species sp = make_species(n, nv, 9);
  pk::View<std::uint32_t, 1> out("out", n + 100);  // larger than np is fine
  sp.cell_keys(out);
  const auto ref = sp.cell_keys();
  for (index_t i = 0; i < n; ++i) EXPECT_EQ(out(i), ref(i)) << i;
}
