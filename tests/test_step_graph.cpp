// Tests for the dependency-aware step graph (core/step_graph.hpp) and its
// integration as the default Simulation scheduler (docs/ASYNC.md):
// construction-time validation (cycles, undeclared races), execution
// semantics (once, ordered, concurrent when unordered, exception
// propagation), and the headline equivalence guarantee — a graph-scheduled
// step is bit-identical to the legacy sequential schedule on the LPI deck.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/decks.hpp"
#include "core/simulation.hpp"
#include "core/step_graph.hpp"
#include "pk/pk.hpp"

namespace core = vpic::core;
namespace pk = vpic::pk;

namespace {

class PkEnv : public ::testing::Environment {
 public:
  // One kernel thread: with >1 OpenMP threads the float-atomic current
  // deposits are nondeterministic *within* a kernel (even two sequential
  // runs diverge), which would mask what this suite is about — that the
  // graph *scheduler* never reorders conflicting phases. Instance worker
  // threads (what the graph schedules onto) are independent of this
  // setting, so the concurrency tests still exercise real parallelism.
  // The tune cache is pinned off: a stale .vpic_tune.json can flip
  // dispatch decisions between the two runs being compared bit-for-bit.
  void SetUp() override {
    setenv("VPIC_TUNE", "off", 1);
    pk::initialize(1);
  }
};
[[maybe_unused]] const auto* const env =
    ::testing::AddGlobalTestEnvironment(new PkEnv);

core::StepPhase phase(std::string name, std::vector<std::string> reads,
                      std::vector<std::string> writes,
                      std::function<void()> fn = [] {}) {
  return {std::move(name), std::move(reads), std::move(writes),
          std::move(fn)};
}

}  // namespace

// ----------------------------------------------------------------------
// Construction and validation.
// ----------------------------------------------------------------------

TEST(StepGraphValidate, EmptyNameRejected) {
  core::StepGraph g;
  EXPECT_THROW(g.add_phase(phase("", {}, {})), std::invalid_argument);
}

TEST(StepGraphValidate, DuplicateNameRejected) {
  core::StepGraph g;
  g.add_phase(phase("a", {}, {}));
  EXPECT_THROW(g.add_phase(phase("a", {}, {})), std::invalid_argument);
}

TEST(StepGraphValidate, UnknownEdgeEndpointRejected) {
  core::StepGraph g;
  g.add_phase(phase("a", {}, {}));
  EXPECT_THROW(g.add_edge("a", "nope"), std::invalid_argument);
  EXPECT_THROW(g.add_edge("nope", "a"), std::invalid_argument);
}

TEST(StepGraphValidate, SelfEdgeRejected) {
  core::StepGraph g;
  g.add_phase(phase("a", {}, {}));
  EXPECT_THROW(g.add_edge("a", "a"), std::invalid_argument);
}

TEST(StepGraphValidate, CycleRejected) {
  core::StepGraph g;
  g.add_phase(phase("a", {}, {}));
  g.add_phase(phase("b", {}, {}));
  g.add_phase(phase("c", {}, {}));
  g.add_edge("a", "b");
  g.add_edge("b", "c");
  g.add_edge("c", "a");
  EXPECT_THROW(g.validate(), std::logic_error);
}

TEST(StepGraphValidate, UnorderedWriteWriteRaceRejected) {
  core::StepGraph g;
  g.add_phase(phase("a", {}, {"acc"}));
  g.add_phase(phase("b", {}, {"acc"}));
  try {
    g.validate();
    FAIL() << "unordered write-write race accepted";
  } catch (const std::logic_error& e) {
    // The diagnostic names both phases and the racing resource.
    const std::string msg = e.what();
    EXPECT_NE(msg.find("'a'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'b'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'acc'"), std::string::npos) << msg;
  }
}

TEST(StepGraphValidate, UnorderedReadWriteRaceRejected) {
  core::StepGraph g;
  g.add_phase(phase("reader", {"fields.eb"}, {}));
  g.add_phase(phase("writer", {}, {"fields.eb"}));
  EXPECT_THROW(g.validate(), std::logic_error);
}

TEST(StepGraphValidate, OrderedConflictAccepted) {
  core::StepGraph g;
  g.add_phase(phase("w1", {}, {"acc"}));
  g.add_phase(phase("w2", {}, {"acc"}));
  g.add_phase(phase("r", {"acc"}, {}));
  g.add_edge("w1", "w2");
  g.add_edge("w2", "r");
  EXPECT_NO_THROW(g.validate());
}

TEST(StepGraphValidate, TransitivePathOrdersConflict) {
  // w1 -> mid -> w2: the conflicting pair (w1, w2) has no direct edge but
  // is ordered by a path, which is all validate() requires.
  core::StepGraph g;
  g.add_phase(phase("w1", {}, {"x"}));
  g.add_phase(phase("mid", {}, {}));
  g.add_phase(phase("w2", {}, {"x"}));
  g.add_edge("w1", "mid");
  g.add_edge("mid", "w2");
  EXPECT_NO_THROW(g.validate());
}

TEST(StepGraphValidate, ConcurrentReadersAccepted) {
  core::StepGraph g;
  g.add_phase(phase("r1", {"interp"}, {}));
  g.add_phase(phase("r2", {"interp"}, {}));
  EXPECT_NO_THROW(g.validate());
}

TEST(StepGraphValidate, DotNamesAllPhases) {
  core::StepGraph g;
  g.add_phase(phase("interpolate", {"fields.eb"}, {"interp"}));
  g.add_phase(phase("push", {"interp"}, {"acc"}));
  g.add_edge("interpolate", "push");
  const std::string dot = g.dot();
  EXPECT_NE(dot.find("interpolate"), std::string::npos);
  EXPECT_NE(dot.find("push"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

// ----------------------------------------------------------------------
// Execution semantics.
// ----------------------------------------------------------------------

TEST(StepGraphExecute, RunsEveryPhaseOnceRespectingEdges) {
  core::StepGraph g;
  std::mutex mu;
  std::vector<std::string> order;
  auto track = [&](const char* n) {
    return [&, n] {
      std::lock_guard lk(mu);
      order.emplace_back(n);
    };
  };
  g.add_phase(phase("a", {}, {"x"}, track("a")));
  g.add_phase(phase("b", {"x"}, {"y"}, track("b")));
  g.add_phase(phase("c", {"y"}, {}, track("c")));
  g.add_edge("a", "b");
  g.add_edge("b", "c");
  g.execute(2);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "a");
  EXPECT_EQ(order[1], "b");
  EXPECT_EQ(order[2], "c");
  // Stats cover every phase, in insertion order, with nonnegative times.
  const auto& st = g.last_stats();
  ASSERT_EQ(st.size(), 3u);
  EXPECT_EQ(st[0].name, "a");
  EXPECT_EQ(st[2].name, "c");
  for (const auto& s : st) EXPECT_GE(s.seconds, 0.0);
}

TEST(StepGraphExecute, UnorderedPhasesRunConcurrently) {
  core::StepGraph g;
  std::atomic<int> active{0}, peak{0};
  auto body = [&] {
    const int now = active.fetch_add(1) + 1;
    int prev = peak.load();
    while (prev < now && !peak.compare_exchange_weak(prev, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    active.fetch_sub(1);
  };
  g.add_phase(phase("left", {"interp"}, {}, body));
  g.add_phase(phase("right", {"interp"}, {}, body));
  g.execute(2);
  EXPECT_EQ(peak.load(), 2) << "independent phases did not overlap";
  EXPECT_GE(g.last_concurrency_peak(), 2u);
}

TEST(StepGraphExecute, SingleInstanceDegradesToSequential) {
  core::StepGraph g;
  std::atomic<int> active{0}, peak{0};
  auto body = [&] {
    const int now = active.fetch_add(1) + 1;
    int prev = peak.load();
    while (prev < now && !peak.compare_exchange_weak(prev, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    active.fetch_sub(1);
  };
  g.add_phase(phase("left", {}, {}, body));
  g.add_phase(phase("right", {}, {}, body));
  g.execute(1);
  EXPECT_EQ(peak.load(), 1);
  EXPECT_EQ(g.last_concurrency_peak(), 1u);
}

TEST(StepGraphExecute, PhaseExceptionRethrownSuccessorsSkipped) {
  core::StepGraph g;
  std::atomic<bool> ran_successor{false};
  g.add_phase(phase("boom", {}, {"x"},
                    [] { throw std::runtime_error("phase failed"); }));
  g.add_phase(phase("after", {"x"}, {},
                    [&] { ran_successor.store(true); }));
  g.add_edge("boom", "after");
  EXPECT_THROW(g.execute(2), std::runtime_error);
  EXPECT_FALSE(ran_successor.load());
}

TEST(StepGraphExecute, ReExecuteRunsAgain) {
  core::StepGraph g;
  std::atomic<int> runs{0};
  g.add_phase(phase("a", {}, {}, [&] { runs.fetch_add(1); }));
  g.execute(2);
  g.execute(2);
  EXPECT_EQ(runs.load(), 2);
}

TEST(StepGraphExecute, StressManyUnorderedPhases) {
  // TSan target: a wide graph of independent phases over a pool of
  // instances, all bumping one atomic and disjoint slots of a shared
  // vector.
  constexpr int kPhases = 24;
  core::StepGraph g;
  std::vector<int> slots(kPhases, 0);
  std::atomic<int> total{0};
  for (int i = 0; i < kPhases; ++i) {
    g.add_phase(phase("p" + std::to_string(i), {"shared.ro"}, {},
                      [&slots, &total, i] {
                        slots[static_cast<std::size_t>(i)] += 1;
                        total.fetch_add(1, std::memory_order_relaxed);
                      }));
  }
  g.execute(4);
  EXPECT_EQ(total.load(), kPhases);
  for (int v : slots) EXPECT_EQ(v, 1);
  EXPECT_GE(g.last_concurrency_peak(), 1u);
}

// ----------------------------------------------------------------------
// Simulation integration: the graph scheduler must reproduce the legacy
// sequential schedule bit for bit (the graph orders every conflicting
// phase pair to match it; only result-invariant concurrency remains).
// ----------------------------------------------------------------------

namespace {

void expect_bitwise_equal(core::Simulation& a, core::Simulation& b) {
  const auto& fa = a.fields();
  const auto& fb = b.fields();
  const pk::View<float, 1>* views_a[] = {&fa.ex, &fa.ey, &fa.ez, &fa.bx,
                                         &fa.by, &fa.bz, &fa.jx, &fa.jy,
                                         &fa.jz};
  const pk::View<float, 1>* views_b[] = {&fb.ex, &fb.ey, &fb.ez, &fb.bx,
                                         &fb.by, &fb.bz, &fb.jx, &fb.jy,
                                         &fb.jz};
  const char* names[] = {"ex", "ey", "ez", "bx", "by",
                         "bz", "jx", "jy", "jz"};
  for (int c = 0; c < 9; ++c) {
    const auto& x = *views_a[c];
    const auto& y = *views_b[c];
    ASSERT_EQ(x.size(), y.size());
    for (pk::index_t i = 0; i < x.size(); ++i)
      ASSERT_EQ(x(i), y(i)) << names[c] << " diverges at voxel " << i;
  }
  ASSERT_EQ(a.num_species(), b.num_species());
  for (std::size_t s = 0; s < a.num_species(); ++s) {
    const auto& sa = a.species(s);
    const auto& sb = b.species(s);
    ASSERT_EQ(sa.np, sb.np) << sa.name;
    for (core::index_t i = 0; i < sa.np; ++i) {
      ASSERT_EQ(sa.p(i).dx, sb.p(i).dx) << sa.name << " particle " << i;
      ASSERT_EQ(sa.p(i).dy, sb.p(i).dy) << sa.name << " particle " << i;
      ASSERT_EQ(sa.p(i).dz, sb.p(i).dz) << sa.name << " particle " << i;
      ASSERT_EQ(sa.p(i).i, sb.p(i).i) << sa.name << " particle " << i;
      ASSERT_EQ(sa.p(i).ux, sb.p(i).ux) << sa.name << " particle " << i;
      ASSERT_EQ(sa.p(i).uy, sb.p(i).uy) << sa.name << " particle " << i;
      ASSERT_EQ(sa.p(i).uz, sb.p(i).uz) << sa.name << " particle " << i;
      ASSERT_EQ(sa.p(i).w, sb.p(i).w) << sa.name << " particle " << i;
    }
  }
}

}  // namespace

TEST(StepGraphSimulation, BitIdenticalToSequentialOnLpiDeck) {
  // Small LPI deck, 100 steps: long enough to cross the sort interval
  // (20) and the energy-diagnostic interval set below, so the optional
  // sort[] and diagnostics phases are exercised, not just the core chain.
  core::decks::LpiParams p;
  p.nx = 12;
  p.ny = 6;
  p.nz = 6;
  p.ppc = 4;
  core::Simulation graph_sim = core::decks::make_lpi(p);
  core::Simulation seq_sim = core::decks::make_lpi(p);
  graph_sim.config().scheduler = core::StepScheduler::Graph;
  graph_sim.config().energy_interval = 10;
  seq_sim.config().scheduler = core::StepScheduler::Sequential;
  seq_sim.config().energy_interval = 10;

  graph_sim.run(100);
  seq_sim.run(100);

  EXPECT_EQ(graph_sim.step_count(), 100);
  EXPECT_EQ(seq_sim.step_count(), 100);
  expect_bitwise_equal(graph_sim, seq_sim);

  // The sampled energy series must match exactly too (diagnostics phase
  // ran at the same steps with identical state).
  const auto& ha = graph_sim.energy_history();
  const auto& hb = seq_sim.energy_history();
  ASSERT_EQ(ha.size(), hb.size());
  ASSERT_GT(ha.size(), 0u);
  for (std::size_t i = 0; i < ha.size(); ++i) {
    EXPECT_EQ(ha.step(i), hb.step(i));
    EXPECT_EQ(ha.field(i), hb.field(i));
    EXPECT_EQ(ha.kinetic(i), hb.kinetic(i));
  }
}

TEST(StepGraphSimulation, GraphSchedulerPopulatesPhaseStats) {
  core::decks::LpiParams p;
  p.nx = 8;
  p.ny = 4;
  p.nz = 4;
  p.ppc = 2;
  core::Simulation sim = core::decks::make_lpi(p);
  ASSERT_EQ(sim.config().scheduler, core::StepScheduler::Graph);
  sim.step();
  const auto& st = sim.last_phase_stats();
  ASSERT_FALSE(st.empty());
  bool saw_interpolate = false, saw_field_advance = false, saw_push = false;
  for (const auto& s : st) {
    if (s.name == "interpolate") saw_interpolate = true;
    if (s.name == "field_advance") saw_field_advance = true;
    if (s.name.rfind("push[", 0) == 0) saw_push = true;
    EXPECT_GE(s.seconds, 0.0);
  }
  EXPECT_TRUE(saw_interpolate);
  EXPECT_TRUE(saw_field_advance);
  EXPECT_TRUE(saw_push);
  EXPECT_GE(sim.last_concurrency_peak(), 1u);
}

TEST(StepGraphSimulation, SequentialSchedulerLeavesStatsEmpty) {
  core::decks::LpiParams p;
  p.nx = 8;
  p.ny = 4;
  p.nz = 4;
  p.ppc = 2;
  core::Simulation sim = core::decks::make_lpi(p);
  sim.config().scheduler = core::StepScheduler::Sequential;
  sim.step();
  EXPECT_TRUE(sim.last_phase_stats().empty());
}
