// Physics correctness tests for the PIC engine: interpolation exactness,
// Boris pusher invariants, charge-conserving current deposition
// (continuity equation), mover face-crossing, FDTD vacuum propagation,
// and global energy conservation.
#include <gtest/gtest.h>

#include <cmath>

#include "core/core.hpp"

namespace core = vpic::core;
namespace pk = vpic::pk;
using core::Grid;
using pk::index_t;

namespace {

Grid small_grid(int n = 8, float courant = 0.7f) {
  Grid g(n, n, n, static_cast<float>(n), static_cast<float>(n),
         static_cast<float>(n), 0.0f);
  g.dt = Grid::courant_dt(g.dx, g.dy, g.dz, courant);
  return g;
}

/// Set a uniform E and B everywhere.
void set_uniform_fields(core::FieldArray& f, float ex, float ey, float ez,
                        float bx, float by, float bz) {
  pk::deep_copy(f.ex, ex);
  pk::deep_copy(f.ey, ey);
  pk::deep_copy(f.ez, ez);
  pk::deep_copy(f.bx, bx);
  pk::deep_copy(f.by, by);
  pk::deep_copy(f.bz, bz);
}

}  // namespace

// ----------------------------------------------------------------------
// Grid
// ----------------------------------------------------------------------

TEST(Grid, VoxelRoundTrip) {
  const Grid g = small_grid(6);
  for (int iz = 0; iz < g.sz(); iz += 3)
    for (int iy = 0; iy < g.sy(); iy += 2)
      for (int ix = 0; ix < g.sx(); ++ix) {
        int x, y, z;
        g.cell_of(g.voxel(ix, iy, iz), x, y, z);
        EXPECT_EQ(x, ix);
        EXPECT_EQ(y, iy);
        EXPECT_EQ(z, iz);
      }
}

TEST(Grid, InteriorClassification) {
  const Grid g = small_grid(4);
  EXPECT_TRUE(g.is_interior(g.voxel(1, 1, 1)));
  EXPECT_TRUE(g.is_interior(g.voxel(4, 4, 4)));
  EXPECT_FALSE(g.is_interior(g.voxel(0, 1, 1)));
  EXPECT_FALSE(g.is_interior(g.voxel(5, 1, 1)));
}

TEST(Grid, CourantDtBelowLimit) {
  const float dt = Grid::courant_dt(1.0f, 1.0f, 1.0f, 0.99f);
  EXPECT_LT(dt, 1.0f / std::sqrt(3.0f));
  EXPECT_GT(dt, 0.5f / std::sqrt(3.0f));
}

// ----------------------------------------------------------------------
// Interpolator
// ----------------------------------------------------------------------

TEST(Interpolator, UniformFieldExact) {
  const Grid g = small_grid(6);
  core::FieldArray f(g);
  set_uniform_fields(f, 1.0f, 2.0f, 3.0f, -1.0f, -2.0f, -3.0f);
  core::InterpolatorArray ip(g);
  ip.load(f);
  const auto& rec = ip(g.voxel(3, 3, 3));
  for (float dx : {-0.9f, 0.0f, 0.7f})
    for (float dy : {-0.5f, 0.3f})
      for (float dz : {-0.8f, 0.6f}) {
        const auto fl = core::interpolate(rec, dx, dy, dz);
        EXPECT_FLOAT_EQ(fl.ex, 1.0f);
        EXPECT_FLOAT_EQ(fl.ey, 2.0f);
        EXPECT_FLOAT_EQ(fl.ez, 3.0f);
        EXPECT_FLOAT_EQ(fl.bx, -1.0f);
        EXPECT_FLOAT_EQ(fl.by, -2.0f);
        EXPECT_FLOAT_EQ(fl.bz, -3.0f);
      }
}

TEST(Interpolator, LinearFieldGradientCaptured) {
  const Grid g = small_grid(8);
  core::FieldArray f(g);
  // Ex varying linearly in y: ex(iy) = iy.
  for (int iz = 0; iz < g.sz(); ++iz)
    for (int iy = 0; iy < g.sy(); ++iy)
      for (int ix = 0; ix < g.sx(); ++ix)
        f.ex(g.voxel(ix, iy, iz)) = static_cast<float>(iy);
  core::InterpolatorArray ip(g);
  ip.load(f);
  const auto& rec = ip(g.voxel(4, 4, 4));
  // At cell 4 the four x-edges have ey values {4,5}: center = 4.5,
  // dy = +1 reaches 5, dy = -1 reaches 4.
  EXPECT_FLOAT_EQ(core::interpolate(rec, 0, 0, 0).ex, 4.5f);
  EXPECT_FLOAT_EQ(core::interpolate(rec, 0, 1.0f, 0).ex, 5.0f);
  EXPECT_FLOAT_EQ(core::interpolate(rec, 0, -1.0f, 0).ex, 4.0f);
}

// ----------------------------------------------------------------------
// Boris pusher (via advance_species on uniform fields)
// ----------------------------------------------------------------------

namespace {

/// One-particle species in the middle of the grid with given momentum.
core::Species one_particle(const Grid& g, float ux, float uy, float uz,
                           float q = -1.0f, float m = 1.0f) {
  core::Species sp("test", q, m, 16);
  core::Particle p{};
  p.dx = 0;
  p.dy = 0;
  p.dz = 0;
  p.i = static_cast<std::int32_t>(g.voxel(4, 4, 4));
  p.ux = ux;
  p.uy = uy;
  p.uz = uz;
  p.w = 1.0f;
  sp.p(0) = p;
  sp.np = 1;
  return sp;
}

}  // namespace

TEST(Boris, PureEAcceleration) {
  const Grid g = small_grid(8);
  core::FieldArray f(g);
  const float e0 = 0.01f;
  set_uniform_fields(f, e0, 0, 0, 0, 0, 0);
  core::InterpolatorArray ip(g);
  ip.load(f);
  core::AccumulatorArray acc(g);
  acc.clear();
  core::Species sp = one_particle(g, 0, 0, 0, /*q=*/-1.0f);
  core::advance_species(sp, ip, acc, g, core::VectorStrategy::Auto);
  // du = q E dt / m (two half kicks, no B rotation).
  EXPECT_NEAR(sp.p(0).ux, -e0 * g.dt, 1e-7);
  EXPECT_FLOAT_EQ(sp.p(0).uy, 0.0f);
  EXPECT_FLOAT_EQ(sp.p(0).uz, 0.0f);
}

TEST(Boris, PureBRotationPreservesEnergy) {
  const Grid g = small_grid(8);
  core::FieldArray f(g);
  set_uniform_fields(f, 0, 0, 0, 0, 0, 0.5f);
  core::InterpolatorArray ip(g);
  ip.load(f);
  core::AccumulatorArray acc(g);
  core::Species sp = one_particle(g, 0.1f, 0, 0);
  const float u0 = 0.1f;
  for (int step = 0; step < 50; ++step) {
    acc.clear();
    core::advance_species(sp, ip, acc, g, core::VectorStrategy::Auto);
    const auto& p = sp.p(0);
    const float u2 = p.ux * p.ux + p.uy * p.uy + p.uz * p.uz;
    EXPECT_NEAR(std::sqrt(u2), u0, 1e-5) << "step " << step;
    EXPECT_NEAR(p.uz, 0.0f, 1e-7);
  }
}

TEST(Boris, GyroRotationDirection) {
  // Negative charge in +z B field with +x velocity: force q v x B points
  // along -y * ... : check uy sign after one step.
  const Grid g = small_grid(8);
  core::FieldArray f(g);
  set_uniform_fields(f, 0, 0, 0, 0, 0, 1.0f);
  core::InterpolatorArray ip(g);
  ip.load(f);
  core::AccumulatorArray acc(g);
  core::Species sp = one_particle(g, 0.1f, 0, 0, /*q=*/-1.0f);
  acc.clear();
  core::advance_species(sp, ip, acc, g, core::VectorStrategy::Auto);
  // F = q v x B = (-1)(v_x x_hat) x (B_z z_hat) = (-1) v_x B_z (x_hat x
  // z_hat) = (+1) v_x B_z y_hat => uy > 0.
  EXPECT_GT(sp.p(0).uy, 0.0f);
}

TEST(Boris, RelativisticGammaLimitsSpeed) {
  const Grid g = small_grid(8);
  core::FieldArray f(g);
  set_uniform_fields(f, -1.0f, 0, 0, 0, 0, 0);  // strong E, q=-1 -> +x
  core::InterpolatorArray ip(g);
  ip.load(f);
  core::AccumulatorArray acc(g);
  core::Species sp = one_particle(g, 0, 0, 0);
  float prev_dx = 0;
  for (int step = 0; step < 30; ++step) {
    acc.clear();
    core::advance_species(sp, ip, acc, g, core::VectorStrategy::Auto);
    (void)prev_dx;
  }
  // Momentum grows linearly, velocity saturates below c: displacement per
  // step (local units) must stay below the light-crossing bound.
  const auto& p = sp.p(0);
  const float gamma = std::sqrt(1 + p.ux * p.ux);
  EXPECT_GT(p.ux, 1.0f);                       // relativistic momentum
  EXPECT_LT(p.ux / gamma, 1.0f);               // v < c
}

// ----------------------------------------------------------------------
// move_p + current deposition
// ----------------------------------------------------------------------

TEST(MoveP, WithinCellDepositTotals) {
  const Grid g = small_grid(8);
  core::AccumulatorArray acc(g);
  acc.clear();
  core::Particle p{};
  p.i = static_cast<std::int32_t>(g.voxel(4, 4, 4));
  p.dx = -0.2f;
  p.dy = 0.1f;
  p.dz = 0.0f;
  const float qw = 2.0f;
  core::move_p(p, 0.3f, -0.1f, 0.2f, qw, acc, g);
  EXPECT_FLOAT_EQ(p.dx, 0.1f);
  EXPECT_FLOAT_EQ(p.dy, 0.0f);
  EXPECT_FLOAT_EQ(p.dz, 0.2f);
  EXPECT_EQ(p.i, static_cast<std::int32_t>(g.voxel(4, 4, 4)));
  // The four jx weights sum to 4 * qw * dispx regardless of midpoint.
  const auto& a = acc.a(p.i);
  const float jx_total = a.jx[0] + a.jx[1] + a.jx[2] + a.jx[3];
  EXPECT_NEAR(jx_total, 4.0f * qw * 0.3f, 1e-6);
  const float jy_total = a.jy[0] + a.jy[1] + a.jy[2] + a.jy[3];
  EXPECT_NEAR(jy_total, 4.0f * qw * -0.1f, 1e-6);
  const float jz_total = a.jz[0] + a.jz[1] + a.jz[2] + a.jz[3];
  EXPECT_NEAR(jz_total, 4.0f * qw * 0.2f, 1e-6);
}

TEST(MoveP, FaceCrossingSplitsAndHops) {
  const Grid g = small_grid(8);
  core::AccumulatorArray acc(g);
  acc.clear();
  core::Particle p{};
  p.i = static_cast<std::int32_t>(g.voxel(4, 4, 4));
  p.dx = 0.8f;
  const float qw = 1.0f;
  const auto res = core::move_p(p, 0.6f, 0.0f, 0.0f, qw, acc, g);
  EXPECT_EQ(res, core::MoveResult::Stayed);
  EXPECT_EQ(p.i, static_cast<std::int32_t>(g.voxel(5, 4, 4)));
  EXPECT_NEAR(p.dx, -0.6f, 1e-6);  // entered at -1, moved remaining 0.4
  // Total deposited current must equal the full displacement, split
  // between the two cells.
  const auto& a0 = acc.a(g.voxel(4, 4, 4));
  const auto& a1 = acc.a(g.voxel(5, 4, 4));
  const float jx0 = a0.jx[0] + a0.jx[1] + a0.jx[2] + a0.jx[3];
  const float jx1 = a1.jx[0] + a1.jx[1] + a1.jx[2] + a1.jx[3];
  EXPECT_NEAR(jx0 + jx1, 4.0f * qw * 0.6f, 1e-6);
  EXPECT_NEAR(jx0, 4.0f * qw * 0.2f, 1e-6);
  EXPECT_NEAR(jx1, 4.0f * qw * 0.4f, 1e-6);
}

TEST(MoveP, PeriodicWrapAtDomainFace) {
  const Grid g = small_grid(8);
  core::AccumulatorArray acc(g);
  acc.clear();
  core::Particle p{};
  p.i = static_cast<std::int32_t>(g.voxel(8, 4, 4));
  p.dx = 0.9f;
  const auto res = core::move_p(p, 0.4f, 0.0f, 0.0f, 1.0f, acc, g,
                                /*periodic_mask=*/0b111);
  EXPECT_EQ(res, core::MoveResult::Wrapped);
  EXPECT_EQ(p.i, static_cast<std::int32_t>(g.voxel(1, 4, 4)));
}

TEST(MoveP, ExitModeReportsRemainingDisplacement) {
  const Grid g = small_grid(8);
  core::AccumulatorArray acc(g);
  acc.clear();
  core::Particle p{};
  p.i = static_cast<std::int32_t>(g.voxel(8, 4, 4));
  p.dx = 0.9f;
  float rem[3] = {0, 0, 0};
  const auto res = core::move_p(p, 0.4f, 0.05f, 0.0f, 1.0f, acc, g,
                                /*periodic_mask=*/0b000, rem);
  EXPECT_EQ(res, core::MoveResult::Exited);
  EXPECT_NEAR(rem[0], 0.3f, 1e-6);
  EXPECT_GT(rem[1], 0.0f);
}

TEST(MoveP, CornerCrossingHandled) {
  const Grid g = small_grid(8);
  core::AccumulatorArray acc(g);
  acc.clear();
  core::Particle p{};
  p.i = static_cast<std::int32_t>(g.voxel(4, 4, 4));
  p.dx = 0.95f;
  p.dy = 0.95f;
  p.dz = 0.95f;
  core::move_p(p, 0.2f, 0.2f, 0.2f, 1.0f, acc, g);
  EXPECT_EQ(p.i, static_cast<std::int32_t>(g.voxel(5, 5, 5)));
  EXPECT_NEAR(p.dx, -0.85f, 1e-5);
}

// ----------------------------------------------------------------------
// Continuity: div J == -d(rho)/dt after one particle advance. This pins
// down the charge-conserving deposit and the unload constants.
// ----------------------------------------------------------------------

TEST(Continuity, DivJMatchesChargeChange) {
  const Grid g = small_grid(6, 0.6f);
  core::SimulationConfig cfg;
  cfg.grid = g;
  cfg.sort_interval = 0;
  core::Simulation sim(cfg);
  const auto s = sim.add_species("e", -1.0f, 1.0f, 4000);
  sim.load_uniform_plasma(s, 3, 0.2f, 0.05f, -0.03f, 0.08f);

  const auto rho_before = sim.charge_density();
  // One particle advance with deposit + unload (no field feedback needed).
  sim.interpolator().load(sim.fields());
  sim.accumulator().clear();
  core::advance_species(sim.species(s), sim.interpolator(),
                        sim.accumulator(), g, core::VectorStrategy::Auto);
  sim.accumulator().reduce_ghosts_periodic();
  sim.accumulator().unload(sim.fields());
  const auto rho_after = sim.charge_density();

  const auto& f = sim.fields();
  double max_resid = 0, max_scale = 0;
  auto wrap = [&](int i, int n) { return i < 1 ? i + n : i; };
  for (int iz = 1; iz <= g.nz; ++iz)
    for (int iy = 1; iy <= g.ny; ++iy)
      for (int ix = 1; ix <= g.nx; ++ix) {
        const index_t v = g.voxel(ix, iy, iz);
        const double drho_dt = (rho_after(v) - rho_before(v)) / g.dt;
        const double divj =
            (f.jx(v) - f.jx(g.voxel(wrap(ix - 1, g.nx), iy, iz))) / g.dx +
            (f.jy(v) - f.jy(g.voxel(ix, wrap(iy - 1, g.ny), iz))) / g.dy +
            (f.jz(v) - f.jz(g.voxel(ix, iy, wrap(iz - 1, g.nz)))) / g.dz;
        max_resid = std::max(max_resid, std::abs(drho_dt + divj));
        max_scale = std::max({max_scale, std::abs(drho_dt), std::abs(divj)});
      }
  ASSERT_GT(max_scale, 0.0);
  EXPECT_LT(max_resid / max_scale, 2e-4)
      << "continuity violated: deposit or unload constants wrong";
}

// ----------------------------------------------------------------------
// FDTD field solver
// ----------------------------------------------------------------------

TEST(Fdtd, VacuumFieldsStayFiniteAndConserveEnergy) {
  const Grid g = small_grid(16, 0.9f);
  core::FieldArray f(g);
  // Seed a sinusoidal Ey(x) standing wave mode with matching Bz.
  for (int iz = 0; iz < g.sz(); ++iz)
    for (int iy = 0; iy < g.sy(); ++iy)
      for (int ix = 0; ix < g.sx(); ++ix)
        f.ey(g.voxel(ix, iy, iz)) = 0.01f *
            std::sin(2.0f * 3.14159265f * static_cast<float>(ix - 1) /
                     static_cast<float>(g.nx));
  f.update_ghosts_periodic();
  const double e0 = f.field_energy();
  ASSERT_GT(e0, 0.0);
  for (int step = 0; step < 200; ++step) {
    f.advance_b_half();
    f.update_ghosts_periodic();
    f.advance_e();
    f.update_ghosts_periodic();
    f.advance_b_half();
    f.update_ghosts_periodic();
  }
  const double e1 = f.field_energy();
  EXPECT_TRUE(std::isfinite(e1));
  // Lossless vacuum propagation: energy conserved to a few percent (the
  // half-step splitting exchanges E/B energy within a step).
  EXPECT_NEAR(e1, e0, 0.05 * e0);
}

TEST(Fdtd, UniformFieldIsSteadyState) {
  const Grid g = small_grid(8);
  core::FieldArray f(g);
  set_uniform_fields(f, 0.5f, -0.25f, 0.125f, 1.0f, 2.0f, 3.0f);
  for (int step = 0; step < 10; ++step) {
    f.advance_b_half();
    f.update_ghosts_periodic();
    f.advance_e();
    f.update_ghosts_periodic();
    f.advance_b_half();
    f.update_ghosts_periodic();
  }
  // curl of uniform fields is zero: nothing changes.
  EXPECT_FLOAT_EQ(f.ex(g.voxel(4, 4, 4)), 0.5f);
  EXPECT_FLOAT_EQ(f.bz(g.voxel(2, 3, 4)), 3.0f);
}

TEST(Fdtd, GhostLayersMirrorPeriodically) {
  const Grid g = small_grid(4);
  core::FieldArray f(g);
  f.ex(g.voxel(4, 2, 2)) = 7.0f;
  f.update_ghosts_periodic();
  EXPECT_FLOAT_EQ(f.ex(g.voxel(0, 2, 2)), 7.0f);
  f.ex(g.voxel(1, 3, 3)) = -3.0f;
  f.update_ghosts_periodic();
  EXPECT_FLOAT_EQ(f.ex(g.voxel(5, 3, 3)), -3.0f);
}

// ----------------------------------------------------------------------
// Simulation-level invariants
// ----------------------------------------------------------------------

TEST(Simulation, NeutralPlasmaStaysNeutral) {
  core::SimulationConfig cfg;
  cfg.grid = small_grid(6, 0.6f);
  core::Simulation sim(cfg);
  const auto e = sim.add_species("e", -1.0f, 1.0f, 3000);
  const auto i = sim.add_species("i", 1.0f, 100.0f, 3000);
  sim.load_uniform_plasma(e, 4, 0.05f);
  sim.load_uniform_plasma(i, 4, 0.005f);
  double q_total = 0;
  const auto rho = sim.charge_density();
  for (index_t v = 0; v < rho.size(); ++v) q_total += rho(v);
  EXPECT_NEAR(q_total, 0.0, 1e-6);
}

TEST(Simulation, EnergyConservedThermalPlasma) {
  core::SimulationConfig cfg;
  cfg.grid = small_grid(8, 0.5f);
  cfg.sort_interval = 5;
  core::Simulation sim(cfg);
  const auto e = sim.add_species("e", -1.0f, 1.0f, 10000);
  const auto i = sim.add_species("i", 1.0f, 100.0f, 10000);
  sim.load_uniform_plasma(e, 8, 0.05f);
  sim.load_uniform_plasma(i, 8, 0.005f);
  const auto e0 = sim.energies();
  sim.run(50);
  const auto e1 = sim.energies();
  EXPECT_TRUE(std::isfinite(e1.total()));
  // Tolerate a few percent drift over 50 steps at this resolution.
  EXPECT_NEAR(e1.total(), e0.total(), 0.05 * e0.total());
}

TEST(Simulation, ParticleCountConserved) {
  core::SimulationConfig cfg;
  cfg.grid = small_grid(6, 0.7f);
  core::Simulation sim(cfg);
  const auto e = sim.add_species("e", -1.0f, 1.0f, 4000);
  sim.load_uniform_plasma(e, 5, 0.3f);
  const index_t n0 = sim.species(e).np;
  sim.run(20);
  EXPECT_EQ(sim.species(e).np, n0);
  // All particles still in interior cells with valid offsets.
  for (index_t n = 0; n < n0; ++n) {
    const auto& p = sim.species(e).p(n);
    EXPECT_TRUE(cfg.grid.is_interior(p.i)) << n;
    EXPECT_LE(std::abs(p.dx), 1.0f + 1e-5f);
    EXPECT_LE(std::abs(p.dy), 1.0f + 1e-5f);
    EXPECT_LE(std::abs(p.dz), 1.0f + 1e-5f);
  }
}

TEST(Simulation, SortingDoesNotChangePhysics) {
  auto make = [&](vpic::sort::SortOrder order) {
    core::SimulationConfig cfg;
    cfg.grid = small_grid(6, 0.6f);
    cfg.sort_order = order;
    cfg.sort_interval = 3;
    core::Simulation sim(cfg);
    const auto e = sim.add_species("e", -1.0f, 1.0f, 4000);
    sim.load_uniform_plasma(e, 4, 0.1f);
    sim.run(12);
    return sim.energies().total();
  };
  const double ref = make(vpic::sort::SortOrder::Standard);
  // Particle order changes fp summation order: tolerance, not equality.
  EXPECT_NEAR(make(vpic::sort::SortOrder::Strided), ref, 1e-4 * ref);
  EXPECT_NEAR(make(vpic::sort::SortOrder::TiledStrided), ref, 1e-4 * ref);
  EXPECT_NEAR(make(vpic::sort::SortOrder::Random), ref, 1e-4 * ref);
}

TEST(MoveP, ReflectingWallBounces) {
  const Grid g = small_grid(8);
  core::AccumulatorArray acc(g);
  acc.clear();
  core::Particle p{};
  p.i = static_cast<std::int32_t>(g.voxel(8, 4, 4));
  p.dx = 0.8f;
  p.ux = 0.5f;
  // Heading +x into a reflecting x-wall with displacement 0.6: travels 0.2
  // to the face, bounces, travels 0.4 back.
  const auto res = core::move_p(p, 0.6f, 0.0f, 0.0f, 1.0f, acc, g,
                                /*periodic_mask=*/0b110, nullptr,
                                /*reflect_mask=*/0b001);
  EXPECT_EQ(res, core::MoveResult::Stayed);
  EXPECT_EQ(p.i, static_cast<std::int32_t>(g.voxel(8, 4, 4)));
  EXPECT_NEAR(p.dx, 0.6f, 1e-6);  // 1.0 - 0.4
  EXPECT_FLOAT_EQ(p.ux, -0.5f);   // normal momentum flipped
}

TEST(MoveP, ReflectingWallNetCurrentCancels) {
  // Bounce exactly halfway: the inbound and outbound x-current cancel.
  const Grid g = small_grid(8);
  core::AccumulatorArray acc(g);
  acc.clear();
  core::Particle p{};
  p.i = static_cast<std::int32_t>(g.voxel(8, 4, 4));
  p.dx = 0.6f;
  const float qw = 1.0f;
  core::move_p(p, 0.8f, 0.0f, 0.0f, qw, acc, g, 0b110, nullptr, 0b001);
  EXPECT_NEAR(p.dx, 0.6f, 1e-6);  // back where it started
  const auto& a = acc.a(g.voxel(8, 4, 4));
  EXPECT_NEAR(a.jx[0] + a.jx[1] + a.jx[2] + a.jx[3], 0.0f, 1e-6f);
}

TEST(MoveP, ReflectingBoxConfinesParticles) {
  // Random walkers in an all-reflecting box never leave and never exit.
  const Grid g = small_grid(6);
  core::AccumulatorArray acc(g);
  acc.clear();
  std::uint64_t state = 99;
  auto next = [&] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<float>(static_cast<double>(state >> 33) / 2147483648.0) -
           1.0f;
  };
  core::Particle p{};
  p.i = static_cast<std::int32_t>(g.voxel(3, 3, 3));
  for (int step = 0; step < 500; ++step) {
    const auto r = core::move_p(p, 1.5f * next(), 1.5f * next(),
                                1.5f * next(), 1.0f, acc, g,
                                /*periodic_mask=*/0b000, nullptr,
                                /*reflect_mask=*/0b111);
    ASSERT_EQ(r, core::MoveResult::Stayed) << "step " << step;
    ASSERT_TRUE(g.is_interior(p.i)) << "step " << step;
  }
}
