// Tests for the composable physics-module registry (core/module.hpp,
// docs/MODULES.md): registration semantics (stage ordering, duplicate
// rejection, lookup), the headline refactor guarantee — the
// registry-composed step is bit-identical across the Sequential, Graph,
// and tiled execution shapes exactly as the pre-registry builders were —
// plus the TracerModule plug-in (composition in every shape, trajectory
// sampling, checkpoint round-trip) and module-section forward
// compatibility (unknown sections skip with a typed report; files that
// predate a module clear its state).
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/decks.hpp"
#include "core/simulation.hpp"
#include "core/tracer.hpp"
#include "pk/pk.hpp"

namespace core = vpic::core;
namespace pk = vpic::pk;
namespace fs = std::filesystem;
using pk::index_t;

namespace {

class PkEnv : public ::testing::Environment {
 public:
  // One kernel thread: bit-identity comparisons need a fixed particle
  // visit order; multi-thread float-atomic deposits reorder sums. Tune
  // defaults: probed per-layout push gates could flip dispatch between
  // compared runs.
  void SetUp() override {
    setenv("VPIC_TUNE", "off", 1);
    pk::initialize(1);
  }
};
[[maybe_unused]] const auto* const env =
    ::testing::AddGlobalTestEnvironment(new PkEnv);

core::Simulation make_lpi_small(std::uint64_t seed = 42) {
  core::decks::LpiParams p;
  p.nx = 12;
  p.ny = 4;
  p.nz = 4;
  p.ppc = 2;
  p.sort_interval = 10;
  p.seed = seed;
  auto sim = core::decks::make_lpi(p);
  sim.config().energy_interval = 5;
  return sim;
}

std::vector<core::Particle> canon(const core::Species& sp) {
  std::vector<core::Particle> out(static_cast<std::size_t>(sp.np));
  sp.p.export_aos(out.data(), sp.np);
  return out;
}

bool same_particles(const core::Simulation& a, const core::Simulation& b) {
  auto& sa = const_cast<core::Simulation&>(a);
  auto& sb = const_cast<core::Simulation&>(b);
  if (sa.num_species() != sb.num_species()) return false;
  for (std::size_t s = 0; s < sa.num_species(); ++s) {
    const auto pa = canon(sa.species(s));
    const auto pb = canon(sb.species(s));
    if (pa.size() != pb.size()) return false;
    if (!pa.empty() &&
        std::memcmp(pa.data(), pb.data(),
                    pa.size() * sizeof(core::Particle)) != 0)
      return false;
  }
  return true;
}

fs::path scratch(const std::string& tag) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("vpic_mod_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<std::byte> tracer_bytes(const core::TracerModule& t) {
  std::vector<std::byte> b;
  const auto& parts = t.tracers();
  const auto traj = t.trajectory();
  b.resize(parts.size() * sizeof(core::TracerParticle) +
           traj.size() * sizeof(core::TracerSample));
  if (!parts.empty())
    std::memcpy(b.data(), parts.data(),
                parts.size() * sizeof(core::TracerParticle));
  if (!traj.empty())
    std::memcpy(b.data() + parts.size() * sizeof(core::TracerParticle),
                traj.data(), traj.size() * sizeof(core::TracerSample));
  return b;
}

}  // namespace

// ----------------------------------------------------------------------
// Registry semantics.
// ----------------------------------------------------------------------

TEST(ModuleRegistry, CorePipelineRegisteredInStageOrder) {
  auto sim = make_lpi_small();
  const auto& mods = sim.modules();
  ASSERT_EQ(mods.size(), 8u);
  const char* expect[] = {"interpolate", "push",        "accumulate",
                          "field",       "injection",   "diagnostics",
                          "sort",        "ckpt"};
  for (std::size_t i = 0; i < mods.size(); ++i) {
    EXPECT_EQ(mods[i]->id(), expect[i]) << "slot " << i;
    if (i > 0) EXPECT_LE(mods[i - 1]->stage(), mods[i]->stage());
  }
  EXPECT_NE(sim.find_module("push"), nullptr);
  EXPECT_EQ(sim.find_module("no_such_module"), nullptr);
}

TEST(ModuleRegistry, DuplicateIdRejected) {
  auto sim = make_lpi_small();
  sim.add_module<core::TracerModule>();
  EXPECT_THROW(sim.add_module<core::TracerModule>(), std::invalid_argument);
  EXPECT_THROW(sim.add_module(nullptr), std::invalid_argument);
}

TEST(ModuleRegistry, PluginInsertsAtItsStage) {
  auto sim = make_lpi_small();
  sim.add_module<core::TracerModule>();  // StepStage::Push
  const auto& mods = sim.modules();
  ASSERT_EQ(mods.size(), 9u);
  // Tied stages keep registration order: tracer lands after the core
  // push, before accumulate.
  std::size_t push_at = 0, tracer_at = 0, acc_at = 0;
  for (std::size_t i = 0; i < mods.size(); ++i) {
    if (mods[i]->id() == "push") push_at = i;
    if (mods[i]->id() == "tracer") tracer_at = i;
    if (mods[i]->id() == "accumulate") acc_at = i;
  }
  EXPECT_EQ(tracer_at, push_at + 1);
  EXPECT_EQ(acc_at, tracer_at + 1);
}

TEST(ModuleRegistry, ModuleRngIsPerModuleAndSeeded) {
  auto a = make_lpi_small(42);
  auto b = make_lpi_small(43);
  EXPECT_EQ(a.module_rng("collide").domain, a.module_rng("collide").domain);
  EXPECT_NE(a.module_rng("collide").domain, a.module_rng("tracer").domain);
  EXPECT_NE(a.module_rng("collide").domain, b.module_rng("collide").domain);
  const core::ModuleRng r = a.module_rng("collide");
  EXPECT_NE(r.stream(1, 2, 3), r.stream(1, 2, 4));
  EXPECT_EQ(r.stream(1, 2, 3), r.stream(1, 2, 3));
}

// ----------------------------------------------------------------------
// The refactor guarantee: generic composition reproduces the legacy step
// bit-for-bit in every execution shape (100 LPI steps, energies +
// particle bytes).
// ----------------------------------------------------------------------

TEST(ModuleStep, SequentialAndGraphBitIdentical100Steps) {
  auto ref = make_lpi_small();
  ref.config().scheduler = core::StepScheduler::Sequential;
  auto graph = make_lpi_small();
  graph.config().scheduler = core::StepScheduler::Graph;
  for (int i = 0; i < 100; ++i) {
    ref.step();
    graph.step();
  }
  EXPECT_TRUE(same_particles(ref, graph));
  const auto ea = ref.energies(), eb = graph.energies();
  EXPECT_EQ(ea.field, eb.field);
  ASSERT_EQ(ea.species.size(), eb.species.size());
  for (std::size_t s = 0; s < ea.species.size(); ++s)
    EXPECT_EQ(ea.species[s], eb.species[s]);
}

TEST(ModuleStep, TiledShapesBitIdentical100Steps) {
  auto ref = make_lpi_small();
  ref.config().scheduler = core::StepScheduler::Sequential;

  auto det = make_lpi_small();
  det.config().tiles.enabled = true;
  det.config().tiles.exec = core::TileExec::Deterministic;

  auto steal2 = make_lpi_small();
  steal2.config().tiles.enabled = true;
  steal2.config().tiles.exec = core::TileExec::Stealing;
  steal2.config().tiles.workers = 2;

  auto steal4 = make_lpi_small();
  steal4.config().tiles.enabled = true;
  steal4.config().tiles.exec = core::TileExec::Stealing;
  steal4.config().tiles.workers = 4;

  for (int i = 0; i < 100; ++i) {
    ref.step();
    det.step();
    steal2.step();
    steal4.step();
  }
  // Deterministic tiling is the untiled reference order re-cut into tile
  // tasks: bit-identical to Sequential. Stealing is bit-deterministic
  // across worker counts.
  EXPECT_TRUE(same_particles(ref, det));
  EXPECT_TRUE(same_particles(steal2, steal4));
  EXPECT_EQ(det.energies().field, ref.energies().field);
  EXPECT_EQ(steal2.energies().field, steal4.energies().field);
}

// ----------------------------------------------------------------------
// TracerModule.
// ----------------------------------------------------------------------

TEST(TracerModule, SeedsAndSamplesTrajectories) {
  auto sim = make_lpi_small();
  core::TracerParams tp;
  tp.species = 0;
  tp.stride = 8;
  tp.max_tracers = 16;
  tp.sample_interval = 2;
  auto& tracer = sim.add_module<core::TracerModule>(tp);
  EXPECT_TRUE(tracer.tracers().empty());  // lazy-seeded at first step
  sim.run(10);
  ASSERT_FALSE(tracer.tracers().empty());
  EXPECT_LE(tracer.tracers().size(), tp.max_tracers);
  // Samples on steps 2,4,6,8,10 for every tracer.
  EXPECT_EQ(tracer.samples_recorded(), tracer.tracers().size() * 5);
  const auto traj = tracer.trajectory();
  ASSERT_FALSE(traj.empty());
  EXPECT_EQ(traj.front().step, 2);
  EXPECT_EQ(traj.back().step, 10);
}

TEST(TracerModule, RingBufferEvictsOldest) {
  auto sim = make_lpi_small();
  core::TracerParams tp;
  tp.stride = 50;
  tp.max_tracers = 2;
  tp.sample_interval = 1;
  tp.ring_capacity = 6;
  auto& tracer = sim.add_module<core::TracerModule>(tp);
  sim.run(10);
  ASSERT_EQ(tracer.tracers().size(), 2u);
  EXPECT_EQ(tracer.samples_recorded(), 20u);
  const auto traj = tracer.trajectory();
  ASSERT_EQ(traj.size(), 6u);
  // Oldest first, newest retained.
  EXPECT_EQ(traj.front().step, 8);
  EXPECT_EQ(traj.back().step, 10);
}

TEST(TracerModule, BitIdenticalAcrossExecutionShapes) {
  core::TracerParams tp;
  tp.stride = 8;
  tp.max_tracers = 16;
  tp.sample_interval = 1;

  auto seq = make_lpi_small();
  seq.config().scheduler = core::StepScheduler::Sequential;
  auto& t_seq = seq.add_module<core::TracerModule>(tp);

  auto graph = make_lpi_small();
  auto& t_graph = graph.add_module<core::TracerModule>(tp);

  auto det = make_lpi_small();
  det.config().tiles.enabled = true;
  auto& t_det = det.add_module<core::TracerModule>(tp);

  auto steal2 = make_lpi_small();
  steal2.config().tiles.enabled = true;
  steal2.config().tiles.exec = core::TileExec::Stealing;
  steal2.config().tiles.workers = 2;
  auto& t_steal2 = steal2.add_module<core::TracerModule>(tp);

  auto steal4 = make_lpi_small();
  steal4.config().tiles.enabled = true;
  steal4.config().tiles.exec = core::TileExec::Stealing;
  steal4.config().tiles.workers = 4;
  auto& t_steal4 = steal4.add_module<core::TracerModule>(tp);

  for (int i = 0; i < 40; ++i) {
    seq.step();
    graph.step();
    det.step();
    steal2.step();
    steal4.step();
  }
  // Sequential, Graph, and Deterministic tiling run the same float
  // stream; Stealing's block-merged deposits differ in the last ulp from
  // the untiled step, so its guarantee is determinism across worker
  // counts, not cross-shape identity (docs/TILES.md).
  const auto ref = tracer_bytes(t_seq);
  EXPECT_FALSE(ref.empty());
  EXPECT_EQ(ref, tracer_bytes(t_graph));
  EXPECT_EQ(ref, tracer_bytes(t_det));
  EXPECT_EQ(tracer_bytes(t_steal2), tracer_bytes(t_steal4));
  // The plasma itself is untouched by passive tracers.
  EXPECT_TRUE(same_particles(seq, graph));
}

// ----------------------------------------------------------------------
// Module checkpoint sections.
// ----------------------------------------------------------------------

TEST(ModuleCheckpoint, TracerStateRoundTripsBitIdentically) {
  const fs::path dir = scratch("tracer_rt");
  core::TracerParams tp;
  tp.stride = 8;
  tp.max_tracers = 16;
  tp.sample_interval = 1;

  auto sim = make_lpi_small();
  auto& tracer = sim.add_module<core::TracerModule>(tp);
  sim.run(25);
  sim.checkpoint((dir / "a.ckpt").string());

  auto restored = make_lpi_small();
  auto& r_tracer = restored.add_module<core::TracerModule>(tp);
  restored.restore((dir / "a.ckpt").string());
  EXPECT_TRUE(restored.last_restore_skips().empty());
  EXPECT_EQ(tracer_bytes(tracer), tracer_bytes(r_tracer));

  // A restored run continues bit-identically to one that never stopped —
  // including the module state.
  sim.run(40);
  restored.run(40);
  EXPECT_TRUE(same_particles(sim, restored));
  EXPECT_EQ(tracer_bytes(tracer), tracer_bytes(r_tracer));
}

TEST(ModuleCheckpoint, UnknownModuleSectionsSkipTyped) {
  const fs::path dir = scratch("tracer_skip");
  auto sim = make_lpi_small();
  sim.add_module<core::TracerModule>();
  sim.run(10);
  const auto expect_canon = canon(sim.species(0));
  sim.checkpoint((dir / "a.ckpt").string());

  // Restore into a simulation WITHOUT the tracer module: the unknown
  // "mod.tracer.*" sections are skipped with a typed report and the rest
  // of the state restores normally.
  auto plain = make_lpi_small();
  plain.restore((dir / "a.ckpt").string());
  ASSERT_EQ(plain.last_restore_skips().size(), 1u);
  const auto& skip = plain.last_restore_skips()[0];
  EXPECT_EQ(skip.module, "tracer");
  EXPECT_EQ(skip.version, 1u);
  EXPECT_GT(skip.sections, 0u);
  EXPECT_EQ(plain.step_count(), 10);
  const auto got = canon(plain.species(0));
  ASSERT_EQ(got.size(), expect_canon.size());
  EXPECT_EQ(std::memcmp(got.data(), expect_canon.data(),
                        got.size() * sizeof(core::Particle)),
            0);
}

TEST(ModuleCheckpoint, FilePredatingModuleClearsItsState) {
  const fs::path dir = scratch("tracer_clear");
  auto plain = make_lpi_small();
  plain.run(5);
  plain.checkpoint((dir / "a.ckpt").string());

  auto sim = make_lpi_small();
  auto& tracer = sim.add_module<core::TracerModule>();
  sim.run(10);
  ASSERT_GT(tracer.samples_recorded(), 0u);
  sim.restore((dir / "a.ckpt").string());
  // Restore is a complete overwrite: tracer state resets to attach-time.
  EXPECT_TRUE(sim.last_restore_skips().empty());
  EXPECT_TRUE(tracer.tracers().empty());
  EXPECT_EQ(tracer.samples_recorded(), 0u);
  EXPECT_EQ(sim.step_count(), 5);
}
