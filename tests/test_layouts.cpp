// Layout determinism suite (docs/LAYOUT.md): the AoS / SoA / AoSoA
// particle stores are different *addresses* for the same logical record,
// so on one kernel thread the physics must be bit-identical across all
// three — same field bytes, same canonical particle stream, same energy
// diagnostics — on a multi-step LPI run, and a checkpoint written by a
// non-AoS species must restore into any layout and continue identically.
//
// Also pins the storage machinery itself: AoSoA tile offsets, get/set
// round trips, export/import through the canonical AoS stream,
// copy_particles over every layout pair, and load_vecs lane agreement
// with scalar loads (including the AoSoA unaligned gather path).
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "ckpt/ckpt.hpp"
#include "core/core.hpp"

namespace core = vpic::core;
namespace pk = vpic::pk;
namespace fs = std::filesystem;
using pk::index_t;

namespace {

class PkEnv : public ::testing::Environment {
 public:
  // One kernel thread: bit-identity across layouts requires a fixed
  // particle visit order; multi-thread float-atomic deposits reorder sums.
  void SetUp() override { pk::initialize(1); }
};
[[maybe_unused]] const auto* const env =
    ::testing::AddGlobalTestEnvironment(new PkEnv);

/// Distinctive, lane-identifiable record for index n.
core::Particle probe_particle(index_t n) {
  core::Particle p{};
  p.dx = 0.001f * static_cast<float>(n);
  p.dy = -0.002f * static_cast<float>(n);
  p.dz = 0.25f;
  p.i = static_cast<std::int32_t>(n * 3 + 1);
  p.ux = 1.0f + static_cast<float>(n);
  p.uy = -2.0f - static_cast<float>(n);
  p.uz = 0.5f * static_cast<float>(n % 7);
  p.w = 1.0f;
  return p;
}

bool same_record(const core::Particle& a, const core::Particle& b) {
  return std::memcmp(&a, &b, sizeof(core::Particle)) == 0;
}

core::Simulation make_lpi(core::ParticleLayout layout) {
  core::decks::LpiParams p;
  p.nx = 12;
  p.ny = 4;
  p.nz = 4;
  p.ppc = 2;
  p.sort_interval = 10;
  p.layout = layout;
  auto sim = core::decks::make_lpi(p);
  sim.config().energy_interval = 5;
  return sim;
}

std::vector<core::Particle> canon(const core::Species& sp) {
  std::vector<core::Particle> out(static_cast<std::size_t>(sp.np));
  sp.p.export_aos(out.data(), sp.np);
  return out;
}

std::vector<std::byte> view_bytes(const pk::View<float, 1>& v) {
  std::vector<std::byte> b(static_cast<std::size_t>(v.size()) *
                           sizeof(float));
  std::memcpy(b.data(), v.data(), b.size());
  return b;
}

class LayoutStore : public ::testing::TestWithParam<int> {
 protected:
  core::ParticleLayout layout() const {
    return core::kAllParticleLayouts[GetParam()];
  }
};

std::string layout_name(const ::testing::TestParamInfo<int>& info) {
  return core::to_string(core::kAllParticleLayouts[info.param]);
}

INSTANTIATE_TEST_SUITE_P(Layouts, LayoutStore,
                         ::testing::Range(0, core::kNumParticleLayouts),
                         layout_name);

}  // namespace

// ---- storage machinery -----------------------------------------------

TEST(AosoaOffsets, TileMathMatchesDefinition) {
  // offset(n, f) = tile_base + field_row + lane: fields of one tile's
  // particles are contiguous W-wide rows (the manual kernel's load unit).
  constexpr int TW = core::kAosoaTileWidth;
  const core::AosoaAccessor a{nullptr};
  for (index_t n : {index_t{0}, index_t{TW - 1}, index_t{TW}, index_t{19}}) {
    for (int f = 0; f < core::kParticleFields; ++f) {
      EXPECT_EQ(a.off(n, f), (n / TW) * (core::kParticleFields * TW) +
                                 static_cast<index_t>(f) * TW + n % TW);
    }
  }
  // Within a tile, one field's lanes are adjacent...
  EXPECT_EQ(a.off(1, core::kFieldUx), a.off(0, core::kFieldUx) + 1);
  // ...and crossing a tile boundary jumps a full tile of floats.
  EXPECT_EQ(a.off(TW, 0) - a.off(TW - 1, 0),
            static_cast<index_t>((core::kParticleFields - 1) * TW + 1));
}

TEST_P(LayoutStore, GetSetCellRoundTrip) {
  const index_t n = 37;  // deliberately not a tile multiple
  core::ParticleStore s("s", n, layout());
  EXPECT_EQ(s.layout(), layout());
  EXPECT_EQ(s.size(), n);
  for (index_t i = 0; i < n; ++i) s.set(i, probe_particle(i));
  for (index_t i = 0; i < n; ++i) {
    EXPECT_TRUE(same_record(s.get(i), probe_particle(i))) << i;
    EXPECT_EQ(s.cell(i), probe_particle(i).i) << i;
  }
  // set_cell touches only the cell plane/lane.
  s.set_cell(5, 4242);
  core::Particle expect = probe_particle(5);
  expect.i = 4242;
  EXPECT_TRUE(same_record(s.get(5), expect));
}

TEST_P(LayoutStore, CanonicalAosExportImportRoundTrip) {
  const index_t n = 41;
  core::ParticleStore s("s", n, layout());
  for (index_t i = 0; i < n; ++i) s.set(i, probe_particle(i));

  std::vector<core::Particle> stream(static_cast<std::size_t>(n));
  s.export_aos(stream.data(), n);
  for (index_t i = 0; i < n; ++i)
    EXPECT_TRUE(same_record(stream[static_cast<std::size_t>(i)],
                            probe_particle(i)))
        << i;

  core::ParticleStore back("back", n, layout());
  back.import_aos(stream.data(), n);
  for (index_t i = 0; i < n; ++i)
    EXPECT_TRUE(same_record(back.get(i), probe_particle(i))) << i;
}

TEST(LayoutPairs, CopyParticlesEveryPair) {
  const index_t n = 29;
  for (const auto from : core::kAllParticleLayouts) {
    for (const auto to : core::kAllParticleLayouts) {
      SCOPED_TRACE(std::string(core::to_string(from)) + "->" +
                   core::to_string(to));
      core::ParticleStore src("src", n, from);
      core::ParticleStore dst("dst", n, to);
      for (index_t i = 0; i < n; ++i) src.set(i, probe_particle(i));
      core::copy_particles(dst, src, n);
      for (index_t i = 0; i < n; ++i)
        EXPECT_TRUE(same_record(dst.get(i), probe_particle(i))) << i;
    }
  }
}

TEST_P(LayoutStore, LoadVecsAgreesWithScalarLoads) {
  constexpr int W = core::kManualVecWidth;
  const index_t n = 4 * W;
  core::ParticleStore s("s", n, layout());
  for (index_t i = 0; i < n; ++i) s.set(i, probe_particle(i));

  // n0 = W hits every fast path; n0 = W/2 forces the AoSoA per-lane
  // gather (tile-straddling) and the unaligned SoA loads.
  for (const index_t n0 : {index_t{W}, index_t{W / 2}}) {
    SCOPED_TRACE(n0);
    const auto vecs = core::dispatch_layout(
        s, [&](auto acc) { return acc.template load_vecs<W>(n0); });
    alignas(64) float dx[W], dy[W], dz[W], ux[W], uy[W], uz[W], w[W];
    vecs.dx.store(dx);
    vecs.dy.store(dy);
    vecs.dz.store(dz);
    vecs.ux.store(ux);
    vecs.uy.store(uy);
    vecs.uz.store(uz);
    vecs.w.store(w);
    for (int l = 0; l < W; ++l) {
      const core::Particle p = s.get(n0 + l);
      EXPECT_EQ(dx[l], p.dx) << l;
      EXPECT_EQ(dy[l], p.dy) << l;
      EXPECT_EQ(dz[l], p.dz) << l;
      EXPECT_EQ(vecs.cell[l], p.i) << l;
      EXPECT_EQ(ux[l], p.ux) << l;
      EXPECT_EQ(uy[l], p.uy) << l;
      EXPECT_EQ(uz[l], p.uz) << l;
      EXPECT_EQ(w[l], p.w) << l;
    }
  }
}

// ---- bit-identical physics -------------------------------------------

TEST(LayoutDeterminism, BitIdenticalPhysicsAcrossAllLayouts) {
  // Run the same deck once per layout and require byte-equality of the
  // fields, the canonical particle stream, and the energy history. This
  // is the tentpole guarantee: a layout is an address computation, never
  // a physics change.
  auto ref = make_lpi(core::ParticleLayout::AoS);
  ref.run(40);
  const auto ref_p = canon(ref.species(0));
  const auto ref_ex = view_bytes(ref.fields().ex);
  const auto ref_by = view_bytes(ref.fields().by);
  const auto ref_jz = view_bytes(ref.fields().jz);
  const std::string ref_csv = ref.energy_history().to_csv();

  for (const auto layout :
       {core::ParticleLayout::SoA, core::ParticleLayout::AoSoA}) {
    SCOPED_TRACE(core::to_string(layout));
    auto sim = make_lpi(layout);
    sim.run(40);
    ASSERT_EQ(sim.species(0).np, ref.species(0).np);
    const auto p = canon(sim.species(0));
    EXPECT_EQ(std::memcmp(p.data(), ref_p.data(),
                          p.size() * sizeof(core::Particle)),
              0)
        << "particle stream diverged";
    EXPECT_EQ(view_bytes(sim.fields().ex), ref_ex);
    EXPECT_EQ(view_bytes(sim.fields().by), ref_by);
    EXPECT_EQ(view_bytes(sim.fields().jz), ref_jz);
    EXPECT_EQ(sim.energy_history().to_csv(), ref_csv);
  }
}

TEST(LayoutDeterminism, EveryStrategyMatchesAcrossLayouts) {
  // The vectorization strategies each have their own layout-specialized
  // inner loops; all (strategy x layout) cells must agree bit-exactly
  // with the AoS run of the same strategy.
  for (const auto strat :
       {core::VectorStrategy::Guided, core::VectorStrategy::Manual}) {
    SCOPED_TRACE(core::to_string(strat));
    std::vector<core::Particle> ref_p;
    std::string ref_csv;
    for (const auto layout : core::kAllParticleLayouts) {
      SCOPED_TRACE(core::to_string(layout));
      auto sim = make_lpi(layout);
      sim.config().strategy = strat;
      sim.run(20);
      const auto p = canon(sim.species(0));
      const std::string csv = sim.energy_history().to_csv();
      if (layout == core::ParticleLayout::AoS) {
        ref_p = p;
        ref_csv = csv;
      } else {
        ASSERT_EQ(p.size(), ref_p.size());
        EXPECT_EQ(std::memcmp(p.data(), ref_p.data(),
                              p.size() * sizeof(core::Particle)),
                  0);
        EXPECT_EQ(csv, ref_csv);
      }
    }
  }
}

TEST(LayoutDeterminism, NonAosCheckpointRestoresIntoAnyLayout) {
  // A checkpoint written by an AoSoA run must restore into every layout
  // and continue bit-identically with the uninterrupted AoSoA reference:
  // the file stores the canonical stream, the layout only re-addresses it.
  const fs::path dir =
      fs::path(::testing::TempDir()) / "vpic_layout_ckpt";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = (dir / "mid.ckpt").string();

  auto ref = make_lpi(core::ParticleLayout::AoSoA);
  ref.run(30);
  const auto ref_p = canon(ref.species(0));
  const std::string ref_csv = ref.energy_history().to_csv();

  auto writer = make_lpi(core::ParticleLayout::AoSoA);
  writer.run(15);
  ASSERT_GT(writer.checkpoint(path), 0u);

  for (const auto layout : core::kAllParticleLayouts) {
    SCOPED_TRACE(core::to_string(layout));
    auto resumed = make_lpi(layout);
    resumed.restore(path);
    EXPECT_EQ(resumed.step_count(), 15);
    EXPECT_EQ(resumed.species(0).p.layout(), layout);
    resumed.run(15);
    const auto p = canon(resumed.species(0));
    ASSERT_EQ(p.size(), ref_p.size());
    EXPECT_EQ(std::memcmp(p.data(), ref_p.data(),
                          p.size() * sizeof(core::Particle)),
              0);
    EXPECT_EQ(resumed.energy_history().to_csv(), ref_csv);
  }
}
