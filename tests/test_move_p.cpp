// Directed move_p boundary/crossing tests and compact_exited coverage:
// reflecting walls (momentum flip + bounce), multi-face crossings with
// exact per-axis charge-flux accounting, exit-mode bookkeeping (ghost
// cell, deposited vs remaining displacement split), and the exited-slot
// compaction used by the rank-exchange path.
#include <gtest/gtest.h>

#include <cmath>

#include "core/core.hpp"

namespace core = vpic::core;
namespace pk = vpic::pk;
using pk::index_t;

namespace {

double jx_sum(const core::AccumulatorArray& acc) {
  double s = 0;
  for (index_t v = 0; v < acc.a.size(); ++v)
    for (int c = 0; c < 4; ++c) s += acc.a(v).jx[c];
  return s;
}

double jy_sum(const core::AccumulatorArray& acc) {
  double s = 0;
  for (index_t v = 0; v < acc.a.size(); ++v)
    for (int c = 0; c < 4; ++c) s += acc.a(v).jy[c];
  return s;
}

double jz_sum(const core::AccumulatorArray& acc) {
  double s = 0;
  for (index_t v = 0; v < acc.a.size(); ++v)
    for (int c = 0; c < 4; ++c) s += acc.a(v).jz[c];
  return s;
}

}  // namespace

// ----------------------------------------------------------------------
// Reflecting boundaries.
// ----------------------------------------------------------------------

TEST(MovePReflect, BouncesOffLowXWallAndFlipsMomentum) {
  const core::Grid g(4, 4, 4, 4, 4, 4, 0.1f);
  core::AccumulatorArray acc(g);
  acc.clear();

  core::Particle p{};
  p.dx = -0.5f;
  p.dy = 0.1f;
  p.dz = -0.2f;
  p.i = static_cast<std::int32_t>(g.voxel(1, 2, 2));
  p.ux = 0.3f;
  p.uy = 0.05f;
  p.uz = -0.1f;

  // Crosses the low x domain face at f = 0.625; the wall reverses the
  // remaining -0.3 of displacement and the normal momentum.
  const auto r = core::move_p(p, -0.8f, 0.0f, 0.0f, 1.0f, acc, g,
                              /*periodic_mask=*/0b111, nullptr,
                              /*reflect_mask=*/0b001);
  EXPECT_EQ(r, core::MoveResult::Stayed);
  EXPECT_EQ(p.i, static_cast<std::int32_t>(g.voxel(1, 2, 2)));
  EXPECT_NEAR(p.dx, -0.7f, 1e-6);
  EXPECT_NEAR(p.dy, 0.1f, 1e-6);
  EXPECT_NEAR(p.dz, -0.2f, 1e-6);
  EXPECT_NEAR(p.ux, -0.3f, 1e-6);  // normal momentum flipped
  EXPECT_NEAR(p.uy, 0.05f, 1e-6);
  EXPECT_NEAR(p.uz, -0.1f, 1e-6);
  // Net deposited x flux is the net x motion: -0.5 down then +0.3 back.
  EXPECT_NEAR(jx_sum(acc), 4.0 * (-0.2), 1e-5);
}

TEST(MovePReflect, BounceOffHighZWallInThinSlab) {
  // A displacement long enough to hit the high-z wall, bounce, and remain
  // inside: the guard loop must handle the post-bounce segment.
  const core::Grid g(4, 4, 1, 4, 4, 1, 0.05f);
  core::AccumulatorArray acc(g);
  acc.clear();

  core::Particle p{};
  p.dz = 0.5f;
  p.i = static_cast<std::int32_t>(g.voxel(2, 2, 1));
  p.uz = 1.0f;
  const auto r = core::move_p(p, 0.0f, 0.0f, 0.9f, 1.0f, acc, g, 0b111,
                              nullptr, /*reflect_mask=*/0b100);
  EXPECT_EQ(r, core::MoveResult::Stayed);
  EXPECT_EQ(p.i, static_cast<std::int32_t>(g.voxel(2, 2, 1)));
  // 0.5 up to the wall, 0.4 reflected back: ends at 1.0 - 0.4 = 0.6.
  EXPECT_NEAR(p.dz, 0.6f, 1e-6);
  EXPECT_LT(p.uz, 0.0f);
  EXPECT_NEAR(jz_sum(acc), 4.0 * 0.1, 1e-5);  // net z motion 0.5 - 0.4
}

// ----------------------------------------------------------------------
// Multi-face crossings.
// ----------------------------------------------------------------------

TEST(MovePCrossing, DiagonalDoubleCrossingLandsInDiagonalNeighbor) {
  const core::Grid g(4, 4, 4, 4, 4, 4, 0.1f);
  core::AccumulatorArray acc(g);
  acc.clear();

  core::Particle p{};
  p.dx = 0.9f;
  p.dy = 0.9f;
  p.i = static_cast<std::int32_t>(g.voxel(2, 2, 2));
  // Crosses the +x face, then the +y face: three deposited segments.
  const auto r = core::move_p(p, 0.8f, 0.8f, 0.0f, 1.0f, acc, g);
  EXPECT_EQ(r, core::MoveResult::Stayed);
  EXPECT_EQ(p.i, static_cast<std::int32_t>(g.voxel(3, 3, 2)));
  EXPECT_NEAR(p.dx, -0.3f, 1e-5);
  EXPECT_NEAR(p.dy, -0.3f, 1e-5);
  // Flux conservation per axis across the split segments.
  EXPECT_NEAR(jx_sum(acc), 4.0 * 0.8, 1e-5);
  EXPECT_NEAR(jy_sum(acc), 4.0 * 0.8, 1e-5);
  EXPECT_NEAR(jz_sum(acc), 0.0, 1e-6);
}

TEST(MovePCrossing, PeriodicWrapReportsWrapped) {
  const core::Grid g(4, 4, 4, 4, 4, 4, 0.1f);
  core::AccumulatorArray acc(g);
  acc.clear();

  core::Particle p{};
  p.dx = 0.9f;
  p.i = static_cast<std::int32_t>(g.voxel(4, 2, 2));  // high-x boundary cell
  const auto r = core::move_p(p, 0.4f, 0.0f, 0.0f, 1.0f, acc, g);
  EXPECT_EQ(r, core::MoveResult::Wrapped);
  EXPECT_EQ(p.i, static_cast<std::int32_t>(g.voxel(1, 2, 2)));
  EXPECT_NEAR(p.dx, -0.7f, 1e-5);
  EXPECT_NEAR(jx_sum(acc), 4.0 * 0.4, 1e-5);
}

// ----------------------------------------------------------------------
// Exit mode (rank-decomposed z axis).
// ----------------------------------------------------------------------

TEST(MovePExit, SplitsDisplacementBetweenDepositAndRemaining) {
  const core::Grid g(4, 4, 4, 4, 4, 4, 0.1f);
  core::AccumulatorArray acc(g);
  acc.clear();

  core::Particle p{};
  p.dx = 0.2f;
  p.dz = 0.5f;
  p.i = static_cast<std::int32_t>(g.voxel(2, 3, 4));  // top z plane
  float rem[3] = {-1, -1, -1};
  // Crosses the top z face at f = 0.625 with x motion riding along.
  const auto r = core::move_p(p, 0.16f, 0.0f, 0.8f, 1.0f, acc, g,
                              /*periodic_mask=*/0b011, rem);
  EXPECT_EQ(r, core::MoveResult::Exited);

  int ix, iy, iz;
  g.cell_of(p.i, ix, iy, iz);
  EXPECT_EQ(ix, 2);
  EXPECT_EQ(iy, 3);
  EXPECT_EQ(iz, g.nz + 1);  // parked in the ghost cell it crossed into
  EXPECT_NEAR(p.dz, -1.0f, 1e-6);  // entering from the far face

  // Unfinished displacement: (1 - f) of each component.
  EXPECT_NEAR(rem[0], 0.06f, 1e-6);
  EXPECT_NEAR(rem[1], 0.0f, 1e-6);
  EXPECT_NEAR(rem[2], 0.3f, 1e-6);
  // Deposited portion: f of each component.
  EXPECT_NEAR(jx_sum(acc), 4.0 * 0.10, 1e-5);
  EXPECT_NEAR(jz_sum(acc), 4.0 * 0.50, 1e-5);
}

// ----------------------------------------------------------------------
// compact_exited.
// ----------------------------------------------------------------------

TEST(CompactExited, RemovesTombstonesPreservingSurvivorOrder) {
  core::Species sp("e", -1.0f, 1.0f, 16);
  for (int k = 0; k < 10; ++k) {
    core::Particle p{};
    p.i = 100 + k;
    p.ux = static_cast<float>(k);  // identity tag
    sp.p(sp.np++) = p;
  }
  for (int k : {2, 5, 9}) sp.p(k).i = -1;

  const index_t removed = core::compact_exited(sp);
  EXPECT_EQ(removed, 3);
  EXPECT_EQ(sp.np, 7);
  const int expect_tags[] = {0, 1, 3, 4, 6, 7, 8};
  for (int k = 0; k < 7; ++k) {
    EXPECT_EQ(sp.p(k).ux, static_cast<float>(expect_tags[k])) << k;
    EXPECT_EQ(sp.p(k).i, 100 + expect_tags[k]) << k;
  }
}

TEST(CompactExited, AllAndNoneExitedEdgeCases) {
  core::Species sp("e", -1.0f, 1.0f, 8);
  for (int k = 0; k < 5; ++k) {
    core::Particle p{};
    p.i = k;
    sp.p(sp.np++) = p;
  }
  EXPECT_EQ(core::compact_exited(sp), 0);  // none exited
  EXPECT_EQ(sp.np, 5);

  for (int k = 0; k < 5; ++k) sp.p(k).i = -1;
  EXPECT_EQ(core::compact_exited(sp), 5);  // all exited
  EXPECT_EQ(sp.np, 0);
  EXPECT_EQ(core::compact_exited(sp), 0);  // empty species
}
