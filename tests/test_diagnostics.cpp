// Tests for the in-situ diagnostics: energy history bookkeeping, fluid
// moments, momentum histograms, and CSV export formats.
#include <gtest/gtest.h>

#include <cmath>

#include "core/core.hpp"

namespace core = vpic::core;
namespace pk = vpic::pk;
using pk::index_t;

TEST(EnergyHistory, TracksAndComputesDrift) {
  core::EnergyHistory h;
  h.record(0, 1.0, {2.0, 3.0});
  h.record(10, 1.5, {2.0, 2.5});   // total unchanged: 6.0
  h.record(20, 1.0, {2.0, 3.6});   // total 6.6: 10% drift
  EXPECT_EQ(h.size(), 3u);
  EXPECT_DOUBLE_EQ(h.total(0), 6.0);
  EXPECT_DOUBLE_EQ(h.kinetic(2), 5.6);
  EXPECT_NEAR(h.max_relative_drift(), 0.1, 1e-12);
}

TEST(EnergyHistory, CsvHasHeaderAndRows) {
  core::EnergyHistory h;
  h.record(0, 1.0, {2.0});
  h.record(5, 1.25, {2.25});
  const std::string csv = h.to_csv();
  EXPECT_NE(csv.find("step,field,ke_0,total"), std::string::npos);
  EXPECT_NE(csv.find("\n0,"), std::string::npos);
  EXPECT_NE(csv.find("\n5,"), std::string::npos);
}

TEST(EnergyHistory, EmptyDriftIsZero) {
  core::EnergyHistory h;
  EXPECT_EQ(h.max_relative_drift(), 0.0);
}

TEST(Moments, UniformPlasmaDensityIsUniform) {
  core::SimulationConfig cfg;
  cfg.grid = core::Grid(4, 4, 4, 4, 4, 4, 0.1f);
  core::Simulation sim(cfg);
  const auto e = sim.add_species("e", -1.0f, 1.0f, 1000);
  sim.load_uniform_plasma(e, 8, 0.0f, 0.1f, 0.0f, 0.0f);
  const auto m = core::compute_moments(sim.species(e), cfg.grid);
  for (int iz = 1; iz <= 4; ++iz)
    for (int iy = 1; iy <= 4; ++iy)
      for (int ix = 1; ix <= 4; ++ix) {
        const auto v = cfg.grid.voxel(ix, iy, iz);
        EXPECT_NEAR(m.density(v), 1.0f, 1e-5f);   // unit density by design
        EXPECT_NEAR(m.ux(v), 0.1f, 1e-5f);        // cold drifting beam
        EXPECT_NEAR(m.uy(v), 0.0f, 1e-6f);
      }
}

TEST(Moments, EmptyCellsZero) {
  core::Grid g(4, 4, 4, 4, 4, 4, 0.1f);
  core::Species sp("e", -1.0f, 1.0f, 10);
  core::Particle p{};
  p.i = static_cast<std::int32_t>(g.voxel(2, 2, 2));
  p.w = 2.0f;
  p.uz = 0.5f;
  sp.p(0) = p;
  sp.np = 1;
  const auto m = core::compute_moments(sp, g);
  EXPECT_NEAR(m.density(g.voxel(2, 2, 2)), 2.0f, 1e-6f);
  EXPECT_NEAR(m.uz(g.voxel(2, 2, 2)), 0.5f, 1e-6f);
  EXPECT_EQ(m.density(g.voxel(1, 1, 1)), 0.0f);
  EXPECT_EQ(m.uz(g.voxel(1, 1, 1)), 0.0f);
}

TEST(MomentumHistogram, CountsAndClamps) {
  core::Grid g(4, 4, 4, 4, 4, 4, 0.1f);
  core::Species sp("e", -1.0f, 1.0f, 100);
  for (int i = 0; i < 100; ++i) {
    core::Particle p{};
    p.i = static_cast<std::int32_t>(g.voxel(1, 1, 1));
    p.ux = -1.0f + 0.02f * static_cast<float>(i);  // [-1, 0.98]
    sp.p(i) = p;
  }
  sp.np = 100;
  const auto h = core::momentum_histogram(sp, core::MomentumAxis::X, -0.5f,
                                          0.5f, 10);
  EXPECT_EQ(h.total(), 100);
  // 25 particles below -0.5 land in bin 0 (plus in-range share).
  EXPECT_GT(h.counts.front(), h.counts[4]);
  const std::string csv = h.to_csv();
  EXPECT_NE(csv.find("bin_center,count"), std::string::npos);
}

TEST(MomentumHistogram, MaxwellianIsSymmetricAndCentered) {
  core::SimulationConfig cfg;
  cfg.grid = core::Grid(6, 6, 6, 6, 6, 6, 0.1f);
  core::Simulation sim(cfg);
  const auto e = sim.add_species("e", -1.0f, 1.0f, 10000);
  sim.load_uniform_plasma(e, 16, 0.2f);
  const auto h = core::momentum_histogram(sim.species(e),
                                          core::MomentumAxis::Y, -1.0f,
                                          1.0f, 21);
  EXPECT_EQ(h.total(), sim.species(e).np);
  // Mode at the center bin; tails nearly symmetric.
  const std::size_t mid = 10;
  for (std::size_t b = 0; b < 21; ++b)
    EXPECT_LE(h.counts[b], h.counts[mid]) << b;
  const double left = static_cast<double>(
      h.counts[mid - 3] + h.counts[mid - 2] + h.counts[mid - 1]);
  const double right = static_cast<double>(
      h.counts[mid + 1] + h.counts[mid + 2] + h.counts[mid + 3]);
  EXPECT_NEAR(left / right, 1.0, 0.15);
}

TEST(FieldPlane, CsvLayout) {
  core::Grid g(3, 2, 2, 3, 2, 2, 0.1f);
  core::FieldArray f(g);
  f.ey(g.voxel(2, 1, 1)) = 7.5f;
  const std::string csv = core::field_plane_csv(f.ey, g, 1);
  EXPECT_NE(csv.find("ix,iy,value"), std::string::npos);
  EXPECT_NE(csv.find("2,1,7.5"), std::string::npos);
  // 3x2 interior points + header.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 7);
}

TEST(Diagnostics, EnergyHistoryOnRealRun) {
  core::SimulationConfig cfg;
  cfg.grid = core::Grid(6, 6, 6, 6, 6, 6, 0);
  cfg.grid.dt = core::Grid::courant_dt(1, 1, 1, 0.6f);
  core::Simulation sim(cfg);
  const auto e = sim.add_species("e", -1.0f, 1.0f, 4000);
  const auto i = sim.add_species("i", 1.0f, 100.0f, 4000);
  sim.load_uniform_plasma(e, 4, 0.2f);
  sim.load_uniform_plasma(i, 4, 0.02f);
  core::EnergyHistory hist;
  for (int s = 0; s < 5; ++s) {
    const auto en = sim.energies();
    hist.record(sim.step_count(), en.field, en.species);
    sim.run(4);
  }
  EXPECT_EQ(hist.size(), 5u);
  EXPECT_LT(hist.max_relative_drift(), 0.05);
}

TEST(Diagnostics, SimulationRecordsOnInterval) {
  core::SimulationConfig cfg;
  cfg.grid = core::Grid(5, 5, 5, 5, 5, 5, 0);
  cfg.grid.dt = core::Grid::courant_dt(1, 1, 1, 0.6f);
  cfg.energy_interval = 3;
  core::Simulation sim(cfg);
  const auto e = sim.add_species("e", -1.0f, 1.0f, 2000);
  sim.load_uniform_plasma(e, 3, 0.1f);
  sim.run(10);
  const auto& h = sim.energy_history();
  ASSERT_EQ(h.size(), 3u);  // steps 3, 6, 9
  EXPECT_EQ(h.step(0), 3);
  EXPECT_EQ(h.step(2), 9);
  EXPECT_LT(h.max_relative_drift(), 0.05);
}
