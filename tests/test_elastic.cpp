// Tests for vpic::elastic (src/elastic, docs/ELASTIC.md):
//
//   * DeltaPack codec: lossless round trips on particle-like payloads,
//     compression on slow-churn data, typed rejection of invalid input,
//   * incremental generation chains: full/delta cadence, bit-identical
//     resume from a delta generation (sync and async), the cumulative
//     ElasticCkptStats telemetry,
//   * generation-ring purge/sweep over chains: restore_latest falls back
//     across a corrupted mid-chain delta (and across a whole broken
//     chain) to the previous complete recovery point; prune_chains
//     retires chains wholesale, never orphaning a delta from its base,
//   * N→M restart: a 4-rank distributed checkpoint restored on 1, 2, 3
//     and 8 ranks via Redecomposer — per-voxel interior fields and
//     canonically-ordered particle state byte-equal to the same-rank
//     restore,
//   * tracer CSV sink: trajectory samples stream to the configured CSV
//     on checkpoint and at module destruction, without duplication.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/ckpt.hpp"
#include "core/core.hpp"
#include "core/tracer.hpp"
#include "elastic/elastic.hpp"
#include "minimpi/minimpi.hpp"

namespace core = vpic::core;
namespace ckpt = vpic::ckpt;
namespace elastic = vpic::elastic;
namespace mpi = vpic::mpi;
namespace pk = vpic::pk;
namespace fs = std::filesystem;
using pk::index_t;

namespace {

class PkEnv : public ::testing::Environment {
 public:
  // One kernel thread: the bit-identity suites compare raw bytes, and
  // with >1 OpenMP threads the float-atomic current deposits are
  // nondeterministic. The tune cache is pinned off: a stale
  // .vpic_tune.json can flip sort/push dispatch between the runs being
  // compared.
  void SetUp() override {
    setenv("VPIC_TUNE", "off", 1);
    pk::initialize(1);
  }
};
[[maybe_unused]] const auto* const env =
    ::testing::AddGlobalTestEnvironment(new PkEnv);

fs::path scratch(const std::string& tag) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / ("vpic_elastic_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

core::Simulation make_lpi_small(std::uint64_t seed = 42) {
  core::decks::LpiParams p;
  p.nx = 12;
  p.ny = 4;
  p.nz = 4;
  p.ppc = 2;
  p.sort_interval = 10;
  p.seed = seed;
  auto sim = core::decks::make_lpi(p);
  sim.config().energy_interval = 5;
  return sim;
}

std::vector<std::byte> view_bytes(const pk::View<float, 1>& v) {
  std::vector<std::byte> b(static_cast<std::size_t>(v.size()) *
                           sizeof(float));
  std::memcpy(b.data(), v.data(), b.size());
  return b;
}

void expect_bit_identical(core::Simulation& a, core::Simulation& b) {
  EXPECT_EQ(a.step_count(), b.step_count());
  const auto& fa = a.fields();
  const auto& fb = b.fields();
  EXPECT_EQ(view_bytes(fa.ex), view_bytes(fb.ex));
  EXPECT_EQ(view_bytes(fa.ez), view_bytes(fb.ez));
  EXPECT_EQ(view_bytes(fa.by), view_bytes(fb.by));
  EXPECT_EQ(view_bytes(fa.jx), view_bytes(fb.jx));
  ASSERT_EQ(a.num_species(), b.num_species());
  for (std::size_t s = 0; s < a.num_species(); ++s) {
    const auto& sa = a.species(s);
    const auto& sb = b.species(s);
    ASSERT_EQ(sa.np, sb.np) << "species " << sa.name;
    std::vector<core::Particle> pa(static_cast<std::size_t>(sa.np));
    std::vector<core::Particle> pb(static_cast<std::size_t>(sb.np));
    sa.p.export_aos(pa.data(), sa.np);
    sb.p.export_aos(pb.data(), sb.np);
    EXPECT_EQ(std::memcmp(pa.data(), pb.data(),
                          pa.size() * sizeof(core::Particle)),
              0)
        << "species " << sa.name << " particle bytes differ";
  }
}

/// Run `f`, expecting it to throw RestoreError; return the kind.
template <class F>
ckpt::RestoreErrorKind thrown_kind(F&& f) {
  try {
    f();
  } catch (const ckpt::RestoreError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "expected a ckpt::RestoreError";
  return ckpt::RestoreErrorKind::IoError;
}

}  // namespace

// ---- DeltaPack codec -------------------------------------------------

TEST(Codec, RoundTripIsLossless) {
  // Particle-shaped records: cell-local positions (small floats around
  // zero), a voxel id, momenta, a constant weight.
  std::vector<core::Particle> ps(777);
  std::uint64_t rng = 12345;
  auto next = [&rng] {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<float>(static_cast<std::int64_t>(rng >> 33)) /
           static_cast<float>(1u << 30);
  };
  for (std::size_t i = 0; i < ps.size(); ++i) {
    ps[i] = {next(), next(), next(), static_cast<std::int32_t>(i / 4),
             0.01f * next(), 0.01f * next(), 0.01f * next(), 1.0f};
  }
  const auto* raw = reinterpret_cast<const std::byte*>(ps.data());
  const std::size_t n = ps.size() * sizeof(core::Particle);
  const auto packed = elastic::deltapack_encode(raw, n, sizeof(core::Particle));
  ASSERT_FALSE(packed.empty());
  std::vector<std::byte> back(n);
  ASSERT_TRUE(elastic::deltapack_decode(packed.data(), packed.size(),
                                        back.data(), n,
                                        sizeof(core::Particle)));
  EXPECT_EQ(std::memcmp(back.data(), raw, n), 0);
}

TEST(Codec, CompressesSlowChurnParticles) {
  // Cold plasma at rest: momenta all zero, weights constant, voxel ids
  // ascending — the slow-churn deck shape the ≥1.5x bench bar targets.
  std::vector<core::Particle> ps(4096);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    ps[i] = {0.25f, -0.25f, 0.0f, static_cast<std::int32_t>(i / 8),
             0.0f, 0.0f, 0.0f, 1.0f};
  }
  const auto* raw = reinterpret_cast<const std::byte*>(ps.data());
  const std::size_t n = ps.size() * sizeof(core::Particle);
  const auto packed = elastic::deltapack_encode(raw, n, sizeof(core::Particle));
  ASSERT_FALSE(packed.empty());
  EXPECT_GE(static_cast<double>(n) / static_cast<double>(packed.size()), 1.5);
  std::vector<std::byte> back(n);
  ASSERT_TRUE(elastic::deltapack_decode(packed.data(), packed.size(),
                                        back.data(), n,
                                        sizeof(core::Particle)));
  EXPECT_EQ(std::memcmp(back.data(), raw, n), 0);
}

TEST(Codec, RejectsInvalidInput) {
  std::vector<std::byte> data(96, std::byte{7});
  // Element size not a multiple of 4: store raw.
  EXPECT_TRUE(elastic::deltapack_encode(data.data(), data.size(), 3).empty());
  // Payload not a whole number of records: store raw.
  EXPECT_TRUE(elastic::deltapack_encode(data.data(), 90, 32).empty());

  const auto packed = elastic::deltapack_encode(data.data(), data.size(), 32);
  ASSERT_FALSE(packed.empty());
  std::vector<std::byte> back(data.size());
  // Truncated stream: corruption, not success.
  EXPECT_FALSE(elastic::deltapack_decode(packed.data(), packed.size() - 1,
                                         back.data(), back.size(), 32));
  // Trailing garbage: the decoder must consume exactly the stream.
  auto padded = packed;
  padded.push_back(std::byte{0xAA});
  EXPECT_FALSE(elastic::deltapack_decode(padded.data(), padded.size(),
                                         back.data(), back.size(), 32));
  // The honest stream still decodes.
  EXPECT_TRUE(elastic::deltapack_decode(packed.data(), packed.size(),
                                        back.data(), back.size(), 32));
  EXPECT_EQ(back, data);
}

// ---- incremental chains ----------------------------------------------

TEST(Chain, IncrementalRingResumeIsBitIdentical) {
  const auto dir = scratch("inc_resume");
  const std::string base = (dir / "ck").string();

  auto ref = make_lpi_small();
  ref.run(40);

  auto victim = make_lpi_small();
  victim.config().checkpoint_every = 5;
  victim.config().checkpoint_path = base;
  victim.config().checkpoint_keep_last = 8;
  victim.config().checkpoint_incremental = true;
  victim.config().checkpoint_full_every = 3;
  victim.run(22);  // generations at steps 5, 10, 15, 20
  victim.config().checkpoint_every = 0;  // freeze the ring for comparison
  victim.run(18);
  expect_bit_identical(victim, ref);  // checkpointing never perturbs

  // g0 full, g1/g2 deltas, g3 full again.
  const auto stats = victim.elastic_ckpt_stats();
  EXPECT_EQ(stats.full_generations, 2);
  EXPECT_EQ(stats.delta_generations, 2);
  EXPECT_GT(stats.logical_bytes, stats.stored_raw_bytes);
  EXPECT_GE(stats.stored_raw_bytes, stats.stored_bytes);

  // The newest generation is a delta: restoring it walks the chain.
  ckpt::GenerationRing ring(base, 8);
  EXPECT_TRUE(elastic::ChainReader::is_chain_file(ring.path_for(2)));
  auto resumed = make_lpi_small();
  const std::string used = resumed.restore_latest(base);
  EXPECT_EQ(used, ring.path_for(3));
  EXPECT_EQ(resumed.step_count(), 20);
  resumed.run(20);
  expect_bit_identical(resumed, ref);

  // Restore from the mid-chain delta generation explicitly.
  auto from_delta = make_lpi_small();
  from_delta.restore(ring.path_for(2));
  EXPECT_EQ(from_delta.step_count(), 15);
  from_delta.run(25);
  expect_bit_identical(from_delta, ref);
}

TEST(Chain, AsyncIncrementalResume) {
  const auto dir = scratch("inc_async");
  const std::string base = (dir / "ck").string();

  auto ref = make_lpi_small();
  ref.run(30);

  auto victim = make_lpi_small();
  victim.config().checkpoint_every = 5;
  victim.config().checkpoint_path = base;
  victim.config().checkpoint_keep_last = 8;
  victim.config().checkpoint_async = true;
  victim.config().checkpoint_incremental = true;
  victim.config().checkpoint_full_every = 4;
  victim.run(22);
  EXPECT_NO_THROW(victim.checkpoint_wait());
  const auto stats = victim.elastic_ckpt_stats();
  EXPECT_EQ(stats.full_generations + stats.delta_generations, 4);
  EXPECT_GT(stats.delta_generations, 0);

  auto resumed = make_lpi_small();
  resumed.restore_latest(base);
  EXPECT_EQ(resumed.step_count(), 20);
  resumed.run(10);
  expect_bit_identical(resumed, ref);
}

TEST(Chain, PlainPathsStayPlainWithIncrementalOn) {
  // A non-ring path cannot anchor a delta chain: the flag must not turn
  // one-shot checkpoints into chain files.
  const auto dir = scratch("plain_path");
  const std::string path = (dir / "one.ckpt").string();
  auto sim = make_lpi_small();
  sim.config().checkpoint_incremental = true;
  sim.run(4);
  sim.checkpoint(path);
  EXPECT_FALSE(elastic::ChainReader::is_chain_file(path));
  auto resumed = make_lpi_small();
  resumed.restore(path);
  EXPECT_EQ(resumed.step_count(), 4);
}

// Build a 6-generation ring of two chains {g0,g1,g2} and {g3,g4,g5}
// (full_every=3). g5 is written without stepping after g4, so its delta
// stores nothing new and its manifest must reach back into g4 — the
// mid-chain dependency the fallback test corrupts.
namespace {

core::Simulation build_two_chains(const std::string& base) {
  auto sim = make_lpi_small();
  sim.config().checkpoint_incremental = true;
  sim.config().checkpoint_full_every = 3;
  ckpt::GenerationRing ring(base, 16);
  sim.run(4);
  sim.checkpoint(ring.path_for(0));  // full
  sim.run(2);
  sim.checkpoint(ring.path_for(1));  // delta
  sim.run(2);
  sim.checkpoint(ring.path_for(2));  // delta
  sim.run(2);
  sim.checkpoint(ring.path_for(3));  // full (chain rolls over)
  sim.run(2);
  sim.checkpoint(ring.path_for(4));  // delta, stores the step-12 state
  sim.checkpoint(ring.path_for(5));  // delta, nothing dirty: refs g4/g3
  return sim;
}

}  // namespace

TEST(Chain, FallbackAcrossCorruptMidChainDeltaAndBrokenChain) {
  const auto dir = scratch("fallback");
  const std::string base = (dir / "ck").string();
  build_two_chains(base);
  ckpt::GenerationRing ring(base, 16);

  // Sanity: the newest generation resolves through its siblings.
  {
    elastic::ChainReader r(ring.path_for(5));
    EXPECT_EQ(r.step(), 12);
    EXPECT_GE(r.sources().size(), 2u);
  }

  // Corrupt the mid-chain delta g4. g5 depended on it, so restore_latest
  // must fall back: g5 fails (its chain routes through g4), g4 fails,
  // and the chain's base g4... g3 — still intact — restores.
  ckpt::FaultInjector::flip_payload_bit(ring.path_for(4), 1);
  auto a = make_lpi_small();
  EXPECT_EQ(a.restore_latest(base), ring.path_for(3));
  EXPECT_EQ(a.step_count(), 10);

  // Break the whole newest chain by corrupting its base too: fallback
  // crosses to the previous complete chain and lands on its newest
  // delta g2.
  ckpt::FaultInjector::flip_payload_bit(ring.path_for(3), 1);
  auto b = make_lpi_small();
  EXPECT_EQ(b.restore_latest(base), ring.path_for(2));
  EXPECT_EQ(b.step_count(), 8);

  // With every chain broken the newest failure surfaces, typed.
  ckpt::FaultInjector::truncate_tail(ring.path_for(0), 64);
  ckpt::FaultInjector::flip_payload_bit(ring.path_for(1), 1);
  ckpt::FaultInjector::flip_payload_bit(ring.path_for(2), 1);
  auto c = make_lpi_small();
  EXPECT_EQ(thrown_kind([&] { c.restore_latest(base); }),
            ckpt::RestoreErrorKind::SectionCorrupt);
}

TEST(Chain, PruneRetiresWholeChains) {
  const auto dir = scratch("prune");
  const std::string base = (dir / "ck").string();
  build_two_chains(base);
  ckpt::GenerationRing ring(base, 16);
  ASSERT_EQ(ring.generations(),
            (std::vector<std::uint64_t>{0, 1, 2, 3, 4, 5}));

  // Keeping 2 chains keeps everything (there are exactly two).
  EXPECT_EQ(elastic::prune_chains(base, 2), 0u);
  EXPECT_EQ(ring.generations(),
            (std::vector<std::uint64_t>{0, 1, 2, 3, 4, 5}));

  // Keeping 1 chain removes the older chain *wholesale* — its deltas g1
  // and g2 go with their base g0, never orphaned.
  EXPECT_EQ(elastic::prune_chains(base, 1), 3u);
  EXPECT_EQ(ring.generations(), (std::vector<std::uint64_t>{3, 4, 5}));

  // The surviving chain still restores from its newest delta.
  auto resumed = make_lpi_small();
  EXPECT_EQ(resumed.restore_latest(base), ring.path_for(5));
  EXPECT_EQ(resumed.step_count(), 12);
}

TEST(Chain, PeriodicRingPrunesByChainNotByFile) {
  // keep_last=2 under incremental mode means two *chains*; with
  // full_every=2 and 8 periodic generations the ring must never hold a
  // delta without its base.
  const auto dir = scratch("ring_chain_prune");
  const std::string base = (dir / "ck").string();
  auto sim = make_lpi_small();
  sim.config().checkpoint_every = 2;
  sim.config().checkpoint_path = base;
  sim.config().checkpoint_keep_last = 2;
  sim.config().checkpoint_incremental = true;
  sim.config().checkpoint_full_every = 2;
  sim.run(16);  // generations 0..7, chains {0,1},{2,3},{4,5},{6,7}
  ckpt::GenerationRing ring(base, 2);
  EXPECT_EQ(ring.generations(), (std::vector<std::uint64_t>{4, 5, 6, 7}));

  auto resumed = make_lpi_small();
  EXPECT_EQ(resumed.restore_latest(base), ring.path_for(7));
  EXPECT_EQ(resumed.step_count(), 16);
}

// ---- N→M restart ------------------------------------------------------

namespace {

core::DomainConfig nm_config() {
  core::DomainConfig cfg;
  cfg.nx = 4;
  cfg.ny = 4;
  cfg.nz = 24;  // divisible by every tested rank count: 1, 2, 3, 4, 8
  cfg.lx = 4;
  cfg.ly = 4;
  cfg.lz = 24;
  cfg.seed = 7;
  cfg.overlap = false;  // fenced schedule: bit-deterministic reference
  return cfg;
}

/// Canonical global state of a distributed run, assembled on the caller
/// side from per-rank dumps (minimpi ranks are threads, so the dump
/// vector is shared by reference).
struct GlobalState {
  std::vector<float> fields;            // 9 views x global interior, z-major
  std::vector<core::Particle> parts;    // stable-sorted by global voxel
  double energy = 0;

  bool operator==(const GlobalState& o) const {
    return fields == o.fields && parts.size() == o.parts.size() &&
           std::memcmp(parts.data(), o.parts.data(),
                       parts.size() * sizeof(core::Particle)) == 0;
  }
};

struct RankDump {
  int z_offset = 0;
  int nz_local = 0;
  std::vector<std::vector<float>> interior;  // per view, local interior
  std::vector<core::Particle> parts;         // voxel rewritten to global id
  double energy = 0;
};

RankDump dump_rank(core::DistributedSimulation& sim,
                   const core::DomainConfig& cfg) {
  RankDump d;
  const core::Grid& g = sim.local_grid();
  d.z_offset = sim.z_offset();
  d.nz_local = g.nz;
  const auto& f = sim.fields();
  const pk::View<float, 1>* views[] = {&f.ex, &f.ey, &f.ez, &f.bx, &f.by,
                                       &f.bz, &f.jx, &f.jy, &f.jz};
  for (const auto* v : views) {
    std::vector<float> vals;
    vals.reserve(static_cast<std::size_t>(g.nx) * g.ny * g.nz);
    for (int iz = 1; iz <= g.nz; ++iz)
      for (int iy = 1; iy <= g.ny; ++iy)
        for (int ix = 1; ix <= g.nx; ++ix)
          vals.push_back((*v)(g.voxel(ix, iy, iz)));
    d.interior.push_back(std::move(vals));
  }
  const auto& sp = sim.species(0);
  d.parts.resize(static_cast<std::size_t>(sp.np));
  sp.p.export_aos(d.parts.data(), sp.np);
  for (auto& p : d.parts) {
    int ix, iy, iz;
    g.cell_of(p.i, ix, iy, iz);
    // Global canonical interior cell id, independent of the slab shape.
    p.i = static_cast<std::int32_t>(
        ((d.z_offset + iz - 1) * cfg.ny + (iy - 1)) * cfg.nx + (ix - 1));
  }
  d.energy = sim.energies().total();
  return d;
}

GlobalState assemble(std::vector<RankDump> dumps,
                     const core::DomainConfig& cfg) {
  GlobalState gs;
  const std::size_t plane = static_cast<std::size_t>(cfg.nx) * cfg.ny;
  for (std::size_t v = 0; v < 9; ++v) {
    std::vector<float> global(plane * static_cast<std::size_t>(cfg.nz));
    for (const auto& d : dumps)
      std::copy(d.interior[v].begin(), d.interior[v].end(),
                global.begin() + plane * static_cast<std::size_t>(d.z_offset));
    gs.fields.insert(gs.fields.end(), global.begin(), global.end());
  }
  for (const auto& d : dumps)
    gs.parts.insert(gs.parts.end(), d.parts.begin(), d.parts.end());
  // Canonical particle order: stable sort by global voxel. Within a
  // voxel the (rank, record) order is preserved, and every decomposition
  // assigns a voxel's particles to exactly one rank in the same record
  // order — so equal decompositions yield byte-equal sequences.
  std::stable_sort(gs.parts.begin(), gs.parts.end(),
                   [](const core::Particle& a, const core::Particle& b) {
                     return a.i < b.i;
                   });
  gs.energy = dumps.empty() ? 0 : dumps.front().energy;
  return gs;
}

GlobalState restore_on(int nranks, const std::string& ckdir,
                       const core::DomainConfig& cfg, bool rescaled,
                       std::string* used_dir = nullptr) {
  std::vector<RankDump> dumps(static_cast<std::size_t>(nranks));
  std::string used;
  mpi::run(nranks, [&](mpi::Comm& comm) {
    core::DistributedSimulation sim(cfg, comm);
    sim.add_species("e", -1.0f, 1.0f, 8000);
    if (rescaled) {
      const std::string u = sim.restore_rescaled(ckdir);
      if (comm.rank() == 0) used = u;
    } else {
      sim.restore(ckdir);
    }
    dumps[static_cast<std::size_t>(comm.rank())] = dump_rank(sim, cfg);
  });
  if (used_dir) *used_dir = used;
  return assemble(std::move(dumps), cfg);
}

}  // namespace

TEST(NtoM, FourRankCheckpointRestoresBitIdenticalOnEveryShape) {
  const auto dir = scratch("nm");
  const std::string ckdir = (dir / "set").string();
  const auto cfg = nm_config();

  // Write the 4-rank checkpoint after a few steps of real dynamics.
  mpi::run(4, [&](mpi::Comm& comm) {
    core::DistributedSimulation sim(cfg, comm);
    sim.add_species("e", -1.0f, 1.0f, 8000);
    sim.load_uniform_plasma(0, 2, 0.2f, 0.0f, 0.0f, 0.1f);
    sim.run(6);
    sim.checkpoint(ckdir);
  });

  // Reference: the same-rank restore's canonical global state.
  const GlobalState ref = restore_on(4, ckdir, cfg, /*rescaled=*/false);
  ASSERT_EQ(ref.parts.size(),
            static_cast<std::size_t>(cfg.nx) * cfg.ny * cfg.nz * 2);

  // Same shape through the rescale entry point: no rewrite happens.
  std::string used;
  const GlobalState same =
      restore_on(4, ckdir, cfg, /*rescaled=*/true, &used);
  EXPECT_EQ(used, ckdir);
  EXPECT_TRUE(same == ref);

  for (const int m : {1, 2, 3, 8}) {
    SCOPED_TRACE("restore on " + std::to_string(m) + " ranks");
    std::string scaled;
    const GlobalState got =
        restore_on(m, ckdir, cfg, /*rescaled=*/true, &scaled);
    EXPECT_EQ(scaled, ckdir + ".rescale" + std::to_string(m));
    EXPECT_TRUE(got == ref) << "global state diverged at m=" << m;
    // Bit-identical state implies matching energies up to the reduction
    // grouping across rank counts.
    EXPECT_NEAR(got.energy, ref.energy,
                1e-9 * std::max(1.0, std::abs(ref.energy)));
  }
}

TEST(NtoM, RescaleContinuesSteppingAfterRestore) {
  // The rescaled restore is a real simulation state, not just matching
  // bytes: an 8-rank continuation from the 4-rank checkpoint must step
  // and conserve the global particle count.
  const auto dir = scratch("nm_continue");
  const std::string ckdir = (dir / "set").string();
  const auto cfg = nm_config();
  std::int64_t np_before = 0;

  mpi::run(4, [&](mpi::Comm& comm) {
    core::DistributedSimulation sim(cfg, comm);
    sim.add_species("e", -1.0f, 1.0f, 8000);
    sim.load_uniform_plasma(0, 2, 0.2f, 0.0f, 0.0f, 0.1f);
    sim.run(4);
    sim.checkpoint(ckdir);
    // global_np is an allreduce — every rank must call it.
    const std::int64_t np = sim.global_np(0);
    if (comm.rank() == 0) np_before = np;
  });

  mpi::run(8, [&](mpi::Comm& comm) {
    core::DistributedSimulation sim(cfg, comm);
    sim.add_species("e", -1.0f, 1.0f, 8000);
    sim.restore_rescaled(ckdir);
    EXPECT_EQ(sim.step_count(), 4);
    sim.run(6);
    EXPECT_EQ(sim.global_np(0), np_before);  // collective: all ranks call
  });
}

TEST(NtoM, MissingDomainSectionIsTyped) {
  // A manifest without "manifest.domain" (pre-elastic writer) cannot be
  // redecomposed: the failure must be a typed collective error on every
  // rank, not a crash.
  const auto dir = scratch("nm_nodomain");
  const std::string ckdir = (dir / "set").string();
  const auto cfg = nm_config();
  mpi::run(2, [&](mpi::Comm& comm) {
    core::DistributedSimulation sim(cfg, comm);
    sim.add_species("e", -1.0f, 1.0f, 8000);
    sim.load_uniform_plasma(0, 2, 0.2f);
    sim.checkpoint(ckdir);
    comm.barrier();
    if (comm.rank() == 0) {
      // Rewrite the manifest without the domain section.
      ckpt::FileReader m(ckdir + "/manifest.ckpt");
      ckpt::FileWriter w;
      w.add_pod("manifest.nranks", m.pod<std::int64_t>("manifest.nranks"));
      w.commit(ckdir + "/manifest.ckpt", m.fingerprint(), m.step());
    }
    comm.barrier();
  });
  mpi::run(1, [&](mpi::Comm& comm) {
    core::DistributedSimulation sim(nm_config(), comm);
    sim.add_species("e", -1.0f, 1.0f, 8000);
    EXPECT_EQ(thrown_kind([&] { sim.restore_rescaled(ckdir); }),
              ckpt::RestoreErrorKind::ManifestMismatch);
  });
}

// ---- tracer CSV sink --------------------------------------------------

namespace {

std::size_t count_lines(const fs::path& p) {
  std::ifstream in(p);
  std::size_t n = 0;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) ++n;
  return n;
}

}  // namespace

TEST(TracerCsv, StreamsOnCheckpointAndDestruction) {
  const auto dir = scratch("tracer_csv");
  const fs::path csv = dir / "traj.csv";
  const std::string ck = (dir / "mid.ckpt").string();
  std::uint64_t total = 0;
  {
    auto sim = make_lpi_small();
    sim.config().tracer_csv_path = csv.string();
    core::TracerParams tp;
    tp.stride = 16;
    tp.max_tracers = 4;
    tp.sample_interval = 1;
    auto& tracer = sim.add_module<core::TracerModule>(tp);
    sim.run(5);
    sim.checkpoint(ck);  // flush #1, via the on_checkpoint hook
    EXPECT_EQ(tracer.samples_flushed(), tracer.samples_recorded());
    const std::size_t after_ckpt = count_lines(csv);
    EXPECT_EQ(after_ckpt,
              1 + static_cast<std::size_t>(tracer.samples_recorded()));
    sim.run(5);
    total = tracer.samples_recorded();
    EXPECT_GT(total, tracer.samples_flushed());
  }  // destructor flush #2: the post-checkpoint samples, no duplicates
  EXPECT_EQ(count_lines(csv), 1 + static_cast<std::size_t>(total));

  std::ifstream in(csv);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "step,id,voxel,dx,dy,dz,ux,uy,uz");

  // A restored module resumes the watermark at the checkpointed count:
  // replaying the pre-checkpoint samples would duplicate CSV rows.
  auto resumed = make_lpi_small();
  resumed.config().tracer_csv_path = csv.string();
  core::TracerParams tp;
  tp.stride = 16;
  tp.max_tracers = 4;
  tp.sample_interval = 1;
  auto& tracer = resumed.add_module<core::TracerModule>(tp);
  resumed.restore(ck);
  EXPECT_EQ(tracer.samples_flushed(), tracer.samples_recorded());
}
