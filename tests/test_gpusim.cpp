// Tests for the analytic GPU/CPU performance model: device registry, cache
// model, coalescing analyzer, kernel timing bounds, push model, comm model
// and the scaling engines. These validate the *mechanisms* (capacity
// effects, coalescing counts, contention serialization); the paper-shape
// validations live in the benchmark harnesses.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "gpusim/gpusim.hpp"

using namespace vpic::gpusim;

TEST(DeviceRegistry, Table1Complete) {
  EXPECT_EQ(gpu_names().size(), 6u);   // V100 A100 H100 MI100 MI250 MI300A
  EXPECT_EQ(cpu_names().size(), 6u);   // Table 1 CPU block
  const auto& a100 = device("A100");
  EXPECT_EQ(a100.core_count, 6912);
  EXPECT_DOUBLE_EQ(a100.llc_mb, 40);
  EXPECT_DOUBLE_EQ(a100.dram_bw_gbs, 1682);
  EXPECT_EQ(a100.warp_size, 32);
  const auto& mi250 = device("MI250");
  EXPECT_EQ(mi250.warp_size, 64);
  EXPECT_THROW(device("RTX4090"), std::invalid_argument);
}

TEST(DeviceRegistry, PaperBandwidthOrdering) {
  // H100 > MI300A > MI250 > A100 > MI100 > V100 in Table 1.
  EXPECT_GT(device("H100").dram_bw_gbs, device("MI300A").dram_bw_gbs);
  EXPECT_GT(device("MI300A").dram_bw_gbs, device("MI250").dram_bw_gbs);
  EXPECT_GT(device("A100").dram_bw_gbs, device("MI100").dram_bw_gbs);
}

// ----------------------------------------------------------------------
// Cache model
// ----------------------------------------------------------------------

TEST(CacheModel, ColdMissesThenHits) {
  CacheModel c(64 * 1024, 64, 8);  // 1024 lines
  for (std::uint64_t l = 0; l < 100; ++l) EXPECT_FALSE(c.access(l));
  for (std::uint64_t l = 0; l < 100; ++l) EXPECT_TRUE(c.access(l));
  EXPECT_EQ(c.misses(), 100u);
  EXPECT_EQ(c.hits(), 100u);
  EXPECT_DOUBLE_EQ(c.hit_rate(), 0.5);
}

TEST(CacheModel, CapacityEviction) {
  CacheModel c(64 * 64, 64, 4);  // 64 lines total
  // Touch 128 distinct lines twice: second pass must still miss (LRU, the
  // working set is 2x capacity and the scan evicts everything).
  for (int pass = 0; pass < 2; ++pass)
    for (std::uint64_t l = 0; l < 128; ++l) c.access(l);
  EXPECT_EQ(c.hits(), 0u);
}

TEST(CacheModel, WorkingSetSmallerThanCapacityAllHits) {
  CacheModel c(1024 * 1024, 64, 16);
  for (int pass = 0; pass < 10; ++pass)
    for (std::uint64_t l = 0; l < 1000; ++l) c.access(l * 7919 % 4096);
  // After the cold pass everything fits: hit rate ~ 9/10.
  EXPECT_GT(c.hit_rate(), 0.8);
}

TEST(CacheModel, AccessRangeSpansLines) {
  CacheModel c(1024 * 1024, 64, 16);
  EXPECT_EQ(c.access_range(60, 8), 2);   // straddles a line boundary
  EXPECT_EQ(c.access_range(60, 8), 0);   // now cached
  EXPECT_EQ(c.access_range(128, 64), 1);
}

// ----------------------------------------------------------------------
// Coalescing analyzer
// ----------------------------------------------------------------------

namespace {
const DeviceSpec& nv() { return device("A100"); }
}  // namespace

TEST(Coalescing, ContiguousIsMinimal) {
  std::vector<std::uint32_t> idx(1024);
  std::iota(idx.begin(), idx.end(), 0u);
  const auto s = analyze_stream(idx.data(), idx.size(), 8, nv(), nullptr,
                                false);
  // 32 threads x 8B = 256B = 2 lines of 128B per warp.
  EXPECT_EQ(s.warps, 32u);
  EXPECT_EQ(s.transactions, 64u);
  EXPECT_NEAR(s.coalescing_efficiency(32, 128, 8), 1.0, 1e-9);
}

TEST(Coalescing, AllSameKeyIsOneLineBroadcast) {
  std::vector<std::uint32_t> idx(1024, 7u);
  const auto s = analyze_stream(idx.data(), idx.size(), 8, nv(), nullptr,
                                false);
  EXPECT_EQ(s.transactions, s.warps);  // one line per warp
}

TEST(Coalescing, RandomIsWorstCase) {
  std::vector<std::uint32_t> idx(4096);
  std::uint64_t st = 1;
  for (auto& v : idx) {
    st = st * 6364136223846793005ull + 1442695040888963407ull;
    v = static_cast<std::uint32_t>((st >> 33) % 1000000);
  }
  const auto s = analyze_stream(idx.data(), idx.size(), 8, nv(), nullptr,
                                false);
  // Nearly every thread in a warp touches its own line.
  EXPECT_GT(s.lines_per_warp(), 30.0);
}

TEST(Coalescing, AtomicConflictsCounted) {
  // Warp of 32 identical addresses: 31 conflicts per warp.
  std::vector<std::uint32_t> idx(64, 3u);
  const auto s = analyze_stream(idx.data(), idx.size(), 8, nv(), nullptr,
                                /*atomics=*/true);
  EXPECT_EQ(s.atomic_conflicts, 62u);
  EXPECT_GT(s.window_conflicts, 0u);
}

TEST(Coalescing, NoConflictsForDistinctAddresses) {
  std::vector<std::uint32_t> idx(256);
  std::iota(idx.begin(), idx.end(), 0u);
  const auto s = analyze_stream(idx.data(), idx.size(), 8, nv(), nullptr,
                                true);
  EXPECT_EQ(s.atomic_conflicts, 0u);
  EXPECT_EQ(s.window_conflicts, 0u);
}

TEST(Coalescing, MultiLineRecordsSpan) {
  // Scattered 72-byte records at 80-byte stride: many straddle two lines,
  // so wide records cost more transactions than 8-byte ones at the same
  // addresses.
  std::vector<std::uint32_t> idx(32);
  for (int i = 0; i < 32; ++i) idx[static_cast<std::size_t>(i)] =
      static_cast<std::uint32_t>(i * 13);
  const auto wide = analyze_stream(idx.data(), idx.size(), 80, nv(), nullptr,
                                   false, 0, 1024, 72);
  const auto narrow = analyze_stream(idx.data(), idx.size(), 80, nv(),
                                     nullptr, false, 0, 1024, 8);
  EXPECT_GT(wide.transactions, narrow.transactions);
}

TEST(Coalescing, CacheSplitsTraffic) {
  std::vector<std::uint32_t> idx(1 << 14);
  for (std::size_t i = 0; i < idx.size(); ++i)
    idx[i] = static_cast<std::uint32_t>(i % 256);  // tiny working set
  CacheModel cache(1 << 20, 128, 16);
  const auto s = analyze_stream(idx.data(), idx.size(), 8, nv(), &cache,
                                false);
  EXPECT_GT(s.llc_lines, s.dram_lines * 10);  // almost everything hits
  EXPECT_EQ(s.llc_lines + s.dram_lines, s.transactions);
}

TEST(Coalescing, StreamingHelper) {
  const auto s = analyze_streaming(1000, 8, nv());
  EXPECT_EQ(s.transactions, (1000 * 8 + 127) / 128);
  EXPECT_EQ(s.dram_lines, s.transactions);
}

// ----------------------------------------------------------------------
// Kernel timing
// ----------------------------------------------------------------------

TEST(KernelModel, BandwidthBoundKernel) {
  KernelProfile p;
  p.dram_bytes = 1'000'000'000;  // 1 GB
  p.logical_bytes = p.dram_bytes;
  p.transactions = p.dram_bytes / 128;
  const auto t = time_kernel(device("A100"), p);
  EXPECT_EQ(t.bound, Bound::Dram);
  // 1 GB at 1682 GB/s.
  EXPECT_NEAR(t.seconds, 1.0 / 1682.0, 1e-5);
  EXPECT_NEAR(t.bw_gbs, 1682, 20);
}

TEST(KernelModel, ComputeBoundKernel) {
  KernelProfile p;
  p.flops = 1e13;
  p.dram_bytes = 1000;
  p.logical_bytes = 1000;
  const auto t = time_kernel(device("A100"), p);
  EXPECT_EQ(t.bound, Bound::Compute);
  EXPECT_NEAR(t.gflops, 19500, 100);
}

TEST(KernelModel, AtomicBoundKernel) {
  KernelProfile p;
  p.atomic_serial = 100'000'000;
  p.dram_bytes = 1000;
  p.logical_bytes = 1000;
  const auto t = time_kernel(device("MI250"), p);
  EXPECT_EQ(t.bound, Bound::Atomic);
}

TEST(KernelModel, LatencyBoundKernel) {
  // A device with a tiny in-flight window becomes latency-bound on the
  // same traffic a V100 serves at full bandwidth.
  KernelProfile p;
  p.dram_bytes = 1'000'000'000;
  p.logical_bytes = p.dram_bytes;
  DeviceSpec narrow = device("V100");
  narrow.max_outstanding = 4;
  EXPECT_EQ(time_kernel(narrow, p).bound, Bound::Latency);
  EXPECT_EQ(time_kernel(device("V100"), p).bound, Bound::Dram);
}

TEST(KernelModel, RooflineAttainable) {
  const auto& h100 = device("H100");
  EXPECT_NEAR(roofline_attainable_gflops(h100, 0.1), 371.3, 1.0);
  EXPECT_NEAR(roofline_attainable_gflops(h100, 1000), 66900, 1.0);
}

// ----------------------------------------------------------------------
// Push model
// ----------------------------------------------------------------------

TEST(PushModel, SortedBeatsRandomOnGpu) {
  // Grid far larger than the LLC: random order thrashes, ascending order
  // streams through each grid line once.
  const std::uint64_t n = 400'000, cells = 2'000'000;
  auto rnd = random_cell_sequence(n, cells, 1);
  auto sorted = rnd;
  std::sort(sorted.begin(), sorted.end());
  const auto t_rnd = model_push(device("A100"), rnd, cells);
  const auto t_sorted = model_push(device("A100"), sorted, cells);
  EXPECT_GT(t_sorted.pushes_per_ns / t_rnd.pushes_per_ns, 1.2);
}

TEST(PushModel, CacheFitGridIsFaster) {
  const std::uint64_t n = 400'000;
  // A100: 40 MB LLC, 448 B/point -> ~89k points fit.
  auto small = random_cell_sequence(n, 20'000, 2);
  auto large = random_cell_sequence(n, 2'000'000, 2);
  const auto t_small = model_push(device("A100"), small, 20'000);
  const auto t_large = model_push(device("A100"), large, 2'000'000);
  EXPECT_GT(t_small.pushes_per_ns, 1.5 * t_large.pushes_per_ns);
}

TEST(PushModel, DeterministicSequence) {
  auto a = random_cell_sequence(1000, 100, 7);
  auto b = random_cell_sequence(1000, 100, 7);
  EXPECT_EQ(a, b);
  auto c = random_cell_sequence(1000, 100, 8);
  EXPECT_NE(a, c);
  for (auto v : a) EXPECT_LT(v, 100u);
}

// ----------------------------------------------------------------------
// Comm model & scaling
// ----------------------------------------------------------------------

TEST(CommModel, SingleRankFree) {
  const auto e = model_comm(device("V100"), 1e6, 1e7, 1);
  EXPECT_EQ(e.seconds, 0.0);
}

TEST(CommModel, MoreRanksSmallerMessages) {
  const auto big = model_comm(device("V100"), 1e6, 1e7, 8);
  const auto small = model_comm(device("V100"), 1e5, 1e6, 80);
  EXPECT_GT(big.halo_bytes, small.halo_bytes);
  EXPECT_GT(big.particle_bytes, small.particle_bytes);
  // Latency floor remains.
  EXPECT_GT(small.seconds, 0.0);
}

TEST(Scaling, GridSweepHasInteriorPeak) {
  std::vector<std::uint64_t> grids;
  for (std::uint64_t g = 2'000; g <= 2'000'000; g *= 2) grids.push_back(g);
  const auto sweep = grid_size_sweep(device("A100"), 500'000, grids, {}, 7,
                                     500'000);
  ASSERT_EQ(sweep.size(), grids.size());
  std::size_t peak = 0;
  for (std::size_t i = 1; i < sweep.size(); ++i)
    if (sweep[i].pushes_per_ns > sweep[peak].pushes_per_ns) peak = i;
  EXPECT_GT(peak, 0u) << "peak at the smallest grid";
  EXPECT_LT(peak, sweep.size() - 1) << "peak at the largest grid";
  // The peak sits near the cache-capacity boundary; with the 2x-coarse
  // sweep the located peak can round up to ~2.5x capacity, so bound at 3x.
  EXPECT_LE(sweep[peak].grid_mb, 3.0 * device("A100").llc_mb);
}

TEST(Scaling, StrongScalingSuperlinearRegion) {
  // Total grid sized so that per-GPU grid fits the V100 LLC only at >= 8
  // ranks: superlinear speedup must appear.
  const std::uint64_t grid = 8 * 13'000;  // ~8x the V100 cache-fit size
  const auto pts = strong_scaling(device("V100"), grid, 10'000'000,
                                  {1, 2, 4, 8, 16, 32}, {}, {}, 7, 500'000);
  ASSERT_EQ(pts.size(), 6u);
  EXPECT_DOUBLE_EQ(pts[0].speedup, 1.0);
  bool superlinear = false;
  for (const auto& p : pts)
    if (p.speedup > 1.05 * p.ideal_speedup) superlinear = true;
  EXPECT_TRUE(superlinear);
  // Communication grows in share as ranks increase.
  EXPECT_GT(pts.back().comm_seconds / pts.back().step_seconds,
            pts[1].comm_seconds / pts[1].step_seconds);
}

TEST(Scaling, SpeedupMonotoneUntilCommWall) {
  const auto pts = strong_scaling(device("A100"), 64 * 85'000, 50'000'000,
                                  {8, 16, 32, 64}, {}, {}, 7, 500'000);
  for (std::size_t i = 1; i < pts.size(); ++i)
    EXPECT_GT(pts[i].speedup, pts[i - 1].speedup);
}

TEST(Scaling, BatchThroughputHasInteriorOptimum) {
  // Per-sim grid ~8x one GPU's cache: ganging a few GPUs per sim must beat
  // both naive batching and whole-pool gangs (paper Section 6).
  const auto& dev = device("A100");
  const auto grid = static_cast<std::uint64_t>(8.0 * dev.llc_bytes() / 800.0);
  const auto pts = batch_throughput(dev, grid, grid * 16, /*total_gpus=*/32,
                                    /*steps=*/100, {}, {}, 7, 300'000);
  ASSERT_GE(pts.size(), 4u);
  std::size_t best = 0;
  for (std::size_t i = 1; i < pts.size(); ++i)
    if (pts[i].sims_per_second > pts[best].sims_per_second) best = i;
  EXPECT_GT(best, 0u) << "naive batching should lose to small gangs";
  EXPECT_LT(best, pts.size() - 1) << "whole-pool gangs waste concurrency";
  // Concurrency bookkeeping.
  for (const auto& p : pts)
    EXPECT_EQ(p.gang_size * p.concurrent_gangs, 32);
}

TEST(GsShape, TiledBeatsStridedOnNvidiaUnderCacheScaledReplay) {
  // The Fig. 6b headline: with the paper's working-set:cache ratio, the
  // tiled-strided order outperforms strided on NVIDIA parts.
  // (Uses the sort library end-to-end; modest n keeps it fast.)
  const std::uint64_t n = 1 << 20;
  const std::uint64_t unique = n / 100;  // 10485-key table (~84 KB)
  auto dev = device("A100");
  dev.llc_mb = dev.llc_mb * static_cast<double>(n) / 1e9;  // ~42 KB

  auto cells = random_cell_sequence(n, unique, 3);  // any multiset works
  std::sort(cells.begin(), cells.end());            // standard order
  // Build strided and tiled orders from per-key occurrence counting (the
  // sorted array makes occurrence indices trivial).
  std::vector<std::uint32_t> strided(cells), tiled(cells);
  {
    // strided: round-robin over keys.
    std::vector<std::vector<std::uint32_t>> buckets(unique);
    for (auto c : cells) buckets[c].push_back(c);
    std::size_t pos = 0;
    for (std::size_t round = 0; pos < cells.size(); ++round)
      for (std::size_t k = 0; k < unique; ++k)
        if (round < buckets[k].size()) strided[pos++] = buckets[k][round];
    // tiled: tiles of T keys, repeating within chunks.
    const std::size_t tile = 2048;  // > atomic window, < LLC/2
    pos = 0;
    for (std::size_t chunk = 0; chunk * tile < unique; ++chunk) {
      const std::size_t k0 = chunk * tile;
      const std::size_t k1 = std::min<std::size_t>(unique, k0 + tile);
      for (std::size_t round = 0;; ++round) {
        bool any = false;
        for (std::size_t k = k0; k < k1; ++k)
          if (round < buckets[k].size()) {
            tiled[pos++] = buckets[k][round];
            any = true;
          }
        if (!any) break;
      }
    }
  }

  auto time_of = [&](const std::vector<std::uint32_t>& order) {
    CacheModel cache(static_cast<std::uint64_t>(dev.llc_bytes()),
                     dev.line_bytes, 16);
    const auto g = analyze_stream(order.data(), order.size(), 8, dev, &cache,
                                  false);
    const auto s = analyze_stream(order.data(), order.size(), 8, dev, &cache,
                                  true);
    KernelProfile p;
    p.dram_bytes = (g.dram_lines + 2 * s.dram_lines) * 128;
    p.llc_bytes = (g.llc_lines + 2 * s.llc_lines) * 128;
    p.warp_rounds = g.warps + s.warps;
    p.atomic_serial = s.atomic_conflicts + s.window_conflicts;
    p.logical_bytes = order.size() * 24;
    return time_kernel(dev, p).seconds;
  };
  EXPECT_LT(time_of(tiled), time_of(strided));
}
