// Tests for the in-process message-passing substrate: nonblocking p2p with
// tag matching, probe, collectives, Cartesian topology.
#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <numeric>
#include <span>
#include <stdexcept>
#include <thread>
#include <vector>

#include "minimpi/minimpi.hpp"

namespace mpi = vpic::mpi;

TEST(MiniMpi, SingleRankRuns) {
  mpi::run(1, [](mpi::Comm& c) {
    EXPECT_EQ(c.rank(), 0);
    EXPECT_EQ(c.size(), 1);
    c.barrier();
  });
}

TEST(MiniMpi, PingPong) {
  mpi::run(2, [](mpi::Comm& c) {
    if (c.rank() == 0) {
      const int msg = 42;
      c.isend(1, 7, msg).wait();
      int reply = 0;
      c.irecv(1, 8, reply).wait();
      EXPECT_EQ(reply, 43);
    } else {
      int got = 0;
      c.irecv(0, 7, got).wait();
      EXPECT_EQ(got, 42);
      const int reply = got + 1;
      c.isend(0, 8, reply).wait();
    }
  });
}

TEST(MiniMpi, VectorPayload) {
  mpi::run(2, [](mpi::Comm& c) {
    if (c.rank() == 0) {
      std::vector<double> data(100);
      std::iota(data.begin(), data.end(), 0.0);
      c.isend(1, 0, std::span<const double>(data)).wait();
    } else {
      std::vector<double> buf(100, -1.0);
      c.irecv(0, 0, std::span<double>(buf)).wait();
      for (int i = 0; i < 100; ++i) EXPECT_EQ(buf[i], i);
    }
  });
}

TEST(MiniMpi, TagMatching) {
  mpi::run(2, [](mpi::Comm& c) {
    if (c.rank() == 0) {
      c.isend(1, /*tag=*/2, 222);
      c.isend(1, /*tag=*/1, 111);
    } else {
      int a = 0, b = 0;
      // Receive in the opposite order of sending: tags must match.
      c.irecv(0, 1, a).wait();
      c.irecv(0, 2, b).wait();
      EXPECT_EQ(a, 111);
      EXPECT_EQ(b, 222);
    }
  });
}

TEST(MiniMpi, MessageOrderPreservedPerTag) {
  mpi::run(2, [](mpi::Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 10; ++i) c.isend(1, 0, i);
    } else {
      for (int i = 0; i < 10; ++i) {
        int got = -1;
        c.irecv(0, 0, got).wait();
        EXPECT_EQ(got, i);
      }
    }
  });
}

TEST(MiniMpi, ProbeReportsSize) {
  mpi::run(2, [](mpi::Comm& c) {
    if (c.rank() == 0) {
      std::vector<int> data(17, 5);
      c.isend(1, 3, std::span<const int>(data));
    } else {
      const std::size_t bytes = c.probe_bytes(0, 3);
      EXPECT_EQ(bytes, 17 * sizeof(int));
      std::vector<int> buf(17);
      c.irecv(0, 3, std::span<int>(buf)).wait();
      EXPECT_EQ(buf[16], 5);
    }
  });
}

TEST(MiniMpi, TestNonBlocking) {
  mpi::run(2, [](mpi::Comm& c) {
    if (c.rank() == 1) {
      int got = 0;
      auto req = c.irecv(0, 0, got);
      // Nothing sent yet is allowed; eventually test() must succeed.
      c.barrier();  // rank 0 sends before the barrier
      while (!req.test()) {
      }
      EXPECT_EQ(got, 9);
    } else {
      c.isend(1, 0, 9);
      c.barrier();
    }
  });
}

TEST(MiniMpi, OversizedMessageThrows) {
  EXPECT_THROW(mpi::run(2,
                        [](mpi::Comm& c) {
                          if (c.rank() == 0) {
                            std::vector<int> big(10, 1);
                            c.isend(1, 0, std::span<const int>(big));
                          } else {
                            int small = 0;
                            c.irecv(0, 0, small).wait();
                          }
                        }),
               std::length_error);
}

TEST(MiniMpi, AllreduceSum) {
  for (int nranks : {1, 2, 4, 7}) {
    mpi::run(nranks, [nranks](mpi::Comm& c) {
      double v[3] = {static_cast<double>(c.rank()), 1.0,
                     static_cast<double>(c.rank() * c.rank())};
      c.allreduce(v, 3, mpi::ReduceOp::Sum);
      double s0 = 0, s2 = 0;
      for (int r = 0; r < nranks; ++r) {
        s0 += r;
        s2 += r * r;
      }
      EXPECT_DOUBLE_EQ(v[0], s0);
      EXPECT_DOUBLE_EQ(v[1], nranks);
      EXPECT_DOUBLE_EQ(v[2], s2);
    });
  }
}

TEST(MiniMpi, AllreduceMinMax) {
  mpi::run(4, [](mpi::Comm& c) {
    const int lo = c.allreduce(10 - c.rank(), mpi::ReduceOp::Min);
    const int hi = c.allreduce(10 - c.rank(), mpi::ReduceOp::Max);
    EXPECT_EQ(lo, 7);
    EXPECT_EQ(hi, 10);
  });
}

TEST(MiniMpi, RepeatedCollectives) {
  mpi::run(3, [](mpi::Comm& c) {
    for (int iter = 0; iter < 20; ++iter) {
      const int sum = c.allreduce(1, mpi::ReduceOp::Sum);
      EXPECT_EQ(sum, 3);
      c.barrier();
    }
  });
}

TEST(MiniMpi, ExceptionPropagates) {
  EXPECT_THROW(mpi::run(2,
                        [](mpi::Comm& c) {
                          if (c.rank() == 1)
                            throw std::runtime_error("rank 1 boom");
                        }),
               std::runtime_error);
}

TEST(MiniMpi, InvalidRankCount) {
  EXPECT_THROW(mpi::run(0, [](mpi::Comm&) {}), std::invalid_argument);
}

TEST(CartTopology, DimsProductAndCoords) {
  for (int n : {1, 2, 4, 6, 8, 12, 27, 64, 100}) {
    const auto t = mpi::make_cart(n);
    EXPECT_EQ(t.nranks(), n) << n;
    for (int r = 0; r < n; ++r) {
      int x, y, z;
      t.coords_of(r, x, y, z);
      EXPECT_EQ(t.rank_of(x, y, z), r);
    }
  }
}

TEST(CartTopology, NearCubicFactorization) {
  const auto t = mpi::make_cart(64);
  EXPECT_EQ(t.dims[0] * t.dims[1] * t.dims[2], 64);
  EXPECT_LE(t.dims[0], 4);  // 4x4x4 expected
}

TEST(CartTopology, PeriodicNeighbors) {
  const auto t = mpi::make_cart(8);  // 2x2x2
  // Every rank has 6 neighbors; wrap means neighbor(+1 twice) = self.
  for (int r = 0; r < 8; ++r) {
    for (int ax = 0; ax < 3; ++ax) {
      const int plus = t.neighbor(r, ax, +1);
      ASSERT_GE(plus, 0);
      const int back = t.neighbor(plus, ax, -1);
      EXPECT_EQ(back, r);
    }
  }
}

TEST(CartTopology, NonPeriodicEdges) {
  auto t = mpi::make_cart(4, /*periodic=*/false);
  // Find a rank on the low face of the longest axis and check -1.
  int longest = 0;
  for (int ax = 1; ax < 3; ++ax)
    if (t.dims[ax] > t.dims[longest]) longest = ax;
  EXPECT_EQ(t.neighbor(0, longest, -1), -1);
}

TEST(MiniMpi, HaloExchangePattern) {
  // The 6-neighbor nonblocking exchange the PIC code uses, on a 2x2x1
  // periodic topology: each rank sends its rank id to all 6 neighbors and
  // must receive the right ids back.
  const auto topo = mpi::make_cart(4);
  mpi::run(4, [topo](mpi::Comm& c) {
    const int me = c.rank();
    std::vector<mpi::Request> reqs;
    int recv_buf[3][2];
    for (int ax = 0; ax < 3; ++ax)
      for (int dir = 0; dir < 2; ++dir) {
        const int nb = topo.neighbor(me, ax, dir ? +1 : -1);
        ASSERT_GE(nb, 0);
        reqs.push_back(c.irecv(nb, 100 + ax * 2 + (1 - dir), recv_buf[ax][dir]));
      }
    for (int ax = 0; ax < 3; ++ax)
      for (int dir = 0; dir < 2; ++dir) {
        const int nb = topo.neighbor(me, ax, dir ? +1 : -1);
        c.isend(nb, 100 + ax * 2 + dir, me);
      }
    for (auto& r : reqs) r.wait();
    for (int ax = 0; ax < 3; ++ax)
      for (int dir = 0; dir < 2; ++dir) {
        const int nb = topo.neighbor(me, ax, dir ? +1 : -1);
        EXPECT_EQ(recv_buf[ax][dir], nb);
      }
  });
}

TEST(MiniMpi, BcastFromEveryRoot) {
  mpi::run(4, [](mpi::Comm& c) {
    for (int root = 0; root < 4; ++root) {
      int payload[3] = {0, 0, 0};
      if (c.rank() == root) {
        payload[0] = root * 10;
        payload[1] = root * 10 + 1;
        payload[2] = root * 10 + 2;
      }
      c.bcast(payload, 3, root);
      EXPECT_EQ(payload[0], root * 10);
      EXPECT_EQ(payload[2], root * 10 + 2);
    }
  });
}

TEST(MiniMpi, GatherInRankOrder) {
  mpi::run(3, [](mpi::Comm& c) {
    const double mine[2] = {static_cast<double>(c.rank()),
                            static_cast<double>(c.rank() * c.rank())};
    const auto all = c.gather(mine, 2, /*root=*/1);
    if (c.rank() == 1) {
      ASSERT_EQ(all.size(), 6u);
      for (int r = 0; r < 3; ++r) {
        EXPECT_EQ(all[2 * r], r);
        EXPECT_EQ(all[2 * r + 1], r * r);
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(MiniMpi, CollectivesComposeWithP2p) {
  mpi::run(2, [](mpi::Comm& c) {
    // Interleave p2p and collectives to check tag isolation.
    c.isend(1 - c.rank(), 5, c.rank());
    int v = c.rank() == 0 ? 99 : 0;
    c.bcast(&v, 1, 0);
    EXPECT_EQ(v, 99);
    int got = -1;
    c.irecv(1 - c.rank(), 5, got).wait();
    EXPECT_EQ(got, 1 - c.rank());
  });
}

// ----------------------------------------------------------------------
// Request::test() / wait_any: nonblocking completion probing
// (docs/ASYNC.md). WorldOptions::latency_us injects a modeled delivery
// delay so "not yet complete" is an observable state in-process.
// ----------------------------------------------------------------------

TEST(MiniMpiTest, SendRequestTestsTrueImmediately) {
  mpi::run(2, [](mpi::Comm& c) {
    // Buffered isend: the payload is copied at post time, so the send
    // request is complete as soon as it exists, and stays complete.
    if (c.rank() == 0) {
      const int msg = 5;
      auto req = c.isend(1, 30, msg);
      EXPECT_TRUE(req.test());
      EXPECT_TRUE(req.test());
      req.wait();  // wait() after test()=true must be a no-op
    } else {
      int got = 0;
      c.irecv(0, 30, got).wait();
      EXPECT_EQ(got, 5);
    }
  });
}

TEST(MiniMpiTest, RecvTestFalseBeforeArrivalTrueAfter) {
  mpi::run(2, [](mpi::Comm& c) {
    if (c.rank() == 0) {
      int got = 0;
      auto req = c.irecv(1, 31, got);
      // Nothing was sent yet (rank 1 is parked on the barrier below), so
      // the receive cannot be complete.
      EXPECT_FALSE(req.test());
      c.barrier();  // release rank 1's send
      req.wait();
      EXPECT_EQ(got, 77);
      // Repeated test() after completion stays true and keeps the value.
      EXPECT_TRUE(req.test());
      EXPECT_TRUE(req.test());
      EXPECT_EQ(got, 77);
    } else {
      c.barrier();
      const int msg = 77;
      c.isend(0, 31, msg).wait();
    }
  });
}

TEST(MiniMpiTest, LatencyDelaysCompletion) {
  mpi::WorldOptions opts;
  opts.latency_us = 20'000;  // 20 ms: far above scheduling noise
  mpi::run(2, opts, [](mpi::Comm& c) {
    if (c.rank() == 0) {
      int got = 0;
      auto req = c.irecv(1, 32, got);
      c.barrier();  // sender has posted by the time barrier releases
      // The message exists but its modeled delivery time is ~20ms out.
      EXPECT_FALSE(req.test());
      req.wait();
      EXPECT_EQ(got, 9);
      EXPECT_TRUE(req.test());
    } else {
      const int msg = 9;
      c.isend(0, 32, msg);
      c.barrier();
    }
  });
}

TEST(MiniMpiTest, WaitAnyReturnsInCompletionOrder) {
  mpi::WorldOptions opts;
  opts.latency_us = 15'000;
  mpi::run(2, opts, [](mpi::Comm& c) {
    if (c.rank() == 0) {
      int fast = 0, slow = 0;
      std::vector<mpi::Request> reqs;
      reqs.push_back(c.irecv(1, 40, slow));  // index 0: sent second
      reqs.push_back(c.irecv(1, 41, fast));  // index 1: sent first
      c.barrier();
      // The tag-41 message was isent ~30ms before the tag-40 one, so its
      // modeled delivery time is earlier: wait_any must pick index 1.
      const std::size_t first = mpi::wait_any(std::span<mpi::Request>(reqs));
      EXPECT_EQ(first, 1u);
      EXPECT_EQ(fast, 1);
      reqs.erase(reqs.begin() + static_cast<std::ptrdiff_t>(first));
      const std::size_t second = mpi::wait_any(std::span<mpi::Request>(reqs));
      EXPECT_EQ(second, 0u);
      EXPECT_EQ(slow, 2);
    } else {
      const int first_msg = 1, second_msg = 2;
      c.isend(0, 41, first_msg);
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      c.isend(0, 40, second_msg);
      c.barrier();
    }
  });
}

TEST(MiniMpiTest, WaitAnyDrainLoopCompletesEveryRequest) {
  // wait_any returns *some* complete index each call; the caller's drain
  // contract is to erase the returned request before calling again (as
  // DistributedSimulation::complete_field_halo does).
  mpi::run(2, [](mpi::Comm& c) {
    if (c.rank() == 0) {
      int a = 0, b = 0;
      std::vector<mpi::Request> reqs;
      reqs.push_back(c.irecv(1, 50, a));
      reqs.push_back(c.irecv(1, 51, b));
      c.barrier();
      while (!reqs.empty()) {
        const std::size_t i = mpi::wait_any(std::span<mpi::Request>(reqs));
        ASSERT_LT(i, reqs.size());
        reqs.erase(reqs.begin() + static_cast<std::ptrdiff_t>(i));
      }
      EXPECT_EQ(a, 10);
      EXPECT_EQ(b, 11);
    } else {
      const int a = 10, b = 11;
      c.isend(0, 50, a);
      c.isend(0, 51, b);
      c.barrier();
    }
  });
}

TEST(MiniMpiTest, WaitAnyEmptySpanThrows) {
  mpi::run(1, [](mpi::Comm&) {
    std::vector<mpi::Request> none;
    EXPECT_THROW(mpi::wait_any(std::span<mpi::Request>(none)),
                 std::invalid_argument);
  });
}
