// Tests for the distributed (z-slab, minimpi-backed) PIC driver: rank
//-count invariance of the physics, particle-exchange correctness, halo
// consistency, and conservation laws across rank boundaries.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/core.hpp"
#include "minimpi/minimpi.hpp"

namespace core = vpic::core;
namespace mpi = vpic::mpi;
namespace pk = vpic::pk;
using pk::index_t;

namespace {

core::DomainConfig test_config() {
  core::DomainConfig cfg;
  cfg.nx = 6;
  cfg.ny = 6;
  cfg.nz = 8;
  cfg.lx = 6;
  cfg.ly = 6;
  cfg.lz = 8;
  cfg.seed = 1234;
  return cfg;
}

/// Run `steps` steps on `nranks` ranks; return the global energies and
/// particle count from rank 0.
struct RunResult {
  core::DistributedEnergy energy;
  std::int64_t np = 0;
  std::int64_t exchanged = 0;
};

RunResult run_distributed(int nranks, int steps, float uth = 0.2f,
                          float udz = 0.1f) {
  RunResult out;
  std::mutex m;
  mpi::run(nranks, [&](mpi::Comm& comm) {
    auto cfg = test_config();
    core::DistributedSimulation sim(cfg, comm);
    const auto e = sim.add_species("e", -1.0f, 1.0f, 20000);
    sim.load_uniform_plasma(e, 3, uth, 0.02f, -0.01f, udz);
    sim.run(steps);
    auto energy = sim.energies();
    auto np = sim.global_np(e);
    if (comm.rank() == 0) {
      std::lock_guard lk(m);
      out.energy = energy;
      out.np = np;
      out.exchanged = sim.exchanged_particles();
    }
  });
  return out;
}

}  // namespace

TEST(Domain, RejectsIndivisibleDecomposition) {
  EXPECT_THROW(mpi::run(3,
                        [&](mpi::Comm& comm) {
                          auto cfg = test_config();  // nz = 8, 3 ranks
                          core::DistributedSimulation sim(cfg, comm);
                        }),
               std::invalid_argument);
}

TEST(Domain, SingleRankRuns) {
  const auto r = run_distributed(1, 5);
  EXPECT_EQ(r.np, 6 * 6 * 8 * 3);
  EXPECT_TRUE(std::isfinite(r.energy.total()));
  EXPECT_GT(r.energy.total(), 0.0);
}

TEST(Domain, LoadIsRankCountInvariant) {
  // Zero steps: the loaded global particle set must be identical.
  const auto r1 = run_distributed(1, 0);
  const auto r2 = run_distributed(2, 0);
  const auto r4 = run_distributed(4, 0);
  EXPECT_EQ(r1.np, r2.np);
  EXPECT_EQ(r1.np, r4.np);
  EXPECT_NEAR(r1.energy.total(), r2.energy.total(),
              1e-9 * r1.energy.total());
  EXPECT_NEAR(r1.energy.total(), r4.energy.total(),
              1e-9 * r1.energy.total());
}

TEST(Domain, PhysicsMatchesAcrossRankCounts) {
  const int steps = 10;
  const auto r1 = run_distributed(1, steps);
  const auto r2 = run_distributed(2, steps);
  const auto r4 = run_distributed(4, steps);
  // Same global particle count (nothing lost or duplicated in exchange).
  EXPECT_EQ(r1.np, r2.np);
  EXPECT_EQ(r1.np, r4.np);
  // Same physics to fp-reordering tolerance.
  const double ref = r1.energy.total();
  EXPECT_NEAR(r2.energy.total(), ref, 2e-4 * ref);
  EXPECT_NEAR(r4.energy.total(), ref, 2e-4 * ref);
  EXPECT_NEAR(r2.energy.field, r1.energy.field,
              2e-3 * std::max(1e-12, r1.energy.field));
}

TEST(Domain, ParticlesActuallyMigrate) {
  // A strong z-drift guarantees slab crossings.
  const auto r = run_distributed(2, 10, 0.05f, 0.4f);
  EXPECT_GT(r.exchanged, 0);
}

TEST(Domain, ParticleCountConservedUnderHeavyMigration) {
  const auto before = run_distributed(4, 0, 0.05f, 0.45f);
  const auto after = run_distributed(4, 15, 0.05f, 0.45f);
  EXPECT_EQ(before.np, after.np);
}

TEST(Domain, EnergyConservedAcrossRanks) {
  const auto start = run_distributed(2, 0, 0.25f, 0.0f);
  const auto end = run_distributed(2, 30, 0.25f, 0.0f);
  EXPECT_NEAR(end.energy.total(), start.energy.total(),
              0.05 * start.energy.total());
}

TEST(Domain, LocalGridsPartitionGlobal) {
  mpi::run(4, [&](mpi::Comm& comm) {
    auto cfg = test_config();
    core::DistributedSimulation sim(cfg, comm);
    EXPECT_EQ(sim.local_grid().nz, 2);
    EXPECT_EQ(sim.z_offset(), comm.rank() * 2);
    EXPECT_FLOAT_EQ(sim.local_grid().dz, 1.0f);
  });
}

TEST(Domain, AllParticlesStayInLocalInterior) {
  mpi::run(2, [&](mpi::Comm& comm) {
    auto cfg = test_config();
    core::DistributedSimulation sim(cfg, comm);
    const auto e = sim.add_species("e", -1.0f, 1.0f, 20000);
    sim.load_uniform_plasma(e, 3, 0.15f, 0.0f, 0.0f, 0.3f);
    sim.run(8);
    const auto& g = sim.local_grid();
    const auto& sp = sim.species(e);
    for (index_t n = 0; n < sp.np; ++n)
      EXPECT_TRUE(g.is_interior(sp.p(n).i)) << "rank " << comm.rank();
  });
}

TEST(Domain, TwoSpeciesExchangeIndependently) {
  mpi::run(2, [&](mpi::Comm& comm) {
    auto cfg = test_config();
    core::DistributedSimulation sim(cfg, comm);
    const auto e = sim.add_species("e", -1.0f, 1.0f, 20000);
    const auto i = sim.add_species("i", 1.0f, 100.0f, 20000);
    sim.load_uniform_plasma(e, 2, 0.1f, 0, 0, 0.3f);
    sim.load_uniform_plasma(i, 2, 0.01f, 0, 0, -0.3f);
    sim.run(6);
    EXPECT_EQ(sim.global_np(e), 6 * 6 * 8 * 2);
    EXPECT_EQ(sim.global_np(i), 6 * 6 * 8 * 2);
    const auto energy = sim.energies();
    EXPECT_TRUE(std::isfinite(energy.total()));
  });
}
