// Tests for the gather-scatter benchmark library: key-pattern generators,
// host kernels (correctness of the actual computation, not just timing),
// logical-byte accounting, and the device-model evaluation paths.
#include <gtest/gtest.h>

#include <numeric>

#include "gs/gather_scatter.hpp"
#include "sort/sorters.hpp"

using namespace vpic;
using pk::index_t;

TEST(GsKeys, ContiguousIsIota) {
  auto k = gs::make_keys(gs::Pattern::Contiguous, 100, 100);
  for (index_t i = 0; i < 100; ++i) EXPECT_EQ(k(i), i);
}

TEST(GsKeys, RepeatedClusters) {
  auto k = gs::make_keys(gs::Pattern::Repeated, 1000, 10);
  // 10 unique keys, each repeated 100 times, clustered.
  for (index_t i = 0; i < 1000; ++i) EXPECT_EQ(k(i), i / 100);
}

TEST(GsKeys, RepeatedCoversAllKeys) {
  auto k = gs::make_keys(gs::Pattern::Repeated, 997, 13);  // non-divisible
  std::uint32_t max_seen = 0;
  for (index_t i = 0; i < 997; ++i) {
    EXPECT_LT(k(i), 13u);
    max_seen = std::max(max_seen, k(i));
  }
  EXPECT_EQ(max_seen, 12u);
}

TEST(GsKeys, TableSizes) {
  EXPECT_EQ(gs::table_size(gs::Pattern::Contiguous, 64), 64);
  EXPECT_EQ(gs::table_size(gs::Pattern::Repeated, 64), 64);
  EXPECT_EQ(gs::table_size(gs::Pattern::Stencil5, 64), 65);
}

TEST(GsKeys, LogicalBytesAccounting) {
  EXPECT_EQ(gs::logical_bytes(gs::Pattern::Repeated, 10), 10u * 36);
  EXPECT_EQ(gs::logical_bytes(gs::Pattern::Stencil5, 10), 10u * 68);
}

TEST(GsHost, GatherValuesCorrect) {
  const index_t n = 1000;
  auto keys = gs::make_keys(gs::Pattern::Repeated, n, 10);
  pk::View<double, 1> data("d", 10), out("o", n);
  for (index_t i = 0; i < 10; ++i) data(i) = 100.0 + static_cast<double>(i);
  const auto r = gs::run_gather(keys, data, out);
  for (index_t i = 0; i < n; ++i)
    EXPECT_EQ(out(i), 100.0 + static_cast<double>(keys(i)));
  EXPECT_GT(r.gb_per_s, 0.0);
}

TEST(GsHost, ScatterAddAccumulates) {
  const index_t n = 640;
  auto keys = gs::make_keys(gs::Pattern::Repeated, n, 4);
  pk::View<double, 1> data("d", 4), src("s", n);
  pk::deep_copy(src, 1.0);
  gs::run_scatter_add(keys, data, src);
  // 4 keys x 160 repeats, each +1.
  for (index_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(data(i), 160.0);
}

TEST(GsHost, GatherScatterCombined) {
  const index_t n = 200;
  auto keys = gs::make_keys(gs::Pattern::Repeated, n, 2);
  pk::View<double, 1> data("d", 2), out("o", n);
  data(0) = 5.0;
  data(1) = 7.0;
  gs::run_gather_scatter(keys, data, out);
  // Each of the 2 keys receives +1 per access (100 each).
  EXPECT_DOUBLE_EQ(data(0), 105.0);
  EXPECT_DOUBLE_EQ(data(1), 107.0);
}

TEST(GsHost, Stencil5SumsNeighborsAndScatters) {
  const index_t n = 8;
  pk::View<std::uint32_t, 1> keys("k", n);
  for (index_t i = 0; i < n; ++i) keys(i) = 4;  // all at center 4
  pk::View<double, 1> data("d", 16), out("o", n);
  for (index_t i = 0; i < 16; ++i) data(i) = static_cast<double>(i);
  const index_t stride = 3;
  const double expected = 4.0 + 3.0 + 5.0 + 1.0 + 7.0;  // c, ±1, ±stride
  gs::run_stencil5(keys, data, out, stride);
  // First access sees the pristine table; later ones see scattered adds.
  EXPECT_DOUBLE_EQ(out(0), expected);
  EXPECT_GT(data(4), 4.0);  // scatter phase accumulated into the center
}

namespace {

// The model tests replay at reduced n; scale the device LLC by n/1e9 so
// working-set:cache ratios match the paper's billion-element run (the
// same "cache-scaled replay" the fig5/fig6 harnesses use).
gpusim::DeviceSpec scaled_device(const char* name, index_t n) {
  auto d = gpusim::device(name);
  d.llc_mb = std::max(d.llc_mb * static_cast<double>(n) / 1e9,
                      16.0 * d.line_bytes / 1e6);
  return d;
}

}  // namespace

TEST(GsModel, SortingOrdersChangeModeledBandwidth) {
  const index_t n = 1 << 18;
  const index_t unique = n / 100;  // 2621 > the atomic window
  const auto dev = scaled_device("A100", n);
  auto run = [&](sort::SortOrder order) {
    auto keys = gs::make_keys(gs::Pattern::Repeated, n, unique);
    pk::View<std::uint32_t, 1> payload("p", n);
    sort::sort_pairs(order, keys, payload, 2048u);
    return gs::model_gather_scatter(dev, keys, unique).bw_gbs;
  };
  const double standard = run(sort::SortOrder::Standard);
  const double strided = run(sort::SortOrder::Strided);
  EXPECT_GT(strided, 3.0 * standard)
      << "standard sort must collapse under atomic contention";
}

TEST(GsModel, ContiguousMatchesStream) {
  const index_t n = 1 << 18;
  auto keys = gs::make_keys(gs::Pattern::Contiguous, n, n);
  const auto dev = scaled_device("V100", n);
  const auto t = gs::model_gather_scatter(dev, keys, n);
  // Logical 36 B/elem vs modeled DRAM 36 B/elem: reported BW ~ STREAM.
  EXPECT_NEAR(t.bw_gbs, dev.dram_bw_gbs, 0.15 * dev.dram_bw_gbs);
}

TEST(GsModel, AmdPaysMoreForAtomics) {
  const index_t n = 1 << 16;
  const index_t unique = n / 100;
  auto keys = gs::make_keys(gs::Pattern::Repeated, n, unique);
  const auto nv = gs::model_gather_scatter(gpusim::device("A100"), keys,
                                           unique);
  const auto amd = gs::model_gather_scatter(gpusim::device("MI250"), keys,
                                            unique);
  // Same stream: AMD's fewer atomic lanes + higher atomic latency must
  // yield lower effective bandwidth despite higher STREAM.
  EXPECT_LT(amd.bw_gbs, nv.bw_gbs);
}

TEST(GsModel, StencilCountsFiveStreams) {
  const index_t n = 1 << 14;
  auto keys = gs::make_keys(gs::Pattern::Repeated, n, n / 100);
  const auto& dev = gpusim::device("H100");
  const auto st = gs::model_stencil5(dev, keys, n / 100, 8);
  const auto gs2 = gs::model_gather_scatter(dev, keys, n / 100);
  // The stencil moves more logical bytes per element.
  EXPECT_GT(static_cast<double>(gs::logical_bytes(gs::Pattern::Stencil5, n)),
            static_cast<double>(gs::logical_bytes(gs::Pattern::Repeated, n)));
  EXPECT_GT(st.seconds, 0.0);
  EXPECT_GT(gs2.seconds, 0.0);
}
