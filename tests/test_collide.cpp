// Tests for the Takizuka–Abe collision module (core/collide.hpp):
// conservation laws and Maxwellianization of the collide_range operator
// (driven directly, no field dynamics), bit-determinism across particle
// layouts and stealing worker counts, and checkpoint round-trips of a
// collision-enabled run — including the module's counters — across
// layouts.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <vector>

#include "core/collide.hpp"
#include "core/decks.hpp"
#include "core/rng.hpp"
#include "core/simulation.hpp"
#include "pk/pk.hpp"

namespace core = vpic::core;
namespace pk = vpic::pk;
namespace fs = std::filesystem;
using pk::index_t;

namespace {

class PkEnv : public ::testing::Environment {
 public:
  void SetUp() override {
    // Built-in tune defaults: a probed cache carries per-layout push
    // gates, and a dispatch decision that differs across layouts changes
    // the deposit grouping — which would break the cross-layout
    // bit-identity this suite asserts.
    setenv("VPIC_TUNE", "off", 1);
    pk::initialize(1);
  }
};
[[maybe_unused]] const auto* const env =
    ::testing::AddGlobalTestEnvironment(new PkEnv);

/// One-cell species with an anisotropic Gaussian momentum spread:
/// sigma_x = uth_x, sigma_y = sigma_z = uth_perp.
core::Species make_cell_species(index_t n, float uth_x, float uth_perp,
                                const core::Grid& g,
                                core::ParticleLayout layout,
                                std::uint64_t seed) {
  core::Species sp("test", -1.0f, 1.0f, n, layout);
  const auto v = static_cast<std::int32_t>(g.voxel(1, 1, 1));
  for (index_t i = 0; i < n; ++i) {
    core::Particle p{};
    p.i = v;
    p.ux = uth_x * static_cast<float>(core::normal(seed, 3 * i + 0));
    p.uy = uth_perp * static_cast<float>(core::normal(seed, 3 * i + 1));
    p.uz = uth_perp * static_cast<float>(core::normal(seed, 3 * i + 2));
    p.w = 1.0f;
    sp.p.set(i, p);
  }
  sp.np = n;
  return sp;
}

struct Moments {
  double px = 0, py = 0, pz = 0;  // total momentum (m * u)
  double ke = 0;                  // non-relativistic kinetic energy
  double tx = 0, ty = 0, tz = 0;  // per-axis temperature (variance of u)
};

Moments moments(const core::Species& sp) {
  Moments m;
  std::vector<core::Particle> ps(static_cast<std::size_t>(sp.np));
  sp.p.export_aos(ps.data(), sp.np);
  for (const auto& p : ps) {
    m.px += static_cast<double>(sp.m) * p.ux;
    m.py += static_cast<double>(sp.m) * p.uy;
    m.pz += static_cast<double>(sp.m) * p.uz;
    m.ke += 0.5 * sp.m *
            (static_cast<double>(p.ux) * p.ux +
             static_cast<double>(p.uy) * p.uy +
             static_cast<double>(p.uz) * p.uz);
  }
  const double n = static_cast<double>(sp.np);
  for (const auto& p : ps) {
    m.tx += (p.ux - m.px / n) * (p.ux - m.px / n);
    m.ty += (p.uy - m.py / n) * (p.uy - m.py / n);
    m.tz += (p.uz - m.pz / n) * (p.uz - m.pz / n);
  }
  m.tx /= n;
  m.ty /= n;
  m.tz /= n;
  return m;
}

std::vector<core::Particle> canon(const core::Species& sp) {
  std::vector<core::Particle> out(static_cast<std::size_t>(sp.np));
  sp.p.export_aos(out.data(), sp.np);
  return out;
}

bool same_particles(core::Simulation& a, core::Simulation& b) {
  if (a.num_species() != b.num_species()) return false;
  for (std::size_t s = 0; s < a.num_species(); ++s) {
    const auto pa = canon(a.species(s));
    const auto pb = canon(b.species(s));
    if (pa.size() != pb.size()) return false;
    if (!pa.empty() &&
        std::memcmp(pa.data(), pb.data(),
                    pa.size() * sizeof(core::Particle)) != 0)
      return false;
  }
  return true;
}

core::Simulation make_colliding_lpi(
    core::ParticleLayout layout = core::ParticleLayout::AoS,
    std::uint64_t seed = 42) {
  core::decks::LpiParams p;
  p.nx = 12;
  p.ny = 4;
  p.nz = 4;
  p.ppc = 4;
  p.sort_interval = 10;
  p.seed = seed;
  p.layout = layout;
  auto sim = core::decks::make_lpi(p);
  sim.config().energy_interval = 5;
  core::CollisionParams cp;
  cp.nu0 = 1e-3;
  sim.add_module<core::CollisionModule>(cp);
  return sim;
}

fs::path scratch(const std::string& tag) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("vpic_col_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

}  // namespace

// ----------------------------------------------------------------------
// collide_range physics (no field dynamics).
// ----------------------------------------------------------------------

TEST(CollideRange, ConservesMomentumAndEnergy) {
  const core::Grid g(4, 4, 4, 4, 4, 4, 0.1f);
  auto sp = make_cell_species(2000, 0.10f, 0.05f, g,
                              core::ParticleLayout::AoS, 7);
  core::CollisionParams prm;
  prm.nu0 = 2e-3;
  const core::ModuleRng rng{core::hash64(123)};
  const Moments before = moments(sp);
  std::uint64_t pairs = 0;
  for (int it = 0; it < 50; ++it)
    pairs += core::collide_range(sp, sp, g, prm, 0, sp.np, 0, sp.np,
                                 static_cast<std::uint64_t>(it), 0, rng)
                 .pairs;
  EXPECT_EQ(pairs, 50u * 1000u);
  const Moments after = moments(sp);
  // Momentum is conserved pairwise exactly; only float store rounding
  // accumulates. Energy is conserved by the rotation (|g| preserved).
  const double pscale = 2000 * 0.10;
  EXPECT_NEAR(after.px, before.px, 1e-3 * pscale);
  EXPECT_NEAR(after.py, before.py, 1e-3 * pscale);
  EXPECT_NEAR(after.pz, before.pz, 1e-3 * pscale);
  EXPECT_NEAR(after.ke, before.ke, 2e-3 * before.ke);
}

TEST(CollideRange, MaxwellianizesAnisotropicDistribution) {
  const core::Grid g(4, 4, 4, 4, 4, 4, 0.1f);
  // Tx = 4 x Tperp initially.
  auto sp = make_cell_species(4000, 0.10f, 0.05f, g,
                              core::ParticleLayout::AoS, 11);
  core::CollisionParams prm;
  prm.nu0 = 5e-3;
  const core::ModuleRng rng{core::hash64(321)};
  const Moments before = moments(sp);
  const double aniso_before = before.tx / (0.5 * (before.ty + before.tz));
  ASSERT_GT(aniso_before, 3.0);
  for (int it = 0; it < 400; ++it)
    core::collide_range(sp, sp, g, prm, 0, sp.np, 0, sp.np,
                        static_cast<std::uint64_t>(it), 0, rng);
  const Moments after = moments(sp);
  const double aniso_after = after.tx / (0.5 * (after.ty + after.tz));
  // Collisions drive T_x / T_perp toward 1 while conserving energy.
  EXPECT_LT(aniso_after, 0.5 * aniso_before);
  EXPECT_GT(aniso_after, 0.8);
  EXPECT_NEAR(after.ke, before.ke, 5e-3 * before.ke);
}

TEST(CollideRange, InterSpeciesConservesTotalMomentum) {
  const core::Grid g(4, 4, 4, 4, 4, 4, 0.1f);
  auto a = make_cell_species(1500, 0.10f, 0.10f, g,
                             core::ParticleLayout::AoS, 21);
  core::Species b = make_cell_species(1500, 0.02f, 0.02f, g,
                                      core::ParticleLayout::AoS, 22);
  b.m = 4.0f;  // unequal masses exercise the reduced-mass split
  core::CollisionParams prm;
  prm.nu0 = 2e-3;
  const core::ModuleRng rng{core::hash64(99)};
  const Moments ba = moments(a), bb = moments(b);
  for (int it = 0; it < 50; ++it) {
    const auto st = core::collide_range(a, b, g, prm, 0, a.np, 0, b.np,
                                        static_cast<std::uint64_t>(it), 1,
                                        rng);
    EXPECT_EQ(st.pairs, 1500u);
  }
  const Moments aa = moments(a), ab = moments(b);
  const double pscale = 1500 * 0.10 * 4.0;
  EXPECT_NEAR(aa.px + ab.px, ba.px + bb.px, 1e-3 * pscale);
  EXPECT_NEAR(aa.py + ab.py, ba.py + bb.py, 1e-3 * pscale);
  EXPECT_NEAR(aa.pz + ab.pz, ba.pz + bb.pz, 1e-3 * pscale);
  // Energy flows from the hot light species to the cold heavy one.
  EXPECT_LT(aa.ke, ba.ke);
  EXPECT_GT(ab.ke, bb.ke);
  EXPECT_NEAR(aa.ke + ab.ke, ba.ke + bb.ke, 5e-3 * (ba.ke + bb.ke));
}

TEST(CollideRange, BitIdenticalAcrossLayouts) {
  const core::Grid g(4, 4, 4, 4, 4, 4, 0.1f);
  core::CollisionParams prm;
  prm.nu0 = 2e-3;
  const core::ModuleRng rng{core::hash64(55)};
  std::vector<core::Particle> ref;
  for (int li = 0; li < core::kNumParticleLayouts; ++li) {
    auto sp = make_cell_species(1024, 0.10f, 0.05f, g,
                                core::kAllParticleLayouts[li], 13);
    for (int it = 0; it < 10; ++it)
      core::collide_range(sp, sp, g, prm, 0, sp.np, 0, sp.np,
                          static_cast<std::uint64_t>(it), 0, rng);
    const auto got = canon(sp);
    if (li == 0) {
      ref = got;
    } else {
      ASSERT_EQ(got.size(), ref.size());
      EXPECT_EQ(std::memcmp(got.data(), ref.data(),
                            got.size() * sizeof(core::Particle)),
                0)
          << "layout " << core::to_string(core::kAllParticleLayouts[li]);
    }
  }
}

// ----------------------------------------------------------------------
// CollisionModule in the step pipeline.
// ----------------------------------------------------------------------

TEST(CollisionModule, ChangesDynamicsAndCountsPairs) {
  auto plain = [] {
    core::decks::LpiParams p;
    p.nx = 12;
    p.ny = 4;
    p.nz = 4;
    p.ppc = 4;
    return core::decks::make_lpi(p);
  };
  auto with = plain();
  core::CollisionParams cp;
  cp.nu0 = 1e-3;
  auto& col = with.add_module<core::CollisionModule>(cp);
  auto without = plain();
  with.run(10);
  without.run(10);
  EXPECT_GT(col.pairs_scattered(), 0u);
  EXPECT_EQ(col.steps_applied(), 10u);
  EXPECT_FALSE(same_particles(with, without));
}

TEST(CollisionModule, BitDeterministicAcrossWorkerCounts) {
  std::vector<core::Particle> ref_e, ref_i;
  double ref_field = 0;
  for (const int workers : {1, 2, 4, 8}) {
    auto sim = make_colliding_lpi();
    sim.config().tiles.enabled = true;
    sim.config().tiles.exec = core::TileExec::Stealing;
    sim.config().tiles.workers = workers;
    sim.config().tiles.count = 4;  // fixed: the tile cut is part of the key
    sim.run(30);
    const auto e = canon(sim.species(0));
    const auto i = canon(sim.species(1));
    const double field = sim.energies().field;
    if (workers == 1) {
      ref_e = e;
      ref_i = i;
      ref_field = field;
      continue;
    }
    EXPECT_EQ(std::memcmp(e.data(), ref_e.data(),
                          e.size() * sizeof(core::Particle)),
              0)
        << workers << " workers (electrons)";
    EXPECT_EQ(std::memcmp(i.data(), ref_i.data(),
                          i.size() * sizeof(core::Particle)),
              0)
        << workers << " workers (ions)";
    EXPECT_EQ(field, ref_field) << workers << " workers";
  }
}

TEST(CollisionModule, GraphSchedulerRunsCollidePhases) {
  auto sim = make_colliding_lpi();
  sim.config().scheduler = core::StepScheduler::Graph;
  sim.step();
  bool saw_collide = false;
  for (const auto& st : sim.last_phase_stats())
    if (st.name.rfind("collide[", 0) == 0) saw_collide = true;
  EXPECT_TRUE(saw_collide);
}

TEST(CollisionModule, CheckpointRoundTripsAcrossLayouts) {
  const fs::path dir = scratch("rt");
  auto sim = make_colliding_lpi();
  sim.run(20);
  auto* col = dynamic_cast<core::CollisionModule*>(sim.find_module("collide"));
  ASSERT_NE(col, nullptr);
  const std::uint64_t pairs_at_ckpt = col->pairs_scattered();
  ASSERT_GT(pairs_at_ckpt, 0u);
  sim.checkpoint((dir / "a.ckpt").string());
  sim.run(15);

  // The checkpoint restores bit-identically under every particle layout
  // (the file stores the canonical AoS stream; collisions scan in index
  // order, never layout order) — counters included.
  for (const int li : {0, 1, 2}) {
    auto restored = make_colliding_lpi(core::kAllParticleLayouts[li]);
    restored.restore((dir / "a.ckpt").string());
    EXPECT_TRUE(restored.last_restore_skips().empty());
    auto* rcol =
        dynamic_cast<core::CollisionModule*>(restored.find_module("collide"));
    ASSERT_NE(rcol, nullptr);
    EXPECT_EQ(rcol->pairs_scattered(), pairs_at_ckpt);
    restored.run(15);
    EXPECT_TRUE(same_particles(sim, restored))
        << "layout " << core::to_string(core::kAllParticleLayouts[li]);
    EXPECT_EQ(rcol->pairs_scattered(), col->pairs_scattered());
  }
}
