// Tile-level task decomposition tests (core/tiles.hpp, pk/stealing.hpp,
// docs/TILES.md): tile geometry, bucket/sort equivalence with the global
// stable voxel sort, seam correctness of tile-private accumulator blocks
// (boundary, corner, reflecting-wall crossings vs the untiled reference),
// the work-stealing pool, the stealing StepGraph executor, and the two
// headline guarantees — the Deterministic tiled mode is bit-identical to
// the untiled Sequential step over 100 LPI steps, and the Stealing mode
// is bit-deterministic across worker counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/core.hpp"
#include "core/decks.hpp"
#include "core/simulation.hpp"
#include "core/step_graph.hpp"
#include "core/tiles.hpp"
#include "pk/pk.hpp"
#include "pk/stealing.hpp"

namespace core = vpic::core;
namespace pk = vpic::pk;
using pk::index_t;

namespace {

class PkEnv : public ::testing::Environment {
 public:
  // One kernel thread: with >1 OpenMP threads the float-atomic deposits of
  // the *untiled* reference path are nondeterministic, which would mask
  // what this suite is about — tile decomposition and task scheduling.
  // StealPool worker threads are independent of this setting, so the
  // stealing tests still exercise real parallelism. The tune cache is
  // pinned off: a stale .vpic_tune.json can flip sort/push dispatch
  // per-layout, breaking the bit-identity comparisons.
  void SetUp() override {
    setenv("VPIC_TUNE", "off", 1);
    pk::initialize(1);
  }
};
[[maybe_unused]] const auto* const env =
    ::testing::AddGlobalTestEnvironment(new PkEnv);

void expect_bitwise_equal(core::Simulation& a, core::Simulation& b) {
  const auto& fa = a.fields();
  const auto& fb = b.fields();
  const pk::View<float, 1>* va[] = {&fa.ex, &fa.ey, &fa.ez, &fa.bx, &fa.by,
                                    &fa.bz, &fa.jx, &fa.jy, &fa.jz};
  const pk::View<float, 1>* vb[] = {&fb.ex, &fb.ey, &fb.ez, &fb.bx, &fb.by,
                                    &fb.bz, &fb.jx, &fb.jy, &fb.jz};
  const char* names[] = {"ex", "ey", "ez", "bx", "by", "bz", "jx", "jy", "jz"};
  for (int c = 0; c < 9; ++c) {
    ASSERT_EQ(va[c]->size(), vb[c]->size());
    for (index_t i = 0; i < va[c]->size(); ++i)
      ASSERT_EQ((*va[c])(i), (*vb[c])(i))
          << names[c] << " diverges at voxel " << i;
  }
  ASSERT_EQ(a.num_species(), b.num_species());
  for (std::size_t s = 0; s < a.num_species(); ++s) {
    const auto& sa = a.species(s);
    const auto& sb = b.species(s);
    ASSERT_EQ(sa.np, sb.np) << sa.name;
    for (index_t i = 0; i < sa.np; ++i) {
      ASSERT_EQ(sa.p(i).dx, sb.p(i).dx) << sa.name << " particle " << i;
      ASSERT_EQ(sa.p(i).dy, sb.p(i).dy) << sa.name << " particle " << i;
      ASSERT_EQ(sa.p(i).dz, sb.p(i).dz) << sa.name << " particle " << i;
      ASSERT_EQ(sa.p(i).i, sb.p(i).i) << sa.name << " particle " << i;
      ASSERT_EQ(sa.p(i).ux, sb.p(i).ux) << sa.name << " particle " << i;
      ASSERT_EQ(sa.p(i).uy, sb.p(i).uy) << sa.name << " particle " << i;
      ASSERT_EQ(sa.p(i).uz, sb.p(i).uz) << sa.name << " particle " << i;
      ASSERT_EQ(sa.p(i).w, sb.p(i).w) << sa.name << " particle " << i;
    }
  }
}

// 4-ulp comparison, not bitwise: this test TU inlines move_p twice (once
// per accumulator type) and -ffp-contract=fast may fuse multiply-adds
// differently in each expansion. The production push TU instantiates both
// paths together, and its bit-identity is proven end-to-end by the
// TiledStep.*BitIdentical* tests below; here we verify the *seam physics*
// (deposits in the right voxels with the right values).
void expect_acc_equal(const core::AccumulatorArray& x,
                      const core::AccumulatorArray& y) {
  ASSERT_EQ(x.a.size(), y.a.size());
  for (index_t v = 0; v < x.a.size(); ++v)
    for (int c = 0; c < 4; ++c) {
      ASSERT_FLOAT_EQ(x.a(v).jx[c], y.a(v).jx[c]) << "jx voxel " << v;
      ASSERT_FLOAT_EQ(x.a(v).jy[c], y.a(v).jy[c]) << "jy voxel " << v;
      ASSERT_FLOAT_EQ(x.a(v).jz[c], y.a(v).jz[c]) << "jz voxel " << v;
    }
}

}  // namespace

// ----------------------------------------------------------------------
// TileMap geometry.
// ----------------------------------------------------------------------

TEST(TileMap, PartitionsInteriorPlanesContiguously) {
  const core::Grid g(4, 4, 10, 4, 4, 10, 0.1f);
  const core::TileMap tm(g, 3);
  ASSERT_EQ(tm.count(), 3);
  EXPECT_EQ(tm.z_lo(0), 1);
  EXPECT_EQ(tm.z_hi(tm.count() - 1), g.nz);
  int planes = 0;
  for (int t = 0; t < tm.count(); ++t) {
    if (t > 0) EXPECT_EQ(tm.z_lo(t), tm.z_hi(t - 1) + 1);
    EXPECT_LE(tm.z_lo(t), tm.z_hi(t));
    planes += tm.z_hi(t) - tm.z_lo(t) + 1;
    EXPECT_EQ(tm.v_lo(t), static_cast<index_t>(tm.z_lo(t)) * tm.plane_voxels());
    EXPECT_EQ(tm.v_hi(t),
              static_cast<index_t>(tm.z_hi(t) + 1) * tm.plane_voxels());
  }
  EXPECT_EQ(planes, g.nz);
}

TEST(TileMap, CountClampsToInteriorPlanes) {
  const core::Grid g(4, 4, 3, 4, 4, 3, 0.1f);
  EXPECT_EQ(core::TileMap(g, 64).count(), 3);  // never more tiles than planes
  EXPECT_EQ(core::TileMap(g, 0).count(), 1);
  EXPECT_GE(core::TileMap::auto_count(g, 2), 1);
  EXPECT_LE(core::TileMap::auto_count(g, 2), 3);
}

TEST(TileMap, TileOfVoxelMatchesPlaneOwnershipAndClampsGhosts) {
  const core::Grid g(4, 4, 8, 4, 4, 8, 0.1f);
  const core::TileMap tm(g, 4);
  for (int t = 0; t < tm.count(); ++t)
    for (int z = tm.z_lo(t); z <= tm.z_hi(t); ++z)
      EXPECT_EQ(tm.tile_of_voxel(g.voxel(2, 2, z)), t) << "plane " << z;
  EXPECT_EQ(tm.tile_of_voxel(g.voxel(2, 2, 0)), 0);           // low ghost
  EXPECT_EQ(tm.tile_of_voxel(g.voxel(2, 2, g.nz + 1)),        // high ghost
            tm.count() - 1);
}

// ----------------------------------------------------------------------
// Bucketing and per-tile sorting vs the global stable voxel sort.
// ----------------------------------------------------------------------

namespace {

// Deterministic scramble of cell assignments across the whole interior.
core::Species make_scrambled_species(const core::Grid& g, int n) {
  core::Species sp("e", -1.0f, 1.0f, static_cast<index_t>(n) + 8);
  for (int k = 0; k < n; ++k) {
    core::Particle p{};
    const int ix = 1 + (k * 7 + 3) % g.nx;
    const int iy = 1 + (k * 5 + 1) % g.ny;
    const int iz = 1 + (k * 11 + 2) % g.nz;
    p.i = static_cast<std::int32_t>(g.voxel(ix, iy, iz));
    p.ux = static_cast<float>(k);  // identity tag: tracks the permutation
    sp.p(sp.np++) = p;
  }
  return sp;
}

}  // namespace

TEST(BucketByTile, PartitionsByTileStably) {
  const core::Grid g(4, 4, 8, 4, 4, 8, 0.1f);
  const core::TileMap tm(g, 4);
  core::Species sp = make_scrambled_species(g, 200);
  core::bucket_by_tile(sp, tm);

  ASSERT_EQ(static_cast<int>(sp.tiles.size()), tm.count());
  EXPECT_EQ(sp.tiles.front().begin, 0);
  EXPECT_EQ(sp.tiles.back().end, sp.np);
  float prev_tag = -1.0f;
  for (int t = 0; t < tm.count(); ++t) {
    const auto& slot = sp.tiles[static_cast<std::size_t>(t)];
    if (t > 0) EXPECT_EQ(slot.begin, sp.tiles[static_cast<std::size_t>(t - 1)].end);
    EXPECT_FALSE(slot.sorted_hint);  // bucketed, not voxel-sorted
    prev_tag = -1.0f;
    for (index_t i = slot.begin; i < slot.end; ++i) {
      EXPECT_EQ(tm.tile_of_voxel(sp.p(i).i), t) << "particle " << i;
      // Stability: tags ascend within a tile (insertion order preserved).
      EXPECT_GT(sp.p(i).ux, prev_tag);
      prev_tag = sp.p(i).ux;
    }
  }
}

TEST(BucketByTile, AscendingVoxelOrderIsIdentityPermutation) {
  // The bit-identity guarantee of the Deterministic mode rests on this:
  // decks load particles in ascending voxel order, so the initial bucket
  // must not move anything.
  const core::Grid g(4, 4, 8, 4, 4, 8, 0.1f);
  const core::TileMap tm(g, 3);
  core::Species sp("e", -1.0f, 1.0f, 600);
  int k = 0;
  for (int iz = 1; iz <= g.nz; ++iz)
    for (int iy = 1; iy <= g.ny; ++iy)
      for (int ix = 1; ix <= g.nx; ++ix) {
        core::Particle p{};
        p.i = static_cast<std::int32_t>(g.voxel(ix, iy, iz));
        p.ux = static_cast<float>(k++);
        sp.p(sp.np++) = p;
      }
  core::bucket_by_tile(sp, tm);
  for (index_t i = 0; i < sp.np; ++i)
    ASSERT_EQ(sp.p(i).ux, static_cast<float>(i)) << "moved at " << i;
}

TEST(TiledSort, MatchesGlobalStableSortByVoxel) {
  const core::Grid g(4, 4, 8, 4, 4, 8, 0.1f);
  const core::TileMap tm(g, 4);
  core::Species sp = make_scrambled_species(g, 300);

  // Reference: stable sort of (voxel, tag) pairs.
  std::vector<std::pair<std::int32_t, float>> ref;
  ref.reserve(static_cast<std::size_t>(sp.np));
  for (index_t i = 0; i < sp.np; ++i) ref.emplace_back(sp.p(i).i, sp.p(i).ux);
  std::stable_sort(ref.begin(), ref.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });

  core::bucket_by_tile(sp, tm);
  for (int t = 0; t < tm.count(); ++t) core::sort_tile(sp, tm, t);
  core::finish_tile_sort(sp);

  for (index_t i = 0; i < sp.np; ++i) {
    ASSERT_EQ(sp.p(i).i, ref[static_cast<std::size_t>(i)].first) << i;
    ASSERT_EQ(sp.p(i).ux, ref[static_cast<std::size_t>(i)].second) << i;
  }
  for (const auto& slot : sp.tiles) {
    EXPECT_TRUE(slot.sorted_hint);
    EXPECT_EQ(slot.steps_since_sort, 0);
  }
}

TEST(TileImbalance, ReportsMaxOverMean) {
  const core::Grid g(4, 4, 4, 4, 4, 4, 0.1f);
  const core::TileMap tm(g, 4);
  core::Species sp("e", -1.0f, 1.0f, 64);
  for (int k = 0; k < 30; ++k) {  // all particles in plane 1 -> tile 0
    core::Particle p{};
    p.i = static_cast<std::int32_t>(g.voxel(1 + k % g.nx, 1, 1));
    sp.p(sp.np++) = p;
  }
  core::bucket_by_tile(sp, tm);
  EXPECT_NEAR(core::tile_imbalance(sp), 4.0, 1e-9);  // 30 / (30/4)
}

// ----------------------------------------------------------------------
// Tile seam correctness: move_p into a tile-private block, merged, must
// equal the untiled deposit — boundary, corner, and reflecting-wall
// crossings included.
// ----------------------------------------------------------------------

namespace {

// Run the same trajectory through a TileAccumulator (owned by the tile of
// the particle's starting voxel) and the global array; compare deposits
// and final particle state bit for bit.
void check_seam_crossing(const core::Grid& g, const core::TileMap& tm,
                         core::Particle start, float dx, float dy, float dz,
                         std::uint8_t periodic_mask,
                         std::uint8_t reflect_mask) {
  core::Particle p_tile = start, p_ref = start;

  core::AccumulatorArray ref(g);
  ref.clear();
  const auto r_ref = core::move_p<false>(p_ref, dx, dy, dz, 1.0f, ref, g,
                                         periodic_mask, nullptr, reflect_mask);

  const int t = tm.tile_of_voxel(start.i);
  core::TileAccumulator blk(g, tm, t);
  blk.clear();
  const auto r_tile = core::move_p<false>(p_tile, dx, dy, dz, 1.0f, blk, g,
                                          periodic_mask, nullptr, reflect_mask);
  core::AccumulatorArray merged(g);
  merged.clear();
  blk.merge_into(merged);

  EXPECT_EQ(r_tile, r_ref);
  EXPECT_EQ(p_tile.i, p_ref.i);
  EXPECT_FLOAT_EQ(p_tile.dx, p_ref.dx);
  EXPECT_FLOAT_EQ(p_tile.dy, p_ref.dy);
  EXPECT_FLOAT_EQ(p_tile.dz, p_ref.dz);
  EXPECT_FLOAT_EQ(p_tile.ux, p_ref.ux);
  EXPECT_FLOAT_EQ(p_tile.uy, p_ref.uy);
  EXPECT_FLOAT_EQ(p_tile.uz, p_ref.uz);
  expect_acc_equal(merged, ref);
}

}  // namespace

TEST(TileSeams, ZBoundaryCrossingDepositsIntoGhostPlaneWindow) {
  const core::Grid g(4, 4, 8, 4, 4, 8, 0.1f);
  const core::TileMap tm(g, 2);  // seam between planes 4 and 5
  core::Particle p{};
  p.dz = 0.6f;
  p.i = static_cast<std::int32_t>(g.voxel(2, 2, tm.z_hi(0)));
  p.uz = 0.5f;
  check_seam_crossing(g, tm, p, 0.0f, 0.0f, 0.8f, 0b111, 0);
}

TEST(TileSeams, CornerCrossingThroughSeamPlane) {
  const core::Grid g(4, 4, 8, 4, 4, 8, 0.1f);
  const core::TileMap tm(g, 2);
  core::Particle p{};
  p.dx = 0.9f;
  p.dy = 0.9f;
  p.dz = 0.9f;
  p.i = static_cast<std::int32_t>(g.voxel(3, 3, tm.z_hi(0)));
  // Crosses +x, +y, and the +z seam in one move: four deposit segments,
  // the last landing in the neighbor tile's first plane (our ghost plane).
  check_seam_crossing(g, tm, p, 0.8f, 0.8f, 0.8f, 0b111, 0);
}

TEST(TileSeams, ReflectingWallAtDomainFace) {
  const core::Grid g(4, 4, 8, 4, 4, 8, 0.1f);
  const core::TileMap tm(g, 2);
  core::Particle p{};
  p.dz = 0.5f;
  p.i = static_cast<std::int32_t>(g.voxel(2, 2, g.nz));  // top plane, tile 1
  p.uz = 1.0f;
  check_seam_crossing(g, tm, p, 0.0f, 0.0f, 0.9f, 0b011, 0b100);
}

TEST(TileSeams, PeriodicZWrapLandsInOverflowAndMergesExactly) {
  const core::Grid g(4, 4, 8, 4, 4, 8, 0.1f);
  const core::TileMap tm(g, 2);
  core::Particle start{};
  start.dz = 0.9f;
  start.i = static_cast<std::int32_t>(g.voxel(2, 2, g.nz));
  check_seam_crossing(g, tm, start, 0.0f, 0.0f, 0.4f, 0b111, 0);

  // The wrapped deposit (plane 1) is outside tile 1's window (planes
  // 3..9): confirm the overflow map actually caught it.
  core::Particle p = start;
  core::TileAccumulator blk(g, tm, 1);
  blk.clear();
  (void)core::move_p<false>(p, 0.0f, 0.0f, 0.4f, 1.0f, blk, g);
  EXPECT_GE(blk.overflow_size(), 1u);
}

TEST(TileAccumulator, ClearResetsWindowAndOverflow) {
  const core::Grid g(4, 4, 8, 4, 4, 8, 0.1f);
  const core::TileMap tm(g, 2);
  core::TileAccumulator blk(g, tm, 0);
  blk.clear();
  blk.a(g.voxel(2, 2, 2)).jx[0] = 1.0f;                // window
  blk.a(g.voxel(2, 2, g.nz)).jy[1] = 2.0f;             // overflow
  EXPECT_EQ(blk.overflow_size(), 1u);
  blk.clear();
  EXPECT_EQ(blk.overflow_size(), 0u);
  core::AccumulatorArray merged(g);
  merged.clear();
  blk.merge_into(merged);
  for (index_t v = 0; v < merged.a.size(); ++v)
    for (int c = 0; c < 4; ++c) ASSERT_EQ(merged.a(v).jx[c], 0.0f);
}

// ----------------------------------------------------------------------
// Work-stealing pool.
// ----------------------------------------------------------------------

TEST(StealPool, RunsEverySeededTaskExactlyOnce) {
  pk::StealPool pool(4);
  constexpr int kTasks = 64;
  std::vector<std::atomic<int>> ran(kTasks);
  for (int k = 0; k < kTasks; ++k)
    pool.seed(k % pool.workers(), [&ran, k] { ran[static_cast<std::size_t>(k)]++; });
  const auto stats = pool.run();
  EXPECT_EQ(stats.tasks_run, static_cast<std::uint64_t>(kTasks));
  for (int k = 0; k < kTasks; ++k) EXPECT_EQ(ran[static_cast<std::size_t>(k)].load(), 1) << k;
}

TEST(StealPool, StealsWhenSeedingIsLopsided) {
  pk::StealPool pool(4);
  std::atomic<int> ran{0};
  // Everything lands on worker 0's deque; the other three must steal.
  // Tasks sleep (not spin) so on a 1-CPU box the owner yields the core
  // mid-task and the thieves actually get scheduled while work remains.
  for (int k = 0; k < 100; ++k)
    pool.seed(0, [&ran] {
      std::this_thread::sleep_for(std::chrono::microseconds(300));
      ran++;
    });
  const auto stats = pool.run();
  EXPECT_EQ(ran.load(), 100);
  EXPECT_GT(stats.steal_attempts, 0u);
  EXPECT_GT(stats.tasks_stolen, 0u);
}

TEST(StealPool, SpawnFromInsideATaskRunsInSameRound) {
  pk::StealPool pool(2);
  std::atomic<int> ran{0};
  pool.seed(0, [&pool, &ran] {
    ran++;
    for (int k = 0; k < 8; ++k) pool.spawn([&ran] { ran++; });
  });
  const auto stats = pool.run();
  EXPECT_EQ(ran.load(), 9);
  EXPECT_EQ(stats.tasks_run, 9u);
}

TEST(StealPool, CurrentWorkerIsSetInsideTasksOnly) {
  pk::StealPool pool(3);
  EXPECT_EQ(pk::StealPool::current_worker(), -1);
  std::atomic<int> bad{0};
  for (int k = 0; k < 12; ++k)
    pool.seed(k % 3, [&bad] {
      const int w = pk::StealPool::current_worker();
      if (w < 0 || w >= 3) bad++;
    });
  pool.run();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(pk::StealPool::current_worker(), -1);
}

TEST(StealPool, FirstExceptionPropagatesAfterRoundDrains) {
  pk::StealPool pool(2);
  std::atomic<int> ran{0};
  pool.seed(0, [] { throw std::runtime_error("task boom"); });
  for (int k = 0; k < 10; ++k) pool.seed(k % 2, [&ran] { ran++; });
  EXPECT_THROW(pool.run(), std::runtime_error);
  EXPECT_EQ(ran.load(), 10);  // the round still drained
  // The pool stays usable for the next round.
  pool.seed(1, [&ran] { ran++; });
  EXPECT_NO_THROW(pool.run());
  EXPECT_EQ(ran.load(), 11);
}

// ----------------------------------------------------------------------
// StepGraph serial + stealing executors.
// ----------------------------------------------------------------------

TEST(StepGraphSerial, RunsPhasesInInsertionOrder) {
  core::StepGraph g;
  std::vector<std::string> order;
  for (const char* n : {"a", "b", "c"})
    g.add_phase({n, {}, {std::string("res.") + n}, [&order, n] { order.emplace_back(n); }});
  g.add_edge("a", "b");
  g.add_edge("b", "c");
  g.execute_serial();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "a");
  EXPECT_EQ(order[1], "b");
  EXPECT_EQ(order[2], "c");
  EXPECT_EQ(g.last_concurrency_peak(), 1u);
}

TEST(StepGraphSerial, BackwardEdgeRejected) {
  core::StepGraph g;
  g.add_phase({"a", {}, {"ra"}, [] {}});
  g.add_phase({"b", {}, {"rb"}, [] {}});
  g.add_edge("b", "a");  // acyclic, but violates insertion order
  EXPECT_THROW(g.execute_serial(), std::logic_error);
}

TEST(StepGraphStealing, RespectsDependenciesAndRunsEverything) {
  pk::StealPool pool(3);
  core::StepGraph g;
  std::atomic<int> done_a{0};
  std::atomic<int> bad{0};
  std::atomic<int> mids{0};
  g.add_phase({"a", {}, {"x"}, [&done_a] { done_a = 1; }, 4.0});
  for (int k = 0; k < 6; ++k) {
    const std::string name = "mid" + std::to_string(k);
    g.add_phase({name,
                 {"x"},
                 {"y" + std::to_string(k)},
                 [&done_a, &bad, &mids] {
                   if (!done_a.load()) bad++;
                   mids++;
                 },
                 1.0 + k});
    g.add_edge("a", name);
  }
  g.add_phase({"z",
               {},
               {"z"},
               [&mids, &bad] {
                 if (mids.load() != 6) bad++;
               }});
  for (int k = 0; k < 6; ++k) g.add_edge("mid" + std::to_string(k), "z");
  g.validate();
  const auto stats = g.execute_stealing(pool);
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(stats.tasks_run, 8u);
  EXPECT_EQ(g.last_stats().size(), 8u);
}

TEST(StepGraphStealing, TaskExceptionPropagates) {
  pk::StealPool pool(2);
  core::StepGraph g;
  g.add_phase({"boom", {}, {"x"}, [] { throw std::runtime_error("phase boom"); }});
  g.add_phase({"after", {"x"}, {"y"}, [] {}});
  g.add_edge("boom", "after");
  EXPECT_THROW(g.execute_stealing(pool), std::runtime_error);
}

// ----------------------------------------------------------------------
// Clumped LPI deck (LpiParams::clump_factor).
// ----------------------------------------------------------------------

TEST(ClumpedDeck, ZeroFactorIsBitwiseIdenticalToBaseline) {
  core::decks::LpiParams p;
  p.nx = 8;
  p.ny = 4;
  p.nz = 6;
  p.ppc = 4;
  core::Simulation base = core::decks::make_lpi(p);
  p.clump_factor = 0.0f;
  core::Simulation zero = core::decks::make_lpi(p);
  expect_bitwise_equal(base, zero);
}

TEST(ClumpedDeck, ClumpingConcentratesParticlesNotCharge) {
  core::decks::LpiParams p;
  p.nx = 8;
  p.ny = 4;
  p.nz = 12;
  p.ppc = 4;
  core::Simulation uni = core::decks::make_lpi(p);
  p.clump_factor = 6.0f;
  core::Simulation clump = core::decks::make_lpi(p);

  const auto& su = uni.species(0);
  const auto& sc = clump.species(0);
  EXPECT_GT(sc.np, su.np);  // boosted cells carry extra particles

  // Per-cell: particle count varies, summed weight stays 1 (the weight is
  // divided by the same boost, so the physical density is unchanged).
  std::map<std::int32_t, int> count;
  std::map<std::int32_t, double> weight;
  for (index_t i = 0; i < sc.np; ++i) {
    count[sc.p(i).i]++;
    weight[sc.p(i).i] += static_cast<double>(sc.p(i).w);
  }
  int min_c = 1 << 30, max_c = 0;
  for (const auto& [v, c] : count) {
    min_c = std::min(min_c, c);
    max_c = std::max(max_c, c);
  }
  EXPECT_GT(max_c, p.ppc);       // center cells clumped
  EXPECT_LE(min_c, p.ppc);       // edge cells at baseline
  for (const auto& [v, w] : weight) EXPECT_NEAR(w, 1.0, 1e-5) << "voxel " << v;
}

// ----------------------------------------------------------------------
// Tiled simulation: determinism-mode bit-identity, stealing-mode
// bit-determinism across worker counts, telemetry, per-tile staleness.
// ----------------------------------------------------------------------

TEST(TiledStep, DeterministicModeBitIdenticalToUntiledOver100Steps) {
  core::decks::LpiParams p;
  p.nx = 12;
  p.ny = 6;
  p.nz = 6;
  p.ppc = 4;
  core::Simulation tiled = core::decks::make_lpi(p);
  core::Simulation ref = core::decks::make_lpi(p);
  tiled.config().tiles.enabled = true;
  tiled.config().tiles.count = 3;
  tiled.config().tiles.exec = core::TileExec::Deterministic;
  tiled.config().energy_interval = 10;
  ref.config().scheduler = core::StepScheduler::Sequential;
  ref.config().energy_interval = 10;

  // 100 steps crosses the sort interval (20) several times, so the tiled
  // bucket + per-tile sort path is exercised against the global sort.
  tiled.run(100);
  ref.run(100);
  EXPECT_EQ(tiled.step_count(), 100);
  expect_bitwise_equal(tiled, ref);

  const auto& ha = tiled.energy_history();
  const auto& hb = ref.energy_history();
  ASSERT_EQ(ha.size(), hb.size());
  ASSERT_GT(ha.size(), 0u);
  for (std::size_t i = 0; i < ha.size(); ++i) {
    EXPECT_EQ(ha.step(i), hb.step(i));
    EXPECT_EQ(ha.field(i), hb.field(i));
    EXPECT_EQ(ha.kinetic(i), hb.kinetic(i));
  }
}

TEST(TiledStep, DeterministicModeBitIdenticalOnClumpedDeck) {
  core::decks::LpiParams p;
  p.nx = 8;
  p.ny = 4;
  p.nz = 8;
  p.ppc = 4;
  p.clump_factor = 4.0f;
  core::Simulation tiled = core::decks::make_lpi(p);
  core::Simulation ref = core::decks::make_lpi(p);
  tiled.config().tiles.enabled = true;
  tiled.config().tiles.count = 4;
  tiled.config().tiles.exec = core::TileExec::Deterministic;
  ref.config().scheduler = core::StepScheduler::Sequential;
  tiled.run(40);
  ref.run(40);
  expect_bitwise_equal(tiled, ref);
}

TEST(TiledStep, StealingModeBitDeterministicAcrossWorkerCounts) {
  core::decks::LpiParams p;
  p.nx = 8;
  p.ny = 4;
  p.nz = 8;
  p.ppc = 4;
  p.clump_factor = 4.0f;

  auto run_with = [&p](int workers) {
    core::Simulation sim = core::decks::make_lpi(p);
    sim.config().tiles.enabled = true;
    sim.config().tiles.count = 4;
    sim.config().tiles.exec = core::TileExec::Stealing;
    sim.config().tiles.workers = workers;
    sim.run(40);
    return sim;
  };
  core::Simulation a = run_with(2);
  core::Simulation b = run_with(4);
  core::Simulation c = run_with(2);  // same worker count, fresh run
  expect_bitwise_equal(a, b);
  expect_bitwise_equal(a, c);
  EXPECT_GT(a.last_tile_stats().steal.tasks_run, 0u);
}

TEST(TiledStep, PublishesTileTelemetry) {
  core::decks::LpiParams p;
  p.nx = 8;
  p.ny = 4;
  p.nz = 12;
  p.ppc = 4;
  p.clump_factor = 6.0f;
  core::Simulation sim = core::decks::make_lpi(p);
  sim.config().tiles.enabled = true;
  sim.config().tiles.count = 4;
  sim.config().tiles.exec = core::TileExec::Stealing;
  sim.config().tiles.workers = 2;
  sim.step();
  const auto& st = sim.last_tile_stats();
  EXPECT_EQ(st.tiles, 4);
  EXPECT_GT(st.imbalance, 1.05);  // the clump loads the middle tiles
  EXPECT_GT(st.steal.tasks_run, 0u);
  EXPECT_EQ(sim.tile_map().count(), 4);
  // Phase stats carry per-tile push phases.
  bool saw_tile_push = false;
  for (const auto& ps : sim.last_phase_stats())
    if (ps.name.rfind("push[", 0) == 0 &&
        ps.name.find(".t") != std::string::npos)
      saw_tile_push = true;
  EXPECT_TRUE(saw_tile_push);
}

TEST(TiledStep, PerTileSortednessAgesAndResetsAtSortSteps) {
  core::decks::LpiParams p;
  p.nx = 8;
  p.ny = 4;
  p.nz = 6;
  p.ppc = 2;
  core::Simulation sim = core::decks::make_lpi(p);
  sim.config().tiles.enabled = true;
  sim.config().tiles.count = 3;
  sim.config().tiles.exec = core::TileExec::Stealing;
  sim.config().tiles.workers = 2;
  sim.config().sort_interval = 5;

  sim.run(5);  // step 5 is a sort step: slots end freshly sorted
  for (const auto& slot : sim.species(0).tiles) {
    EXPECT_TRUE(slot.sorted_hint);
    EXPECT_EQ(slot.steps_since_sort, 0);
  }
  sim.step();  // one more step ages every slot by one
  for (const auto& slot : sim.species(0).tiles)
    EXPECT_EQ(slot.steps_since_sort, 1);
}

TEST(TiledStep, PhasePollFiresAtTileGranularity) {
  core::decks::LpiParams p;
  p.nx = 8;
  p.ny = 4;
  p.nz = 8;
  p.ppc = 2;
  core::Simulation sim = core::decks::make_lpi(p);
  sim.config().tiles.enabled = true;
  sim.config().tiles.count = 4;
  sim.config().tiles.exec = core::TileExec::Deterministic;
  std::atomic<int> polls{0};
  sim.set_phase_poll([&polls] { polls++; });
  sim.step();
  // At minimum one poll per per-tile interp and push phase: far more
  // observation points per step than the untiled step's single yield.
  EXPECT_GE(polls.load(), 8);
}

TEST(TiledStep, RequiresStandardSortOrder) {
  core::decks::LpiParams p;
  p.nx = 8;
  p.ny = 4;
  p.nz = 4;
  p.ppc = 2;
  core::Simulation sim = core::decks::make_lpi(p);
  sim.config().tiles.enabled = true;
  sim.config().sort_order = vpic::sort::SortOrder::Strided;
  EXPECT_THROW(sim.step(), std::logic_error);
}

TEST(TiledStep, RunAwareProfitableRangeRespectsTileStaleness) {
  core::decks::LpiParams p;
  p.nx = 8;
  p.ny = 4;
  p.nz = 4;
  p.ppc = 4;
  core::Simulation sim = core::decks::make_lpi(p);
  const auto& sp = sim.species(0);
  // Unsorted or unknown-staleness tiles must never take the run-aware path.
  EXPECT_FALSE(core::run_aware_profitable_range(sp, 0, sp.np, false, 0));
  EXPECT_FALSE(core::run_aware_profitable_range(sp, 0, sp.np, true, -1));
  EXPECT_FALSE(core::run_aware_profitable_range(sp, 5, 5, true, 0));  // empty
}
