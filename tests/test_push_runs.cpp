// Run-aware push pipeline tests (docs/PUSH.md): run segmentation and the
// sampled sortedness probe, physics equivalence of the run-aware variants
// against the generic per-particle kernels on sorted / unsorted /
// adversarial particle orders, charge conservation through the fast path,
// the AutoDetect dispatch heuristic plus Species sortedness tracking, the
// Simulation-level plumbing, and the exit-queue concurrency guard.
#include <gtest/gtest.h>

#include <cmath>
#include <mutex>
#include <numeric>
#include <vector>

#include "core/core.hpp"
#include "sort/runs.hpp"

namespace core = vpic::core;
namespace pk = vpic::pk;
namespace vs = vpic::sort;
using pk::index_t;

namespace {

std::vector<vs::CellRun> runs_of(const std::vector<std::uint32_t>& keys) {
  std::vector<vs::CellRun> out;
  vs::segment_runs(
      static_cast<index_t>(keys.size()),
      [&keys](index_t i) { return keys[static_cast<std::size_t>(i)]; }, out);
  return out;
}

/// A small thermal plasma on a 6^3 grid; ppc 4 gives 864 particles, above
/// the dispatch heuristic's minimum population.
core::Simulation make_sim(core::VectorStrategy strat, int ppc = 4,
                          std::uint64_t seed = 7,
                          core::ParticleLayout layout =
                              core::ParticleLayout::AoS) {
  core::SimulationConfig cfg;
  cfg.grid = core::Grid(6, 6, 6, 6, 6, 6, 0);
  cfg.grid.dt = core::Grid::courant_dt(1, 1, 1, 0.65f);
  cfg.strategy = strat;
  cfg.sort_interval = 0;
  cfg.seed = seed;
  cfg.layout = layout;
  core::Simulation sim(cfg);
  const auto s = sim.add_species("e", -1.0f, 1.0f,
                                 static_cast<index_t>(6 * 6 * 6 * ppc));
  sim.load_uniform_plasma(s, ppc, 0.25f, 0.08f, -0.05f, 0.1f);
  return sim;
}

/// Reorder sp's particles adversarially for the run-aware path: cell-sort,
/// then deal particles round-robin one per cell so adjacent slots almost
/// never share a cell (maximally short runs).
void adversarial_order(core::Species& sp, index_t key_bound) {
  core::sort_particles(sp, vs::SortOrder::Standard, 0, 1, key_bound);
  std::vector<vs::CellRun> runs;
  const auto& pp = sp.p;
  vs::segment_runs(
      sp.np, [&pp](index_t i) { return pp.cell(i); }, runs);
  std::vector<core::Particle> shuffled;
  shuffled.reserve(static_cast<std::size_t>(sp.np));
  std::vector<index_t> taken(runs.size(), 0);
  for (index_t round = 0; shuffled.size() <
                          static_cast<std::size_t>(sp.np);
       ++round)
    for (std::size_t r = 0; r < runs.size(); ++r)
      if (round < runs[r].count)
        shuffled.push_back(sp.p.get(runs[r].begin + round));
  for (index_t i = 0; i < sp.np; ++i)
    sp.p.set(i, shuffled[static_cast<std::size_t>(i)]);
  sp.mark_sorted(false);
}

struct PushOutcome {
  std::vector<core::Particle> particles;
  std::vector<float> acc;  // flattened accumulator slots
  core::PushPath path;
};

PushOutcome push_once(core::Simulation& sim,
                      const std::vector<core::Particle>& initial,
                      core::VectorStrategy strat, core::PushPath path) {
  auto& sp = sim.species(0);
  sp.p.import_aos(initial.data(), sp.np);
  sim.interpolator().load(sim.fields());
  sim.accumulator().clear();
  PushOutcome out;
  out.path = core::advance_species(sp, sim.interpolator(),
                                   sim.accumulator(), sim.grid(), strat,
                                   {}, path);
  out.particles.resize(static_cast<std::size_t>(sp.np));
  sp.p.export_aos(out.particles.data(), sp.np);
  const auto& a = sim.accumulator().a;
  for (index_t v = 0; v < a.size(); ++v)
    for (int c = 0; c < 4; ++c) {
      out.acc.push_back(a(v).jx[c]);
      out.acc.push_back(a(v).jy[c]);
      out.acc.push_back(a(v).jz[c]);
    }
  return out;
}

}  // namespace

// ----------------------------------------------------------------------
// Run segmentation and the sampled probe.
// ----------------------------------------------------------------------

TEST(RunSegmentation, KnownSequence) {
  const auto runs = runs_of({3, 3, 3, 7, 7, 1});
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].cell, 3);
  EXPECT_EQ(runs[0].begin, 0);
  EXPECT_EQ(runs[0].count, 3);
  EXPECT_EQ(runs[1].cell, 7);
  EXPECT_EQ(runs[1].begin, 3);
  EXPECT_EQ(runs[1].count, 2);
  EXPECT_EQ(runs[2].cell, 1);
  EXPECT_EQ(runs[2].begin, 5);
  EXPECT_EQ(runs[2].count, 1);
}

TEST(RunSegmentation, EmptyAndSingleton) {
  EXPECT_TRUE(runs_of({}).empty());
  const auto one = runs_of({42});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].cell, 42);
  EXPECT_EQ(one[0].count, 1);
}

TEST(RunSegmentation, CoversEverySlotExactlyOnce) {
  const std::vector<std::uint32_t> keys = {5, 5, 2, 2, 2, 9, 5, 5, 5, 5};
  const auto runs = runs_of(keys);
  index_t covered = 0;
  for (std::size_t r = 0; r < runs.size(); ++r) {
    if (r > 0) {
      EXPECT_EQ(runs[r].begin, runs[r - 1].begin + runs[r - 1].count);
      EXPECT_NE(runs[r].cell, runs[r - 1].cell);  // maximality
    }
    covered += runs[r].count;
  }
  EXPECT_EQ(covered, static_cast<index_t>(keys.size()));
}

TEST(RunProbe, EstimatesSyntheticRunLength) {
  // 1024 keys in runs of exactly 8: the sampled boundary rate implies a
  // mean run length near 8 (sampling phase makes it approximate).
  std::vector<std::uint32_t> keys(1024);
  for (std::size_t i = 0; i < keys.size(); ++i)
    keys[i] = static_cast<std::uint32_t>(i / 8);
  const auto pr = vs::probe_runs(
      static_cast<index_t>(keys.size()),
      [&keys](index_t i) { return keys[static_cast<std::size_t>(i)]; }, 64);
  EXPECT_EQ(pr.samples, 64);
  // Sampling phase can alias against the run period, so the estimate is
  // only order-of-magnitude accurate — which is all the dispatch needs.
  EXPECT_GE(pr.mean_run_estimate(), 4.0);
  EXPECT_LE(pr.mean_run_estimate(), 32.0);
  EXPECT_DOUBLE_EQ(pr.ascending_fraction(), 1.0);
}

TEST(RunProbe, AlternatingKeysEstimateNearOne) {
  std::vector<std::uint32_t> keys(512);
  for (std::size_t i = 0; i < keys.size(); ++i)
    keys[i] = static_cast<std::uint32_t>(i % 2);
  const auto pr = vs::probe_runs(
      static_cast<index_t>(keys.size()),
      [&keys](index_t i) { return keys[static_cast<std::size_t>(i)]; }, 64);
  EXPECT_DOUBLE_EQ(pr.mean_run_estimate(), 1.0);
  EXPECT_LT(pr.ascending_fraction(), 1.0);
}

TEST(RunProbe, ExhaustiveLimitMatchesSortednessOracle) {
  for (const std::vector<std::uint32_t>& keys :
       {std::vector<std::uint32_t>{1, 2, 2, 3, 9},
        std::vector<std::uint32_t>{1, 2, 2, 1, 9},
        std::vector<std::uint32_t>{0},
        std::vector<std::uint32_t>{}}) {
    const index_t n = static_cast<index_t>(keys.size());
    const auto pr = vs::probe_runs(
        n, [&keys](index_t i) { return keys[static_cast<std::size_t>(i)]; },
        n > 1 ? n - 1 : 1);
    pk::View<std::uint32_t, 1> kv("k", n);
    for (index_t i = 0; i < n; ++i) kv(i) = keys[static_cast<std::size_t>(i)];
    EXPECT_EQ(pr.ascending_fraction() == 1.0, vs::cell_sorted_exact(kv));
  }
}

// ----------------------------------------------------------------------
// Physics equivalence: run-aware == generic on every order.
// ----------------------------------------------------------------------

class RunAwareEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(RunAwareEquivalence, MatchesGenericPush) {
  const auto strat =
      static_cast<core::VectorStrategy>(std::get<0>(GetParam()));
  const int order = std::get<1>(GetParam());
  const core::ParticleLayout layout =
      core::kAllParticleLayouts[std::get<2>(GetParam())];

  auto sim = make_sim(strat, 4, 7, layout);
  auto& sp = sim.species(0);
  switch (order) {
    case 0:  // cell-sorted: the fast path's home turf
      core::sort_particles(sp, vs::SortOrder::Standard, 0, 1,
                           sim.grid().nv());
      break;
    case 1:  // random order: all-fallback stress
      core::sort_particles(sp, vs::SortOrder::Random, 0, 99);
      break;
    case 2:  // adversarial alternating cells: maximally short runs
      adversarial_order(sp, sim.grid().nv());
      break;
  }
  std::vector<core::Particle> initial(static_cast<std::size_t>(sp.np));
  sp.p.export_aos(initial.data(), sp.np);

  const PushOutcome generic =
      push_once(sim, initial, strat, core::PushPath::Generic);
  const PushOutcome runaware =
      push_once(sim, initial, strat, core::PushPath::RunAware);
  EXPECT_EQ(generic.path, core::PushPath::Generic);
  EXPECT_EQ(runaware.path, core::PushPath::RunAware);

  ASSERT_EQ(generic.particles.size(), runaware.particles.size());
  for (std::size_t i = 0; i < generic.particles.size(); ++i) {
    const auto& a = generic.particles[i];
    const auto& b = runaware.particles[i];
    EXPECT_EQ(a.i, b.i) << "particle " << i;
    EXPECT_NEAR(a.dx, b.dx, 1e-5) << i;
    EXPECT_NEAR(a.dy, b.dy, 1e-5) << i;
    EXPECT_NEAR(a.dz, b.dz, 1e-5) << i;
    EXPECT_NEAR(a.ux, b.ux, 1e-5) << i;
    EXPECT_NEAR(a.uy, b.uy, 1e-5) << i;
    EXPECT_NEAR(a.uz, b.uz, 1e-5) << i;
    EXPECT_EQ(a.w, b.w) << i;
  }
  ASSERT_EQ(generic.acc.size(), runaware.acc.size());
  for (std::size_t k = 0; k < generic.acc.size(); ++k)
    EXPECT_NEAR(generic.acc[k], runaware.acc[k], 1e-4) << "slot " << k;
}

namespace {
std::string equivalence_name(
    const ::testing::TestParamInfo<std::tuple<int, int, int>>& info) {
  static const char* strats[] = {"Auto", "Guided", "Manual"};
  static const char* orders[] = {"Sorted", "Random", "Adversarial"};
  static const char* layouts[] = {"AoS", "SoA", "AoSoA"};
  return std::string(strats[std::get<0>(info.param)]) +
         orders[std::get<1>(info.param)] + layouts[std::get<2>(info.param)];
}
}  // namespace

INSTANTIATE_TEST_SUITE_P(
    StrategiesByOrdersByLayouts, RunAwareEquivalence,
    ::testing::Combine(::testing::Range(0, 3),   // Auto, Guided, Manual
                       ::testing::Range(0, 3),   // sorted/random/adversarial
                       ::testing::Range(0, core::kNumParticleLayouts)),
    equivalence_name);

// ----------------------------------------------------------------------
// Charge conservation through the forced run-aware path.
// ----------------------------------------------------------------------

class RunAwareContinuity : public ::testing::TestWithParam<int> {};

TEST_P(RunAwareContinuity, DivJPlusDrhoDtVanishes) {
  const int seed = GetParam();
  auto sim = make_sim(static_cast<core::VectorStrategy>(seed % 3), 2,
                      static_cast<std::uint64_t>(seed) * 131);
  auto& sp = sim.species(0);
  if (seed % 2 == 0)
    core::sort_particles(sp, vs::SortOrder::Standard, 0, 1, sim.grid().nv());

  const auto rho0 = sim.charge_density();
  sim.interpolator().load(sim.fields());
  sim.accumulator().clear();
  const auto path = core::advance_species(
      sp, sim.interpolator(), sim.accumulator(), sim.grid(),
      sim.config().strategy, {}, core::PushPath::RunAware);
  EXPECT_EQ(path, core::PushPath::RunAware);
  sim.accumulator().reduce_ghosts_periodic();
  sim.accumulator().unload(sim.fields());
  const auto rho1 = sim.charge_density();

  const auto& g = sim.grid();
  const auto& f = sim.fields();
  auto wrap = [&](int i, int n) { return i < 1 ? i + n : i; };
  double worst = 0, scale = 0;
  for (int iz = 1; iz <= g.nz; ++iz)
    for (int iy = 1; iy <= g.ny; ++iy)
      for (int ix = 1; ix <= g.nx; ++ix) {
        const index_t v = g.voxel(ix, iy, iz);
        const double drho = (rho1(v) - rho0(v)) / g.dt;
        const double divj =
            (f.jx(v) - f.jx(g.voxel(wrap(ix - 1, g.nx), iy, iz))) / g.dx +
            (f.jy(v) - f.jy(g.voxel(ix, wrap(iy - 1, g.ny), iz))) / g.dy +
            (f.jz(v) - f.jz(g.voxel(ix, iy, wrap(iz - 1, g.nz)))) / g.dz;
        worst = std::max(worst, std::abs(drho + divj));
        scale = std::max({scale, std::abs(drho), std::abs(divj)});
      }
  ASSERT_GT(scale, 0.0);
  EXPECT_LT(worst / scale, 5e-4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RunAwareContinuity, ::testing::Range(0, 6));

// ----------------------------------------------------------------------
// Sortedness tracking and the AutoDetect dispatch.
// ----------------------------------------------------------------------

TEST(PushDispatch, SortednessTrackingFollowsSortOrder) {
  auto sim = make_sim(core::VectorStrategy::Auto);
  auto& sp = sim.species(0);
  EXPECT_FALSE(sp.cell_sorted_hint);
  EXPECT_EQ(sp.steps_since_sort, -1);

  core::sort_particles(sp, vs::SortOrder::Standard, 0, 1, sim.grid().nv());
  EXPECT_TRUE(sp.cell_sorted_hint);
  EXPECT_EQ(sp.steps_since_sort, 0);
  EXPECT_TRUE(core::run_aware_profitable(sp));

  sp.mark_order_degraded();
  EXPECT_EQ(sp.steps_since_sort, 1);

  core::sort_particles(sp, vs::SortOrder::Random, 0, 3);
  EXPECT_FALSE(sp.cell_sorted_hint);
  EXPECT_EQ(sp.steps_since_sort, -1);
  EXPECT_FALSE(core::run_aware_profitable(sp));
}

TEST(PushDispatch, AutoDetectTakesRunAwareOnFreshSort) {
  auto sim = make_sim(core::VectorStrategy::Guided);
  auto& sp = sim.species(0);
  core::sort_particles(sp, vs::SortOrder::Standard, 0, 1, sim.grid().nv());
  sim.interpolator().load(sim.fields());
  sim.accumulator().clear();
  const auto path = core::advance_species(
      sp, sim.interpolator(), sim.accumulator(), sim.grid(),
      core::VectorStrategy::Guided);  // default AutoDetect
  EXPECT_EQ(path, core::PushPath::RunAware);
  // The push itself degrades the order hint by one step.
  EXPECT_EQ(sp.steps_since_sort, 1);
}

TEST(PushDispatch, ForcedGenericAndAdHocStayGeneric) {
  auto sim = make_sim(core::VectorStrategy::Auto);
  auto& sp = sim.species(0);
  core::sort_particles(sp, vs::SortOrder::Standard, 0, 1, sim.grid().nv());
  sim.interpolator().load(sim.fields());

  sim.accumulator().clear();
  EXPECT_EQ(core::advance_species(sp, sim.interpolator(), sim.accumulator(),
                                  sim.grid(), core::VectorStrategy::Auto, {},
                                  core::PushPath::Generic),
            core::PushPath::Generic);

  // AdHoc has no run-aware variant: even forced RunAware stays generic.
  core::sort_particles(sp, vs::SortOrder::Standard, 0, 1, sim.grid().nv());
  sim.accumulator().clear();
  EXPECT_EQ(core::advance_species(sp, sim.interpolator(), sim.accumulator(),
                                  sim.grid(), core::VectorStrategy::AdHoc,
                                  {}, core::PushPath::RunAware),
            core::PushPath::Generic);
}

TEST(PushDispatch, StaleOrTinyPopulationsFallBackToGeneric) {
  auto sim = make_sim(core::VectorStrategy::Auto);
  auto& sp = sim.species(0);
  core::sort_particles(sp, vs::SortOrder::Standard, 0, 1, sim.grid().nv());

  // This test exercises the gate *logic*, so pin the gates to the built-in
  // defaults — the autotuner (run by the Simulation constructor) installs
  // host-measured values that may legally admit smaller populations.
  const core::PushGates tuned = core::active_push_gates(sp.p.layout());
  core::active_push_gates(sp.p.layout()) = core::PushGates{};

  sp.steps_since_sort = 1000;  // far past the staleness window
  EXPECT_FALSE(core::run_aware_profitable(sp));

  sp.steps_since_sort = 0;
  sp.np = 100;  // below the minimum population
  EXPECT_FALSE(core::run_aware_profitable(sp));

  core::active_push_gates(sp.p.layout()) = tuned;
}

TEST(PushDispatch, StaleHintReprobesActualOrder) {
  // Hint says "sorted a few steps ago" but the array is still perfectly
  // sorted: the probe sees long runs and keeps the fast path. After an
  // adversarial reorder with the same hint, the probe rejects it.
  auto sim = make_sim(core::VectorStrategy::Auto);
  auto& sp = sim.species(0);
  core::sort_particles(sp, vs::SortOrder::Standard, 0, 1, sim.grid().nv());
  sp.steps_since_sort = 10;  // inside the staleness window: probe decides
  EXPECT_TRUE(core::run_aware_profitable(sp));

  adversarial_order(sp, sim.grid().nv());
  sp.cell_sorted_hint = true;
  sp.steps_since_sort = 10;
  EXPECT_FALSE(core::run_aware_profitable(sp));
}

// ----------------------------------------------------------------------
// Simulation-level plumbing.
// ----------------------------------------------------------------------

TEST(PushDispatch, SimulationStepsSwitchPathsAfterSort) {
  core::SimulationConfig cfg;
  cfg.grid = core::Grid(6, 6, 6, 6, 6, 6, 0);
  cfg.grid.dt = core::Grid::courant_dt(1, 1, 1, 0.65f);
  cfg.sort_interval = 1;  // sort at the end of every step
  core::Simulation sim(cfg);
  const auto s = sim.add_species("e", -1.0f, 1.0f, 6 * 6 * 6 * 4);
  sim.load_uniform_plasma(s, 4, 0.2f);

  sim.step();  // never sorted at push time
  ASSERT_EQ(sim.last_push_paths().size(), 1u);
  EXPECT_EQ(sim.last_push_paths()[0], core::PushPath::Generic);

  sim.step();  // sorted at the end of step 1: fast path engages
  EXPECT_EQ(sim.last_push_paths()[0], core::PushPath::RunAware);
}

TEST(PushDispatch, SimulationConfigCanPinGeneric) {
  core::SimulationConfig cfg;
  cfg.grid = core::Grid(6, 6, 6, 6, 6, 6, 0);
  cfg.grid.dt = core::Grid::courant_dt(1, 1, 1, 0.65f);
  cfg.sort_interval = 1;
  cfg.push_path = core::PushPath::Generic;
  core::Simulation sim(cfg);
  const auto s = sim.add_species("e", -1.0f, 1.0f, 6 * 6 * 6 * 4);
  sim.load_uniform_plasma(s, 4, 0.2f);
  sim.run(2);
  EXPECT_EQ(sim.last_push_paths()[0], core::PushPath::Generic);
}

// ----------------------------------------------------------------------
// Exit-queue concurrency guard.
// ----------------------------------------------------------------------

TEST(ExitQueueGuard, RejectsUnguardedQueueUnderConcurrency) {
  auto sim = make_sim(core::VectorStrategy::Auto);
  auto& sp = sim.species(0);
  sim.interpolator().load(sim.fields());
  sim.accumulator().clear();

  std::vector<core::ExitRecord> exits;
  core::MoverOptions opts;
  opts.periodic_mask = 0b011;  // z exits possible
  opts.exits = &exits;
  opts.exits_mutex = nullptr;  // the race the guard exists to catch

  if (pk::DefaultExecSpace::concurrency() > 1) {
    EXPECT_THROW(core::advance_species(sp, sim.interpolator(),
                                       sim.accumulator(), sim.grid(),
                                       core::VectorStrategy::Auto, opts),
                 std::logic_error);
  } else {
    EXPECT_NO_THROW(core::advance_species(sp, sim.interpolator(),
                                          sim.accumulator(), sim.grid(),
                                          core::VectorStrategy::Auto, opts));
  }

  // With the mutex supplied the same call is always legal. Clear the
  // tombstones the first (no-throw) path may have left before re-pushing.
  core::compact_exited(sp);
  exits.clear();
  std::mutex m;
  opts.exits_mutex = &m;
  sim.accumulator().clear();
  EXPECT_NO_THROW(core::advance_species(sp, sim.interpolator(),
                                        sim.accumulator(), sim.grid(),
                                        core::VectorStrategy::Auto, opts));
}
