// Property-based (randomized) test sweeps across module boundaries:
// charge conservation of random particle walks, sort fuzzing against
// std::sort, strategy-equivalence fuzzing of the push, and cache-model
// invariants under random streams. Deterministic seeds so failures
// reproduce.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>

#include "core/core.hpp"
#include "gpusim/gpusim.hpp"
#include "sort/order_checks.hpp"
#include "sort/sorters.hpp"

namespace core = vpic::core;
namespace pk = vpic::pk;
namespace vs = vpic::sort;
using pk::index_t;

// ----------------------------------------------------------------------
// move_p: random walks conserve deposited charge flux exactly.
// ----------------------------------------------------------------------

class MovePFuzz : public ::testing::TestWithParam<int> {};

TEST_P(MovePFuzz, RandomWalkDepositsMatchDisplacement) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  std::uniform_real_distribution<float> pos(-0.999f, 0.999f);
  std::uniform_real_distribution<float> disp(-1.8f, 1.8f);  // multi-crossing
  std::uniform_int_distribution<int> cell(1, 6);

  const core::Grid g(6, 6, 6, 6, 6, 6, 0.1f);
  core::AccumulatorArray acc(g);
  acc.clear();

  float total_dx = 0, total_dy = 0, total_dz = 0;
  const float qw = 1.0f;
  for (int trial = 0; trial < 200; ++trial) {
    core::Particle p{};
    p.dx = pos(rng);
    p.dy = pos(rng);
    p.dz = pos(rng);
    p.i = static_cast<std::int32_t>(g.voxel(cell(rng), cell(rng), cell(rng)));
    const float ddx = disp(rng), ddy = disp(rng), ddz = disp(rng);
    const auto r = core::move_p(p, ddx, ddy, ddz, qw, acc, g);
    EXPECT_NE(r, core::MoveResult::Exited);
    EXPECT_TRUE(g.is_interior(p.i));
    EXPECT_LE(std::abs(p.dx), 1.0f + 1e-5f);
    total_dx += ddx;
    total_dy += ddy;
    total_dz += ddz;
  }

  // Charge-flux conservation: the sum of all accumulator jx slots equals
  // 4 * q * (total x displacement), regardless of how segments were split
  // across cells and periodic wraps. fp32 accumulation over ~200 * 16
  // deposits: tolerance scales with the walk length.
  double jx_sum = 0, jy_sum = 0, jz_sum = 0;
  for (index_t v = 0; v < acc.a.size(); ++v)
    for (int c = 0; c < 4; ++c) {
      jx_sum += acc.a(v).jx[c];
      jy_sum += acc.a(v).jy[c];
      jz_sum += acc.a(v).jz[c];
    }
  EXPECT_NEAR(jx_sum, 4.0 * qw * total_dx, 2e-4);
  EXPECT_NEAR(jy_sum, 4.0 * qw * total_dy, 2e-4);
  EXPECT_NEAR(jz_sum, 4.0 * qw * total_dz, 2e-4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MovePFuzz, ::testing::Range(1, 9));

// ----------------------------------------------------------------------
// Continuity fuzz: random plasmas, random strategies — div J + drho/dt = 0.
// ----------------------------------------------------------------------

class ContinuityFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ContinuityFuzz, HoldsForRandomPlasmaAndStrategy) {
  const int seed = GetParam();
  core::SimulationConfig cfg;
  cfg.grid = core::Grid(5, 5, 5, 5, 5, 5, 0);
  cfg.grid.dt = core::Grid::courant_dt(1, 1, 1, 0.65f);
  cfg.sort_interval = 0;
  cfg.seed = static_cast<std::uint64_t>(seed) * 101;
  cfg.strategy = static_cast<core::VectorStrategy>(seed % 4);
  core::Simulation sim(cfg);
  const auto s = sim.add_species("e", -1.0f, 1.0f, 2000);
  sim.load_uniform_plasma(s, 2, 0.3f, 0.1f * (seed % 3), -0.05f, 0.12f);

  const auto rho0 = sim.charge_density();
  sim.interpolator().load(sim.fields());
  sim.accumulator().clear();
  core::advance_species(sim.species(s), sim.interpolator(),
                        sim.accumulator(), cfg.grid, cfg.strategy);
  sim.accumulator().reduce_ghosts_periodic();
  sim.accumulator().unload(sim.fields());
  const auto rho1 = sim.charge_density();

  const auto& g = sim.grid();
  const auto& f = sim.fields();
  auto wrap = [&](int i, int n) { return i < 1 ? i + n : i; };
  double worst = 0, scale = 0;
  for (int iz = 1; iz <= g.nz; ++iz)
    for (int iy = 1; iy <= g.ny; ++iy)
      for (int ix = 1; ix <= g.nx; ++ix) {
        const index_t v = g.voxel(ix, iy, iz);
        const double drho = (rho1(v) - rho0(v)) / g.dt;
        const double divj =
            (f.jx(v) - f.jx(g.voxel(wrap(ix - 1, g.nx), iy, iz))) / g.dx +
            (f.jy(v) - f.jy(g.voxel(ix, wrap(iy - 1, g.ny), iz))) / g.dy +
            (f.jz(v) - f.jz(g.voxel(ix, iy, wrap(iz - 1, g.nz)))) / g.dz;
        worst = std::max(worst, std::abs(drho + divj));
        scale = std::max({scale, std::abs(drho), std::abs(divj)});
      }
  ASSERT_GT(scale, 0.0);
  EXPECT_LT(worst / scale, 5e-4)
      << "strategy " << core::to_string(cfg.strategy);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContinuityFuzz, ::testing::Range(0, 8));

// ----------------------------------------------------------------------
// Sorting fuzz across distributions.
// ----------------------------------------------------------------------

class SortFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SortFuzz, AllAlgorithmsPreservePairsOnSkewedInputs) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  std::uniform_int_distribution<index_t> size_dist(1, 3000);
  const index_t n = size_dist(rng);

  // Skewed (Zipf-ish) key distribution: realistic for particles bunched
  // into few cells by an instability.
  std::uniform_real_distribution<double> u(0.0, 1.0);
  const std::uint32_t nkeys = 1 + static_cast<std::uint32_t>(
                                      u(rng) * 200);
  pk::View<std::uint32_t, 1> keys("k", n), vals("v", n);
  for (index_t i = 0; i < n; ++i) {
    const double x = u(rng);
    keys(i) = static_cast<std::uint32_t>(
        static_cast<double>(nkeys) * x * x);  // quadratic skew
    vals(i) = static_cast<std::uint32_t>(i);
  }
  pk::View<std::uint32_t, 1> k0("k0", n), v0("v0", n);
  pk::deep_copy(k0, keys);
  pk::deep_copy(v0, vals);

  for (auto order : {vs::SortOrder::Standard, vs::SortOrder::Strided,
                     vs::SortOrder::TiledStrided}) {
    pk::View<std::uint32_t, 1> k("k", n), v("v", n);
    pk::deep_copy(k, k0);
    pk::deep_copy(v, v0);
    const std::uint32_t tile = 1 + static_cast<std::uint32_t>(u(rng) * 64);
    vs::sort_pairs(order, k, v, tile);
    EXPECT_TRUE(vs::pairs_preserved(k, v, k0, v0))
        << vs::to_string(order) << " n=" << n;
    if (order == vs::SortOrder::Standard) {
      EXPECT_TRUE(vs::is_sorted_ascending(k));
    }
    if (order == vs::SortOrder::Strided) {
      EXPECT_TRUE(vs::is_strided_order(k));
    }
    if (order == vs::SortOrder::TiledStrided) {
      EXPECT_TRUE(vs::is_tiled_strided_order(k, tile));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SortFuzz, ::testing::Range(1, 13));

TEST(SortFuzz, ComparisonBackendAgreesWithRadix) {
  std::mt19937_64 rng(42);
  for (int trial = 0; trial < 10; ++trial) {
    const index_t n = 500 + trial * 137;
    pk::View<std::uint32_t, 1> ka("ka", n), va("va", n), kb("kb", n),
        vb("vb", n);
    for (index_t i = 0; i < n; ++i) {
      const auto k = static_cast<std::uint32_t>(rng() % 1000);
      ka(i) = kb(i) = k;
      va(i) = vb(i) = static_cast<std::uint32_t>(i);
    }
    vs::sort_by_key(ka, va);
    vs::sort_by_key_comparison(kb, vb);
    for (index_t i = 0; i < n; ++i) {
      EXPECT_EQ(ka(i), kb(i));
      EXPECT_EQ(va(i), vb(i));  // both stable: identical value order
    }
  }
}

// ----------------------------------------------------------------------
// Cache model invariants under random streams.
// ----------------------------------------------------------------------

TEST(CacheFuzz, HitsPlusMissesEqualsAccesses) {
  std::mt19937_64 rng(7);
  vpic::gpusim::CacheModel c(1 << 16, 64, 8);
  const int n = 20000;
  for (int i = 0; i < n; ++i) c.access(rng() % 4096);
  EXPECT_EQ(c.hits() + c.misses(), static_cast<std::uint64_t>(n));
  EXPECT_GT(c.hit_rate(), 0.0);
  EXPECT_LT(c.hit_rate(), 1.0);
}

TEST(CacheFuzz, SmallerCacheNeverHitsMore) {
  std::mt19937_64 rng(11);
  std::vector<std::uint64_t> stream(30000);
  for (auto& s : stream) s = rng() % 8192;
  double prev_rate = -1;
  for (const std::uint64_t kb : {16u, 64u, 256u, 1024u}) {
    vpic::gpusim::CacheModel c(kb * 1024, 64, 16);
    for (auto s : stream) c.access(s);
    EXPECT_GE(c.hit_rate(), prev_rate) << kb << " KB";
    prev_rate = c.hit_rate();
  }
}
