// tests/test_prof.cpp — the vpic::prof observability subsystem:
// hierarchical region aggregation, kernel dispatches as child regions,
// unbalanced/open region accounting, chrome://tracing output
// well-formedness (parsed with a minimal JSON parser below), the <1%
// disabled-dispatch overhead contract of pk/prof_hooks.hpp, and View
// allocation event pairing / pk::view_alloc_count delegation.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "pk/pk.hpp"
#include "prof/prof.hpp"

namespace {

using namespace vpic;

// ---------------------------------------------------------------------
// Minimal strict JSON parser — just enough to verify that the trace and
// report emitters produce well-formed documents and to inspect them.
// ---------------------------------------------------------------------
struct JV {
  enum class T { Null, Bool, Num, Str, Arr, Obj };
  T t = T::Null;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JV> arr;
  std::map<std::string, JV> obj;

  [[nodiscard]] bool has(const std::string& k) const {
    return t == T::Obj && obj.count(k) > 0;
  }
  [[nodiscard]] const JV& at(const std::string& k) const { return obj.at(k); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& s) : p_(s.c_str()), end_(p_ + s.size()) {}

  bool parse(JV& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return p_ == end_;  // no trailing garbage
  }

 private:
  const char* p_;
  const char* end_;

  void skip_ws() {
    while (p_ < end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r'))
      ++p_;
  }
  bool lit(const char* s, std::size_t n) {
    if (static_cast<std::size_t>(end_ - p_) < n) return false;
    if (std::string(p_, n) != s) return false;
    p_ += n;
    return true;
  }
  bool value(JV& v) {
    if (p_ >= end_) return false;
    switch (*p_) {
      case '{': return object(v);
      case '[': return array(v);
      case '"': v.t = JV::T::Str; return string(v.str);
      case 't': v.t = JV::T::Bool; v.b = true; return lit("true", 4);
      case 'f': v.t = JV::T::Bool; v.b = false; return lit("false", 5);
      case 'n': v.t = JV::T::Null; return lit("null", 4);
      default: return number(v);
    }
  }
  bool number(JV& v) {
    char* np = nullptr;
    v.num = std::strtod(p_, &np);
    if (np == p_) return false;
    v.t = JV::T::Num;
    p_ = np;
    return true;
  }
  bool string(std::string& out) {
    if (p_ >= end_ || *p_ != '"') return false;
    ++p_;
    out.clear();
    while (p_ < end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ >= end_) return false;
        switch (*p_) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (end_ - p_ < 5) return false;
            for (int k = 1; k <= 4; ++k)
              if (!std::isxdigit(static_cast<unsigned char>(p_[k]))) return false;
            out += '?';  // tests only check structure, not code points
            p_ += 4;
            break;
          }
          default: return false;
        }
        ++p_;
      } else {
        out += *p_++;
      }
    }
    if (p_ >= end_) return false;
    ++p_;  // closing quote
    return true;
  }
  bool array(JV& v) {
    v.t = JV::T::Arr;
    ++p_;  // '['
    skip_ws();
    if (p_ < end_ && *p_ == ']') { ++p_; return true; }
    while (true) {
      JV elem;
      skip_ws();
      if (!value(elem)) return false;
      v.arr.push_back(std::move(elem));
      skip_ws();
      if (p_ >= end_) return false;
      if (*p_ == ',') { ++p_; continue; }
      if (*p_ == ']') { ++p_; return true; }
      return false;
    }
  }
  bool object(JV& v) {
    v.t = JV::T::Obj;
    ++p_;  // '{'
    skip_ws();
    if (p_ < end_ && *p_ == '}') { ++p_; return true; }
    while (true) {
      skip_ws();
      std::string key;
      if (!string(key)) return false;
      skip_ws();
      if (p_ >= end_ || *p_ != ':') return false;
      ++p_;
      skip_ws();
      JV val;
      if (!value(val)) return false;
      v.obj.emplace(std::move(key), std::move(val));
      skip_ws();
      if (p_ >= end_) return false;
      if (*p_ == ',') { ++p_; continue; }
      if (*p_ == '}') { ++p_; return true; }
      return false;
    }
  }
};

void busy_wait(double seconds) {
  const auto t0 = std::chrono::steady_clock::now();
  while (std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
             .count() < seconds) {
  }
}

const prof::RegionStats* find_region(const prof::Report& r,
                                     const std::string& path) {
  for (const auto& s : r.regions)
    if (s.path == path) return &s;
  return nullptr;
}

/// RAII guard so a failed ASSERT can't leave handlers installed for the
/// next test.
struct ProfSession {
  explicit ProfSession(prof::Mode m) {
    prof::enable(m);
    prof::reset();
  }
  ~ProfSession() { prof::disable(); }
};

// ---------------------------------------------------------------------
// Region aggregation
// ---------------------------------------------------------------------
TEST(ProfRegions, NestedAggregation) {
  ProfSession session(prof::Mode::Summary);

  for (int i = 0; i < 3; ++i) {
    prof::ScopedRegion outer("outer");
    busy_wait(0.5e-3);
    {
      prof::ScopedRegion inner("inner");
      busy_wait(1e-3);
    }
  }

  const prof::Report r = prof::report();
  const auto* outer = find_region(r, "outer");
  const auto* inner = find_region(r, "outer/inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 3u);
  EXPECT_EQ(inner->count, 3u);

  // Inclusive/self accounting: outer contains inner entirely.
  EXPECT_GE(outer->total_s, inner->total_s);
  EXPECT_NEAR(outer->child_s, inner->total_s, 1e-9);
  EXPECT_GE(outer->self_s(), 0.0);
  EXPECT_GT(outer->self_s(), 1e-3);  // 3 × 0.5ms of its own busy-wait
  EXPECT_EQ(inner->child_s, 0.0);

  // min <= mean <= max, and every close was at least the busy-wait.
  EXPECT_LE(outer->min_s, outer->mean_s());
  EXPECT_LE(outer->mean_s(), outer->max_s);
  EXPECT_GE(inner->min_s, 0.9e-3);

  EXPECT_EQ(r.open_regions, 0u);
  EXPECT_EQ(r.unbalanced_pops, 0u);
}

TEST(ProfRegions, KernelDispatchBecomesChildRegion) {
  ProfSession session(prof::Mode::Summary);

  std::vector<float> a(1024, 1.0f);
  {
    prof::ScopedRegion host("host");
    pk::parallel_for("saxpyish", pk::index_t{1024},
                     [&](pk::index_t i) { a[static_cast<std::size_t>(i)] += 1.0f; });
    pk::parallel_for(pk::index_t{1024},
                     [&](pk::index_t i) { a[static_cast<std::size_t>(i)] += 1.0f; });
  }
  double sum = 0;
  pk::parallel_reduce("sum_a", pk::RangePolicy<>(0, 1024),
                      [&](pk::index_t i, double& acc) {
                        acc += a[static_cast<std::size_t>(i)];
                      },
                      sum);
  EXPECT_DOUBLE_EQ(sum, 3.0 * 1024);

  const prof::Report r = prof::report();
  const auto* named = find_region(r, "host/saxpyish");
  const auto* unnamed = find_region(r, "host/<unlabeled>");
  const auto* toplevel = find_region(r, "sum_a");
  ASSERT_NE(named, nullptr);
  ASSERT_NE(unnamed, nullptr);
  ASSERT_NE(toplevel, nullptr);
  EXPECT_EQ(named->count, 1u);
  EXPECT_EQ(unnamed->count, 1u);
  EXPECT_EQ(toplevel->count, 1u);
}

TEST(ProfRegions, UnbalancedPopIsCountedNotFatal) {
  ProfSession session(prof::Mode::Summary);

  prof::pop_region();  // nothing open
  prof::pop_region();
  const prof::Report r = prof::report();
  EXPECT_EQ(r.unbalanced_pops, 2u);
  EXPECT_EQ(r.open_regions, 0u);
}

TEST(ProfRegions, OpenRegionsAreReported) {
  ProfSession session(prof::Mode::Summary);

  prof::push_region("left_open");
  EXPECT_EQ(prof::report().open_regions, 1u);
  prof::pop_region();
  EXPECT_EQ(prof::report().open_regions, 0u);
}

TEST(ProfRegions, SinkAccumulatesWithProfilingOff) {
  prof::disable();
  prof::reset();  // drop stats accumulated by earlier tests
  double sink = 0;
  {
    prof::ScopedRegion r("legacy_timer", &sink);
    busy_wait(1e-3);
  }
  EXPECT_GE(sink, 0.9e-3);
  // And nothing was recorded, since no handlers are installed.
  EXPECT_EQ(prof::report().regions.size(), 0u);
}

TEST(ProfRegions, RegionTotalSecondsMatchesLastSegment) {
  ProfSession session(prof::Mode::Summary);

  {
    prof::ScopedRegion a("rts_outer");
    prof::ScopedRegion b("rts_inner");
    busy_wait(1e-3);
  }
  const auto* inner = find_region(prof::report(), "rts_outer/rts_inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_DOUBLE_EQ(prof::region_total_seconds("rts_inner"), inner->total_s);
  EXPECT_DOUBLE_EQ(prof::region_total_seconds("rts_outer/rts_inner"),
                   inner->total_s);
  EXPECT_EQ(prof::region_total_seconds("no_such_region"), 0.0);
}

// ---------------------------------------------------------------------
// Mode / env parsing
// ---------------------------------------------------------------------
TEST(ProfMode, EnvParsing) {
  auto with_env = [](const char* v) {
    if (v)
      setenv("VPIC_PROF", v, 1);
    else
      unsetenv("VPIC_PROF");
    return prof::mode_from_env();
  };
  EXPECT_EQ(with_env(nullptr), prof::Mode::Off);
  EXPECT_EQ(with_env("off"), prof::Mode::Off);
  EXPECT_EQ(with_env("summary"), prof::Mode::Summary);
  EXPECT_EQ(with_env("trace"), prof::Mode::Trace);
  EXPECT_EQ(with_env("bogus-mode"), prof::Mode::Off);
  unsetenv("VPIC_PROF");
}

// ---------------------------------------------------------------------
// Trace output
// ---------------------------------------------------------------------
TEST(ProfTrace, ChromeTraceIsWellFormedJson) {
  ProfSession session(prof::Mode::Trace);

  std::vector<float> a(256, 0.0f);
  {
    prof::ScopedRegion step("trace_step");
    pk::parallel_for("trace_kernel", pk::index_t{256},
                     [&](pk::index_t i) { a[static_cast<std::size_t>(i)] = 1; });
  }

  const std::string text = prof::trace_json();
  JV doc;
  ASSERT_TRUE(JsonParser(text).parse(doc)) << text.substr(0, 400);
  ASSERT_EQ(doc.t, JV::T::Obj);
  ASSERT_TRUE(doc.has("traceEvents"));
  const JV& evs = doc.at("traceEvents");
  ASSERT_EQ(evs.t, JV::T::Arr);
  ASSERT_FALSE(evs.arr.empty());

  bool saw_meta = false, saw_step = false, saw_kernel = false;
  for (const JV& e : evs.arr) {
    ASSERT_EQ(e.t, JV::T::Obj);
    ASSERT_TRUE(e.has("ph"));
    const std::string ph = e.at("ph").str;
    if (ph == "M") {
      saw_meta = true;
      continue;
    }
    ASSERT_EQ(ph, "X");  // complete events only
    ASSERT_TRUE(e.has("name"));
    ASSERT_TRUE(e.has("ts"));
    ASSERT_TRUE(e.has("dur"));
    ASSERT_TRUE(e.has("pid"));
    ASSERT_TRUE(e.has("tid"));
    EXPECT_GE(e.at("dur").num, 0.0);
    if (e.at("name").str == "trace_step") saw_step = true;
    if (e.at("name").str.find("trace_kernel") != std::string::npos) {
      saw_kernel = true;
      ASSERT_TRUE(e.has("args"));
      EXPECT_TRUE(e.at("args").has("space"));
      EXPECT_TRUE(e.at("args").has("work"));
      EXPECT_DOUBLE_EQ(e.at("args").at("work").num, 256.0);
    }
  }
  EXPECT_TRUE(saw_meta);
  EXPECT_TRUE(saw_step);
  EXPECT_TRUE(saw_kernel);

  // Round-trip through write_chrome_trace.
  const std::string path = "test_prof_trace_out.json";
  ASSERT_TRUE(prof::write_chrome_trace(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  JV doc2;
  EXPECT_TRUE(JsonParser(ss.str()).parse(doc2));
  std::remove(path.c_str());
}

TEST(ProfTrace, SummaryModeCollectsNoTraceEvents) {
  ProfSession session(prof::Mode::Summary);

  {
    prof::ScopedRegion r("no_trace");
    busy_wait(1e-4);
  }
  JV doc;
  ASSERT_TRUE(JsonParser(prof::trace_json()).parse(doc));
  EXPECT_TRUE(doc.at("traceEvents").arr.empty() ||
              // metadata-only is also acceptable
              doc.at("traceEvents").arr.size() <= 1);
}

TEST(ProfReport, ReportJsonIsWellFormed) {
  ProfSession session(prof::Mode::Summary);

  {
    prof::ScopedRegion r(R"(weird "name"\with{json}chars)");
    busy_wait(1e-4);
  }
  const prof::Report rep = prof::report();
  JV doc;
  ASSERT_TRUE(JsonParser(rep.to_json()).parse(doc)) << rep.to_json();
  ASSERT_TRUE(doc.has("schema"));
  EXPECT_EQ(doc.at("schema").str, "vpic-prof-v1");
  ASSERT_TRUE(doc.has("regions"));
  EXPECT_EQ(doc.at("regions").arr.size(), rep.regions.size());
  EXPECT_FALSE(rep.human_table().empty());
}

// ---------------------------------------------------------------------
// Disabled-mode overhead: the contract in pk/prof_hooks.hpp is that an
// instrumented dispatch with no handlers costs one relaxed load and a
// predicted branch — <1% on any kernel with real work. Compare the public
// instrumented entry point against the raw detail:: dispatch it wraps,
// min-of-reps (alternating, so cache/frequency drift hits both equally).
// ---------------------------------------------------------------------
TEST(ProfOverhead, DisabledDispatchUnderOnePercent) {
  prof::disable();
  ASSERT_FALSE(pk::prof::active());

  const pk::index_t n = 1 << 15;
  std::vector<float> a(static_cast<std::size_t>(n), 1.0f);
  auto body = [&](pk::index_t i) {
    const auto k = static_cast<std::size_t>(i);
    a[k] = a[k] * 1.000001f + 1e-7f;
  };
  const pk::RangePolicy<pk::Serial> policy(0, n);

  using clock = std::chrono::steady_clock;
  auto secs = [](clock::time_point t0, clock::time_point t1) {
    return std::chrono::duration<double>(t1 - t0).count();
  };

  for (int w = 0; w < 20; ++w) {  // warm-up both paths
    pk::detail::for_impl(policy, body);
    pk::parallel_for("overhead_probe", policy, body);
  }
  double raw_min = 1e300, instr_min = 1e300;
  for (int r = 0; r < 400; ++r) {
    const auto t0 = clock::now();
    pk::detail::for_impl(policy, body);
    const auto t1 = clock::now();
    pk::parallel_for("overhead_probe", policy, body);
    const auto t2 = clock::now();
    raw_min = std::min(raw_min, secs(t0, t1));
    instr_min = std::min(instr_min, secs(t1, t2));
  }
  // <1% relative plus a 2us absolute slack floor for clock granularity.
  EXPECT_LE(instr_min, raw_min * 1.01 + 2e-6)
      << "raw_min=" << raw_min << "s instr_min=" << instr_min << "s";
  EXPECT_GT(a[0], 1.0f);  // keep the workload observable
}

// ---------------------------------------------------------------------
// Allocation events
// ---------------------------------------------------------------------
TEST(ProfAlloc, AllocationEventsPair) {
  ProfSession session(prof::Mode::Summary);

  {
    pk::View<float, 1> v1("pair_a", 1000);
    pk::View<double, 2> v2("pair_b", 10, 10);
    v1(0) = 1;
    v2(0, 0) = 2;
  }
  const prof::AllocStats a = prof::report().alloc;
  EXPECT_EQ(a.allocs, 2);
  EXPECT_EQ(a.deallocs, 2);
  EXPECT_EQ(a.unmatched_deallocs, 0);
  EXPECT_EQ(a.live_bytes, 0);
  EXPECT_EQ(a.peak_bytes,
            static_cast<std::int64_t>(1000 * sizeof(float) +
                                      100 * sizeof(double)));
  EXPECT_EQ(a.total_bytes, a.peak_bytes);
}

TEST(ProfAlloc, UnmatchedDeallocIsCounted) {
  auto* orphan = new pk::View<float, 1>("orphan", 64);  // allocated pre-enable
  ProfSession session(prof::Mode::Summary);
  delete orphan;  // free observed, allocation wasn't

  const prof::AllocStats a = prof::report().alloc;
  EXPECT_EQ(a.allocs, 0);
  EXPECT_EQ(a.deallocs, 1);
  EXPECT_EQ(a.unmatched_deallocs, 1);
  EXPECT_EQ(a.live_bytes, 0);  // never goes negative on unmatched frees
}

TEST(ProfAlloc, ViewAllocCountDelegatesAndCountsWhenOff) {
  prof::disable();
  const std::int64_t before = pk::view_alloc_count().load();
  {
    pk::View<float, 1> v1("c1", 8);
    pk::View<float, 1> v2("c2", 8);
    pk::View<float, 1> copy = v1;  // shares storage: no new allocation
    (void)copy;
  }
  EXPECT_EQ(pk::view_alloc_count().load() - before, 2);
  // view_alloc_count and the prof hook counter are the same counter.
  EXPECT_EQ(&pk::view_alloc_count(), &pk::prof::alloc_count());
}

// ---------------------------------------------------------------------
// Instance fence / async-dispatch hooks (docs/ASYNC.md): instance
// submissions and fences are observable through the same hook table as
// kernel dispatches.
// ---------------------------------------------------------------------
TEST(ProfInstance, CountsFencesAndAsyncDispatches) {
  ProfSession session(prof::Mode::Summary);
  pk::Instance<> q;
  pk::View<int, 1> v("v", 128);
  pk::parallel_for(q, "hooked_fill", pk::RangePolicy<>(0, 128),
                   [&](pk::index_t i) { v(i) = 1; });
  pk::async(q, "hooked_task", [] {});
  q.fence();
  pk::fence();  // global fence also reports through begin_fence

  const prof::Report r = prof::report();
  EXPECT_GE(r.fences, 2u) << "instance + global fence";
  EXPECT_GE(r.async_dispatches, 2u) << "parallel_for + async submission";
}

TEST(ProfAlloc, AllocCountExactUnderParallelConstruction) {
  prof::disable();
  const pk::index_t n = 512;
  const std::int64_t before = pk::view_alloc_count().load();
  // Each iteration constructs and destroys one View; with OpenMP enabled
  // this exercises the counter's atomicity across threads.
  pk::parallel_for(n, [](pk::index_t i) {
    pk::View<float, 1> scratch("scratch", 16);
    scratch(0) = static_cast<float>(i);
  });
  EXPECT_EQ(pk::view_alloc_count().load() - before,
            static_cast<std::int64_t>(n));
}

}  // namespace
