// gpusim/comm_model.hpp
//
// alpha-beta communication model for the strong-scaling study (Fig. 10).
// VPIC exchanges field halos and migrating particles with up to six
// neighbors per step using non-blocking point-to-point MPI (paper Section
// 2.1). With the testbed absent, per-step communication time is modeled as
//
//   t_comm = n_msgs * alpha + bytes / link_bw
//
// with halo bytes from the surface of a cubic per-rank subdomain and
// particle-migration bytes from the surface/volume flux estimate.
#pragma once

#include <cmath>
#include <cstdint>

#include "gpusim/device.hpp"

namespace vpic::gpusim {

struct CommParams {
  int neighbors = 6;               // face-adjacent exchange partners
  double field_bytes_per_face_point = 32;  // 8 floats of E/B halo
  double particle_bytes = 32;      // one migrating particle record
  // Fraction of surface-cell particles crossing a face per step
  // (~ v_th * dt / dx for a CFL-respecting thermal plasma).
  double migration_fraction_of_surface = 0.05;
  double sync_overhead_us = 5;     // per-step collective/sync cost
};

struct CommEstimate {
  double seconds = 0;
  double halo_bytes = 0;
  double particle_bytes = 0;
  double messages = 0;
};

/// Per-step communication time for one rank owning `cells_per_rank` grid
/// points and `particles_per_rank` particles, on `dev`'s interconnect.
inline CommEstimate model_comm(const DeviceSpec& dev, double cells_per_rank,
                               double particles_per_rank, int nranks,
                               const CommParams& p = {}) {
  CommEstimate e;
  if (nranks <= 1) return e;  // single rank: no exchange

  // Cubic subdomain: one face holds (cells)^(2/3) points.
  const double face_points = std::pow(std::max(1.0, cells_per_rank), 2.0 / 3.0);
  e.halo_bytes = static_cast<double>(p.neighbors) * face_points *
                 p.field_bytes_per_face_point;

  // Particles crossing faces per step: proportional to the ratio of
  // surface cells to volume cells times a CFL-like flux factor.
  const double surface_cells =
      std::min(cells_per_rank,
               static_cast<double>(p.neighbors) * face_points);
  const double flux_fraction =
      p.migration_fraction_of_surface * surface_cells /
      std::max(1.0, cells_per_rank);
  e.particle_bytes =
      flux_fraction * particles_per_rank * p.particle_bytes;

  e.messages = 2.0 * p.neighbors;  // halo + particle message per neighbor
  const double alpha_s = dev.link_latency_us * 1e-6;
  const double beta_s =
      (e.halo_bytes + e.particle_bytes) / (dev.link_bw_gbs * 1e9);
  e.seconds = e.messages * alpha_s + beta_s + p.sync_overhead_us * 1e-6;
  return e;
}

// ----------------------------------------------------------------------
// Comm/compute overlap model. The overlapped runtime schedule
// (DistributedSimulation::step_overlapped, docs/ASYNC.md) hides the halo
// exchange behind halo-independent compute: interpolator planes 1..nz-1
// and the interior particle push. Modeled per step as
//
//   hidden  = min(overlappable comm, overlap window)
//   exposed = t_comm - hidden
//   t_step  = t_compute + exposed
//
// where the window is the halo-independent fraction of compute and the
// per-step sync/collective tail is never hideable.
// ----------------------------------------------------------------------

struct OverlapParams {
  // Fraction of per-step compute that does not touch halo data and can
  // run while the exchange is in flight. For a z-slab of nz interior
  // planes that is ~(nz-1)/nz of the interpolator load and the volume
  // fraction of particles below the boundary plane — ~0.9 for the slab
  // shapes of the Fig. 10 sweeps.
  double overlappable_compute_fraction = 0.9;
  // Fraction of comm hideable under the window: flight latency and
  // bandwidth of the nonblocking exchanges. The sync_overhead_us tail
  // (collectives, per-step fences) stays on the critical path.
  double overlappable_comm_fraction = 0.9;
};

struct OverlapEstimate {
  double window_seconds = 0;   // compute available to hide comm under
  double hidden_seconds = 0;   // comm actually hidden
  double exposed_seconds = 0;  // comm left on the critical path
  double step_seconds = 0;     // compute + exposed comm
};

/// Overlapped step time for a rank whose fenced step is
/// `compute_seconds + comm.seconds`.
inline OverlapEstimate model_overlap(const CommEstimate& comm,
                                     double compute_seconds,
                                     const OverlapParams& p = {}) {
  OverlapEstimate o;
  o.window_seconds = p.overlappable_compute_fraction * compute_seconds;
  const double hideable = p.overlappable_comm_fraction * comm.seconds;
  o.hidden_seconds = std::min(hideable, o.window_seconds);
  o.exposed_seconds = comm.seconds - o.hidden_seconds;
  o.step_seconds = compute_seconds + o.exposed_seconds;
  return o;
}

}  // namespace vpic::gpusim
