#include "gpusim/push_model.hpp"

#include <algorithm>

#include "gpusim/coalescing.hpp"
#include "sort/runs.hpp"

namespace vpic::gpusim {

PushResult model_push(const DeviceSpec& dev,
                      const std::vector<std::uint32_t>& cells,
                      std::uint64_t grid_points,
                      const PushModelParams& params) {
  PushResult r;
  r.particles = cells.size();
  r.grid_points = grid_points;
  const std::uint64_t n = cells.size();
  if (n == 0) return r;

  // Same-cell run compression (the same segmentation the CPU engine's
  // run-aware push performs, sort/runs.hpp). Under run_aware the indexed
  // gather/scatter streams see one access per run; otherwise the run
  // count is still reported so harnesses can relate order to run length.
  std::vector<std::uint32_t> run_cells;
  run_cells.reserve(cells.size() / 4 + 1);
  sort::for_each_run(
      static_cast<pk::index_t>(n),
      [&cells](pk::index_t i) { return cells[static_cast<std::size_t>(i)]; },
      [&run_cells](std::uint32_t cell, pk::index_t, pk::index_t) {
        run_cells.push_back(cell);
      });
  r.runs = run_cells.size();
  const std::vector<std::uint32_t>& idx =
      params.run_aware ? run_cells : cells;
  const std::uint64_t n_idx = idx.size();

  // The LLC competes for grid-point state beyond the two records the model
  // walks explicitly (field array, cell metadata). Shrink the modeled
  // capacity by that ratio so capacity effects appear at the right grid
  // size.
  const double walked_bytes = params.interp_stride + params.accum_stride;
  const double capacity_scale =
      walked_bytes / std::max(walked_bytes, params.grid_bytes_per_point);
  CacheModel cache(
      static_cast<std::uint64_t>(dev.llc_bytes() * capacity_scale),
      dev.line_bytes, 16);

  // Field gather: interpolator records indexed by cell (one per run under
  // run_aware). Base address 0.
  const StreamStats gather = analyze_stream(
      idx.data(), n_idx, params.interp_stride, dev, &cache,
      /*atomics=*/false, /*base_addr=*/0, params.atomic_window,
      params.interp_record);

  // Current scatter: accumulator records, atomic RMW — one batched flush
  // per run under run_aware. Placed after the interpolator region so the
  // two arrays contend for cache honestly.
  const std::uint64_t accum_base =
      grid_points * static_cast<std::uint64_t>(params.interp_stride);
  const StreamStats scatter = analyze_stream(
      idx.data(), n_idx, params.accum_stride, dev, &cache,
      /*atomics=*/true, accum_base, params.atomic_window,
      params.accum_record);

  // Particle array: streaming read + write, bypasses the modeled LLC.
  const int precord = params.particle_bytes();
  const StreamStats pread = analyze_streaming(n, precord, dev);
  const StreamStats pwrite = analyze_streaming(n, precord, dev);

  // Run-aware only: the segmentation sweep that finds same-cell runs reads
  // every particle's cell index once — a full extra record stream through
  // AoS, a dense 4 B/particle plane for SoA/AoSoA (the honesty fix the
  // layout work makes visible; core/particle_layout.hpp).
  StreamStats keyscan{};
  if (params.run_aware)
    keyscan = analyze_streaming(n, params.key_read_bytes(), dev);

  KernelProfile p;
  p.threads = n;
  p.flops = params.flops_per_particle * static_cast<double>(n);
  const auto lb = static_cast<std::uint64_t>(dev.line_bytes);
  // Scatter RMW moves each line twice (read + write-back).
  p.dram_bytes = (gather.dram_lines + 2 * scatter.dram_lines +
                  pread.dram_lines + pwrite.dram_lines +
                  keyscan.dram_lines) *
                 lb;
  p.llc_bytes = (gather.llc_lines + 2 * scatter.llc_lines) * lb;
  p.transactions = gather.transactions + scatter.transactions +
                   pread.transactions + pwrite.transactions +
                   keyscan.transactions;
  p.warp_rounds = gather.warps + scatter.warps + pread.warps +
                  pwrite.warps + keyscan.warps;
  p.atomic_serial = scatter.atomic_conflicts + scatter.window_conflicts;
  p.logical_bytes =
      n * static_cast<std::uint64_t>(2 * precord) +
      (params.run_aware
           ? n * static_cast<std::uint64_t>(params.key_read_bytes())
           : std::uint64_t{0}) +
      n_idx * static_cast<std::uint64_t>(params.interp_record +
                                         2 * params.accum_record);

  r.profile = p;
  r.timing = time_kernel(dev, p);
  r.pushes_per_ns = static_cast<double>(n) / (r.timing.seconds * 1e9);
  return r;
}

std::vector<std::uint32_t> random_cell_sequence(std::uint64_t n,
                                                std::uint64_t grid_points,
                                                std::uint64_t seed) {
  std::vector<std::uint32_t> cells(n);
  std::uint64_t state = seed ? seed : 0x853c49e6748fea9bull;
  for (std::uint64_t i = 0; i < n; ++i) {
    // splitmix64: high-quality, reproducible across platforms.
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z = z ^ (z >> 31);
    cells[i] = static_cast<std::uint32_t>(z % grid_points);
  }
  return cells;
}

}  // namespace vpic::gpusim
