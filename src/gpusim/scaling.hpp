// gpusim/scaling.hpp
//
// Strong-scaling and grid-sweep engines for the Fig. 9 / Fig. 10
// experiments: fixed total particles, per-rank grid shrinking with rank
// count, push time from the analytic push model and exchange time from the
// alpha-beta comm model. Superlinear speedup emerges when the per-rank grid
// crosses under the device's LLC capacity — the caching phenomenon the
// paper exploits (Section 5.5).
#pragma once

#include <cstdint>
#include <vector>

#include "gpusim/comm_model.hpp"
#include "gpusim/push_model.hpp"

namespace vpic::gpusim {

struct GridSweepPoint {
  std::uint64_t grid_points = 0;
  double pushes_per_ns = 0;
  double grid_mb = 0;       // modeled hot bytes of the grid
  bool fits_llc = false;
  Bound bound = Bound::Dram;
};

/// Fig. 9: pushes/ns as a function of grid size at fixed particle count,
/// sorting disabled (random particle order).
std::vector<GridSweepPoint> grid_size_sweep(
    const DeviceSpec& dev, std::uint64_t particles,
    const std::vector<std::uint64_t>& grid_sizes,
    const PushModelParams& params = {}, std::uint64_t seed = 777,
    std::uint64_t analysis_cap = 2'000'000);

struct ScalingPoint {
  int ranks = 0;
  double push_seconds = 0;
  double comm_seconds = 0;
  double step_seconds = 0;
  double speedup = 0;       // vs the smallest rank count in the sweep
  double ideal_speedup = 0;
  double pushes_per_ns_per_rank = 0;
  bool grid_fits_llc = false;
  // Modeled comm/compute overlap (model_overlap): step time with the
  // hideable comm run under the interior-compute window, the comm hidden,
  // and the speedup recomputed against the overlapped base point.
  double overlapped_step_seconds = 0;
  double comm_hidden_seconds = 0;
  double overlapped_speedup = 0;
};

/// Fig. 10: strong scaling at fixed total (grid, particles).
std::vector<ScalingPoint> strong_scaling(
    const DeviceSpec& dev, std::uint64_t total_grid_points,
    std::uint64_t total_particles, const std::vector<int>& rank_counts,
    const PushModelParams& params = {}, const CommParams& comm = {},
    std::uint64_t seed = 777, std::uint64_t analysis_cap = 2'000'000);

/// Section-6 extension: throughput (simulations/second) for a batch of
/// identical small simulations on `total_gpus`, where gangs of `gang_size`
/// GPUs strong-scale each simulation and total_gpus/gang_size gangs run
/// concurrently. gang_size = 1 is naive batching; larger gangs trade comm
/// overhead for the superlinear cache effect ("running large batches of
/// smaller simulations ... as training datasets").
struct BatchPoint {
  int gang_size = 0;
  int concurrent_gangs = 0;
  double step_seconds_per_sim = 0;
  double sims_per_second = 0;  // for fixed steps_per_sim
  bool grid_fits_llc = false;
};

/// Weak scaling (companion diagnostic to Fig. 10): per-rank problem held
/// fixed while ranks grow; ideal is flat step time, and the deviation
/// isolates the communication model's growth.
struct WeakPoint {
  int ranks = 0;
  double push_seconds = 0;
  double comm_seconds = 0;
  double step_seconds = 0;
  double efficiency = 0;  // t(first) / t(n)
};

std::vector<WeakPoint> weak_scaling(
    const DeviceSpec& dev, std::uint64_t grid_points_per_rank,
    std::uint64_t particles_per_rank, const std::vector<int>& rank_counts,
    const PushModelParams& params = {}, const CommParams& comm = {},
    std::uint64_t seed = 777, std::uint64_t analysis_cap = 2'000'000);

std::vector<BatchPoint> batch_throughput(
    const DeviceSpec& dev, std::uint64_t grid_points_per_sim,
    std::uint64_t particles_per_sim, int total_gpus, int steps_per_sim,
    const PushModelParams& params = {}, const CommParams& comm = {},
    std::uint64_t seed = 777, std::uint64_t analysis_cap = 2'000'000);

}  // namespace vpic::gpusim
