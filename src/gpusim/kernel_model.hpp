// gpusim/kernel_model.hpp
//
// Converts stream statistics into kernel time for a device: a bottleneck
// (max-of-terms) model with five resources, the analytic equivalent of the
// roofline + latency + atomic-throughput analysis the paper performs with
// nsight-compute / rocprof-compute (Section 5.4, Fig. 8):
//
//   t = max( DRAM bytes / DRAM BW,            -- bandwidth bound
//            LLC bytes  / LLC BW,             -- cache-bandwidth bound
//            flops      / peak,               -- compute bound
//            serialized atomics * atomic_ns,  -- atomic-contention bound
//            DRAM lines * latency / window )  -- latency (occupancy) bound
//
// The "reported bandwidth" follows the paper's metric definition
// (Section 5.4): total logical data movement of the kernel divided by time,
// so cache reuse can push it above STREAM and contention can collapse it.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

#include "gpusim/device.hpp"

namespace vpic::gpusim {

struct KernelProfile {
  double flops = 0;                 // floating point operations
  std::uint64_t logical_bytes = 0;  // algorithmic data movement (paper metric)
  std::uint64_t dram_bytes = 0;     // modeled DRAM traffic
  std::uint64_t llc_bytes = 0;      // modeled LLC-hit traffic
  std::uint64_t transactions = 0;   // coalesced line transactions
  std::uint64_t warp_rounds = 0;    // warp-level memory round trips
  std::uint64_t atomic_serial = 0;  // serialized same-address atomic RMWs
  std::uint64_t threads = 0;        // total work items

  KernelProfile& operator+=(const KernelProfile& o) {
    flops += o.flops;
    logical_bytes += o.logical_bytes;
    dram_bytes += o.dram_bytes;
    llc_bytes += o.llc_bytes;
    transactions += o.transactions;
    warp_rounds += o.warp_rounds;
    atomic_serial += o.atomic_serial;
    threads = std::max(threads, o.threads);
    return *this;
  }
};

enum class Bound : std::uint8_t { Dram, Llc, Compute, Atomic, Latency };

inline const char* to_string(Bound b) noexcept {
  switch (b) {
    case Bound::Dram:
      return "DRAM-BW";
    case Bound::Llc:
      return "LLC-BW";
    case Bound::Compute:
      return "compute";
    case Bound::Atomic:
      return "atomic";
    case Bound::Latency:
      return "latency";
  }
  return "?";
}

struct KernelTiming {
  double seconds = 0;
  double bw_gbs = 0;        // logical_bytes / seconds (paper's metric)
  double gflops = 0;        // flops / seconds
  double ai = 0;            // arithmetic intensity: flops / DRAM bytes
  double pct_peak = 0;      // gflops / peak * 100
  Bound bound = Bound::Dram;

  double t_dram = 0, t_llc = 0, t_compute = 0, t_atomic = 0, t_latency = 0;
};

inline KernelTiming time_kernel(const DeviceSpec& dev,
                                const KernelProfile& p) {
  KernelTiming r;
  r.t_dram = static_cast<double>(p.dram_bytes) / (dev.dram_bw_gbs * 1e9);
  r.t_llc = static_cast<double>(p.llc_bytes) / (dev.llc_bw_gbs * 1e9);
  r.t_compute = p.flops / (dev.peak_fp32_gflops * 1e9);
  // Conflicts at distinct addresses retire in parallel across the LLC's
  // atomic pipelines; only same-address chains serialize fully, which the
  // conflict counters already reflect (they count per-address excess ops).
  r.t_atomic = static_cast<double>(p.atomic_serial) * dev.atomic_ns * 1e-9 /
               std::max(1, dev.atomic_lanes);

  // Latency/occupancy bound: every DRAM line fetch pays the memory round
  // trip, overlapped across the device's in-flight capacity
  // (max_outstanding). Serialization of same-address traffic — the
  // paper's "threads accessing the same data prevent the GPU from hiding
  // memory latency" — is carried by the atomic-contention term, which
  // counts the serialized chains directly.
  const double resident =
      std::max(1.0, static_cast<double>(dev.max_outstanding));
  const double dram_lines =
      static_cast<double>(p.dram_bytes) / dev.line_bytes;
  r.t_latency = dram_lines * dev.dram_latency_ns * 1e-9 / resident;

  r.seconds = std::max({r.t_dram, r.t_llc, r.t_compute, r.t_atomic,
                        r.t_latency, 1e-12});
  if (r.seconds == r.t_dram)
    r.bound = Bound::Dram;
  else if (r.seconds == r.t_llc)
    r.bound = Bound::Llc;
  else if (r.seconds == r.t_compute)
    r.bound = Bound::Compute;
  else if (r.seconds == r.t_atomic)
    r.bound = Bound::Atomic;
  else
    r.bound = Bound::Latency;

  r.bw_gbs = static_cast<double>(p.logical_bytes) / r.seconds / 1e9;
  r.gflops = p.flops / r.seconds / 1e9;
  r.ai = p.dram_bytes
             ? p.flops / static_cast<double>(p.dram_bytes)
             : 0.0;
  r.pct_peak = dev.peak_fp32_gflops > 0
                   ? 100.0 * r.gflops / dev.peak_fp32_gflops
                   : 0.0;
  return r;
}

/// Roofline attainable performance at arithmetic intensity `ai`.
inline double roofline_attainable_gflops(const DeviceSpec& dev, double ai) {
  return std::min(dev.peak_fp32_gflops, ai * dev.dram_bw_gbs);
}

}  // namespace vpic::gpusim
