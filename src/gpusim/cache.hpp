// gpusim/cache.hpp
//
// Set-associative LRU cache model. The analytic GPU model feeds each
// kernel's memory-line stream (produced by the coalescing analyzer from the
// real, post-sort index arrays) through one of these to split traffic into
// LLC hits and DRAM fills. Capacity effects are the engine behind the
// paper's tiled-strided reuse result (Fig. 6b/7) and the grid-fits-in-cache
// superlinear scaling study (Figs. 9/10).
#pragma once

#include <cstdint>
#include <vector>

namespace vpic::gpusim {

class CacheModel {
 public:
  /// capacity_bytes is rounded down to a whole number of sets.
  CacheModel(std::uint64_t capacity_bytes, int line_bytes, int associativity)
      : line_bytes_(line_bytes), assoc_(associativity) {
    const std::uint64_t lines = capacity_bytes / static_cast<std::uint64_t>(line_bytes);
    num_sets_ = lines / static_cast<std::uint64_t>(assoc_);
    if (num_sets_ == 0) num_sets_ = 1;
    // Power-of-two sets for cheap indexing.
    std::uint64_t p2 = 1;
    while (p2 * 2 <= num_sets_) p2 *= 2;
    num_sets_ = p2;
    tags_.assign(num_sets_ * static_cast<std::uint64_t>(assoc_), kInvalid);
    stamps_.assign(tags_.size(), 0);
  }

  /// Access one line address (already divided by line size).
  /// Returns true on hit. Misses install the line (allocate-on-miss).
  bool access(std::uint64_t line_addr) {
    const std::uint64_t set = line_addr & (num_sets_ - 1);
    const std::uint64_t base = set * static_cast<std::uint64_t>(assoc_);
    ++clock_;
    int victim = 0;
    std::uint64_t oldest = ~0ull;
    for (int w = 0; w < assoc_; ++w) {
      const std::uint64_t idx = base + static_cast<std::uint64_t>(w);
      if (tags_[idx] == line_addr) {
        stamps_[idx] = clock_;
        ++hits_;
        return true;
      }
      if (stamps_[idx] < oldest) {
        oldest = stamps_[idx];
        victim = w;
      }
    }
    const std::uint64_t idx = base + static_cast<std::uint64_t>(victim);
    tags_[idx] = line_addr;
    stamps_[idx] = clock_;
    ++misses_;
    return false;
  }

  /// Access a byte range [addr, addr+bytes); returns number of line misses.
  int access_range(std::uint64_t byte_addr, int bytes) {
    const std::uint64_t first = byte_addr / static_cast<std::uint64_t>(line_bytes_);
    const std::uint64_t last =
        (byte_addr + static_cast<std::uint64_t>(bytes) - 1) /
        static_cast<std::uint64_t>(line_bytes_);
    int miss = 0;
    for (std::uint64_t l = first; l <= last; ++l)
      if (!access(l)) ++miss;
    return miss;
  }

  void reset_counters() noexcept {
    hits_ = 0;
    misses_ = 0;
  }

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] double hit_rate() const noexcept {
    const auto total = hits_ + misses_;
    return total ? static_cast<double>(hits_) / static_cast<double>(total)
                 : 0.0;
  }
  [[nodiscard]] int line_bytes() const noexcept { return line_bytes_; }

 private:
  static constexpr std::uint64_t kInvalid = ~0ull;
  int line_bytes_;
  int assoc_;
  std::uint64_t num_sets_ = 0;
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint64_t> stamps_;
};

}  // namespace vpic::gpusim
