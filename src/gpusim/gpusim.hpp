// gpusim/gpusim.hpp — umbrella header for the analytic GPU/CPU model.
#pragma once

#include "gpusim/cache.hpp"
#include "gpusim/coalescing.hpp"
#include "gpusim/comm_model.hpp"
#include "gpusim/device.hpp"
#include "gpusim/kernel_model.hpp"
#include "gpusim/push_model.hpp"
#include "gpusim/scaling.hpp"
