#include "gpusim/scaling.hpp"

#include <algorithm>

namespace vpic::gpusim {

namespace {

/// Model a push of `particles` particles by analyzing a capped sample and
/// scaling time linearly (the stream statistics are homogeneous in n).
PushResult model_push_sampled(const DeviceSpec& dev, std::uint64_t particles,
                              std::uint64_t grid_points,
                              const PushModelParams& params,
                              std::uint64_t seed, std::uint64_t cap) {
  const std::uint64_t n = std::min(particles, cap);
  auto cells = random_cell_sequence(n, std::max<std::uint64_t>(1, grid_points),
                                    seed);
  PushResult r = model_push(dev, cells, grid_points, params);
  if (n < particles && n > 0) {
    const double scale =
        static_cast<double>(particles) / static_cast<double>(n);
    r.timing.seconds *= scale;
    r.particles = particles;
    // pushes/ns is intensive; it does not scale.
  }
  return r;
}

}  // namespace

std::vector<GridSweepPoint> grid_size_sweep(
    const DeviceSpec& dev, std::uint64_t particles,
    const std::vector<std::uint64_t>& grid_sizes,
    const PushModelParams& params, std::uint64_t seed,
    std::uint64_t analysis_cap) {
  std::vector<GridSweepPoint> out;
  out.reserve(grid_sizes.size());
  for (const auto g : grid_sizes) {
    PushResult r =
        model_push_sampled(dev, particles, g, params, seed, analysis_cap);
    GridSweepPoint pt;
    pt.grid_points = g;
    pt.pushes_per_ns = r.pushes_per_ns;
    pt.grid_mb =
        static_cast<double>(g) * params.grid_bytes_per_point / 1e6;
    pt.fits_llc = pt.grid_mb * 1e6 <= dev.llc_bytes();
    pt.bound = r.timing.bound;
    out.push_back(pt);
  }
  return out;
}

std::vector<ScalingPoint> strong_scaling(
    const DeviceSpec& dev, std::uint64_t total_grid_points,
    std::uint64_t total_particles, const std::vector<int>& rank_counts,
    const PushModelParams& params, const CommParams& comm,
    std::uint64_t seed, std::uint64_t analysis_cap) {
  std::vector<ScalingPoint> out;
  out.reserve(rank_counts.size());
  double base_time = 0;
  double base_overlapped = 0;
  int base_ranks = 0;
  for (const int n : rank_counts) {
    const std::uint64_t cells_per_rank =
        std::max<std::uint64_t>(1, total_grid_points / static_cast<std::uint64_t>(n));
    const std::uint64_t parts_per_rank =
        std::max<std::uint64_t>(1, total_particles / static_cast<std::uint64_t>(n));

    PushResult r = model_push_sampled(dev, parts_per_rank, cells_per_rank,
                                      params, seed, analysis_cap);
    const CommEstimate c =
        model_comm(dev, static_cast<double>(cells_per_rank),
                   static_cast<double>(parts_per_rank), n, comm);

    ScalingPoint pt;
    pt.ranks = n;
    pt.push_seconds = r.timing.seconds;
    pt.comm_seconds = c.seconds;
    pt.step_seconds = r.timing.seconds + c.seconds;
    pt.pushes_per_ns_per_rank = r.pushes_per_ns;
    pt.grid_fits_llc = static_cast<double>(cells_per_rank) *
                           params.grid_bytes_per_point <=
                       dev.llc_bytes();
    const OverlapEstimate ov = model_overlap(c, r.timing.seconds);
    pt.overlapped_step_seconds = ov.step_seconds;
    pt.comm_hidden_seconds = ov.hidden_seconds;
    if (out.empty()) {
      base_time = pt.step_seconds;
      base_overlapped = pt.overlapped_step_seconds;
      base_ranks = n;
    }
    pt.speedup = base_time / pt.step_seconds;
    pt.ideal_speedup = static_cast<double>(n) / base_ranks;
    pt.overlapped_speedup = base_overlapped / pt.overlapped_step_seconds;
    out.push_back(pt);
  }
  return out;
}

std::vector<WeakPoint> weak_scaling(
    const DeviceSpec& dev, std::uint64_t grid_points_per_rank,
    std::uint64_t particles_per_rank, const std::vector<int>& rank_counts,
    const PushModelParams& params, const CommParams& comm,
    std::uint64_t seed, std::uint64_t analysis_cap) {
  std::vector<WeakPoint> out;
  // The per-rank push is identical at every scale: model it once.
  const PushResult r = model_push_sampled(
      dev, particles_per_rank, grid_points_per_rank, params, seed,
      analysis_cap);
  double base = 0;
  for (const int n : rank_counts) {
    const CommEstimate c =
        model_comm(dev, static_cast<double>(grid_points_per_rank),
                   static_cast<double>(particles_per_rank), n, comm);
    WeakPoint pt;
    pt.ranks = n;
    pt.push_seconds = r.timing.seconds;
    pt.comm_seconds = c.seconds;
    pt.step_seconds = r.timing.seconds + c.seconds;
    if (out.empty()) base = pt.step_seconds;
    pt.efficiency = base / pt.step_seconds;
    out.push_back(pt);
  }
  return out;
}

std::vector<BatchPoint> batch_throughput(
    const DeviceSpec& dev, std::uint64_t grid_points_per_sim,
    std::uint64_t particles_per_sim, int total_gpus, int steps_per_sim,
    const PushModelParams& params, const CommParams& comm,
    std::uint64_t seed, std::uint64_t analysis_cap) {
  std::vector<BatchPoint> out;
  for (int gang = 1; gang <= total_gpus; gang *= 2) {
    const std::uint64_t cells =
        std::max<std::uint64_t>(1, grid_points_per_sim / static_cast<std::uint64_t>(gang));
    const std::uint64_t parts =
        std::max<std::uint64_t>(1, particles_per_sim / static_cast<std::uint64_t>(gang));
    PushResult r =
        model_push_sampled(dev, parts, cells, params, seed, analysis_cap);
    const CommEstimate c = model_comm(dev, static_cast<double>(cells),
                                      static_cast<double>(parts), gang, comm);
    BatchPoint pt;
    pt.gang_size = gang;
    pt.concurrent_gangs = total_gpus / gang;
    pt.step_seconds_per_sim = r.timing.seconds + c.seconds;
    // Each gang finishes a sim every steps * step_time; gangs overlap.
    pt.sims_per_second =
        static_cast<double>(pt.concurrent_gangs) /
        (pt.step_seconds_per_sim * static_cast<double>(steps_per_sim));
    pt.grid_fits_llc = static_cast<double>(cells) *
                           params.grid_bytes_per_point <=
                       dev.llc_bytes();
    out.push_back(pt);
  }
  return out;
}

}  // namespace vpic::gpusim
