// gpusim/device.hpp
//
// Device descriptors for the analytic GPU/CPU performance model. The
// paper's GPU results (Figs. 6-10) were measured on V100/A100/H100/MI100/
// MI250/MI300A hardware that is not available here; the substitution (see
// DESIGN.md) executes kernels functionally on the host while timing them
// against this model. Core counts, memory capacities, last-level cache
// sizes and STREAM Triad bandwidths are taken directly from Table 1 of the
// paper; microarchitectural parameters (warp size, line size, latencies,
// LLC bandwidth, peak FP32) come from vendor documentation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vpic::gpusim {

enum class Vendor : std::uint8_t { Nvidia, Amd, IntelCpu, ArmCpu, AmdCpu };

enum class DeviceKind : std::uint8_t { Gpu, Cpu };

struct DeviceSpec {
  std::string name;
  DeviceKind kind = DeviceKind::Gpu;
  Vendor vendor = Vendor::Nvidia;

  // --- Table 1 columns ---
  int core_count = 0;          // "Core count" (CUDA cores / CPU cores)
  double mem_gb = 0;           // main memory capacity
  double llc_mb = 0;           // last-level cache
  double dram_bw_gbs = 0;      // STREAM Triad main-memory bandwidth

  // --- modeled microarchitecture ---
  int warp_size = 32;          // SIMT width (32 NV, 64 AMD wavefront)
  int line_bytes = 128;        // memory transaction granularity
  double llc_bw_gbs = 0;       // LLC sustained bandwidth
  double peak_fp32_gflops = 0; // FP32 peak
  double dram_latency_ns = 0;  // average DRAM round trip
  double llc_latency_ns = 0;
  int max_outstanding = 0;     // memory-level parallelism cap (transactions)
  double atomic_ns = 0;        // serialized same-address atomic RMW cost
  int atomic_lanes = 1;        // parallel atomic pipelines (LLC slices)

  // --- interconnect (alpha-beta) for the scaling model ---
  double link_latency_us = 0;  // per-message latency
  double link_bw_gbs = 0;      // per-GPU injection bandwidth

  [[nodiscard]] double llc_bytes() const noexcept { return llc_mb * 1e6; }
  [[nodiscard]] bool is_gpu() const noexcept { return kind == DeviceKind::Gpu; }
};

/// All devices from Table 1 of the paper (CPUs and GPUs).
const std::vector<DeviceSpec>& device_table();

/// Lookup by name ("A100", "MI250", "SPR HBM", ...). Throws on miss.
const DeviceSpec& device(const std::string& name);

/// GPUs evaluated in Figs. 6/7 and the scaling studies.
std::vector<std::string> gpu_names();

/// CPUs evaluated in Figs. 3/4/5.
std::vector<std::string> cpu_names();

}  // namespace vpic::gpusim
