// gpusim/push_model.hpp
//
// Analytic model of the VPIC 2.0 particle-push kernel on a modeled device.
// The model is driven by a *real* cell-index sequence (the order particles
// sit in memory after a given sorting strategy — produced by the actual
// sorting library or by the PIC engine), so changing the sort changes the
// modeled coalescing, cache behaviour, and atomic contention exactly the
// way it changes them on hardware.
//
// Per-particle work (single precision, mirroring VPIC's push):
//   * particle load+store ...... 32 B read + 32 B write, streaming
//   * field gather ............. one 72 B interpolator record (18 floats,
//                                80 B padded stride) indexed by cell
//   * current scatter .......... one 48 B accumulator record (12 floats),
//                                atomic read-modify-write
//   * arithmetic ............... ~250 flops (Boris rotation, interpolation
//                                weights, current form factors)
//
// The LLC footprint of one grid point exceeds these two records: VPIC also
// keeps the EM field array, cell particle lists and other metadata hot
// during a step, and LRU replacement under random access wastes part of
// the capacity. The effective value of 800 B/point is calibrated so the
// modeled performance peak lands where the paper measures it (A100 peak at
// 85,184 points on a 40 MB LLC; V100 at 13,824 on 6 MB — both imply an
// effective footprint of ~450-800 B/point once replacement inefficiency is
// included; see EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <vector>

#include "core/particle_layout.hpp"
#include "gpusim/device.hpp"
#include "gpusim/kernel_model.hpp"

namespace vpic::gpusim {

struct PushModelParams {
  // Particle storage layout. The particle-stream traffic is derived from
  // it (core/particle_layout.hpp): a full record touch streams
  // particle_record_bytes(layout) both ways regardless of layout, but the
  // run-segmentation sweep of the run-aware pipeline reads ONLY the cell
  // index — 32 B/particle through an AoS record, ~4 B/particle for the
  // densely packed SoA/AoSoA cell planes.
  core::ParticleLayout layout = core::ParticleLayout::AoS;
  int interp_stride = 80;         // padded interpolator stride
  int interp_record = 72;         // bytes actually read
  int accum_stride = 48;          // accumulator stride
  int accum_record = 48;          // bytes atomically updated
  double flops_per_particle = 250;
  double grid_bytes_per_point = 800;  // effective hot bytes per grid point
  int atomic_window = 2048;           // cross-warp atomic pipeline window
  // Model the run-aware push pipeline (docs/PUSH.md): the interpolator
  // gather and the accumulator scatter are issued once per same-cell
  // *run* of the cell sequence (the CPU engine's hoist/batch, or a
  // block-shared gather with a local reduction on a real GPU) instead of
  // once per particle, plus one streaming key-read sweep to find the runs
  // (layout-dependent, see `layout`). Arithmetic and particle streaming
  // are unchanged.
  bool run_aware = false;

  [[nodiscard]] int particle_bytes() const noexcept {
    return core::particle_record_bytes(layout);
  }
  [[nodiscard]] int key_read_bytes() const noexcept {
    return core::particle_key_read_bytes(layout);
  }
};

struct PushResult {
  KernelProfile profile;
  KernelTiming timing;
  double pushes_per_ns = 0;
  std::uint64_t particles = 0;
  std::uint64_t grid_points = 0;
  std::uint64_t runs = 0;  // same-cell runs in the cell sequence
};

/// Model one particle-push pass over `cells` (cells[i] = cell index of the
/// i-th particle in memory order) on `dev`, with `grid_points` total cells.
PushResult model_push(const DeviceSpec& dev,
                      const std::vector<std::uint32_t>& cells,
                      std::uint64_t grid_points,
                      const PushModelParams& params = {});

/// Generate a synthetic cell-index sequence: `n` particles uniformly
/// distributed over `grid_points` cells, in random memory order
/// (deterministic in `seed`). This is the order of an unsorted plasma after
/// it has phase-mixed — the regime of the Fig. 9 / Fig. 10 experiments,
/// which run with sorting disabled.
std::vector<std::uint32_t> random_cell_sequence(std::uint64_t n,
                                                std::uint64_t grid_points,
                                                std::uint64_t seed);

}  // namespace vpic::gpusim
