// gpusim/coalescing.hpp
//
// Warp-level access-stream analysis. Given the index (key) array a kernel
// uses — the *actual* array produced by a sorting algorithm — this computes,
// per warp of `warp_size` consecutive threads:
//
//   * transactions: distinct memory lines touched (the GPU coalescer issues
//     one transaction per distinct line per warp);
//   * atomic conflicts: for scatter kernels, Σ(multiplicity-1) of identical
//     addresses within a warp (hardware serializes same-address atomics);
//   * cross-warp same-address pressure within a sliding window, modeling
//     back-to-back atomics on one location arriving faster than the
//     cache's RMW pipeline can retire them.
//
// Feeding these streams through CacheModel splits transaction traffic into
// LLC hits and DRAM fills. Everything downstream (Figs. 6-10) is computed
// from this struct plus the DeviceSpec.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "gpusim/cache.hpp"
#include "gpusim/device.hpp"

namespace vpic::gpusim {

struct StreamStats {
  std::uint64_t accesses = 0;          // individual thread accesses
  std::uint64_t warps = 0;             // warp count
  std::uint64_t transactions = 0;      // coalesced line transactions
  std::uint64_t dram_lines = 0;        // transactions missing in LLC
  std::uint64_t llc_lines = 0;         // transactions hitting in LLC
  std::uint64_t atomic_conflicts = 0;  // within-warp same-address serials
  std::uint64_t window_conflicts = 0;  // cross-warp same-address pressure

  [[nodiscard]] double lines_per_warp() const noexcept {
    return warps ? static_cast<double>(transactions) /
                       static_cast<double>(warps)
                 : 0.0;
  }
  [[nodiscard]] double coalescing_efficiency(int warp_size, int line_bytes,
                                             int elem_bytes) const noexcept {
    // 1.0 = perfectly coalesced (minimum possible lines per warp).
    const double ideal =
        static_cast<double>(warp_size * elem_bytes) / line_bytes;
    const double actual = lines_per_warp();
    return actual > 0 ? (ideal < 1 ? 1.0 : ideal) / actual : 1.0;
  }
};

/// Analyze an indexed-access stream: thread t accesses
/// base_addr + idx[t]*elem_bytes. If `cache` is non-null, each distinct
/// line per warp is run through it (in stream order) to classify DRAM vs
/// LLC. If `atomics` is true, same-address conflicts are tallied.
/// `elem_bytes` is the stride between record 0 and record 1; `record_bytes`
/// (default: elem_bytes) is how many bytes each access actually touches —
/// multi-line records (e.g. a 72-byte interpolator struct) generate one
/// transaction per spanned line.
template <class K>
StreamStats analyze_stream(const K* idx, std::uint64_t n, int elem_bytes,
                           const DeviceSpec& dev, CacheModel* cache,
                           bool atomics, std::uint64_t base_addr = 0,
                           int atomic_window = 1024, int record_bytes = 0) {
  StreamStats s;
  s.accesses = n;
  if (record_bytes <= 0) record_bytes = elem_bytes;
  const int w = dev.warp_size;
  const auto lb = static_cast<std::uint64_t>(dev.line_bytes);

  // Per-warp scratch: distinct lines and address multiplicity.
  std::vector<std::uint64_t> lines;
  lines.reserve(static_cast<std::size_t>(w));
  std::unordered_map<std::uint64_t, int> mult;
  mult.reserve(static_cast<std::size_t>(w) * 2);

  // Sliding window multiplicity for cross-warp atomic pressure.
  std::unordered_map<std::uint64_t, int> window_mult;
  std::vector<std::uint64_t> window_ring(
      static_cast<std::size_t>(atomic_window), ~0ull);
  std::size_t ring_pos = 0;

  for (std::uint64_t start = 0; start < n; start += static_cast<std::uint64_t>(w)) {
    const std::uint64_t end = std::min(n, start + static_cast<std::uint64_t>(w));
    ++s.warps;
    lines.clear();
    mult.clear();
    for (std::uint64_t t = start; t < end; ++t) {
      const std::uint64_t addr =
          base_addr + static_cast<std::uint64_t>(idx[t]) *
                          static_cast<std::uint64_t>(elem_bytes);
      const std::uint64_t first_line = addr / lb;
      const std::uint64_t last_line =
          (addr + static_cast<std::uint64_t>(record_bytes) - 1) / lb;
      for (std::uint64_t line = first_line; line <= last_line; ++line) {
        bool seen = false;
        for (auto l : lines)
          if (l == line) {
            seen = true;
            break;
          }
        if (!seen) lines.push_back(line);
      }
      if (atomics) {
        ++mult[addr];
        // Sliding window update.
        const std::uint64_t evict = window_ring[ring_pos];
        if (evict != ~0ull) {
          auto it = window_mult.find(evict);
          if (it != window_mult.end() && --it->second == 0)
            window_mult.erase(it);
        }
        window_ring[ring_pos] = addr;
        ring_pos = (ring_pos + 1) % window_ring.size();
        const int wm = ++window_mult[addr];
        if (wm > 1) ++s.window_conflicts;
      }
    }
    s.transactions += lines.size();
    if (cache) {
      for (auto l : lines) {
        if (cache->access(l))
          ++s.llc_lines;
        else
          ++s.dram_lines;
      }
    } else {
      s.dram_lines += lines.size();
    }
    if (atomics) {
      for (const auto& [addr, m] : mult)
        if (m > 1) s.atomic_conflicts += static_cast<std::uint64_t>(m - 1);
    }
  }
  return s;
}

/// Analyze a purely streaming (contiguous) access pattern of n elements —
/// always perfectly coalesced; used for the particle-array loads/stores.
inline StreamStats analyze_streaming(std::uint64_t n, int elem_bytes,
                                     const DeviceSpec& dev,
                                     CacheModel* cache = nullptr,
                                     std::uint64_t base_addr = 0) {
  StreamStats s;
  s.accesses = n;
  const auto lb = static_cast<std::uint64_t>(dev.line_bytes);
  const std::uint64_t total_bytes = n * static_cast<std::uint64_t>(elem_bytes);
  const std::uint64_t nlines = (total_bytes + lb - 1) / lb;
  s.warps = (n + static_cast<std::uint64_t>(dev.warp_size) - 1) /
            static_cast<std::uint64_t>(dev.warp_size);
  s.transactions = nlines;
  if (cache) {
    const std::uint64_t first = base_addr / lb;
    for (std::uint64_t l = 0; l < nlines; ++l) {
      if (cache->access(first + l))
        ++s.llc_lines;
      else
        ++s.dram_lines;
    }
  } else {
    s.dram_lines = nlines;
  }
  return s;
}

}  // namespace vpic::gpusim
