#include "gpusim/device.hpp"

#include <stdexcept>

namespace vpic::gpusim {

namespace {

// Helper to keep the table readable.
DeviceSpec gpu(std::string name, Vendor v, int cores, double mem_gb,
               double llc_mb, double dram_bw, int warp, double llc_bw,
               double peak_gf, double dram_lat, double atomic_ns,
               double link_lat_us, double link_bw) {
  DeviceSpec d;
  d.name = std::move(name);
  d.kind = DeviceKind::Gpu;
  d.vendor = v;
  d.core_count = cores;
  d.mem_gb = mem_gb;
  d.llc_mb = llc_mb;
  d.dram_bw_gbs = dram_bw;
  d.warp_size = warp;
  d.line_bytes = 128;
  d.llc_bw_gbs = llc_bw;
  d.peak_fp32_gflops = peak_gf;
  d.dram_latency_ns = dram_lat;
  d.llc_latency_ns = dram_lat * 0.4;
  d.max_outstanding = cores;  // ~one transaction in flight per core
  d.atomic_ns = atomic_ns;
  // NVIDIA L2 has many independent atomic slices; AMD's LLC retires
  // same-line atomics through fewer pipelines, which is the vendor gap the
  // paper observes in Figs. 6b/7.
  d.atomic_lanes = (v == Vendor::Nvidia) ? 64 : 16;
  d.link_latency_us = link_lat_us;
  d.link_bw_gbs = link_bw;
  return d;
}

DeviceSpec cpu(std::string name, Vendor v, int cores, double mem_gb,
               double llc_mb, double dram_bw, int simd_lanes,
               double peak_gf) {
  DeviceSpec d;
  d.name = std::move(name);
  d.kind = DeviceKind::Cpu;
  d.vendor = v;
  d.core_count = cores;
  d.mem_gb = mem_gb;
  d.llc_mb = llc_mb;
  d.dram_bw_gbs = dram_bw;
  d.warp_size = simd_lanes;  // CPU "warp" = SIMD vector of doubles
  d.line_bytes = 64;
  d.llc_bw_gbs = dram_bw * 6.0;  // shared LLC sustains ~6x DRAM
  d.peak_fp32_gflops = peak_gf;
  d.dram_latency_ns = 90;
  d.llc_latency_ns = 25;
  d.max_outstanding = cores * 10;  // ~10 line-fill buffers per core
  d.atomic_ns = 18;                // cache-line ping-pong dominated
  d.atomic_lanes = cores;          // one atomic chain per core
  d.link_latency_us = 2.0;
  d.link_bw_gbs = 20.0;
  return d;
}

std::vector<DeviceSpec> build_table() {
  std::vector<DeviceSpec> t;
  // --- CPUs (Table 1, top block). warp = 512-bit lanes of double where the
  // ISA has them; Grace uses 4x128-bit NEON units (paper Section 5.3).
  t.push_back(cpu("A64FX", Vendor::ArmCpu, 48, 32, 32, 424.0, 8, 5530));
  t.push_back(cpu("EPYC 7763", Vendor::AmdCpu, 128, 512, 256, 165.0, 4, 9000));
  t.push_back(cpu("SPR DDR", Vendor::IntelCpu, 112, 256, 105, 96.77, 8, 11000));
  t.push_back(cpu("SPR HBM", Vendor::IntelCpu, 112, 128, 105, 266.05, 8, 11000));
  t.push_back(cpu("Grace", Vendor::ArmCpu, 144, 480, 114, 390.0, 2, 7100));
  t.push_back(cpu("MI300A CPU", Vendor::AmdCpu, 24, 128, 256, 202.18, 4, 1800));

  // --- GPUs (Table 1, bottom block).
  //           name      vendor         cores  mem  llc   dram_bw warp llc_bw  peak_gf  lat  atom  a-b link
  t.push_back(gpu("V100", Vendor::Nvidia, 5120, 32, 6, 886.4, 32, 1800, 15700, 440, 12, 4.0, 12));
  t.push_back(gpu("A100", Vendor::Nvidia, 6912, 80, 40, 1682, 32, 2400, 19500, 400, 10, 3.0, 50));
  t.push_back(gpu("H100", Vendor::Nvidia, 16896, 96, 50, 3713, 32, 4500, 66900, 380, 8, 3.0, 60));
  t.push_back(gpu("MI100", Vendor::Amd, 7680, 32, 8, 970.9, 64, 1500, 23100, 550, 35, 4.0, 16));
  t.push_back(gpu("MI250", Vendor::Amd, 13312, 128, 16, 2498, 64, 2200, 45300, 520, 30, 3.5, 32));
  t.push_back(
      gpu("MI300A", Vendor::Amd, 14592, 128, 256, 3254, 64, 3600, 61300, 500, 25, 2.0, 40));
  return t;
}

}  // namespace

const std::vector<DeviceSpec>& device_table() {
  static const std::vector<DeviceSpec> table = build_table();
  return table;
}

const DeviceSpec& device(const std::string& name) {
  for (const auto& d : device_table())
    if (d.name == name) return d;
  throw std::invalid_argument("gpusim: unknown device '" + name + "'");
}

std::vector<std::string> gpu_names() {
  std::vector<std::string> n;
  for (const auto& d : device_table())
    if (d.is_gpu()) n.push_back(d.name);
  return n;
}

std::vector<std::string> cpu_names() {
  std::vector<std::string> n;
  for (const auto& d : device_table())
    if (!d.is_gpu()) n.push_back(d.name);
  return n;
}

}  // namespace vpic::gpusim
