#include "core/accumulator.hpp"

#include "prof/prof.hpp"

namespace vpic::core {

void AccumulatorArray::reduce_ghosts_periodic() {
  prof::ScopedRegion region("accumulator/reduce_ghosts");
  const Grid& g = grid;
  auto fold = [&](index_t ghost, index_t interior) {
    Accumulator& gh = a(ghost);
    Accumulator& in = a(interior);
    for (int c = 0; c < 4; ++c) {
      in.jx[c] += gh.jx[c];
      in.jy[c] += gh.jy[c];
      in.jz[c] += gh.jz[c];
      gh.jx[c] = gh.jy[c] = gh.jz[c] = 0.0f;
    }
  };
  // Fold each ghost layer into its periodic image. Serial over the shells
  // (they are a small fraction of the domain).
  for (int iz = 0; iz < g.sz(); ++iz)
    for (int iy = 0; iy < g.sy(); ++iy) {
      fold(g.voxel(0, iy, iz), g.voxel(g.nx, iy, iz));
      fold(g.voxel(g.nx + 1, iy, iz), g.voxel(1, iy, iz));
    }
  for (int iz = 0; iz < g.sz(); ++iz)
    for (int ix = 1; ix <= g.nx; ++ix) {
      fold(g.voxel(ix, 0, iz), g.voxel(ix, g.ny, iz));
      fold(g.voxel(ix, g.ny + 1, iz), g.voxel(ix, 1, iz));
    }
  for (int iy = 1; iy <= g.ny; ++iy)
    for (int ix = 1; ix <= g.nx; ++ix) {
      fold(g.voxel(ix, iy, 0), g.voxel(ix, iy, g.nz));
      fold(g.voxel(ix, iy, g.nz + 1), g.voxel(ix, iy, 1));
    }
}

void AccumulatorArray::unload(FieldArray& f, std::uint8_t wrap_mask) const {
  const Grid& g = grid;
  // Conversion from accumulated charge-displacement (in cell-local units,
  // where a full cell crossing is 2) to Yee current density. Each edge
  // collects from its four adjacent cells with total weight 4, and the
  // local-unit displacement carries dx/2 of physical distance:
  //   j = 0.25 * (d_axis / 2) * acc / (cell_volume * dt)
  const float vol = g.dx * g.dy * g.dz;
  const float cx = 0.125f * g.dx / (vol * g.dt);
  const float cy = 0.125f * g.dy / (vol * g.dt);
  const float cz = 0.125f * g.dz / (vol * g.dt);

  // The "-1" neighbors of the first interior plane are the periodic images
  // of the last plane (the mover wraps voxels before depositing, so ghost
  // accumulator cells hold nothing on periodic boundaries). On decomposed
  // axes the ghost plane holds the neighbor rank's contribution instead.
  auto wrap = [wrap_mask](int i, int n, int axis) {
    return (i < 1 && (wrap_mask & (1u << axis))) ? i + n : i;
  };
  pk::parallel_for("accumulator/unload", pk::RangePolicy<>(1, g.nz + 1),
                   [&, g](index_t izz) {
    const int iz = static_cast<int>(izz);
    for (int iy = 1; iy <= g.ny; ++iy) {
      for (int ix = 1; ix <= g.nx; ++ix) {
        const index_t v = g.voxel(ix, iy, iz);
        // Neighbors "below" in the two transverse axes of each component.
        // jx edges: transverse axes (y, z); component slots are
        // [0]=(y-,z-), [1]=(y+,z-), [2]=(y-,z+), [3]=(y+,z+): the edge at
        // (ix, iy, iz) is the (y-,z-) edge of cell (ix,iy,iz), the (y+,z-)
        // edge of cell (ix,iy-1,iz), etc.
        const int xm = wrap(ix - 1, g.nx, 0);
        const int ym = wrap(iy - 1, g.ny, 1);
        const int zm = wrap(iz - 1, g.nz, 2);
        f.jx(v) = cx * (a(g.voxel(ix, iy, iz)).jx[0] +
                        a(g.voxel(ix, ym, iz)).jx[1] +
                        a(g.voxel(ix, iy, zm)).jx[2] +
                        a(g.voxel(ix, ym, zm)).jx[3]);
        f.jy(v) = cy * (a(g.voxel(ix, iy, iz)).jy[0] +
                        a(g.voxel(ix, iy, zm)).jy[1] +
                        a(g.voxel(xm, iy, iz)).jy[2] +
                        a(g.voxel(xm, iy, zm)).jy[3]);
        f.jz(v) = cz * (a(g.voxel(ix, iy, iz)).jz[0] +
                        a(g.voxel(xm, iy, iz)).jz[1] +
                        a(g.voxel(ix, ym, iz)).jz[2] +
                        a(g.voxel(xm, ym, iz)).jz[3]);
      }
    }
  });
}

void AccumulatorArray::pack_z_plane(int iz, float* buf) const {
  const Grid& g = grid;
  std::size_t k = 0;
  for (int iy = 0; iy < g.sy(); ++iy)
    for (int ix = 0; ix < g.sx(); ++ix) {
      const Accumulator& rec = a(g.voxel(ix, iy, iz));
      const float* f = reinterpret_cast<const float*>(&rec);
      for (int c = 0; c < 12; ++c) buf[k++] = f[c];
    }
}

void AccumulatorArray::unpack_z_plane(int iz, const float* buf) {
  const Grid& g = grid;
  std::size_t k = 0;
  for (int iy = 0; iy < g.sy(); ++iy)
    for (int ix = 0; ix < g.sx(); ++ix) {
      Accumulator& rec = a(g.voxel(ix, iy, iz));
      float* f = reinterpret_cast<float*>(&rec);
      for (int c = 0; c < 12; ++c) f[c] = buf[k++];
    }
}

}  // namespace vpic::core
