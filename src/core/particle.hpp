// core/particle.hpp
//
// Particle storage. VPIC historically kept particles as 32-byte AoS
// records (dx, dy, dz, voxel, ux, uy, uz, w); that record is now the
// *canonical* format of a layout-polymorphic ParticleStore
// (core/particle_store.hpp) which can also hold the same fields as SoA
// planes or SIMD-width AoSoA tiles, selected per species by the
// ParticleLayout policy in SimulationConfig.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/grid.hpp"
#include "core/particle_store.hpp"
#include "pk/pk.hpp"
#include "sort/runs.hpp"
#include "sort/workspace.hpp"

namespace vpic::core {

/// Per-tile slice of a species under the tile decomposition
/// (core/tiles.hpp): the contiguous index range the tile owns, its OWN
/// sortedness tracking (a global counter would let one busy tile's churn
/// veto the run-aware fast path everywhere — per-tile staleness is what
/// drives per-tile AutoDetect dispatch), and the per-tile sort/run
/// scratch buffers so tile tasks never share mutable state.
struct TileSlot {
  index_t begin = 0, end = 0;  // [begin, end) into the particle array
  bool sorted_hint = false;    // range is voxel-sorted
  int steps_since_sort = -1;   // -1: never tile-sorted

  // Serial per-tile counting-sort scratch (see core/tiles.hpp) and the
  // run-segmentation scratch of the tile's run-aware push. Persistent so
  // steady-state re-sorting allocates nothing, like the global path.
  std::vector<std::uint32_t> keys;
  std::vector<index_t> perm;
  std::vector<index_t> offsets;
  std::vector<sort::CellRun> runs;

  [[nodiscard]] index_t count() const noexcept { return end - begin; }

  void mark_sorted() noexcept {
    sorted_hint = true;
    steps_since_sort = 0;
  }
  void mark_order_degraded() noexcept {
    if (steps_since_sort >= 0 &&
        steps_since_sort < std::numeric_limits<int>::max())
      ++steps_since_sort;
  }
};

struct Species {
  std::string name;
  float q = -1.0f;  // charge (electron = -1 in normalized units)
  float m = 1.0f;   // mass
  ParticleStore p;
  index_t np = 0;  // live particle count (p may be larger)

  // Persistent sort scratch: keys/permutation/histogram buffers sized on
  // first sort and grown geometrically, plus the ping-pong partner of `p`
  // the sort gathers into before swapping. Steady-state re-sorting
  // allocates nothing (see core/sort_particles.hpp, docs/SORTING.md).
  sort::SortWorkspace sort_ws;
  ParticleStore p_scratch;

  // Sortedness tracking for the run-aware push fast path (docs/PUSH.md):
  // sort_particles(Standard) marks the array cell-sorted; every push or
  // exchange append degrades the order by the few particles that changed
  // cell, tracked by steps_since_sort. advance_species dispatches its
  // run-aware path off this hint plus a sampled run probe.
  bool cell_sorted_hint = false;
  int steps_since_sort = -1;  // -1: never cell-sorted
  std::vector<sort::CellRun> push_runs;  // reused run-segmentation scratch

  // Tile decomposition state (core/tiles.hpp): one slot per tile with the
  // owned index range and per-tile sortedness. Empty when untiled.
  std::vector<TileSlot> tiles;

  /// Called by sort_particles after a reorder: Standard order is the
  /// cell-sorted order the run-aware push exploits; any other order
  /// invalidates the hint.
  void mark_sorted(bool cell_sorted) noexcept {
    cell_sorted_hint = cell_sorted;
    steps_since_sort = cell_sorted ? 0 : -1;
  }

  /// Called once per push / exchange append: ordering decays as particles
  /// cross cells, so the dispatch heuristic ages the hint.
  void mark_order_degraded() noexcept {
    if (steps_since_sort >= 0 &&
        steps_since_sort < std::numeric_limits<int>::max())
      ++steps_since_sort;
  }

  Species() = default;
  Species(std::string name_, float q_, float m_, index_t capacity,
          ParticleLayout layout = ParticleLayout::AoS)
      : name(std::move(name_)),
        q(q_),
        m(m_),
        p("particles_" + name, capacity, layout) {}

  [[nodiscard]] ParticleLayout layout() const noexcept { return p.layout(); }
  [[nodiscard]] index_t capacity() const noexcept { return p.size(); }

  /// Ping-pong partner of `p`, allocated lazily at the same capacity and
  /// layout.
  ParticleStore& sort_scratch() {
    if (p_scratch.size() < p.size() || p_scratch.layout() != p.layout())
      p_scratch =
          ParticleStore("particles_scratch_" + name, p.size(), p.layout());
    return p_scratch;
  }

  /// Kinetic energy sum( w * m c^2 (gamma - 1) ).
  [[nodiscard]] double kinetic_energy() const {
    double total = 0;
    const float mass = m;
    dispatch_layout(p, [&](auto a) {
      pk::parallel_reduce(
          pk::RangePolicy<>(np),
          [a, mass](index_t idx, double& acc) {
            const Particle part = a.load(idx);
            const double u2 = static_cast<double>(part.ux) * part.ux +
                              static_cast<double>(part.uy) * part.uy +
                              static_cast<double>(part.uz) * part.uz;
            const double gamma = std::sqrt(1.0 + u2);
            acc += static_cast<double>(part.w) * mass * (gamma - 1.0);
          },
          total);
    });
    return total;
  }

  /// Write the voxel indices (the sorting keys) of the live particles into
  /// the first `np` entries of caller-provided storage. Allocation-free.
  /// For SoA/AoSoA this reads only the dense cell lanes (~4 B/particle of
  /// traffic); AoS streams whole records (see particle_key_read_bytes).
  void cell_keys(pk::View<std::uint32_t, 1>& out) const {
    assert(out.size() >= np);
    std::uint32_t* k = out.data();
    dispatch_layout(p, [&](auto a) {
      pk::parallel_for(np, [=](index_t idx) {
        k[idx] = static_cast<std::uint32_t>(a.cell(idx));
      });
    });
  }

  /// Allocating convenience overload of the above.
  [[nodiscard]] pk::View<std::uint32_t, 1> cell_keys() const {
    pk::View<std::uint32_t, 1> keys("cell_keys", np);
    cell_keys(keys);
    return keys;
  }
};

}  // namespace vpic::core
