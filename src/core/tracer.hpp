// core/tracer.hpp
//
// Tagged tracer particles as a plug-in PhysicsModule (docs/MODULES.md).
// At its first step the module tags every `stride`-th particle of the
// source species (a snapshot copy — tracers are passive test particles
// from then on, moved by the module's own Boris push + periodic mover,
// never depositing current or perturbing the plasma). Each sampled step
// appends every tracer's phase-space point to a bounded trajectory ring
// buffer — the in-memory diagnostic stream, flushed under the step's
// "diag" resource so it composes with the diagnostics phase ordering.
//
// Tracers live in a module-owned AoS vector regardless of the species
// layout, so trajectories are bit-identical across AoS/SoA/AoSoA and
// across the untiled/tiled execution shapes (the module plans a single
// phase ordered after the interpolator load). State (tracer particles,
// ring, counters) round-trips through the module checkpoint sections.
//
// CSV sink: when SimulationConfig::tracer_csv_path is set, new trajectory
// samples stream to that file — appended on every checkpoint (the
// PhysicsModule::on_checkpoint hook, so the CSV is exactly as durable as
// the checkpoint it rides with) and on module destruction. A watermark
// tracks what has been written; samples evicted from the ring before a
// flush are lost from the CSV too (size the ring to cover the checkpoint
// interval). After a restore the watermark resumes at the restored sample
// count: everything up to the checkpoint was flushed when it was taken.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/module.hpp"
#include "core/particle.hpp"

namespace vpic::core {

struct TracerParams {
  std::size_t species = 0;        // source species index
  index_t stride = 1024;          // tag every stride-th particle
  std::size_t max_tracers = 256;  // cap on tagged particles
  int sample_interval = 1;        // record every N steps
  std::size_t ring_capacity = 8192;  // samples retained (oldest evicted)
};

/// One trajectory point. POD: checkpoints as a raw vector section.
struct TracerSample {
  std::int64_t step;
  std::uint32_t id;
  std::int32_t voxel;
  float dx, dy, dz;
  float ux, uy, uz;
};

struct TracerParticle {
  std::uint32_t id;
  Particle p;
};

class TracerModule final : public PhysicsModule {
 public:
  explicit TracerModule(TracerParams prm = {}) : prm_(prm) {}
  ~TracerModule() override { flush_csv(); }

  [[nodiscard]] std::string_view id() const override { return "tracer"; }
  [[nodiscard]] StepStage stage() const override { return StepStage::Push; }
  void plan(Simulation& sim, const ModuleStepContext& ctx,
            StepComposer& c) override;
  void on_checkpoint(Simulation& sim) override;

  [[nodiscard]] bool has_state() const override { return true; }
  [[nodiscard]] std::uint32_t state_version() const override { return 1; }
  void save_state(ModuleStateWriter& w) const override;
  void load_state(ModuleStateReader& r, std::uint32_t version) override;
  void clear_state() override;

  [[nodiscard]] const TracerParams& params() const { return prm_; }
  [[nodiscard]] const std::vector<TracerParticle>& tracers() const {
    return tracers_;
  }
  /// Retained samples, oldest first.
  [[nodiscard]] std::vector<TracerSample> trajectory() const;
  [[nodiscard]] std::uint64_t samples_recorded() const { return total_; }
  /// Samples already streamed to the CSV sink (the flush watermark).
  [[nodiscard]] std::uint64_t samples_flushed() const { return csv_written_; }

 private:
  void run(Simulation& sim, std::int64_t next_step);
  /// Append unflushed samples to csv_path_ (no-op when unset/clean).
  void flush_csv();

  TracerParams prm_;
  bool seeded_ = false;
  std::vector<TracerParticle> tracers_;
  std::vector<TracerSample> ring_;
  std::size_t ring_head_ = 0;  // next overwrite position once full
  std::uint64_t total_ = 0;    // samples ever recorded
  std::string csv_path_;       // cached SimulationConfig::tracer_csv_path
  std::uint64_t csv_written_ = 0;  // samples flushed to the CSV so far
};

}  // namespace vpic::core
