// core/move_p.hpp
//
// VPIC's move_p: advance one particle by a cell-local displacement,
// splitting the trajectory at every cell face it crosses and depositing
// the charge-conserving current of each sub-segment into the accumulator
// of the cell that contains it. Periodic wrap is applied at domain faces
// (the multi-rank path instead flags the particle for exchange, see
// boundary.hpp).
#pragma once

#include "core/accumulator.hpp"
#include "core/grid.hpp"
#include "core/particle.hpp"

namespace vpic::core {

/// Outcome of moving one particle.
enum class MoveResult : std::uint8_t {
  Stayed,   // finished inside the local domain
  Wrapped,  // crossed a periodic domain face (single-rank mode)
  Exited,   // crossed a domain face in rank-exchange mode: caller must ship
};

/// Advance particle `p` by displacement (dispx, dispy, dispz) in cell-local
/// units, depositing current along the way. Per axis (bit 0 = x, 1 = y,
/// 2 = z): if the axis bit is set in `reflect_mask`, domain faces are
/// perfectly reflecting walls (the particle bounces, its normal momentum
/// flips — VPIC's "reflect_particles" boundary); else if set in
/// `periodic_mask` the faces wrap; else the particle Exits at the face
/// with the unfinished displacement stored in `remaining` (rank exchange
/// re-applies it after re-injection, exactly like VPIC's mover records).
/// `AccArray` is any deposit sink exposing `Accumulator& a(index_t voxel)`:
/// the global AccumulatorArray (atomic deposits under concurrent pushes) or
/// a tile-private core::TileAccumulator block (plain adds; core/tiles.hpp).
template <bool Atomic = true, class AccArray = AccumulatorArray>
MoveResult move_p(Particle& p, float dispx, float dispy, float dispz,
                  float qw, AccArray& acc, const Grid& g,
                  std::uint8_t periodic_mask = 0b111,
                  float* remaining = nullptr,
                  std::uint8_t reflect_mask = 0b000) {
  MoveResult result = MoveResult::Stayed;
  // A displacement can cross at most a few faces for CFL-respecting steps;
  // the loop bound guards against pathological inputs.
  for (int guard = 0; guard < 16; ++guard) {
    // Fraction of the remaining displacement until the first face.
    float f = 1.0f;
    int axis = -1;   // -1: stays inside
    int dir = 0;
    auto consider = [&](float pos, float disp, int ax) {
      if (disp > 0) {
        const float fa = (1.0f - pos) / disp;
        if (fa < f) {
          f = fa;
          axis = ax;
          dir = +1;
        }
      } else if (disp < 0) {
        const float fa = (-1.0f - pos) / disp;
        if (fa < f) {
          f = fa;
          axis = ax;
          dir = -1;
        }
      }
    };
    consider(p.dx, dispx, 0);
    consider(p.dy, dispy, 1);
    consider(p.dz, dispz, 2);
    if (f >= 1.0f) {
      f = 1.0f;
      axis = -1;
    }

    const float sx = dispx * f, sy = dispy * f, sz = dispz * f;
    const float mx = p.dx + 0.5f * sx;
    const float my = p.dy + 0.5f * sy;
    const float mz = p.dz + 0.5f * sz;
    accumulate_j(acc.a(p.i), qw, mx, my, mz, sx, sy, sz, Atomic);

    p.dx += sx;
    p.dy += sy;
    p.dz += sz;
    dispx -= sx;
    dispy -= sy;
    dispz -= sz;

    if (axis < 0) return result;  // finished inside the current cell

    // Snap to the face and hop to the neighbor cell.
    int ix, iy, iz;
    g.cell_of(p.i, ix, iy, iz);
    int c[3] = {ix, iy, iz};
    float* local[3] = {&p.dx, &p.dy, &p.dz};
    *local[axis] = static_cast<float>(-dir);  // enter from the far face
    c[axis] += dir;

    const int n_axis = (axis == 0) ? g.nx : (axis == 1) ? g.ny : g.nz;
    if (c[axis] < 1 || c[axis] > n_axis) {
      if (reflect_mask & (1u << axis)) {
        // Bounce: stay in the boundary cell on the face just reached,
        // reverse the remaining displacement and the normal momentum.
        c[axis] -= dir;
        *local[axis] = static_cast<float>(dir);
        float* disp[3] = {&dispx, &dispy, &dispz};
        *disp[axis] = -*disp[axis];
        float* mom[3] = {&p.ux, &p.uy, &p.uz};
        *mom[axis] = -*mom[axis];
        p.i = static_cast<std::int32_t>(g.voxel(c[0], c[1], c[2]));
        continue;
      }
      if (!(periodic_mask & (1u << axis))) {
        // Leave the particle in the ghost cell; the boundary exchange
        // re-injects it on the neighbor rank and completes the remaining
        // displacement there.
        p.i = static_cast<std::int32_t>(g.voxel(c[0], c[1], c[2]));
        if (remaining) {
          remaining[0] = dispx;
          remaining[1] = dispy;
          remaining[2] = dispz;
        }
        return MoveResult::Exited;
      }
      c[axis] = Grid::wrap(c[axis], n_axis);
      result = MoveResult::Wrapped;
    }
    p.i = static_cast<std::int32_t>(g.voxel(c[0], c[1], c[2]));
  }
  return result;
}

}  // namespace vpic::core
