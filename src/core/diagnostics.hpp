// core/diagnostics.hpp
//
// In-situ diagnostics for the PIC engine. The paper's Section 6 calls out
// "advanced diagnostics that can be run in the timestep" as a payoff of
// VPIC 2.0's performance headroom; this module provides the standard set:
// energy history tracking, per-cell fluid moments (density, momentum),
// particle momentum histograms, and field-plane extraction, all with CSV
// export for plotting.
#pragma once

#include <string>
#include <vector>

#include "core/field.hpp"
#include "core/particle.hpp"
#include "pk/pk.hpp"

namespace vpic::core {

/// Time series of the energy balance, appended once per sampled step.
class EnergyHistory {
 public:
  void record(std::int64_t step, double field,
              const std::vector<double>& species_ke);

  [[nodiscard]] std::size_t size() const noexcept { return steps_.size(); }
  [[nodiscard]] std::int64_t step(std::size_t i) const { return steps_[i]; }
  [[nodiscard]] double field(std::size_t i) const { return field_[i]; }
  [[nodiscard]] double kinetic(std::size_t i) const;
  [[nodiscard]] double total(std::size_t i) const {
    return field_[i] + kinetic(i);
  }

  /// Max |total(i) - total(0)| / total(0): the conservation figure of
  /// merit the physics tests bound.
  [[nodiscard]] double max_relative_drift() const;

  /// "step,field,ke_0,...,ke_n,total" rows.
  [[nodiscard]] std::string to_csv() const;

  // Row-level access + rebuild, used by the checkpoint serializer
  // (core/checkpoint.cpp) to round-trip the history bit-exactly.
  [[nodiscard]] std::size_t species_count(std::size_t i) const {
    return species_[i].size();
  }
  [[nodiscard]] double species_ke(std::size_t i, std::size_t s) const {
    return species_[i][s];
  }
  void clear() {
    steps_.clear();
    field_.clear();
    species_.clear();
  }

 private:
  std::vector<std::int64_t> steps_;
  std::vector<double> field_;
  std::vector<std::vector<double>> species_;
};

/// Per-cell fluid moments of one species on the interior grid.
struct Moments {
  pk::View<float, 1> density;    // sum of weights per cell / cell volume
  pk::View<float, 1> ux, uy, uz; // mean momentum per cell (0 where empty)
};

/// Gather the zeroth and first velocity moments of `sp` on `g`.
Moments compute_moments(const Species& sp, const Grid& g);

/// Histogram of one momentum component over [lo, hi) with `bins` bins;
/// out-of-range particles land in the edge bins.
struct Histogram {
  float lo = 0, hi = 0;
  std::vector<std::int64_t> counts;

  [[nodiscard]] std::int64_t total() const;
  [[nodiscard]] std::string to_csv() const;  // "bin_center,count" rows
};

enum class MomentumAxis : int { X = 0, Y = 1, Z = 2 };

Histogram momentum_histogram(const Species& sp, MomentumAxis axis, float lo,
                             float hi, int bins);

/// Extract one z-plane of a field component as CSV ("ix,iy,value" rows).
std::string field_plane_csv(const pk::View<float, 1>& component,
                            const Grid& g, int iz);

}  // namespace vpic::core
