// core/module.hpp
//
// Composable physics-module registry (docs/MODULES.md): Simulation::step()
// is no longer a hard-coded pipeline but a composition over registered
// PhysicsModule objects. Each module declares its step phases — name,
// read/write resource sets, cost hint, and (when the tiled step is active)
// a tiled variant — plus its versioned checkpoint sections and its
// counter-based RNG stream requirements. The core pipeline itself
// (interpolate, push, accumulate, field advance, injection, diagnostics,
// sort, checkpoint) is registered through the same interface
// (core/pipeline_modules.cpp), so build_step_graph / build_tiled_step_graph
// are generic composition: one source of truth for all three execution
// shapes (Sequential, Graph, tiled Deterministic/Stealing).
//
// This is the seam the plugin-registry PIC architectures (PIConGPU's
// plugin system, chombo-discharge's physics layers) use to absorb new
// physics without touching the scheduler: a new module — collisions
// (core/collide.hpp), tracer particles (core/tracer.hpp) — composes with
// the StepGraph validator, the StealPool tiling, checkpoint/restore, the
// vpic::tune cost models, and farm preemption for free, because each of
// those consumes the module's declarations instead of a hand-maintained
// list.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "ckpt/file.hpp"
#include "core/rng.hpp"
#include "core/step_graph.hpp"

namespace vpic::core {

class Simulation;
class TileMap;

/// Canonical position of a module's phases in the step. Modules plan in
/// ascending stage order (ties keep registration order), which is what
/// makes the serial-chain (Deterministic) schedule physically sensible
/// without any module knowing its neighbors.
enum class StepStage : std::uint8_t {
  Gather = 0,       // fields -> interpolator, accumulator clear
  Push = 10,        // particle advance (and passive movers, e.g. tracers)
  Deposit = 20,     // accumulator merge/reduce -> J
  Field = 30,       // Maxwell advance
  Inject = 40,      // deck injection hooks
  Collide = 50,     // momentum-space operators on post-injection particles
  Diagnose = 60,    // energy history, trajectory flushes
  Sort = 70,        // particle reordering
  Checkpoint = 80,  // periodic snapshot
};

/// FNV-1a over a string — stable module-id hashing for RNG domains.
inline std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Per-module counter-based RNG domain (docs/MODULES.md, "RNG streams").
/// A module derives one stream per logical site — conventionally
/// (step, substream, site) — and draws from it with the counter-based
/// generators in core/rng.hpp. Because a stream is a pure function of the
/// key and never of execution order, results are bit-deterministic across
/// worker counts, schedules, and particle layouts.
struct ModuleRng {
  std::uint64_t domain = 0;

  /// Derive a stream seed from up to three key components.
  [[nodiscard]] std::uint64_t stream(std::uint64_t a, std::uint64_t b = 0,
                                     std::uint64_t c = 0) const noexcept {
    return hash64(domain ^ hash64(a ^ hash64(b ^ hash64(c))));
  }
};

/// Build-time context handed to PhysicsModule::plan(): which step is being
/// built and under which execution shape. `poll` is the tile-granular
/// preemption hook (docs/FARM.md) — tiled phase bodies call it at entry so
/// a farm yield request is observed within one tile task; it is a no-op in
/// the untiled shapes.
struct ModuleStepContext {
  std::int64_t next_step = 0;  // step count once this step completes
  bool tiled = false;
  bool stealing = false;             // tiled Stealing (vs Deterministic)
  const TileMap* tiles = nullptr;    // valid when tiled
  std::function<void()> poll;        // no-op when untiled
};

/// Prefix-scoped writer for a module's checkpoint sections: every section
/// a module adds lands under "mod.<id>." so restore can skip an unknown
/// module's sections wholesale without understanding them.
class ModuleStateWriter {
 public:
  ModuleStateWriter(ckpt::FileWriter& w, std::string prefix)
      : w_(w), prefix_(std::move(prefix)) {}

  void add_bytes(std::string_view name, const void* data, std::size_t n) {
    w_.add_bytes(prefix_ + std::string(name), data, n);
  }
  template <class Pod>
  void add_pod(std::string_view name, const Pod& v) {
    w_.add_pod(prefix_ + std::string(name), v);
  }
  template <class Pod>
  void add_vector(std::string_view name, const std::vector<Pod>& v) {
    w_.add_vector(prefix_ + std::string(name), v);
  }

 private:
  ckpt::FileWriter& w_;
  std::string prefix_;
};

/// Prefix-scoped reader mirroring ModuleStateWriter. Wraps the abstract
/// ckpt::SectionSource, so module state restores identically from a plain
/// checkpoint file and from a resolved elastic generation chain
/// (docs/ELASTIC.md).
class ModuleStateReader {
 public:
  ModuleStateReader(ckpt::SectionSource& f, std::string prefix)
      : f_(f), prefix_(std::move(prefix)) {}

  [[nodiscard]] bool has(std::string_view name) const {
    return f_.has(prefix_ + std::string(name));
  }
  const ckpt::EncodedSection& section(std::string_view name) {
    return f_.section(prefix_ + std::string(name));
  }
  template <class Pod>
  Pod pod(std::string_view name) {
    return f_.pod<Pod>(prefix_ + std::string(name));
  }
  template <class Pod>
  std::vector<Pod> vector(std::string_view name) {
    return f_.vector<Pod>(prefix_ + std::string(name));
  }

 private:
  ckpt::SectionSource& f_;
  std::string prefix_;
};

/// One unregistered-module section group skipped during restore: the file
/// held state for a module this simulation does not have (or a newer state
/// version than the registered module understands). The restore succeeds —
/// everything else is applied — and the skip is reported here instead of
/// corrupting anything (docs/CHECKPOINT.md, "Forward compatibility").
struct ModuleSectionSkip {
  std::string module;          // module id from the file's mod.index
  std::uint32_t version = 0;   // state version the file recorded
  std::size_t sections = 0;    // "mod.<id>.*" sections left unread
};

class StepComposer;

/// A pluggable physics/pipeline component. Lifetime: owned by the
/// Simulation registry; attach() runs once at registration (the only time
/// a module may inspect the simulation outside a step); plan() runs at
/// the top of every step to contribute phases to that step's graph.
/// Modules MUST NOT store the Simulation& — simulations are moved (deck
/// factories return them by value); every hook re-receives the reference.
class PhysicsModule {
 public:
  virtual ~PhysicsModule() = default;

  /// Stable identifier: registry key, checkpoint section prefix
  /// ("mod.<id>."), RNG domain, prof counter namespace.
  [[nodiscard]] virtual std::string_view id() const = 0;

  [[nodiscard]] virtual StepStage stage() const = 0;

  /// Called once when the module is registered (after any same-stage
  /// predecessors). Derive RNG domains, seed module-owned particles, etc.
  virtual void attach(Simulation&) {}

  /// Contribute this step's phases. Called every step, in registry order,
  /// under all execution shapes; `ctx` says which shape is being built.
  /// A module that is idle this step simply adds nothing.
  virtual void plan(Simulation& sim, const ModuleStepContext& ctx,
                    StepComposer& c) = 0;

  // ---- checkpoint sections (versioned, module-owned) -----------------
  /// True when the module has state to serialize; stateless modules keep
  /// the default and add nothing to checkpoint files.
  [[nodiscard]] virtual bool has_state() const { return false; }
  [[nodiscard]] virtual std::uint32_t state_version() const { return 1; }
  virtual void save_state(ModuleStateWriter&) const {}
  virtual void load_state(ModuleStateReader&, std::uint32_t /*version*/) {}
  /// The restored file predates this module (no sections for it): reset
  /// to the attach-time state so restore is a complete overwrite.
  virtual void clear_state() {}

  /// Called right after every checkpoint is taken (sync and async alike,
  /// after the snapshot encode — the module's state is already captured).
  /// Durability hook for module-owned side outputs: the tracer module
  /// flushes its trajectory CSV here so external files never lag the
  /// checkpoint they would be replayed against.
  virtual void on_checkpoint(Simulation&) {}
};

/// The surface modules plan phases against. Wraps the step's StepGraph
/// with the composition conventions that keep a multi-module step both
/// valid (every declared conflict path-ordered) and bit-reproducible:
///
///  * serial-chain mode (tiled Deterministic): add() chains every phase to
///    the previous one — insertion order IS the schedule — and edge()/
///    join() are no-ops. A module that plans in registry order needs no
///    mode-specific logic to be correct here.
///  * spine/branch/join (untiled Graph + tiled Stealing): add_spine()
///    appends to the step's serial spine (ordered after the current tail
///    and every pending join, then becomes the tail); add_branch() hangs
///    off the tail without becoming it; join() parks a phase for the next
///    spine phase to order after (how per-species sorts rejoin before the
///    checkpoint, and how side phases like tracers order before the next
///    spine stage).
///  * anchors: well-known phase names published by earlier modules
///    ("interp_ready", "acc_ready") so later modules can order against
///    them without knowing which phase implements them in this shape.
///  * all_resources(): every resource declared by any phase so far — the
///    conservative write set of hooks that receive the whole Simulation&
///    (replaces the hand-rolled "everything" lists the pre-registry
///    builders maintained).
class StepComposer {
 public:
  StepComposer(StepGraph& g, bool serial_chain)
      : g_(g), serial_(serial_chain) {}

  /// Add a phase; ordering is the caller's job via edge()/anchors (in
  /// serial-chain mode the phase is chained to the previous one instead).
  void add(StepPhase p);

  /// Add a phase on the step spine: after tail + pending joins, becomes
  /// the tail, clears pending joins.
  void add_spine(StepPhase p);

  /// Add a phase ordered after the tail and pending joins without
  /// becoming the tail (pending joins stay pending).
  void add_branch(StepPhase p);

  /// Directed edge (no-op in serial-chain mode). Empty names are ignored,
  /// so `c.edge(c.anchor("..."), name)` is safe when the anchor is unset.
  void edge(const std::string& before, const std::string& after);

  /// Park `phase` for the next add_spine() to order after.
  void join(std::string phase);

  void set_tail(std::string phase) { tail_ = std::move(phase); }
  [[nodiscard]] const std::string& tail() const { return tail_; }

  void set_anchor(const std::string& key, std::string phase) {
    anchors_[key] = std::move(phase);
  }
  /// Phase name registered under `key`; "" when unset.
  [[nodiscard]] std::string anchor(const std::string& key) const {
    const auto it = anchors_.find(key);
    return it == anchors_.end() ? std::string() : it->second;
  }

  /// Every resource any phase has declared so far (sorted, deduped).
  [[nodiscard]] std::vector<std::string> all_resources() const {
    return {resources_.begin(), resources_.end()};
  }

  [[nodiscard]] bool serial_chain() const { return serial_; }
  [[nodiscard]] StepGraph& graph() { return g_; }

 private:
  StepGraph& g_;
  bool serial_;
  std::string last_added_;          // serial-chain predecessor
  std::string tail_;                // spine tail
  std::vector<std::string> pending_;  // parked joins
  std::map<std::string, std::string> anchors_;
  std::set<std::string> resources_;
};

/// Register the built-in pipeline modules (interpolate/push/accumulate/
/// field/injection/diagnostics/sort/ckpt) on a fresh Simulation. Called by
/// the Simulation constructor; defined in core/pipeline_modules.cpp.
void register_core_pipeline(Simulation& sim);

}  // namespace vpic::core
