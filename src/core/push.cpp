// core/push.cpp — the four vectorization-strategy implementations of the
// particle push. See push.hpp for the strategy taxonomy.
//
// Every kernel is written ONCE against the particle-accessor concept
// (core/particle_store.hpp: load/store/cell + load_vecs) and instantiated
// per ParticleLayout by dispatch_layout() — the layout switch happens once
// per advance_species call, never inside a particle loop. The structural
// tuning constants (block size, vector widths) come from
// core/push_tuning.hpp; the AutoDetect dispatch gates are read from the
// active_push_gates() registry, which the startup autotuner (src/tune)
// calibrates per host and per layout.
#include "core/push.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <type_traits>

#include "core/move_p.hpp"
#include "core/tiles.hpp"
#include "core/push_tuning.hpp"
#include "prof/prof.hpp"
#include "simd/simd.hpp"
#include "sort/runs.hpp"
#include "v4/v4.hpp"

namespace vpic::core {

namespace {

struct PushConsts {
  float qdt2m;   // q dt / 2m: half-step acceleration factor
  float cdtdx2;  // 2 c dt / dx: velocity -> cell-local displacement
  float cdtdy2;
  float cdtdz2;
  float qw_sign;  // charge (per-particle weight multiplies in)
};

PushConsts make_consts(const Species& sp, const Grid& g) {
  PushConsts c;
  c.qdt2m = 0.5f * sp.q * g.dt / sp.m;
  c.cdtdx2 = 2.0f * g.cvac * g.dt / g.dx;
  c.cdtdy2 = 2.0f * g.cvac * g.dt / g.dy;
  c.cdtdz2 = 2.0f * g.cvac * g.dt / g.dz;
  c.qw_sign = sp.q;
  return c;
}

/// Deposits into the shared global array must be atomic under concurrent
/// pushes; a tile-private TileAccumulator block is only ever touched by
/// its (serial) owning task, so plain adds suffice — and atomic float add
/// is bitwise-identical to plain add, so the choice never changes physics.
template <class AccA>
inline constexpr bool kAtomicDeposit = std::is_same_v<AccA, AccumulatorArray>;

/// Complete a particle's move, honoring the boundary options: periodic
/// wrap by default, reflecting walls on reflect_mask axes, exit-collection
/// for rank-decomposed axes.
template <class AccA>
inline void finish_move(Particle& p, float dispx, float dispy, float dispz,
                        float qw, AccA& acc, const Grid& g,
                        const MoverOptions& opts) {
  if (opts.exits == nullptr) {
    move_p<kAtomicDeposit<AccA>>(p, dispx, dispy, dispz, qw, acc, g,
                                 opts.periodic_mask, nullptr,
                                 opts.reflect_mask);
    return;
  }
  float rem[3] = {0, 0, 0};
  const MoveResult r =
      move_p<kAtomicDeposit<AccA>>(p, dispx, dispy, dispz, qw, acc, g,
                                   opts.periodic_mask, rem, opts.reflect_mask);
  if (r == MoveResult::Exited) {
    ExitRecord rec;
    rec.p = p;
    rec.rem[0] = rem[0];
    rec.rem[1] = rem[1];
    rec.rem[2] = rem[2];
    if (opts.exits_mutex) {
      std::lock_guard lk(*opts.exits_mutex);
      opts.exits->push_back(rec);
    } else {
      opts.exits->push_back(rec);
    }
    p.i = -1;  // tombstone; compact_exited() removes it
  }
}

/// Scalar Boris rotation + half-accelerations. Returns updated momentum.
inline void boris(float& ux, float& uy, float& uz, float hax, float hay,
                  float haz, float cbx, float cby, float cbz, float qdt2m) {
  ux += hax;
  uy += hay;
  uz += haz;
  const float gmi = 1.0f / std::sqrt(1.0f + ux * ux + uy * uy + uz * uz);
  const float tx = qdt2m * cbx * gmi;
  const float ty = qdt2m * cby * gmi;
  const float tz = qdt2m * cbz * gmi;
  const float t2 = tx * tx + ty * ty + tz * tz;
  const float sfac = 2.0f / (1.0f + t2);
  const float sx = tx * sfac, sy = ty * sfac, sz = tz * sfac;
  const float wx = ux + (uy * tz - uz * ty);
  const float wy = uy + (uz * tx - ux * tz);
  const float wz = uz + (ux * ty - uy * tx);
  ux += wy * sz - wz * sy;
  uy += wz * sx - wx * sz;
  uz += wx * sy - wy * sx;
  ux += hax;
  uy += hay;
  uz += haz;
}

/// The per-particle generic push body, shared verbatim by the parallel
/// Auto kernel, the scalar tails of the blocked strategies, and the
/// serial tile-range path — one definition so the tiled sequential mode
/// is bit-identical to the untiled kernels by construction.
template <class A, class AccA>
inline void push_one(const A& a, index_t n, const InterpolatorArray& interp,
                     AccA& acc, const Grid& g, const MoverOptions& opts,
                     const PushConsts& c) {
  Particle p = a.load(n);
  const Interpolator& ip = interp(p.i);
  const FieldsAtPoint f = interpolate(ip, p.dx, p.dy, p.dz);
  boris(p.ux, p.uy, p.uz, c.qdt2m * f.ex, c.qdt2m * f.ey, c.qdt2m * f.ez,
        f.bx, f.by, f.bz, c.qdt2m);
  const float rg =
      1.0f / std::sqrt(1.0f + p.ux * p.ux + p.uy * p.uy + p.uz * p.uz);
  const float dispx = c.cdtdx2 * p.ux * rg;
  const float dispy = c.cdtdy2 * p.uy * rg;
  const float dispz = c.cdtdz2 * p.uz * rg;
  finish_move(p, dispx, dispy, dispz, c.qw_sign * p.w, acc, g, opts);
  a.store(n, p);
}

/// Shared scalar push over [n0, n1): the remainder tail of the blocked
/// Manual/AdHoc strategies (one implementation instead of two copies).
/// Runs under its own prof region so summaries attribute tail work
/// separately from the vector kernels.
template <class A, class AccA>
void push_scalar_range(const A& a, const InterpolatorArray& interp,
                       AccA& acc, const Grid& g, const MoverOptions& opts,
                       const PushConsts& c, index_t n0, index_t n1) {
  if (n0 >= n1) return;
  prof::ScopedRegion tail("push_scalar_tail");
  for (index_t n = n0; n < n1; ++n) push_one(a, n, interp, acc, g, opts, c);
}

// ----------------------------------------------------------------------
// Auto: one loop over particles, written the portable way, vectorization
// left to the compiler (it will not vectorize through move_p).
// ----------------------------------------------------------------------
template <class A>
void push_auto(Species& sp, const A& a, const InterpolatorArray& interp,
               AccumulatorArray& acc, const Grid& g,
               const MoverOptions& opts) {
  const PushConsts c = make_consts(sp, g);
  pk::parallel_for("advance_p[auto]", sp.np, [&](index_t n) {
    push_one(a, n, interp, acc, g, opts, c);
  });
}

// ----------------------------------------------------------------------
// Guided: kernel split. Phase 1 (forced-SIMD): gather + Boris + new
// momenta + displacements into block-local arrays. Phase 2 (scalar): the
// branchy mover. The split is the paper's "separate difficult-to-
// vectorize" refactoring; #pragma omp simd is the guided pragma.
// ----------------------------------------------------------------------
/// One Guided block [n0, n1), n1 - n0 <= kPushBlock: forced-SIMD compute
/// phase into stack arrays, then the scalar mover phase. Per-particle
/// results are independent of the blocking, so the serial tile-range path
/// reuses this with tile-local block bases and stays bit-identical.
template <class A, class AccA>
inline void push_guided_block(const A& a, const InterpolatorArray& interp,
                              AccA& acc, const Grid& g,
                              const MoverOptions& opts, const PushConsts& c,
                              index_t n0, index_t n1) {
  constexpr index_t kBlock = kPushBlock;
  const int cnt = static_cast<int>(n1 - n0);
  float dispx[kBlock], dispy[kBlock], dispz[kBlock];
  float nux[kBlock], nuy[kBlock], nuz[kBlock];

  PK_OMP_SIMD
    for (int k = 0; k < cnt; ++k) {
      const Particle p = a.load(n0 + k);
      const Interpolator& ip = interp(p.i);
      const float ex =
          ip.ex + p.dy * ip.dexdy + p.dz * (ip.dexdz + p.dy * ip.d2exdydz);
      const float ey =
          ip.ey + p.dz * ip.deydz + p.dx * (ip.deydx + p.dz * ip.d2eydzdx);
      const float ez =
          ip.ez + p.dx * ip.dezdx + p.dy * (ip.dezdy + p.dx * ip.d2ezdxdy);
      const float cbx = ip.cbx + p.dx * ip.dcbxdx;
      const float cby = ip.cby + p.dy * ip.dcbydy;
      const float cbz = ip.cbz + p.dz * ip.dcbzdz;
      float ux = p.ux, uy = p.uy, uz = p.uz;
      boris(ux, uy, uz, c.qdt2m * ex, c.qdt2m * ey, c.qdt2m * ez, cbx, cby,
            cbz, c.qdt2m);
      const float rg = 1.0f / std::sqrt(1.0f + ux * ux + uy * uy + uz * uz);
      nux[k] = ux;
      nuy[k] = uy;
      nuz[k] = uz;
      dispx[k] = c.cdtdx2 * ux * rg;
      dispy[k] = c.cdtdy2 * uy * rg;
      dispz[k] = c.cdtdz2 * uz * rg;
    }
  for (int k = 0; k < cnt; ++k) {
    Particle p = a.load(n0 + k);
    p.ux = nux[k];
    p.uy = nuy[k];
    p.uz = nuz[k];
    finish_move(p, dispx[k], dispy[k], dispz[k], c.qw_sign * p.w, acc, g,
                opts);
    a.store(n0 + k, p);
  }
}

template <class A>
void push_guided(Species& sp, const A& a, const InterpolatorArray& interp,
                 AccumulatorArray& acc, const Grid& g,
                 const MoverOptions& opts) {
  constexpr index_t kBlock = kPushBlock;
  const PushConsts c = make_consts(sp, g);
  const index_t nblocks = (sp.np + kBlock - 1) / kBlock;
  pk::parallel_for("advance_p[guided]", nblocks, [&](index_t b) {
    const index_t n0 = b * kBlock;
    const index_t n1 = std::min(sp.np, n0 + kBlock);
    push_guided_block(a, interp, acc, g, opts, c, n0, n1);
  });
}

// ----------------------------------------------------------------------
// Manual: portable SIMD library. 8-lane blocks (the particle record is 8
// floats), vector Boris, scalar mover. The block load is the accessor's
// load_vecs: an 8x8 register transpose for AoS, straight dense plane /
// tile-row loads for SoA / AoSoA.
// ----------------------------------------------------------------------
/// One full W-wide Manual block starting at n0: vector Boris off a
/// load_vecs transpose, scalar movers. Used by the parallel kernel (lane
/// bases aligned to the array) and the serial tile-range path (lane bases
/// aligned to the tile range — same physics, few-ulp when misaligned).
template <class A, class AccA>
inline void push_manual_block(const A& a, const InterpolatorArray& interp,
                              AccA& acc, const Grid& g,
                              const MoverOptions& opts, const PushConsts& c,
                              index_t n0) {
  constexpr int W = kManualVecWidth;
  using F = simd::simd<float, W>;
  {
    const ParticleVecs<W> v = a.template load_vecs<W>(n0);
    const F dx = v.dx, dy = v.dy, dz = v.dz;
    F ux = v.ux, uy = v.uy, uz = v.uz;
    // Interpolator gathers, one field at a time.
    auto gf = [&](auto member) {
      return F([&](int l) { return interp(v.cell[l]).*member; });
    };
    const F ex = gf(&Interpolator::ex) + dy * gf(&Interpolator::dexdy) +
                 dz * (gf(&Interpolator::dexdz) +
                       dy * gf(&Interpolator::d2exdydz));
    const F ey = gf(&Interpolator::ey) + dz * gf(&Interpolator::deydz) +
                 dx * (gf(&Interpolator::deydx) +
                       dz * gf(&Interpolator::d2eydzdx));
    const F ez = gf(&Interpolator::ez) + dx * gf(&Interpolator::dezdx) +
                 dy * (gf(&Interpolator::dezdy) +
                       dx * gf(&Interpolator::d2ezdxdy));
    const F cbx = gf(&Interpolator::cbx) + dx * gf(&Interpolator::dcbxdx);
    const F cby = gf(&Interpolator::cby) + dy * gf(&Interpolator::dcbydy);
    const F cbz = gf(&Interpolator::cbz) + dz * gf(&Interpolator::dcbzdz);

    const F qdt2m(c.qdt2m);
    const F hax = qdt2m * ex, hay = qdt2m * ey, haz = qdt2m * ez;
    ux += hax;
    uy += hay;
    uz += haz;
    const F one(1.0f);
    const F gmi = simd::rsqrt(one + ux * ux + uy * uy + uz * uz);
    const F tx = qdt2m * cbx * gmi;
    const F ty = qdt2m * cby * gmi;
    const F tz = qdt2m * cbz * gmi;
    const F sfac = F(2.0f) / (one + tx * tx + ty * ty + tz * tz);
    const F wx = ux + (uy * tz - uz * ty);
    const F wy = uy + (uz * tx - ux * tz);
    const F wz = uz + (ux * ty - uy * tx);
    ux += (wy * tz - wz * ty) * sfac + hax;
    uy += (wz * tx - wx * tz) * sfac + hay;
    uz += (wx * ty - wy * tx) * sfac + haz;

    const F rg = simd::rsqrt(one + ux * ux + uy * uy + uz * uz);
    const F dispx = F(c.cdtdx2) * ux * rg;
    const F dispy = F(c.cdtdy2) * uy * rg;
    const F dispz = F(c.cdtdz2) * uz * rg;

    for (int l = 0; l < W; ++l) {
      Particle p;
      p.dx = dx[l];
      p.dy = dy[l];
      p.dz = dz[l];
      p.i = v.cell[l];
      p.ux = ux[l];
      p.uy = uy[l];
      p.uz = uz[l];
      p.w = v.w[l];
      finish_move(p, dispx[l], dispy[l], dispz[l], c.qw_sign * p.w, acc, g,
                  opts);
      a.store(n0 + l, p);
    }
  }
}

template <class A>
void push_manual(Species& sp, const A& a, const InterpolatorArray& interp,
                 AccumulatorArray& acc, const Grid& g,
                 const MoverOptions& opts) {
  constexpr int W = kManualVecWidth;
  const PushConsts c = make_consts(sp, g);
  const index_t nfull = sp.np / W;

  pk::parallel_for("advance_p[manual]", nfull, [&](index_t b) {
    push_manual_block(a, interp, acc, g, opts, c, b * W);
  });

  push_scalar_range(a, interp, acc, g, opts, c, nfull * W, sp.np);
}

// ----------------------------------------------------------------------
// AdHoc: VPIC 1.2 style — the per-ISA v4 intrinsics library, 4-particle
// blocks, two 4x4 register transposes per load. The transposes want the
// packed AoS record; non-AoS layouts stage each block into a local AoS
// scratch tile first (the historical pipeline simply was not built for
// them — AdHoc exists as the paper's legacy baseline).
// ----------------------------------------------------------------------
template <class A>
void push_adhoc(Species& sp, const A& a, const InterpolatorArray& interp,
                AccumulatorArray& acc, const Grid& g,
                const MoverOptions& opts) {
  using V = v4::vfloat4;
  constexpr int W = kAdHocVecWidth;
  const PushConsts c = make_consts(sp, g);
  const index_t nfull = sp.np / W;

  pk::parallel_for("advance_p[adhoc]", nfull, [&](index_t b) {
    const index_t n0 = b * W;
    Particle staged[W];
    const float* base;
    if constexpr (A::layout == ParticleLayout::AoS) {
      base = reinterpret_cast<const float*>(a.p + n0);
    } else {
      for (int l = 0; l < W; ++l) staged[l] = a.load(n0 + l);
      base = reinterpret_cast<const float*>(staged);
    }
    // Transpose positions (fields 0-3) and momenta+weight (fields 4-7).
    V dx = V::load(base + 0), dy = V::load(base + 8), dz = V::load(base + 16),
      ci = V::load(base + 24);
    V::transpose(dx, dy, dz, ci);
    V ux = V::load(base + 4), uy = V::load(base + 12), uz = V::load(base + 20),
      w = V::load(base + 28);
    V::transpose(ux, uy, uz, w);

    std::int32_t cell[W];
    {
      float tmp[W];
      ci.store(tmp);
      std::memcpy(cell, tmp, sizeof(cell));
    }
    auto gf = [&](auto member) {
      V r;
      for (int l = 0; l < W; ++l) r.set(l, interp(cell[l]).*member);
      return r;
    };
    const V ex = gf(&Interpolator::ex) + dy * gf(&Interpolator::dexdy) +
                 dz * (gf(&Interpolator::dexdz) +
                       dy * gf(&Interpolator::d2exdydz));
    const V ey = gf(&Interpolator::ey) + dz * gf(&Interpolator::deydz) +
                 dx * (gf(&Interpolator::deydx) +
                       dz * gf(&Interpolator::d2eydzdx));
    const V ez = gf(&Interpolator::ez) + dx * gf(&Interpolator::dezdx) +
                 dy * (gf(&Interpolator::dezdy) +
                       dx * gf(&Interpolator::d2ezdxdy));
    const V cbx = gf(&Interpolator::cbx) + dx * gf(&Interpolator::dcbxdx);
    const V cby = gf(&Interpolator::cby) + dy * gf(&Interpolator::dcbydy);
    const V cbz = gf(&Interpolator::cbz) + dz * gf(&Interpolator::dcbzdz);

    const V qdt2m(c.qdt2m);
    const V hax = qdt2m * ex, hay = qdt2m * ey, haz = qdt2m * ez;
    ux = ux + hax;
    uy = uy + hay;
    uz = uz + haz;
    const V one(1.0f);
    const V gmi = V::rsqrt(one + ux * ux + uy * uy + uz * uz);
    const V tx = qdt2m * cbx * gmi;
    const V ty = qdt2m * cby * gmi;
    const V tz = qdt2m * cbz * gmi;
    const V sfac = V(2.0f) / (one + tx * tx + ty * ty + tz * tz);
    const V wx = ux + (uy * tz - uz * ty);
    const V wy = uy + (uz * tx - ux * tz);
    const V wz = uz + (ux * ty - uy * tx);
    ux = ux + (wy * tz - wz * ty) * sfac + hax;
    uy = uy + (wz * tx - wx * tz) * sfac + hay;
    uz = uz + (wx * ty - wy * tx) * sfac + haz;

    const V rg = V::rsqrt(one + ux * ux + uy * uy + uz * uz);
    const V dispx = V(c.cdtdx2) * ux * rg;
    const V dispy = V(c.cdtdy2) * uy * rg;
    const V dispz = V(c.cdtdz2) * uz * rg;

    for (int l = 0; l < W; ++l) {
      Particle p;
      p.dx = dx[l];
      p.dy = dy[l];
      p.dz = dz[l];
      p.i = cell[l];
      p.ux = ux[l];
      p.uy = uy[l];
      p.uz = uz[l];
      p.w = w[l];
      finish_move(p, dispx[l], dispy[l], dispz[l], c.qw_sign * p.w, acc, g,
                  opts);
      a.store(n0 + l, p);
    }
  });

  push_scalar_range(a, interp, acc, g, opts, c, nfull * W, sp.np);
}

// ======================================================================
// Run-aware variants (docs/PUSH.md). The particle array is segmented into
// maximal same-cell runs; each run
//   * broadcasts its cell's 18-float interpolator record into registers
//     once (replacing W x 14 per-lane gathers with 14 scalar loads), and
//   * accumulates its current into a stack-local Accumulator with plain
//     adds, deposited into the global array with ONE batch of 12 atomics
//     per (run, home cell) instead of 12 per particle.
// Particles whose displacement leaves the cell fall back to the exact
// move_p path (atomic deposits per sub-segment), so physics is identical
// to the generic strategies on any particle order.
// ======================================================================

/// Merge a run's local accumulation into the global record. Other runs
/// (same cell appearing twice in unsorted input, or movers crossing in
/// from neighbor runs) may target the same record concurrently, so the
/// batch is atomic — except into a tile-private block, which only the
/// (serial) owning task touches.
inline void flush_run_accumulator(const Accumulator& local, Accumulator& g,
                                  bool atomic = true) {
  if (atomic) {
    for (int k = 0; k < 4; ++k) {
      pk::atomic_add(&g.jx[k], local.jx[k]);
      pk::atomic_add(&g.jy[k], local.jy[k]);
      pk::atomic_add(&g.jz[k], local.jz[k]);
    }
    return;
  }
  for (int k = 0; k < 4; ++k) {
    g.jx[k] += local.jx[k];
    g.jy[k] += local.jy[k];
    g.jz[k] += local.jz[k];
  }
}

/// Complete a run particle's move: the (overwhelmingly common) stays-in-
/// cell case deposits into the run-local accumulator with plain adds and
/// never touches the grid walk; cell crossers take the generic
/// finish_move/move_p path. The stay predicate and deposit reproduce
/// move_p's f >= 1 branch exactly (same midpoint, same += update).
template <class AccA>
inline void finish_move_run(Particle& p, float dispx, float dispy,
                            float dispz, float qw, Accumulator& local,
                            AccA& acc, const Grid& g,
                            const MoverOptions& opts) {
  const float nx = p.dx + dispx;
  const float ny = p.dy + dispy;
  const float nz = p.dz + dispz;
  if (nx <= 1.0f && nx >= -1.0f && ny <= 1.0f && ny >= -1.0f &&
      nz <= 1.0f && nz >= -1.0f) {
    accumulate_j(local, qw, p.dx + 0.5f * dispx, p.dy + 0.5f * dispy,
                 p.dz + 0.5f * dispz, dispx, dispy, dispz,
                 /*atomic=*/false);
    p.dx = nx;
    p.dy = ny;
    p.dz = nz;
    return;
  }
  finish_move(p, dispx, dispy, dispz, qw, acc, g, opts);
}

/// Scalar run body: push particles [n0, n1) of the run whose hoisted
/// interpolator is `ip`. Shared by the Auto variant and by the ragged
/// sub-W tails of the vectorized variants.
template <class A, class AccA>
inline void push_run_scalar(const A& a, const Interpolator& ip,
                            const PushConsts& c, index_t n0, index_t n1,
                            Accumulator& local, AccA& acc,
                            const Grid& g, const MoverOptions& opts) {
  for (index_t n = n0; n < n1; ++n) {
    Particle p = a.load(n);
    const FieldsAtPoint f = interpolate(ip, p.dx, p.dy, p.dz);
    boris(p.ux, p.uy, p.uz, c.qdt2m * f.ex, c.qdt2m * f.ey, c.qdt2m * f.ez,
          f.bx, f.by, f.bz, c.qdt2m);
    const float rg =
        1.0f / std::sqrt(1.0f + p.ux * p.ux + p.uy * p.uy + p.uz * p.uz);
    finish_move_run(p, c.cdtdx2 * p.ux * rg, c.cdtdy2 * p.uy * rg,
                    c.cdtdz2 * p.uz * rg, c.qw_sign * p.w, local, acc, g,
                    opts);
    a.store(n, p);
  }
}

/// One whole run, Auto style: hoisted interpolator, scalar body, one
/// flush. Shared by the parallel kernel and the serial run-range path.
template <class A, class AccA>
inline void run_body_auto(const A& a, const sort::CellRun& run,
                          const InterpolatorArray& interp, AccA& acc,
                          const Grid& g, const MoverOptions& opts,
                          const PushConsts& c) {
  const Interpolator ip = interp(run.cell);  // hoisted: once per run
  Accumulator local{};
  push_run_scalar(a, ip, c, run.begin, run.begin + run.count, local, acc, g,
                  opts);
  flush_run_accumulator(local, acc.a(run.cell), kAtomicDeposit<AccA>);
}

template <class A>
void push_auto_runs(Species& sp, const A& a, const InterpolatorArray& interp,
                    AccumulatorArray& acc, const Grid& g,
                    const MoverOptions& opts,
                    const std::vector<sort::CellRun>& runs) {
  const PushConsts c = make_consts(sp, g);
  pk::parallel_for(
      "advance_p[auto_runs]", static_cast<index_t>(runs.size()),
      [&](index_t r) {
        run_body_auto(a, runs[static_cast<std::size_t>(r)], interp, acc, g,
                      opts, c);
      });
}

/// One whole run, Guided style (blocked forced-SIMD compute + scalar
/// movers). Shared by the parallel kernel and the serial run-range path.
template <class A, class AccA>
inline void run_body_guided(const A& a, const sort::CellRun& run,
                            const InterpolatorArray& interp, AccA& acc,
                            const Grid& g, const MoverOptions& opts,
                            const PushConsts& c) {
  constexpr index_t kBlock = kPushBlock;
  {
        const Interpolator ip = interp(run.cell);
        Accumulator local{};
        float dispx[kBlock], dispy[kBlock], dispz[kBlock];
        float nux[kBlock], nuy[kBlock], nuz[kBlock];
        const index_t rend = run.begin + run.count;
        for (index_t n0 = run.begin; n0 < rend; n0 += kBlock) {
          const int cnt = static_cast<int>(std::min(rend - n0, kBlock));
          PK_OMP_SIMD
          for (int k = 0; k < cnt; ++k) {
            const Particle p = a.load(n0 + k);
            // Interpolation off broadcast scalars: the compiler hoists the
            // 14 ip loads out of the simd loop — no per-lane gather.
            const float ex = ip.ex + p.dy * ip.dexdy +
                             p.dz * (ip.dexdz + p.dy * ip.d2exdydz);
            const float ey = ip.ey + p.dz * ip.deydz +
                             p.dx * (ip.deydx + p.dz * ip.d2eydzdx);
            const float ez = ip.ez + p.dx * ip.dezdx +
                             p.dy * (ip.dezdy + p.dx * ip.d2ezdxdy);
            const float cbx = ip.cbx + p.dx * ip.dcbxdx;
            const float cby = ip.cby + p.dy * ip.dcbydy;
            const float cbz = ip.cbz + p.dz * ip.dcbzdz;
            float ux = p.ux, uy = p.uy, uz = p.uz;
            boris(ux, uy, uz, c.qdt2m * ex, c.qdt2m * ey, c.qdt2m * ez, cbx,
                  cby, cbz, c.qdt2m);
            const float rg =
                1.0f / std::sqrt(1.0f + ux * ux + uy * uy + uz * uz);
            nux[k] = ux;
            nuy[k] = uy;
            nuz[k] = uz;
            dispx[k] = c.cdtdx2 * ux * rg;
            dispy[k] = c.cdtdy2 * uy * rg;
            dispz[k] = c.cdtdz2 * uz * rg;
          }
          for (int k = 0; k < cnt; ++k) {
            Particle p = a.load(n0 + k);
            p.ux = nux[k];
            p.uy = nuy[k];
            p.uz = nuz[k];
            finish_move_run(p, dispx[k], dispy[k], dispz[k],
                            c.qw_sign * p.w, local, acc, g, opts);
            a.store(n0 + k, p);
          }
        }
        flush_run_accumulator(local, acc.a(run.cell), kAtomicDeposit<AccA>);
  }
}

template <class A>
void push_guided_runs(Species& sp, const A& a,
                      const InterpolatorArray& interp, AccumulatorArray& acc,
                      const Grid& g, const MoverOptions& opts,
                      const std::vector<sort::CellRun>& runs) {
  const PushConsts c = make_consts(sp, g);
  pk::parallel_for(
      "advance_p[guided_runs]", static_cast<index_t>(runs.size()),
      [&](index_t r) {
        run_body_guided(a, runs[static_cast<std::size_t>(r)], interp, acc, g,
                        opts, c);
      });
}

/// One whole run, Manual style (W-wide SIMD blocks + ragged scalar tail).
/// Shared by the parallel kernel and the serial run-range path.
template <class A, class AccA>
inline void run_body_manual(const A& a, const sort::CellRun& run,
                            const InterpolatorArray& interp, AccA& acc,
                            const Grid& g, const MoverOptions& opts,
                            const PushConsts& c) {
  constexpr int W = kManualVecWidth;
  using F = simd::simd<float, W>;
  {
        const Interpolator ip = interp(run.cell);
        Accumulator local{};
        const index_t rend = run.begin + run.count;
        const index_t nfull = run.begin + (run.count / W) * W;
        for (index_t n0 = run.begin; n0 < nfull; n0 += W) {
          // Runs start at arbitrary offsets; the accessor's load_vecs
          // handles the unaligned AoSoA case with a lane gather.
          const ParticleVecs<W> v = a.template load_vecs<W>(n0);
          const F dx = v.dx, dy = v.dy, dz = v.dz;
          F ux = v.ux, uy = v.uy, uz = v.uz;
          // Broadcast the hoisted interpolator: 14 scalar-load broadcasts
          // replacing the generic path's W x 14 indexed gathers.
          const F ex = F(ip.ex) + dy * F(ip.dexdy) +
                       dz * (F(ip.dexdz) + dy * F(ip.d2exdydz));
          const F ey = F(ip.ey) + dz * F(ip.deydz) +
                       dx * (F(ip.deydx) + dz * F(ip.d2eydzdx));
          const F ez = F(ip.ez) + dx * F(ip.dezdx) +
                       dy * (F(ip.dezdy) + dx * F(ip.d2ezdxdy));
          const F cbx = F(ip.cbx) + dx * F(ip.dcbxdx);
          const F cby = F(ip.cby) + dy * F(ip.dcbydy);
          const F cbz = F(ip.cbz) + dz * F(ip.dcbzdz);

          const F qdt2m(c.qdt2m);
          const F hax = qdt2m * ex, hay = qdt2m * ey, haz = qdt2m * ez;
          ux += hax;
          uy += hay;
          uz += haz;
          const F one(1.0f);
          const F gmi = simd::rsqrt(one + ux * ux + uy * uy + uz * uz);
          const F tx = qdt2m * cbx * gmi;
          const F ty = qdt2m * cby * gmi;
          const F tz = qdt2m * cbz * gmi;
          const F sfac = F(2.0f) / (one + tx * tx + ty * ty + tz * tz);
          const F wx = ux + (uy * tz - uz * ty);
          const F wy = uy + (uz * tx - ux * tz);
          const F wz = uz + (ux * ty - uy * tx);
          ux += (wy * tz - wz * ty) * sfac + hax;
          uy += (wz * tx - wx * tz) * sfac + hay;
          uz += (wx * ty - wy * tx) * sfac + haz;

          const F rg = simd::rsqrt(one + ux * ux + uy * uy + uz * uz);
          const F dispx = F(c.cdtdx2) * ux * rg;
          const F dispy = F(c.cdtdy2) * uy * rg;
          const F dispz = F(c.cdtdz2) * uz * rg;

          for (int l = 0; l < W; ++l) {
            Particle p;
            p.dx = dx[l];
            p.dy = dy[l];
            p.dz = dz[l];
            p.i = v.cell[l];
            p.ux = ux[l];
            p.uy = uy[l];
            p.uz = uz[l];
            p.w = v.w[l];
            finish_move_run(p, dispx[l], dispy[l], dispz[l],
                            c.qw_sign * p.w, local, acc, g, opts);
            a.store(n0 + l, p);
          }
        }
        // Ragged sub-W tail of the run.
        push_run_scalar(a, ip, c, nfull, rend, local, acc, g, opts);
        flush_run_accumulator(local, acc.a(run.cell), kAtomicDeposit<AccA>);
  }
}

template <class A>
void push_manual_runs(Species& sp, const A& a,
                      const InterpolatorArray& interp, AccumulatorArray& acc,
                      const Grid& g, const MoverOptions& opts,
                      const std::vector<sort::CellRun>& runs) {
  const PushConsts c = make_consts(sp, g);
  pk::parallel_for(
      "advance_p[manual_runs]", static_cast<index_t>(runs.size()),
      [&](index_t r) {
        run_body_manual(a, runs[static_cast<std::size_t>(r)], interp, acc, g,
                        opts, c);
      });
}

// ----------------------------------------------------------------------
// Serial tile-task kernels (docs/TILES.md): one tile's index range or run
// sublist, executed in order on the calling thread, depositing into
// either the global array (deterministic sequential mode) or a
// tile-private TileAccumulator block (stealing mode).
// ----------------------------------------------------------------------

template <class AccA>
void advance_range_serial_impl(Species& sp, const InterpolatorArray& interp,
                               AccA& acc, const Grid& g,
                               VectorStrategy strategy,
                               const MoverOptions& opts, index_t n0,
                               index_t n1) {
  if (n0 >= n1) return;
  const PushConsts c = make_consts(sp, g);
  dispatch_layout(sp.p, [&](auto a) {
    switch (strategy) {
      case VectorStrategy::Auto:
        for (index_t n = n0; n < n1; ++n)
          push_one(a, n, interp, acc, g, opts, c);
        break;
      case VectorStrategy::Guided:
        for (index_t b = n0; b < n1; b += kPushBlock)
          push_guided_block(a, interp, acc, g, opts, c, b,
                            std::min(n1, b + kPushBlock));
        break;
      case VectorStrategy::Manual: {
        constexpr int W = kManualVecWidth;
        const index_t nfull = n0 + ((n1 - n0) / W) * W;
        for (index_t b = n0; b < nfull; b += W)
          push_manual_block(a, interp, acc, g, opts, c, b);
        push_scalar_range(a, interp, acc, g, opts, c, nfull, n1);
        break;
      }
      case VectorStrategy::AdHoc:
        // The 4-wide transpose pipeline reads whole AoS blocks from a
        // fixed base; per-tile rebasing has no exact equivalent, so tiles
        // run the scalar pipeline (same physics within rsqrt ulps).
        push_scalar_range(a, interp, acc, g, opts, c, n0, n1);
        break;
    }
  });
}

template <class AccA>
void advance_runs_serial_impl(Species& sp, const InterpolatorArray& interp,
                              AccA& acc, const Grid& g,
                              VectorStrategy strategy,
                              const MoverOptions& opts,
                              const std::vector<sort::CellRun>& runs,
                              std::size_t r0, std::size_t r1) {
  if (strategy == VectorStrategy::AdHoc)
    throw std::invalid_argument(
        "advance_runs_serial: AdHoc has no run-aware variant");
  const PushConsts c = make_consts(sp, g);
  dispatch_layout(sp.p, [&](auto a) {
    for (std::size_t r = r0; r < r1 && r < runs.size(); ++r) {
      const sort::CellRun& run = runs[r];
      switch (strategy) {
        case VectorStrategy::Auto:
          run_body_auto(a, run, interp, acc, g, opts, c);
          break;
        case VectorStrategy::Guided:
          run_body_guided(a, run, interp, acc, g, opts, c);
          break;
        case VectorStrategy::Manual:
          run_body_manual(a, run, interp, acc, g, opts, c);
          break;
        case VectorStrategy::AdHoc:
          break;  // unreachable: thrown above
      }
    }
  });
}

}  // namespace

bool run_aware_profitable(const Species& sp) {
  // Gates are autotuned per host and per layout (src/tune; defaults in
  // core/push_tuning.hpp): below min_particles the per-run overhead and
  // segmentation pass dominate; beyond max_stale steps since the last
  // cell sort the probe is not worth running every step; the probe gates
  // on the estimated mean run length covering the per-run overhead
  // (hoisted 18-float load + 12-atomic flush amortized over the run).
  const PushGates& gates = active_push_gates(sp.p.layout());
  if (sp.np < gates.min_particles) return false;
  if (!sp.cell_sorted_hint || sp.steps_since_sort < 0) return false;
  if (sp.steps_since_sort == 0) return true;  // fresh from sort_particles
  if (sp.steps_since_sort > gates.max_stale) return false;
  return dispatch_layout(sp.p, [&](auto a) {
    const auto probe =
        sort::probe_runs(sp.np, [a](index_t i) { return a.cell(i); });
    return probe.mean_run_estimate() >= gates.min_mean_run;
  });
}

PushPath advance_species(Species& sp, const InterpolatorArray& interp,
                         AccumulatorArray& acc, const Grid& g,
                         VectorStrategy strategy, const MoverOptions& opts,
                         PushPath path) {
  prof::ScopedRegion region("advance_species");
  if (opts.exits != nullptr && opts.exits_mutex == nullptr &&
      pk::DefaultExecSpace::concurrency() > 1)
    throw std::logic_error(
        "advance_species: opts.exits requires opts.exits_mutex when the "
        "default execution space is concurrent (unlocked push_back from "
        "parallel mover lanes is a data race)");

  bool use_runs = false;
  switch (path) {
    case PushPath::Generic:
      break;
    case PushPath::RunAware:
      use_runs = strategy != VectorStrategy::AdHoc;  // AdHoc has no variant
      break;
    case PushPath::AutoDetect:
      use_runs =
          strategy != VectorStrategy::AdHoc && run_aware_profitable(sp);
      break;
  }
  prof::counter_add(use_runs ? "push.dispatch.run_aware"
                             : "push.dispatch.generic");

  if (use_runs) {
    {
      prof::ScopedRegion seg("segment_runs");
      dispatch_layout(sp.p, [&](auto a) {
        sort::segment_runs(sp.np, [a](index_t i) { return a.cell(i); },
                           sp.push_runs);
      });
    }
    dispatch_layout(sp.p, [&](auto a) {
      switch (strategy) {
        case VectorStrategy::Auto:
          push_auto_runs(sp, a, interp, acc, g, opts, sp.push_runs);
          break;
        case VectorStrategy::Guided:
          push_guided_runs(sp, a, interp, acc, g, opts, sp.push_runs);
          break;
        case VectorStrategy::Manual:
          push_manual_runs(sp, a, interp, acc, g, opts, sp.push_runs);
          break;
        case VectorStrategy::AdHoc:
          break;  // unreachable: filtered above
      }
    });
  } else {
    dispatch_layout(sp.p, [&](auto a) {
      switch (strategy) {
        case VectorStrategy::Auto:
          push_auto(sp, a, interp, acc, g, opts);
          break;
        case VectorStrategy::Guided:
          push_guided(sp, a, interp, acc, g, opts);
          break;
        case VectorStrategy::Manual:
          push_manual(sp, a, interp, acc, g, opts);
          break;
        case VectorStrategy::AdHoc:
          push_adhoc(sp, a, interp, acc, g, opts);
          break;
      }
    });
  }
  // Pushing moves particles across cells: age the sortedness hint.
  sp.mark_order_degraded();
  return use_runs ? PushPath::RunAware : PushPath::Generic;
}

void advance_species_runs(Species& sp, const InterpolatorArray& interp,
                          AccumulatorArray& acc, const Grid& g,
                          VectorStrategy strategy, const MoverOptions& opts,
                          const std::vector<sort::CellRun>& runs) {
  prof::ScopedRegion region("advance_species_runs");
  if (opts.exits != nullptr && opts.exits_mutex == nullptr &&
      pk::DefaultExecSpace::concurrency() > 1)
    throw std::logic_error(
        "advance_species_runs: opts.exits requires opts.exits_mutex when "
        "the default execution space is concurrent");
  if (strategy == VectorStrategy::AdHoc)
    throw std::invalid_argument(
        "advance_species_runs: AdHoc has no run-aware variant");
  dispatch_layout(sp.p, [&](auto a) {
    switch (strategy) {
      case VectorStrategy::Auto:
        push_auto_runs(sp, a, interp, acc, g, opts, runs);
        break;
      case VectorStrategy::Guided:
        push_guided_runs(sp, a, interp, acc, g, opts, runs);
        break;
      case VectorStrategy::Manual:
        push_manual_runs(sp, a, interp, acc, g, opts, runs);
        break;
      case VectorStrategy::AdHoc:
        break;  // unreachable: thrown above
    }
  });
}

void advance_range_serial(Species& sp, const InterpolatorArray& interp,
                          AccumulatorArray& acc, const Grid& g,
                          VectorStrategy strategy, const MoverOptions& opts,
                          index_t n0, index_t n1) {
  advance_range_serial_impl(sp, interp, acc, g, strategy, opts, n0, n1);
}

void advance_range_serial(Species& sp, const InterpolatorArray& interp,
                          TileAccumulator& acc, const Grid& g,
                          VectorStrategy strategy, const MoverOptions& opts,
                          index_t n0, index_t n1) {
  advance_range_serial_impl(sp, interp, acc, g, strategy, opts, n0, n1);
}

void advance_runs_serial(Species& sp, const InterpolatorArray& interp,
                         AccumulatorArray& acc, const Grid& g,
                         VectorStrategy strategy, const MoverOptions& opts,
                         const std::vector<sort::CellRun>& runs,
                         std::size_t r0, std::size_t r1) {
  advance_runs_serial_impl(sp, interp, acc, g, strategy, opts, runs, r0, r1);
}

void advance_runs_serial(Species& sp, const InterpolatorArray& interp,
                         TileAccumulator& acc, const Grid& g,
                         VectorStrategy strategy, const MoverOptions& opts,
                         const std::vector<sort::CellRun>& runs,
                         std::size_t r0, std::size_t r1) {
  advance_runs_serial_impl(sp, interp, acc, g, strategy, opts, runs, r0, r1);
}

bool run_aware_profitable_range(const Species& sp, index_t n0, index_t n1,
                                bool sorted_hint, int steps_since_sort) {
  const index_t n = n1 - n0;
  if (n <= 0) return false;
  const PushGates& gates = active_push_gates(sp.p.layout());
  if (n < gates.min_particles) return false;
  if (!sorted_hint || steps_since_sort < 0) return false;
  if (steps_since_sort == 0) return true;  // fresh from the tile sort
  if (steps_since_sort > gates.max_stale) return false;
  return dispatch_layout(sp.p, [&](auto a) {
    const auto probe = sort::probe_runs(
        n, [a, n0](index_t i) { return a.cell(n0 + i); });
    return probe.mean_run_estimate() >= gates.min_mean_run;
  });
}

index_t compact_exited(Species& sp) {
  return dispatch_layout(sp.p, [&](auto a) {
    index_t out = 0;
    for (index_t n = 0; n < sp.np; ++n) {
      if (a.cell(n) >= 0) {
        if (out != n) a.store(out, a.load(n));
        ++out;
      }
    }
    const index_t removed = sp.np - out;
    sp.np = out;
    return removed;
  });
}

}  // namespace vpic::core
