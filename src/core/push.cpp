// core/push.cpp — the four vectorization-strategy implementations of the
// particle push. See push.hpp for the strategy taxonomy.
#include "core/push.hpp"

#include <algorithm>
#include <cmath>

#include "core/move_p.hpp"
#include "prof/prof.hpp"
#include "simd/simd.hpp"
#include "v4/v4.hpp"

namespace vpic::core {

namespace {

struct PushConsts {
  float qdt2m;   // q dt / 2m: half-step acceleration factor
  float cdtdx2;  // 2 c dt / dx: velocity -> cell-local displacement
  float cdtdy2;
  float cdtdz2;
  float qw_sign;  // charge (per-particle weight multiplies in)
};

PushConsts make_consts(const Species& sp, const Grid& g) {
  PushConsts c;
  c.qdt2m = 0.5f * sp.q * g.dt / sp.m;
  c.cdtdx2 = 2.0f * g.cvac * g.dt / g.dx;
  c.cdtdy2 = 2.0f * g.cvac * g.dt / g.dy;
  c.cdtdz2 = 2.0f * g.cvac * g.dt / g.dz;
  c.qw_sign = sp.q;
  return c;
}

/// Complete a particle's move, honoring the boundary options: periodic
/// wrap by default, exit-collection for rank-decomposed axes.
inline void finish_move(Particle& p, float dispx, float dispy, float dispz,
                        float qw, AccumulatorArray& acc, const Grid& g,
                        const MoverOptions& opts) {
  if (opts.exits == nullptr) {
    move_p(p, dispx, dispy, dispz, qw, acc, g, opts.periodic_mask);
    return;
  }
  float rem[3] = {0, 0, 0};
  const MoveResult r = move_p(p, dispx, dispy, dispz, qw, acc, g,
                              opts.periodic_mask, rem);
  if (r == MoveResult::Exited) {
    ExitRecord rec;
    rec.p = p;
    rec.rem[0] = rem[0];
    rec.rem[1] = rem[1];
    rec.rem[2] = rem[2];
    if (opts.exits_mutex) {
      std::lock_guard lk(*opts.exits_mutex);
      opts.exits->push_back(rec);
    } else {
      opts.exits->push_back(rec);
    }
    p.i = -1;  // tombstone; compact_exited() removes it
  }
}

/// Scalar Boris rotation + half-accelerations. Returns updated momentum.
inline void boris(float& ux, float& uy, float& uz, float hax, float hay,
                  float haz, float cbx, float cby, float cbz, float qdt2m) {
  ux += hax;
  uy += hay;
  uz += haz;
  const float gmi = 1.0f / std::sqrt(1.0f + ux * ux + uy * uy + uz * uz);
  const float tx = qdt2m * cbx * gmi;
  const float ty = qdt2m * cby * gmi;
  const float tz = qdt2m * cbz * gmi;
  const float t2 = tx * tx + ty * ty + tz * tz;
  const float sfac = 2.0f / (1.0f + t2);
  const float sx = tx * sfac, sy = ty * sfac, sz = tz * sfac;
  const float wx = ux + (uy * tz - uz * ty);
  const float wy = uy + (uz * tx - ux * tz);
  const float wz = uz + (ux * ty - uy * tx);
  ux += wy * sz - wz * sy;
  uy += wz * sx - wx * sz;
  uz += wx * sy - wy * sx;
  ux += hax;
  uy += hay;
  uz += haz;
}

// ----------------------------------------------------------------------
// Auto: one loop over particles, written the portable way, vectorization
// left to the compiler (it will not vectorize through move_p).
// ----------------------------------------------------------------------
void push_auto(Species& sp, const InterpolatorArray& interp,
               AccumulatorArray& acc, const Grid& g,
               const MoverOptions& opts) {
  const PushConsts c = make_consts(sp, g);
  auto& pp = sp.p;
  pk::parallel_for("advance_p[auto]", sp.np, [&](index_t n) {
    Particle p = pp(n);
    const Interpolator& ip = interp(p.i);
    const FieldsAtPoint f = interpolate(ip, p.dx, p.dy, p.dz);
    boris(p.ux, p.uy, p.uz, c.qdt2m * f.ex, c.qdt2m * f.ey, c.qdt2m * f.ez,
          f.bx, f.by, f.bz, c.qdt2m);
    const float rg =
        1.0f / std::sqrt(1.0f + p.ux * p.ux + p.uy * p.uy + p.uz * p.uz);
    const float dispx = c.cdtdx2 * p.ux * rg;
    const float dispy = c.cdtdy2 * p.uy * rg;
    const float dispz = c.cdtdz2 * p.uz * rg;
    pp(n) = p;
    finish_move(pp(n), dispx, dispy, dispz, c.qw_sign * p.w, acc, g, opts);
  });
}

// ----------------------------------------------------------------------
// Guided: kernel split. Phase 1 (forced-SIMD): gather + Boris + new
// momenta + displacements into block-local arrays. Phase 2 (scalar): the
// branchy mover. The split is the paper's "separate difficult-to-
// vectorize" refactoring; #pragma omp simd is the guided pragma.
// ----------------------------------------------------------------------
void push_guided(Species& sp, const InterpolatorArray& interp,
                 AccumulatorArray& acc, const Grid& g,
                 const MoverOptions& opts) {
  constexpr index_t kBlock = 256;
  const PushConsts c = make_consts(sp, g);
  auto& pp = sp.p;
  const index_t nblocks = (sp.np + kBlock - 1) / kBlock;
  pk::parallel_for("advance_p[guided]", nblocks, [&](index_t b) {
    const index_t n0 = b * kBlock;
    const index_t n1 = std::min(sp.np, n0 + kBlock);
    const int cnt = static_cast<int>(n1 - n0);
    float dispx[kBlock], dispy[kBlock], dispz[kBlock];
    float nux[kBlock], nuy[kBlock], nuz[kBlock];

    PK_OMP_SIMD
    for (int k = 0; k < cnt; ++k) {
      const Particle& p = pp(n0 + k);
      const Interpolator& ip = interp(p.i);
      const float ex =
          ip.ex + p.dy * ip.dexdy + p.dz * (ip.dexdz + p.dy * ip.d2exdydz);
      const float ey =
          ip.ey + p.dz * ip.deydz + p.dx * (ip.deydx + p.dz * ip.d2eydzdx);
      const float ez =
          ip.ez + p.dx * ip.dezdx + p.dy * (ip.dezdy + p.dx * ip.d2ezdxdy);
      const float cbx = ip.cbx + p.dx * ip.dcbxdx;
      const float cby = ip.cby + p.dy * ip.dcbydy;
      const float cbz = ip.cbz + p.dz * ip.dcbzdz;
      float ux = p.ux, uy = p.uy, uz = p.uz;
      boris(ux, uy, uz, c.qdt2m * ex, c.qdt2m * ey, c.qdt2m * ez, cbx, cby,
            cbz, c.qdt2m);
      const float rg = 1.0f / std::sqrt(1.0f + ux * ux + uy * uy + uz * uz);
      nux[k] = ux;
      nuy[k] = uy;
      nuz[k] = uz;
      dispx[k] = c.cdtdx2 * ux * rg;
      dispy[k] = c.cdtdy2 * uy * rg;
      dispz[k] = c.cdtdz2 * uz * rg;
    }
    for (int k = 0; k < cnt; ++k) {
      Particle& p = pp(n0 + k);
      p.ux = nux[k];
      p.uy = nuy[k];
      p.uz = nuz[k];
      finish_move(p, dispx[k], dispy[k], dispz[k], c.qw_sign * p.w, acc, g,
                  opts);
    }
  });
}

// ----------------------------------------------------------------------
// Manual: portable SIMD library. 8-lane blocks (the particle record is 8
// floats, so an 8x8 register transpose converts AoS to SoA), per-lane
// gathers for the interpolator, vector Boris, scalar mover.
// ----------------------------------------------------------------------
void push_manual(Species& sp, const InterpolatorArray& interp,
                 AccumulatorArray& acc, const Grid& g,
                 const MoverOptions& opts) {
  constexpr int W = 8;
  using F = simd::simd<float, W>;
  const PushConsts c = make_consts(sp, g);
  auto& pp = sp.p;
  const index_t nfull = sp.np / W;

  pk::parallel_for("advance_p[manual]", nfull, [&](index_t b) {
    const index_t n0 = b * W;
    // AoS -> SoA in registers: 8 particles x 8 fields.
    auto rows = simd::load_transpose<float, W>(
        reinterpret_cast<const float*>(&pp(n0)), 8);
    F dx = rows[0], dy = rows[1], dz = rows[2];
    F ux = rows[4], uy = rows[5], uz = rows[6];
    // Lane l's voxel (bit pattern lives in rows[3]).
    std::int32_t cell[W];
    {
      alignas(64) float tmp[W];
      rows[3].store(tmp);
      std::memcpy(cell, tmp, sizeof(cell));
    }
    // Interpolator gathers, one field at a time.
    auto gf = [&](auto member) {
      return F([&](int l) { return interp(cell[l]).*member; });
    };
    const F ex = gf(&Interpolator::ex) + dy * gf(&Interpolator::dexdy) +
                 dz * (gf(&Interpolator::dexdz) +
                       dy * gf(&Interpolator::d2exdydz));
    const F ey = gf(&Interpolator::ey) + dz * gf(&Interpolator::deydz) +
                 dx * (gf(&Interpolator::deydx) +
                       dz * gf(&Interpolator::d2eydzdx));
    const F ez = gf(&Interpolator::ez) + dx * gf(&Interpolator::dezdx) +
                 dy * (gf(&Interpolator::dezdy) +
                       dx * gf(&Interpolator::d2ezdxdy));
    const F cbx = gf(&Interpolator::cbx) + dx * gf(&Interpolator::dcbxdx);
    const F cby = gf(&Interpolator::cby) + dy * gf(&Interpolator::dcbydy);
    const F cbz = gf(&Interpolator::cbz) + dz * gf(&Interpolator::dcbzdz);

    const F qdt2m(c.qdt2m);
    const F hax = qdt2m * ex, hay = qdt2m * ey, haz = qdt2m * ez;
    ux += hax;
    uy += hay;
    uz += haz;
    const F one(1.0f);
    const F gmi = simd::rsqrt(one + ux * ux + uy * uy + uz * uz);
    const F tx = qdt2m * cbx * gmi;
    const F ty = qdt2m * cby * gmi;
    const F tz = qdt2m * cbz * gmi;
    const F sfac = F(2.0f) / (one + tx * tx + ty * ty + tz * tz);
    const F wx = ux + (uy * tz - uz * ty);
    const F wy = uy + (uz * tx - ux * tz);
    const F wz = uz + (ux * ty - uy * tx);
    ux += (wy * tz - wz * ty) * sfac + hax;
    uy += (wz * tx - wx * tz) * sfac + hay;
    uz += (wx * ty - wy * tx) * sfac + haz;

    const F rg = simd::rsqrt(one + ux * ux + uy * uy + uz * uz);
    const F dispx = F(c.cdtdx2) * ux * rg;
    const F dispy = F(c.cdtdy2) * uy * rg;
    const F dispz = F(c.cdtdz2) * uz * rg;

    for (int l = 0; l < W; ++l) {
      Particle& p = pp(n0 + l);
      p.ux = ux[l];
      p.uy = uy[l];
      p.uz = uz[l];
      finish_move(p, dispx[l], dispy[l], dispz[l], c.qw_sign * p.w, acc, g,
                  opts);
    }
  });

  // Scalar tail.
  for (index_t n = nfull * W; n < sp.np; ++n) {
    Particle& p = pp(n);
    const Interpolator& ip = interp(p.i);
    const FieldsAtPoint f = interpolate(ip, p.dx, p.dy, p.dz);
    boris(p.ux, p.uy, p.uz, c.qdt2m * f.ex, c.qdt2m * f.ey, c.qdt2m * f.ez,
          f.bx, f.by, f.bz, c.qdt2m);
    const float rg =
        1.0f / std::sqrt(1.0f + p.ux * p.ux + p.uy * p.uy + p.uz * p.uz);
    finish_move(p, c.cdtdx2 * p.ux * rg, c.cdtdy2 * p.uy * rg,
                c.cdtdz2 * p.uz * rg, c.qw_sign * p.w, acc, g, opts);
  }
}

// ----------------------------------------------------------------------
// AdHoc: VPIC 1.2 style — the per-ISA v4 intrinsics library, 4-particle
// blocks, two 4x4 register transposes per load.
// ----------------------------------------------------------------------
void push_adhoc(Species& sp, const InterpolatorArray& interp,
                AccumulatorArray& acc, const Grid& g,
                const MoverOptions& opts) {
  using V = v4::vfloat4;
  constexpr int W = 4;
  const PushConsts c = make_consts(sp, g);
  auto& pp = sp.p;
  const index_t nfull = sp.np / W;

  pk::parallel_for("advance_p[adhoc]", nfull, [&](index_t b) {
    const index_t n0 = b * W;
    const float* base = reinterpret_cast<const float*>(&pp(n0));
    // Transpose positions (fields 0-3) and momenta+weight (fields 4-7).
    V dx = V::load(base + 0), dy = V::load(base + 8), dz = V::load(base + 16),
      ci = V::load(base + 24);
    V::transpose(dx, dy, dz, ci);
    V ux = V::load(base + 4), uy = V::load(base + 12), uz = V::load(base + 20),
      w = V::load(base + 28);
    V::transpose(ux, uy, uz, w);

    std::int32_t cell[W];
    {
      float tmp[W];
      ci.store(tmp);
      std::memcpy(cell, tmp, sizeof(cell));
    }
    auto gf = [&](auto member) {
      V r;
      for (int l = 0; l < W; ++l) r.set(l, interp(cell[l]).*member);
      return r;
    };
    const V ex = gf(&Interpolator::ex) + dy * gf(&Interpolator::dexdy) +
                 dz * (gf(&Interpolator::dexdz) +
                       dy * gf(&Interpolator::d2exdydz));
    const V ey = gf(&Interpolator::ey) + dz * gf(&Interpolator::deydz) +
                 dx * (gf(&Interpolator::deydx) +
                       dz * gf(&Interpolator::d2eydzdx));
    const V ez = gf(&Interpolator::ez) + dx * gf(&Interpolator::dezdx) +
                 dy * (gf(&Interpolator::dezdy) +
                       dx * gf(&Interpolator::d2ezdxdy));
    const V cbx = gf(&Interpolator::cbx) + dx * gf(&Interpolator::dcbxdx);
    const V cby = gf(&Interpolator::cby) + dy * gf(&Interpolator::dcbydy);
    const V cbz = gf(&Interpolator::cbz) + dz * gf(&Interpolator::dcbzdz);

    const V qdt2m(c.qdt2m);
    const V hax = qdt2m * ex, hay = qdt2m * ey, haz = qdt2m * ez;
    ux = ux + hax;
    uy = uy + hay;
    uz = uz + haz;
    const V one(1.0f);
    const V gmi = V::rsqrt(one + ux * ux + uy * uy + uz * uz);
    const V tx = qdt2m * cbx * gmi;
    const V ty = qdt2m * cby * gmi;
    const V tz = qdt2m * cbz * gmi;
    const V sfac = V(2.0f) / (one + tx * tx + ty * ty + tz * tz);
    const V wx = ux + (uy * tz - uz * ty);
    const V wy = uy + (uz * tx - ux * tz);
    const V wz = uz + (ux * ty - uy * tx);
    ux = ux + (wy * tz - wz * ty) * sfac + hax;
    uy = uy + (wz * tx - wx * tz) * sfac + hay;
    uz = uz + (wx * ty - wy * tx) * sfac + haz;

    const V rg = V::rsqrt(one + ux * ux + uy * uy + uz * uz);
    const V dispx = V(c.cdtdx2) * ux * rg;
    const V dispy = V(c.cdtdy2) * uy * rg;
    const V dispz = V(c.cdtdz2) * uz * rg;

    for (int l = 0; l < W; ++l) {
      Particle& p = pp(n0 + l);
      p.ux = ux[l];
      p.uy = uy[l];
      p.uz = uz[l];
      finish_move(p, dispx[l], dispy[l], dispz[l], c.qw_sign * p.w, acc, g,
                  opts);
    }
  });

  for (index_t n = nfull * W; n < sp.np; ++n) {
    Particle& p = pp(n);
    const Interpolator& ip = interp(p.i);
    const FieldsAtPoint f = interpolate(ip, p.dx, p.dy, p.dz);
    boris(p.ux, p.uy, p.uz, c.qdt2m * f.ex, c.qdt2m * f.ey, c.qdt2m * f.ez,
          f.bx, f.by, f.bz, c.qdt2m);
    const float rg =
        1.0f / std::sqrt(1.0f + p.ux * p.ux + p.uy * p.uy + p.uz * p.uz);
    finish_move(p, c.cdtdx2 * p.ux * rg, c.cdtdy2 * p.uy * rg,
                c.cdtdz2 * p.uz * rg, c.qw_sign * p.w, acc, g, opts);
  }
}

}  // namespace

void advance_species(Species& sp, const InterpolatorArray& interp,
                     AccumulatorArray& acc, const Grid& g,
                     VectorStrategy strategy, const MoverOptions& opts) {
  prof::ScopedRegion region("advance_species");
  switch (strategy) {
    case VectorStrategy::Auto:
      push_auto(sp, interp, acc, g, opts);
      break;
    case VectorStrategy::Guided:
      push_guided(sp, interp, acc, g, opts);
      break;
    case VectorStrategy::Manual:
      push_manual(sp, interp, acc, g, opts);
      break;
    case VectorStrategy::AdHoc:
      push_adhoc(sp, interp, acc, g, opts);
      break;
  }
}

index_t compact_exited(Species& sp) {
  index_t out = 0;
  for (index_t n = 0; n < sp.np; ++n) {
    if (sp.p(n).i >= 0) {
      if (out != n) sp.p(out) = sp.p(n);
      ++out;
    }
  }
  const index_t removed = sp.np - out;
  sp.np = out;
  return removed;
}

}  // namespace vpic::core
