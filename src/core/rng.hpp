// core/rng.hpp
//
// Counter-based deterministic RNG for particle initialization. Counter
// style (value = hash(seed, index)) makes initialization independent of
// thread count and rank layout, so a 2-rank run can be compared bitwise
// against a 1-rank run in the integration tests.
#pragma once

#include <cmath>
#include <cstdint>

namespace vpic::core {

/// splitmix64 finalizer: high-avalanche 64-bit hash.
inline std::uint64_t hash64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from (seed, counter).
inline double uniform01(std::uint64_t seed, std::uint64_t counter) noexcept {
  const std::uint64_t h = hash64(seed ^ hash64(counter));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Uniform double in (0, 1] (safe for log()).
inline double uniform01_open(std::uint64_t seed,
                             std::uint64_t counter) noexcept {
  return 1.0 - uniform01(seed, counter);
}

/// Standard normal via Box-Muller, two counters per call.
inline double normal(std::uint64_t seed, std::uint64_t counter) noexcept {
  const double u1 = uniform01_open(seed, 2 * counter);
  const double u2 = uniform01(seed, 2 * counter + 1);
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}

}  // namespace vpic::core
