// core/grid.hpp
//
// Yee grid geometry and voxel indexing for the PIC engine. Mirrors VPIC's
// conventions: an (nx, ny, nz) block of interior cells surrounded by one
// ghost layer; particles store a voxel index plus cell-local offsets in
// [-1, 1]; fields live on the staggered Yee mesh. Units are normalized
// (c = 1, eps0 = 1); dt and cell sizes are in those units.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>

#include "pk/pk.hpp"

namespace vpic::core {

using pk::index_t;

struct Grid {
  int nx = 0, ny = 0, nz = 0;  // interior cells
  float dx = 1, dy = 1, dz = 1;
  float dt = 0;
  float x0 = 0, y0 = 0, z0 = 0;  // local-domain origin (for decomposition)
  float cvac = 1.0f;             // speed of light

  Grid() = default;
  Grid(int nx_, int ny_, int nz_, float lx, float ly, float lz, float dt_)
      : nx(nx_),
        ny(ny_),
        nz(nz_),
        dx(lx / static_cast<float>(nx_)),
        dy(ly / static_cast<float>(ny_)),
        dz(lz / static_cast<float>(nz_)),
        dt(dt_) {
    assert(nx_ > 0 && ny_ > 0 && nz_ > 0);
  }

  /// Default timestep: a fraction of the 3-D Courant limit.
  static float courant_dt(float dx, float dy, float dz, float frac = 0.95f) {
    return frac / std::sqrt(1.0f / (dx * dx) + 1.0f / (dy * dy) +
                            1.0f / (dz * dz));
  }

  // Storage extents including the one-cell ghost shell.
  [[nodiscard]] int sx() const noexcept { return nx + 2; }
  [[nodiscard]] int sy() const noexcept { return ny + 2; }
  [[nodiscard]] int sz() const noexcept { return nz + 2; }
  [[nodiscard]] index_t nv() const noexcept {
    return static_cast<index_t>(sx()) * sy() * sz();
  }
  [[nodiscard]] index_t interior_cells() const noexcept {
    return static_cast<index_t>(nx) * ny * nz;
  }

  /// Voxel index of cell (ix, iy, iz); interior cells are 1..n inclusive.
  [[nodiscard]] index_t voxel(int ix, int iy, int iz) const noexcept {
    return (static_cast<index_t>(iz) * sy() + iy) * sx() + ix;
  }
  void cell_of(index_t v, int& ix, int& iy, int& iz) const noexcept {
    ix = static_cast<int>(v % sx());
    iy = static_cast<int>((v / sx()) % sy());
    iz = static_cast<int>(v / (static_cast<index_t>(sx()) * sy()));
  }
  [[nodiscard]] bool is_interior(index_t v) const noexcept {
    int ix, iy, iz;
    cell_of(v, ix, iy, iz);
    return ix >= 1 && ix <= nx && iy >= 1 && iy <= ny && iz >= 1 && iz <= nz;
  }

  /// Periodic wrap of an interior cell coordinate on this (local) grid.
  [[nodiscard]] static int wrap(int i, int n) noexcept {
    if (i < 1) return i + n;
    if (i > n) return i - n;
    return i;
  }
};

}  // namespace vpic::core
