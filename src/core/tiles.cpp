#include "core/tiles.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "prof/prof.hpp"
#include "sort/counting.hpp"

namespace vpic::core {

TileMap::TileMap(const Grid& g, int tiles) {
  plane_ = static_cast<index_t>(g.sx()) * g.sy();
  nz_ = g.nz;
  int t = std::clamp(tiles, 1, g.nz);
  const int base = g.nz / t;
  const int rem = g.nz % t;
  z_lo_.reserve(static_cast<std::size_t>(t));
  z_hi_.reserve(static_cast<std::size_t>(t));
  int z = 1;
  for (int i = 0; i < t; ++i) {
    const int planes = base + (i < rem ? 1 : 0);
    z_lo_.push_back(z);
    z_hi_.push_back(z + planes - 1);
    z += planes;
  }
  tile_of_plane_.assign(static_cast<std::size_t>(g.sz()), 0);
  for (int i = 0; i < t; ++i)
    for (int p = z_lo_[static_cast<std::size_t>(i)];
         p <= z_hi_[static_cast<std::size_t>(i)]; ++p)
      tile_of_plane_[static_cast<std::size_t>(p)] = i;
  tile_of_plane_[0] = 0;
  tile_of_plane_[static_cast<std::size_t>(g.nz + 1)] = t - 1;
}

int TileMap::auto_count(const Grid& g, int workers) {
  return std::clamp(4 * std::max(workers, 1), 1, g.nz);
}

TileAccumulator::TileAccumulator(const Grid& g, const TileMap& tm, int t) {
  // Window = the tile's planes plus one ghost plane each side. z_lo >= 1
  // and z_hi <= nz, so [z_lo-1, z_hi+1] always lies inside [0, nz+1].
  const index_t plane = tm.plane_voxels();
  v_base_ = static_cast<index_t>(tm.z_lo(t) - 1) * plane;
  win_size_ = static_cast<index_t>(tm.z_hi(t) + 1 - (tm.z_lo(t) - 1) + 1) *
              plane;
  win_.assign(static_cast<std::size_t>(win_size_), Accumulator{});
  (void)g;
}

void TileAccumulator::clear() {
  if (!win_.empty())
    std::memset(win_.data(), 0, win_.size() * sizeof(Accumulator));
  overflow_.clear();
}

void TileAccumulator::merge_into(AccumulatorArray& global) const {
  auto add = [](Accumulator& dst, const Accumulator& src) {
    for (int k = 0; k < 4; ++k) {
      dst.jx[k] += src.jx[k];
      dst.jy[k] += src.jy[k];
      dst.jz[k] += src.jz[k];
    }
  };
  for (index_t off = 0; off < win_size_; ++off)
    add(global.a(v_base_ + off), win_[static_cast<std::size_t>(off)]);
  // std::map iterates in ascending voxel order: deterministic merge.
  for (const auto& [v, rec] : overflow_) add(global.a(v), rec);
}

void bucket_by_tile(Species& sp, const TileMap& tm) {
  const int nt = tm.count();
  sp.tiles.resize(static_cast<std::size_t>(nt));
  const index_t n = sp.np;
  if (n <= 1) {
    // Degenerate: no permute needed (matches the untiled sort's n <= 1
    // early-out, keeping the ping-pong parity identical). The single
    // particle, if any, ranges into its owning tile.
    int home = 0;
    if (n == 1)
      home = dispatch_layout(sp.p, [&](auto a) {
        return tm.tile_of_voxel(static_cast<index_t>(a.cell(0)));
      });
    index_t pos = 0;
    for (int t = 0; t < nt; ++t) {
      TileSlot& slot = sp.tiles[static_cast<std::size_t>(t)];
      slot.begin = pos;
      if (t == home) pos += n;
      slot.end = pos;
      slot.sorted_hint = false;
      slot.steps_since_sort = -1;
    }
    return;
  }
  prof::ScopedRegion region("bucket_by_tile");
  sort::SortWorkspace& ws = sp.sort_ws;
  ws.reserve_pairs(n);
  sp.cell_keys(ws.keys);
  const std::uint32_t* vox = ws.keys.data();
  std::uint32_t* tkeys = ws.keys_alt.data();
  for (index_t i = 0; i < n; ++i)
    tkeys[i] = static_cast<std::uint32_t>(
        tm.tile_of_voxel(static_cast<index_t>(vox[i])));

  // Serial stable counting sort over tile ids (bound = tile count); the
  // exclusive-scan offsets ARE the tile ranges, captured before the
  // scatter consumes them.
  const index_t bound = static_cast<index_t>(nt);
  index_t* offsets =
      ws.reserve_histogram(sort::detail::counting_hist_cells(1, bound));
  sort::detail::counting_offsets(tkeys, n, bound, offsets, 1);
  for (int t = 0; t < nt; ++t) {
    TileSlot& slot = sp.tiles[static_cast<std::size_t>(t)];
    slot.begin = offsets[t];
    slot.end = t + 1 < nt ? offsets[t + 1] : n;
    slot.sorted_hint = false;
    slot.steps_since_sort = -1;
  }
  index_t* const perm = ws.perm.data();
  sort::detail::counting_scatter_index(tkeys, n, bound, offsets, 1, perm);

  ParticleStore& scratch = sp.sort_scratch();
  dispatch_layout(sp.p, [&](auto sa) {
    dispatch_layout(scratch, [&](auto da) {
      pk::parallel_for("tiles/bucket_gather", n,
                       [=](index_t i) { da.store(i, sa.load(perm[i])); });
    });
  });
  std::swap(sp.p, sp.p_scratch);
  prof::counter_add("tiles.bucket");
}

void sort_tile(Species& sp, const TileMap& tm, int t) {
  TileSlot& slot = sp.tiles.at(static_cast<std::size_t>(t));
  const index_t b = slot.begin, n = slot.count();
  ParticleStore& scratch = sp.sort_scratch();
  if (n <= 0) return;
  const index_t v0 = tm.v_lo(t);
  const index_t bound = tm.v_hi(t) - v0;
  slot.keys.resize(static_cast<std::size_t>(n));
  slot.perm.resize(static_cast<std::size_t>(n));
  slot.offsets.resize(sort::detail::counting_hist_cells(1, bound));
  std::uint32_t* keys = slot.keys.data();
  dispatch_layout(sp.p, [&](auto a) {
    for (index_t i = 0; i < n; ++i) {
      index_t k = static_cast<index_t>(a.cell(b + i)) - v0;
      // Live particles sit inside the tile's interval after bucketing;
      // the clamp only guards the histogram against corrupted cells.
      keys[i] = static_cast<std::uint32_t>(std::clamp(k, index_t{0},
                                                      bound - 1));
    }
  });
  sort::detail::counting_offsets(keys, n, bound, slot.offsets.data(), 1);
  sort::detail::counting_scatter_index(keys, n, bound, slot.offsets.data(), 1,
                                       slot.perm.data());
  const index_t* perm = slot.perm.data();
  dispatch_layout(sp.p, [&](auto sa) {
    dispatch_layout(scratch, [&](auto da) {
      for (index_t i = 0; i < n; ++i) da.store(b + i, sa.load(b + perm[i]));
    });
  });
}

void finish_tile_sort(Species& sp) {
  std::swap(sp.p, sp.p_scratch);
  sp.mark_sorted(true);
  for (TileSlot& slot : sp.tiles) slot.mark_sorted();
}

double tile_imbalance(const Species& sp) {
  if (sp.tiles.empty()) return 1.0;
  index_t max_n = 0, total = 0;
  for (const TileSlot& slot : sp.tiles) {
    max_n = std::max(max_n, slot.count());
    total += slot.count();
  }
  if (total == 0) return 1.0;
  const double mean = static_cast<double>(total) /
                      static_cast<double>(sp.tiles.size());
  return static_cast<double>(max_n) / mean;
}

}  // namespace vpic::core
