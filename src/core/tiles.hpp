// core/tiles.hpp
//
// Tile-level domain over-decomposition (docs/TILES.md). The grid's
// interior z-planes are split into T contiguous slabs ("tiles"); because
// the voxel index is (iz * sy + iy) * sx + ix, a tile is a contiguous
// voxel interval and a cell-sorted particle array is tile-major — so a
// stable bucket-by-tile plus per-tile stable voxel sorts reproduce the
// untiled stable voxel sort bit for bit.
//
// Tiles exist to turn each (phase x tile) pair into a StepGraph task for
// the work-stealing executor (pk/stealing.hpp):
//   * each tile owns a contiguous particle index range of every species
//     (re-established by bucket_by_tile at sort steps),
//   * each tile pushes serially inside its task and deposits into a
//     tile-private TileAccumulator block whose plane window covers the
//     tile plus one ghost plane on each side (seam crossings land in the
//     window; rare z-wrap / long-drift deposits go to a sorted overflow
//     map),
//   * the private blocks are merged into the global AccumulatorArray in
//     ascending tile order by a single task, making the summed currents
//     bit-deterministic across runs AND worker counts (the merge order is
//     fixed; float addition order never depends on scheduling).
//
// The deterministic sequential mode bypasses the private blocks entirely
// and deposits straight into the global array in tile order — which is
// exactly the untiled particle order, hence bit-identical physics.
#pragma once

#include <map>
#include <vector>

#include "core/accumulator.hpp"
#include "core/grid.hpp"
#include "core/particle.hpp"

namespace vpic::core {

/// Z-slab partition of the interior planes [1, nz] into contiguous tiles.
class TileMap {
 public:
  TileMap() = default;

  /// Split `g`'s nz interior planes into `tiles` balanced slabs
  /// (clamped to [1, nz]; the first nz % T slabs get one extra plane).
  TileMap(const Grid& g, int tiles);

  [[nodiscard]] int count() const noexcept {
    return static_cast<int>(z_lo_.size());
  }
  /// First / last interior plane of tile t (1-based, inclusive).
  [[nodiscard]] int z_lo(int t) const { return z_lo_[static_cast<std::size_t>(t)]; }
  [[nodiscard]] int z_hi(int t) const { return z_hi_[static_cast<std::size_t>(t)]; }
  /// Voxel interval [v_lo, v_hi) covered by tile t's interior planes.
  [[nodiscard]] index_t v_lo(int t) const {
    return static_cast<index_t>(z_lo(t)) * plane_;
  }
  [[nodiscard]] index_t v_hi(int t) const {
    return static_cast<index_t>(z_hi(t) + 1) * plane_;
  }
  /// Voxels per z-plane (sx * sy, ghosts included).
  [[nodiscard]] index_t plane_voxels() const noexcept { return plane_; }

  /// Tile owning voxel v. Ghost planes (0 and nz+1) clamp to the nearest
  /// interior tile; live particles only ever sit in interior planes.
  [[nodiscard]] int tile_of_voxel(index_t v) const {
    int z = static_cast<int>(v / plane_);
    if (z < 1) z = 1;
    if (z > nz_) z = nz_;
    return tile_of_plane_[static_cast<std::size_t>(z)];
  }

  /// Over-decomposition heuristic: ~4 tiles per worker, capped by nz.
  static int auto_count(const Grid& g, int workers);

 private:
  index_t plane_ = 0;  // sx * sy
  int nz_ = 0;
  std::vector<int> z_lo_, z_hi_;
  std::vector<int> tile_of_plane_;  // [0, nz+1], clamped at the ghosts
};

/// Tile-private current deposit sink with the same `a(voxel)` interface
/// the push/move_p kernels use on the global AccumulatorArray. Deposits
/// into the tile's plane window [z_lo-1, z_hi+1] hit a dense block; any
/// deposit outside it (periodic z-wrap at the domain faces, or particles
/// that drifted multiple planes since the last re-bucket) lands in a
/// key-sorted overflow map. merge_into() folds both into the global array
/// with plain adds — window first, then overflow in ascending voxel
/// order — so the merged sums are independent of task scheduling.
class TileAccumulator {
 public:
  TileAccumulator() = default;
  TileAccumulator(const Grid& g, const TileMap& tm, int t);

  /// Deposit target for voxel v (non-atomic: the owning tile task runs
  /// serially and no other task touches this block).
  Accumulator& a(index_t v) {
    const index_t off = v - v_base_;
    if (off >= 0 && off < win_size_) return win_[static_cast<std::size_t>(off)];
    return overflow_[v];  // zero-initialized on first touch
  }

  void clear();
  void merge_into(AccumulatorArray& global) const;

  [[nodiscard]] std::size_t overflow_size() const noexcept {
    return overflow_.size();
  }
  [[nodiscard]] index_t window_base() const noexcept { return v_base_; }
  [[nodiscard]] index_t window_size() const noexcept { return win_size_; }

 private:
  index_t v_base_ = 0;
  index_t win_size_ = 0;
  std::vector<Accumulator> win_;
  std::map<index_t, Accumulator> overflow_;
};

/// Stable-partition sp's live particles by tile id (serial counting sort
/// over tile ids through the ping-pong scratch) and record each tile's
/// [begin, end) index range in sp.tiles. Because tile ids are monotone in
/// the voxel index, bucketing a cell-sorted array is the identity
/// permutation, and bucket + per-tile voxel sorts == the untiled stable
/// voxel sort. Per-tile sortedness is reset to "bucketed, not sorted".
void bucket_by_tile(Species& sp, const TileMap& tm);

/// Serial stable counting sort by voxel of tile t's range, gathering into
/// sp's scratch store at the same offsets (keys rebased to the tile's
/// voxel interval; scratch buffers live in the tile's TileSlot so tiles
/// sort concurrently). finish_tile_sort() swaps the ping-pong buffers
/// once every tile of the species has sorted.
void sort_tile(Species& sp, const TileMap& tm, int t);

/// Swap the ping-pong stores and mark the species (globally and per tile)
/// freshly cell-sorted. Call after sort_tile() ran for every tile.
void finish_tile_sort(Species& sp);

/// Load-imbalance factor of the current tile ranges: max tile particle
/// count over mean tile particle count (1.0 = perfectly balanced).
[[nodiscard]] double tile_imbalance(const Species& sp);

}  // namespace vpic::core
