// core/collide.hpp
//
// Takizuka–Abe binary Monte Carlo Coulomb collisions (J. Comput. Phys. 25,
// 1977) as a plug-in PhysicsModule (docs/MODULES.md). Within each cell,
// particles are randomly paired and each pair's relative velocity is
// rotated by a Gaussian-distributed scattering angle whose variance scales
// as nu0 dt / g^3 — small-angle cumulative Coulomb scattering. The
// operator conserves momentum exactly and kinetic energy to rounding
// (the rotation preserves |g|), and drives each species toward a
// Maxwellian (tests/test_collide.cpp).
//
// Determinism (docs/MODULES.md, "RNG streams"): every random draw comes
// from a counter-based stream keyed by (step, species-pair, voxel) under
// the module's RNG domain, and pairing scans particles in index order —
// never in layout or schedule order. Results are therefore bit-identical
// across worker counts, tile schedules, and AoS/SoA/AoSoA layouts; only
// the tile count (which fixes how stray particles are partitioned into
// cell lists between sorts) is part of the answer.
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/grid.hpp"
#include "core/module.hpp"
#include "core/particle.hpp"

namespace vpic::core {

struct CollisionParams {
  /// Species-index pairs to collide, in order; (s, s) is intra-species.
  /// Empty = every unordered pair including self, resolved at plan time.
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  double nu0 = 1.0;       // base collision frequency x density (code units)
  int interval = 1;       // apply every `interval` steps
  double u_floor = 1e-3;  // relative-speed floor in the 1/g^3 kernel
};

struct CollisionStats {
  std::uint64_t cells = 0;  // occupied cells visited
  std::uint64_t pairs = 0;  // pairs scattered
};

/// Apply one collision step to the index ranges [a_begin, a_end) of `sa`
/// and [b_begin, b_end) of `sb` (pass the same species and range twice for
/// intra-species). Pure function of the particle data and the RNG keys —
/// `step` and `pair_key` select the per-step, per-pair stream; cell
/// streams are keyed by global voxel. Exposed separately from the module
/// so physics tests can drive it without field dynamics.
CollisionStats collide_range(Species& sa, Species& sb, const Grid& g,
                             const CollisionParams& prm, index_t a_begin,
                             index_t a_end, index_t b_begin, index_t b_end,
                             std::uint64_t step, std::uint64_t pair_key,
                             const ModuleRng& rng);

/// The registry module: plans one phase per species pair (per tile when
/// tiled), ordered into the step at StepStage::Collide — after injection,
/// before diagnostics/sort — and checkpoints its cumulative counters.
class CollisionModule final : public PhysicsModule {
 public:
  explicit CollisionModule(CollisionParams prm = {}) : prm_(std::move(prm)) {}

  [[nodiscard]] std::string_view id() const override { return "collide"; }
  [[nodiscard]] StepStage stage() const override {
    return StepStage::Collide;
  }
  void attach(Simulation& sim) override;
  void plan(Simulation& sim, const ModuleStepContext& ctx,
            StepComposer& c) override;

  [[nodiscard]] bool has_state() const override { return true; }
  [[nodiscard]] std::uint32_t state_version() const override { return 1; }
  void save_state(ModuleStateWriter& w) const override;
  void load_state(ModuleStateReader& r, std::uint32_t version) override;
  void clear_state() override;

  [[nodiscard]] const CollisionParams& params() const { return prm_; }
  /// Cumulative across the run (checkpointed).
  [[nodiscard]] std::uint64_t steps_applied() const {
    return steps_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t pairs_scattered() const {
    return pairs_.load(std::memory_order_relaxed);
  }

 private:
  CollisionParams prm_;
  ModuleRng rng_;
  // Tile tasks of one step run concurrently under Stealing; the physics
  // is made deterministic by keyed streams, the bookkeeping by atomics.
  std::atomic<std::uint64_t> steps_{0};
  std::atomic<std::uint64_t> pairs_{0};
  std::atomic<std::uint64_t> cells_{0};
};

}  // namespace vpic::core
