// core/particle_store.hpp
//
// Layout-polymorphic particle storage. A ParticleStore is the same logical
// (particle, field) array under one of three physical layouts
// (core/particle_layout.hpp):
//
//  * AoS   — pk::View<Particle, 1>: the seed's packed 32-byte record.
//  * SoA   — pk::View<float, 2, LayoutLeft> (particle, field): one dense
//            plane per field.
//  * AoSoA — pk::View<float, 2, LayoutAoSoA<kAosoaTileWidth>>: SoA within
//            SIMD-width tiles, tiles in particle order. A tile row is one
//            vector register's worth of one field, contiguous, so the
//            manual push kernel loads it directly instead of reconstituting
//            it from AoS records with an 8x8 register transpose.
//
// The voxel index (field 3) is an int32 stored in float lanes for the two
// flat-float layouts; every access goes through std::memcpy (compiles to a
// plain mov) so no float load ever touches the integer bit pattern —
// the same strict-aliasing discipline the manual kernels already use.
//
// Hot-path kernels never switch per element: dispatch_layout() switches
// ONCE per kernel invocation and hands the kernel a typed accessor
// (AosAccessor / SoaAccessor / AosoaAccessor) with inlineable scalar
// load/store/cell and a W-wide vector block load. Kernels are written once
// against the accessor concept and instantiated three times.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>

#include "core/particle_layout.hpp"
#include "core/push_tuning.hpp"
#include "pk/pk.hpp"
#include "simd/transpose.hpp"
#include "simd/vec.hpp"

namespace vpic::core {

struct Particle {
  float dx, dy, dz;   // cell-local position in [-1, 1]
  std::int32_t i;     // voxel index
  float ux, uy, uz;   // normalized momentum (gamma * v / c)
  float w;            // statistical weight
};
static_assert(sizeof(Particle) == 32);

/// Field count / indices of the logical record; identical across layouts
/// (and identical to the AoS member order, so an AoS record reinterpreted
/// as float[8] indexes the same way).
inline constexpr int kParticleFields = 8;
inline constexpr int kFieldDx = 0, kFieldDy = 1, kFieldDz = 2, kFieldCell = 3,
                     kFieldUx = 4, kFieldUy = 5, kFieldUz = 6, kFieldW = 7;

/// W particles' worth of fields in SoA registers: what every vector push
/// kernel actually wants, regardless of where the lanes came from.
template <int W>
struct ParticleVecs {
  simd::simd<float, W> dx, dy, dz, ux, uy, uz, w;
  std::int32_t cell[W];
};

// ---------------------------------------------------------------------------
// Accessors. Plain pointer bundles — cheap to copy into kernels, no View
// indirection on the hot path.
// ---------------------------------------------------------------------------

struct AosAccessor {
  static constexpr ParticleLayout layout = ParticleLayout::AoS;
  Particle* p = nullptr;

  PK_INLINE Particle load(index_t n) const noexcept { return p[n]; }
  PK_INLINE void store(index_t n, const Particle& q) const noexcept {
    p[n] = q;
  }
  PK_INLINE std::int32_t cell(index_t n) const noexcept { return p[n].i; }

  /// AoS -> SoA in registers: W particles x 8 fields via register
  /// transpose (the seed's load path).
  template <int W>
  PK_INLINE ParticleVecs<W> load_vecs(index_t n0) const noexcept {
    static_assert(W == kParticleFields, "AoS transpose tile must be square");
    auto rows = simd::load_transpose<float, W>(
        reinterpret_cast<const float*>(p + n0), kParticleFields);
    ParticleVecs<W> v;
    v.dx = rows[kFieldDx];
    v.dy = rows[kFieldDy];
    v.dz = rows[kFieldDz];
    v.ux = rows[kFieldUx];
    v.uy = rows[kFieldUy];
    v.uz = rows[kFieldUz];
    v.w = rows[kFieldW];
    alignas(64) float tmp[W];
    rows[kFieldCell].store(tmp);
    std::memcpy(v.cell, tmp, sizeof(v.cell));
    return v;
  }
};

struct SoaAccessor {
  static constexpr ParticleLayout layout = ParticleLayout::SoA;
  float* base = nullptr;  // plane f starts at base + f * cap
  index_t cap = 0;

  PK_INLINE float* plane(int f) const noexcept { return base + f * cap; }

  PK_INLINE Particle load(index_t n) const noexcept {
    Particle q;
    q.dx = plane(kFieldDx)[n];
    q.dy = plane(kFieldDy)[n];
    q.dz = plane(kFieldDz)[n];
    std::memcpy(&q.i, plane(kFieldCell) + n, sizeof(q.i));
    q.ux = plane(kFieldUx)[n];
    q.uy = plane(kFieldUy)[n];
    q.uz = plane(kFieldUz)[n];
    q.w = plane(kFieldW)[n];
    return q;
  }
  PK_INLINE void store(index_t n, const Particle& q) const noexcept {
    plane(kFieldDx)[n] = q.dx;
    plane(kFieldDy)[n] = q.dy;
    plane(kFieldDz)[n] = q.dz;
    std::memcpy(plane(kFieldCell) + n, &q.i, sizeof(q.i));
    plane(kFieldUx)[n] = q.ux;
    plane(kFieldUy)[n] = q.uy;
    plane(kFieldUz)[n] = q.uz;
    plane(kFieldW)[n] = q.w;
  }
  PK_INLINE std::int32_t cell(index_t n) const noexcept {
    std::int32_t ci;
    std::memcpy(&ci, plane(kFieldCell) + n, sizeof(ci));
    return ci;
  }

  /// Dense plane loads — no transpose at all.
  template <int W>
  PK_INLINE ParticleVecs<W> load_vecs(index_t n0) const noexcept {
    using F = simd::simd<float, W>;
    ParticleVecs<W> v;
    v.dx = F::load(plane(kFieldDx) + n0);
    v.dy = F::load(plane(kFieldDy) + n0);
    v.dz = F::load(plane(kFieldDz) + n0);
    v.ux = F::load(plane(kFieldUx) + n0);
    v.uy = F::load(plane(kFieldUy) + n0);
    v.uz = F::load(plane(kFieldUz) + n0);
    v.w = F::load(plane(kFieldW) + n0);
    std::memcpy(v.cell, plane(kFieldCell) + n0, sizeof(v.cell));
    return v;
  }
};

struct AosoaAccessor {
  static constexpr ParticleLayout layout = ParticleLayout::AoSoA;
  static constexpr int TW = kAosoaTileWidth;
  float* base = nullptr;

  PK_INLINE index_t off(index_t n, int f) const noexcept {
    return (n / TW) * (kParticleFields * TW) + f * TW + (n % TW);
  }

  PK_INLINE Particle load(index_t n) const noexcept {
    const float* lane = base + off(n, 0);
    Particle q;
    q.dx = lane[kFieldDx * TW];
    q.dy = lane[kFieldDy * TW];
    q.dz = lane[kFieldDz * TW];
    std::memcpy(&q.i, lane + kFieldCell * TW, sizeof(q.i));
    q.ux = lane[kFieldUx * TW];
    q.uy = lane[kFieldUy * TW];
    q.uz = lane[kFieldUz * TW];
    q.w = lane[kFieldW * TW];
    return q;
  }
  PK_INLINE void store(index_t n, const Particle& q) const noexcept {
    float* lane = base + off(n, 0);
    lane[kFieldDx * TW] = q.dx;
    lane[kFieldDy * TW] = q.dy;
    lane[kFieldDz * TW] = q.dz;
    std::memcpy(lane + kFieldCell * TW, &q.i, sizeof(q.i));
    lane[kFieldUx * TW] = q.ux;
    lane[kFieldUy * TW] = q.uy;
    lane[kFieldUz * TW] = q.uz;
    lane[kFieldW * TW] = q.w;
  }
  PK_INLINE std::int32_t cell(index_t n) const noexcept {
    std::int32_t ci;
    std::memcpy(&ci, base + off(n, kFieldCell), sizeof(ci));
    return ci;
  }

  /// Tile-aligned W == TW blocks are straight dense loads (this is the
  /// whole point of AoSoA); unaligned starts (run-aware kernels begin at
  /// arbitrary run boundaries) fall back to a lane gather.
  template <int W>
  PK_INLINE ParticleVecs<W> load_vecs(index_t n0) const noexcept {
    using F = simd::simd<float, W>;
    ParticleVecs<W> v;
    if constexpr (W == TW) {
      if (n0 % TW == 0) {
        const float* tile = base + (n0 / TW) * (kParticleFields * TW);
        v.dx = F::load(tile + kFieldDx * TW);
        v.dy = F::load(tile + kFieldDy * TW);
        v.dz = F::load(tile + kFieldDz * TW);
        v.ux = F::load(tile + kFieldUx * TW);
        v.uy = F::load(tile + kFieldUy * TW);
        v.uz = F::load(tile + kFieldUz * TW);
        v.w = F::load(tile + kFieldW * TW);
        std::memcpy(v.cell, tile + kFieldCell * TW, sizeof(v.cell));
        return v;
      }
    }
    v.dx = F([&](int l) { return base[off(n0 + l, kFieldDx)]; });
    v.dy = F([&](int l) { return base[off(n0 + l, kFieldDy)]; });
    v.dz = F([&](int l) { return base[off(n0 + l, kFieldDz)]; });
    v.ux = F([&](int l) { return base[off(n0 + l, kFieldUx)]; });
    v.uy = F([&](int l) { return base[off(n0 + l, kFieldUy)]; });
    v.uz = F([&](int l) { return base[off(n0 + l, kFieldUz)]; });
    v.w = F([&](int l) { return base[off(n0 + l, kFieldW)]; });
    for (int l = 0; l < W; ++l)
      std::memcpy(&v.cell[l], base + off(n0 + l, kFieldCell),
                  sizeof(v.cell[0]));
    return v;
  }
};

// ---------------------------------------------------------------------------
// ParticleStore
// ---------------------------------------------------------------------------

class ParticleStore {
 public:
  using aosoa_layout = pk::LayoutAoSoA<kAosoaTileWidth>;

  ParticleStore() = default;

  ParticleStore(std::string label, index_t capacity,
                ParticleLayout layout = ParticleLayout::AoS)
      : layout_(layout), label_(std::move(label)) {
    switch (layout_) {
      case ParticleLayout::AoS:
        aos_ = pk::View<Particle, 1>(label_, capacity);
        break;
      case ParticleLayout::SoA:
        soa_ = pk::View<float, 2, pk::LayoutLeft>(label_, capacity,
                                                  index_t{kParticleFields});
        break;
      case ParticleLayout::AoSoA:
        aosoa_ = pk::View<float, 2, aosoa_layout>(label_, capacity,
                                                  index_t{kParticleFields});
        break;
    }
  }

  [[nodiscard]] ParticleLayout layout() const noexcept { return layout_; }
  [[nodiscard]] const std::string& label() const noexcept { return label_; }

  /// Capacity in particles (the old `View<Particle,1>::size()`).
  [[nodiscard]] index_t size() const noexcept {
    switch (layout_) {
      case ParticleLayout::AoS:
        return aos_.size();
      case ParticleLayout::SoA:
        return soa_.extent(0);
      case ParticleLayout::AoSoA:
        return aosoa_.extent(0);
    }
    return 0;
  }

  [[nodiscard]] bool allocated() const noexcept {
    switch (layout_) {
      case ParticleLayout::AoS:
        return aos_.allocated();
      case ParticleLayout::SoA:
        return soa_.allocated();
      case ParticleLayout::AoSoA:
        return aosoa_.allocated();
    }
    return false;
  }

  // --- AoS-only direct record access (the seed API; every pre-layout call
  // site compiles unchanged, and asserts it is not silently applied to a
  // non-AoS store). -------------------------------------------------------

  PK_INLINE Particle& operator()(index_t n) const noexcept {
    assert(layout_ == ParticleLayout::AoS &&
           "direct Particle& access requires the AoS layout; use "
           "get()/set() or dispatch_layout()");
    return aos_(n);
  }

  [[nodiscard]] Particle* data() const noexcept {
    assert(layout_ == ParticleLayout::AoS);
    return aos_.data();
  }

  [[nodiscard]] pk::View<Particle, 1>& aos_view() noexcept {
    assert(layout_ == ParticleLayout::AoS);
    return aos_;
  }
  [[nodiscard]] const pk::View<Particle, 1>& aos_view() const noexcept {
    assert(layout_ == ParticleLayout::AoS);
    return aos_;
  }

  // --- Layout-generic element access (cold paths: loaders, diagnostics,
  // exchange append; hot kernels use the typed accessors). ----------------

  [[nodiscard]] PK_INLINE Particle get(index_t n) const noexcept {
    switch (layout_) {
      case ParticleLayout::AoS:
        return aos_(n);
      case ParticleLayout::SoA:
        return soa_accessor().load(n);
      case ParticleLayout::AoSoA:
        return aosoa_accessor().load(n);
    }
    return Particle{};
  }

  PK_INLINE void set(index_t n, const Particle& q) const noexcept {
    switch (layout_) {
      case ParticleLayout::AoS:
        aos_(n) = q;
        return;
      case ParticleLayout::SoA:
        soa_accessor().store(n, q);
        return;
      case ParticleLayout::AoSoA:
        aosoa_accessor().store(n, q);
        return;
    }
  }

  [[nodiscard]] PK_INLINE std::int32_t cell(index_t n) const noexcept {
    switch (layout_) {
      case ParticleLayout::AoS:
        return aos_(n).i;
      case ParticleLayout::SoA:
        return soa_accessor().cell(n);
      case ParticleLayout::AoSoA:
        return aosoa_accessor().cell(n);
    }
    return -1;
  }

  PK_INLINE void set_cell(index_t n, std::int32_t ci) const noexcept {
    switch (layout_) {
      case ParticleLayout::AoS:
        aos_(n).i = ci;
        return;
      case ParticleLayout::SoA:
        std::memcpy(soa_accessor().plane(kFieldCell) + n, &ci, sizeof(ci));
        return;
      case ParticleLayout::AoSoA: {
        auto a = aosoa_accessor();
        std::memcpy(a.base + a.off(n, kFieldCell), &ci, sizeof(ci));
        return;
      }
    }
  }

  // --- Typed accessors (hot-path; only valid for the matching layout). ---

  [[nodiscard]] AosAccessor aos_accessor() const noexcept {
    assert(layout_ == ParticleLayout::AoS);
    return AosAccessor{aos_.data()};
  }
  [[nodiscard]] SoaAccessor soa_accessor() const noexcept {
    assert(layout_ == ParticleLayout::SoA);
    return SoaAccessor{soa_.data(), soa_.extent(0)};
  }
  [[nodiscard]] AosoaAccessor aosoa_accessor() const noexcept {
    assert(layout_ == ParticleLayout::AoSoA);
    return AosoaAccessor{aosoa_.data()};
  }

  // --- Canonical-format conversion (checkpoint serialization, layout
  // migration). The canonical particle stream is the AoS record. ----------

  void export_aos(Particle* dst, index_t count) const {
    switch (layout_) {
      case ParticleLayout::AoS:
        std::memcpy(dst, aos_.data(),
                    static_cast<std::size_t>(count) * sizeof(Particle));
        return;
      case ParticleLayout::SoA: {
        const auto a = soa_accessor();
        for (index_t n = 0; n < count; ++n) dst[n] = a.load(n);
        return;
      }
      case ParticleLayout::AoSoA: {
        const auto a = aosoa_accessor();
        for (index_t n = 0; n < count; ++n) dst[n] = a.load(n);
        return;
      }
    }
  }

  void import_aos(const Particle* src, index_t count) const {
    switch (layout_) {
      case ParticleLayout::AoS:
        std::memcpy(aos_.data(), src,
                    static_cast<std::size_t>(count) * sizeof(Particle));
        return;
      case ParticleLayout::SoA: {
        const auto a = soa_accessor();
        for (index_t n = 0; n < count; ++n) a.store(n, src[n]);
        return;
      }
      case ParticleLayout::AoSoA: {
        const auto a = aosoa_accessor();
        for (index_t n = 0; n < count; ++n) a.store(n, src[n]);
        return;
      }
    }
  }

 private:
  ParticleLayout layout_ = ParticleLayout::AoS;
  std::string label_;
  pk::View<Particle, 1> aos_;
  pk::View<float, 2, pk::LayoutLeft> soa_;
  pk::View<float, 2, aosoa_layout> aosoa_;
};

/// Switch once per kernel invocation, handing `f` the typed accessor for
/// the store's layout. `f` is instantiated three times; the layout branch
/// never appears inside the particle loop.
template <class F>
decltype(auto) dispatch_layout(const ParticleStore& s, F&& f) {
  switch (s.layout()) {
    case ParticleLayout::SoA:
      return f(s.soa_accessor());
    case ParticleLayout::AoSoA:
      return f(s.aosoa_accessor());
    case ParticleLayout::AoS:
    default:
      return f(s.aos_accessor());
  }
}

/// Copy `count` live particles between stores of any layout pair.
inline void copy_particles(const ParticleStore& dst, const ParticleStore& src,
                           index_t count) {
  assert(dst.size() >= count && src.size() >= count);
  if (dst.layout() == ParticleLayout::AoS) {
    src.export_aos(dst.data(), count);
    return;
  }
  dispatch_layout(src, [&](auto sa) {
    dispatch_layout(dst, [&](auto da) {
      for (index_t n = 0; n < count; ++n) da.store(n, sa.load(n));
    });
  });
}

}  // namespace vpic::core
