// core/simulation.hpp
//
// Top-level PIC simulation driver (VPIC's main loop):
//
//   per step: load interpolator from fields
//             clear accumulators
//             advance particles (gather / Boris / move+deposit)
//             reduce+unload accumulators into J
//             advance B half, advance E, advance B half
//             (every sort_interval steps) re-sort particles
//
// Strategy and sort order are runtime-selectable, which is what the
// benchmark harnesses sweep.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/accumulator.hpp"
#include "core/diagnostics.hpp"
#include "core/field.hpp"
#include "core/grid.hpp"
#include "core/interpolator.hpp"
#include "core/module.hpp"
#include "core/particle.hpp"
#include "core/push.hpp"
#include "core/sort_particles.hpp"
#include "core/step_graph.hpp"
#include "core/tiles.hpp"
#include "pk/instance.hpp"
#include "pk/stealing.hpp"
#include "prof/prof.hpp"

namespace vpic::elastic {
// Incremental-checkpoint planner (src/elastic/delta.hpp). Forward-declared:
// core drives it only from core/checkpoint.cpp; the shared_ptr member
// type-erases the deleter so the header needs no elastic include.
class DeltaTracker;
}  // namespace vpic::elastic

namespace vpic::tune {
// Startup autotuning hook (src/tune/tune.hpp). Forward-declared so core —
// which the tune library links against — can trigger it without an include
// cycle; the symbol resolves when the final binary links vpic_tune.
struct TuneState;
const TuneState& ensure_initialized();
// Probed generic-push cost (s/particle) for tile-task cost seeding; 0
// when unknown. Defined in src/tune/tune.cpp, resolved at final link.
double push_cost_per_particle(core::ParticleLayout layout);
}  // namespace vpic::tune

namespace vpic::core {

/// How Simulation::step() is executed (docs/ASYNC.md). When
/// SimulationConfig::tiles.enabled is set the tiled path
/// (docs/TILES.md) supersedes this knob.
///   Graph      — the step is built as a validated StepGraph and run over
///                asynchronous execution instances; independent phases
///                (interpolator load vs accumulator clear, per-species
///                sorts) overlap. Bit-identical to Sequential by
///                construction: every conflicting phase pair is ordered
///                to match the serial sequence.
///   Sequential — the legacy straight-line phase sequence, kept as the
///                reference schedule the equivalence tests compare
///                against.
enum class StepScheduler : std::uint8_t { Graph, Sequential };

inline const char* to_string(StepScheduler s) noexcept {
  switch (s) {
    case StepScheduler::Graph:
      return "graph";
    case StepScheduler::Sequential:
      return "sequential";
  }
  return "?";
}

/// How the tiled step executes its (phase x tile) task graph
/// (docs/TILES.md).
///   Deterministic — every task runs on the calling thread in the serial
///                   reference order with deposits into the global
///                   accumulator: bit-identical to the untiled
///                   Sequential step (for the per-particle-independent
///                   Auto/Guided strategies).
///   Stealing      — tasks run on the work-stealing pool with deposits
///                   into tile-private accumulator blocks merged in
///                   fixed tile order: bit-deterministic run-to-run and
///                   across worker counts, but not bit-identical to the
///                   sequential order (different float-add grouping).
enum class TileExec : std::uint8_t { Deterministic, Stealing };

inline const char* to_string(TileExec e) noexcept {
  switch (e) {
    case TileExec::Deterministic:
      return "deterministic";
    case TileExec::Stealing:
      return "stealing";
  }
  return "?";
}

/// Tile decomposition of the step (docs/TILES.md). Excluded from
/// config_fingerprint(): tiling changes scheduling and memory grouping,
/// not physics, so checkpoints move freely between tiled and untiled
/// runs.
struct TileConfig {
  bool enabled = false;
  int count = 0;  // z-slab tiles; 0 = auto (4 x workers, clamped to nz)
  TileExec exec = TileExec::Deterministic;
  int workers = 2;             // stealing-pool threads (Stealing mode)
  std::uint64_t steal_seed = 0x9e3779b97f4a7c15ull;  // victim RNG streams
};

struct SimulationConfig {
  Grid grid;
  VectorStrategy strategy = VectorStrategy::Auto;
  // Physical particle layout for every species added through add_species
  // (AoS / SoA / AoSoA, see core/particle_store.hpp and docs/LAYOUT.md).
  // Excluded from config_fingerprint(): the layout changes memory
  // placement, not physics, so a checkpoint written under one layout
  // restores under any other.
  ParticleLayout layout = ParticleLayout::AoS;
  // Push pipeline: AutoDetect engages the run-aware fast path while the
  // particle array is (still) cell-sorted; Generic pins the per-particle
  // kernels; RunAware forces the fast path (docs/PUSH.md).
  PushPath push_path = PushPath::AutoDetect;
  sort::SortOrder sort_order = sort::SortOrder::Standard;
  int sort_interval = 20;      // 0 disables sorting
  std::uint32_t sort_tile = 0; // tiled-strided tile size (0: pick default)
  int energy_interval = 0;     // record energies every N steps (0: off)
  std::uint64_t seed = 42;
  // Step execution: dependency-graph scheduler by default; Sequential is
  // the legacy reference order (docs/ASYNC.md).
  StepScheduler scheduler = StepScheduler::Graph;
  // Concurrent phase limit (pk::Instance pool size) for the Graph
  // scheduler.
  std::size_t graph_instances = 2;
  // Periodic checkpointing (docs/CHECKPOINT.md), off by default: every
  // `checkpoint_every` steps write a generation "<checkpoint_path>.g<N>"
  // keeping the newest `checkpoint_keep_last` files. With
  // `checkpoint_async` the snapshot is deep-copied and written on a
  // background pk::Instance so stepping continues immediately.
  int checkpoint_every = 0;
  std::string checkpoint_path;
  int checkpoint_keep_last = 3;
  bool checkpoint_async = false;
  // Incremental delta-compressed generations (docs/ELASTIC.md): ring
  // generations become VPICELA1 chains — a full base every
  // `checkpoint_full_every` generations, then deltas storing only the
  // sections whose payload hash changed (particles tracked per tile-sized
  // chunk), with `checkpoint_codec` (elastic::Codec: 0 none, 1 DeltaPack)
  // losslessly packing stored payloads. With incremental on, keep_last
  // counts whole chains, so every retained recovery point stays complete.
  bool checkpoint_incremental = false;
  int checkpoint_full_every = 8;
  std::uint8_t checkpoint_codec = 1;
  // Stream TracerModule trajectory rings to this CSV file, flushed on
  // every checkpoint and at module destruction; empty disables
  // (docs/MODULES.md, "Tracers").
  std::string tracer_csv_path;
  // Tile-level task decomposition (docs/TILES.md). When enabled, step()
  // takes the tiled path regardless of `scheduler`.
  TileConfig tiles;
};

/// Cumulative incremental-checkpoint telemetry (docs/ELASTIC.md),
/// accumulated per committed generation. `logical_bytes` is what a full
/// snapshot of each generation would have held; `stored_raw_bytes` the
/// raw size of the sections actually stored (the dirty set); and
/// `stored_bytes` the post-codec bytes written — so
/// logical/stored_raw is the incremental ratio and stored_raw/stored the
/// codec ratio.
struct ElasticCkptStats {
  std::int64_t full_generations = 0;
  std::int64_t delta_generations = 0;
  std::uint64_t full_file_bytes = 0;
  std::uint64_t delta_file_bytes = 0;
  std::uint64_t logical_bytes = 0;
  std::uint64_t stored_raw_bytes = 0;
  std::uint64_t stored_bytes = 0;
};

/// Telemetry of the most recent tiled step (docs/TILES.md).
struct TileStepStats {
  int tiles = 0;                    // tile count of the map
  double imbalance = 1.0;           // max/mean particles per tile (worst
                                    // species) at the last bucketing
  pk::StealStats steal;             // zeroed in Deterministic mode
  std::size_t concurrency_peak = 0; // phases in flight at once
};

struct EnergyReport {
  double field = 0;
  std::vector<double> species;  // kinetic energy per species
  [[nodiscard]] double total() const {
    double t = field;
    for (double k : species) t += k;
    return t;
  }
};

class Simulation {
 public:
  explicit Simulation(const SimulationConfig& cfg)
      : cfg_(cfg),
        fields_(cfg.grid),
        interp_(cfg.grid),
        acc_(cfg.grid) {
    // Calibrate (or load) the hot-path dispatch models before the first
    // step so AutoDetect pushes and sort dispatch run with measured gates.
    tune::ensure_initialized();
    // The step pipeline itself is a set of registered physics modules
    // (docs/MODULES.md); decks and users add more with add_module().
    register_core_pipeline(*this);
  }

  /// Add a species with given charge/mass and capacity; returns its index.
  std::size_t add_species(std::string name, float q, float m,
                          index_t capacity) {
    species_.emplace_back(std::move(name), q, m, capacity, cfg_.layout);
    return species_.size() - 1;
  }

  /// Fill a species with a uniform thermal plasma: `ppc` particles per
  /// interior cell, Maxwellian momenta with thermal spread `uth`, drift
  /// (udx, udy, udz). Deterministic in the config seed and species index.
  void load_uniform_plasma(std::size_t species_idx, int ppc, float uth,
                           float udx = 0, float udy = 0, float udz = 0);

  /// One full PIC step.
  void step();

  void run(int nsteps) {
    for (int i = 0; i < nsteps; ++i) step();
  }

  /// Cooperative slice stepping (the vpic::farm scheduler's hook,
  /// docs/FARM.md): step until step_count() reaches `target` or `yield`
  /// returns true. The predicate is polled between whole steps only, so a
  /// yielded simulation is always at a step boundary — exactly the state
  /// checkpoint() captures — and a later restore resumes bit-identically.
  /// Returns the number of steps taken.
  std::int64_t run_until(std::int64_t target,
                         const std::function<bool()>& yield = {}) {
    std::int64_t taken = 0;
    while (step_count_ < target) {
      if (yield && yield()) break;
      step();
      ++taken;
    }
    return taken;
  }

  [[nodiscard]] EnergyReport energies() const;

  /// Charge density on nodes (for the continuity/conservation tests).
  [[nodiscard]] pk::View<double, 1> charge_density() const;

  Grid& grid() { return fields_.grid; }
  FieldArray& fields() { return fields_; }
  InterpolatorArray& interpolator() { return interp_; }
  AccumulatorArray& accumulator() { return acc_; }
  Species& species(std::size_t i) { return species_[i]; }
  [[nodiscard]] std::size_t num_species() const { return species_.size(); }
  [[nodiscard]] std::int64_t step_count() const { return step_count_; }
  SimulationConfig& config() { return cfg_; }

  /// Push pipeline taken for each species on the most recent step()
  /// (Generic or RunAware) — how AutoDetect resolved; empty before the
  /// first step.
  [[nodiscard]] const std::vector<PushPath>& last_push_paths() const {
    return last_push_paths_;
  }

  /// Time spent in advance_species since construction (seconds) — the
  /// "particle push" runtime metric of the paper's Figs. 4/7.
  ///
  /// Deprecated: this accessor is kept source-compatible for the existing
  /// benches/tests, but the measurement now comes from the vpic::prof
  /// "push" region instrumenting step() (docs/PROFILING.md). New code
  /// should read prof::report() — it has per-region count/min/max/self
  /// time, and per-kernel breakdowns when VPIC_PROF is enabled.
  [[nodiscard]] double push_seconds() const { return push_seconds_; }

  /// Time spent re-sorting particles since construction (seconds), kept
  /// separate from push_seconds() so the sort-interval sweeps can report
  /// sort cost and push cost independently.
  ///
  /// Deprecated: thin wrapper over the prof "sort" region, like
  /// push_seconds().
  [[nodiscard]] double sort_seconds() const { return sort_seconds_; }

  /// Snapshot of the global profiling state (regions, kernels, view
  /// allocations) — JSON via Report::to_json(), human table via
  /// Report::human_table(). Populated when profiling is enabled
  /// (VPIC_PROF=summary|trace or prof::enable()).
  [[nodiscard]] prof::Report profile_report() const { return prof::report(); }

  /// Per-step injection hook (e.g. a deck's laser antenna), called after
  /// the field advance of each step.
  void set_injection_hook(std::function<void(Simulation&)> hook) {
    injection_hook_ = std::move(hook);
  }

  /// Energy time series (populated when config().energy_interval > 0).
  [[nodiscard]] const EnergyHistory& energy_history() const {
    return energy_history_;
  }

  /// Per-phase timings/placements of the most recent Graph-scheduled
  /// step; empty under the Sequential scheduler.
  [[nodiscard]] const std::vector<PhaseStats>& last_phase_stats() const {
    return last_phase_stats_;
  }

  /// Peak number of phases in flight simultaneously during the most
  /// recent Graph-scheduled step (>= 2 shows real overlap happened).
  [[nodiscard]] std::size_t last_concurrency_peak() const {
    return last_concurrency_peak_;
  }

  // ---- tile decomposition (docs/TILES.md) ----------------------------

  /// Tile map of the tiled step; count() == 0 before the first tiled
  /// step (or when tiling is disabled).
  [[nodiscard]] const TileMap& tile_map() const { return tile_map_; }

  /// Telemetry of the most recent tiled step: tile count, particle
  /// imbalance, steal/idle counters, concurrency peak. Also mirrored as
  /// prof counters (tiles.imbalance_x100, steal.*) so profile_report()
  /// and the farm's per-job status payload carry them.
  [[nodiscard]] const TileStepStats& last_tile_stats() const {
    return tile_stats_;
  }

  /// Tile-granular poll hook: invoked at every phase boundary of the
  /// tiled step (both executors), on the stepping thread. The farm wires
  /// its preemption check here so a yield request is *observed* within
  /// one tile task instead of one whole step; the step still completes —
  /// a checkpointable boundary — before run_until() actually yields
  /// (docs/FARM.md).
  void set_phase_poll(std::function<void()> poll) {
    phase_poll_ = std::move(poll);
  }

  // ---- physics-module registry (docs/MODULES.md) ---------------------

  /// Register a module. The registry stays sorted by StepStage (ties keep
  /// registration order); attach() runs immediately. Returns a reference
  /// that stays valid for the simulation's lifetime (modules are
  /// heap-owned). Throws std::invalid_argument on a duplicate id.
  PhysicsModule& add_module(std::unique_ptr<PhysicsModule> m);

  template <class M, class... Args>
  M& add_module(Args&&... args) {
    auto owned = std::make_unique<M>(std::forward<Args>(args)...);
    M& ref = *owned;
    add_module(std::unique_ptr<PhysicsModule>(std::move(owned)));
    return ref;
  }

  /// Registered module by id; nullptr when absent.
  [[nodiscard]] PhysicsModule* find_module(std::string_view id);

  [[nodiscard]] const std::vector<std::unique_ptr<PhysicsModule>>& modules()
      const {
    return modules_;
  }

  /// Per-module RNG domain, derived from the config seed and the module
  /// id — disjoint from the particle-loading streams and from every other
  /// module (docs/MODULES.md, "RNG streams").
  [[nodiscard]] ModuleRng module_rng(std::string_view id) const {
    return ModuleRng{hash64(cfg_.seed ^ fnv1a64(id))};
  }

  /// Module section groups the most recent restore() skipped because the
  /// file held state for a module this simulation does not register (or a
  /// newer state version). Empty after a fully-consumed restore.
  [[nodiscard]] const std::vector<ModuleSectionSkip>& last_restore_skips()
      const {
    return last_restore_skips_;
  }

  // ---- checkpoint/restart (docs/CHECKPOINT.md, src/ckpt) -------------

  /// Serialize the full state (fields, interpolators, accumulators, every
  /// species' live particles + sortedness metadata, diagnostics history,
  /// step count) to `path` with a rename-commit. Returns the committed
  /// file size in bytes.
  std::uint64_t checkpoint(const std::string& path);

  /// Asynchronous checkpoint: deep-copies the state into one of two
  /// snapshot buffers *now* (stepping may resume as soon as this returns)
  /// and commits the file on a dedicated background pk::Instance. At most
  /// two snapshots are in flight; a third call waits for the oldest.
  void checkpoint_async(const std::string& path);

  /// Block until every pending asynchronous checkpoint has committed
  /// (rethrows a deferred write failure, pk::Instance semantics).
  void checkpoint_wait();

  /// Restore full state from `path` into this simulation. The simulation
  /// must be built from the same deck/config: the checkpoint's config
  /// fingerprint is verified first. Throws ckpt::RestoreError (typed,
  /// see ckpt/format.hpp) on any mismatch or corruption; the simulation
  /// is only mutated after the file fully validates.
  void restore(const std::string& path);

  /// Restore from the newest valid generation of the ring at `base`
  /// (falling back generation by generation past corrupt/partial files).
  /// Returns the path actually restored from.
  std::string restore_latest(const std::string& base);

  /// FNV-1a fingerprint of the physics-defining configuration (grid, dt,
  /// strategy, sort plan, seed, species identities). Execution details
  /// (scheduler, instance counts, checkpoint knobs) are excluded so a
  /// restore may change them.
  [[nodiscard]] std::uint64_t config_fingerprint() const;

  /// Checkpoints committed by this simulation (sync + async) so far.
  [[nodiscard]] std::int64_t checkpoints_written() const {
    return ckpt_written_;
  }

  /// Cumulative incremental-checkpoint telemetry; all-zero until the
  /// first incremental generation commits. Async generations count once
  /// their background commit finishes — call checkpoint_wait() first for
  /// an exact snapshot.
  [[nodiscard]] ElasticCkptStats elastic_ckpt_stats() const;

 private:
  // Grants the built-in pipeline modules (core/pipeline_modules.cpp)
  // access to the engine state their phase bodies drive; external modules
  // use the public accessors instead.
  friend struct PipelineAccess;

  void step_untiled();
  void step_tiled();
  /// (Re)build the tile map, bucket every species by tile, and size the
  /// per-(species, tile) accumulator blocks + stealing pool. Idempotent
  /// while clean; restore()/injection growth set tiles_dirty_.
  void ensure_tiles();
  [[nodiscard]] StepGraph build_step_graph(std::int64_t next_step);
  [[nodiscard]] StepGraph build_tiled_step_graph(std::int64_t next_step);
  /// Write the next ring generation per the config (sync or async).
  void checkpoint_to_ring();
  [[nodiscard]] bool checkpoint_due(std::int64_t at_step) const {
    return cfg_.checkpoint_every > 0 && !cfg_.checkpoint_path.empty() &&
           at_step % cfg_.checkpoint_every == 0;
  }
  SimulationConfig cfg_;
  FieldArray fields_;
  InterpolatorArray interp_;
  AccumulatorArray acc_;
  std::vector<Species> species_;
  std::vector<PushPath> last_push_paths_;
  std::function<void(Simulation&)> injection_hook_;
  EnergyHistory energy_history_;
  std::int64_t step_count_ = 0;
  // Accumulated by the prof::ScopedRegion sinks in step(); see the
  // deprecation notes on push_seconds()/sort_seconds().
  double push_seconds_ = 0;
  double sort_seconds_ = 0;
  std::vector<PhaseStats> last_phase_stats_;
  std::size_t last_concurrency_peak_ = 0;
  // ---- tile decomposition state (docs/TILES.md) ----------------------
  TileMap tile_map_;
  // Tile-private deposit blocks, [species][tile] — each owned exclusively
  // by its (species, tile) push task. Only built in Stealing mode;
  // Deterministic mode deposits straight into acc_.
  std::vector<std::vector<TileAccumulator>> tile_acc_;
  std::unique_ptr<pk::StealPool> steal_pool_;  // pool is non-movable
  bool tiles_dirty_ = true;
  TileStepStats tile_stats_;
  std::function<void()> phase_poll_;
  // Per-species push plan of the Deterministic tiled step: the GLOBAL
  // dispatch decision + global run partition, so the per-tile serial
  // pushes reproduce the untiled kernels' flush grouping bit for bit.
  struct TilePushPlan {
    bool use_runs = false;
    std::vector<std::size_t> run_lo;  // run_lo[t]..run_lo[t+1] of push_runs
  };
  std::vector<TilePushPlan> tile_push_plans_;
  // Stealing-mode "any tile took the run-aware path" bits (one atomic per
  // species), reset by the push module's plan() each tiled step and read
  // after execution to resolve last_push_paths_. Heap-shared because the
  // phase closures outlive neither but Simulation must stay movable.
  std::shared_ptr<std::vector<std::atomic<std::uint32_t>>> tiled_runs_used_;
  // ---- physics-module registry (docs/MODULES.md) ---------------------
  std::vector<std::unique_ptr<PhysicsModule>> modules_;
  std::vector<ModuleSectionSkip> last_restore_skips_;
  // Async checkpoint machinery (core/checkpoint.cpp): a lazily created
  // background writer instance plus an in-flight count bounding the
  // double buffer. The shared_ptr keeps the count alive for write tasks
  // still queued when the Simulation dies (the instance dtor fences).
  std::optional<pk::Instance<>> ckpt_instance_;
  std::shared_ptr<std::atomic<int>> ckpt_inflight_ =
      std::make_shared<std::atomic<int>>(0);
  std::int64_t ckpt_written_ = 0;
  // Next ring generation number, tracked in memory (core/checkpoint.cpp):
  // an async generation still being written is invisible to a directory
  // scan, so re-scanning per checkpoint could hand out the same number
  // twice. Scanned once per ring base (-1 = not yet scanned), then
  // incremented.
  std::int64_t ckpt_next_gen_ = -1;
  std::string ckpt_ring_base_;
  // Incremental-checkpoint state (docs/ELASTIC.md), created lazily on the
  // first incremental checkpoint. Both are shared_ptrs because async
  // commit tasks outlive a moved-from Simulation (like ckpt_inflight_):
  // the tracker plans synchronously on the stepping thread, the
  // mutex-guarded stats block is updated by background commits.
  std::shared_ptr<elastic::DeltaTracker> elastic_tracker_;
  struct ElasticStatsShared;
  std::shared_ptr<ElasticStatsShared> elastic_stats_;
};

}  // namespace vpic::core
