// core/interpolator.hpp
//
// VPIC-style interpolator array: per-cell field-interpolation coefficients
// rebuilt from the Yee fields once per step so the particle push reads one
// 18-float record per particle instead of walking the staggered mesh. The
// record layout (ex/dexdy/dexdz/d2exdydz, ey..., ez..., cbx/dcbxdx, cby...,
// cbz...) matches VPIC's `interpolator_t` — it is the 72-byte gather record
// whose access pattern the sorting study (Figs. 6-8) controls.
//
// Within cell-local coordinates (dx, dy, dz) in [-1, 1]:
//   Ex = ex + dy*dexdy + dz*dexdz + dy*dz*d2exdydz   (Ex lives on x-edges)
//   Bx = cbx + dx*dcbxdx                             (Bx lives on x-faces)
// and cyclic permutations.
#pragma once

#include "core/field.hpp"
#include "core/grid.hpp"

namespace vpic::core {

struct Interpolator {
  float ex, dexdy, dexdz, d2exdydz;
  float ey, deydz, deydx, d2eydzdx;
  float ez, dezdx, dezdy, d2ezdxdy;
  float cbx, dcbxdx;
  float cby, dcbydy;
  float cbz, dcbzdz;
};
static_assert(sizeof(Interpolator) == 18 * sizeof(float));

struct InterpolatorArray {
  Grid grid;
  pk::View<Interpolator, 1> data;

  explicit InterpolatorArray(const Grid& g)
      : grid(g), data("interpolator", g.nv()) {}

  const Interpolator& operator()(index_t v) const { return data(v); }

  /// Rebuild all interior-cell coefficients from the fields (VPIC
  /// load_interpolator_array).
  void load(const FieldArray& f) { load_planes(f, 1, grid.nz); }

  /// Rebuild only interior z-planes [z_begin, z_end] (1-based, inclusive).
  /// Plane iz reads field planes iz and iz+1 and nothing below, so planes
  /// 1..nz-1 never touch the z ghosts: the overlapped distributed step
  /// loads them while the halo exchange is still in flight, then loads
  /// plane nz (the only one reading ghost nz+1) after the halo lands.
  void load_planes(const FieldArray& f, int z_begin, int z_end);
};

/// Evaluate the interpolated fields at a cell-local position. Used by the
/// scalar push and by tests (the vectorized pushes inline the same math).
struct FieldsAtPoint {
  float ex, ey, ez, bx, by, bz;
};

inline FieldsAtPoint interpolate(const Interpolator& ip, float dx, float dy,
                                 float dz) {
  FieldsAtPoint f;
  f.ex = ip.ex + dy * ip.dexdy + dz * (ip.dexdz + dy * ip.d2exdydz);
  f.ey = ip.ey + dz * ip.deydz + dx * (ip.deydx + dz * ip.d2eydzdx);
  f.ez = ip.ez + dx * ip.dezdx + dy * (ip.dezdy + dx * ip.d2ezdxdy);
  f.bx = ip.cbx + dx * ip.dcbxdx;
  f.by = ip.cby + dy * ip.dcbydy;
  f.bz = ip.cbz + dz * ip.dcbzdz;
  return f;
}

}  // namespace vpic::core
