#include "core/diagnostics.hpp"

#include <cmath>
#include <cstdio>

namespace vpic::core {

void EnergyHistory::record(std::int64_t step, double field,
                           const std::vector<double>& species_ke) {
  steps_.push_back(step);
  field_.push_back(field);
  species_.push_back(species_ke);
}

double EnergyHistory::kinetic(std::size_t i) const {
  double k = 0;
  for (double v : species_[i]) k += v;
  return k;
}

double EnergyHistory::max_relative_drift() const {
  if (steps_.empty()) return 0;
  const double base = total(0);
  if (base == 0) return 0;
  double worst = 0;
  for (std::size_t i = 1; i < steps_.size(); ++i)
    worst = std::max(worst, std::abs(total(i) - base) / std::abs(base));
  return worst;
}

std::string EnergyHistory::to_csv() const {
  std::string out = "step,field";
  const std::size_t nsp = species_.empty() ? 0 : species_[0].size();
  for (std::size_t s = 0; s < nsp; ++s)
    out += ",ke_" + std::to_string(s);
  out += ",total\n";
  char buf[64];
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    out += std::to_string(steps_[i]);
    std::snprintf(buf, sizeof(buf), ",%.9e", field_[i]);
    out += buf;
    for (double v : species_[i]) {
      std::snprintf(buf, sizeof(buf), ",%.9e", v);
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), ",%.9e\n", total(i));
    out += buf;
  }
  return out;
}

Moments compute_moments(const Species& sp, const Grid& g) {
  Moments m{pk::View<float, 1>("density", g.nv()),
            pk::View<float, 1>("mom_ux", g.nv()),
            pk::View<float, 1>("mom_uy", g.nv()),
            pk::View<float, 1>("mom_uz", g.nv())};
  const float inv_vol = 1.0f / (g.dx * g.dy * g.dz);
  dispatch_layout(sp.p, [&](auto a) {
    for (index_t n = 0; n < sp.np; ++n) {
      const Particle p = a.load(n);
      m.density(p.i) += p.w * inv_vol;
      m.ux(p.i) += p.w * p.ux;
      m.uy(p.i) += p.w * p.uy;
      m.uz(p.i) += p.w * p.uz;
    }
  });
  // Normalize first moments to per-cell means (weight-averaged).
  pk::parallel_for(g.nv(), [&](index_t v) {
    const float w_total = m.density(v) / inv_vol;
    if (w_total > 0) {
      m.ux(v) /= w_total;
      m.uy(v) /= w_total;
      m.uz(v) /= w_total;
    }
  });
  return m;
}

std::int64_t Histogram::total() const {
  std::int64_t t = 0;
  for (auto c : counts) t += c;
  return t;
}

std::string Histogram::to_csv() const {
  std::string out = "bin_center,count\n";
  const float width =
      (hi - lo) / static_cast<float>(counts.empty() ? 1 : counts.size());
  char buf[64];
  for (std::size_t b = 0; b < counts.size(); ++b) {
    std::snprintf(buf, sizeof(buf), "%.6e,%lld\n",
                  lo + (static_cast<float>(b) + 0.5f) * width,
                  static_cast<long long>(counts[b]));
    out += buf;
  }
  return out;
}

Histogram momentum_histogram(const Species& sp, MomentumAxis axis, float lo,
                             float hi, int bins) {
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  h.counts.assign(static_cast<std::size_t>(bins), 0);
  const float scale = static_cast<float>(bins) / (hi - lo);
  dispatch_layout(sp.p, [&](auto a) {
    for (index_t n = 0; n < sp.np; ++n) {
      const Particle p = a.load(n);
      const float u = axis == MomentumAxis::X   ? p.ux
                      : axis == MomentumAxis::Y ? p.uy
                                                : p.uz;
      int b = static_cast<int>((u - lo) * scale);
      b = std::max(0, std::min(bins - 1, b));
      ++h.counts[static_cast<std::size_t>(b)];
    }
  });
  return h;
}

std::string field_plane_csv(const pk::View<float, 1>& component,
                            const Grid& g, int iz) {
  std::string out = "ix,iy,value\n";
  char buf[64];
  for (int iy = 1; iy <= g.ny; ++iy)
    for (int ix = 1; ix <= g.nx; ++ix) {
      std::snprintf(buf, sizeof(buf), "%d,%d,%.6e\n", ix, iy,
                    component(g.voxel(ix, iy, iz)));
      out += buf;
    }
  return out;
}

}  // namespace vpic::core
