#include "core/field.hpp"

namespace vpic::core {

namespace {

/// Iterate interior cells (1..n inclusive per axis) in parallel over z.
template <class F>
void for_interior(const char* name, const Grid& g, F&& f) {
  pk::parallel_for(
      name, pk::RangePolicy<>(1, g.nz + 1), [&, g](index_t iz) {
        for (int iy = 1; iy <= g.ny; ++iy)
          for (int ix = 1; ix <= g.nx; ++ix)
            f(ix, iy, static_cast<int>(iz));
      });
}

}  // namespace

void FieldArray::advance_b_half() {
  const Grid& g = grid;
  const float px = 0.5f * g.cvac * g.dt / g.dx;
  const float py = 0.5f * g.cvac * g.dt / g.dy;
  const float pz = 0.5f * g.cvac * g.dt / g.dz;
  for_interior("field/advance_b", g, [&](int ix, int iy, int iz) {
    const index_t v = g.voxel(ix, iy, iz);
    const index_t vx = g.voxel(ix + 1, iy, iz);
    const index_t vy = g.voxel(ix, iy + 1, iz);
    const index_t vz = g.voxel(ix, iy, iz + 1);
    // curl E on face centers
    bx(v) -= py * (ez(vy) - ez(v)) - pz * (ey(vz) - ey(v));
    by(v) -= pz * (ex(vz) - ex(v)) - px * (ez(vx) - ez(v));
    bz(v) -= px * (ey(vx) - ey(v)) - py * (ex(vy) - ex(v));
  });
}

void FieldArray::advance_e() {
  const Grid& g = grid;
  const float c2dt = g.cvac * g.cvac * g.dt;
  const float px = c2dt / g.dx;
  const float py = c2dt / g.dy;
  const float pz = c2dt / g.dz;
  const float jscale = g.dt;  // eps0 = 1
  for_interior("field/advance_e", g, [&](int ix, int iy, int iz) {
    const index_t v = g.voxel(ix, iy, iz);
    const index_t vmy = g.voxel(ix, iy - 1, iz);
    const index_t vmz = g.voxel(ix, iy, iz - 1);
    const index_t vmx = g.voxel(ix - 1, iy, iz);
    ex(v) += py * (bz(v) - bz(vmy)) - pz * (by(v) - by(vmz)) - jscale * jx(v);
    ey(v) += pz * (bx(v) - bx(vmz)) - px * (bz(v) - bz(vmx)) - jscale * jy(v);
    ez(v) += px * (by(v) - by(vmx)) - py * (bx(v) - bx(vmy)) - jscale * jz(v);
  });
}

void FieldArray::update_ghosts_periodic(std::uint8_t axis_mask) {
  const Grid& g = grid;
  auto copy_all = [&](pk::View<float, 1>& f) {
    if (axis_mask & 0b001) {  // x ghosts
      pk::parallel_for("field/ghosts_x", pk::RangePolicy<>(0, g.sz()),
                       [&, g](index_t iz) {
        for (int iy = 0; iy < g.sy(); ++iy) {
          f(g.voxel(0, iy, static_cast<int>(iz))) =
              f(g.voxel(g.nx, iy, static_cast<int>(iz)));
          f(g.voxel(g.nx + 1, iy, static_cast<int>(iz))) =
              f(g.voxel(1, iy, static_cast<int>(iz)));
        }
      });
    }
    if (axis_mask & 0b010) {  // y ghosts
      pk::parallel_for("field/ghosts_y", pk::RangePolicy<>(0, g.sz()),
                       [&, g](index_t iz) {
        for (int ix = 0; ix < g.sx(); ++ix) {
          f(g.voxel(ix, 0, static_cast<int>(iz))) =
              f(g.voxel(ix, g.ny, static_cast<int>(iz)));
          f(g.voxel(ix, g.ny + 1, static_cast<int>(iz))) =
              f(g.voxel(ix, 1, static_cast<int>(iz)));
        }
      });
    }
    if (axis_mask & 0b100) {  // z ghosts
      pk::parallel_for("field/ghosts_z", pk::RangePolicy<>(0, g.sy()),
                       [&, g](index_t iy) {
        for (int ix = 0; ix < g.sx(); ++ix) {
          f(g.voxel(ix, static_cast<int>(iy), 0)) =
              f(g.voxel(ix, static_cast<int>(iy), g.nz));
          f(g.voxel(ix, static_cast<int>(iy), g.nz + 1)) =
              f(g.voxel(ix, static_cast<int>(iy), 1));
        }
      });
    }
  };
  copy_all(ex);
  copy_all(ey);
  copy_all(ez);
  copy_all(bx);
  copy_all(by);
  copy_all(bz);
}

void FieldArray::pack_z_plane(int iz, float* buf) const {
  const Grid& g = grid;
  const pk::View<float, 1>* comps[6] = {&ex, &ey, &ez, &bx, &by, &bz};
  std::size_t k = 0;
  for (const auto* c : comps)
    for (int iy = 0; iy < g.sy(); ++iy)
      for (int ix = 0; ix < g.sx(); ++ix) buf[k++] = (*c)(g.voxel(ix, iy, iz));
}

void FieldArray::unpack_z_plane(int iz, const float* buf) {
  const Grid& g = grid;
  pk::View<float, 1>* comps[6] = {&ex, &ey, &ez, &bx, &by, &bz};
  std::size_t k = 0;
  for (auto* c : comps)
    for (int iy = 0; iy < g.sy(); ++iy)
      for (int ix = 0; ix < g.sx(); ++ix) (*c)(g.voxel(ix, iy, iz)) = buf[k++];
}

double FieldArray::field_energy() const {
  const Grid& g = grid;
  const double dv = static_cast<double>(g.dx) * g.dy * g.dz;
  double total = 0;
  pk::parallel_reduce(
      "field/energy", pk::RangePolicy<>(1, g.nz + 1),
      [&, g](index_t iz, double& acc) {
        for (int iy = 1; iy <= g.ny; ++iy)
          for (int ix = 1; ix <= g.nx; ++ix) {
            const index_t v = g.voxel(ix, iy, static_cast<int>(iz));
            const double e2 = static_cast<double>(ex(v)) * ex(v) +
                              static_cast<double>(ey(v)) * ey(v) +
                              static_cast<double>(ez(v)) * ez(v);
            const double b2 = static_cast<double>(bx(v)) * bx(v) +
                              static_cast<double>(by(v)) * by(v) +
                              static_cast<double>(bz(v)) * bz(v);
            acc += 0.5 * (e2 + b2);
          }
      },
      total);
  return total * dv;
}

}  // namespace vpic::core
