// core/tracer.cpp — passive tracer particles (see tracer.hpp).

#include "core/tracer.hpp"

#include <cmath>
#include <filesystem>
#include <fstream>

#include "core/interpolator.hpp"
#include "core/simulation.hpp"

namespace vpic::core {

namespace {

/// move_p's face-splitting walk without the current deposit: advance a
/// passive particle by a cell-local displacement, wrapping periodically
/// at domain faces.
void move_tracer(Particle& p, float dispx, float dispy, float dispz,
                 const Grid& g) {
  for (int guard = 0; guard < 16; ++guard) {
    float f = 1.0f;
    int axis = -1, dir = 0;
    auto consider = [&](float pos, float disp, int ax) {
      if (disp > 0) {
        const float fa = (1.0f - pos) / disp;
        if (fa < f) {
          f = fa;
          axis = ax;
          dir = +1;
        }
      } else if (disp < 0) {
        const float fa = (-1.0f - pos) / disp;
        if (fa < f) {
          f = fa;
          axis = ax;
          dir = -1;
        }
      }
    };
    consider(p.dx, dispx, 0);
    consider(p.dy, dispy, 1);
    consider(p.dz, dispz, 2);
    if (f >= 1.0f) {
      f = 1.0f;
      axis = -1;
    }
    p.dx += dispx * f;
    p.dy += dispy * f;
    p.dz += dispz * f;
    dispx -= dispx * f;
    dispy -= dispy * f;
    dispz -= dispz * f;
    if (axis < 0) return;

    int ix, iy, iz;
    g.cell_of(p.i, ix, iy, iz);
    int c[3] = {ix, iy, iz};
    float* local[3] = {&p.dx, &p.dy, &p.dz};
    *local[axis] = static_cast<float>(-dir);
    c[axis] += dir;
    const int n_axis = (axis == 0) ? g.nx : (axis == 1) ? g.ny : g.nz;
    c[axis] = Grid::wrap(c[axis], n_axis);
    p.i = static_cast<std::int32_t>(g.voxel(c[0], c[1], c[2]));
  }
}

}  // namespace

void TracerModule::run(Simulation& sim, std::int64_t next_step) {
  if (!seeded_) {
    seeded_ = true;
    if (prm_.species < sim.num_species() && prm_.stride > 0) {
      const Species& sp = sim.species(prm_.species);
      dispatch_layout(sp.p, [&](auto a) {
        for (index_t i = 0; i < sp.np; i += prm_.stride) {
          if (tracers_.size() >= prm_.max_tracers) break;
          TracerParticle t;
          t.id = static_cast<std::uint32_t>(tracers_.size());
          t.p = a.load(i);
          tracers_.push_back(t);
        }
      });
    }
  }
  if (tracers_.empty() || prm_.species >= sim.num_species()) return;

  const Species& sp = sim.species(prm_.species);
  const Grid& g = sim.grid();
  const InterpolatorArray& interp = sim.interpolator();
  const float qdt2m = 0.5f * sp.q * g.dt / sp.m;
  const float cdtdx2 = 2.0f * g.cvac * g.dt / g.dx;
  const float cdtdy2 = 2.0f * g.cvac * g.dt / g.dy;
  const float cdtdz2 = 2.0f * g.cvac * g.dt / g.dz;
  const bool sample =
      prm_.sample_interval > 0 && next_step % prm_.sample_interval == 0;

  for (TracerParticle& t : tracers_) {
    Particle& p = t.p;
    // Same gather + Boris float math as the species push (push.cpp), so a
    // tracer that starts on a species particle shadows it until their
    // trajectories decorrelate.
    const FieldsAtPoint f = interpolate(interp(p.i), p.dx, p.dy, p.dz);
    const float hax = qdt2m * f.ex, hay = qdt2m * f.ey, haz = qdt2m * f.ez;
    float ux = p.ux + hax;
    float uy = p.uy + hay;
    float uz = p.uz + haz;
    const float gmi =
        1.0f / std::sqrt(1.0f + ux * ux + uy * uy + uz * uz);
    const float tx = qdt2m * f.bx * gmi;
    const float ty = qdt2m * f.by * gmi;
    const float tz = qdt2m * f.bz * gmi;
    const float sfac = 2.0f / (1.0f + (tx * tx + ty * ty + tz * tz));
    const float sx = tx * sfac, sy = ty * sfac, sz = tz * sfac;
    const float wx = ux + (uy * tz - uz * ty);
    const float wy = uy + (uz * tx - ux * tz);
    const float wz = uz + (ux * ty - uy * tx);
    ux += wy * sz - wz * sy;
    uy += wz * sx - wx * sz;
    uz += wx * sy - wy * sx;
    ux += hax;
    uy += hay;
    uz += haz;
    p.ux = ux;
    p.uy = uy;
    p.uz = uz;
    const float rg =
        1.0f / std::sqrt(1.0f + ux * ux + uy * uy + uz * uz);
    move_tracer(p, cdtdx2 * ux * rg, cdtdy2 * uy * rg, cdtdz2 * uz * rg, g);

    if (sample) {
      TracerSample s;
      s.step = next_step;
      s.id = t.id;
      s.voxel = p.i;
      s.dx = p.dx;
      s.dy = p.dy;
      s.dz = p.dz;
      s.ux = p.ux;
      s.uy = p.uy;
      s.uz = p.uz;
      if (ring_.size() < prm_.ring_capacity) {
        ring_.push_back(s);
      } else if (!ring_.empty()) {
        ring_[ring_head_] = s;
        ring_head_ = (ring_head_ + 1) % ring_.size();
      }
      ++total_;
    }
  }
}

void TracerModule::plan(Simulation& sim, const ModuleStepContext& ctx,
                        StepComposer& c) {
  // Cache the sink path so the destructor flush works even when no
  // checkpoint ever fires.
  csv_path_ = sim.config().tracer_csv_path;
  if (prm_.species >= sim.num_species()) return;
  const Species& sp = sim.species(prm_.species);
  std::vector<std::string> rd{"interp"};
  if (!ctx.tiled) {
    rd.push_back("particles." + sp.name);
  } else {
    for (int t = 0; t < ctx.tiles->count(); ++t)
      rd.push_back("particles." + sp.name + ".t" + std::to_string(t));
  }
  const auto poll = ctx.poll;
  c.add_branch({"tracer",
                std::move(rd),
                {"tracer", "diag"},
                [this, &sim, poll, ns = ctx.next_step] {
                  if (poll) poll();
                  run(sim, ns);
                },
                0.0});
  c.edge(c.anchor("interp_ready"), "tracer");
  if (ctx.tiled && ctx.stealing) {
    // Stealing mode has no spine tail yet at the Push stage: order the
    // particle-read conflict against the source species' tile pushes
    // explicitly.
    for (int t = 0; t < ctx.tiles->count(); ++t)
      c.edge("push[" + sp.name + ".t" + std::to_string(t) + "]", "tracer");
  }
  c.join("tracer");
}

std::vector<TracerSample> TracerModule::trajectory() const {
  std::vector<TracerSample> out;
  out.reserve(ring_.size());
  if (ring_.size() < prm_.ring_capacity) {
    out = ring_;
  } else {
    for (std::size_t k = 0; k < ring_.size(); ++k)
      out.push_back(ring_[(ring_head_ + k) % ring_.size()]);
  }
  return out;
}

void TracerModule::on_checkpoint(Simulation& sim) {
  csv_path_ = sim.config().tracer_csv_path;
  flush_csv();
}

void TracerModule::flush_csv() {
  if (csv_path_.empty() || csv_written_ >= total_) return;
  std::error_code ec;
  const auto size = std::filesystem::file_size(csv_path_, ec);
  const bool need_header = ec || size == 0;
  std::ofstream os(csv_path_, std::ios::app);
  if (!os) return;  // sink trouble must not fail the checkpoint
  if (need_header) os << "step,id,voxel,dx,dy,dz,ux,uy,uz\n";
  os.precision(9);  // round-trips float exactly
  const auto traj = trajectory();
  // Unflushed tail of the ring; samples evicted before this flush are
  // gone from the CSV too (ring_capacity bounds the gap).
  std::uint64_t fresh = total_ - csv_written_;
  if (fresh > traj.size()) fresh = traj.size();
  for (std::size_t k = traj.size() - static_cast<std::size_t>(fresh);
       k < traj.size(); ++k) {
    const TracerSample& s = traj[k];
    os << s.step << ',' << s.id << ',' << s.voxel << ',' << s.dx << ','
       << s.dy << ',' << s.dz << ',' << s.ux << ',' << s.uy << ',' << s.uz
       << '\n';
  }
  csv_written_ = total_;
}

void TracerModule::save_state(ModuleStateWriter& w) const {
  const std::uint8_t seeded = seeded_ ? 1 : 0;
  w.add_pod("seeded", seeded);
  w.add_pod("ring_head", static_cast<std::uint64_t>(ring_head_));
  w.add_pod("total", total_);
  w.add_vector("particles", tracers_);
  w.add_vector("ring", ring_);
}

void TracerModule::load_state(ModuleStateReader& r,
                              std::uint32_t /*version*/) {
  seeded_ = r.pod<std::uint8_t>("seeded") != 0;
  ring_head_ = static_cast<std::size_t>(r.pod<std::uint64_t>("ring_head"));
  total_ = r.pod<std::uint64_t>("total");
  tracers_ = r.vector<TracerParticle>("particles");
  ring_ = r.vector<TracerSample>("ring");
  // Everything up to the checkpoint was flushed when it was taken
  // (on_checkpoint runs before commit returns); only post-restore samples
  // are new for the CSV.
  csv_written_ = total_;
}

void TracerModule::clear_state() {
  seeded_ = false;
  tracers_.clear();
  ring_.clear();
  ring_head_ = 0;
  total_ = 0;
  csv_written_ = 0;
}

}  // namespace vpic::core
