#include "core/simulation.hpp"

#include "core/rng.hpp"

namespace vpic::core {

void Simulation::load_uniform_plasma(std::size_t species_idx, int ppc,
                                     float uth, float udx, float udy,
                                     float udz) {
  Species& sp = species_[species_idx];
  const Grid& g = fields_.grid;
  const index_t want = g.interior_cells() * ppc;
  if (want > sp.capacity())
    throw std::length_error("load_uniform_plasma: species capacity " +
                            std::to_string(sp.capacity()) +
                            " < required " + std::to_string(want));

  const std::uint64_t seed = hash64(cfg_.seed + 0x5eed0000 + species_idx);
  index_t n = sp.np;
  for (int iz = 1; iz <= g.nz; ++iz)
    for (int iy = 1; iy <= g.ny; ++iy)
      for (int ix = 1; ix <= g.nx; ++ix) {
        const index_t v = g.voxel(ix, iy, iz);
        for (int k = 0; k < ppc; ++k) {
          Particle p;
          const std::uint64_t ctr = static_cast<std::uint64_t>(v) * 1000 +
                                    static_cast<std::uint64_t>(k);
          p.dx = static_cast<float>(2.0 * uniform01(seed, 6 * ctr + 0) - 1.0);
          p.dy = static_cast<float>(2.0 * uniform01(seed, 6 * ctr + 1) - 1.0);
          p.dz = static_cast<float>(2.0 * uniform01(seed, 6 * ctr + 2) - 1.0);
          p.i = static_cast<std::int32_t>(v);
          p.ux = udx + uth * static_cast<float>(normal(seed, 6 * ctr + 3));
          p.uy = udy + uth * static_cast<float>(normal(seed, 6 * ctr + 4));
          p.uz = udz + uth * static_cast<float>(normal(seed, 6 * ctr + 5));
          // Unit physical density regardless of ppc: with |q| = m = 1 this
          // puts the species plasma frequency at 1/dt-independent omega_p=1
          // (cell sizes are in units of c/omega_p).
          p.w = 1.0f / static_cast<float>(ppc);
          sp.p.set(n++, p);
        }
      }
  sp.np = n;
}

void Simulation::step() {
  if (cfg_.scheduler == StepScheduler::Sequential) {
    step_sequential();
  } else {
    step_graph_exec();
  }
}

// Legacy straight-line schedule: the reference order the graph scheduler
// must reproduce bit-identically (tests/test_step_graph.cpp).
void Simulation::step_sequential() {
  prof::ScopedRegion step_region("step");

  {
    prof::ScopedRegion r("interpolate");
    interp_.load(fields_);
    acc_.clear();
  }

  {
    // The sink keeps the legacy push_seconds() accessor live even with
    // profiling off; with it on, the same interval is the "step/push"
    // region (with the per-strategy kernels as children).
    prof::ScopedRegion r("push", &push_seconds_);
    last_push_paths_.resize(species_.size());
    for (std::size_t s = 0; s < species_.size(); ++s)
      last_push_paths_[s] =
          advance_species(species_[s], interp_, acc_, fields_.grid,
                          cfg_.strategy, {}, cfg_.push_path);
  }

  {
    prof::ScopedRegion r("accumulate");
    acc_.reduce_ghosts_periodic();
    acc_.unload(fields_);
  }

  {
    prof::ScopedRegion r("field_advance");
    fields_.advance_b_half();
    fields_.update_ghosts_periodic();
    fields_.advance_e();
    fields_.update_ghosts_periodic();
    fields_.advance_b_half();
    fields_.update_ghosts_periodic();
  }

  ++step_count_;
  if (injection_hook_) injection_hook_(*this);
  if (cfg_.energy_interval > 0 &&
      step_count_ % cfg_.energy_interval == 0) {
    prof::ScopedRegion r("diagnostics");
    const auto e = energies();
    energy_history_.record(step_count_, e.field, e.species);
  }
  if (cfg_.sort_interval > 0 && step_count_ % cfg_.sort_interval == 0) {
    std::uint32_t tile = cfg_.sort_tile;
    if (tile == 0)
      tile = static_cast<std::uint32_t>(pk::DefaultExecSpace::concurrency());
    prof::ScopedRegion r("sort", &sort_seconds_);
    // Cell keys are voxel indices, bounded by grid.nv(): passing the bound
    // lets the standard order skip its min/max reduce and go straight to
    // the single-pass counting sort.
    for (auto& sp : species_)
      sort_particles(sp, cfg_.sort_order, tile,
                     cfg_.seed + static_cast<std::uint64_t>(step_count_),
                     fields_.grid.nv());
  }
  if (checkpoint_due(step_count_)) checkpoint_to_ring();
}

// Express the step as a validated StepGraph. Every edge below orders a
// conflicting phase pair to match step_sequential(), so the scheduled
// result is bit-identical to the legacy order; what remains unordered is
// exactly the concurrency that cannot change results (interpolator load
// vs accumulator clear, per-species sorts). Per-species push phases are
// chained — they share the accumulator and float atomics are not
// associative. See docs/ASYNC.md for the graph picture.
//
// `next_step` is the step count this step will end on; the interval
// conditions (diagnostics, sort) are evaluated against it at build time
// so the graph's shape matches what the legacy tail would have done.
StepGraph Simulation::build_step_graph(std::int64_t next_step) {
  StepGraph g;

  std::vector<std::string> particle_res;
  particle_res.reserve(species_.size());
  for (const auto& sp : species_)
    particle_res.push_back("particles." + sp.name);

  g.add_phase({"interpolate",
               {"fields.eb"},
               {"interp"},
               [this] { interp_.load(fields_); }});
  g.add_phase({"acc_clear", {}, {"acc"}, [this] { acc_.clear(); }});

  last_push_paths_.resize(species_.size());
  std::string prev;
  for (std::size_t s = 0; s < species_.size(); ++s) {
    std::string name = "push[" + species_[s].name + "]";
    g.add_phase({name,
                 {"interp"},
                 {"acc", particle_res[s]},
                 [this, s] {
                   last_push_paths_[s] =
                       advance_species(species_[s], interp_, acc_,
                                       fields_.grid, cfg_.strategy, {},
                                       cfg_.push_path);
                 }});
    if (s == 0) {
      g.add_edge("interpolate", name);
      g.add_edge("acc_clear", name);
    } else {
      g.add_edge(prev, name);
    }
    prev = std::move(name);
  }

  g.add_phase({"accumulate",
               {"acc"},
               {"fields.j"},
               [this] {
                 acc_.reduce_ghosts_periodic();
                 acc_.unload(fields_);
               }});
  g.add_edge(species_.empty() ? "acc_clear" : prev, "accumulate");

  g.add_phase({"field_advance",
               {"fields.j"},
               {"fields.eb"},
               [this] {
                 fields_.advance_b_half();
                 fields_.update_ghosts_periodic();
                 fields_.advance_e();
                 fields_.update_ghosts_periodic();
                 fields_.advance_b_half();
                 fields_.update_ghosts_periodic();
               }});
  g.add_edge("accumulate", "field_advance");
  // Orders the fields.eb read-write conflict directly; with species the
  // push chain already implies it, without species it is load-bearing.
  g.add_edge("interpolate", "field_advance");

  std::string tail = "field_advance";
  if (injection_hook_) {
    // The hook gets the whole Simulation&, so it conservatively writes
    // everything a deck hook might touch.
    std::vector<std::string> wr{"fields.eb", "fields.j", "interp", "acc"};
    wr.insert(wr.end(), particle_res.begin(), particle_res.end());
    g.add_phase({"injection",
                 {},
                 std::move(wr),
                 [this] { injection_hook_(*this); }});
    g.add_edge(tail, "injection");
    tail = "injection";
  }
  if (cfg_.energy_interval > 0 && next_step % cfg_.energy_interval == 0) {
    std::vector<std::string> rd{"fields.eb"};
    rd.insert(rd.end(), particle_res.begin(), particle_res.end());
    g.add_phase({"diagnostics",
                 std::move(rd),
                 {"diag"},
                 [this] {
                   const auto e = energies();
                   energy_history_.record(step_count_, e.field, e.species);
                 }});
    g.add_edge(tail, "diagnostics");
    tail = "diagnostics";
  }
  std::vector<std::string> sort_names;
  if (cfg_.sort_interval > 0 && next_step % cfg_.sort_interval == 0) {
    std::uint32_t tile = cfg_.sort_tile;
    if (tile == 0)
      tile = static_cast<std::uint32_t>(pk::DefaultExecSpace::concurrency());
    // Each sort touches only its own species: the phases are mutually
    // unordered and run concurrently on separate instances.
    for (std::size_t s = 0; s < species_.size(); ++s) {
      std::string name = "sort[" + species_[s].name + "]";
      g.add_phase({name,
                   {},
                   {particle_res[s]},
                   [this, s, tile] {
                     sort_particles(
                         species_[s], cfg_.sort_order, tile,
                         cfg_.seed + static_cast<std::uint64_t>(step_count_),
                         fields_.grid.nv());
                   }});
      g.add_edge(tail, name);
      sort_names.push_back(std::move(name));
    }
  }
  if (checkpoint_due(next_step)) {
    // The snapshot reads everything it serializes; declaring the full
    // read set lets validate() prove the capture cannot race a sort (or
    // anything else) still in flight. The sort edges order the
    // particle-resource conflicts to match the sequential tail, which
    // checkpoints after sorting.
    std::vector<std::string> rd{"fields.eb", "fields.j", "interp", "acc",
                                "diag"};
    rd.insert(rd.end(), particle_res.begin(), particle_res.end());
    g.add_phase({"ckpt",
                 std::move(rd),
                 {"ckpt"},
                 [this] { checkpoint_to_ring(); }});
    g.add_edge(tail, "ckpt");
    for (const auto& sn : sort_names) g.add_edge(sn, "ckpt");
  }
  return g;
}

void Simulation::step_graph_exec() {
  prof::ScopedRegion step_region("step");
  StepGraph g = build_step_graph(step_count_ + 1);
  g.validate();
  // The phases' interval seeds and record timestamps read step_count_
  // post-increment, exactly like the legacy tail.
  ++step_count_;
  g.execute(cfg_.graph_instances);
  last_phase_stats_ = g.last_stats();
  last_concurrency_peak_ = g.last_concurrency_peak();
  for (const PhaseStats& st : last_phase_stats_) {
    if (st.name.starts_with("push[")) {
      push_seconds_ += st.seconds;
    } else if (st.name.starts_with("sort[")) {
      sort_seconds_ += st.seconds;
    }
  }
}

EnergyReport Simulation::energies() const {
  EnergyReport r;
  r.field = fields_.field_energy();
  for (const auto& sp : species_) r.species.push_back(sp.kinetic_energy());
  return r;
}

pk::View<double, 1> Simulation::charge_density() const {
  const Grid& g = fields_.grid;
  pk::View<double, 1> rho("rho", g.nv());
  const double inv_v = 1.0 / (static_cast<double>(g.dx) * g.dy * g.dz);
  for (const auto& sp : species_) {
    for (index_t n = 0; n < sp.np; ++n) {
      const Particle p = sp.p.get(n);
      int ix, iy, iz;
      g.cell_of(p.i, ix, iy, iz);
      // Trilinear node deposit (nodes = cell corners).
      const double wx1 = 0.5 * (1.0 + p.dx), wx0 = 1.0 - wx1;
      const double wy1 = 0.5 * (1.0 + p.dy), wy0 = 1.0 - wy1;
      const double wz1 = 0.5 * (1.0 + p.dz), wz0 = 1.0 - wz1;
      const double qw = static_cast<double>(sp.q) * p.w * inv_v;
      auto add = [&](int jx, int jy, int jz, double w) {
        // Wrap node indices periodically onto interior nodes 1..n.
        jx = jx > g.nx ? 1 : jx;
        jy = jy > g.ny ? 1 : jy;
        jz = jz > g.nz ? 1 : jz;
        rho(g.voxel(jx, jy, jz)) += qw * w;
      };
      add(ix, iy, iz, wx0 * wy0 * wz0);
      add(ix + 1, iy, iz, wx1 * wy0 * wz0);
      add(ix, iy + 1, iz, wx0 * wy1 * wz0);
      add(ix + 1, iy + 1, iz, wx1 * wy1 * wz0);
      add(ix, iy, iz + 1, wx0 * wy0 * wz1);
      add(ix + 1, iy, iz + 1, wx1 * wy0 * wz1);
      add(ix, iy + 1, iz + 1, wx0 * wy1 * wz1);
      add(ix + 1, iy + 1, iz + 1, wx1 * wy1 * wz1);
    }
  }
  return rho;
}

}  // namespace vpic::core
