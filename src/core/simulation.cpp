#include "core/simulation.hpp"

#include "core/rng.hpp"

namespace vpic::core {

void Simulation::load_uniform_plasma(std::size_t species_idx, int ppc,
                                     float uth, float udx, float udy,
                                     float udz) {
  Species& sp = species_[species_idx];
  const Grid& g = fields_.grid;
  const index_t want = g.interior_cells() * ppc;
  if (want > sp.capacity())
    throw std::length_error("load_uniform_plasma: species capacity " +
                            std::to_string(sp.capacity()) +
                            " < required " + std::to_string(want));

  const std::uint64_t seed = hash64(cfg_.seed + 0x5eed0000 + species_idx);
  index_t n = sp.np;
  for (int iz = 1; iz <= g.nz; ++iz)
    for (int iy = 1; iy <= g.ny; ++iy)
      for (int ix = 1; ix <= g.nx; ++ix) {
        const index_t v = g.voxel(ix, iy, iz);
        for (int k = 0; k < ppc; ++k) {
          Particle p;
          const std::uint64_t ctr = static_cast<std::uint64_t>(v) * 1000 +
                                    static_cast<std::uint64_t>(k);
          p.dx = static_cast<float>(2.0 * uniform01(seed, 6 * ctr + 0) - 1.0);
          p.dy = static_cast<float>(2.0 * uniform01(seed, 6 * ctr + 1) - 1.0);
          p.dz = static_cast<float>(2.0 * uniform01(seed, 6 * ctr + 2) - 1.0);
          p.i = static_cast<std::int32_t>(v);
          p.ux = udx + uth * static_cast<float>(normal(seed, 6 * ctr + 3));
          p.uy = udy + uth * static_cast<float>(normal(seed, 6 * ctr + 4));
          p.uz = udz + uth * static_cast<float>(normal(seed, 6 * ctr + 5));
          // Unit physical density regardless of ppc: with |q| = m = 1 this
          // puts the species plasma frequency at 1/dt-independent omega_p=1
          // (cell sizes are in units of c/omega_p).
          p.w = 1.0f / static_cast<float>(ppc);
          sp.p.set(n++, p);
        }
      }
  sp.np = n;
}

void Simulation::step() {
  if (cfg_.tiles.enabled) {
    step_tiled();
  } else if (cfg_.scheduler == StepScheduler::Sequential) {
    step_sequential();
  } else {
    step_graph_exec();
  }
}

// Legacy straight-line schedule: the reference order the graph scheduler
// must reproduce bit-identically (tests/test_step_graph.cpp).
void Simulation::step_sequential() {
  prof::ScopedRegion step_region("step");

  {
    prof::ScopedRegion r("interpolate");
    interp_.load(fields_);
    acc_.clear();
  }

  {
    // The sink keeps the legacy push_seconds() accessor live even with
    // profiling off; with it on, the same interval is the "step/push"
    // region (with the per-strategy kernels as children).
    prof::ScopedRegion r("push", &push_seconds_);
    last_push_paths_.resize(species_.size());
    for (std::size_t s = 0; s < species_.size(); ++s)
      last_push_paths_[s] =
          advance_species(species_[s], interp_, acc_, fields_.grid,
                          cfg_.strategy, {}, cfg_.push_path);
  }

  {
    prof::ScopedRegion r("accumulate");
    acc_.reduce_ghosts_periodic();
    acc_.unload(fields_);
  }

  {
    prof::ScopedRegion r("field_advance");
    fields_.advance_b_half();
    fields_.update_ghosts_periodic();
    fields_.advance_e();
    fields_.update_ghosts_periodic();
    fields_.advance_b_half();
    fields_.update_ghosts_periodic();
  }

  ++step_count_;
  if (injection_hook_) injection_hook_(*this);
  if (cfg_.energy_interval > 0 &&
      step_count_ % cfg_.energy_interval == 0) {
    prof::ScopedRegion r("diagnostics");
    const auto e = energies();
    energy_history_.record(step_count_, e.field, e.species);
  }
  if (cfg_.sort_interval > 0 && step_count_ % cfg_.sort_interval == 0) {
    std::uint32_t tile = cfg_.sort_tile;
    if (tile == 0)
      tile = static_cast<std::uint32_t>(pk::DefaultExecSpace::concurrency());
    prof::ScopedRegion r("sort", &sort_seconds_);
    // Cell keys are voxel indices, bounded by grid.nv(): passing the bound
    // lets the standard order skip its min/max reduce and go straight to
    // the single-pass counting sort.
    for (auto& sp : species_)
      sort_particles(sp, cfg_.sort_order, tile,
                     cfg_.seed + static_cast<std::uint64_t>(step_count_),
                     fields_.grid.nv());
  }
  if (checkpoint_due(step_count_)) checkpoint_to_ring();
}

// Express the step as a validated StepGraph. Every edge below orders a
// conflicting phase pair to match step_sequential(), so the scheduled
// result is bit-identical to the legacy order; what remains unordered is
// exactly the concurrency that cannot change results (interpolator load
// vs accumulator clear, per-species sorts). Per-species push phases are
// chained — they share the accumulator and float atomics are not
// associative. See docs/ASYNC.md for the graph picture.
//
// `next_step` is the step count this step will end on; the interval
// conditions (diagnostics, sort) are evaluated against it at build time
// so the graph's shape matches what the legacy tail would have done.
StepGraph Simulation::build_step_graph(std::int64_t next_step) {
  StepGraph g;

  std::vector<std::string> particle_res;
  particle_res.reserve(species_.size());
  for (const auto& sp : species_)
    particle_res.push_back("particles." + sp.name);

  g.add_phase({"interpolate",
               {"fields.eb"},
               {"interp"},
               [this] { interp_.load(fields_); }});
  g.add_phase({"acc_clear", {}, {"acc"}, [this] { acc_.clear(); }});

  last_push_paths_.resize(species_.size());
  std::string prev;
  for (std::size_t s = 0; s < species_.size(); ++s) {
    std::string name = "push[" + species_[s].name + "]";
    g.add_phase({name,
                 {"interp"},
                 {"acc", particle_res[s]},
                 [this, s] {
                   last_push_paths_[s] =
                       advance_species(species_[s], interp_, acc_,
                                       fields_.grid, cfg_.strategy, {},
                                       cfg_.push_path);
                 }});
    if (s == 0) {
      g.add_edge("interpolate", name);
      g.add_edge("acc_clear", name);
    } else {
      g.add_edge(prev, name);
    }
    prev = std::move(name);
  }

  g.add_phase({"accumulate",
               {"acc"},
               {"fields.j"},
               [this] {
                 acc_.reduce_ghosts_periodic();
                 acc_.unload(fields_);
               }});
  g.add_edge(species_.empty() ? "acc_clear" : prev, "accumulate");

  g.add_phase({"field_advance",
               {"fields.j"},
               {"fields.eb"},
               [this] {
                 fields_.advance_b_half();
                 fields_.update_ghosts_periodic();
                 fields_.advance_e();
                 fields_.update_ghosts_periodic();
                 fields_.advance_b_half();
                 fields_.update_ghosts_periodic();
               }});
  g.add_edge("accumulate", "field_advance");
  // Orders the fields.eb read-write conflict directly; with species the
  // push chain already implies it, without species it is load-bearing.
  g.add_edge("interpolate", "field_advance");

  std::string tail = "field_advance";
  if (injection_hook_) {
    // The hook gets the whole Simulation&, so it conservatively writes
    // everything a deck hook might touch.
    std::vector<std::string> wr{"fields.eb", "fields.j", "interp", "acc"};
    wr.insert(wr.end(), particle_res.begin(), particle_res.end());
    g.add_phase({"injection",
                 {},
                 std::move(wr),
                 [this] { injection_hook_(*this); }});
    g.add_edge(tail, "injection");
    tail = "injection";
  }
  if (cfg_.energy_interval > 0 && next_step % cfg_.energy_interval == 0) {
    std::vector<std::string> rd{"fields.eb"};
    rd.insert(rd.end(), particle_res.begin(), particle_res.end());
    g.add_phase({"diagnostics",
                 std::move(rd),
                 {"diag"},
                 [this] {
                   const auto e = energies();
                   energy_history_.record(step_count_, e.field, e.species);
                 }});
    g.add_edge(tail, "diagnostics");
    tail = "diagnostics";
  }
  std::vector<std::string> sort_names;
  if (cfg_.sort_interval > 0 && next_step % cfg_.sort_interval == 0) {
    std::uint32_t tile = cfg_.sort_tile;
    if (tile == 0)
      tile = static_cast<std::uint32_t>(pk::DefaultExecSpace::concurrency());
    // Each sort touches only its own species: the phases are mutually
    // unordered and run concurrently on separate instances.
    for (std::size_t s = 0; s < species_.size(); ++s) {
      std::string name = "sort[" + species_[s].name + "]";
      g.add_phase({name,
                   {},
                   {particle_res[s]},
                   [this, s, tile] {
                     sort_particles(
                         species_[s], cfg_.sort_order, tile,
                         cfg_.seed + static_cast<std::uint64_t>(step_count_),
                         fields_.grid.nv());
                   }});
      g.add_edge(tail, name);
      sort_names.push_back(std::move(name));
    }
  }
  if (checkpoint_due(next_step)) {
    // The snapshot reads everything it serializes; declaring the full
    // read set lets validate() prove the capture cannot race a sort (or
    // anything else) still in flight. The sort edges order the
    // particle-resource conflicts to match the sequential tail, which
    // checkpoints after sorting.
    std::vector<std::string> rd{"fields.eb", "fields.j", "interp", "acc",
                                "diag"};
    rd.insert(rd.end(), particle_res.begin(), particle_res.end());
    g.add_phase({"ckpt",
                 std::move(rd),
                 {"ckpt"},
                 [this] { checkpoint_to_ring(); }});
    g.add_edge(tail, "ckpt");
    for (const auto& sn : sort_names) g.add_edge(sn, "ckpt");
  }
  return g;
}

void Simulation::step_graph_exec() {
  prof::ScopedRegion step_region("step");
  StepGraph g = build_step_graph(step_count_ + 1);
  g.validate();
  // The phases' interval seeds and record timestamps read step_count_
  // post-increment, exactly like the legacy tail.
  ++step_count_;
  g.execute(cfg_.graph_instances);
  last_phase_stats_ = g.last_stats();
  last_concurrency_peak_ = g.last_concurrency_peak();
  for (const PhaseStats& st : last_phase_stats_) {
    if (st.name.starts_with("push[")) {
      push_seconds_ += st.seconds;
    } else if (st.name.starts_with("sort[")) {
      sort_seconds_ += st.seconds;
    }
  }
}

// ---------------------------------------------------------------------
// Tiled step (docs/TILES.md): the domain is over-decomposed into z-slab
// tiles, each (phase x tile) pair is a StepGraph task with declared
// read/write sets, and the graph runs either serially in the reference
// order (Deterministic: bit-identical to the untiled Sequential step for
// Auto/Guided) or on the work-stealing pool (Stealing: tile-private
// accumulator blocks merged in fixed tile order keep results
// bit-deterministic run-to-run and across worker counts).
// ---------------------------------------------------------------------

void Simulation::ensure_tiles() {
  const bool stealing = cfg_.tiles.exec == TileExec::Stealing;
  const int workers = std::max(1, cfg_.tiles.workers);
  const int want =
      cfg_.tiles.count > 0
          ? std::clamp(cfg_.tiles.count, 1, fields_.grid.nz)
          : TileMap::auto_count(fields_.grid, workers);
  const bool pool_ok =
      !stealing || (steal_pool_ && steal_pool_->workers() == workers);
  const bool blocks_ok =
      !stealing || (tile_acc_.size() == species_.size() &&
                    (species_.empty() ||
                     static_cast<int>(tile_acc_.front().size()) == want));
  if (!tiles_dirty_ && tile_map_.count() == want && pool_ok && blocks_ok)
    return;

  if (cfg_.sort_order != sort::SortOrder::Standard)
    throw std::logic_error(
        "tiled step: the per-tile counting sort produces Standard "
        "(voxel-ascending) order; set SimulationConfig::sort_order = "
        "Standard");

  tile_map_ = TileMap(fields_.grid, want);
  for (auto& sp : species_) bucket_by_tile(sp, tile_map_);
  tile_acc_.clear();
  if (stealing) {
    tile_acc_.resize(species_.size());
    for (auto& per_sp : tile_acc_) {
      per_sp.reserve(static_cast<std::size_t>(want));
      for (int t = 0; t < want; ++t)
        per_sp.emplace_back(fields_.grid, tile_map_, t);
    }
    if (!steal_pool_ || steal_pool_->workers() != workers)
      steal_pool_ =
          std::make_unique<pk::StealPool>(workers, cfg_.tiles.steal_seed);
  }
  tiles_dirty_ = false;
}

StepGraph Simulation::build_tiled_step_graph(std::int64_t next_step) {
  StepGraph g;
  const int nt = tile_map_.count();
  const bool stealing = cfg_.tiles.exec == TileExec::Stealing;
  const std::size_t ns = species_.size();

  auto tag = [](const char* base, int t) {
    return std::string(base) + std::to_string(t);
  };
  auto poll = [this] {
    if (phase_poll_) phase_poll_();
  };

  // Resource names. Validate() matches resources by exact string, so a
  // per-tile slice is a distinct resource from the whole ("interp.t3" vs
  // "interp"); phases touching the whole declare every slice too.
  std::vector<std::string> interp_res(static_cast<std::size_t>(nt));
  for (int t = 0; t < nt; ++t) interp_res[t] = tag("interp.t", t);
  std::vector<std::vector<std::string>> part_res(ns);
  std::vector<std::vector<std::string>> blk_res(ns);
  for (std::size_t s = 0; s < ns; ++s) {
    part_res[s].reserve(static_cast<std::size_t>(nt));
    blk_res[s].reserve(static_cast<std::size_t>(nt));
    for (int t = 0; t < nt; ++t) {
      part_res[s].push_back("particles." + species_[s].name + ".t" +
                            std::to_string(t));
      blk_res[s].push_back("acc." + species_[s].name + ".t" +
                           std::to_string(t));
    }
  }
  std::vector<std::string> everything{"fields.eb", "fields.j", "interp",
                                      "acc", "diag"};
  everything.insert(everything.end(), interp_res.begin(), interp_res.end());
  for (std::size_t s = 0; s < ns; ++s)
    everything.insert(everything.end(), part_res[s].begin(),
                      part_res[s].end());

  // Cost model: tune-probed generic-push seconds/particle (fallback to a
  // nominal value when unprobed) scales tile population into expected
  // task cost; field/interp work scales with voxels. Only relative
  // magnitudes matter — LPT placement ranks tasks, it doesn't time them.
  constexpr double kVoxelCost = 1e-9;
  std::vector<double> push_pp(ns);
  for (std::size_t s = 0; s < ns; ++s) {
    push_pp[s] = tune::push_cost_per_particle(species_[s].layout());
    if (push_pp[s] <= 0) push_pp[s] = 5e-9;
  }

  // Deterministic mode is the serial reference order: chain every phase
  // to its predecessor so insertion order IS the schedule (and validate()
  // passes trivially). Stealing mode declares only the real partial
  // order below.
  std::string prev;
  auto chain = [&](const std::string& name) {
    if (stealing) return;
    if (!prev.empty()) g.add_edge(prev, name);
    prev = name;
  };

  // -- interpolate, one task per tile ---------------------------------
  for (int t = 0; t < nt; ++t) {
    const std::string name = "interp[t" + std::to_string(t) + "]";
    const int z0 = tile_map_.z_lo(t), z1 = tile_map_.z_hi(t);
    g.add_phase({name,
                 {"fields.eb"},
                 {interp_res[static_cast<std::size_t>(t)]},
                 [this, z0, z1, poll] {
                   poll();
                   interp_.load_planes(fields_, z0, z1);
                 },
                 static_cast<double>(z1 - z0 + 1) *
                     static_cast<double>(tile_map_.plane_voxels()) *
                     kVoxelCost});
    chain(name);
  }
  if (stealing) {
    // Fan-in barrier: a tile's particles may have drifted arbitrarily far
    // since the last bucketing, so every push conservatively reads the
    // whole interpolator (declared as the "interp" resource).
    std::vector<std::string> rd = interp_res;
    g.add_phase({"interp_done", std::move(rd), {"interp"}, [poll] { poll(); },
                 0.0});
    for (int t = 0; t < nt; ++t)
      g.add_edge("interp[t" + std::to_string(t) + "]", "interp_done");
  }

  g.add_phase({"acc_clear",
               {},
               {"acc"},
               [this, poll] {
                 poll();
                 acc_.clear();
               },
               static_cast<double>(fields_.grid.nv()) * kVoxelCost});
  chain("acc_clear");

  // -- push, one task per (species, tile) -----------------------------
  // In stealing mode `runs_used` collects (bit per species, set by any
  // tile that took the run-aware path) so last_push_paths_ reports how
  // per-tile AutoDetect resolved; shared_ptr keeps it alive inside the
  // phase closures.
  auto runs_used =
      std::make_shared<std::vector<std::atomic<std::uint32_t>>>(ns);
  for (std::size_t s = 0; s < ns; ++s) {
    if (!stealing) {
      // Global dispatch decision + global run segmentation, partitioned
      // by tile index range: concatenating the per-tile serial pushes
      // reproduces the untiled kernels' iteration order and flush
      // grouping exactly (docs/TILES.md, "Determinism").
      const std::string plan_name = "push_plan[" + species_[s].name + "]";
      std::vector<std::string> rd = part_res[s];
      g.add_phase({plan_name,
                   std::move(rd),
                   {"push_plan." + species_[s].name},
                   [this, s, poll] {
                     poll();
                     Species& sp = species_[s];
                     TilePushPlan& plan = tile_push_plans_[s];
                     bool use_runs = false;
                     switch (cfg_.push_path) {
                       case PushPath::Generic:
                         break;
                       case PushPath::RunAware:
                         use_runs = cfg_.strategy != VectorStrategy::AdHoc;
                         break;
                       case PushPath::AutoDetect:
                         use_runs = cfg_.strategy != VectorStrategy::AdHoc &&
                                    run_aware_profitable(sp);
                         break;
                     }
                     plan.use_runs = use_runs;
                     last_push_paths_[s] =
                         use_runs ? PushPath::RunAware : PushPath::Generic;
                     prof::counter_add(use_runs ? "push.dispatch.run_aware"
                                                : "push.dispatch.generic");
                     const int ntt = tile_map_.count();
                     plan.run_lo.assign(static_cast<std::size_t>(ntt) + 1, 0);
                     if (!use_runs) return;
                     dispatch_layout(sp.p, [&](auto a) {
                       sort::segment_runs(
                           sp.np, [a](index_t i) { return a.cell(i); },
                           sp.push_runs);
                     });
                     std::size_t r = 0;
                     for (int t = 0; t < ntt; ++t) {
                       plan.run_lo[static_cast<std::size_t>(t)] = r;
                       const index_t end =
                           sp.tiles[static_cast<std::size_t>(t)].end;
                       while (r < sp.push_runs.size() &&
                              sp.push_runs[r].begin < end)
                         ++r;
                     }
                     plan.run_lo[static_cast<std::size_t>(ntt)] =
                         sp.push_runs.size();
                   },
                   0.0});
      chain(plan_name);
    }
    for (int t = 0; t < nt; ++t) {
      const std::string name =
          "push[" + species_[s].name + ".t" + std::to_string(t) + "]";
      const double cost =
          static_cast<double>(
              species_[s].tiles[static_cast<std::size_t>(t)].count()) *
          push_pp[s];
      if (!stealing) {
        g.add_phase(
            {name,
             {"interp", "push_plan." + species_[s].name},
             {"acc", part_res[s][static_cast<std::size_t>(t)]},
             [this, s, t, poll] {
               poll();
               Species& sp = species_[s];
               const TileSlot& slot = sp.tiles[static_cast<std::size_t>(t)];
               const TilePushPlan& plan = tile_push_plans_[s];
               if (plan.use_runs) {
                 advance_runs_serial(
                     sp, interp_, acc_, fields_.grid, cfg_.strategy, {},
                     sp.push_runs, plan.run_lo[static_cast<std::size_t>(t)],
                     plan.run_lo[static_cast<std::size_t>(t) + 1]);
               } else if (slot.count() > 0) {
                 advance_range_serial(sp, interp_, acc_, fields_.grid,
                                      cfg_.strategy, {}, slot.begin,
                                      slot.end);
               }
             },
             cost});
        chain(name);
      } else {
        g.add_phase(
            {name,
             {"interp"},
             {blk_res[s][static_cast<std::size_t>(t)],
              part_res[s][static_cast<std::size_t>(t)]},
             [this, s, t, runs_used, poll] {
               poll();
               Species& sp = species_[s];
               TileSlot& slot = sp.tiles[static_cast<std::size_t>(t)];
               TileAccumulator& blk = tile_acc_[s][static_cast<std::size_t>(t)];
               blk.clear();
               const index_t b = slot.begin, e = slot.end;
               if (b >= e) return;
               bool use_runs = false;
               switch (cfg_.push_path) {
                 case PushPath::Generic:
                   break;
                 case PushPath::RunAware:
                   use_runs = cfg_.strategy != VectorStrategy::AdHoc;
                   break;
                 case PushPath::AutoDetect:
                   // Per-tile dispatch off the tile's OWN sortedness: a
                   // churning tile goes generic without vetoing its
                   // quiet neighbors' run-aware path.
                   use_runs =
                       cfg_.strategy != VectorStrategy::AdHoc &&
                       run_aware_profitable_range(sp, b, e, slot.sorted_hint,
                                                  slot.steps_since_sort);
                   break;
               }
               prof::counter_add(use_runs ? "push.dispatch.run_aware"
                                          : "push.dispatch.generic");
               if (use_runs) {
                 (*runs_used)[s].store(1, std::memory_order_relaxed);
                 dispatch_layout(sp.p, [&](auto a) {
                   sort::segment_runs(
                       e - b, [a, b](index_t i) { return a.cell(b + i); },
                       slot.runs);
                 });
                 for (auto& r : slot.runs) r.begin += b;
                 advance_runs_serial(sp, interp_, blk, fields_.grid,
                                     cfg_.strategy, {}, slot.runs, 0,
                                     slot.runs.size());
               } else {
                 advance_range_serial(sp, interp_, blk, fields_.grid,
                                      cfg_.strategy, {}, b, e);
               }
             },
             cost});
        g.add_edge("interp_done", name);
      }
    }
  }

  if (stealing) {
    // Deterministic seam merge: blocks land in the global accumulator in
    // ascending (species, tile) order, window planes before overflow —
    // the same float-add grouping every run, whatever the schedule was.
    std::vector<std::string> rd{"acc"};
    for (std::size_t s = 0; s < ns; ++s)
      rd.insert(rd.end(), blk_res[s].begin(), blk_res[s].end());
    g.add_phase({"acc_merge",
                 std::move(rd),
                 {"acc"},
                 [this, runs_used, poll] {
                   poll();
                   for (std::size_t s = 0; s < species_.size(); ++s) {
                     for (auto& blk : tile_acc_[s]) blk.merge_into(acc_);
                     last_push_paths_[s] =
                         (*runs_used)[s].load(std::memory_order_relaxed)
                             ? PushPath::RunAware
                             : PushPath::Generic;
                   }
                 },
                 static_cast<double>(fields_.grid.nv()) * kVoxelCost});
    g.add_edge("acc_clear", "acc_merge");
    for (std::size_t s = 0; s < ns; ++s)
      for (int t = 0; t < nt; ++t)
        g.add_edge("push[" + species_[s].name + ".t" + std::to_string(t) +
                       "]",
                   "acc_merge");
  }

  g.add_phase({"accumulate",
               {"acc"},
               {"fields.j"},
               [this, poll] {
                 poll();
                 acc_.reduce_ghosts_periodic();
                 acc_.unload(fields_);
                 // Sortedness ages once per step, like the untiled
                 // advance_species — here, after every push task and
                 // before any sort phase resets the counters.
                 for (auto& sp : species_) {
                   sp.mark_order_degraded();
                   for (auto& slot : sp.tiles) slot.mark_order_degraded();
                 }
               },
               static_cast<double>(fields_.grid.nv()) * kVoxelCost});
  if (stealing) {
    g.add_edge(ns ? "acc_merge" : "acc_clear", "accumulate");
  } else {
    chain("accumulate");
  }

  g.add_phase({"field_advance",
               {"fields.j"},
               {"fields.eb"},
               [this, poll] {
                 poll();
                 fields_.advance_b_half();
                 fields_.update_ghosts_periodic();
                 fields_.advance_e();
                 fields_.update_ghosts_periodic();
                 fields_.advance_b_half();
                 fields_.update_ghosts_periodic();
               },
               static_cast<double>(fields_.grid.nv()) * 3 * kVoxelCost});
  if (stealing) {
    g.add_edge("accumulate", "field_advance");
    g.add_edge("interp_done", "field_advance");
  } else {
    chain("field_advance");
  }

  std::string tail = "field_advance";
  if (injection_hook_) {
    std::vector<std::string> wr = everything;
    g.add_phase({"injection",
                 {},
                 std::move(wr),
                 [this, poll] {
                   poll();
                   injection_hook_(*this);
                 },
                 0.0});
    if (stealing)
      g.add_edge(tail, "injection");
    else
      chain("injection");
    tail = "injection";
  }
  if (cfg_.energy_interval > 0 && next_step % cfg_.energy_interval == 0) {
    std::vector<std::string> rd{"fields.eb"};
    for (std::size_t s = 0; s < ns; ++s)
      rd.insert(rd.end(), part_res[s].begin(), part_res[s].end());
    g.add_phase({"diagnostics",
                 std::move(rd),
                 {"diag"},
                 [this, poll] {
                   poll();
                   const auto e = energies();
                   energy_history_.record(step_count_, e.field, e.species);
                 },
                 0.0});
    if (stealing)
      g.add_edge(tail, "diagnostics");
    else
      chain("diagnostics");
    tail = "diagnostics";
  }

  // -- tiled sort: bucket by tile, per-tile counting sorts, one swap ---
  std::vector<std::string> finish_names;
  if (cfg_.sort_interval > 0 && next_step % cfg_.sort_interval == 0) {
    for (std::size_t s = 0; s < ns; ++s) {
      const std::string bname = "sort_bucket[" + species_[s].name + "]";
      std::vector<std::string> wr = part_res[s];
      g.add_phase({bname,
                   {},
                   std::move(wr),
                   [this, s, poll] {
                     poll();
                     bucket_by_tile(species_[s], tile_map_);
                   },
                   static_cast<double>(species_[s].np) * kVoxelCost});
      if (stealing)
        g.add_edge(tail, bname);
      else
        chain(bname);
      for (int t = 0; t < nt; ++t) {
        const std::string name =
            "sort[" + species_[s].name + ".t" + std::to_string(t) + "]";
        g.add_phase({name,
                     {},
                     {part_res[s][static_cast<std::size_t>(t)]},
                     [this, s, t, poll] {
                       poll();
                       sort_tile(species_[s], tile_map_, t);
                     },
                     static_cast<double>(
                         species_[s].tiles[static_cast<std::size_t>(t)]
                             .count()) *
                         kVoxelCost});
        if (stealing)
          g.add_edge(bname, name);
        else
          chain(name);
      }
      const std::string fname = "sort_finish[" + species_[s].name + "]";
      std::vector<std::string> fwr = part_res[s];
      g.add_phase({fname,
                   {},
                   std::move(fwr),
                   [this, s, poll] {
                     poll();
                     finish_tile_sort(species_[s]);
                     prof::counter_add("tiles.sort");
                   },
                   0.0});
      if (stealing) {
        for (int t = 0; t < nt; ++t)
          g.add_edge("sort[" + species_[s].name + ".t" + std::to_string(t) +
                         "]",
                     fname);
      } else {
        chain(fname);
      }
      finish_names.push_back(fname);
    }
  }

  if (checkpoint_due(next_step)) {
    std::vector<std::string> rd = everything;
    g.add_phase({"ckpt",
                 std::move(rd),
                 {"ckpt"},
                 [this, poll] {
                   poll();
                   checkpoint_to_ring();
                 },
                 0.0});
    if (stealing) {
      g.add_edge(tail, "ckpt");
      for (const auto& fn : finish_names) g.add_edge(fn, "ckpt");
    } else {
      chain("ckpt");
    }
  }
  return g;
}

void Simulation::step_tiled() {
  prof::ScopedRegion step_region("step");
  ensure_tiles();
  last_push_paths_.resize(species_.size());
  tile_push_plans_.assign(species_.size(), {});
  StepGraph g = build_tiled_step_graph(step_count_ + 1);
  g.validate();
  ++step_count_;
  if (cfg_.tiles.exec == TileExec::Deterministic) {
    g.execute_serial();
    tile_stats_.steal = {};
  } else {
    tile_stats_.steal = g.execute_stealing(*steal_pool_);
  }
  last_phase_stats_ = g.last_stats();
  last_concurrency_peak_ = g.last_concurrency_peak();
  for (const PhaseStats& st : last_phase_stats_) {
    if (st.name.starts_with("push[")) {
      push_seconds_ += st.seconds;
    } else if (st.name.starts_with("sort")) {
      sort_seconds_ += st.seconds;
    }
  }
  // A hook that appended particles leaves them outside every tile range:
  // force a re-bucket before the next step.
  for (const auto& sp : species_)
    if (!sp.tiles.empty() && sp.tiles.back().end != sp.np)
      tiles_dirty_ = true;
  tile_stats_.tiles = tile_map_.count();
  tile_stats_.concurrency_peak = last_concurrency_peak_;
  double imb = 1.0;
  for (const auto& sp : species_) imb = std::max(imb, tile_imbalance(sp));
  tile_stats_.imbalance = imb;
  prof::counter_add("tiles.step");
  prof::counter_add("tiles.imbalance_x100",
                    static_cast<std::uint64_t>(imb * 100.0));
}

EnergyReport Simulation::energies() const {
  EnergyReport r;
  r.field = fields_.field_energy();
  for (const auto& sp : species_) r.species.push_back(sp.kinetic_energy());
  return r;
}

pk::View<double, 1> Simulation::charge_density() const {
  const Grid& g = fields_.grid;
  pk::View<double, 1> rho("rho", g.nv());
  const double inv_v = 1.0 / (static_cast<double>(g.dx) * g.dy * g.dz);
  for (const auto& sp : species_) {
    for (index_t n = 0; n < sp.np; ++n) {
      const Particle p = sp.p.get(n);
      int ix, iy, iz;
      g.cell_of(p.i, ix, iy, iz);
      // Trilinear node deposit (nodes = cell corners).
      const double wx1 = 0.5 * (1.0 + p.dx), wx0 = 1.0 - wx1;
      const double wy1 = 0.5 * (1.0 + p.dy), wy0 = 1.0 - wy1;
      const double wz1 = 0.5 * (1.0 + p.dz), wz0 = 1.0 - wz1;
      const double qw = static_cast<double>(sp.q) * p.w * inv_v;
      auto add = [&](int jx, int jy, int jz, double w) {
        // Wrap node indices periodically onto interior nodes 1..n.
        jx = jx > g.nx ? 1 : jx;
        jy = jy > g.ny ? 1 : jy;
        jz = jz > g.nz ? 1 : jz;
        rho(g.voxel(jx, jy, jz)) += qw * w;
      };
      add(ix, iy, iz, wx0 * wy0 * wz0);
      add(ix + 1, iy, iz, wx1 * wy0 * wz0);
      add(ix, iy + 1, iz, wx0 * wy1 * wz0);
      add(ix + 1, iy + 1, iz, wx1 * wy1 * wz0);
      add(ix, iy, iz + 1, wx0 * wy0 * wz1);
      add(ix + 1, iy, iz + 1, wx1 * wy0 * wz1);
      add(ix, iy + 1, iz + 1, wx0 * wy1 * wz1);
      add(ix + 1, iy + 1, iz + 1, wx1 * wy1 * wz1);
    }
  }
  return rho;
}

}  // namespace vpic::core
