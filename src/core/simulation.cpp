#include "core/simulation.hpp"

#include <stdexcept>

#include "core/rng.hpp"

namespace vpic::core {

void Simulation::load_uniform_plasma(std::size_t species_idx, int ppc,
                                     float uth, float udx, float udy,
                                     float udz) {
  Species& sp = species_[species_idx];
  const Grid& g = fields_.grid;
  const index_t want = g.interior_cells() * ppc;
  if (want > sp.capacity())
    throw std::length_error("load_uniform_plasma: species capacity " +
                            std::to_string(sp.capacity()) +
                            " < required " + std::to_string(want));

  const std::uint64_t seed = hash64(cfg_.seed + 0x5eed0000 + species_idx);
  index_t n = sp.np;
  for (int iz = 1; iz <= g.nz; ++iz)
    for (int iy = 1; iy <= g.ny; ++iy)
      for (int ix = 1; ix <= g.nx; ++ix) {
        const index_t v = g.voxel(ix, iy, iz);
        for (int k = 0; k < ppc; ++k) {
          Particle p;
          const std::uint64_t ctr = static_cast<std::uint64_t>(v) * 1000 +
                                    static_cast<std::uint64_t>(k);
          p.dx = static_cast<float>(2.0 * uniform01(seed, 6 * ctr + 0) - 1.0);
          p.dy = static_cast<float>(2.0 * uniform01(seed, 6 * ctr + 1) - 1.0);
          p.dz = static_cast<float>(2.0 * uniform01(seed, 6 * ctr + 2) - 1.0);
          p.i = static_cast<std::int32_t>(v);
          p.ux = udx + uth * static_cast<float>(normal(seed, 6 * ctr + 3));
          p.uy = udy + uth * static_cast<float>(normal(seed, 6 * ctr + 4));
          p.uz = udz + uth * static_cast<float>(normal(seed, 6 * ctr + 5));
          // Unit physical density regardless of ppc: with |q| = m = 1 this
          // puts the species plasma frequency at 1/dt-independent omega_p=1
          // (cell sizes are in units of c/omega_p).
          p.w = 1.0f / static_cast<float>(ppc);
          sp.p.set(n++, p);
        }
      }
  sp.np = n;
}

// ---- physics-module registry (docs/MODULES.md) -----------------------

PhysicsModule& Simulation::add_module(std::unique_ptr<PhysicsModule> m) {
  if (!m) throw std::invalid_argument("add_module: null module");
  for (const auto& e : modules_)
    if (e->id() == m->id())
      throw std::invalid_argument("add_module: duplicate module id '" +
                                  std::string(m->id()) + "'");
  // Keep ascending stage order, ties in registration order, so plan()
  // composes the step in the canonical stage sequence.
  auto pos = modules_.end();
  for (auto it = modules_.begin(); it != modules_.end(); ++it)
    if ((*it)->stage() > m->stage()) {
      pos = it;
      break;
    }
  PhysicsModule& ref = *m;
  modules_.insert(pos, std::move(m));
  ref.attach(*this);
  return ref;
}

PhysicsModule* Simulation::find_module(std::string_view id) {
  for (const auto& m : modules_)
    if (m->id() == id) return m.get();
  return nullptr;
}

// ---- step execution --------------------------------------------------

void Simulation::step() {
  if (cfg_.tiles.enabled) {
    step_tiled();
  } else {
    step_untiled();
  }
}

// Both untiled schedulers run the same registry-composed graph: the
// Sequential scheduler unrolls it on the calling thread in insertion
// order — which by construction (stage-ordered modules, spine
// composition) is the legacy serial sequence — and Graph runs it over the
// async instance pool. Bit-identical either way: every conflicting phase
// pair is path-ordered to match the serial order
// (tests/test_step_graph.cpp).
void Simulation::step_untiled() {
  prof::ScopedRegion step_region("step");
  StepGraph g = build_step_graph(step_count_ + 1);
  g.validate();
  // Phase bodies' interval seeds and record timestamps read step_count_
  // post-increment, exactly like the legacy tail.
  ++step_count_;
  const bool sequential = cfg_.scheduler == StepScheduler::Sequential;
  if (sequential) {
    g.execute_serial();
  } else {
    g.execute(cfg_.graph_instances);
  }
  for (const PhaseStats& st : g.last_stats()) {
    if (st.name.starts_with("push[")) {
      push_seconds_ += st.seconds;
    } else if (st.name.starts_with("sort[")) {
      sort_seconds_ += st.seconds;
    }
  }
  if (!sequential) {
    // The Sequential scheduler keeps the legacy contract of publishing no
    // per-phase stats (tests/test_step_graph.cpp).
    last_phase_stats_ = g.last_stats();
    last_concurrency_peak_ = g.last_concurrency_peak();
  }
}

StepGraph Simulation::build_step_graph(std::int64_t next_step) {
  StepGraph g;
  StepComposer c(g, /*serial_chain=*/false);
  ModuleStepContext ctx;
  ctx.next_step = next_step;
  for (const auto& m : modules_) m->plan(*this, ctx, c);
  return g;
}

// ---------------------------------------------------------------------
// Tiled step (docs/TILES.md): the domain is over-decomposed into z-slab
// tiles, each (phase x tile) pair is a StepGraph task with declared
// read/write sets, and the graph runs either serially in the reference
// order (Deterministic: bit-identical to the untiled Sequential step for
// Auto/Guided) or on the work-stealing pool (Stealing: tile-private
// accumulator blocks merged in fixed tile order keep results
// bit-deterministic run-to-run and across worker counts).
// ---------------------------------------------------------------------

void Simulation::ensure_tiles() {
  const bool stealing = cfg_.tiles.exec == TileExec::Stealing;
  const int workers = std::max(1, cfg_.tiles.workers);
  const int want =
      cfg_.tiles.count > 0
          ? std::clamp(cfg_.tiles.count, 1, fields_.grid.nz)
          : TileMap::auto_count(fields_.grid, workers);
  const bool pool_ok =
      !stealing || (steal_pool_ && steal_pool_->workers() == workers);
  const bool blocks_ok =
      !stealing || (tile_acc_.size() == species_.size() &&
                    (species_.empty() ||
                     static_cast<int>(tile_acc_.front().size()) == want));
  if (!tiles_dirty_ && tile_map_.count() == want && pool_ok && blocks_ok)
    return;

  if (cfg_.sort_order != sort::SortOrder::Standard)
    throw std::logic_error(
        "tiled step: the per-tile counting sort produces Standard "
        "(voxel-ascending) order; set SimulationConfig::sort_order = "
        "Standard");

  tile_map_ = TileMap(fields_.grid, want);
  for (auto& sp : species_) bucket_by_tile(sp, tile_map_);
  tile_acc_.clear();
  if (stealing) {
    tile_acc_.resize(species_.size());
    for (auto& per_sp : tile_acc_) {
      per_sp.reserve(static_cast<std::size_t>(want));
      for (int t = 0; t < want; ++t)
        per_sp.emplace_back(fields_.grid, tile_map_, t);
    }
    if (!steal_pool_ || steal_pool_->workers() != workers)
      steal_pool_ =
          std::make_unique<pk::StealPool>(workers, cfg_.tiles.steal_seed);
  }
  tiles_dirty_ = false;
}

StepGraph Simulation::build_tiled_step_graph(std::int64_t next_step) {
  StepGraph g;
  const bool stealing = cfg_.tiles.exec == TileExec::Stealing;
  // Deterministic mode is the serial reference order: the composer chains
  // every phase to its predecessor so insertion order IS the schedule
  // (and validate() passes trivially). Stealing mode composes the real
  // partial order from the modules' spine/branch/anchor declarations.
  StepComposer c(g, /*serial_chain=*/!stealing);
  ModuleStepContext ctx;
  ctx.next_step = next_step;
  ctx.tiled = true;
  ctx.stealing = stealing;
  ctx.tiles = &tile_map_;
  ctx.poll = [this] {
    if (phase_poll_) phase_poll_();
  };
  for (const auto& m : modules_) m->plan(*this, ctx, c);
  return g;
}

void Simulation::step_tiled() {
  prof::ScopedRegion step_region("step");
  ensure_tiles();
  last_push_paths_.resize(species_.size());
  tile_push_plans_.assign(species_.size(), {});
  StepGraph g = build_tiled_step_graph(step_count_ + 1);
  g.validate();
  ++step_count_;
  if (cfg_.tiles.exec == TileExec::Deterministic) {
    g.execute_serial();
    tile_stats_.steal = {};
  } else {
    tile_stats_.steal = g.execute_stealing(*steal_pool_);
    // Resolve how per-tile AutoDetect dispatch went (bit per species, set
    // by any tile that took the run-aware path).
    if (tiled_runs_used_ && tiled_runs_used_->size() == species_.size())
      for (std::size_t s = 0; s < species_.size(); ++s)
        last_push_paths_[s] =
            (*tiled_runs_used_)[s].load(std::memory_order_relaxed)
                ? PushPath::RunAware
                : PushPath::Generic;
  }
  last_phase_stats_ = g.last_stats();
  last_concurrency_peak_ = g.last_concurrency_peak();
  for (const PhaseStats& st : last_phase_stats_) {
    if (st.name.starts_with("push[")) {
      push_seconds_ += st.seconds;
    } else if (st.name.starts_with("sort")) {
      sort_seconds_ += st.seconds;
    }
  }
  // A hook that appended particles leaves them outside every tile range:
  // force a re-bucket before the next step.
  for (const auto& sp : species_)
    if (!sp.tiles.empty() && sp.tiles.back().end != sp.np)
      tiles_dirty_ = true;
  tile_stats_.tiles = tile_map_.count();
  tile_stats_.concurrency_peak = last_concurrency_peak_;
  double imb = 1.0;
  for (const auto& sp : species_) imb = std::max(imb, tile_imbalance(sp));
  tile_stats_.imbalance = imb;
  prof::counter_add("tiles.step");
  prof::counter_add("tiles.imbalance_x100",
                    static_cast<std::uint64_t>(imb * 100.0));
}

EnergyReport Simulation::energies() const {
  EnergyReport r;
  r.field = fields_.field_energy();
  for (const auto& sp : species_) r.species.push_back(sp.kinetic_energy());
  return r;
}

pk::View<double, 1> Simulation::charge_density() const {
  const Grid& g = fields_.grid;
  pk::View<double, 1> rho("rho", g.nv());
  const double inv_v = 1.0 / (static_cast<double>(g.dx) * g.dy * g.dz);
  for (const auto& sp : species_) {
    for (index_t n = 0; n < sp.np; ++n) {
      const Particle p = sp.p.get(n);
      int ix, iy, iz;
      g.cell_of(p.i, ix, iy, iz);
      // Trilinear node deposit (nodes = cell corners).
      const double wx1 = 0.5 * (1.0 + p.dx), wx0 = 1.0 - wx1;
      const double wy1 = 0.5 * (1.0 + p.dy), wy0 = 1.0 - wy1;
      const double wz1 = 0.5 * (1.0 + p.dz), wz0 = 1.0 - wz1;
      const double qw = static_cast<double>(sp.q) * p.w * inv_v;
      auto add = [&](int jx, int jy, int jz, double w) {
        // Wrap node indices periodically onto interior nodes 1..n.
        jx = jx > g.nx ? 1 : jx;
        jy = jy > g.ny ? 1 : jy;
        jz = jz > g.nz ? 1 : jz;
        rho(g.voxel(jx, jy, jz)) += qw * w;
      };
      add(ix, iy, iz, wx0 * wy0 * wz0);
      add(ix + 1, iy, iz, wx1 * wy0 * wz0);
      add(ix, iy + 1, iz, wx0 * wy1 * wz0);
      add(ix + 1, iy + 1, iz, wx1 * wy1 * wz0);
      add(ix, iy, iz + 1, wx0 * wy0 * wz1);
      add(ix + 1, iy, iz + 1, wx1 * wy0 * wz1);
      add(ix, iy + 1, iz + 1, wx0 * wy1 * wz1);
      add(ix + 1, iy + 1, iz + 1, wx1 * wy1 * wz1);
    }
  }
  return rho;
}

}  // namespace vpic::core
