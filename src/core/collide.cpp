// core/collide.cpp — Takizuka–Abe binary collisions (see collide.hpp).

#include "core/collide.hpp"

#include <cmath>
#include <map>

#include "core/rng.hpp"
#include "core/simulation.hpp"
#include "prof/prof.hpp"

namespace vpic::core {

namespace {

/// Scatter one pair: rotate the relative velocity g = ua - ub by a
/// Gaussian polar angle (variance nu0 dt (qa qb / m_ab)^2 / g^3) and a
/// uniform azimuth, then share the change with reduced-mass weights so
/// total momentum is conserved exactly. All math in doubles; stores
/// round once to float.
bool scatter_pair(Particle& pa, Particle& pb, double ma, double mb,
                  double qa, double qb, double nu0_dt, double u_floor,
                  double delta_n, double phi_u) {
  const double gx = static_cast<double>(pa.ux) - pb.ux;
  const double gy = static_cast<double>(pa.uy) - pb.uy;
  const double gz = static_cast<double>(pa.uz) - pb.uz;
  const double g2 = gx * gx + gy * gy + gz * gz;
  if (g2 <= 0) return false;  // identical momenta: no scattering axis
  const double g = std::sqrt(g2);
  const double m_ab = ma * mb / (ma + mb);
  const double g_eff = g > u_floor ? g : u_floor;
  const double var =
      nu0_dt * (qa * qa * qb * qb) / (m_ab * m_ab * g_eff * g_eff * g_eff);
  const double delta = delta_n * std::sqrt(var);
  const double d2 = delta * delta;
  const double sin_t = 2.0 * delta / (1.0 + d2);
  const double omc = 2.0 * d2 / (1.0 + d2);  // 1 - cos(theta)
  const double phi = 2.0 * 3.14159265358979323846 * phi_u;
  const double stc = sin_t * std::cos(phi);
  const double sts = sin_t * std::sin(phi);
  const double g_perp = std::sqrt(gx * gx + gy * gy);
  double dgx, dgy, dgz;
  if (g_perp > 1e-30 * g) {
    dgx = (gx / g_perp) * gz * stc - (gy / g_perp) * g * sts - gx * omc;
    dgy = (gy / g_perp) * gz * stc + (gx / g_perp) * g * sts - gy * omc;
    dgz = -g_perp * stc - gz * omc;
  } else {
    // g along z: any perpendicular frame works, pick x-y.
    dgx = g * stc;
    dgy = g * sts;
    dgz = -g * omc;
  }
  pa.ux = static_cast<float>(pa.ux + (m_ab / ma) * dgx);
  pa.uy = static_cast<float>(pa.uy + (m_ab / ma) * dgy);
  pa.uz = static_cast<float>(pa.uz + (m_ab / ma) * dgz);
  pb.ux = static_cast<float>(pb.ux - (m_ab / mb) * dgx);
  pb.uy = static_cast<float>(pb.uy - (m_ab / mb) * dgy);
  pb.uz = static_cast<float>(pb.uz - (m_ab / mb) * dgz);
  return true;
}

/// Deterministic Fisher–Yates off a counter-based stream.
void shuffle(std::vector<index_t>& v, std::uint64_t seed) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        uniform01(seed, i - 1) * static_cast<double>(i));
    std::swap(v[i - 1], v[j < i ? j : i - 1]);
  }
}

/// Voxel -> particle indices for an index range, scanning in index order
/// (layout-independent). std::map iterates in ascending voxel order, so
/// the cell visit order is deterministic too.
std::map<std::int32_t, std::vector<index_t>> cell_lists(const Species& sp,
                                                        index_t begin,
                                                        index_t end) {
  std::map<std::int32_t, std::vector<index_t>> cells;
  dispatch_layout(sp.p, [&](auto a) {
    for (index_t i = begin; i < end; ++i) cells[a.cell(i)].push_back(i);
  });
  return cells;
}

}  // namespace

CollisionStats collide_range(Species& sa, Species& sb, const Grid& g,
                             const CollisionParams& prm, index_t a_begin,
                             index_t a_end, index_t b_begin, index_t b_end,
                             std::uint64_t step, std::uint64_t pair_key,
                             const ModuleRng& rng) {
  CollisionStats st;
  const bool self = &sa == &sb;
  const double nu0_dt = prm.nu0 * static_cast<double>(g.dt);
  auto cells_a = cell_lists(sa, a_begin, a_end);
  auto cells_b =
      self ? std::map<std::int32_t, std::vector<index_t>>{}
           : cell_lists(sb, b_begin, b_end);

  dispatch_layout(sa.p, [&](auto aa) {
    dispatch_layout(sb.p, [&](auto ab) {
      for (auto& [voxel, la] : cells_a) {
        const std::uint64_t seed_cell =
            rng.stream(step, pair_key, static_cast<std::uint64_t>(voxel));
        const std::uint64_t seed_shuffle = hash64(seed_cell ^ 1);
        const std::uint64_t seed_theta = hash64(seed_cell ^ 2);
        const std::uint64_t seed_phi = hash64(seed_cell ^ 3);
        shuffle(la, seed_shuffle);
        std::size_t npair = 0;
        if (self) {
          npair = la.size() / 2;
          for (std::size_t k = 0; k < npair; ++k) {
            Particle pa = aa.load(la[2 * k]);
            Particle pb = aa.load(la[2 * k + 1]);
            if (scatter_pair(pa, pb, sa.m, sa.m, sa.q, sa.q, nu0_dt,
                             prm.u_floor, normal(seed_theta, k),
                             uniform01(seed_phi, k))) {
              aa.store(la[2 * k], pa);
              aa.store(la[2 * k + 1], pb);
              ++st.pairs;
            }
          }
        } else {
          const auto itb = cells_b.find(voxel);
          if (itb == cells_b.end()) continue;
          auto& lb = itb->second;
          shuffle(lb, hash64(seed_cell ^ 4));
          npair = la.size() < lb.size() ? la.size() : lb.size();
          for (std::size_t k = 0; k < npair; ++k) {
            Particle pa = aa.load(la[k]);
            Particle pb = ab.load(lb[k]);
            if (scatter_pair(pa, pb, sa.m, sb.m, sa.q, sb.q, nu0_dt,
                             prm.u_floor, normal(seed_theta, k),
                             uniform01(seed_phi, k))) {
              aa.store(la[k], pa);
              ab.store(lb[k], pb);
              ++st.pairs;
            }
          }
        }
        if (npair) ++st.cells;
      }
    });
  });
  return st;
}

void CollisionModule::attach(Simulation& sim) {
  rng_ = sim.module_rng(id());
}

void CollisionModule::plan(Simulation& sim, const ModuleStepContext& ctx,
                           StepComposer& c) {
  if (prm_.interval <= 0 || ctx.next_step % prm_.interval != 0) return;
  std::vector<std::pair<std::size_t, std::size_t>> pairs = prm_.pairs;
  if (pairs.empty())
    for (std::size_t a = 0; a < sim.num_species(); ++a)
      for (std::size_t b = a; b < sim.num_species(); ++b)
        pairs.emplace_back(a, b);

  const auto phase_body = [this, &sim](std::size_t a, std::size_t b, int t,
                                       std::int64_t next_step) {
    Species& sa = sim.species(a);
    Species& sb = sim.species(b);
    index_t ab = 0, ae = sa.np, bb = 0, be = sb.np;
    if (t >= 0) {
      const auto& slot_a = sa.tiles[static_cast<std::size_t>(t)];
      ab = slot_a.begin;
      ae = slot_a.end;
      const auto& slot_b = sb.tiles[static_cast<std::size_t>(t)];
      bb = slot_b.begin;
      be = slot_b.end;
    }
    const std::uint64_t pair_key = a * 1024 + b;
    const CollisionStats st = collide_range(
        sa, sb, sim.grid(), prm_, ab, ae, bb, be,
        static_cast<std::uint64_t>(next_step), pair_key, rng_);
    pairs_.fetch_add(st.pairs, std::memory_order_relaxed);
    cells_.fetch_add(st.cells, std::memory_order_relaxed);
    prof::counter_add("collide.pairs", st.pairs);
  };

  auto part_res = [&sim](std::size_t s, int t) {
    std::string r = "particles." + sim.species(s).name;
    if (t >= 0) r += ".t" + std::to_string(t);
    return r;
  };
  auto pair_name = [&sim](std::size_t a, std::size_t b, int t) {
    std::string n =
        "collide[" + sim.species(a).name + ":" + sim.species(b).name;
    if (t >= 0) n += ".t" + std::to_string(t);
    return n + "]";
  };

  if (!ctx.tiled) {
    for (const auto& [a, b] : pairs) {
      std::vector<std::string> wr{part_res(a, -1)};
      if (b != a) wr.push_back(part_res(b, -1));
      c.add_spine({pair_name(a, b, -1),
                   {},
                   std::move(wr),
                   [phase_body, a = a, b = b, ns = ctx.next_step] {
                     phase_body(a, b, -1, ns);
                   }});
    }
  } else {
    // One task per (pair, tile). Tiles are independent (their particle
    // index ranges are disjoint and cell streams are voxel-keyed);
    // same-tile tasks of pairs sharing a species are chained in pair
    // order. Each pair's population scales the LPT cost hint.
    const int nt = ctx.tiles->count();
    const auto poll = ctx.poll;
    for (int t = 0; t < nt; ++t) {
      std::vector<std::string> planned;  // same-tile pair phases, in order
      for (std::size_t pi = 0; pi < pairs.size(); ++pi) {
        const auto [a, b] = pairs[pi];
        const std::string name = pair_name(a, b, t);
        std::vector<std::string> wr{part_res(a, t)};
        if (b != a) wr.push_back(part_res(b, t));
        const double cost =
            static_cast<double>(
                sim.species(a).tiles[static_cast<std::size_t>(t)].count() +
                sim.species(b).tiles[static_cast<std::size_t>(t)].count()) *
            2e-8;
        c.add_branch({name,
                      {},
                      std::move(wr),
                      [phase_body, poll, a = a, b = b, t,
                       ns = ctx.next_step] {
                        poll();
                        phase_body(a, b, t, ns);
                      },
                      cost});
        for (std::size_t pj = 0; pj < pi; ++pj)
          if (pairs[pj].first == a || pairs[pj].second == a ||
              pairs[pj].first == b || pairs[pj].second == b)
            c.edge(planned[pj], name);
        planned.push_back(name);
        // Every pair phase joins (join dedups): later spine phases
        // (diagnostics, ckpt) then order after all of them, not only the
        // ones the last pair happens to chain from.
        c.join(name);
      }
    }
  }
  steps_.fetch_add(1, std::memory_order_relaxed);
}

void CollisionModule::save_state(ModuleStateWriter& w) const {
  w.add_pod("steps", steps_.load(std::memory_order_relaxed));
  w.add_pod("pairs", pairs_.load(std::memory_order_relaxed));
  w.add_pod("cells", cells_.load(std::memory_order_relaxed));
}

void CollisionModule::load_state(ModuleStateReader& r,
                                 std::uint32_t /*version*/) {
  steps_.store(r.pod<std::uint64_t>("steps"), std::memory_order_relaxed);
  pairs_.store(r.pod<std::uint64_t>("pairs"), std::memory_order_relaxed);
  cells_.store(r.pod<std::uint64_t>("cells"), std::memory_order_relaxed);
}

void CollisionModule::clear_state() {
  steps_.store(0, std::memory_order_relaxed);
  pairs_.store(0, std::memory_order_relaxed);
  cells_.store(0, std::memory_order_relaxed);
}

}  // namespace vpic::core
