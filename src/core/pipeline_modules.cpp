// core/pipeline_modules.cpp
//
// The built-in step pipeline, expressed as registered PhysicsModules
// (docs/MODULES.md): interpolate, push, accumulate, field advance,
// injection, diagnostics, sort, checkpoint. Simulation::build_step_graph
// and build_tiled_step_graph are generic composition over these — one
// source of truth for the Sequential, Graph, and tiled
// Deterministic/Stealing execution shapes, with phase names, bodies,
// resource sets, and edges preserved exactly from the pre-registry
// builders so the composed step is bit-identical to the legacy one
// (tests/test_step_graph.cpp, tests/test_tiles.cpp).

#include "core/simulation.hpp"

namespace vpic::core {

/// Private-state bridge for the built-in pipeline (befriended by
/// Simulation). External modules do not get this: they compose through
/// the public Simulation API.
struct PipelineAccess {
  static SimulationConfig& cfg(Simulation& s) { return s.cfg_; }
  static FieldArray& fields(Simulation& s) { return s.fields_; }
  static InterpolatorArray& interp(Simulation& s) { return s.interp_; }
  static AccumulatorArray& acc(Simulation& s) { return s.acc_; }
  static std::vector<Species>& species(Simulation& s) { return s.species_; }
  static std::vector<PushPath>& last_push_paths(Simulation& s) {
    return s.last_push_paths_;
  }
  static std::function<void(Simulation&)>& injection_hook(Simulation& s) {
    return s.injection_hook_;
  }
  static EnergyHistory& history(Simulation& s) { return s.energy_history_; }
  static std::int64_t step_count(Simulation& s) { return s.step_count_; }
  static TileMap& tile_map(Simulation& s) { return s.tile_map_; }
  static std::vector<std::vector<TileAccumulator>>& tile_acc(Simulation& s) {
    return s.tile_acc_;
  }
  static std::vector<Simulation::TilePushPlan>& tile_push_plans(
      Simulation& s) {
    return s.tile_push_plans_;
  }
  static std::shared_ptr<std::vector<std::atomic<std::uint32_t>>>&
  tiled_runs_used(Simulation& s) {
    return s.tiled_runs_used_;
  }
  static bool checkpoint_due(Simulation& s, std::int64_t at_step) {
    return s.checkpoint_due(at_step);
  }
  static void checkpoint_to_ring(Simulation& s) { s.checkpoint_to_ring(); }
};

namespace {

using A = PipelineAccess;

// Cost model of the tiled (phase x tile) tasks: tune-probed generic-push
// seconds/particle (fallback to a nominal value when unprobed) scales tile
// population into expected task cost; field/interp work scales with
// voxels. Only relative magnitudes matter — LPT placement ranks tasks, it
// doesn't time them.
constexpr double kVoxelCost = 1e-9;

std::string tile_suffix(int t) { return ".t" + std::to_string(t); }

std::string part_res(const Species& sp) { return "particles." + sp.name; }
std::string part_res(const Species& sp, int t) {
  return "particles." + sp.name + tile_suffix(t);
}
std::string blk_res(const Species& sp, int t) {
  return "acc." + sp.name + tile_suffix(t);
}
std::string push_name(const Species& sp) { return "push[" + sp.name + "]"; }
std::string push_name(const Species& sp, int t) {
  return "push[" + sp.name + tile_suffix(t) + "]";
}

// ---------------------------------------------------------------------
// Gather: interpolator load (per tile when tiled) + accumulator clear.
// Publishes the "interp_ready" / "acc_ready" anchors later stages order
// against.
// ---------------------------------------------------------------------
class GatherModule final : public PhysicsModule {
 public:
  [[nodiscard]] std::string_view id() const override { return "interpolate"; }
  [[nodiscard]] StepStage stage() const override { return StepStage::Gather; }

  void plan(Simulation& sim, const ModuleStepContext& ctx,
            StepComposer& c) override {
    if (!ctx.tiled) {
      c.add({"interpolate",
             {"fields.eb"},
             {"interp"},
             [&sim] { A::interp(sim).load(A::fields(sim)); }});
      c.add({"acc_clear", {}, {"acc"}, [&sim] { A::acc(sim).clear(); }});
      c.set_anchor("interp_ready", "interpolate");
      c.set_anchor("acc_ready", "acc_clear");
      return;
    }
    const TileMap& tm = *ctx.tiles;
    const int nt = tm.count();
    const auto poll = ctx.poll;
    for (int t = 0; t < nt; ++t) {
      const std::string name = "interp[t" + std::to_string(t) + "]";
      const int z0 = tm.z_lo(t), z1 = tm.z_hi(t);
      c.add({name,
             {"fields.eb"},
             {"interp" + tile_suffix(t)},
             [&sim, z0, z1, poll] {
               poll();
               A::interp(sim).load_planes(A::fields(sim), z0, z1);
             },
             static_cast<double>(z1 - z0 + 1) *
                 static_cast<double>(tm.plane_voxels()) * kVoxelCost});
    }
    if (ctx.stealing) {
      // Fan-in barrier: a tile's particles may have drifted arbitrarily
      // far since the last bucketing, so every push conservatively reads
      // the whole interpolator (declared as the "interp" resource).
      std::vector<std::string> rd;
      rd.reserve(static_cast<std::size_t>(nt));
      for (int t = 0; t < nt; ++t) rd.push_back("interp" + tile_suffix(t));
      c.add({"interp_done", std::move(rd), {"interp"}, [poll] { poll(); },
             0.0});
      for (int t = 0; t < nt; ++t)
        c.edge("interp[t" + std::to_string(t) + "]", "interp_done");
      c.set_anchor("interp_ready", "interp_done");
    }
    c.add({"acc_clear",
           {},
           {"acc"},
           [&sim, poll] {
             poll();
             A::acc(sim).clear();
           },
           static_cast<double>(A::fields(sim).grid.nv()) * kVoxelCost});
    c.set_anchor("acc_ready", "acc_clear");
  }
};

// ---------------------------------------------------------------------
// Push: per-species particle advance. Untiled: chained per-species phases
// (they share the accumulator and float atomics are not associative).
// Tiled Deterministic: a global dispatch/run-partition plan phase per
// species, then per-tile serial pushes into the global accumulator —
// concatenation reproduces the untiled kernels bit for bit. Tiled
// Stealing: per-tile dispatch off the tile's own sortedness, deposits
// into tile-private blocks.
// ---------------------------------------------------------------------
class PushModule final : public PhysicsModule {
 public:
  [[nodiscard]] std::string_view id() const override { return "push"; }
  [[nodiscard]] StepStage stage() const override { return StepStage::Push; }

  void plan(Simulation& sim, const ModuleStepContext& ctx,
            StepComposer& c) override {
    auto& species = A::species(sim);
    const std::size_t ns = species.size();
    A::last_push_paths(sim).resize(ns);
    if (!ctx.tiled) {
      std::string prev;
      for (std::size_t s = 0; s < ns; ++s) {
        const std::string name = push_name(species[s]);
        c.add({name,
               {"interp"},
               {"acc", part_res(species[s])},
               [&sim, s] {
                 auto& cfg = A::cfg(sim);
                 A::last_push_paths(sim)[s] = advance_species(
                     A::species(sim)[s], A::interp(sim), A::acc(sim),
                     A::fields(sim).grid, cfg.strategy, {}, cfg.push_path);
               }});
        if (s == 0) {
          c.edge(c.anchor("interp_ready"), name);
          c.edge(c.anchor("acc_ready"), name);
        } else {
          c.edge(prev, name);
        }
        prev = name;
      }
      c.set_tail(ns ? prev : c.anchor("acc_ready"));
      return;
    }

    const TileMap& tm = *ctx.tiles;
    const int nt = tm.count();
    const auto poll = ctx.poll;
    std::vector<double> push_pp(ns);
    for (std::size_t s = 0; s < ns; ++s) {
      push_pp[s] = tune::push_cost_per_particle(species[s].layout());
      if (push_pp[s] <= 0) push_pp[s] = 5e-9;
    }
    std::shared_ptr<std::vector<std::atomic<std::uint32_t>>> runs_used;
    if (ctx.stealing) {
      runs_used = std::make_shared<std::vector<std::atomic<std::uint32_t>>>(
          ns);
      A::tiled_runs_used(sim) = runs_used;
    }
    for (std::size_t s = 0; s < ns; ++s) {
      if (!ctx.stealing) {
        // Global dispatch decision + global run segmentation, partitioned
        // by tile index range: concatenating the per-tile serial pushes
        // reproduces the untiled kernels' iteration order and flush
        // grouping exactly (docs/TILES.md, "Determinism").
        const std::string plan_name = "push_plan[" + species[s].name + "]";
        std::vector<std::string> rd;
        rd.reserve(static_cast<std::size_t>(nt));
        for (int t = 0; t < nt; ++t) rd.push_back(part_res(species[s], t));
        c.add({plan_name,
               std::move(rd),
               {"push_plan." + species[s].name},
               [&sim, s, poll] {
                 poll();
                 auto& cfg = A::cfg(sim);
                 Species& sp = A::species(sim)[s];
                 auto& plan = A::tile_push_plans(sim)[s];
                 bool use_runs = false;
                 switch (cfg.push_path) {
                   case PushPath::Generic:
                     break;
                   case PushPath::RunAware:
                     use_runs = cfg.strategy != VectorStrategy::AdHoc;
                     break;
                   case PushPath::AutoDetect:
                     use_runs = cfg.strategy != VectorStrategy::AdHoc &&
                                run_aware_profitable(sp);
                     break;
                 }
                 plan.use_runs = use_runs;
                 A::last_push_paths(sim)[s] =
                     use_runs ? PushPath::RunAware : PushPath::Generic;
                 prof::counter_add(use_runs ? "push.dispatch.run_aware"
                                            : "push.dispatch.generic");
                 const int ntt = A::tile_map(sim).count();
                 plan.run_lo.assign(static_cast<std::size_t>(ntt) + 1, 0);
                 if (!use_runs) return;
                 dispatch_layout(sp.p, [&](auto a) {
                   sort::segment_runs(
                       sp.np, [a](index_t i) { return a.cell(i); },
                       sp.push_runs);
                 });
                 std::size_t r = 0;
                 for (int t = 0; t < ntt; ++t) {
                   plan.run_lo[static_cast<std::size_t>(t)] = r;
                   const index_t end =
                       sp.tiles[static_cast<std::size_t>(t)].end;
                   while (r < sp.push_runs.size() &&
                          sp.push_runs[r].begin < end)
                     ++r;
                 }
                 plan.run_lo[static_cast<std::size_t>(ntt)] =
                     sp.push_runs.size();
               },
               0.0});
      }
      for (int t = 0; t < nt; ++t) {
        const std::string name = push_name(species[s], t);
        const double cost =
            static_cast<double>(
                species[s].tiles[static_cast<std::size_t>(t)].count()) *
            push_pp[s];
        if (!ctx.stealing) {
          c.add({name,
                 {"interp", "push_plan." + species[s].name},
                 {"acc", part_res(species[s], t)},
                 [&sim, s, t, poll] {
                   poll();
                   auto& cfg = A::cfg(sim);
                   Species& sp = A::species(sim)[s];
                   const TileSlot& slot =
                       sp.tiles[static_cast<std::size_t>(t)];
                   const auto& plan = A::tile_push_plans(sim)[s];
                   if (plan.use_runs) {
                     advance_runs_serial(
                         sp, A::interp(sim), A::acc(sim),
                         A::fields(sim).grid, cfg.strategy, {}, sp.push_runs,
                         plan.run_lo[static_cast<std::size_t>(t)],
                         plan.run_lo[static_cast<std::size_t>(t) + 1]);
                   } else if (slot.count() > 0) {
                     advance_range_serial(sp, A::interp(sim), A::acc(sim),
                                          A::fields(sim).grid, cfg.strategy,
                                          {}, slot.begin, slot.end);
                   }
                 },
                 cost});
        } else {
          c.add({name,
                 {"interp"},
                 {blk_res(species[s], t), part_res(species[s], t)},
                 [&sim, s, t, runs_used, poll] {
                   poll();
                   auto& cfg = A::cfg(sim);
                   Species& sp = A::species(sim)[s];
                   TileSlot& slot = sp.tiles[static_cast<std::size_t>(t)];
                   TileAccumulator& blk =
                       A::tile_acc(sim)[s][static_cast<std::size_t>(t)];
                   blk.clear();
                   const index_t b = slot.begin, e = slot.end;
                   if (b >= e) return;
                   bool use_runs = false;
                   switch (cfg.push_path) {
                     case PushPath::Generic:
                       break;
                     case PushPath::RunAware:
                       use_runs = cfg.strategy != VectorStrategy::AdHoc;
                       break;
                     case PushPath::AutoDetect:
                       // Per-tile dispatch off the tile's OWN sortedness:
                       // a churning tile goes generic without vetoing its
                       // quiet neighbors' run-aware path.
                       use_runs = cfg.strategy != VectorStrategy::AdHoc &&
                                  run_aware_profitable_range(
                                      sp, b, e, slot.sorted_hint,
                                      slot.steps_since_sort);
                       break;
                   }
                   prof::counter_add(use_runs ? "push.dispatch.run_aware"
                                              : "push.dispatch.generic");
                   if (use_runs) {
                     (*runs_used)[s].store(1, std::memory_order_relaxed);
                     dispatch_layout(sp.p, [&](auto a) {
                       sort::segment_runs(
                           e - b,
                           [a, b](index_t i) { return a.cell(b + i); },
                           slot.runs);
                     });
                     for (auto& r : slot.runs) r.begin += b;
                     advance_runs_serial(sp, A::interp(sim), blk,
                                         A::fields(sim).grid, cfg.strategy,
                                         {}, slot.runs, 0, slot.runs.size());
                   } else {
                     advance_range_serial(sp, A::interp(sim), blk,
                                          A::fields(sim).grid, cfg.strategy,
                                          {}, b, e);
                   }
                 },
                 cost});
          c.edge(c.anchor("interp_ready"), name);
        }
      }
    }
  }
};

// ---------------------------------------------------------------------
// Deposit: (stealing: fixed-order merge of the tile-private blocks, then)
// ghost reduction + accumulator unload into J. The tiled body also ages
// every species' sortedness once per step, like the untiled
// advance_species does internally.
// ---------------------------------------------------------------------
class AccumulateModule final : public PhysicsModule {
 public:
  [[nodiscard]] std::string_view id() const override { return "accumulate"; }
  [[nodiscard]] StepStage stage() const override {
    return StepStage::Deposit;
  }

  void plan(Simulation& sim, const ModuleStepContext& ctx,
            StepComposer& c) override {
    if (!ctx.tiled) {
      c.add_spine({"accumulate",
                   {"acc"},
                   {"fields.j"},
                   [&sim] {
                     A::acc(sim).reduce_ghosts_periodic();
                     A::acc(sim).unload(A::fields(sim));
                   }});
      return;
    }
    auto& species = A::species(sim);
    const std::size_t ns = species.size();
    const int nt = ctx.tiles->count();
    const auto poll = ctx.poll;
    const double nv_cost =
        static_cast<double>(A::fields(sim).grid.nv()) * kVoxelCost;
    if (ctx.stealing && ns > 0) {
      // Deterministic seam merge: blocks land in the global accumulator
      // in ascending (species, tile) order, window planes before overflow
      // — the same float-add grouping every run, whatever the schedule.
      std::vector<std::string> rd{"acc"};
      for (std::size_t s = 0; s < ns; ++s)
        for (int t = 0; t < nt; ++t) rd.push_back(blk_res(species[s], t));
      c.add({"acc_merge",
             std::move(rd),
             {"acc"},
             [&sim, poll] {
               poll();
               for (auto& per_sp : A::tile_acc(sim))
                 for (auto& blk : per_sp) blk.merge_into(A::acc(sim));
             },
             nv_cost});
      c.edge(c.anchor("acc_ready"), "acc_merge");
      for (std::size_t s = 0; s < ns; ++s)
        for (int t = 0; t < nt; ++t)
          c.edge(push_name(species[s], t), "acc_merge");
      c.set_tail("acc_merge");
    } else if (ctx.stealing) {
      c.set_tail(c.anchor("acc_ready"));
    }
    c.add_spine({"accumulate",
                 {"acc"},
                 {"fields.j"},
                 [&sim, poll] {
                   poll();
                   A::acc(sim).reduce_ghosts_periodic();
                   A::acc(sim).unload(A::fields(sim));
                   // Sortedness ages once per step, like the untiled
                   // advance_species — here, after every push task and
                   // before any sort phase resets the counters.
                   for (auto& sp : A::species(sim)) {
                     sp.mark_order_degraded();
                     for (auto& slot : sp.tiles) slot.mark_order_degraded();
                   }
                 },
                 nv_cost});
  }
};

// ---------------------------------------------------------------------
// Field: B/2, E, B/2 with ghost updates between.
// ---------------------------------------------------------------------
class FieldModule final : public PhysicsModule {
 public:
  [[nodiscard]] std::string_view id() const override { return "field"; }
  [[nodiscard]] StepStage stage() const override { return StepStage::Field; }

  void plan(Simulation& sim, const ModuleStepContext& ctx,
            StepComposer& c) override {
    const auto poll = ctx.poll;
    const double cost =
        ctx.tiled
            ? static_cast<double>(A::fields(sim).grid.nv()) * 3 * kVoxelCost
            : 1.0;
    c.add_spine({"field_advance",
                 {"fields.j"},
                 {"fields.eb"},
                 [&sim, poll] {
                   if (poll) poll();
                   FieldArray& f = A::fields(sim);
                   f.advance_b_half();
                   f.update_ghosts_periodic();
                   f.advance_e();
                   f.update_ghosts_periodic();
                   f.advance_b_half();
                   f.update_ghosts_periodic();
                 },
                 cost});
    // Orders the fields.eb read-write conflict against the interpolator
    // load directly; with species the push chain already implies it,
    // without species it is load-bearing.
    c.edge(c.anchor("interp_ready"), "field_advance");
  }
};

// ---------------------------------------------------------------------
// Injection: the deck's per-step hook. It gets the whole Simulation&, so
// it conservatively writes every resource declared so far.
// ---------------------------------------------------------------------
class InjectionModule final : public PhysicsModule {
 public:
  [[nodiscard]] std::string_view id() const override { return "injection"; }
  [[nodiscard]] StepStage stage() const override { return StepStage::Inject; }

  void plan(Simulation& sim, const ModuleStepContext& ctx,
            StepComposer& c) override {
    if (!A::injection_hook(sim)) return;
    const auto poll = ctx.poll;
    c.add_spine({"injection",
                 {},
                 c.all_resources(),
                 [&sim, poll] {
                   if (poll) poll();
                   A::injection_hook(sim)(sim);
                 },
                 ctx.tiled ? 0.0 : 1.0});
  }
};

// ---------------------------------------------------------------------
// Diagnostics: energy history sampling on the configured interval.
// ---------------------------------------------------------------------
class DiagnosticsModule final : public PhysicsModule {
 public:
  [[nodiscard]] std::string_view id() const override { return "diagnostics"; }
  [[nodiscard]] StepStage stage() const override {
    return StepStage::Diagnose;
  }

  void plan(Simulation& sim, const ModuleStepContext& ctx,
            StepComposer& c) override {
    const auto& cfg = A::cfg(sim);
    if (cfg.energy_interval <= 0 ||
        ctx.next_step % cfg.energy_interval != 0)
      return;
    auto& species = A::species(sim);
    std::vector<std::string> rd{"fields.eb"};
    for (const auto& sp : species) {
      if (!ctx.tiled) {
        rd.push_back(part_res(sp));
      } else {
        for (int t = 0; t < ctx.tiles->count(); ++t)
          rd.push_back(part_res(sp, t));
      }
    }
    const auto poll = ctx.poll;
    c.add_spine({"diagnostics",
                 std::move(rd),
                 {"diag"},
                 [&sim, poll] {
                   if (poll) poll();
                   const auto e = sim.energies();
                   A::history(sim).record(A::step_count(sim), e.field,
                                          e.species);
                 },
                 ctx.tiled ? 0.0 : 1.0});
  }
};

// ---------------------------------------------------------------------
// Sort: per-species re-sorts on the configured interval. Untiled: one
// phase per species, mutually unordered. Tiled: bucket-by-tile, per-tile
// counting sorts, one finishing swap per species.
// ---------------------------------------------------------------------
class SortModule final : public PhysicsModule {
 public:
  [[nodiscard]] std::string_view id() const override { return "sort"; }
  [[nodiscard]] StepStage stage() const override { return StepStage::Sort; }

  void plan(Simulation& sim, const ModuleStepContext& ctx,
            StepComposer& c) override {
    const auto& cfg = A::cfg(sim);
    if (cfg.sort_interval <= 0 || ctx.next_step % cfg.sort_interval != 0)
      return;
    auto& species = A::species(sim);
    if (!ctx.tiled) {
      std::uint32_t tile = cfg.sort_tile;
      if (tile == 0)
        tile =
            static_cast<std::uint32_t>(pk::DefaultExecSpace::concurrency());
      // Each sort touches only its own species: the phases are mutually
      // unordered and run concurrently on separate instances.
      for (std::size_t s = 0; s < species.size(); ++s) {
        const std::string name = "sort[" + species[s].name + "]";
        c.add_branch({name,
                      {},
                      {part_res(species[s])},
                      [&sim, s, tile] {
                        const auto& cfg2 = A::cfg(sim);
                        sort_particles(
                            A::species(sim)[s], cfg2.sort_order, tile,
                            cfg2.seed + static_cast<std::uint64_t>(
                                            A::step_count(sim)),
                            A::fields(sim).grid.nv());
                      }});
        c.join(name);
      }
      return;
    }
    const int nt = ctx.tiles->count();
    const auto poll = ctx.poll;
    for (std::size_t s = 0; s < species.size(); ++s) {
      const std::string bname = "sort_bucket[" + species[s].name + "]";
      std::vector<std::string> wr;
      wr.reserve(static_cast<std::size_t>(nt));
      for (int t = 0; t < nt; ++t) wr.push_back(part_res(species[s], t));
      c.add_branch({bname,
                    {},
                    std::move(wr),
                    [&sim, s, poll] {
                      poll();
                      bucket_by_tile(A::species(sim)[s], A::tile_map(sim));
                    },
                    static_cast<double>(species[s].np) * kVoxelCost});
      for (int t = 0; t < nt; ++t) {
        const std::string name =
            "sort[" + species[s].name + tile_suffix(t) + "]";
        c.add({name,
               {},
               {part_res(species[s], t)},
               [&sim, s, t, poll] {
                 poll();
                 sort_tile(A::species(sim)[s], A::tile_map(sim), t);
               },
               static_cast<double>(
                   species[s].tiles[static_cast<std::size_t>(t)].count()) *
                   kVoxelCost});
        c.edge(bname, name);
      }
      const std::string fname = "sort_finish[" + species[s].name + "]";
      std::vector<std::string> fwr;
      fwr.reserve(static_cast<std::size_t>(nt));
      for (int t = 0; t < nt; ++t) fwr.push_back(part_res(species[s], t));
      c.add({fname,
             {},
             std::move(fwr),
             [&sim, s, poll] {
               poll();
               finish_tile_sort(A::species(sim)[s]);
               prof::counter_add("tiles.sort");
             },
             0.0});
      for (int t = 0; t < nt; ++t)
        c.edge("sort[" + species[s].name + tile_suffix(t) + "]", fname);
      c.join(fname);
    }
  }
};

// ---------------------------------------------------------------------
// Checkpoint: periodic ring snapshot. Reads every resource declared this
// step so validate() proves the capture cannot race anything in flight;
// the joins (sorts, collide) order the particle-resource conflicts to
// match the sequential tail, which checkpoints last.
// ---------------------------------------------------------------------
class CheckpointModule final : public PhysicsModule {
 public:
  [[nodiscard]] std::string_view id() const override { return "ckpt"; }
  [[nodiscard]] StepStage stage() const override {
    return StepStage::Checkpoint;
  }

  void plan(Simulation& sim, const ModuleStepContext& ctx,
            StepComposer& c) override {
    if (!A::checkpoint_due(sim, ctx.next_step)) return;
    const auto poll = ctx.poll;
    c.add_spine({"ckpt",
                 c.all_resources(),
                 {"ckpt"},
                 [&sim, poll] {
                   if (poll) poll();
                   A::checkpoint_to_ring(sim);
                 },
                 ctx.tiled ? 0.0 : 1.0});
  }
};

}  // namespace

void register_core_pipeline(Simulation& sim) {
  sim.add_module<GatherModule>();
  sim.add_module<PushModule>();
  sim.add_module<AccumulateModule>();
  sim.add_module<FieldModule>();
  sim.add_module<InjectionModule>();
  sim.add_module<DiagnosticsModule>();
  sim.add_module<SortModule>();
  sim.add_module<CheckpointModule>();
}

}  // namespace vpic::core
