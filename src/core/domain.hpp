// core/domain.hpp
//
// Distributed (multi-rank) PIC driver: z-slab domain decomposition over
// the minimpi substrate, exercising the communication pattern the paper
// relies on for scalability (Section 2.1: "Most MPI communication in VPIC
// is non-blocking point-to-point ... allowing it to scale efficiently"):
//
//   per step: exchange E/B z-halos with both neighbors (nonblocking)
//             load interpolator, clear accumulators
//             advance particles; exiting particles (crossing a slab face
//               mid-move) are shipped with their unfinished displacement
//               and complete their move — and current deposit — on the
//               neighbor, iterating until no rank holds an exit
//             exchange accumulator boundary planes, unload J
//             FDTD advance with halo refresh after each sub-step
//
// Initialization is keyed by *global* cell ids, so an N-rank run loads
// exactly the same global particle set as a 1-rank run — the integration
// tests compare the two for physical equivalence.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/accumulator.hpp"
#include "core/field.hpp"
#include "core/interpolator.hpp"
#include "core/particle.hpp"
#include "core/push.hpp"
#include "minimpi/minimpi.hpp"

namespace vpic::core {

struct DomainConfig {
  int nx = 8, ny = 8, nz = 8;        // GLOBAL interior cells
  float lx = 8, ly = 8, lz = 8;      // global physical extents
  float dt = 0;                      // 0: Courant-limited default
  VectorStrategy strategy = VectorStrategy::Auto;
  std::uint64_t seed = 42;
  // Particle layout for every species (core/particle_store.hpp,
  // docs/LAYOUT.md). Excluded from config_fingerprint(): it changes
  // memory placement, not physics.
  ParticleLayout layout = ParticleLayout::AoS;
  // Comm/compute overlap (docs/ASYNC.md): hide the z-halo exchange behind
  // the halo-independent work — interpolator planes 1..nz-1 and the
  // interior particle push (cells below plane nz) — completing the halo
  // with the nonblocking wait_any poll before the boundary-plane push.
  // Same physics as the fenced schedule up to fp-reordering of current
  // deposits; set false to force the fenced reference schedule (AdHoc
  // strategy falls back to fenced regardless — it has no run-aware push).
  bool overlap = true;
};

struct DistributedEnergy {
  double field = 0;
  std::vector<double> species;
  [[nodiscard]] double total() const {
    double t = field;
    for (double k : species) t += k;
    return t;
  }
};

class DistributedSimulation {
 public:
  /// `comm.size()` must divide cfg.nz.
  DistributedSimulation(const DomainConfig& cfg, mpi::Comm& comm);

  std::size_t add_species(std::string name, float q, float m,
                          index_t local_capacity);

  /// Uniform thermal plasma over the *global* box; deterministic in the
  /// global cell id, independent of the rank count.
  void load_uniform_plasma(std::size_t species_idx, int ppc, float uth,
                           float udx = 0, float udy = 0, float udz = 0);

  void step();
  void run(int nsteps) {
    for (int i = 0; i < nsteps; ++i) step();
  }

  /// Globally reduced energies (identical on every rank).
  [[nodiscard]] DistributedEnergy energies();

  /// Globally reduced particle count for one species.
  [[nodiscard]] std::int64_t global_np(std::size_t species_idx);

  Grid& local_grid() { return fields_.grid; }
  FieldArray& fields() { return fields_; }
  Species& species(std::size_t i) { return species_[i]; }
  [[nodiscard]] int z_offset() const { return z_offset_; }
  [[nodiscard]] std::int64_t exchanged_particles() const {
    return exchanged_;
  }

  /// True when the next step() will take the overlapped schedule.
  [[nodiscard]] bool overlap_active() const {
    return cfg_.overlap && cfg_.strategy != VectorStrategy::AdHoc;
  }

  // ---- checkpoint/restart (docs/CHECKPOINT.md, core/checkpoint.cpp) --

  /// Coordinated checkpoint into directory `dir`: every rank commits
  /// "rank<r>.ckpt" with its local slab state, then — after a barrier
  /// proving all per-rank files landed — rank 0 commits "manifest.ckpt"
  /// (rank count + step). A crash at any point leaves either the previous
  /// checkpoint directory intact or a manifest-less partial one that
  /// restore() rejects as a whole.
  void checkpoint(const std::string& dir);

  /// Restore every rank from `dir`. Validates the manifest (rank count,
  /// config fingerprint) and each per-rank file (fingerprint, step
  /// agreement with the manifest, slab offset) before mutating state;
  /// throws ckpt::RestoreError on any mismatch or corruption.
  void restore(const std::string& dir);

  /// Elastic restore (docs/ELASTIC.md): restore from `dir` regardless of
  /// the rank count that wrote it. A matching shape restores in place; a
  /// k-rank checkpoint on an m-rank communicator is first rewritten by
  /// rank 0 (elastic::Redecomposer) into "<dir>.rescale<m>" and every
  /// rank restores from there — per-voxel interior state and
  /// canonically-ordered particles bit-identical to a same-rank restore.
  /// Requires comm size to divide the global nz and a checkpoint written
  /// with a "manifest.domain" section. Returns the directory actually
  /// restored from; throws ckpt::RestoreError (collectively — every rank
  /// throws) on failure.
  std::string restore_rescaled(const std::string& dir);

  /// Fingerprint of the physics-defining configuration (DomainConfig,
  /// rank count, species identities); per-rank and manifest files share
  /// it, so a restore against the wrong deck or rank layout is typed.
  [[nodiscard]] std::uint64_t config_fingerprint() const;

  [[nodiscard]] std::int64_t step_count() const { return step_count_; }

 private:
  /// In-flight z-halo exchange: pack buffers plus the two pending
  /// receives ([0] from prev_, [1] from next_). Sends are buffered and
  /// complete on post (minimpi semantics).
  struct FieldHalo {
    std::vector<float> up, down, from_prev, from_next;
    std::array<mpi::Request, 2> recvs;
  };

  [[nodiscard]] FieldHalo begin_field_halo();
  void complete_field_halo(FieldHalo& halo);
  void exchange_field_ghosts();
  void step_fenced();
  void step_overlapped();
  void finish_accumulate_and_fields();
  void exchange_exits(std::vector<ExitRecord>& exits);

  DomainConfig cfg_;
  mpi::Comm& comm_;
  int prev_ = 0, next_ = 0;
  int z_offset_ = 0;  // global z index of local interior plane 1 (0-based)
  FieldArray fields_;
  InterpolatorArray interp_;
  AccumulatorArray acc_;
  std::vector<Species> species_;
  std::size_t current_species_ = 0;  // species whose exits are in flight
  std::int64_t step_count_ = 0;
  std::int64_t exchanged_ = 0;
};

}  // namespace vpic::core
