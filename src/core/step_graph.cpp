#include "core/step_graph.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <stdexcept>

#include "pk/instance.hpp"
#include "prof/prof.hpp"

namespace vpic::core {

namespace {

bool intersects(const std::vector<std::string>& a,
                const std::vector<std::string>& b, std::string* which) {
  for (const auto& x : a)
    for (const auto& y : b)
      if (x == y) {
        if (which) *which = x;
        return true;
      }
  return false;
}

}  // namespace

std::size_t StepGraph::add_phase(StepPhase phase) {
  if (phase.name.empty())
    throw std::invalid_argument("StepGraph: phase name must be non-empty");
  if (by_name_.contains(phase.name))
    throw std::invalid_argument("StepGraph: duplicate phase name '" +
                                phase.name + "'");
  const std::size_t id = nodes_.size();
  by_name_.emplace(phase.name, id);
  nodes_.push_back({std::move(phase), {}, {}});
  validated_ = false;
  return id;
}

void StepGraph::add_edge(std::string_view before, std::string_view after) {
  const auto b = by_name_.find(before);
  const auto a = by_name_.find(after);
  if (b == by_name_.end() || a == by_name_.end())
    throw std::invalid_argument(
        "StepGraph: add_edge on unknown phase '" +
        std::string(b == by_name_.end() ? before : after) + "'");
  if (b->second == a->second)
    throw std::invalid_argument("StepGraph: self-edge on phase '" +
                                std::string(before) + "'");
  nodes_[b->second].succ.push_back(a->second);
  nodes_[a->second].pred.push_back(b->second);
  validated_ = false;
}

std::vector<std::vector<bool>> StepGraph::reachability() const {
  const std::size_t n = nodes_.size();
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  // DFS from each node; graphs here are tens of phases, O(n^2) is free.
  for (std::size_t s = 0; s < n; ++s) {
    std::vector<std::size_t> stack{s};
    while (!stack.empty()) {
      const std::size_t u = stack.back();
      stack.pop_back();
      for (std::size_t v : nodes_[u].succ)
        if (!reach[s][v]) {
          reach[s][v] = true;
          stack.push_back(v);
        }
    }
  }
  return reach;
}

void StepGraph::validate() const {
  if (validated_) return;
  const std::size_t n = nodes_.size();

  // Cycle check: Kahn's algorithm.
  std::vector<std::size_t> indeg(n, 0);
  for (const Node& node : nodes_)
    for (std::size_t v : node.succ) ++indeg[v];
  std::deque<std::size_t> ready;
  for (std::size_t i = 0; i < n; ++i)
    if (indeg[i] == 0) ready.push_back(i);
  std::size_t processed = 0;
  while (!ready.empty()) {
    const std::size_t u = ready.front();
    ready.pop_front();
    ++processed;
    for (std::size_t v : nodes_[u].succ)
      if (--indeg[v] == 0) ready.push_back(v);
  }
  if (processed != n) {
    for (std::size_t i = 0; i < n; ++i)
      if (indeg[i] != 0)
        throw std::logic_error("StepGraph: cycle through phase '" +
                               nodes_[i].phase.name + "'");
  }

  // Conflict check: every conflicting pair must be ordered by a path.
  const auto reach = reachability();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (reach[i][j] || reach[j][i]) continue;  // ordered: safe
      const StepPhase& a = nodes_[i].phase;
      const StepPhase& b = nodes_[j].phase;
      std::string res;
      const char* kind = nullptr;
      if (intersects(a.writes, b.writes, &res))
        kind = "write-write";
      else if (intersects(a.writes, b.reads, &res) ||
               intersects(a.reads, b.writes, &res))
        kind = "read-write";
      if (kind)
        throw std::logic_error("StepGraph: unordered " + std::string(kind) +
                               " conflict between phases '" + a.name +
                               "' and '" + b.name + "' on resource '" + res +
                               "' (add an edge to order them)");
    }
  }
  validated_ = true;
}

void StepGraph::execute(std::size_t num_instances) {
  validate();
  const std::size_t n = nodes_.size();
  stats_.assign(n, PhaseStats{});
  for (std::size_t i = 0; i < n; ++i) stats_[i].name = nodes_[i].phase.name;
  concurrency_peak_ = 0;
  if (n == 0) return;
  num_instances = std::max<std::size_t>(1, std::min(num_instances, n));

  std::vector<pk::Instance<>> pool(num_instances);

  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::size_t> indeg(n, 0);
  for (const Node& node : nodes_)
    for (std::size_t v : node.succ) ++indeg[v];
  // Ready phases kept sorted by insertion id: dispatch order is
  // deterministic (results never depend on it — validate() proved
  // conflicting pairs ordered — but stable traces are easier to read).
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < n; ++i)
    if (indeg[i] == 0) ready.push_back(i);
  std::vector<bool> busy(num_instances, false);
  std::size_t completed = 0, in_flight = 0;
  std::exception_ptr error;

  std::unique_lock lk(mu);
  for (;;) {
    // Dispatch everything currently possible.
    while (!error && !ready.empty()) {
      const auto idle =
          std::find(busy.begin(), busy.end(), false);
      if (idle == busy.end()) break;
      const std::size_t slot =
          static_cast<std::size_t>(idle - busy.begin());
      const std::size_t id = ready.front();
      ready.erase(ready.begin());
      busy[slot] = true;
      ++in_flight;
      concurrency_peak_ = std::max(concurrency_peak_, in_flight);
      Node& node = nodes_[id];
      stats_[id].instance_id = pool[slot].id();
      pk::async(pool[slot], node.phase.name.c_str(), [&, id, slot] {
        const auto t0 = std::chrono::steady_clock::now();
        std::exception_ptr phase_error;
        try {
          prof::ScopedRegion region(nodes_[id].phase.name.c_str());
          nodes_[id].phase.fn();
        } catch (...) {
          phase_error = std::current_exception();
        }
        const double secs = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
        std::lock_guard inner(mu);
        stats_[id].seconds = secs;
        busy[slot] = false;
        --in_flight;
        ++completed;
        if (phase_error) {
          if (!error) error = phase_error;
        } else {
          for (std::size_t v : nodes_[id].succ)
            if (--indeg[v] == 0)
              ready.insert(std::lower_bound(ready.begin(), ready.end(), v),
                           v);
        }
        cv.notify_all();
      });
    }
    if (completed == n) break;
    if (error && in_flight == 0) break;
    if (!error && ready.empty() && in_flight == 0)
      throw std::logic_error("StepGraph: scheduler stalled");  // unreachable
    cv.wait(lk);
  }
  lk.unlock();

  // Quiesce the pool before the instances (and captured state) die; also
  // surfaces any InstanceImpl-level deferred error.
  for (auto& inst : pool) inst.fence();
  if (error) std::rethrow_exception(error);
}

void StepGraph::execute_serial() {
  validate();
  const std::size_t n = nodes_.size();
  stats_.assign(n, PhaseStats{});
  concurrency_peak_ = n ? 1 : 0;
  // Insertion order is the legacy serial sequence (drivers add phases in
  // that order) and always a topological order: add_edge with a
  // later-before-earlier pair would have made execute() differ from the
  // serial step, which the bit-identity tests forbid. validate() has
  // already proven acyclicity; here we additionally require the insertion
  // order to respect every edge so "serial mode" is *the* reference
  // order, not merely *a* valid one.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t v : nodes_[i].succ)
      if (v < i)
        throw std::logic_error(
            "StepGraph: execute_serial requires phases added in serial "
            "order, but edge '" +
            nodes_[i].phase.name + "' -> '" + nodes_[v].phase.name +
            "' points backwards");
  for (std::size_t i = 0; i < n; ++i) {
    stats_[i].name = nodes_[i].phase.name;
    stats_[i].instance_id = 0;
    const auto t0 = std::chrono::steady_clock::now();
    {
      prof::ScopedRegion region(nodes_[i].phase.name.c_str());
      nodes_[i].phase.fn();
    }
    stats_[i].seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
  }
}

pk::StealStats StepGraph::execute_stealing(pk::StealPool& pool) {
  validate();
  const std::size_t n = nodes_.size();
  stats_.assign(n, PhaseStats{});
  for (std::size_t i = 0; i < n; ++i) stats_[i].name = nodes_[i].phase.name;
  concurrency_peak_ = 0;
  if (n == 0) return pool.run();  // empty round: still resets stats

  std::mutex mu;
  std::vector<std::size_t> indeg(n, 0);
  for (const Node& node : nodes_)
    for (std::size_t v : node.succ) ++indeg[v];
  std::size_t in_flight = 0;
  std::exception_ptr error;
  // Expected load placed on each worker so far (sum of phase costs) —
  // shared by the initial seeding and every newly-ready wave, guarded by
  // `mu`.
  std::vector<double> load(static_cast<std::size_t>(pool.workers()), 0.0);
  auto lpt_place = [&](std::vector<std::size_t>& ids,
                       std::vector<std::pair<int, std::size_t>>& out) {
    // Caller holds `mu`. Longest processing time first onto the
    // least-loaded worker; id tiebreak keeps placement deterministic.
    std::sort(ids.begin(), ids.end(), [&](std::size_t a, std::size_t b) {
      const double ca = nodes_[a].phase.cost, cb = nodes_[b].phase.cost;
      return ca != cb ? ca > cb : a < b;
    });
    for (std::size_t id : ids) {
      const std::size_t w = static_cast<std::size_t>(
          std::min_element(load.begin(), load.end()) - load.begin());
      load[w] += nodes_[id].phase.cost;
      out.emplace_back(static_cast<int>(w), id);
    }
  };

  // The task body: run the phase, then (under the graph mutex) release
  // successors. A single successor continues on the completing worker's
  // own deque (depth-first, cache-warm); a wave of successors is
  // LPT-spread across deques by declared cost so the expected load
  // starts balanced and stealing only covers what the model missed.
  std::function<void(std::size_t)> run_phase = [&](std::size_t id) {
    {
      std::lock_guard lk(mu);
      if (error) return;  // poisoned round: drain without running
      ++in_flight;
      concurrency_peak_ = std::max(concurrency_peak_, in_flight);
    }
    const auto t0 = std::chrono::steady_clock::now();
    std::exception_ptr phase_error;
    try {
      prof::ScopedRegion region(nodes_[id].phase.name.c_str());
      nodes_[id].phase.fn();
    } catch (...) {
      phase_error = std::current_exception();
    }
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    std::vector<std::size_t> newly_ready;
    std::vector<std::pair<int, std::size_t>> placed;
    {
      std::lock_guard lk(mu);
      stats_[id].seconds = secs;
      stats_[id].instance_id = static_cast<std::uint32_t>(
          std::max(0, pk::StealPool::current_worker()));
      --in_flight;
      if (phase_error) {
        if (!error) error = phase_error;
      } else if (!error) {
        for (std::size_t v : nodes_[id].succ)
          if (--indeg[v] == 0) newly_ready.push_back(v);
      }
      if (newly_ready.size() > 1) lpt_place(newly_ready, placed);
    }
    if (newly_ready.size() == 1) {
      const std::size_t v = newly_ready.front();
      pool.spawn([&run_phase, v] { run_phase(v); });
    } else {
      for (auto [w, v] : placed)
        pool.seed(w, [&run_phase, v] { run_phase(v); });
    }
  };

  // LPT seeding of the initially-ready set.
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < n; ++i)
    if (indeg[i] == 0) ready.push_back(i);
  std::vector<std::pair<int, std::size_t>> placed;
  {
    std::lock_guard lk(mu);
    lpt_place(ready, placed);
  }
  for (auto [w, id] : placed)
    pool.seed(w, [&run_phase, id] { run_phase(id); });

  pk::StealStats round = pool.run();
  if (error) std::rethrow_exception(error);
  // A phase that never became ready without an error means a stalled
  // graph — impossible after validate() (acyclic), so purely defensive.
  for (std::size_t i = 0; i < n; ++i)
    if (indeg[i] != 0 && !nodes_[i].pred.empty())
      throw std::logic_error("StepGraph: phase '" + nodes_[i].phase.name +
                             "' never became ready");
  return round;
}

std::string StepGraph::dot() const {
  std::string out = "digraph step {\n  rankdir=LR;\n";
  for (const Node& node : nodes_) {
    out += "  \"" + node.phase.name + "\";\n";
    for (std::size_t v : node.succ)
      out += "  \"" + node.phase.name + "\" -> \"" + nodes_[v].phase.name +
             "\";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace vpic::core
