// core/step_graph.hpp
//
// Dependency-aware step scheduling: Simulation::step() is expressed as an
// explicit graph of named phases (interpolator-load, push, accumulator
// unload, field advance, sort, ...) instead of a hard-coded serial
// sequence. Each phase declares the resources it reads and writes
// ("fields.eb", "acc", "particles.<species>", ...); edges declare
// execution order. validate() proves the graph safe before anything runs:
//
//   * no cycles, and
//   * every pair of phases whose declared sets conflict (write-write, or
//     read-write in either direction) is ordered by some directed path —
//     an undeclared race is a construction-time std::logic_error, not a
//     nondeterministic result.
//
// execute() then runs the graph over a pool of asynchronous execution
// instances (pk/instance.hpp): whenever two phases are unordered they may
// run concurrently on different instances. Because every conflicting pair
// is ordered — and ordered edges are inserted to match the legacy serial
// sequence — a graph-scheduled step is bit-identical to the sequential
// one (tests/test_step_graph.cpp proves this on the LPI deck); the graph
// only exposes concurrency that cannot change results (e.g. the
// interpolator load against the accumulator clear, or per-species sorts).
//
// This is the shape the task-based PIC ports take (ZPIC on OmpSs-2
// expresses the step loop as data-dependent tasks) and the enabling layer
// for the comm/compute overlap of DistributedSimulation (docs/ASYNC.md).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "pk/stealing.hpp"

namespace vpic::core {

/// One schedulable unit of a step. `reads`/`writes` name abstract
/// resources (any strings; conventionally "fields.eb", "fields.j",
/// "interp", "acc", "particles.<species>"). The body runs exactly once
/// per execute(), on an arbitrary execution instance.
struct StepPhase {
  std::string name;                 // unique, non-empty
  std::vector<std::string> reads;
  std::vector<std::string> writes;
  std::function<void()> fn;
  // Relative expected wall time, in any consistent unit (the tiled step
  // seeds it from tune-probed ns/particle * tile population). Only the
  // stealing executor reads it, for LPT initial placement.
  double cost = 1.0;
};

/// Per-phase record of the most recent execute().
struct PhaseStats {
  std::string name;
  double seconds = 0;          // wall time of the phase body
  std::uint32_t instance_id = 0;  // pk instance that ran it
};

class StepGraph {
 public:
  /// Add a phase; returns its index. Throws std::invalid_argument on an
  /// empty or duplicate name.
  std::size_t add_phase(StepPhase phase);

  /// Declare that `before` must complete before `after` starts (phases
  /// named by their StepPhase::name). Throws std::invalid_argument on
  /// unknown names or a self-edge.
  void add_edge(std::string_view before, std::string_view after);

  /// Prove the graph schedulable: acyclic, and every conflicting pair
  /// ordered by a path. Throws std::logic_error naming the offending
  /// cycle member or the racing phase pair and resource. Idempotent;
  /// execute() calls it if it has not run since the last mutation.
  void validate() const;

  /// Run all phases respecting the edges, up to `num_instances` phases
  /// concurrently on separate pk::Instance queues. Rethrows the first
  /// phase exception after quiescing (remaining phases are not started).
  void execute(std::size_t num_instances = 2);

  /// Run all phases on the CALLING thread, in phase insertion order
  /// (which by construction is the legacy serial sequence). This is the
  /// bit-identical deterministic mode of the tiled step: no pool, no
  /// scheduler, no concurrency — just the validated graph unrolled.
  /// Still validates and records PhaseStats (instance_id = 0).
  void execute_serial();

  /// Run all phases on a work-stealing pool (pk/stealing.hpp). Initially
  /// ready phases are placed LPT (longest `cost` first onto the
  /// least-loaded worker) so the expected load starts balanced; each
  /// completion spawns its newly-ready successors onto the completing
  /// worker's own deque, and idle workers steal the rest. Returns the
  /// round's steal stats (also retrievable from pool.last_stats()).
  /// After a phase throws, successors are not started; the first
  /// exception is rethrown once in-flight work drains.
  pk::StealStats execute_stealing(pk::StealPool& pool);

  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }

  /// Wall time + placement of each phase in the most recent execute(),
  /// in phase insertion order. The driver aggregates these into its
  /// legacy push/sort second counters.
  [[nodiscard]] const std::vector<PhaseStats>& last_stats() const noexcept {
    return stats_;
  }

  /// Peak number of phases that were in flight simultaneously during the
  /// most recent execute() — the overlap telemetry for benches/tests.
  [[nodiscard]] std::size_t last_concurrency_peak() const noexcept {
    return concurrency_peak_;
  }

  /// GraphViz rendering of phases and edges (docs/ASYNC.md shows one).
  [[nodiscard]] std::string dot() const;

 private:
  struct Node {
    StepPhase phase;
    std::vector<std::size_t> succ;
    std::vector<std::size_t> pred;
  };

  [[nodiscard]] std::vector<std::vector<bool>> reachability() const;

  std::vector<Node> nodes_;
  std::map<std::string, std::size_t, std::less<>> by_name_;
  std::vector<PhaseStats> stats_;
  std::size_t concurrency_peak_ = 0;
  mutable bool validated_ = false;
};

}  // namespace vpic::core
