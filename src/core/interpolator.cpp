#include "core/interpolator.hpp"

namespace vpic::core {

void InterpolatorArray::load_planes(const FieldArray& f, int z_begin,
                                    int z_end) {
  const Grid& g = grid;
  if (z_begin > z_end) return;
  const float fourth = 0.25f;
  const float half = 0.5f;
  pk::parallel_for("interp/load", pk::RangePolicy<>(z_begin, z_end + 1),
                   [&, g](index_t izz) {
    const int iz = static_cast<int>(izz);
    for (int iy = 1; iy <= g.ny; ++iy) {
      for (int ix = 1; ix <= g.nx; ++ix) {
        const index_t v = g.voxel(ix, iy, iz);
        Interpolator& ip = data(v);

        // Ex: values on the four x-edges of the cell, bilinear in (y, z).
        {
          const float e00 = f.ex(g.voxel(ix, iy, iz));
          const float e10 = f.ex(g.voxel(ix, iy + 1, iz));
          const float e01 = f.ex(g.voxel(ix, iy, iz + 1));
          const float e11 = f.ex(g.voxel(ix, iy + 1, iz + 1));
          ip.ex = fourth * (e00 + e10 + e01 + e11);
          ip.dexdy = fourth * ((e10 - e00) + (e11 - e01));
          ip.dexdz = fourth * ((e01 - e00) + (e11 - e10));
          ip.d2exdydz = fourth * ((e00 - e10) + (e11 - e01));
        }
        // Ey: four y-edges, bilinear in (z, x).
        {
          const float e00 = f.ey(g.voxel(ix, iy, iz));
          const float e10 = f.ey(g.voxel(ix, iy, iz + 1));      // +z
          const float e01 = f.ey(g.voxel(ix + 1, iy, iz));      // +x
          const float e11 = f.ey(g.voxel(ix + 1, iy, iz + 1));  // +z+x
          ip.ey = fourth * (e00 + e10 + e01 + e11);
          ip.deydz = fourth * ((e10 - e00) + (e11 - e01));
          ip.deydx = fourth * ((e01 - e00) + (e11 - e10));
          ip.d2eydzdx = fourth * ((e00 - e10) + (e11 - e01));
        }
        // Ez: four z-edges, bilinear in (x, y).
        {
          const float e00 = f.ez(g.voxel(ix, iy, iz));
          const float e10 = f.ez(g.voxel(ix + 1, iy, iz));      // +x
          const float e01 = f.ez(g.voxel(ix, iy + 1, iz));      // +y
          const float e11 = f.ez(g.voxel(ix + 1, iy + 1, iz));  // +x+y
          ip.ez = fourth * (e00 + e10 + e01 + e11);
          ip.dezdx = fourth * ((e10 - e00) + (e11 - e01));
          ip.dezdy = fourth * ((e01 - e00) + (e11 - e10));
          ip.d2ezdxdy = fourth * ((e00 - e10) + (e11 - e01));
        }
        // B: two opposing faces per component, linear along the normal.
        {
          const float b0 = f.bx(g.voxel(ix, iy, iz));
          const float b1 = f.bx(g.voxel(ix + 1, iy, iz));
          ip.cbx = half * (b0 + b1);
          ip.dcbxdx = half * (b1 - b0);
        }
        {
          const float b0 = f.by(g.voxel(ix, iy, iz));
          const float b1 = f.by(g.voxel(ix, iy + 1, iz));
          ip.cby = half * (b0 + b1);
          ip.dcbydy = half * (b1 - b0);
        }
        {
          const float b0 = f.bz(g.voxel(ix, iy, iz));
          const float b1 = f.bz(g.voxel(ix, iy, iz + 1));
          ip.cbz = half * (b0 + b1);
          ip.dcbzdz = half * (b1 - b0);
        }
      }
    }
  });
}

}  // namespace vpic::core
