// core/checkpoint.cpp
//
// Checkpoint/restore integration for Simulation and DistributedSimulation
// over the vpic::ckpt subsystem (src/ckpt, docs/CHECKPOINT.md).
//
// What a checkpoint holds: the nine Yee field components, the
// interpolator and accumulator arrays, every species' live particle
// records (prefix-encoded to np) plus its sortedness metadata, the
// energy-history diagnostics, and the step count — everything needed for
// a restored run to continue bit-identically to one that never stopped.
// Interpolators/accumulators are recomputed at the top of every step, so
// serializing them is belt-and-braces for mid-phase captures rather than
// a bit-identity requirement.
//
// Restore order is validate-then-mutate: the file envelope, the config
// fingerprint, and every payload CRC are checked before a single byte of
// live state changes, so a corrupt file throws a typed RestoreError and
// leaves the simulation untouched (the generation-ring fallback then
// tries the previous file).

#include <algorithm>
#include <cstring>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <mutex>

#include "ckpt/ckpt.hpp"
#include "core/domain.hpp"
#include "core/simulation.hpp"
#include "elastic/elastic.hpp"
#include "prof/prof.hpp"

namespace vpic::core {

namespace {

namespace fs = std::filesystem;

/// Per-species scalar state riding alongside the particle payload.
/// Padding is explicit and zeroed: add_pod serializes the raw object
/// bytes, and implicit padding would leak indeterminate stack bytes into
/// the file (breaking byte-level reproducibility of checkpoints).
struct SpeciesMeta {
  std::int64_t np = 0;
  float q = 0, m = 0;
  std::int32_t steps_since_sort = -1;
  std::uint8_t cell_sorted_hint = 0;
  std::uint8_t pad_[3] = {0, 0, 0};
};
static_assert(sizeof(SpeciesMeta) == 24, "no implicit padding allowed");

/// Per-rank scalar state of a DistributedSimulation.
struct RankMeta {
  std::int64_t z_offset = 0;
  std::int64_t exchanged = 0;
  std::uint64_t current_species = 0;
};
static_assert(sizeof(RankMeta) == 24, "no implicit padding allowed");

std::string species_prefix(std::size_t i) {
  return "sp" + std::to_string(i) + ".";
}

/// Fixed fallback chunk size of the incremental particle layout
/// (docs/ELASTIC.md) when a species has no usable tile partition.
constexpr index_t kChunkParticles = 16384;

/// Chunk ranges over [0, np) for the incremental particle layout: the
/// species' tile slots when they exactly partition the live range
/// (tile-granular dirty tracking — a delta stores only the tiles whose
/// payload hash moved), fixed kChunkParticles blocks otherwise. Always at
/// least one (possibly empty) chunk, so the reassembled section keeps its
/// element size.
std::vector<std::pair<index_t, index_t>> particle_chunks(const Species& sp) {
  std::vector<std::pair<index_t, index_t>> r;
  if (!sp.tiles.empty()) {
    index_t at = 0;
    bool contiguous = true;
    for (const TileSlot& t : sp.tiles) {
      if (t.begin != at || t.end < t.begin) {
        contiguous = false;
        break;
      }
      at = t.end;
    }
    if (contiguous && at == sp.np) {
      for (const TileSlot& t : sp.tiles) r.emplace_back(t.begin, t.end);
      if (r.empty()) r.emplace_back(0, 0);
      return r;
    }
  }
  for (index_t at = 0; at < sp.np; at += kChunkParticles)
    r.emplace_back(at, std::min(sp.np, at + kChunkParticles));
  if (r.empty()) r.emplace_back(0, 0);
  return r;
}

// The engine-state section set is shared between the single-node and the
// per-rank distributed checkpoints: fields, interpolator, accumulator,
// and every species (particles + metadata + name). With `chunked` set
// (the incremental path, docs/ELASTIC.md) each species' particle payload
// is split into "sp<i>.c<k>.p" chunk sections plus an "sp<i>.nchunks"
// count instead of the monolithic "sp<i>.p" — elastic::ChainReader
// reassembles the canonical stream on restore.
void add_engine_sections(ckpt::FileWriter& w, const FieldArray& f,
                         const InterpolatorArray& interp,
                         const AccumulatorArray& acc,
                         const std::vector<Species>& species,
                         bool chunked = false) {
  w.add_view("f.ex", f.ex);
  w.add_view("f.ey", f.ey);
  w.add_view("f.ez", f.ez);
  w.add_view("f.bx", f.bx);
  w.add_view("f.by", f.by);
  w.add_view("f.bz", f.bz);
  w.add_view("f.jx", f.jx);
  w.add_view("f.jy", f.jy);
  w.add_view("f.jz", f.jz);
  w.add_view("interp", interp.data);
  w.add_view("acc", acc.a);

  w.add_pod("nspecies", static_cast<std::uint64_t>(species.size()));
  for (std::size_t i = 0; i < species.size(); ++i) {
    const Species& sp = species[i];
    const std::string pfx = species_prefix(i);
    w.add_bytes(pfx + "name", sp.name.data(), sp.name.size());
    SpeciesMeta meta;
    meta.np = sp.np;
    meta.q = sp.q;
    meta.m = sp.m;
    meta.steps_since_sort = sp.steps_since_sort;
    meta.cell_sorted_hint = sp.cell_sorted_hint ? 1 : 0;
    w.add_pod(pfx + "meta", meta);
    // Prefix-encode: only the np live records, not the slack capacity.
    // The on-disk particle stream is the canonical packed AoS record for
    // every layout, so the file format (and its CRCs) is layout-invariant
    // and a checkpoint round-trips across AoS/SoA/AoSoA stores.
    if (!chunked) {
      if (sp.p.layout() == ParticleLayout::AoS) {
        w.add_view(pfx + "p", sp.p.aos_view(), sp.np);
      } else {
        pk::View<Particle, 1> canon("ckpt_canon_" + sp.name, sp.np);
        sp.p.export_aos(canon.data(), sp.np);
        w.add_view(pfx + "p", canon);
      }
      continue;
    }
    // Chunked layout: one canonical AoS staging, then per-chunk copies in
    // index order (chunk boundaries follow the tile partition, so the
    // concatenation in k order IS the canonical stream).
    pk::View<Particle, 1> canon("ckpt_canon_" + sp.name, sp.np);
    const Particle* src = canon.data();
    if (sp.p.layout() == ParticleLayout::AoS) {
      src = sp.p.aos_view().data();
    } else {
      sp.p.export_aos(canon.data(), sp.np);
    }
    const auto chunks = particle_chunks(sp);
    w.add_pod(pfx + "nchunks", static_cast<std::uint64_t>(chunks.size()));
    for (std::size_t k = 0; k < chunks.size(); ++k) {
      const auto [begin, end] = chunks[k];
      ckpt::EncodedSection c;
      c.name = pfx + "c" + std::to_string(k) + ".p";
      c.elem_size = sizeof(Particle);
      c.rank = 1;
      c.extents[0] = static_cast<std::int64_t>(end - begin);
      c.layout = ckpt::kLayoutRight;
      c.payload.resize(static_cast<std::size_t>(end - begin) *
                       sizeof(Particle));
      if (end > begin)
        std::memcpy(c.payload.data(), src + begin, c.payload.size());
      w.add(std::move(c));
    }
  }
}

void read_engine_sections(ckpt::SectionSource& f, FieldArray& fld,
                          InterpolatorArray& interp, AccumulatorArray& acc,
                          std::vector<Species>& species) {
  const auto nsp = f.pod<std::uint64_t>("nspecies");
  if (nsp != species.size())
    throw ckpt::RestoreError(
        ckpt::RestoreErrorKind::ShapeMismatch,
        "checkpoint holds " + std::to_string(nsp) +
            " species, simulation has " + std::to_string(species.size()));

  f.read_view("f.ex", fld.ex);
  f.read_view("f.ey", fld.ey);
  f.read_view("f.ez", fld.ez);
  f.read_view("f.bx", fld.bx);
  f.read_view("f.by", fld.by);
  f.read_view("f.bz", fld.bz);
  f.read_view("f.jx", fld.jx);
  f.read_view("f.jy", fld.jy);
  f.read_view("f.jz", fld.jz);
  f.read_view("interp", interp.data);
  f.read_view("acc", acc.a);

  for (std::size_t i = 0; i < species.size(); ++i) {
    Species& sp = species[i];
    const std::string pfx = species_prefix(i);
    const ckpt::EncodedSection& name = f.section(pfx + "name");
    const std::string file_name(
        reinterpret_cast<const char*>(name.payload.data()),
        name.payload.size());
    if (file_name != sp.name)
      throw ckpt::RestoreError(ckpt::RestoreErrorKind::ShapeMismatch,
                               "species " + std::to_string(i) + " is '" +
                                   sp.name + "', checkpoint holds '" +
                                   file_name + "'");
    const auto meta = f.pod<SpeciesMeta>(pfx + "meta");
    if (meta.np < 0)
      throw ckpt::RestoreError(ckpt::RestoreErrorKind::ShapeMismatch,
                               "negative particle count in '" + sp.name + "'");
    if (meta.np > sp.capacity())
      sp.p = ParticleStore("particles_" + sp.name, meta.np, sp.p.layout());
    if (sp.p.layout() == ParticleLayout::AoS) {
      f.read_view(pfx + "p", sp.p.aos_view());
    } else {
      // Stage through the canonical AoS stream, then scatter into the
      // store's layout (restore may target a different layout than the
      // writer used — the bytes on disk are identical either way).
      pk::View<Particle, 1> canon("ckpt_canon_" + sp.name, meta.np);
      f.read_view(pfx + "p", canon);
      sp.p.import_aos(canon.data(), meta.np);
    }
    sp.np = meta.np;
    sp.q = meta.q;
    sp.m = meta.m;
    sp.steps_since_sort = meta.steps_since_sort;
    sp.cell_sorted_hint = meta.cell_sorted_hint != 0;
    // The reorder scratch and run segmentation are rebuilt on demand.
    sp.push_runs.clear();
  }
}

void add_history_sections(ckpt::FileWriter& w, const EnergyHistory& h) {
  std::vector<std::int64_t> steps;
  std::vector<double> field;
  std::vector<std::uint64_t> counts;
  std::vector<double> ke;
  steps.reserve(h.size());
  for (std::size_t i = 0; i < h.size(); ++i) {
    steps.push_back(h.step(i));
    field.push_back(h.field(i));
    counts.push_back(h.species_count(i));
    for (std::size_t s = 0; s < h.species_count(i); ++s)
      ke.push_back(h.species_ke(i, s));
  }
  w.add_vector("diag.steps", steps);
  w.add_vector("diag.field", field);
  w.add_vector("diag.counts", counts);
  w.add_vector("diag.ke", ke);
}

void read_history_sections(ckpt::SectionSource& f, EnergyHistory& h) {
  const auto steps = f.vector<std::int64_t>("diag.steps");
  const auto field = f.vector<double>("diag.field");
  const auto counts = f.vector<std::uint64_t>("diag.counts");
  const auto ke = f.vector<double>("diag.ke");
  if (field.size() != steps.size() || counts.size() != steps.size())
    throw ckpt::RestoreError(ckpt::RestoreErrorKind::ShapeMismatch,
                             "energy-history sections disagree on row count");
  h.clear();
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    if (cursor + counts[i] > ke.size())
      throw ckpt::RestoreError(ckpt::RestoreErrorKind::ShapeMismatch,
                               "energy-history ke section too short");
    std::vector<double> row(ke.begin() + static_cast<std::ptrdiff_t>(cursor),
                            ke.begin() + static_cast<std::ptrdiff_t>(
                                             cursor + counts[i]));
    cursor += counts[i];
    h.record(steps[i], field[i], row);
  }
  if (cursor != ke.size())
    throw ckpt::RestoreError(ckpt::RestoreErrorKind::ShapeMismatch,
                             "energy-history ke section too long");
}

// ---- module sections (docs/MODULES.md, docs/CHECKPOINT.md) -----------
//
// Registered modules with state serialize under "mod.<id>.*", plus a
// "mod.index" manifest of "id:version" lines. Restore matches the
// manifest against the registry: a module the simulation does not have
// (or whose recorded state version is newer than the module understands)
// gets its sections skipped wholesale — restore still succeeds, and the
// skip is reported as a typed ModuleSectionSkip instead of corrupting
// anything. A registered stateful module absent from the file (the file
// predates it) is reset via clear_state() so restore remains a complete
// overwrite.

void add_module_sections(
    ckpt::FileWriter& w,
    const std::vector<std::unique_ptr<PhysicsModule>>& modules) {
  std::string index;
  for (const auto& m : modules) {
    if (!m->has_state()) continue;
    index += std::string(m->id()) + ":" +
             std::to_string(m->state_version()) + "\n";
    ModuleStateWriter mw(w, "mod." + std::string(m->id()) + ".");
    m->save_state(mw);
  }
  w.add_bytes("mod.index", index.data(), index.size());
}

void read_module_sections(
    ckpt::SectionSource& f,
    const std::vector<std::unique_ptr<PhysicsModule>>& modules,
    std::vector<ModuleSectionSkip>& skips) {
  skips.clear();
  // Parse the manifest; a pre-registry file has no mod.index and holds no
  // module state, which reads as an empty manifest.
  std::vector<std::pair<std::string, std::uint32_t>> in_file;
  if (f.has("mod.index")) {
    const ckpt::EncodedSection& s = f.section("mod.index");
    std::string line;
    for (std::size_t i = 0; i <= s.payload.size(); ++i) {
      if (i < s.payload.size() &&
          static_cast<char>(s.payload[i]) != '\n') {
        line += static_cast<char>(s.payload[i]);
        continue;
      }
      const auto colon = line.rfind(':');
      if (colon != std::string::npos)
        in_file.emplace_back(
            line.substr(0, colon),
            static_cast<std::uint32_t>(
                std::stoul(line.substr(colon + 1))));
      line.clear();
    }
  }
  const std::vector<std::string> names = f.section_names();
  auto prefix_count = [&names](const std::string& prefix) {
    std::size_t n = 0;
    for (const auto& name : names)
      if (name.starts_with(prefix)) ++n;
    return n;
  };
  for (const auto& [mid, ver] : in_file) {
    PhysicsModule* mod = nullptr;
    for (const auto& m : modules)
      if (m->id() == mid) {
        mod = m.get();
        break;
      }
    const std::string prefix = "mod." + mid + ".";
    if (mod != nullptr && mod->has_state() &&
        ver <= mod->state_version()) {
      ModuleStateReader mr(f, prefix);
      mod->load_state(mr, ver);
      continue;
    }
    // Unknown module, stateless now, or future state version: skip its
    // sections, reset any live state, and report.
    if (mod != nullptr) mod->clear_state();
    ModuleSectionSkip skip;
    skip.module = mid;
    skip.version = ver;
    skip.sections = prefix_count(prefix);
    std::fprintf(stderr,
                 "vpic: restore: skipping %zu checkpoint section(s) of "
                 "module '%s' (state v%u, %s)\n",
                 skip.sections, mid.c_str(), ver,
                 mod == nullptr ? "module not registered"
                                : "version newer than registered module");
    prof::counter_add("ckpt.module_skips");
    skips.push_back(std::move(skip));
  }
  // Stateful modules the file predates: reset to attach-time state.
  for (const auto& m : modules) {
    if (!m->has_state()) continue;
    bool listed = false;
    for (const auto& [mid, ver] : in_file)
      if (mid == m->id()) {
        listed = true;
        break;
      }
    if (!listed) m->clear_state();
  }
}

/// Generation number of a ring path "<base>.g<N>", or -1 for anything
/// else. Incremental chains only make sense inside a generation ring
/// (deltas resolve siblings by rewriting the suffix); a plain path gets a
/// plain full checkpoint instead.
std::int64_t ring_generation_of(const std::string& path) {
  const auto dot = path.rfind(".g");
  if (dot == std::string::npos || dot + 2 >= path.size()) return -1;
  for (std::size_t i = dot + 2; i < path.size(); ++i)
    if (std::isdigit(static_cast<unsigned char>(path[i])) == 0) return -1;
  return static_cast<std::int64_t>(std::stoll(path.substr(dot + 2)));
}

}  // namespace

// ---- Simulation ------------------------------------------------------

/// Mutex-guarded cumulative stats block, shared with background commit
/// tasks (which may outlive a moved-from Simulation, like ckpt_inflight_).
struct Simulation::ElasticStatsShared {
  std::mutex mu;
  ElasticCkptStats s;

  void record(const elastic::GenStats& g) {
    const std::lock_guard<std::mutex> lk(mu);
    if (g.kind == elastic::kKindFull) {
      ++s.full_generations;
      s.full_file_bytes += g.file_bytes;
    } else {
      ++s.delta_generations;
      s.delta_file_bytes += g.file_bytes;
    }
    s.logical_bytes += g.logical_bytes;
    s.stored_raw_bytes += g.stored_raw_bytes;
    s.stored_bytes += g.stored_bytes;
  }
};

ElasticCkptStats Simulation::elastic_ckpt_stats() const {
  if (!elastic_stats_) return {};
  const std::lock_guard<std::mutex> lk(elastic_stats_->mu);
  return elastic_stats_->s;
}

std::uint64_t Simulation::config_fingerprint() const {
  ckpt::Fingerprint fp;
  const Grid& g = fields_.grid;
  fp.add(g.nx);
  fp.add(g.ny);
  fp.add(g.nz);
  fp.add(g.dx);
  fp.add(g.dy);
  fp.add(g.dz);
  fp.add(g.dt);
  fp.add(g.x0);
  fp.add(g.y0);
  fp.add(g.z0);
  fp.add(g.cvac);
  fp.add(static_cast<std::uint32_t>(cfg_.strategy));
  fp.add(static_cast<std::uint32_t>(cfg_.push_path));
  fp.add(static_cast<std::uint32_t>(cfg_.sort_order));
  fp.add(cfg_.sort_interval);
  fp.add(cfg_.sort_tile);
  fp.add(cfg_.energy_interval);
  fp.add(cfg_.seed);
  for (const auto& sp : species_) {
    fp.add_string(sp.name);
    fp.add(sp.q);
    fp.add(sp.m);
  }
  return fp.value();
}

std::uint64_t Simulation::checkpoint(const std::string& path) {
  prof::ScopedRegion r("ckpt");
  const std::int64_t gen =
      cfg_.checkpoint_incremental ? ring_generation_of(path) : -1;
  ckpt::FileWriter w;
  {
    prof::ScopedRegion enc("ckpt_encode");
    add_engine_sections(w, fields_, interp_, acc_, species_, gen >= 0);
    add_history_sections(w, energy_history_);
    add_module_sections(w, modules_);
  }
  std::uint64_t bytes;
  if (gen >= 0) {
    if (!elastic_tracker_)
      elastic_tracker_ = std::make_shared<elastic::DeltaTracker>(
          std::max(1, cfg_.checkpoint_full_every));
    if (!elastic_stats_)
      elastic_stats_ = std::make_shared<ElasticStatsShared>();
    const elastic::GenerationPlan plan = elastic_tracker_->plan(
        w.sections(), gen,
        static_cast<elastic::Codec>(cfg_.checkpoint_codec));
    const elastic::GenStats st = elastic::write_generation(
        path, w.sections(), plan, config_fingerprint(), step_count_);
    elastic_stats_->record(st);
    bytes = st.file_bytes;
  } else {
    bytes = w.commit(path, config_fingerprint(), step_count_);
  }
  ++ckpt_written_;
  for (const auto& m : modules_) m->on_checkpoint(*this);
  return bytes;
}

void Simulation::checkpoint_async(const std::string& path) {
  prof::ScopedRegion r("ckpt_async");
  if (!ckpt_instance_) ckpt_instance_.emplace();
  // Double buffer: at most two detached snapshots queued behind the
  // background instance; a third submission waits for the queue to drain
  // (bounding memory at 2x the engine state).
  if (ckpt_inflight_->load(std::memory_order_acquire) >= 2)
    ckpt_instance_->fence();

  const std::int64_t gen =
      cfg_.checkpoint_incremental ? ring_generation_of(path) : -1;
  auto w = std::make_shared<ckpt::FileWriter>();
  {
    // This encode IS the snapshot: encode_view deep-copies every payload,
    // so once it returns the writer is independent of the live state and
    // stepping may continue while the file is written behind it.
    prof::ScopedRegion enc("ckpt_encode");
    add_engine_sections(*w, fields_, interp_, acc_, species_, gen >= 0);
    add_history_sections(*w, energy_history_);
    add_module_sections(*w, modules_);
  }
  const std::uint64_t fp = config_fingerprint();
  const std::int64_t step = step_count_;
  ckpt_inflight_->fetch_add(1, std::memory_order_acq_rel);
  auto inflight = ckpt_inflight_;
  if (gen >= 0) {
    // Incremental: the plan (hash/diff against the previous generation)
    // runs NOW, on the stepping thread — it is part of the snapshot and
    // must observe generations in order. Only the codec + commit work is
    // hidden behind the background instance.
    if (!elastic_tracker_)
      elastic_tracker_ = std::make_shared<elastic::DeltaTracker>(
          std::max(1, cfg_.checkpoint_full_every));
    if (!elastic_stats_)
      elastic_stats_ = std::make_shared<ElasticStatsShared>();
    auto plan = std::make_shared<const elastic::GenerationPlan>(
        elastic_tracker_->plan(
            w->sections(), gen,
            static_cast<elastic::Codec>(cfg_.checkpoint_codec)));
    auto stats = elastic_stats_;
    pk::async(*ckpt_instance_, "ckpt_write",
              [w, path, fp, step, inflight, plan, stats] {
                struct Done {
                  std::shared_ptr<std::atomic<int>> c;
                  ~Done() { c->fetch_sub(1, std::memory_order_acq_rel); }
                } done{inflight};
                stats->record(elastic::write_generation(path, w->sections(),
                                                        *plan, fp, step));
              });
  } else {
    pk::async(*ckpt_instance_, "ckpt_write", [w, path, fp, step, inflight] {
      // Decrement even when commit throws (the exception is deferred to
      // the next fence, pk::Instance semantics).
      struct Done {
        std::shared_ptr<std::atomic<int>> c;
        ~Done() { c->fetch_sub(1, std::memory_order_acq_rel); }
      } done{inflight};
      w->commit(path, fp, step);
    });
  }
  ++ckpt_written_;
  for (const auto& m : modules_) m->on_checkpoint(*this);
}

void Simulation::checkpoint_wait() {
  if (ckpt_instance_) ckpt_instance_->fence();
}

void Simulation::restore(const std::string& path) {
  prof::ScopedRegion r("ckpt_restore");
  const auto apply = [this](ckpt::SectionSource& f) {
    f.require_fingerprint(config_fingerprint());
    read_engine_sections(f, fields_, interp_, acc_, species_);
    read_history_sections(f, energy_history_);
    read_module_sections(f, modules_, last_restore_skips_);
    step_count_ = f.step();
  };
  if (elastic::ChainReader::is_chain_file(path)) {
    // Incremental generation: resolving the chain validates every
    // referenced sibling and hash-checks every payload up front, so the
    // validate-then-mutate order is preserved.
    elastic::ChainReader f(path);
    apply(f);
  } else {
    ckpt::FileReader f(path);
    f.require_fingerprint(config_fingerprint());
    f.validate_all();
    apply(f);
  }
  // The on-disk chain no longer matches the tracker's hash bookkeeping
  // (restore may land on any generation): start a fresh chain.
  if (elastic_tracker_) elastic_tracker_->invalidate();
  // The restored particle arrays replace whatever the tile ranges pointed
  // at: force a re-bucket before the next tiled step (docs/TILES.md).
  tiles_dirty_ = true;
}

std::string Simulation::restore_latest(const std::string& base) {
  ckpt::GenerationRing ring(base, cfg_.checkpoint_keep_last);
  const auto gens = ring.generations();
  std::optional<ckpt::RestoreError> newest_failure;
  for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
    const std::string path = ring.path_for(*it);
    try {
      restore(path);
      return path;
    } catch (const ckpt::RestoreError& e) {
      // Fall back to the previous generation; report the newest failure
      // if the whole ring is bad (it is the most actionable one).
      if (!newest_failure) newest_failure = e;
    }
  }
  if (newest_failure) throw *newest_failure;
  throw ckpt::RestoreError(ckpt::RestoreErrorKind::IoError,
                           "no checkpoint generations at '" + base + "'");
}

void Simulation::checkpoint_to_ring() {
  prof::ScopedRegion r("ckpt_ring");
  ckpt::GenerationRing ring(cfg_.checkpoint_path, cfg_.checkpoint_keep_last);
  // Generation numbers are tracked in memory, not re-scanned per
  // checkpoint: an async generation not yet renamed into place is
  // invisible to a directory scan, so two back-to-back periodic
  // checkpoints would collide on the same number and the later write
  // would silently overwrite a retained generation.
  if (ckpt_next_gen_ < 0 || ckpt_ring_base_ != cfg_.checkpoint_path) {
    ckpt_ring_base_ = cfg_.checkpoint_path;
    ckpt_next_gen_ = static_cast<std::int64_t>(ring.next_generation());
  }
  const std::string path =
      ring.path_for(static_cast<std::uint64_t>(ckpt_next_gen_++));
  if (cfg_.checkpoint_async) {
    checkpoint_async(path);
  } else {
    checkpoint(path);
  }
  // Prune sees only committed files: an async generation still being
  // written has not been renamed into place yet, and a later prune
  // catches it. In incremental mode keep_last counts whole chains — a
  // count-based prune could unlink a base out from under its deltas,
  // leaving retained generations unrestorable (docs/ELASTIC.md).
  if (cfg_.checkpoint_incremental) {
    elastic::prune_chains(cfg_.checkpoint_path, cfg_.checkpoint_keep_last);
  } else {
    ring.prune();
  }
  // The stale-.tmp sweep must wait until no async commit is in flight —
  // it would unlink the background writer's "<path>.tmp" mid-write and
  // the rename-commit would fail, silently losing that checkpoint. With
  // writes pending it is deferred to a later, quiescent checkpoint (a
  // restart's restore_latest never races a writer, so crash wrecks are
  // still collected).
  if (ckpt_inflight_->load(std::memory_order_acquire) == 0)
    ring.remove_stale_tmp();
}

// ---- DistributedSimulation -------------------------------------------

namespace {

elastic::DomainPod domain_pod(const DomainConfig& cfg) {
  elastic::DomainPod d;
  d.nx = cfg.nx;
  d.ny = cfg.ny;
  d.nz = cfg.nz;
  d.lx = cfg.lx;
  d.ly = cfg.ly;
  d.lz = cfg.lz;
  d.dt = cfg.dt;
  d.strategy = static_cast<std::uint32_t>(cfg.strategy);
  d.seed = cfg.seed;
  d.overlap = cfg.overlap ? 1 : 0;
  return d;
}

std::vector<elastic::SpeciesId> species_ids(
    const std::vector<Species>& species) {
  std::vector<elastic::SpeciesId> ids;
  ids.reserve(species.size());
  for (const Species& sp : species)
    ids.push_back({sp.name, sp.q, sp.m});
  return ids;
}

}  // namespace

std::uint64_t DistributedSimulation::config_fingerprint() const {
  // Shared with elastic::Redecomposer (which recomputes it for a new rank
  // count from the stored "manifest.domain" pod): one definition, so the
  // two can never drift apart.
  return elastic::domain_fingerprint(domain_pod(cfg_), comm_.size(),
                                     species_ids(species_));
}

void DistributedSimulation::checkpoint(const std::string& dir) {
  prof::ScopedRegion r("ckpt_dist");
  const std::uint64_t fp = config_fingerprint();
  if (comm_.rank() == 0) {
    std::error_code ec;
    fs::create_directories(dir, ec);
  }
  comm_.barrier();  // directory exists before anyone writes into it

  ckpt::FileWriter w;
  add_engine_sections(w, fields_, interp_, acc_, species_);
  RankMeta meta;
  meta.z_offset = z_offset_;
  meta.exchanged = exchanged_;
  meta.current_species = current_species_;
  w.add_pod("rank.meta", meta);
  w.commit(dir + "/rank" + std::to_string(comm_.rank()) + ".ckpt", fp,
           step_count_);

  comm_.barrier();  // every rank file is committed...
  if (comm_.rank() == 0) {
    // ...before the manifest makes the set restorable: a crash beforehand
    // leaves a manifest-less directory that restore() rejects whole.
    ckpt::FileWriter m;
    m.add_pod("manifest.nranks", static_cast<std::int64_t>(comm_.size()));
    // The physics-defining domain config rides in the manifest so an
    // elastic::Redecomposer can rewrite the set for a different rank
    // count — and recompute the fingerprint — without the deck in hand.
    m.add_pod("manifest.domain", domain_pod(cfg_));
    m.commit(dir + "/manifest.ckpt", fp, step_count_);
  }
  comm_.barrier();
}

void DistributedSimulation::restore(const std::string& dir) {
  prof::ScopedRegion r("ckpt_dist_restore");
  const std::uint64_t fp = config_fingerprint();

  // Every rank reads the shared manifest (in-process ranks share the
  // filesystem) and validates the set before touching its own file.
  ckpt::FileReader manifest(dir + "/manifest.ckpt");
  manifest.require_fingerprint(fp);
  const auto nranks = manifest.pod<std::int64_t>("manifest.nranks");
  if (nranks != comm_.size())
    throw ckpt::RestoreError(ckpt::RestoreErrorKind::ManifestMismatch,
                             "checkpoint was written by " +
                                 std::to_string(nranks) + " ranks, comm has " +
                                 std::to_string(comm_.size()));

  ckpt::FileReader f(dir + "/rank" + std::to_string(comm_.rank()) + ".ckpt");
  f.require_fingerprint(fp);
  if (f.step() != manifest.step())
    throw ckpt::RestoreError(
        ckpt::RestoreErrorKind::ManifestMismatch,
        "rank file is from step " + std::to_string(f.step()) +
            ", manifest says " + std::to_string(manifest.step()));
  f.validate_all();

  read_engine_sections(f, fields_, interp_, acc_, species_);
  const auto meta = f.pod<RankMeta>("rank.meta");
  if (meta.z_offset != z_offset_)
    throw ckpt::RestoreError(ckpt::RestoreErrorKind::ManifestMismatch,
                             "rank file holds slab offset " +
                                 std::to_string(meta.z_offset) +
                                 ", this rank is at " +
                                 std::to_string(z_offset_));
  exchanged_ = meta.exchanged;
  current_species_ = static_cast<std::size_t>(meta.current_species);
  step_count_ = f.step();
  comm_.barrier();  // nobody resumes stepping until every rank restored
}

std::string DistributedSimulation::restore_rescaled(const std::string& dir) {
  prof::ScopedRegion r("ckpt_rescale");
  ckpt::FileReader manifest(dir + "/manifest.ckpt");
  const auto nranks = manifest.pod<std::int64_t>("manifest.nranks");
  if (nranks == comm_.size()) {
    restore(dir);
    return dir;
  }
  // Shape mismatch: rank 0 rewrites the set into a sibling directory
  // named for the target shape, everyone else waits on the broadcast
  // below (minimpi bcast barriers), then all restore the rewritten set
  // through the completely unchanged validation path.
  const std::string scaled =
      dir + ".rescale" + std::to_string(comm_.size());
  std::string error;
  if (comm_.rank() == 0) {
    try {
      elastic::Redecomposer::run(dir, scaled, comm_.size());
    } catch (const std::exception& e) {
      error = e.what();
    }
  }
  comm_.bcast(error, 0);
  if (!error.empty())
    throw ckpt::RestoreError(ckpt::RestoreErrorKind::ManifestMismatch,
                             "rescale " + std::to_string(nranks) + " -> " +
                                 std::to_string(comm_.size()) +
                                 " ranks failed: " + error);
  restore(scaled);
  return scaled;
}

}  // namespace vpic::core
