// core/decks.hpp
//
// Input decks: the physics scenarios VPIC is run with. The laser-plasma
// instability (LPI) deck is the paper's benchmark problem (Figs. 4, 7,
// 9, 10); magnetic reconnection and Weibel are the other canonical VPIC
// workloads its introduction motivates. Each deck builds a ready-to-run
// Simulation; sizes are parameters so tests use tiny versions and
// examples/benches scale up.
#pragma once

#include "core/simulation.hpp"

namespace vpic::core::decks {

struct LpiParams {
  int nx = 32, ny = 16, nz = 16;
  int ppc = 8;                  // electrons per cell in the slab
  float slab_begin = 0.4f;      // plasma slab (fraction of x extent)
  float slab_end = 1.0f;
  float uth_e = 0.05f;          // electron thermal momentum
  float uth_i = 0.005f;         // ion thermal momentum
  float mi_me = 100.0f;         // reduced ion mass
  float laser_amplitude = 0.1f; // normalized E0
  float laser_omega = 0.9f;     // in plasma-frequency units (underdense)
  int laser_ramp_steps = 20;
  VectorStrategy strategy = VectorStrategy::Auto;
  sort::SortOrder sort_order = sort::SortOrder::Standard;
  int sort_interval = 20;
  std::uint64_t seed = 42;
  ParticleLayout layout = ParticleLayout::AoS;
  // Gaussian particle clumping (docs/TILES.md): scale the per-cell count
  // by 1 + clump_factor * exp(-z~^2 / 2), z~ = distance (in cells) of the
  // cell's z-plane from the slab mid-plane over sigma = an eighth of nz —
  // a pileup plane like a compression front at the critical surface,
  // uniform in x/y. z is the axis the tile decomposition slabs, so the
  // knob dials in a reproducible tile load imbalance.
  // Per-cell weights are divided by the same factor so the *physical*
  // density profile is unchanged — only the computational load clumps,
  // which is what the tile load-balance benches/tests need reproducibly.
  // 0 (default) leaves the deck bitwise identical to before the knob.
  float clump_factor = 0;
};

/// Laser-plasma instability benchmark: plane-wave antenna at the low-x
/// face driving Ey, under-dense electron/ion slab filling the high-x
/// portion of the box.
Simulation make_lpi(const LpiParams& p);

struct ReconnectionParams {
  int nx = 32, ny = 16, nz = 32;
  int ppc = 8;
  float b0 = 0.1f;        // asymptotic field
  float sheet_half_width = 2.0f;  // in cells
  float uth = 0.05f;
  float drift = 0.02f;    // current-sheet drift momentum (+/- for species)
  float perturbation = 0.02f;    // GEM-style island seed amplitude
  VectorStrategy strategy = VectorStrategy::Auto;
  std::uint64_t seed = 43;
};

/// Harris current sheet with a GEM-challenge island perturbation: the
/// magnetic-reconnection scenario (paper Sections 2.1 / 6).
Simulation make_reconnection(const ReconnectionParams& p);

struct WeibelParams {
  int nx = 16, ny = 16, nz = 16;
  int ppc = 16;
  float u_beam = 0.3f;  // counter-streaming drift along z
  float uth = 0.01f;
  VectorStrategy strategy = VectorStrategy::Auto;
  std::uint64_t seed = 44;
};

/// Two counter-streaming electron beams over a neutralizing ion
/// background: grows the Weibel filamentation instability.
Simulation make_weibel(const WeibelParams& p);

}  // namespace vpic::core::decks
