// core/module.cpp — StepComposer composition mechanics (docs/MODULES.md).

#include "core/module.hpp"

#include <algorithm>

namespace vpic::core {

void StepComposer::add(StepPhase p) {
  const std::string name = p.name;
  for (const auto& r : p.reads) resources_.insert(r);
  for (const auto& r : p.writes) resources_.insert(r);
  g_.add_phase(std::move(p));
  if (serial_) {
    if (!last_added_.empty()) g_.add_edge(last_added_, name);
    last_added_ = name;
  }
}

void StepComposer::add_spine(StepPhase p) {
  const std::string name = p.name;
  add(std::move(p));
  if (!serial_) {
    if (!tail_.empty()) g_.add_edge(tail_, name);
    for (const auto& j : pending_)
      if (j != tail_) g_.add_edge(j, name);
  }
  pending_.clear();
  tail_ = name;
}

void StepComposer::add_branch(StepPhase p) {
  const std::string name = p.name;
  add(std::move(p));
  if (!serial_) {
    if (!tail_.empty()) g_.add_edge(tail_, name);
    for (const auto& j : pending_)
      if (j != tail_) g_.add_edge(j, name);
  }
}

void StepComposer::edge(const std::string& before, const std::string& after) {
  if (serial_ || before.empty() || after.empty()) return;
  g_.add_edge(before, after);
}

void StepComposer::join(std::string phase) {
  if (serial_) return;
  if (std::find(pending_.begin(), pending_.end(), phase) == pending_.end())
    pending_.push_back(std::move(phase));
}

}  // namespace vpic::core
