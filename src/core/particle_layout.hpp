// core/particle_layout.hpp
//
// The ParticleLayout policy: how a Species stores its particles in memory.
// The paper's portability argument (Section 2.3, after Cabana and LLAMA)
// is that layout must be a per-container *decision*, not a hard-coded
// struct — the CPU-friendly AoS record, the GPU-coalescing SoA planes, and
// the vector-width-tiled AoSoA compromise are all affine relabelings of
// the same logical (particle, field) array. This header is deliberately
// tiny and dependency-free so both the storage layer (ParticleStore) and
// the tuning layer (core/push_tuning.hpp, src/tune) can name layouts
// without pulling in the engine.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace vpic::core {

enum class ParticleLayout : std::uint8_t {
  AoS,    ///< one packed 32-byte Particle record per particle (seed layout)
  SoA,    ///< one contiguous plane per field
  AoSoA,  ///< SoA within SIMD-width tiles, tiles in particle order
};

inline constexpr ParticleLayout kAllParticleLayouts[] = {
    ParticleLayout::AoS, ParticleLayout::SoA, ParticleLayout::AoSoA};
inline constexpr int kNumParticleLayouts = 3;

inline const char* to_string(ParticleLayout l) noexcept {
  switch (l) {
    case ParticleLayout::AoS:
      return "aos";
    case ParticleLayout::SoA:
      return "soa";
    case ParticleLayout::AoSoA:
      return "aosoa";
  }
  return "?";
}

inline std::optional<ParticleLayout> parse_particle_layout(
    std::string_view s) noexcept {
  if (s == "aos") return ParticleLayout::AoS;
  if (s == "soa") return ParticleLayout::SoA;
  if (s == "aosoa") return ParticleLayout::AoSoA;
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Streaming-traffic accounting (gpusim model + fig benches).
//
// The analytic GPU model charges DRAM traffic per particle touched. How
// many bytes a touch costs depends on the layout, because DRAM moves
// whole transactions:
//
//  * record bytes — a full read-modify-write of one particle (push,
//    sort scatter). All three layouts store the same 8 fields x 4 bytes,
//    so a full touch streams 32 B regardless of where the fields live.
//  * key-read bytes — reading ONLY the cell index (cell_keys extraction,
//    run probing, histogram passes). AoS drags the whole 32 B record
//    through the memory system for its 4 useful bytes (the record fills
//    a transaction-granular stride); SoA and AoSoA keep cell indices
//    densely packed (a dedicated plane / dense lanes within a tile), so a
//    streaming key sweep pays ~4 B per particle.
// ---------------------------------------------------------------------------

/// Bytes streamed per particle for a full-record touch.
inline constexpr int particle_record_bytes(ParticleLayout) noexcept {
  return 32;
}

/// Bytes streamed per particle when only the cell index is read.
inline constexpr int particle_key_read_bytes(ParticleLayout l) noexcept {
  return l == ParticleLayout::AoS ? 32 : 4;
}

}  // namespace vpic::core
