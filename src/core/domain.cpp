#include "core/domain.hpp"

#include <stdexcept>

#include "core/move_p.hpp"
#include "core/rng.hpp"
#include "core/simulation.hpp"  // tune::ensure_initialized forward decl
#include "prof/prof.hpp"

namespace vpic::core {

namespace {

// Tags for the per-step message families.
constexpr int kTagFieldUp = 200;    // plane nz -> next's ghost 0
constexpr int kTagFieldDown = 201;  // plane 1 -> prev's ghost nz+1
constexpr int kTagAccUp = 210;      // plane nz -> next's ghost 0
constexpr int kTagExitUpCount = 220;
constexpr int kTagExitUpData = 221;
constexpr int kTagExitDownCount = 222;
constexpr int kTagExitDownData = 223;

Grid make_local_grid(const DomainConfig& cfg, int nranks, int rank) {
  if (cfg.nz % nranks != 0)
    throw std::invalid_argument(
        "DistributedSimulation: nz must be divisible by the rank count");
  const int nz_local = cfg.nz / nranks;
  Grid g(cfg.nx, cfg.ny, nz_local, cfg.lx, cfg.ly,
         cfg.lz * static_cast<float>(nz_local) / static_cast<float>(cfg.nz),
         cfg.dt);
  if (g.dt <= 0) g.dt = Grid::courant_dt(g.dx, g.dy, g.dz, 0.7f);
  g.z0 = static_cast<float>(rank * nz_local) * g.dz;
  return g;
}

}  // namespace

DistributedSimulation::DistributedSimulation(const DomainConfig& cfg,
                                             mpi::Comm& comm)
    : cfg_(cfg),
      comm_(comm),
      prev_((comm.rank() - 1 + comm.size()) % comm.size()),
      next_((comm.rank() + 1) % comm.size()),
      z_offset_(comm.rank() * (cfg.nz / comm.size())),
      fields_(make_local_grid(cfg, comm.size(), comm.rank())),
      interp_(fields_.grid),
      acc_(fields_.grid) {
  // Same startup calibration hook as Simulation (simulation.hpp) — ranks
  // share the process, so only the first constructor actually probes.
  tune::ensure_initialized();
}

std::size_t DistributedSimulation::add_species(std::string name, float q,
                                               float m,
                                               index_t local_capacity) {
  species_.emplace_back(std::move(name), q, m, local_capacity, cfg_.layout);
  return species_.size() - 1;
}

void DistributedSimulation::load_uniform_plasma(std::size_t species_idx,
                                                int ppc, float uth,
                                                float udx, float udy,
                                                float udz) {
  Species& sp = species_[species_idx];
  const Grid& g = fields_.grid;
  const std::uint64_t seed =
      hash64(cfg_.seed + 0x5eed0000 + species_idx);
  index_t n = sp.np;
  for (int iz = 1; iz <= g.nz; ++iz)
    for (int iy = 1; iy <= g.ny; ++iy)
      for (int ix = 1; ix <= g.nx; ++ix) {
        // Global cell id: identical across decompositions.
        const std::uint64_t gid =
            (static_cast<std::uint64_t>(z_offset_ + iz - 1) *
                 static_cast<std::uint64_t>(cfg_.ny) +
             static_cast<std::uint64_t>(iy - 1)) *
                static_cast<std::uint64_t>(cfg_.nx) +
            static_cast<std::uint64_t>(ix - 1);
        for (int k = 0; k < ppc; ++k) {
          if (n >= sp.capacity())
            throw std::length_error("distributed load: capacity exceeded");
          Particle p;
          const std::uint64_t ctr =
              gid * 1024 + static_cast<std::uint64_t>(k);
          p.dx = static_cast<float>(2.0 * uniform01(seed, 6 * ctr + 0) - 1.0);
          p.dy = static_cast<float>(2.0 * uniform01(seed, 6 * ctr + 1) - 1.0);
          p.dz = static_cast<float>(2.0 * uniform01(seed, 6 * ctr + 2) - 1.0);
          p.i = static_cast<std::int32_t>(g.voxel(ix, iy, iz));
          p.ux = udx + uth * static_cast<float>(normal(seed, 6 * ctr + 3));
          p.uy = udy + uth * static_cast<float>(normal(seed, 6 * ctr + 4));
          p.uz = udz + uth * static_cast<float>(normal(seed, 6 * ctr + 5));
          p.w = 1.0f / static_cast<float>(ppc);
          sp.p.set(n++, p);
        }
      }
  sp.np = n;
}

DistributedSimulation::FieldHalo DistributedSimulation::begin_field_halo() {
  fields_.update_ghosts_periodic(0b011);  // x, y periodic locally
  const std::size_t nf = fields_.plane_floats();
  FieldHalo h;
  h.up.resize(nf);
  h.down.resize(nf);
  h.from_prev.resize(nf);
  h.from_next.resize(nf);
  fields_.pack_z_plane(fields_.grid.nz, h.up.data());  // -> next's ghost 0
  fields_.pack_z_plane(1, h.down.data());  // -> prev's ghost nz+1
  h.recvs[0] = comm_.irecv(prev_, kTagFieldUp, std::span<float>(h.from_prev));
  h.recvs[1] =
      comm_.irecv(next_, kTagFieldDown, std::span<float>(h.from_next));
  comm_.isend(next_, kTagFieldUp, std::span<const float>(h.up));
  comm_.isend(prev_, kTagFieldDown, std::span<const float>(h.down));
  return h;
}

void DistributedSimulation::complete_field_halo(FieldHalo& h) {
  // Drain both receives through the polling interface (wait_any) rather
  // than blocking wait(): requests complete in whichever order the
  // messages land.
  std::vector<mpi::Request> pending(h.recvs.begin(), h.recvs.end());
  while (!pending.empty()) {
    const std::size_t i = mpi::wait_any(std::span<mpi::Request>(pending));
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
  }
  fields_.unpack_z_plane(0, h.from_prev.data());
  fields_.unpack_z_plane(fields_.grid.nz + 1, h.from_next.data());
}

void DistributedSimulation::exchange_field_ghosts() {
  FieldHalo h = begin_field_halo();
  complete_field_halo(h);
}

void DistributedSimulation::exchange_exits(std::vector<ExitRecord>& exits) {
  const Grid& g = fields_.grid;
  // Bounded relay: with a CFL-respecting dt a particle can cross at most a
  // couple of slab faces per step.
  for (int round = 0; round < 8; ++round) {
    std::int64_t outstanding =
        comm_.allreduce(static_cast<std::int64_t>(exits.size()),
                        mpi::ReduceOp::Sum);
    if (outstanding == 0) return;
    exchanged_ += static_cast<std::int64_t>(exits.size());

    std::vector<ExitRecord> up, down;
    for (const auto& e : exits) {
      int ix, iy, iz;
      g.cell_of(e.p.i, ix, iy, iz);
      (iz > g.nz ? up : down).push_back(e);
    }
    exits.clear();

    const auto bytes = [](const std::vector<ExitRecord>& v) {
      return std::span<const ExitRecord>(v);
    };
    std::int64_t n_up = static_cast<std::int64_t>(up.size());
    std::int64_t n_down = static_cast<std::int64_t>(down.size());
    std::int64_t from_prev_n = 0, from_next_n = 0;
    auto rc0 = comm_.irecv(prev_, kTagExitUpCount, from_prev_n);
    auto rc1 = comm_.irecv(next_, kTagExitDownCount, from_next_n);
    comm_.isend(next_, kTagExitUpCount, n_up);
    comm_.isend(prev_, kTagExitDownCount, n_down);
    comm_.isend(next_, kTagExitUpData, bytes(up));
    comm_.isend(prev_, kTagExitDownData, bytes(down));
    rc0.wait();
    rc1.wait();
    std::vector<ExitRecord> from_prev(
        static_cast<std::size_t>(from_prev_n));
    std::vector<ExitRecord> from_next(
        static_cast<std::size_t>(from_next_n));
    comm_.irecv(prev_, kTagExitUpData, std::span<ExitRecord>(from_prev))
        .wait();
    comm_.irecv(next_, kTagExitDownData, std::span<ExitRecord>(from_next))
        .wait();

    // Re-inject and complete the interrupted moves. Records from prev
    // crossed up through its top face: they enter through our plane 1.
    // Records from next crossed down: they enter through our plane nz.
    auto reinject = [&](const ExitRecord& rec, int enter_plane) {
      int ix, iy, iz;
      g.cell_of(rec.p.i, ix, iy, iz);
      (void)iz;
      Particle p = rec.p;
      p.i = static_cast<std::int32_t>(g.voxel(ix, iy, enter_plane));
      // The exit species is the one currently being advanced (the caller
      // loops species sequentially and drains exits per species).
      Species& sp = species_[current_species_];
      float rem[3] = {0, 0, 0};
      const MoveResult r =
          move_p(p, rec.rem[0], rec.rem[1], rec.rem[2], sp.q * p.w, acc_,
                 g, 0b011, rem);
      if (r == MoveResult::Exited) {
        ExitRecord again;
        again.p = p;
        again.rem[0] = rem[0];
        again.rem[1] = rem[1];
        again.rem[2] = rem[2];
        exits.push_back(again);
      } else {
        if (sp.np >= sp.capacity())
          throw std::length_error("reinjection: species capacity exceeded");
        sp.p.set(sp.np++, p);
      }
    };
    for (const auto& rec : from_prev) reinject(rec, 1);
    for (const auto& rec : from_next) reinject(rec, g.nz);
    // Re-injected particles append out of cell order: age the species'
    // sortedness hint so the run-aware push dispatch re-probes.
    if (!from_prev.empty() || !from_next.empty())
      species_[current_species_].mark_order_degraded();
  }
  if (comm_.allreduce(static_cast<std::int64_t>(exits.size()),
                      mpi::ReduceOp::Sum) != 0)
    throw std::runtime_error("particle exchange failed to converge");
}

void DistributedSimulation::step() {
  if (overlap_active()) {
    step_overlapped();
  } else {
    step_fenced();
  }
  ++step_count_;
}

// The reference schedule: every exchange fully fenced before the compute
// that depends on it (and, conservatively, compute that does not).
void DistributedSimulation::step_fenced() {
  prof::ScopedRegion step_region("step");
  exchange_field_ghosts();
  interp_.load(fields_);
  acc_.clear();

  std::vector<ExitRecord> exits;
  std::mutex exits_mutex;
  for (std::size_t s = 0; s < species_.size(); ++s) {
    current_species_ = s;
    MoverOptions opts;
    opts.periodic_mask = 0b011;  // x, y periodic; z decomposed
    opts.exits = &exits;
    opts.exits_mutex = &exits_mutex;
    advance_species(species_[s], interp_, acc_, fields_.grid,
                    cfg_.strategy, opts);
    compact_exited(species_[s]);
    exchange_exits(exits);
  }

  finish_accumulate_and_fields();
}

// Overlapped schedule (docs/ASYNC.md): the leading z-halo exchange is in
// flight while everything halo-independent runs. The interpolator stencil
// for plane iz reads field planes iz and iz+1 only, so planes 1..nz-1
// never touch the z ghosts; cells of those planes hold the "interior"
// particles, whose push therefore cannot read stale halo data. Only the
// plane-nz interpolator load and the push of plane-nz particles wait for
// the halo. Deposit ordering differs from the fenced path (interior runs
// before boundary runs instead of array order), so results match to
// fp-reordering, not bitwise — test_domain's tolerances.
void DistributedSimulation::step_overlapped() {
  prof::ScopedRegion step_region("step");
  const Grid& g = fields_.grid;

  FieldHalo halo = begin_field_halo();

  {
    prof::ScopedRegion r("overlap_window");
    interp_.load_planes(fields_, 1, g.nz - 1);
    acc_.clear();
  }

  // Partition each species' maximal same-cell runs at the boundary plane:
  // voxel = (iz*sy + iy)*sx + ix is monotone in iz, so cells of plane nz
  // are exactly the voxels >= voxel(0, 0, nz). Runs are correct on any
  // particle order (unsorted arrays just degrade to length-1 runs), so
  // the split needs no preceding sort.
  const index_t boundary_begin = g.voxel(0, 0, g.nz);
  std::vector<std::vector<ExitRecord>> exits(species_.size());
  std::vector<std::vector<sort::CellRun>> boundary_runs(species_.size());
  std::mutex exits_mutex;
  {
    prof::ScopedRegion r("interior_push");
    for (std::size_t s = 0; s < species_.size(); ++s) {
      Species& sp = species_[s];
      {
        prof::ScopedRegion seg("segment_runs");
        dispatch_layout(sp.p, [&](auto a) {
          sort::segment_runs(sp.np, [a](index_t i) { return a.cell(i); },
                             sp.push_runs);
        });
      }
      std::vector<sort::CellRun> interior;
      interior.reserve(sp.push_runs.size());
      for (const auto& run : sp.push_runs)
        (run.cell >= boundary_begin ? boundary_runs[s] : interior)
            .push_back(run);
      MoverOptions opts;
      opts.periodic_mask = 0b011;
      opts.exits = &exits[s];
      opts.exits_mutex = &exits_mutex;
      advance_species_runs(sp, interp_, acc_, g, cfg_.strategy, opts,
                           interior);
    }
  }

  complete_field_halo(halo);
  interp_.load_planes(fields_, g.nz, g.nz);

  for (std::size_t s = 0; s < species_.size(); ++s) {
    Species& sp = species_[s];
    current_species_ = s;
    MoverOptions opts;
    opts.periodic_mask = 0b011;
    opts.exits = &exits[s];
    opts.exits_mutex = &exits_mutex;
    {
      prof::ScopedRegion r("boundary_push");
      advance_species_runs(sp, interp_, acc_, g, cfg_.strategy, opts,
                           boundary_runs[s]);
    }
    sp.mark_order_degraded();  // once per step, as advance_species does
    compact_exited(sp);
    exchange_exits(exits[s]);
  }

  finish_accumulate_and_fields();
}

// Shared tail of both schedules: accumulator boundary-plane exchange +
// unload, then the FDTD advance with halo refresh after each sub-step.
void DistributedSimulation::finish_accumulate_and_fields() {
  acc_.reduce_ghosts_periodic();
  // Boundary edges at plane 1 need the previous rank's plane-nz deposits.
  {
    const std::size_t na = acc_.plane_floats();
    std::vector<float> up(na), from_prev(na);
    acc_.pack_z_plane(fields_.grid.nz, up.data());
    auto r = comm_.irecv(prev_, kTagAccUp, std::span<float>(from_prev));
    comm_.isend(next_, kTagAccUp, std::span<const float>(up));
    r.wait();
    acc_.unpack_z_plane(0, from_prev.data());
  }
  acc_.unload(fields_, 0b011);

  fields_.advance_b_half();
  exchange_field_ghosts();
  fields_.advance_e();
  exchange_field_ghosts();
  fields_.advance_b_half();
  // (next step's leading exchange_field_ghosts refreshes the halos)
}

DistributedEnergy DistributedSimulation::energies() {
  // The trailing advance_b_half of step() leaves z-halos stale; refresh so
  // the local integral uses consistent fields (interior-only sums do not
  // strictly need it, but keep the invariant simple).
  exchange_field_ghosts();
  DistributedEnergy e;
  e.field = comm_.allreduce(fields_.field_energy(), mpi::ReduceOp::Sum);
  for (auto& sp : species_)
    e.species.push_back(
        comm_.allreduce(sp.kinetic_energy(), mpi::ReduceOp::Sum));
  return e;
}

std::int64_t DistributedSimulation::global_np(std::size_t species_idx) {
  return comm_.allreduce(
      static_cast<std::int64_t>(species_[species_idx].np),
      mpi::ReduceOp::Sum);
}

}  // namespace vpic::core
