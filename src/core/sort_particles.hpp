// core/sort_particles.hpp
//
// Bridges the PIC engine to the hardware-targeted sorting library
// (Section 3.2): reorders a species' particle array by cell key in the
// order a given SortOrder prescribes. VPIC re-sorts every N steps; the
// Simulation driver calls this on its sort interval, so the pipeline is
// built to be allocation-free in steady state:
//
//  * keys / permutation / histogram buffers live in the species'
//    persistent SortWorkspace (grown geometrically, reused thereafter);
//  * cell keys are bounded by grid.nv(), so the sort is a single-pass
//    counting sort (histogram + scan + stable scatter) rather than a
//    multi-pass radix sort whenever the *measured* dispatch model
//    (core/push_tuning.hpp: active_sort_model(), calibrated by src/tune)
//    says the histogram traffic is cheap relative to np. For AoS the
//    scatter moves the 32-byte particle records directly with no
//    intermediate permutation array; SoA/AoSoA scatter a permutation and
//    gather through the layout accessor (a record is not one contiguous
//    32-byte span there);
//  * the reorder gathers into the species' scratch particle buffer which
//    is then swapped with `p` (ping-pong), eliminating the copy-back pass.
//
// The radix argsort fallback (wide rewritten-key bounds) also runs out of
// the workspace. See docs/SORTING.md for the cost model.
#pragma once

#include "core/particle.hpp"
#include "core/push_tuning.hpp"
#include "prof/prof.hpp"
#include "sort/counting.hpp"
#include "sort/order_checks.hpp"
#include "sort/radix.hpp"
#include "sort/sorters.hpp"

namespace vpic::core {

/// Reorder live particles according to `order`. `tile_sz` feeds the
/// tiled-strided sort (paper: #CPU threads on CPUs, 3x core count on
/// GPUs); ignored for other orders. `key_bound`, when positive, is an
/// exclusive upper bound on the cell keys (pass grid.nv()) and lets the
/// standard order skip its min/max reduce.
inline void sort_particles(Species& sp, sort::SortOrder order,
                           std::uint32_t tile_sz = 0,
                           std::uint64_t seed = 9001,
                           index_t key_bound = 0) {
  const index_t n = sp.np;
  // Sortedness tracking for the run-aware push (docs/PUSH.md): Standard
  // order is exactly the cell-sorted order the fast path exploits; any
  // other order invalidates the hint.
  sp.mark_sorted(order == sort::SortOrder::Standard);
  if (n <= 1) return;
  prof::ScopedRegion region("sort_particles");
  sort::SortWorkspace& ws = sp.sort_ws;
  ws.reserve_pairs(n);
  const int nthreads = pk::DefaultExecSpace::concurrency();

  ParticleStore& scratch = sp.sort_scratch();

  // Layout-generic permutation gather: dst[i] = src[perm[i]]. AoS moves
  // whole records through the raw pointers; SoA/AoSoA go through the
  // accessor pair (still one pass, 8 lane moves per particle).
  auto gather_perm = [&](const char* kernel, const index_t* perm) {
    dispatch_layout(sp.p, [&](auto sa) {
      dispatch_layout(scratch, [&](auto da) {
        pk::parallel_for(kernel, n,
                         [=](index_t i) { da.store(i, sa.load(perm[i])); });
      });
    });
  };

  if (order == sort::SortOrder::Random) {
    // Permutation-only Fisher-Yates (same swap sequence the pair shuffle
    // in sort::random_shuffle performs), then a single gather.
    index_t* const perm = ws.perm.data();
    pk::parallel_for("sort/perm_init", n, [=](index_t i) { perm[i] = i; });
    std::uint64_t state = seed ? seed : 0x9e3779b97f4a7c15ull;
    auto next = [&state]() {
      state ^= state >> 12;
      state ^= state << 25;
      state ^= state >> 27;
      return state * 0x2545f4914f6cdd1dull;
    };
    for (index_t i = n - 1; i > 0; --i) {
      const index_t j =
          static_cast<index_t>(next() % static_cast<std::uint64_t>(i + 1));
      std::swap(perm[i], perm[j]);
    }
    gather_perm("sort/shuffle_gather", perm);
    std::swap(sp.p, sp.p_scratch);
    return;
  }

  sp.cell_keys(ws.keys);
  std::uint32_t* keys = ws.keys.data();
  std::uint32_t* keys_alt = ws.keys_alt.data();

  // Order-specific final keys plus an exclusive bound on them.
  std::uint64_t bound = 0;
  switch (order) {
    case sort::SortOrder::Standard: {
      if (key_bound > 0) {
        bound = static_cast<std::uint64_t>(key_bound);
      } else {
        std::uint32_t mn, mx;
        sort::detail::key_minmax_ptr(keys, n, mn, mx);
        bound = static_cast<std::uint64_t>(mx) + 1;
      }
      break;
    }
    case sort::SortOrder::Strided: {
      std::uint32_t mn, mx;
      sort::detail::key_minmax_ptr(keys, n, mn, mx);
      const index_t span =
          static_cast<index_t>(mx) - static_cast<index_t>(mn) + 1;
      std::uint32_t* counts = ws.reserve_counts(span);
      bound = sort::detail::strided_rewrite(keys, n, mn, mx, counts, keys_alt);
      std::swap(keys, keys_alt);
      break;
    }
    case sort::SortOrder::TiledStrided: {
      std::uint32_t mn, mx;
      sort::detail::key_minmax_ptr(keys, n, mn, mx);
      const index_t span =
          static_cast<index_t>(mx) - static_cast<index_t>(mn) + 1;
      std::uint32_t* counts = ws.reserve_counts(span);
      bound = sort::detail::tiled_rewrite(keys, n, mn, mx, tile_sz, counts,
                                          keys_alt);
      std::swap(keys, keys_alt);
      break;
    }
    case sort::SortOrder::Random:
      break;  // handled above
  }

  // Counting-vs-radix dispatch: the hard applicability limits stay
  // structural inside counting_sort_applicable; the cost crossover is the
  // measured sort::active_sort_model() the autotuner calibrates.
  const bool use_counting = sort::counting_sort_applicable(n, bound, nthreads);
  prof::counter_add(use_counting ? "sort.dispatch.counting"
                                 : "sort.dispatch.radix");

  if (use_counting) {
    const index_t b = static_cast<index_t>(bound);
    index_t* offsets =
        ws.reserve_histogram(sort::detail::counting_hist_cells(nthreads, b));
    sort::detail::counting_offsets(keys, n, b, offsets, nthreads);
    if (sp.p.layout() == ParticleLayout::AoS &&
        scratch.layout() == ParticleLayout::AoS) {
      // One-pass counting sort scattering the particle records directly:
      // no permutation array, no copy-back.
      sort::detail::counting_scatter(keys, sp.p.data(), n, b, offsets,
                                     nthreads, scratch.data());
    } else {
      // Non-contiguous record layouts: scatter the permutation, then one
      // accessor gather.
      index_t* const perm = ws.perm.data();
      sort::detail::counting_scatter_index(keys, n, b, offsets, nthreads,
                                           perm);
      gather_perm("sort/counting_gather", perm);
    }
  } else {
    // General fallback: radix argsort out of the workspace buffers, then
    // one gather of the particle records.
    index_t* const perm = ws.perm.data();
    pk::parallel_for("sort/perm_init", n, [=](index_t i) { perm[i] = i; });
    const int passes =
        sort::detail::passes_for(bound > 0 ? bound - 1 : std::uint64_t{0});
    index_t* offsets =
        ws.reserve_histogram(static_cast<std::size_t>(nthreads) * 256);
    sort::detail::radix_passes(keys, perm, keys_alt, ws.perm_alt.data(), n,
                               passes, offsets, nthreads);
    gather_perm("sort/radix_gather", perm);
  }
  std::swap(sp.p, sp.p_scratch);
}

}  // namespace vpic::core
