// core/sort_particles.hpp
//
// Bridges the PIC engine to the hardware-targeted sorting library
// (Section 3.2): reorders a species' particle array by cell key in the
// order a given SortOrder prescribes. VPIC re-sorts every N steps; the
// Simulation driver calls this on its sort interval.
#pragma once

#include "core/particle.hpp"
#include "sort/order_checks.hpp"
#include "sort/radix.hpp"
#include "sort/sorters.hpp"

namespace vpic::core {

/// Reorder live particles according to `order`. `tile_sz` feeds the
/// tiled-strided sort (paper: #CPU threads on CPUs, 3x core count on
/// GPUs); ignored for other orders.
inline void sort_particles(Species& sp, sort::SortOrder order,
                           std::uint32_t tile_sz = 0,
                           std::uint64_t seed = 9001) {
  if (sp.np <= 1) return;
  pk::View<std::uint32_t, 1> keys = sp.cell_keys();

  // Build the permutation the chosen order induces, then apply it to the
  // 32-byte particle records in one pass.
  pk::View<pk::index_t, 1> perm("sort_perm", sp.np);
  pk::parallel_for(sp.np, [&](pk::index_t i) { perm(i) = i; });

  switch (order) {
    case sort::SortOrder::Random:
      sort::random_shuffle(keys, perm, seed);
      break;
    case sort::SortOrder::Standard:
      sort::sort_by_key(keys, perm);
      break;
    case sort::SortOrder::Strided: {
      pk::View<std::uint32_t, 1> nk = sort::make_strided_keys(keys);
      sort::sort_by_key(nk, perm);
      break;
    }
    case sort::SortOrder::TiledStrided: {
      pk::View<std::uint32_t, 1> nk =
          sort::make_tiled_strided_keys(keys, tile_sz);
      sort::sort_by_key(nk, perm);
      break;
    }
  }

  pk::View<Particle, 1> reordered("particles_sorted", sp.np);
  pk::parallel_for(sp.np, [&](pk::index_t i) { reordered(i) = sp.p(perm(i)); });
  pk::parallel_for(sp.np, [&](pk::index_t i) { sp.p(i) = reordered(i); });
}

}  // namespace vpic::core
