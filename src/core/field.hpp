// core/field.hpp
//
// Electromagnetic field storage on the Yee mesh plus the FDTD Maxwell
// update. Layout follows VPIC: per-voxel field records in flat Views,
// with E components on edges, B components on faces, and current density J
// accumulated on E locations. The solver is the standard leapfrog:
// advance_b half-step, advance_e full step (with J), advance_b half-step.
#pragma once

#include <cstdint>

#include "core/grid.hpp"
#include "pk/pk.hpp"

namespace vpic::core {

struct FieldArray {
  Grid grid;
  // Yee-staggered components, one value per voxel (flat storage).
  pk::View<float, 1> ex, ey, ez;  // edge-centered E
  pk::View<float, 1> bx, by, bz;  // face-centered B
  pk::View<float, 1> jx, jy, jz;  // edge-centered current density

  explicit FieldArray(const Grid& g)
      : grid(g),
        ex("ex", g.nv()),
        ey("ey", g.nv()),
        ez("ez", g.nv()),
        bx("bx", g.nv()),
        by("by", g.nv()),
        bz("bz", g.nv()),
        jx("jx", g.nv()),
        jy("jy", g.nv()),
        jz("jz", g.nv()) {}

  void clear_j() {
    pk::deep_copy(jx, 0.0f);
    pk::deep_copy(jy, 0.0f);
    pk::deep_copy(jz, 0.0f);
  }

  /// B -= (c dt/2) curl E   (half-step magnetic update; interior only —
  /// callers refresh ghosts afterwards, locally or via rank exchange).
  void advance_b_half();

  /// E += c^2 dt curl B - dt J / eps0   (full-step electric update;
  /// interior only, see advance_b_half).
  void advance_e();

  /// Copy periodic ghost layers for E and B on the selected axes
  /// (bit 0 = x, 1 = y, 2 = z). Rank-decomposed axes are excluded and
  /// exchanged by the domain driver instead.
  void update_ghosts_periodic(std::uint8_t axis_mask = 0b111);

  /// Pack / unpack one z-plane of all six field components (for the
  /// distributed halo exchange). The plane buffer holds 6 * sx * sy
  /// floats in (component, iy, ix) order.
  [[nodiscard]] std::size_t plane_floats() const {
    return 6u * static_cast<std::size_t>(grid.sx()) *
           static_cast<std::size_t>(grid.sy());
  }
  void pack_z_plane(int iz, float* buf) const;
  void unpack_z_plane(int iz, const float* buf);

  /// Total field energy (sum over interior cells of (E^2 + B^2)/2 dV).
  [[nodiscard]] double field_energy() const;
};

}  // namespace vpic::core
