// core/push.hpp
//
// The VPIC particle push (advance_p): field gather + Boris momentum update
// + position move with charge-conserving current deposition — implemented
// four times with the paper's four vectorization strategies (Sections
// 3.1/4.2):
//
//   Auto    — plain loop written against the portability layer; the
//             iteration loop carries Kokkos' internal #pragma ivdep and the
//             compiler's heuristics decide (the VPIC 2.0 baseline).
//   Guided  — kernel split into a forced-vectorized (#pragma omp simd)
//             compute phase and a scalar mover phase, plus developer
//             knowledge of which math blocks vectorization.
//   Manual  — compute phase written with the portable SIMD library
//             (vpic::simd), transposing AoS particle blocks in registers.
//   AdHoc   — compute phase written with the per-ISA intrinsics library
//             (vpic::v4), VPIC 1.2 style.
//
// All four produce the same physics (bitwise for Auto vs Guided up to
// fp-contraction; within a few ulp for Manual/AdHoc, which reassociate).
//
// On cell-sorted particles (Standard order) the Auto/Guided/Manual
// strategies additionally have *run-aware* variants (docs/PUSH.md): the
// array is segmented into maximal same-cell runs (sort/runs.hpp), each
// run broadcasts its cell's interpolator record once instead of gathering
// it per lane, and accumulates its current into a stack-local record that
// is deposited with one batch of atomics per run instead of twelve per
// particle. Cell-crossing particles fall back to the exact move_p path,
// so the run-aware variants are correct on any particle order and merely
// fast on sorted ones. advance_species auto-dispatches using the species'
// sortedness tracking plus a sampled run probe.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "core/accumulator.hpp"
#include "core/grid.hpp"
#include "core/interpolator.hpp"
#include "core/particle.hpp"
#include "sort/runs.hpp"

namespace vpic::core {

enum class VectorStrategy : std::uint8_t { Auto, Guided, Manual, AdHoc };

inline const char* to_string(VectorStrategy s) noexcept {
  switch (s) {
    case VectorStrategy::Auto:
      return "auto";
    case VectorStrategy::Guided:
      return "guided";
    case VectorStrategy::Manual:
      return "manual";
    case VectorStrategy::AdHoc:
      return "ad hoc";
  }
  return "?";
}

/// Which push pipeline advance_species runs.
///   AutoDetect — run-aware when the species' sortedness tracking and the
///                sampled run probe say cell runs are long enough to pay
///                for the per-run overhead; generic otherwise.
///   Generic    — always the per-particle strategy kernels (the paper's
///                Fig. 4 baselines).
///   RunAware   — force the run-aware variant (AdHoc has none and stays
///                generic). Correct on any order; fast on sorted input.
enum class PushPath : std::uint8_t { AutoDetect, Generic, RunAware };

inline const char* to_string(PushPath p) noexcept {
  switch (p) {
    case PushPath::AutoDetect:
      return "auto-detect";
    case PushPath::Generic:
      return "generic";
    case PushPath::RunAware:
      return "run-aware";
  }
  return "?";
}

/// A particle that crossed a non-periodic domain face mid-move: shipped to
/// the neighbor rank together with its unfinished displacement (VPIC's
/// mover record).
struct ExitRecord {
  Particle p;       // sitting in the ghost cell it crossed into
  float rem[3];     // remaining cell-local displacement
};

/// Boundary behaviour of the mover within advance_species.
struct MoverOptions {
  std::uint8_t periodic_mask = 0b111;        // wrap per axis (x,y,z bits)
  std::uint8_t reflect_mask = 0b000;         // reflecting walls per axis
                                             // (wins over periodic_mask)
  std::vector<ExitRecord>* exits = nullptr;  // where exiting particles go
  std::mutex* exits_mutex = nullptr;         // guards `exits` under OpenMP
};

/// Advance all particles of `sp` one step: gather fields from `interp`,
/// Boris-rotate momenta, move with current deposition into `acc`.
/// With default options all boundaries are periodic (single-rank mode);
/// the multi-rank driver passes a mask and an exit queue, and exited
/// particles are removed from `sp` (their slot is marked with i = -1 and
/// compacted by compact_exited()).
///
/// `path` selects the pipeline (see PushPath); the return value is the
/// pipeline actually taken (Generic or RunAware), which AutoDetect
/// resolves per call from the species' sortedness state.
///
/// Throws std::logic_error when opts.exits is set without opts.exits_mutex
/// while the default execution space is concurrent: the unlocked
/// push_back from parallel mover lanes would be a data race.
PushPath advance_species(Species& sp, const InterpolatorArray& interp,
                         AccumulatorArray& acc, const Grid& g,
                         VectorStrategy strategy,
                         const MoverOptions& opts = {},
                         PushPath path = PushPath::AutoDetect);

/// Push exactly the particles covered by `runs` (maximal same-cell
/// segments from sort::segment_runs) with the run-aware kernel of
/// `strategy`. This is the building block of the overlapped distributed
/// step: the caller partitions the run list at the subdomain boundary and
/// pushes interior runs while the halo exchange is in flight, then the
/// boundary runs once it lands. Unlike advance_species this does NOT age
/// the species' sortedness hint — the caller does that once after all
/// partial pushes of the step.
///
/// Throws std::invalid_argument for VectorStrategy::AdHoc (it has no
/// run-aware variant; callers fall back to the fenced path) and the same
/// std::logic_error as advance_species for an unguarded exit queue.
void advance_species_runs(Species& sp, const InterpolatorArray& interp,
                          AccumulatorArray& acc, const Grid& g,
                          VectorStrategy strategy, const MoverOptions& opts,
                          const std::vector<sort::CellRun>& runs);

/// The AutoDetect heuristic, exposed for tests and benches: true when the
/// species' sortedness tracking (fresh or recently-stale cell-sorted hint)
/// plus a sampled run probe predict the run-aware path will pay off.
[[nodiscard]] bool run_aware_profitable(const Species& sp);

// ----------------------------------------------------------------------
// Tile-task entry points (core/tiles.hpp, docs/TILES.md). A tile task
// pushes its contiguous index range SERIALLY on whichever worker the
// stealing scheduler lands it on — parallelism comes from tiles, not from
// lanes inside a tile — and deposits either into the global
// AccumulatorArray (deterministic sequential mode: bit-identical to the
// untiled kernels for the per-particle-independent Auto/Guided
// strategies) or into a tile-private TileAccumulator block (stealing
// mode: plain non-atomic adds, merged deterministically afterwards).
// None of these age the species' sortedness — the step driver does that
// once per step, per tile.
// ----------------------------------------------------------------------

class TileAccumulator;

/// Serial generic push of particles [n0, n1). Auto/Guided reproduce the
/// untiled kernels bit for bit on the same iteration order; Manual blocks
/// W-wide lanes from n0 (few-ulp vs untiled when n0 is not lane-aligned);
/// AdHoc runs the scalar pipeline (its 4-wide transpose path is not
/// range-rebasable).
void advance_range_serial(Species& sp, const InterpolatorArray& interp,
                          AccumulatorArray& acc, const Grid& g,
                          VectorStrategy strategy, const MoverOptions& opts,
                          index_t n0, index_t n1);
void advance_range_serial(Species& sp, const InterpolatorArray& interp,
                          TileAccumulator& acc, const Grid& g,
                          VectorStrategy strategy, const MoverOptions& opts,
                          index_t n0, index_t n1);

/// Serial run-aware push of runs [r0, r1) of `runs` (same per-run bodies
/// as the parallel variants, executed in run order). AdHoc throws like
/// advance_species_runs.
void advance_runs_serial(Species& sp, const InterpolatorArray& interp,
                         AccumulatorArray& acc, const Grid& g,
                         VectorStrategy strategy, const MoverOptions& opts,
                         const std::vector<sort::CellRun>& runs,
                         std::size_t r0, std::size_t r1);
void advance_runs_serial(Species& sp, const InterpolatorArray& interp,
                         TileAccumulator& acc, const Grid& g,
                         VectorStrategy strategy, const MoverOptions& opts,
                         const std::vector<sort::CellRun>& runs,
                         std::size_t r0, std::size_t r1);

/// Per-tile AutoDetect gate: run_aware_profitable evaluated on the
/// subrange [n0, n1) with the tile's own sortedness state (per-tile
/// staleness is what makes per-tile dispatch differ from global — a busy
/// tile churning does not veto a quiet tile's fast path, and a sparse
/// tile below min_particles falls back to generic on its own).
[[nodiscard]] bool run_aware_profitable_range(const Species& sp, index_t n0,
                                              index_t n1, bool sorted_hint,
                                              int steps_since_sort);

/// Remove particles marked exited (i < 0), preserving order of survivors.
/// Returns the number removed.
index_t compact_exited(Species& sp);

}  // namespace vpic::core
