// core/accumulator.hpp
//
// VPIC-style current accumulator: per-cell 12-float records (4 edge values
// per current component) that the push kernel scatters into with atomic
// adds, unloaded into the Yee J arrays once per step. This 48-byte record
// is the scatter target whose contention behaviour the sorting study
// measures (Figs. 5b/6b/7).
#pragma once

#include <cstdint>

#include "core/field.hpp"
#include "core/grid.hpp"
#include "pk/pk.hpp"

namespace vpic::core {

struct Accumulator {
  float jx[4];  // x-current at the four x-edges: (y-,z-),(y+,z-),(y-,z+),(y+,z+)
  float jy[4];  // y-current at the four y-edges: (z-,x-),(z+,x-),(z-,x+),(z+,x+)
  float jz[4];  // z-current at the four z-edges: (x-,y-),(x+,y-),(x-,y+),(x+,y+)
};
static_assert(sizeof(Accumulator) == 12 * sizeof(float));

struct AccumulatorArray {
  Grid grid;
  pk::View<Accumulator, 1> a;

  explicit AccumulatorArray(const Grid& g)
      : grid(g), a("accumulator", g.nv()) {}

  void clear() {
    float* raw = reinterpret_cast<float*>(a.data());
    pk::parallel_for(a.size() * 12, [raw](index_t i) { raw[i] = 0.0f; });
  }

  /// Fold ghost-cell accumulation back into the periodic interior (the
  /// mover deposits into ghost voxels when a segment ends exactly on a
  /// domain face).
  void reduce_ghosts_periodic();

  /// Unload into the field's Yee current arrays:
  /// jx(edge i,j,k) = cx * [ a(i,j,k).jx[0] + a(i,j-1,k).jx[1]
  ///                       + a(i,j,k-1).jx[2] + a(i,j-1,k-1).jx[3] ]
  /// (and cyclic permutations), cx converting accumulated charge-
  /// displacement into current density. On wrapped axes (wrap_mask bit
  /// set) the "-1" neighbors of the first plane are the periodic images;
  /// on decomposed axes they are the ghost cells, which the domain driver
  /// fills from the neighbor rank beforehand.
  void unload(FieldArray& f, std::uint8_t wrap_mask = 0b111) const;

  /// Pack / unpack one z-plane of accumulator records (12 floats each),
  /// for the distributed unload exchange.
  [[nodiscard]] std::size_t plane_floats() const {
    return 12u * static_cast<std::size_t>(grid.sx()) *
           static_cast<std::size_t>(grid.sy());
  }
  void pack_z_plane(int iz, float* buf) const;
  void unpack_z_plane(int iz, const float* buf);
};

/// Deposit one within-cell motion segment into an accumulator record.
/// (mx,my,mz): segment midpoint in cell-local coords; (ux,uy,uz): segment
/// displacement in cell-local units; qw = particle charge * weight.
/// This is VPIC's ACCUMULATE_J form, including the uy*uz/3 correction term
/// that makes the deposit exactly charge-conserving.
inline void accumulate_j(Accumulator& acc, float qw, float mx, float my,
                         float mz, float ux, float uy, float uz,
                         bool atomic = true) {
  const float one = 1.0f;
  // Shared charge-conservation correction (VPIC's v5): the covariance of
  // the two transverse trilinear weights along the straight segment. With
  // displacements expressed over the full [-1, 1] cell span the exact
  // coefficient is 1/12 (VPIC spells it 1/3 because its accumulate uses
  // half-displacements). The same q*ux*uy*uz/12 enters all three
  // components' deposits with the (+,-,-,+) sign pattern.
  const float v5 = qw * ux * uy * uz * (1.0f / 12.0f);

  auto dep = [&](float* j, float disp, float ma, float mb) {
    // disp: segment displacement along this component; (ma, mb): segment
    // midpoint offsets in the two transverse directions.
    const float f = qw * disp;
    float v0 = f * (one - ma) * (one - mb) + v5;
    float v1 = f * (one + ma) * (one - mb) - v5;
    float v2 = f * (one - ma) * (one + mb) - v5;
    float v3 = f * (one + ma) * (one + mb) + v5;
    if (atomic) {
      pk::atomic_add(&j[0], v0);
      pk::atomic_add(&j[1], v1);
      pk::atomic_add(&j[2], v2);
      pk::atomic_add(&j[3], v3);
    } else {
      j[0] += v0;
      j[1] += v1;
      j[2] += v2;
      j[3] += v3;
    }
  };
  dep(acc.jx, ux, my, mz);
  dep(acc.jy, uy, mz, mx);
  dep(acc.jz, uz, mx, my);
}

}  // namespace vpic::core
