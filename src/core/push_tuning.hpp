// core/push_tuning.hpp
//
// Single source of truth for the hot-path dispatch parameters. Before this
// header existed, kBlock = 256 and the vector widths W = 8 / W = 4 were
// re-declared four times across core/push.cpp, and the AutoDetect push
// gates plus the counting-vs-radix crossover were hand-picked literals
// buried in core/push.cpp and sort/counting.hpp. Now:
//
//  * the *structural* constants (block size, kernel vector widths, AoSoA
//    tile width) are named once here, and
//  * the *measured* dispatch models (PushGates, SortDispatchModel) live in
//    mutable process-wide registries, seeded with the legacy defaults and
//    overwritten at startup by the autotuner (src/tune) with probe-derived
//    values per host and per particle layout.
//
// Header-only and dependency-free (core/particle_layout.hpp only) so the
// sort library, the push engine and the tuner can all read the same
// registries without layering cycles: core depends on nothing here, tune
// depends on core and *writes* these registries.
#pragma once

#include <algorithm>
#include <cstdint>

#include "core/particle_layout.hpp"
#include "pk/layout.hpp"
#include "sort/dispatch_model.hpp"

namespace vpic::core {

using pk::index_t;

// ---------------------------------------------------------------------------
// Structural constants (compile-time; not autotuned).
// ---------------------------------------------------------------------------

/// Particles per guided-strategy block: large enough to amortize the
/// per-block `omp simd` prologue, small enough to stay in L1 alongside the
/// interpolator lines it touches.
inline constexpr index_t kPushBlock = 256;

/// Lane count of the manual (simd::simd) push kernels. Fixed at 8 floats —
/// one AVX2 register, two SSE/NEON registers — matching the 8-field
/// particle record so the 8x8 load_transpose is square.
inline constexpr int kManualVecWidth = 8;

/// Lane count of the ad hoc (v4-intrinsics-style) kernel: the historical
/// VPIC 1.2 four-wide pipeline.
inline constexpr int kAdHocVecWidth = 4;

/// AoSoA tile width: lanes of one field stored contiguously per tile.
/// Equal to kManualVecWidth so a tile row feeds the manual kernel's
/// registers with plain dense loads (no transpose).
inline constexpr int kAosoaTileWidth = kManualVecWidth;

// ---------------------------------------------------------------------------
// Measured dispatch models (runtime; autotuned).
// ---------------------------------------------------------------------------

/// Gates for PushPath::AutoDetect: run-aware push is chosen when the
/// species has at least `min_particles`, was cell-sorted at most
/// `max_stale` steps ago, and the probed mean same-cell run length is at
/// least `min_mean_run`. The defaults are the legacy hand-picked values;
/// the autotuner replaces them with probe-derived ones per layout.
struct PushGates {
  index_t min_particles = 512;
  int max_stale = 64;
  double min_mean_run = 4.0;
};

/// The counting-vs-radix sort cost model lives with the sort library
/// (sort/dispatch_model.hpp) so sort_by_key shares it; re-exported here
/// because the tuner treats it as one registry set with the push gates.
using sort::SortDispatchModel;
using sort::active_sort_model;

/// Process-wide active push gates, one slot per particle layout. The
/// engine reads these on every AutoDetect dispatch; the autotuner (or a
/// test pinning behavior) writes them.
inline PushGates& active_push_gates(ParticleLayout l) noexcept {
  static PushGates gates[kNumParticleLayouts] = {};
  return gates[static_cast<int>(l)];
}

/// Reset all registries to the built-in defaults (test hygiene; also the
/// fallback when the tune cache is corrupt).
inline void reset_tuning_defaults() noexcept {
  for (ParticleLayout l : kAllParticleLayouts)
    active_push_gates(l) = PushGates{};
  active_sort_model() = SortDispatchModel{};
}

}  // namespace vpic::core
