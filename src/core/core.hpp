// core/core.hpp — umbrella header for the PIC engine.
#pragma once

#include "core/accumulator.hpp"
#include "core/decks.hpp"
#include "core/diagnostics.hpp"
#include "core/domain.hpp"
#include "core/field.hpp"
#include "core/grid.hpp"
#include "core/interpolator.hpp"
#include "core/move_p.hpp"
#include "core/particle.hpp"
#include "core/push.hpp"
#include "core/rng.hpp"
#include "core/simulation.hpp"
#include "core/sort_particles.hpp"
