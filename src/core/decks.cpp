#include "core/decks.hpp"

#include <cmath>

#include "core/rng.hpp"

namespace vpic::core::decks {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Append `ppc` particles of species `sp` into cell voxel `v`, uniformly
/// placed, Maxwellian with thermal spread `uth` and drift (udx,udy,udz),
/// each with statistical weight `weight` (so the cell's added density is
/// ppc * weight).
void fill_cell(Species& sp, const Grid& g, index_t v, int ppc, float weight,
               float uth, float udx, float udy, float udz,
               std::uint64_t seed) {
  (void)g;
  for (int k = 0; k < ppc; ++k) {
    Particle p;
    const std::uint64_t ctr =
        static_cast<std::uint64_t>(v) * 4096 + static_cast<std::uint64_t>(k);
    p.dx = static_cast<float>(2.0 * uniform01(seed, 6 * ctr + 0) - 1.0);
    p.dy = static_cast<float>(2.0 * uniform01(seed, 6 * ctr + 1) - 1.0);
    p.dz = static_cast<float>(2.0 * uniform01(seed, 6 * ctr + 2) - 1.0);
    p.i = static_cast<std::int32_t>(v);
    p.ux = udx + uth * static_cast<float>(normal(seed, 6 * ctr + 3));
    p.uy = udy + uth * static_cast<float>(normal(seed, 6 * ctr + 4));
    p.uz = udz + uth * static_cast<float>(normal(seed, 6 * ctr + 5));
    p.w = weight;
    if (sp.np >= sp.capacity())
      throw std::length_error("deck: species capacity exceeded");
    sp.p.set(sp.np++, p);
  }
}

}  // namespace

Simulation make_lpi(const LpiParams& p) {
  SimulationConfig cfg;
  const float dxc = 0.5f;  // cell size in c/wp
  cfg.grid = Grid(p.nx, p.ny, p.nz, dxc * static_cast<float>(p.nx),
                  dxc * static_cast<float>(p.ny),
                  dxc * static_cast<float>(p.nz),
                  Grid::courant_dt(dxc, dxc, dxc));
  cfg.strategy = p.strategy;
  cfg.sort_order = p.sort_order;
  cfg.sort_interval = p.sort_interval;
  cfg.seed = p.seed;
  cfg.layout = p.layout;
  Simulation sim(cfg);

  const Grid& g = sim.grid();
  const int x_begin = 1 + static_cast<int>(p.slab_begin * p.nx);
  const int x_end = static_cast<int>(p.slab_end * p.nx);

  // Gaussian clumping (LpiParams::clump_factor): per-cell particle count
  // scaled up near the slab center, per-particle weight scaled down by
  // the same factor, so physical density stays uniform while the
  // computational load clumps. At clump_factor == 0 this reduces exactly
  // to the flat ppc the deck always had.
  const double cz = 0.5 * (1 + p.nz);
  // The clump is a Gaussian pileup *plane* at the slab mid-plane (sigma =
  // an eighth of nz), uniform in x/y — the shape of a compression front
  // at the critical surface. Concentrating along z only is deliberate:
  // it's the axis the tile decomposition slabs, so the knob dials in a
  // reproducible tile load imbalance without changing the x/y profile.
  const double sz = std::max(1.0, p.nz / 8.0);
  auto cell_ppc = [&](int, int, int iz) {
    if (p.clump_factor <= 0) return p.ppc;
    const double zt = (iz - cz) / sz;
    const double boost = 1.0 + p.clump_factor * std::exp(-0.5 * zt * zt);
    return std::max(1, static_cast<int>(std::lround(p.ppc * boost)));
  };

  // Capacity pre-pass: the clumped counts are deterministic, so size the
  // stores exactly instead of guessing a headroom factor.
  index_t total = 0;
  for (int iz = 1; iz <= g.nz; ++iz)
    for (int iy = 1; iy <= g.ny; ++iy)
      for (int ix = x_begin; ix <= x_end; ++ix)
        total += cell_ppc(ix, iy, iz);
  const index_t cap = total + 64;
  const std::size_t ele = sim.add_species("electron", -1.0f, 1.0f, cap);
  const std::size_t ion = sim.add_species("ion", 1.0f, p.mi_me, cap);

  for (int iz = 1; iz <= g.nz; ++iz)
    for (int iy = 1; iy <= g.ny; ++iy)
      for (int ix = x_begin; ix <= x_end; ++ix) {
        const index_t v = g.voxel(ix, iy, iz);
        const int nc = cell_ppc(ix, iy, iz);
        const float w = 1.0f / static_cast<float>(nc);
        fill_cell(sim.species(ele), g, v, nc, w, p.uth_e, 0, 0, 0,
                  hash64(p.seed + 1));
        fill_cell(sim.species(ion), g, v, nc, w, p.uth_i, 0, 0, 0,
                  hash64(p.seed + 2));
      }

  // Laser antenna: drive Ey on the low-x face with a ramped sine.
  const float amp = p.laser_amplitude;
  const float omega = p.laser_omega;
  const int ramp = p.laser_ramp_steps;
  sim.set_injection_hook([amp, omega, ramp](Simulation& s) {
    Grid& g2 = s.grid();
    const auto t = static_cast<float>(s.step_count()) * g2.dt;
    float envelope = 1.0f;
    if (ramp > 0) {
      const float r = static_cast<float>(s.step_count()) /
                      static_cast<float>(ramp);
      envelope = r < 1.0f ? r : 1.0f;
    }
    const float drive = amp * envelope *
                        std::sin(omega * t);
    auto& ey = s.fields().ey;
    for (int iz = 1; iz <= g2.nz; ++iz)
      for (int iy = 1; iy <= g2.ny; ++iy)
        ey(g2.voxel(1, iy, iz)) = drive;
    s.fields().update_ghosts_periodic();
  });
  return sim;
}

Simulation make_reconnection(const ReconnectionParams& p) {
  SimulationConfig cfg;
  const float dxc = 0.5f;
  cfg.grid = Grid(p.nx, p.ny, p.nz, dxc * static_cast<float>(p.nx),
                  dxc * static_cast<float>(p.ny),
                  dxc * static_cast<float>(p.nz),
                  Grid::courant_dt(dxc, dxc, dxc));
  cfg.strategy = p.strategy;
  cfg.seed = p.seed;
  Simulation sim(cfg);

  const auto cap = cfg.grid.interior_cells() * p.ppc + 64;
  const std::size_t ele = sim.add_species("electron", -1.0f, 1.0f, cap);
  const std::size_t ion = sim.add_species("ion", 1.0f, 25.0f, cap);

  Grid& g = sim.grid();
  const float zc = 0.5f * static_cast<float>(p.nz);
  const float L = p.sheet_half_width;

  // Harris field: Bx(z) = b0 * tanh((z - zc)/L), plus a GEM island
  // perturbation derived from psi = pert*b0*cos(2 pi x/Lx)*cos(pi z/Lz).
  auto& f = sim.fields();
  for (int iz = 1; iz <= g.nz; ++iz)
    for (int iy = 1; iy <= g.ny; ++iy)
      for (int ix = 1; ix <= g.nx; ++ix) {
        const index_t v = g.voxel(ix, iy, iz);
        const float z = (static_cast<float>(iz) - 0.5f) - zc;
        const float x = static_cast<float>(ix) - 0.5f;
        f.bx(v) = p.b0 * std::tanh(z / L);
        const float kx = static_cast<float>(2.0 * kPi) /
                         static_cast<float>(g.nx);
        const float kz = static_cast<float>(kPi) / static_cast<float>(g.nz);
        // delta B = curl(psi y-hat): dBx = -dpsi/dz, dBz = dpsi/dx.
        f.bx(v) += p.perturbation * p.b0 * kz * std::cos(kx * x) *
                   std::sin(kz * (z + zc));
        f.bz(v) -= p.perturbation * p.b0 * kx * std::sin(kx * x) *
                   std::cos(kz * (z + zc));
      }
  f.update_ghosts_periodic();

  // Current-sheet drift localized as sech^2((z-zc)/L); electrons and ions
  // drift oppositely along y to carry the Harris current.
  for (int iz = 1; iz <= g.nz; ++iz) {
    const float z = (static_cast<float>(iz) - 0.5f) - zc;
    const float sech = 1.0f / std::cosh(z / L);
    const float drift = p.drift * sech * sech;
    for (int iy = 1; iy <= g.ny; ++iy)
      for (int ix = 1; ix <= g.nx; ++ix) {
        const index_t v = g.voxel(ix, iy, iz);
        const float w = 1.0f / static_cast<float>(p.ppc);
        fill_cell(sim.species(ele), g, v, p.ppc, w, p.uth, 0, -drift, 0,
                  hash64(p.seed + 1));
        fill_cell(sim.species(ion), g, v, p.ppc, w, p.uth * 0.2f, 0, drift,
                  0, hash64(p.seed + 2));
      }
  }
  return sim;
}

Simulation make_weibel(const WeibelParams& p) {
  SimulationConfig cfg;
  const float dxc = 0.5f;
  cfg.grid = Grid(p.nx, p.ny, p.nz, dxc * static_cast<float>(p.nx),
                  dxc * static_cast<float>(p.ny),
                  dxc * static_cast<float>(p.nz),
                  Grid::courant_dt(dxc, dxc, dxc));
  cfg.strategy = p.strategy;
  cfg.seed = p.seed;
  Simulation sim(cfg);

  const auto cap = cfg.grid.interior_cells() * p.ppc + 64;
  const std::size_t ele = sim.add_species("electron", -1.0f, 1.0f, cap);
  const std::size_t ion = sim.add_species("ion", 1.0f, 1836.0f, cap);

  Grid& g = sim.grid();
  const int half = p.ppc / 2;
  for (int iz = 1; iz <= g.nz; ++iz)
    for (int iy = 1; iy <= g.ny; ++iy)
      for (int ix = 1; ix <= g.nx; ++ix) {
        const index_t v = g.voxel(ix, iy, iz);
        const float w = 1.0f / static_cast<float>(p.ppc);
        fill_cell(sim.species(ele), g, v, half, w, p.uth, 0, 0, p.u_beam,
                  hash64(p.seed + 1));
        fill_cell(sim.species(ele), g, v, p.ppc - half, w, p.uth, 0, 0,
                  -p.u_beam, hash64(p.seed + 2));
        fill_cell(sim.species(ion), g, v, p.ppc, w, p.uth * 0.05f, 0, 0, 0,
                  hash64(p.seed + 3));
      }
  return sim;
}

}  // namespace vpic::core::decks
