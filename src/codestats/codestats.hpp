// codestats/codestats.hpp
//
// Source-tree statistics for the Fig. 1 reproduction: VPIC 1.2 dedicates
// 57% of its code to a per-ISA SIMD library while only 11% implements the
// physics kernels. This module scans a source tree, classifies files into
// the paper's categories (per-ISA SIMD support, portable-SIMD, kernels,
// other), and counts effective lines (non-blank, non-comment) — applied to
// this repository's own `v4` library it demonstrates the same duplication
// structurally; the paper's measured VPIC 1.2 breakdown is embedded as
// reference data.
#pragma once

#include <filesystem>
#include <map>
#include <string>
#include <vector>

namespace vpic::codestats {

struct FileStats {
  std::string path;
  std::string category;  // e.g. "simd:AVX2", "kernel", "other"
  int code_lines = 0;
  int comment_lines = 0;
  int blank_lines = 0;
};

struct TreeStats {
  std::vector<FileStats> files;
  std::map<std::string, int> lines_by_category;
  int total_code_lines = 0;

  [[nodiscard]] double fraction(const std::string& category_prefix) const;
};

/// Count effective lines in one file (C/C++ comment rules).
FileStats count_file(const std::filesystem::path& file);

/// Classify a path within this repo into Fig.-1 categories.
std::string classify(const std::filesystem::path& file);

/// Scan a source tree (recursively, *.hpp/*.cpp).
TreeStats scan_tree(const std::filesystem::path& root);

/// VPIC 1.2's published breakdown (paper Fig. 1): ISA label -> percent of
/// total codebase lines. "kernels" is the physics-kernel share.
const std::map<std::string, double>& vpic12_reference_breakdown();

}  // namespace vpic::codestats
