#include "codestats/codestats.hpp"

#include <fstream>

namespace vpic::codestats {

namespace fs = std::filesystem;

double TreeStats::fraction(const std::string& category_prefix) const {
  if (total_code_lines == 0) return 0.0;
  int sum = 0;
  for (const auto& [cat, lines] : lines_by_category)
    if (cat.rfind(category_prefix, 0) == 0) sum += lines;
  return static_cast<double>(sum) / total_code_lines;
}

FileStats count_file(const fs::path& file) {
  FileStats s;
  s.path = file.string();
  s.category = classify(file);
  std::ifstream in(file);
  std::string line;
  bool in_block_comment = false;
  while (std::getline(in, line)) {
    // Trim leading whitespace.
    std::size_t b = line.find_first_not_of(" \t\r");
    if (b == std::string::npos) {
      ++s.blank_lines;
      continue;
    }
    const std::string t = line.substr(b);
    if (in_block_comment) {
      ++s.comment_lines;
      if (t.find("*/") != std::string::npos) in_block_comment = false;
      continue;
    }
    if (t.rfind("//", 0) == 0) {
      ++s.comment_lines;
      continue;
    }
    if (t.rfind("/*", 0) == 0) {
      ++s.comment_lines;
      if (t.find("*/", 2) == std::string::npos) in_block_comment = true;
      continue;
    }
    ++s.code_lines;
  }
  return s;
}

std::string classify(const fs::path& file) {
  const std::string p = file.generic_string();
  auto contains = [&](const char* sub) {
    return p.find(sub) != std::string::npos;
  };
  // Per-ISA ad hoc SIMD support (the Fig.-1 duplication).
  if (contains("/v4/")) {
    if (contains("avx512")) return "simd:AVX512";
    if (contains("avx2")) return "simd:AVX2";
    if (contains("sse")) return "simd:SSE";
    if (contains("portable")) return "simd:portable";
    return "simd:dispatch";
  }
  // The portable SIMD library (single-source; the contrast to v4).
  if (contains("/simd/")) return "portable-simd";
  // Physics kernels.
  if (contains("/core/push") || contains("/core/move_p") ||
      contains("/core/accumulator") || contains("/core/interpolator") ||
      contains("/core/field") || contains("/kernels/"))
    return "kernel";
  return "other";
}

TreeStats scan_tree(const fs::path& root) {
  TreeStats t;
  if (!fs::exists(root)) return t;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const auto ext = entry.path().extension().string();
    if (ext != ".hpp" && ext != ".cpp" && ext != ".h" && ext != ".cc")
      continue;
    FileStats f = count_file(entry.path());
    t.lines_by_category[f.category] += f.code_lines;
    t.total_code_lines += f.code_lines;
    t.files.push_back(std::move(f));
  }
  return t;
}

const std::map<std::string, double>& vpic12_reference_breakdown() {
  // Paper Fig. 1: >57% of VPIC 1.2 is SIMD-support code, 11% physics
  // kernels; the SIMD share splits across per-ISA implementations by
  // vector width (128-bit: SSE/NEON/Altivec; 256-bit: AVX/AVX2; 512-bit:
  // AVX512 Xeon-Phi) plus the portable fallback.
  static const std::map<std::string, double> ref = {
      {"simd:128-bit (SSE/NEON/Altivec)", 24.0},
      {"simd:256-bit (AVX/AVX2)", 17.0},
      {"simd:512-bit (AVX512-KNL)", 10.0},
      {"simd:portable", 6.0},
      {"kernels", 11.0},
      {"other", 32.0},
  };
  return ref;
}

}  // namespace vpic::codestats
