// elastic/elastic.hpp — umbrella header for vpic::elastic: incremental
// delta-compressed checkpoint generations, the lossless particle-payload
// codec, and N→M checkpoint redecomposition (docs/ELASTIC.md).
#pragma once

#include "elastic/codec.hpp"       // IWYU pragma: export
#include "elastic/delta.hpp"       // IWYU pragma: export
#include "elastic/redecompose.hpp" // IWYU pragma: export
