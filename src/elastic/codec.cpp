// elastic/codec.cpp — DeltaPack encode/decode (see codec.hpp).
//
// Stream layout, per 4-byte record field f in [0, elem_size/4):
//
//   control block: ceil(nrec / 4) bytes, 2 bits per record in record
//                  order (bit pair k of byte k/4), code -> stored width:
//                  0 -> 0 bytes (XOR == 0), 1 -> 1, 2 -> 2, 3 -> 4
//   data block:    the low `width` bytes of each nonzero-width XOR word,
//                  little-endian, concatenated in record order
//
// Blocks for field f+1 follow immediately after field f's data block.
// The decoder recomputes every block size from the control bits, so the
// stream needs no explicit lengths beyond (raw_bytes, elem_size) which
// the chain manifest records.

#include "elastic/codec.hpp"

#include <cstring>

namespace vpic::elastic {

const char* to_string(Codec c) noexcept {
  switch (c) {
    case Codec::None:
      return "none";
    case Codec::DeltaPack:
      return "deltapack";
  }
  return "?";
}

namespace {

inline std::uint32_t load_u32(const std::byte* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline void store_u32(std::byte* p, std::uint32_t v) noexcept {
  std::memcpy(p, &v, 4);
}

inline unsigned width_code(std::uint32_t x) noexcept {
  if (x == 0) return 0;
  if (x <= 0xFFu) return 1;
  if (x <= 0xFFFFu) return 2;
  return 3;
}

constexpr unsigned kCodeBytes[4] = {0, 1, 2, 4};

}  // namespace

std::vector<std::byte> deltapack_encode(const std::byte* data, std::size_t n,
                                        std::uint32_t elem_size) {
  if (n == 0 || elem_size == 0 || elem_size % 4 != 0 || n % elem_size != 0)
    return {};
  const std::size_t nrec = n / elem_size;
  const std::size_t nfields = elem_size / 4;
  const std::size_t ctrl_bytes = (nrec + 3) / 4;

  std::vector<std::byte> out;
  out.reserve(n / 2);
  for (std::size_t f = 0; f < nfields; ++f) {
    const std::size_t ctrl_at = out.size();
    out.resize(ctrl_at + ctrl_bytes, std::byte{0});
    std::uint32_t prev = 0;
    for (std::size_t r = 0; r < nrec; ++r) {
      const std::uint32_t v = load_u32(data + r * elem_size + f * 4);
      const std::uint32_t x = v ^ prev;
      prev = v;
      const unsigned code = width_code(x);
      out[ctrl_at + r / 4] |=
          static_cast<std::byte>(code << (2 * (r % 4)));
      const unsigned w = kCodeBytes[code];
      for (unsigned b = 0; b < w; ++b)
        out.push_back(static_cast<std::byte>((x >> (8 * b)) & 0xFFu));
    }
  }
  return out;
}

bool deltapack_decode(const std::byte* src, std::size_t src_bytes,
                      std::byte* dst, std::size_t raw_bytes,
                      std::uint32_t elem_size) {
  if (raw_bytes == 0 || elem_size == 0 || elem_size % 4 != 0 ||
      raw_bytes % elem_size != 0)
    return false;
  const std::size_t nrec = raw_bytes / elem_size;
  const std::size_t nfields = elem_size / 4;
  const std::size_t ctrl_bytes = (nrec + 3) / 4;

  std::size_t at = 0;
  for (std::size_t f = 0; f < nfields; ++f) {
    if (at + ctrl_bytes > src_bytes) return false;
    const std::byte* ctrl = src + at;
    at += ctrl_bytes;
    std::uint32_t prev = 0;
    for (std::size_t r = 0; r < nrec; ++r) {
      const unsigned code =
          (static_cast<unsigned>(ctrl[r / 4]) >> (2 * (r % 4))) & 0x3u;
      const unsigned w = kCodeBytes[code];
      if (at + w > src_bytes) return false;
      std::uint32_t x = 0;
      for (unsigned b = 0; b < w; ++b)
        x |= static_cast<std::uint32_t>(src[at + b]) << (8 * b);
      at += w;
      prev ^= x;
      store_u32(dst + r * elem_size + f * 4, prev);
    }
  }
  return at == src_bytes;  // trailing garbage is corruption, not slack
}

}  // namespace vpic::elastic
