// elastic/redecompose.cpp — N→M checkpoint rewriting (see redecompose.hpp).

#include "elastic/redecompose.hpp"

#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "ckpt/file.hpp"
#include "ckpt/serialize.hpp"

namespace vpic::elastic {

namespace {

namespace fs = std::filesystem;

using ckpt::EncodedSection;
using ckpt::RestoreError;
using ckpt::RestoreErrorKind;

// Byte-layout mirrors of the (deliberately private) pods in
// core/checkpoint.cpp. elastic stays core-independent — it moves opaque
// records around — but these three pods ARE the cross-rank contract, and
// the static_asserts pin the shared layout.
struct PackedParticle {
  float dx, dy, dz;
  std::int32_t i;
  float ux, uy, uz, w;
};
static_assert(sizeof(PackedParticle) == 32);

struct SpeciesMeta {
  std::int64_t np = 0;
  float q = 0, m = 0;
  std::int32_t steps_since_sort = -1;
  std::uint8_t cell_sorted_hint = 0;
  std::uint8_t pad_[3] = {0, 0, 0};
};
static_assert(sizeof(SpeciesMeta) == 24);

struct RankMeta {
  std::int64_t z_offset = 0;
  std::int64_t exchanged = 0;
  std::uint64_t current_species = 0;
};
static_assert(sizeof(RankMeta) == 24);

[[noreturn]] void mismatch(const std::string& what) {
  throw RestoreError(RestoreErrorKind::ManifestMismatch, what);
}

}  // namespace

RedecomposeStats Redecomposer::run(const std::string& src_dir,
                                   const std::string& dst_dir,
                                   int dst_ranks) {
  ckpt::FileReader manifest(src_dir + "/manifest.ckpt");
  const auto src_ranks =
      static_cast<int>(manifest.pod<std::int64_t>("manifest.nranks"));
  if (!manifest.has("manifest.domain"))
    mismatch("'" + src_dir +
             "' has no manifest.domain section — the checkpoint predates "
             "elastic rescale and pins its rank count");
  const auto dom = manifest.pod<DomainPod>("manifest.domain");
  const std::int64_t step = manifest.step();

  if (dst_ranks < 1) mismatch("rescale target must be >= 1 rank");
  if (src_ranks < 1 || dom.nz % src_ranks != 0)
    mismatch("manifest rank count " + std::to_string(src_ranks) +
             " does not divide nz=" + std::to_string(dom.nz));
  if (dom.nz % dst_ranks != 0)
    mismatch("rescale target " + std::to_string(dst_ranks) +
             " ranks does not divide nz=" + std::to_string(dom.nz));

  const int sx = dom.nx + 2, sy = dom.ny + 2;
  const std::size_t plane = static_cast<std::size_t>(sx) * sy;
  const int nzl_old = dom.nz / src_ranks;
  const int nzl_new = dom.nz / dst_ranks;
  const std::int64_t nv_old =
      static_cast<std::int64_t>(plane) * (nzl_old + 2);
  const std::int64_t nv_new =
      static_cast<std::int64_t>(plane) * (nzl_new + 2);

  // Species identities come from rank 0 (identical on every rank — the
  // fingerprint covers them) and re-derive the source fingerprint as a
  // consistency check on the domain pod itself.
  ckpt::FileReader r0(src_dir + "/rank0.ckpt");
  const auto nspecies = r0.pod<std::uint64_t>("nspecies");
  std::vector<SpeciesId> species(nspecies);
  for (std::uint64_t s = 0; s < nspecies; ++s) {
    const std::string pfx = "sp" + std::to_string(s) + ".";
    const EncodedSection& name = r0.section(pfx + "name");
    species[s].name.assign(reinterpret_cast<const char*>(name.payload.data()),
                           name.payload.size());
    const auto meta = r0.pod<SpeciesMeta>(pfx + "meta");
    species[s].q = meta.q;
    species[s].m = meta.m;
  }
  if (domain_fingerprint(dom, src_ranks, species) != manifest.fingerprint())
    mismatch("manifest.domain disagrees with the manifest fingerprint");

  // Classify rank 0's sections: per-voxel arrays are reassembled
  // plane-wise, species/rank metadata is rewritten, anything else is a
  // format this code does not understand — refuse rather than guess.
  std::vector<std::string> voxel_names;
  for (const std::string& n : r0.section_names()) {
    if (n == "nspecies" || n == "rank.meta" || n.starts_with("sp")) continue;
    const EncodedSection& s = r0.section(n);
    if (s.rank == 1 && s.extents[0] == nv_old) {
      voxel_names.push_back(n);
      continue;
    }
    mismatch("section '" + n + "' is not per-voxel (extents " +
             std::to_string(s.extents[0]) + " vs nv " +
             std::to_string(nv_old) + ") and cannot be redecomposed");
  }

  // Global interior reassembly: per section, nz planes of `plane`
  // elements (x/y ghosts ride along inside each plane verbatim).
  struct GlobalSection {
    std::uint32_t elem_size = 0;
    std::uint8_t layout = 0;
    std::vector<std::byte> data;  // nz * plane * elem_size
  };
  std::map<std::string, GlobalSection> global;
  for (const std::string& n : voxel_names) {
    const EncodedSection& s = r0.section(n);
    GlobalSection g;
    g.elem_size = s.elem_size;
    g.layout = s.layout;
    g.data.resize(static_cast<std::size_t>(dom.nz) * plane * s.elem_size);
    global.emplace(n, std::move(g));
  }

  // Particle buckets: per species, per new owner, in (old rank, record)
  // order — a stable bucket sort by global z-plane, so the canonical
  // stable-sort-by-global-voxel order is preserved byte-for-byte.
  std::vector<std::vector<std::vector<PackedParticle>>> buckets(nspecies);
  for (auto& b : buckets) b.resize(static_cast<std::size_t>(dst_ranks));

  RedecomposeStats st;
  st.src_ranks = src_ranks;
  st.dst_ranks = dst_ranks;
  st.step = step;
  std::int64_t exchanged_total = 0;
  std::uint64_t current_species = 0;

  for (int r = 0; r < src_ranks; ++r) {
    ckpt::FileReader f(src_dir + "/rank" + std::to_string(r) + ".ckpt");
    f.require_fingerprint(manifest.fingerprint());
    if (f.step() != step)
      mismatch("rank " + std::to_string(r) + " file is from step " +
               std::to_string(f.step()) + ", manifest says " +
               std::to_string(step));
    f.validate_all();
    const auto rmeta = f.pod<RankMeta>("rank.meta");
    const std::int64_t z_offset = rmeta.z_offset;
    if (z_offset != static_cast<std::int64_t>(r) * nzl_old)
      mismatch("rank " + std::to_string(r) + " holds slab offset " +
               std::to_string(z_offset));
    exchanged_total += rmeta.exchanged;
    if (r == 0) current_species = rmeta.current_species;

    for (auto& [n, g] : global) {
      const EncodedSection& s = f.section(n);
      if (s.rank != 1 || s.extents[0] != nv_old ||
          s.elem_size != g.elem_size)
        mismatch("rank " + std::to_string(r) + " section '" + n +
                 "' disagrees with rank 0 on shape");
      const std::size_t pbytes = plane * g.elem_size;
      for (int iz = 1; iz <= nzl_old; ++iz) {
        const std::int64_t giz = z_offset + iz - 1;
        std::memcpy(g.data.data() + static_cast<std::size_t>(giz) * pbytes,
                    s.payload.data() + static_cast<std::size_t>(iz) * pbytes,
                    pbytes);
      }
    }

    for (std::uint64_t s = 0; s < nspecies; ++s) {
      const std::string pfx = "sp" + std::to_string(s) + ".";
      const auto meta = f.pod<SpeciesMeta>(pfx + "meta");
      const EncodedSection& ps = f.section(pfx + "p");
      if (ps.elem_size != sizeof(PackedParticle) ||
          ps.payload.size() !=
              static_cast<std::size_t>(meta.np) * sizeof(PackedParticle))
        mismatch("rank " + std::to_string(r) + " particle payload of '" +
                 species[s].name + "' disagrees with its meta.np");
      for (std::int64_t k = 0; k < meta.np; ++k) {
        PackedParticle p;
        std::memcpy(&p, ps.payload.data() + k * sizeof(PackedParticle),
                    sizeof(PackedParticle));
        const std::int64_t izl = p.i / static_cast<std::int64_t>(plane);
        const std::int64_t rem = p.i % static_cast<std::int64_t>(plane);
        if (izl < 1 || izl > nzl_old)
          mismatch("particle of '" + species[s].name + "' on rank " +
                   std::to_string(r) + " sits in a ghost plane");
        const std::int64_t giz = z_offset + izl - 1;
        const int owner = static_cast<int>(giz / nzl_new);
        const std::int64_t new_izl = giz - static_cast<std::int64_t>(owner) *
                                               nzl_new + 1;
        p.i = static_cast<std::int32_t>(new_izl *
                                            static_cast<std::int64_t>(plane) +
                                        rem);
        buckets[s][static_cast<std::size_t>(owner)].push_back(p);
        ++st.particles;
      }
    }
  }
  st.voxel_sections = global.size();

  // Write the m-rank set: rank files first, manifest last (same crash
  // ladder as a live distributed checkpoint — a partial directory has no
  // manifest and is rejected whole by restore()).
  std::error_code ec;
  fs::create_directories(dst_dir, ec);
  const std::uint64_t fp_new = domain_fingerprint(dom, dst_ranks, species);

  for (int R = 0; R < dst_ranks; ++R) {
    ckpt::FileWriter w;
    const std::int64_t z_offset = static_cast<std::int64_t>(R) * nzl_new;
    for (auto& [n, g] : global) {
      EncodedSection out;
      out.name = n;
      out.elem_size = g.elem_size;
      out.rank = 1;
      out.extents[0] = nv_new;
      out.layout = g.layout;
      const std::size_t pbytes = plane * g.elem_size;
      out.payload.resize(static_cast<std::size_t>(nv_new) * g.elem_size);
      auto copy_plane = [&](std::int64_t dst_iz, std::int64_t giz) {
        std::memcpy(
            out.payload.data() + static_cast<std::size_t>(dst_iz) * pbytes,
            g.data.data() + static_cast<std::size_t>(giz) * pbytes, pbytes);
      };
      // z-ghost planes hold the periodic neighbors' boundary interior —
      // exactly what the next step's halo exchange would install.
      copy_plane(0, (z_offset - 1 + dom.nz) % dom.nz);
      for (int iz = 1; iz <= nzl_new; ++iz)
        copy_plane(iz, z_offset + iz - 1);
      copy_plane(nzl_new + 1, (z_offset + nzl_new) % dom.nz);
      w.add(std::move(out));
    }

    w.add_pod("nspecies", nspecies);
    for (std::uint64_t s = 0; s < nspecies; ++s) {
      const std::string pfx = "sp" + std::to_string(s) + ".";
      const std::vector<PackedParticle>& b =
          buckets[s][static_cast<std::size_t>(R)];
      w.add_bytes(pfx + "name", species[s].name.data(),
                  species[s].name.size());
      SpeciesMeta meta;
      meta.np = static_cast<std::int64_t>(b.size());
      meta.q = species[s].q;
      meta.m = species[s].m;
      // Conservative: the re-bucketed order is z-plane-grouped, not
      // cell-sorted — let the restored run re-sort on its own schedule.
      meta.steps_since_sort = -1;
      meta.cell_sorted_hint = 0;
      w.add_pod(pfx + "meta", meta);
      EncodedSection ps;
      ps.name = pfx + "p";
      ps.elem_size = sizeof(PackedParticle);
      ps.rank = 1;
      ps.extents[0] = static_cast<std::int64_t>(b.size());
      ps.layout = ckpt::kLayoutRight;
      ps.payload.resize(b.size() * sizeof(PackedParticle));
      if (!b.empty())
        std::memcpy(ps.payload.data(), b.data(), ps.payload.size());
      w.add(std::move(ps));
    }

    RankMeta rmeta;
    rmeta.z_offset = z_offset;
    // The exchange counter is a global diagnostic; park the historic
    // total on rank 0 so the global sum is preserved across rescales.
    rmeta.exchanged = R == 0 ? exchanged_total : 0;
    rmeta.current_species = current_species;
    w.add_pod("rank.meta", rmeta);

    st.bytes_out +=
        w.commit(dst_dir + "/rank" + std::to_string(R) + ".ckpt", fp_new,
                 step);
  }

  ckpt::FileWriter m;
  m.add_pod("manifest.nranks", static_cast<std::int64_t>(dst_ranks));
  m.add_pod("manifest.domain", dom);
  st.bytes_out += m.commit(dst_dir + "/manifest.ckpt", fp_new, step);
  return st;
}

}  // namespace vpic::elastic
