// elastic/redecompose.hpp
//
// N→M restart (docs/ELASTIC.md): rewrite a k-rank distributed checkpoint
// directory (core/checkpoint.cpp layout — "rank<r>.ckpt" files plus a
// "manifest.ckpt") into an m-rank directory for any m dividing the global
// nz, such that restoring the m-rank set yields per-voxel state byte-equal
// (on interior voxels) and canonically-ordered particle state byte-equal
// to a same-rank restore.
//
// The invariants that make this a pure data-movement problem:
//
//   * every per-voxel array (nine field components, interpolators,
//     accumulators) is a flat rank-1 view of nv = (nx+2)(ny+2)(nzl+2)
//     elements with voxel(ix,iy,iz) = (iz*sy + iy)*sx + ix — plane-major
//     in z — so a whole z-plane of sx*sy elements (x/y ghosts included)
//     moves verbatim between decompositions,
//   * interior plane iz of rank r is global plane z_offset(r) + iz - 1;
//     z-ghost planes are the periodic neighbors' boundary interior
//     planes, refilled from the reassembled global array (they are
//     refreshed by the halo exchange at the top of the next step anyway),
//   * a particle's record changes only in its voxel index (byte offset
//     12): positions are cell-local, momenta are cell-independent. The
//     re-bucketing walks old ranks in rank order and appends per new
//     owner (a stable bucket sort by global z-plane), so the canonical
//     order "stable-sort by global voxel" is byte-identical across any
//     decomposition of the same global state.
//
// The rewritten manifest carries the new rank count and a recomputed
// config fingerprint — domain_fingerprint() below feeds the exact byte
// sequence DistributedSimulation::config_fingerprint() hashes, which is
// what lets an m-rank communicator restore the rewritten set through the
// completely unchanged validation path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/format.hpp"

namespace vpic::elastic {

/// The physics-defining half of core::DomainConfig, stored as the
/// "manifest.domain" section of a distributed checkpoint manifest so a
/// redecomposer can recompute the fingerprint for a different rank count
/// without the deck in hand. Padding is explicit and zeroed (the pod is
/// serialized raw).
struct DomainPod {
  std::int32_t nx = 0, ny = 0, nz = 0;
  float lx = 0, ly = 0, lz = 0, dt = 0;
  std::uint32_t strategy = 0;
  std::uint64_t seed = 0;
  std::uint8_t overlap = 0;
  std::uint8_t pad_[7] = {0, 0, 0, 0, 0, 0, 0};
};
static_assert(sizeof(DomainPod) == 48, "no implicit padding allowed");

struct SpeciesId {
  std::string name;
  float q = 0, m = 0;
};

/// Byte-for-byte the fingerprint DistributedSimulation::config_fingerprint
/// computes for this domain at `nranks` ranks (core/checkpoint.cpp calls
/// this too, so the two can never drift apart).
inline std::uint64_t domain_fingerprint(const DomainPod& d, int nranks,
                                        const std::vector<SpeciesId>& species) {
  ckpt::Fingerprint fp;
  fp.add(d.nx);
  fp.add(d.ny);
  fp.add(d.nz);
  fp.add(d.lx);
  fp.add(d.ly);
  fp.add(d.lz);
  fp.add(d.dt);
  fp.add(d.strategy);
  fp.add(d.seed);
  fp.add(d.overlap);
  fp.add(nranks);
  for (const SpeciesId& sp : species) {
    fp.add_string(sp.name);
    fp.add(sp.q);
    fp.add(sp.m);
  }
  return fp.value();
}

struct RedecomposeStats {
  int src_ranks = 0;
  int dst_ranks = 0;
  std::int64_t step = 0;
  std::uint64_t particles = 0;       // total re-bucketed, all species
  std::uint64_t voxel_sections = 0;  // per-voxel arrays reassembled
  std::uint64_t bytes_out = 0;       // committed bytes of the new set
};

/// Reads the k-rank checkpoint in `src_dir`, re-buckets it onto
/// `dst_ranks` ranks, and writes a complete m-rank checkpoint directory
/// to `dst_dir` (created if needed; rank files first, manifest last —
/// same crash ladder as a live distributed checkpoint). Throws
/// ckpt::RestoreError on any validation failure (missing
/// "manifest.domain" — pre-elastic checkpoints cannot be rescaled — or
/// dst_ranks not dividing nz, kind ManifestMismatch) and never writes a
/// manifest over a partial set.
class Redecomposer {
 public:
  static RedecomposeStats run(const std::string& src_dir,
                              const std::string& dst_dir, int dst_ranks);
};

}  // namespace vpic::elastic
