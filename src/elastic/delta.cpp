// elastic/delta.cpp — VPICELA1 chain planning, commit and resolution
// (see delta.hpp, docs/ELASTIC.md).

#include "elastic/delta.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <utility>

#include "ckpt/ring.hpp"

namespace vpic::elastic {

using ckpt::EncodedSection;
using ckpt::RestoreError;
using ckpt::RestoreErrorKind;

std::uint64_t payload_hash(const void* data, std::size_t n) noexcept {
  ckpt::Fingerprint h;
  h.add_bytes(data, n);
  return h.value();
}

// ---------------------------------------------------------------------------
// Manifest (de)serialization. Fixed little-endian-as-memcpy layout per
// entry after a u32 count:
//   u16 name_len, name bytes, i64 src_gen, u8 codec, u8 layout,
//   u32 elem_size, u32 rank, i64 extents[4], u64 raw_bytes, u64 hash

namespace {

template <class Pod>
void put(std::vector<std::byte>& out, const Pod& v) {
  static_assert(std::is_trivially_copyable_v<Pod>);
  const auto at = out.size();
  out.resize(at + sizeof(Pod));
  std::memcpy(out.data() + at, &v, sizeof(Pod));
}

template <class Pod>
Pod get(const std::byte* data, std::size_t n, std::size_t& at) {
  static_assert(std::is_trivially_copyable_v<Pod>);
  if (at + sizeof(Pod) > n)
    throw RestoreError(RestoreErrorKind::SectionCorrupt,
                       "'ela.manifest' is truncated");
  Pod v;
  std::memcpy(&v, data + at, sizeof(Pod));
  at += sizeof(Pod);
  return v;
}

}  // namespace

std::vector<std::byte> serialize_manifest(
    const std::vector<ManifestEntry>& entries) {
  std::vector<std::byte> out;
  put(out, static_cast<std::uint32_t>(entries.size()));
  for (const ManifestEntry& e : entries) {
    put(out, static_cast<std::uint16_t>(e.name.size()));
    const auto at = out.size();
    out.resize(at + e.name.size());
    if (!e.name.empty()) std::memcpy(out.data() + at, e.name.data(), e.name.size());
    put(out, e.src_gen);
    put(out, static_cast<std::uint8_t>(e.codec));
    put(out, e.layout);
    put(out, e.elem_size);
    put(out, e.rank);
    for (std::int64_t x : e.extents) put(out, x);
    put(out, e.raw_bytes);
    put(out, e.hash);
  }
  return out;
}

std::vector<ManifestEntry> parse_manifest(const std::byte* data,
                                          std::size_t n) {
  std::size_t at = 0;
  const auto count = get<std::uint32_t>(data, n, at);
  std::vector<ManifestEntry> entries;
  entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ManifestEntry e;
    const auto len = get<std::uint16_t>(data, n, at);
    if (at + len > n)
      throw RestoreError(RestoreErrorKind::SectionCorrupt,
                         "'ela.manifest' is truncated");
    e.name.assign(reinterpret_cast<const char*>(data + at), len);
    at += len;
    e.src_gen = get<std::int64_t>(data, n, at);
    e.codec = static_cast<Codec>(get<std::uint8_t>(data, n, at));
    e.layout = get<std::uint8_t>(data, n, at);
    e.elem_size = get<std::uint32_t>(data, n, at);
    e.rank = get<std::uint32_t>(data, n, at);
    for (std::int64_t& x : e.extents) x = get<std::int64_t>(data, n, at);
    e.raw_bytes = get<std::uint64_t>(data, n, at);
    e.hash = get<std::uint64_t>(data, n, at);
    entries.push_back(std::move(e));
  }
  if (at != n)
    throw RestoreError(RestoreErrorKind::SectionCorrupt,
                       "'ela.manifest' has trailing bytes");
  return entries;
}

std::string sibling_generation_path(const std::string& path,
                                    std::int64_t gen) {
  // Ring naming is "<base>.g<digits>" (ckpt/ring.hpp): strip the suffix.
  const auto dot = path.rfind(".g");
  bool ok = dot != std::string::npos && dot + 2 < path.size();
  if (ok)
    for (std::size_t i = dot + 2; i < path.size(); ++i)
      ok = ok && std::isdigit(static_cast<unsigned char>(path[i])) != 0;
  if (!ok)
    throw RestoreError(RestoreErrorKind::ManifestMismatch,
                       "'" + path +
                           "' is not a generation-ring file; delta chains "
                           "require '<base>.g<N>' naming");
  return path.substr(0, dot) + ".g" + std::to_string(gen);
}

// ---------------------------------------------------------------------------
// DeltaTracker

GenerationPlan DeltaTracker::plan(const std::vector<EncodedSection>& sections,
                                  std::int64_t generation, Codec codec) {
  const bool full = base_ < 0 || full_every_ <= 1 ||
                    static_cast<int>(chain_seq_) + 1 >= full_every_;

  GenerationPlan p;
  p.generation = generation;
  p.kind = full ? kKindFull : kKindDelta;
  p.codec = codec;
  p.parent = full ? -1 : last_;
  p.base = full ? generation : base_;
  p.chain_seq = full ? 0 : chain_seq_ + 1;
  p.entries.reserve(sections.size());

  for (std::uint32_t i = 0; i < sections.size(); ++i) {
    const EncodedSection& s = sections[i];
    ManifestEntry e;
    e.name = s.name;
    e.src_gen = generation;
    e.codec = codec;
    e.layout = static_cast<std::uint8_t>(s.layout);
    e.elem_size = s.elem_size;
    e.rank = s.rank;
    e.extents = s.extents;
    e.raw_bytes = s.payload.size();
    e.hash = payload_hash(s.payload.data(), s.payload.size());

    bool store = true;
    if (!full) {
      const auto it = prev_.find(s.name);
      if (it != prev_.end() && it->second.hash == e.hash &&
          it->second.raw_bytes == e.raw_bytes &&
          it->second.elem_size == e.elem_size &&
          it->second.rank == e.rank && it->second.layout == e.layout &&
          it->second.extents == e.extents) {
        store = false;
        e.src_gen = it->second.src_gen;
        e.codec = Codec::None;  // storing file's manifest is authoritative
      }
    }
    if (store) p.store.push_back(i);
    p.entries.push_back(std::move(e));
  }

  // Commit the bookkeeping now: plans are taken in generation order and a
  // later failed commit is handled by invalidate() (next plan goes full).
  base_ = p.base;
  last_ = generation;
  chain_seq_ = p.chain_seq;
  prev_.clear();
  for (const ManifestEntry& e : p.entries) {
    Prev v;
    v.hash = e.hash;
    v.src_gen = e.src_gen;
    v.layout = e.layout;
    v.elem_size = e.elem_size;
    v.rank = e.rank;
    v.extents = e.extents;
    v.raw_bytes = e.raw_bytes;
    prev_[e.name] = v;
  }
  return p;
}

// ---------------------------------------------------------------------------
// write_generation

GenStats write_generation(const std::string& path,
                          const std::vector<EncodedSection>& sections,
                          const GenerationPlan& plan,
                          std::uint64_t fingerprint, std::int64_t step) {
  GenStats st;
  st.kind = plan.kind;
  st.sections_total = static_cast<std::uint32_t>(sections.size());
  for (const EncodedSection& s : sections)
    st.logical_bytes += s.payload.size();

  // The manifest must record the codec each stored section actually ended
  // up with after the per-section raw fallback, so patch a copy.
  std::vector<ManifestEntry> entries = plan.entries;

  ckpt::FileWriter w;
  for (std::uint32_t i : plan.store) {
    const EncodedSection& s = sections[i];
    ManifestEntry& e = entries[i];
    st.sections_stored++;
    st.stored_raw_bytes += s.payload.size();

    std::vector<std::byte> packed;
    if (plan.codec == Codec::DeltaPack && s.elem_size != 0 &&
        s.elem_size % 4 == 0 && s.payload.size() >= 64)
      packed = deltapack_encode(s.payload.data(), s.payload.size(),
                                s.elem_size);

    if (!packed.empty() && packed.size() < s.payload.size()) {
      e.codec = Codec::DeltaPack;
      st.stored_bytes += packed.size();
      // Packed payloads lose their logical shape on disk; the manifest
      // entry carries it for the decoder.
      EncodedSection ps;
      ps.name = s.name;
      ps.elem_size = 1;
      ps.rank = 1;
      ps.extents[0] = static_cast<std::int64_t>(packed.size());
      ps.layout = s.layout;
      ps.payload = std::move(packed);
      w.add(std::move(ps));
    } else {
      e.codec = Codec::None;
      st.stored_bytes += s.payload.size();
      w.add(s);  // copies; `sections` may be shared with another commit
    }
  }

  ElaMeta meta;
  meta.kind = plan.kind;
  meta.codec = static_cast<std::uint32_t>(plan.codec);
  meta.generation = plan.generation;
  meta.parent = plan.parent;
  meta.base = plan.base;
  meta.chain_seq = plan.chain_seq;
  w.add_pod(kMetaSection, meta);

  const std::vector<std::byte> blob = serialize_manifest(entries);
  w.add_bytes(kManifestSection, blob.data(), blob.size());

  st.file_bytes = w.commit(path, fingerprint, step);
  return st;
}

// ---------------------------------------------------------------------------
// ChainReader

bool ChainReader::is_chain_file(const std::string& path) noexcept {
  try {
    ckpt::FileReader f(path);
    return f.has(kMetaSection);
  } catch (...) {
    return false;
  }
}

ChainReader::ChainReader(const std::string& path) {
  ckpt::FileReader target(path);
  fingerprint_ = target.fingerprint();
  step_ = target.step();

  meta_ = target.pod<ElaMeta>(std::string(kMetaSection));
  if (meta_.magic != kElaMagic)
    throw RestoreError(RestoreErrorKind::SectionCorrupt,
                       "'" + path + "' has a bad ela.meta magic");

  const EncodedSection& ms = target.section(kManifestSection);
  const std::vector<ManifestEntry> manifest =
      parse_manifest(ms.payload.data(), ms.payload.size());

  // Group logical sections by the generation that physically stores them,
  // so each sibling file is opened and validated once.
  std::map<std::int64_t, std::vector<const ManifestEntry*>> by_gen;
  for (const ManifestEntry& e : manifest) by_gen[e.src_gen].push_back(&e);

  for (auto& [gen, wanted] : by_gen) {
    ckpt::FileReader* src = nullptr;
    std::unique_ptr<ckpt::FileReader> sibling;
    if (gen == meta_.generation) {
      src = &target;
    } else {
      sibling = std::make_unique<ckpt::FileReader>(
          sibling_generation_path(path, gen));
      if (sibling->fingerprint() != fingerprint_)
        throw RestoreError(
            RestoreErrorKind::FingerprintMismatch,
            "chain generation " + std::to_string(gen) +
                " was written by a different deck/config than '" + path +
                "'");
      src = sibling.get();
    }
    sources_.push_back(gen);

    // How each section is stored in `src` is recorded in src's OWN
    // manifest (codec + raw fallback are decided at its commit).
    const EncodedSection& sms = src->section(kManifestSection);
    std::map<std::string, const ManifestEntry*, std::less<>> stored;
    const std::vector<ManifestEntry> src_manifest =
        parse_manifest(sms.payload.data(), sms.payload.size());
    for (const ManifestEntry& e : src_manifest)
      if (e.src_gen == gen) stored[e.name] = &e;

    for (const ManifestEntry* e : wanted) {
      const auto sit = stored.find(e->name);
      if (sit == stored.end())
        throw RestoreError(RestoreErrorKind::MissingSection,
                           "chain generation " + std::to_string(gen) +
                               " does not store section '" + e->name + "'");
      const ManifestEntry& how = *sit->second;
      const EncodedSection& raw = src->section(e->name);

      EncodedSection out;
      out.name = e->name;
      out.elem_size = e->elem_size;
      out.rank = e->rank;
      out.extents = e->extents;
      out.layout = e->layout;
      if (how.codec == Codec::None) {
        out.payload = raw.payload;
      } else if (how.codec == Codec::DeltaPack) {
        out.payload.resize(how.raw_bytes);
        if (!deltapack_decode(raw.payload.data(), raw.payload.size(),
                              out.payload.data(), how.raw_bytes,
                              how.elem_size))
          throw RestoreError(RestoreErrorKind::SectionCorrupt,
                             "section '" + e->name + "' in generation " +
                                 std::to_string(gen) +
                                 " fails deltapack decode");
      } else {
        throw RestoreError(RestoreErrorKind::SectionCorrupt,
                           "section '" + e->name + "' uses unknown codec " +
                               std::to_string(static_cast<int>(how.codec)));
      }

      // The restore target's manifest hash is the end-to-end integrity
      // check: a silently stale or cross-linked sibling payload cannot
      // slip through even with a valid per-file CRC.
      if (payload_hash(out.payload.data(), out.payload.size()) != e->hash ||
          out.payload.size() != e->raw_bytes)
        throw RestoreError(RestoreErrorKind::SectionCorrupt,
                           "section '" + e->name + "' resolved from " +
                               std::to_string(gen) +
                               " does not match the chain manifest hash");
      resolved_[out.name] = std::move(out);
    }
  }

  reassemble_particles();
}

std::vector<std::string> ChainReader::section_names() const {
  std::vector<std::string> names;
  names.reserve(resolved_.size());
  for (const auto& [name, s] : resolved_) names.push_back(name);
  return names;
}

const EncodedSection& ChainReader::section(std::string_view name) {
  const auto it = resolved_.find(name);
  if (it == resolved_.end())
    throw RestoreError(RestoreErrorKind::MissingSection,
                       "chain has no section '" + std::string(name) + "'");
  return it->second;
}

void ChainReader::reassemble_particles() {
  // Incremental snapshots store particles as fixed-range chunks
  // ("sp<i>.c<k>.p" + "sp<i>.nchunks") so a delta only carries the tiles
  // whose payload hash moved. Core's restore reads the canonical
  // "sp<i>.p"; synthesize it by concatenating chunks in k order.
  if (!has("nspecies")) return;
  const auto nspecies = pod<std::uint64_t>("nspecies");
  for (std::uint64_t i = 0; i < nspecies; ++i) {
    const std::string prefix = "sp" + std::to_string(i) + ".";
    if (!has(prefix + "nchunks")) continue;
    const auto nchunks = pod<std::uint64_t>(prefix + "nchunks");

    EncodedSection whole;
    whole.name = prefix + "p";
    whole.rank = 1;
    whole.layout = ckpt::kLayoutRight;
    std::int64_t total = 0;
    for (std::uint64_t k = 0; k < nchunks; ++k) {
      const EncodedSection& c =
          section(prefix + "c" + std::to_string(k) + ".p");
      if (k == 0) whole.elem_size = c.elem_size;
      if (c.elem_size != whole.elem_size)
        throw RestoreError(RestoreErrorKind::ShapeMismatch,
                           "particle chunks of '" + prefix +
                               "p' disagree on element size");
      whole.payload.insert(whole.payload.end(), c.payload.begin(),
                           c.payload.end());
      total += c.extents[0];
    }
    if (whole.elem_size == 0) whole.elem_size = 1;
    whole.extents[0] = total;
    if (whole.payload.size() !=
        static_cast<std::size_t>(total) * whole.elem_size)
      throw RestoreError(RestoreErrorKind::ShapeMismatch,
                         "particle chunks of '" + prefix +
                             "p' do not add up to their extents");
    resolved_[whole.name] = std::move(whole);
  }
}

// ---------------------------------------------------------------------------
// prune_chains

std::size_t prune_chains(const std::string& ring_base, int keep_chains) {
  if (keep_chains < 1) keep_chains = 1;
  ckpt::GenerationRing ring(ring_base, keep_chains);
  const std::vector<std::uint64_t> gens = ring.generations();

  // Chain id of a generation = its base generation (ela.meta); a plain
  // checkpoint or an unreadable file is its own single-generation chain,
  // so broken junk still ages out.
  std::map<std::int64_t, std::vector<std::uint64_t>> chains;
  for (std::uint64_t g : gens) {
    std::int64_t chain = static_cast<std::int64_t>(g);
    try {
      ckpt::FileReader f(ring.path_for(g));
      if (f.has(kMetaSection)) {
        const auto meta = f.pod<ElaMeta>(std::string(kMetaSection));
        if (meta.magic == kElaMagic) chain = meta.base;
      }
    } catch (...) {
      // unreadable: leave it as its own chain
    }
    chains[chain].push_back(g);
  }

  if (chains.size() <= static_cast<std::size_t>(keep_chains)) return 0;
  std::size_t removed = 0;
  std::size_t drop = chains.size() - static_cast<std::size_t>(keep_chains);
  for (const auto& [chain, members] : chains) {
    if (drop == 0) break;
    --drop;
    for (std::uint64_t g : members)
      if (std::remove(ring.path_for(g).c_str()) == 0) ++removed;
  }
  return removed;
}

}  // namespace vpic::elastic
