// elastic/delta.hpp
//
// Incremental checkpoint generations (chain format VPICELA1,
// docs/ELASTIC.md). A generation is a normal VPICCKP1 file (ckpt/file.hpp
// envelope, CRCs, atomic commit — all unchanged) that carries two extra
// sections:
//
//   "ela.meta"      ElaMeta pod: magic, kind (full/delta), generation
//                   number, parent generation, chain base, position in
//                   the chain
//   "ela.manifest"  one entry per *logical* section of the snapshot:
//                   which generation physically stores it (src_gen), how
//                   it is stored there (codec), its logical shape, and an
//                   FNV-64 hash of its raw payload
//
// A *full* generation stores every section; a *delta* stores only
// sections whose payload hash changed since the parent, and its manifest
// points unchanged sections back at the generation that last stored them.
// DeltaTracker makes that decision synchronously against the deep-copied
// FileWriter snapshot (hashing IS the dirty detection — there is no
// event-based skip heuristic, because modules may mutate particle state
// without signalling), and write_generation — safe to run on a background
// pk instance — compresses and commits the plan.
//
// ChainReader resolves a generation back into a flat SectionSource: it
// walks the manifest, opens the sibling ring files each src_gen lives in,
// decodes per-section codecs, verifies every resolved payload's hash
// against the restore target's manifest, and reassembles chunked particle
// sections ("sp<i>.c<k>.p") into the canonical "sp<i>.p" the core restore
// path expects. Every failure is a typed ckpt::RestoreError, so the
// generation-ring fallback in Simulation::restore_latest walks across
// broken deltas and broken chains exactly as it walks across corrupt
// single files.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ckpt/file.hpp"
#include "ckpt/format.hpp"
#include "elastic/codec.hpp"

namespace vpic::elastic {

/// "VPICELA1" big-endian, mirroring ckpt::kMagic's "VPICCKP1".
inline constexpr std::uint64_t kElaMagic = 0x56504943454C4131ull;

inline constexpr std::string_view kMetaSection = "ela.meta";
inline constexpr std::string_view kManifestSection = "ela.manifest";

/// Generation kind stored in ElaMeta::kind.
inline constexpr std::uint32_t kKindFull = 0;
inline constexpr std::uint32_t kKindDelta = 1;

struct ElaMeta {
  std::uint64_t magic = kElaMagic;
  std::uint32_t kind = kKindFull;
  std::uint32_t codec = 0;        // requested Codec for stored sections
  std::int64_t generation = 0;    // this file's ring generation number
  std::int64_t parent = -1;       // previous generation in chain (-1: base)
  std::int64_t base = 0;          // chain's full generation
  std::uint64_t chain_seq = 0;    // 0 for the base, parent's seq + 1 else
};
static_assert(sizeof(ElaMeta) == 48);

/// One logical section of the snapshot, as recorded in "ela.manifest".
/// `codec` describes how the section is stored in `src_gen`'s file and is
/// authoritative only in the file that physically stores the section
/// (src_gen == that file's generation); carried-forward entries defer to
/// the storing file's own manifest.
struct ManifestEntry {
  std::string name;
  std::int64_t src_gen = 0;
  Codec codec = Codec::None;
  std::uint8_t layout = 0;
  std::uint32_t elem_size = 0;
  std::uint32_t rank = 0;
  std::array<std::int64_t, 4> extents{};
  std::uint64_t raw_bytes = 0;
  std::uint64_t hash = 0;  // FNV-64 of the raw (decoded) payload
};

/// FNV-1a 64 over a raw payload — the per-section dirty fingerprint.
std::uint64_t payload_hash(const void* data, std::size_t n) noexcept;

std::vector<std::byte> serialize_manifest(
    const std::vector<ManifestEntry>& entries);
/// Throws ckpt::RestoreError{SectionCorrupt} on a truncated/garbled blob.
std::vector<ManifestEntry> parse_manifest(const std::byte* data,
                                          std::size_t n);

/// Derive the path of generation `gen` in the same ring as `path`
/// ("<base>.g<N>" naming, ckpt/ring.hpp). Throws
/// ckpt::RestoreError{ManifestMismatch} when `path` is not ring-shaped —
/// a delta chain only makes sense inside a generation ring.
std::string sibling_generation_path(const std::string& path,
                                    std::int64_t gen);

/// The synchronous half of an incremental checkpoint: which sections to
/// physically store in generation `generation`, plus the full manifest.
/// Self-contained — commit may run later on another thread.
struct GenerationPlan {
  std::int64_t generation = 0;
  std::uint32_t kind = kKindFull;
  Codec codec = Codec::None;
  std::int64_t parent = -1;
  std::int64_t base = 0;
  std::uint64_t chain_seq = 0;
  std::vector<ManifestEntry> entries;  // entries[i] describes sections[i]
  std::vector<std::uint32_t> store;    // indices into entries/sections
};

/// Outcome of write_generation, accumulated by the simulation into its
/// checkpoint stats and reported by bench/checkpoint.cpp.
struct GenStats {
  std::uint32_t kind = kKindFull;
  std::uint32_t sections_total = 0;
  std::uint32_t sections_stored = 0;
  std::uint64_t logical_bytes = 0;     // raw bytes of the whole snapshot
  std::uint64_t stored_raw_bytes = 0;  // raw bytes of stored sections
  std::uint64_t stored_bytes = 0;      // post-codec bytes actually written
  std::uint64_t file_bytes = 0;        // committed file size
};

/// Tracks per-section payload hashes across generations and decides, for
/// each new snapshot, full-vs-delta and the per-section store set.
/// plan() must be called in generation order from one thread (the
/// simulation's checkpoint path); the returned plan is immutable and may
/// be committed asynchronously.
class DeltaTracker {
 public:
  /// A full generation is forced every `full_every` generations
  /// (full_every <= 1 disables deltas entirely).
  explicit DeltaTracker(int full_every) : full_every_(full_every) {}

  GenerationPlan plan(const std::vector<ckpt::EncodedSection>& sections,
                      std::int64_t generation, Codec codec);

  /// Forget the chain: the next plan() is a full generation. Called after
  /// restore (on-disk chain no longer matches tracked hashes) and after a
  /// failed commit.
  void invalidate() {
    base_ = -1;
    last_ = -1;
    chain_seq_ = 0;
    prev_.clear();
  }

  [[nodiscard]] int full_every() const noexcept { return full_every_; }

 private:
  struct Prev {
    std::uint64_t hash = 0;
    std::int64_t src_gen = 0;
    std::uint8_t layout = 0;
    std::uint32_t elem_size = 0;
    std::uint32_t rank = 0;
    std::array<std::int64_t, 4> extents{};
    std::uint64_t raw_bytes = 0;
  };

  int full_every_;
  std::int64_t base_ = -1;
  std::int64_t last_ = -1;
  std::uint64_t chain_seq_ = 0;
  std::map<std::string, Prev, std::less<>> prev_;
};

/// Compress + commit a planned generation to `path` (a ring generation
/// path). Sections listed in plan.store are written physically — run
/// through the plan's codec with a per-section raw fallback when packing
/// does not shrink the payload — alongside "ela.meta" and "ela.manifest".
/// Throws ckpt::RestoreError{IoError} like FileWriter::commit.
GenStats write_generation(const std::string& path,
                          const std::vector<ckpt::EncodedSection>& sections,
                          const GenerationPlan& plan,
                          std::uint64_t fingerprint, std::int64_t step);

/// Resolve a committed generation (base or delta) into a flat section
/// set. All referenced sibling generations are opened, validated and
/// decoded in the constructor; chunked particle sections are reassembled
/// into the canonical "sp<i>.p" names. Failures throw typed
/// ckpt::RestoreError so ring fallback logic works unchanged.
class ChainReader : public ckpt::SectionSource {
 public:
  explicit ChainReader(const std::string& path);

  [[nodiscard]] bool has(std::string_view name) const override {
    return resolved_.count(std::string(name)) != 0;
  }
  [[nodiscard]] std::vector<std::string> section_names() const override;
  const ckpt::EncodedSection& section(std::string_view name) override;
  [[nodiscard]] std::uint64_t fingerprint() const noexcept override {
    return fingerprint_;
  }
  [[nodiscard]] std::int64_t step() const noexcept override { return step_; }

  [[nodiscard]] const ElaMeta& meta() const noexcept { return meta_; }
  /// Generations (including this one) the resolution touched.
  [[nodiscard]] const std::vector<std::int64_t>& sources() const noexcept {
    return sources_;
  }

  /// Does `path` name a chain generation? (Cheap envelope probe; false
  /// for plain checkpoints and unreadable files.)
  static bool is_chain_file(const std::string& path) noexcept;

 private:
  void reassemble_particles();

  ElaMeta meta_{};
  std::uint64_t fingerprint_ = 0;
  std::int64_t step_ = 0;
  std::map<std::string, ckpt::EncodedSection, std::less<>> resolved_;
  std::vector<std::int64_t> sources_;
};

/// Chain-aware pruning: keep the newest `keep_chains` complete chains in
/// the ring and remove every generation of older chains — never orphaning
/// a delta whose base was pruned. Plain (non-chain) generations count as
/// single-generation chains. Returns the number of files removed.
std::size_t prune_chains(const std::string& ring_base, int keep_chains);

}  // namespace vpic::elastic
