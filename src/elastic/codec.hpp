// elastic/codec.hpp
//
// Lossless streaming codec for checkpoint particle payloads
// (docs/ELASTIC.md). The canonical on-disk particle record is the 32-byte
// packed AoS Particle (dx, dy, dz, i, ux, uy, uz, w); DeltaPack exploits
// its redundancy without ever rounding a bit:
//
//   * the payload is transposed into one stream per 4-byte record field
//     (positions, voxel index, momenta, weight), so values with the same
//     statistics are adjacent,
//   * each stream is XOR-delta coded against its previous value — cell
//     offsets are already cell-base-relative (VPIC keeps dx,dy,dz in
//     [-1,1], i.e. delta-encoded against the cell base coordinate by
//     construction), so neighboring particles share sign/exponent bytes;
//     sorted voxel indices differ by small integers; uniform weights XOR
//     to exactly zero,
//   * every XOR word is stored in its minimal byte width (0, 1, 2 or 4
//     low-order bytes) selected by a 2-bit control code packed into a
//     separate control stream.
//
// Decoding reverses the three steps exactly: the round trip is
// bit-identical for every input (asserted by tests/test_elastic.cpp),
// which is what lets the incremental checkpoint path compress particle
// sections while keeping the bit-identical-restore guarantee of
// docs/CHECKPOINT.md. Encoders never lose data on hostile input either:
// callers fall back to the raw payload when the packed stream is not
// smaller (elastic::write_generation does this per section).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vpic::elastic {

/// Per-section codec tag recorded in the chain manifest (delta.hpp).
enum class Codec : std::uint8_t {
  None = 0,      // payload stored verbatim
  DeltaPack = 1, // field-transposed XOR-delta byte packing (this header)
};

const char* to_string(Codec c) noexcept;

/// Encode `n` bytes of `elem_size`-byte records. `elem_size` must be a
/// non-zero multiple of 4 and must divide `n`; otherwise (and for n == 0)
/// the encoder returns an empty vector, which callers treat as "store
/// raw". The output is self-delimiting given (n, elem_size).
std::vector<std::byte> deltapack_encode(const std::byte* data, std::size_t n,
                                        std::uint32_t elem_size);

/// Decode a deltapack stream back into exactly `raw_bytes` bytes at
/// `dst`. Returns false (without touching `dst` past the failure point)
/// when the stream is malformed or disagrees with (raw_bytes, elem_size):
/// a corrupt stream is a typed restore failure, never UB.
bool deltapack_decode(const std::byte* src, std::size_t src_bytes,
                      std::byte* dst, std::size_t raw_bytes,
                      std::uint32_t elem_size);

}  // namespace vpic::elastic
