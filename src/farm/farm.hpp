// farm/farm.hpp — umbrella header for vpic::farm, the multi-tenant
// simulation run farm (docs/FARM.md): fair-share scheduling of many decks
// on a fixed worker budget, cooperative checkpoint-based preemption on
// the vpic::ckpt generation ring, and live steering / in-situ diagnostics
// over a localhost wire protocol.
#pragma once

#include "farm/job.hpp"        // JobSpec / JobStatus / JobState
#include "farm/scheduler.hpp"  // Scheduler: queue, WFQ slicing, preemption
#include "farm/status_bus.hpp" // StatusBus + WireClient: live steering
#include "farm/wire.hpp"       // length-prefixed framing
