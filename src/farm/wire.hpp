// farm/wire.hpp
//
// Length-prefixed framing for the farm steering protocol (docs/FARM.md):
// each frame is a little-endian u32 payload length followed by the
// payload bytes. Requests are one-line text commands, responses are JSON
// documents — the framing is payload-agnostic either way.
//
// The codec is split from the socket I/O so tests can exercise framing on
// byte buffers without a live connection.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace vpic::farm::wire {

/// Hard ceiling on a frame payload. A header announcing more than this is
/// treated as protocol corruption, not a large message.
inline constexpr std::size_t kMaxFrameBytes = std::size_t{1} << 20;

/// Serialize one frame: 4-byte LE length header + payload.
[[nodiscard]] std::string encode_frame(std::string_view payload);

/// Parse one frame from the front of `bytes`. Returns the number of bytes
/// consumed and fills `payload`; returns 0 when `bytes` does not yet hold
/// a complete frame. Throws std::length_error when the header announces
/// more than `max_bytes`.
std::size_t decode_frame(std::string_view bytes, std::string& payload,
                         std::size_t max_bytes = kMaxFrameBytes);

/// Write one frame to a socket/pipe fd, retrying on short writes and
/// EINTR. Returns false on error (closed peer included).
bool send_frame(int fd, std::string_view payload);

/// Read one complete frame from fd into `payload`, retrying on short
/// reads and EINTR. Returns false on EOF, error, or an oversize header.
bool recv_frame(int fd, std::string& payload,
                std::size_t max_bytes = kMaxFrameBytes);

}  // namespace vpic::farm::wire
