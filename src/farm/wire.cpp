#include "farm/wire.hpp"

#include <cerrno>
#include <cstdint>
#include <stdexcept>

#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

namespace vpic::farm::wire {

std::string encode_frame(std::string_view payload) {
  const auto n = static_cast<std::uint32_t>(payload.size());
  std::string out;
  out.reserve(4 + payload.size());
  out.push_back(static_cast<char>(n & 0xffu));
  out.push_back(static_cast<char>((n >> 8) & 0xffu));
  out.push_back(static_cast<char>((n >> 16) & 0xffu));
  out.push_back(static_cast<char>((n >> 24) & 0xffu));
  out.append(payload);
  return out;
}

std::size_t decode_frame(std::string_view bytes, std::string& payload,
                         std::size_t max_bytes) {
  if (bytes.size() < 4) return 0;
  const auto b = [&](int i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[i]));
  };
  const std::uint32_t n = b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
  if (n > max_bytes)
    throw std::length_error("farm::wire: frame of " + std::to_string(n) +
                            " bytes exceeds the " +
                            std::to_string(max_bytes) + "-byte limit");
  if (bytes.size() < 4 + static_cast<std::size_t>(n)) return 0;
  payload.assign(bytes.data() + 4, n);
  return 4 + static_cast<std::size_t>(n);
}

namespace {

bool write_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    // MSG_NOSIGNAL: a peer that hung up yields EPIPE, not a SIGPIPE kill.
    const ssize_t w = ::send(fd, data, len, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    len -= static_cast<std::size_t>(w);
  }
  return true;
}

bool read_all(int fd, char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t r = ::recv(fd, data, len, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // EOF mid-frame
    data += r;
    len -= static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

bool send_frame(int fd, std::string_view payload) {
  const std::string framed = encode_frame(payload);
  return write_all(fd, framed.data(), framed.size());
}

bool recv_frame(int fd, std::string& payload, std::size_t max_bytes) {
  char hdr[4];
  if (!read_all(fd, hdr, 4)) return false;
  const auto b = [&](int i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(hdr[i]));
  };
  const std::uint32_t n = b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
  if (n > max_bytes) return false;
  payload.resize(n);
  return n == 0 || read_all(fd, payload.data(), n);
}

}  // namespace vpic::farm::wire
