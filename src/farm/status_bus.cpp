#include "farm/status_bus.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "farm/wire.hpp"
#include "prof/prof.hpp"

namespace vpic::farm {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string fmt_double(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

std::string ok_json(bool ok, const std::string& error = {}) {
  if (ok) return "{\"ok\":true}";
  return "{\"ok\":false,\"error\":\"" + json_escape(error) + "\"}";
}

/// One vpic-bench-v1 record per job: its JobStatus plus every prof
/// counter recorded under the job's "job.<name>." scope.
std::string status_record(
    const JobStatus& s,
    const std::vector<std::pair<std::string, std::uint64_t>>& counters) {
  std::ostringstream os;
  os << "{\"bench\":\"farm_status\""
     << ",\"job\":\"" << json_escape(s.name) << "\""
     << ",\"state\":\"" << to_string(s.state) << "\""
     << ",\"step\":" << s.step
     << ",\"total_steps\":" << s.total_steps
     << ",\"priority\":" << s.priority
     << ",\"weight\":" << s.weight
     << ",\"slices\":" << s.slices
     << ",\"preemptions\":" << s.preemptions
     << ",\"restores\":" << s.restores
     << ",\"checkpoints\":" << s.checkpoints
     << ",\"rescales\":" << s.rescales
     << ",\"rescale_workers\":" << s.rescale_workers
     << ",\"rescale_tiles\":" << s.rescale_tiles
     << ",\"vtime\":" << fmt_double(s.vtime)
     << ",\"field_energy\":" << fmt_double(s.field_energy)
     << ",\"kinetic\":[";
  for (std::size_t i = 0; i < s.kinetic.size(); ++i)
    os << (i ? "," : "") << fmt_double(s.kinetic[i]);
  os << "],\"latency_s\":" << fmt_double(s.latency_s);
  if (!s.error.empty())
    os << ",\"error\":\"" << json_escape(s.error) << "\"";
  const std::string prefix = "job." + s.name + ".";
  os << ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (name.size() <= prefix.size() ||
        name.compare(0, prefix.size(), prefix) != 0)
      continue;
    os << (first ? "" : ",") << "\"" << json_escape(name.substr(prefix.size()))
       << "\":" << value;
    first = false;
  }
  os << "}}";
  return os.str();
}

}  // namespace

// ---- StatusBus ------------------------------------------------------

StatusBus::StatusBus(Scheduler& sched, std::uint16_t port) : sched_(sched) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error("farm::StatusBus: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // steering is local-only
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 8) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error(
        std::string("farm::StatusBus: bind/listen failed: ") +
        std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
  acceptor_ = std::thread([this] { accept_loop(); });
}

StatusBus::~StatusBus() {
  {
    std::lock_guard lk(conn_mu_);
    stopping_ = true;
    // Unblocks accept(); recv() on live connections returns 0.
    ::shutdown(listen_fd_, SHUT_RDWR);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  acceptor_.join();
  for (auto& t : conn_threads_) t.join();
  for (int fd : conn_fds_) ::close(fd);
  ::close(listen_fd_);
}

void StatusBus::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    std::lock_guard lk(conn_mu_);
    if (stopping_) {
      if (fd >= 0) ::close(fd);
      return;
    }
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listen socket gone
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { serve(fd); });
  }
}

void StatusBus::serve(int fd) {
  std::string request;
  while (wire::recv_frame(fd, request)) {
    if (!wire::send_frame(fd, handle_command(request))) break;
  }
  // fd is closed by the destructor (which owns conn_fds_); a shutdown
  // here would be redundant.
}

std::string StatusBus::handle_command(const std::string& request) {
  std::istringstream is(request);
  std::string verb, job;
  is >> verb;
  if (verb == "ping") return "{\"ok\":true,\"pong\":true}";
  if (verb == "status") {
    const auto jobs = sched_.snapshot();
    const auto counters = prof::report().counters;
    std::ostringstream os;
    os << "{\"schema\":\"vpic-bench-v1\",\"bench\":\"farm_status\","
          "\"records\":[";
    for (std::size_t i = 0; i < jobs.size(); ++i)
      os << (i ? "," : "") << status_record(jobs[i], counters);
    os << "]}";
    return os.str();
  }
  if (verb == "rescale") {
    int workers = 0, tiles = 0;
    if (!(is >> job >> workers))
      return ok_json(false, "rescale: usage: rescale <job> <workers> [tiles]");
    is >> tiles;  // optional; stays 0 (auto) when absent
    return sched_.rescale(job, workers, tiles)
               ? ok_json(true)
               : ok_json(false,
                         "rescale: no such job, terminal state, or bad "
                         "worker count: '" + job + "'");
  }
  if (verb == "pause" || verb == "resume" || verb == "cancel" ||
      verb == "preempt" || verb == "prio") {
    if (!(is >> job))
      return ok_json(false, verb + ": missing job name");
    bool ok = false;
    if (verb == "pause") {
      ok = sched_.pause(job);
    } else if (verb == "resume") {
      ok = sched_.resume(job);
    } else if (verb == "preempt") {
      ok = sched_.preempt(job);
    } else if (verb == "cancel") {
      std::string flag;
      is >> flag;
      if (!flag.empty() && flag != "drop")
        return ok_json(false, "cancel: unknown flag '" + flag + "'");
      ok = sched_.cancel(job, flag == "drop");
    } else {  // prio
      int prio = 0;
      if (!(is >> prio))
        return ok_json(false, "prio: missing integer priority");
      ok = sched_.set_priority(job, prio);
    }
    return ok ? ok_json(true)
              : ok_json(false, verb + ": no such job or inapplicable state: '" +
                                   job + "'");
  }
  return ok_json(false, "unknown command: '" + verb + "'");
}

// ---- WireClient -----------------------------------------------------

WireClient::WireClient(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("farm::WireClient: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("farm::WireClient: connect to 127.0.0.1:" +
                             std::to_string(port) + " failed: " +
                             std::strerror(errno));
  }
}

WireClient::~WireClient() {
  if (fd_ >= 0) ::close(fd_);
}

std::string WireClient::request(const std::string& command) {
  if (!wire::send_frame(fd_, command))
    throw std::runtime_error("farm::WireClient: send failed");
  std::string response;
  if (!wire::recv_frame(fd_, response))
    throw std::runtime_error("farm::WireClient: connection closed");
  return response;
}

}  // namespace vpic::farm
