// farm/job.hpp
//
// Job model of the vpic::farm run farm (docs/FARM.md): a job is a deck —
// a factory producing a ready-to-run core::Simulation — plus a step
// budget and scheduling parameters. Decks stay decoupled from the engine
// that multiplexes them (the chombo-discharge "solvers behind stable
// interfaces" idea): the scheduler only ever sees the Simulation API
// (run_until / checkpoint / restore_latest), never deck internals.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/simulation.hpp"

namespace vpic::farm {

/// Lifecycle of a job (docs/FARM.md has the transition diagram).
///   Queued    — runnable; a live Simulation may be resident from an
///               earlier slice (ordinary yield keeps it warm).
///   Running   — a worker is stepping it right now.
///   Preempted — runnable, but its engine state was checkpointed to the
///               per-job ring and the Simulation released; the next slice
///               rebuilds from the deck factory and restores.
///   Paused    — not runnable until resume(); state parked in the ring.
///   Completed / Cancelled / Failed — terminal.
enum class JobState : std::uint8_t {
  Queued,
  Running,
  Preempted,
  Paused,
  Completed,
  Cancelled,
  Failed,
};

const char* to_string(JobState s) noexcept;

/// Everything the farm needs to run one simulation job.
struct JobSpec {
  /// Unique within a Scheduler; also names the per-job checkpoint ring
  /// and the "job.<name>." prof counter scope.
  std::string name;
  /// Deck factory: builds the simulation from scratch, deterministically.
  /// Called once on first run and again after every preemption (the
  /// rebuilt simulation is then restored from the ring), so it must
  /// produce the same deck/config each time — restore verifies the
  /// config fingerprint and throws on drift.
  std::function<core::Simulation()> make;
  /// The job is complete when step_count() reaches this.
  std::int64_t total_steps = 0;
  /// Strict scheduling class: a runnable higher-priority job preempts a
  /// lower-priority running one when no worker is idle.
  int priority = 0;
  /// Fair-share weight within a priority class: a weight-2 job receives
  /// twice the simulation steps of a weight-1 peer under contention.
  int weight = 1;
  /// Per-job generation ring base for preemption/pause checkpoints.
  /// Empty: "<Scheduler ring_dir>/<name>".
  std::string ckpt_base;
  int ckpt_keep_last = 2;
  /// Observer called after every completed slice with the quiescent
  /// simulation (in-situ diagnostics, steering experiments). Runs on the
  /// worker thread; must not call back into the Scheduler.
  std::function<void(const core::Simulation&)> on_slice;
  /// Called once with the final simulation state right before the farm
  /// releases it (final outputs, state checksums). Worker thread; may
  /// not call back into the Scheduler.
  std::function<void(core::Simulation&)> on_complete;
};

/// Point-in-time public view of a job (Scheduler::snapshot, StatusBus).
/// Energies are sampled at slice boundaries — the in-situ diagnostics the
/// StatusBus streams — never concurrently with a stepping engine.
struct JobStatus {
  std::string name;
  JobState state = JobState::Queued;
  std::int64_t step = 0;
  std::int64_t total_steps = 0;
  int priority = 0;
  int weight = 1;
  std::int64_t slices = 0;
  std::int64_t preemptions = 0;   // checkpoint-and-release yields
  std::int64_t restores = 0;      // factory-rebuild + ring restores
  std::int64_t checkpoints = 0;   // ring generations written
  std::int64_t rescales = 0;      // Scheduler::rescale calls accepted
  int rescale_workers = 0;        // active worker override (0: deck default)
  int rescale_tiles = 0;          // active tile-count override (0: auto)
  double vtime = 0;               // weighted fair-queueing virtual time
  double field_energy = 0;        // last slice-boundary sample
  std::vector<double> kinetic;    // per species, same sample
  /// Submit-to-terminal wall latency (seconds); 0 until terminal.
  double latency_s = 0;
  std::string error;              // what() of the failure, state Failed
};

}  // namespace vpic::farm
