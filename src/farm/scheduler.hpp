// farm/scheduler.hpp
//
// vpic::farm — a multi-tenant simulation run farm (docs/FARM.md): a job
// queue of decks multiplexed onto a fixed worker budget with weighted
// fair time-slicing in units of simulation steps, strict priority
// classes, and cooperative checkpoint-based preemption on the vpic::ckpt
// generation ring.
//
// Scheduling policy:
//   * `max_concurrent` worker threads each run one job at a time — the
//     farm's concurrency budget. Decks typically pin small kernel-thread
//     counts (pk::initialize) so N tenants spread across cores instead of
//     oversubscribing one kernel's team.
//   * A quantum is `slice_steps` whole simulation steps. After a slice
//     the job goes back to the queue and the worker picks the runnable
//     job with the highest priority, ties broken by lowest virtual time.
//     Virtual time advances by steps/weight, so equal-priority jobs
//     converge to step shares proportional to their weights (weighted
//     fair queueing). A newly submitted job starts at the minimum live
//     vtime: it gets service promptly but cannot monopolize the farm.
//   * Preemption is cooperative and checkpoint-based: when a runnable
//     job outranks every running one and no worker is idle, the
//     lowest-priority running job is asked to yield. It stops at the next
//     step boundary, checkpoints to its per-job generation ring,
//     releases the engine (freeing its memory), and requeues as
//     Preempted; the resume path rebuilds the deck and restores
//     bit-identically (the vpic::ckpt guarantee).
//   * An ordinary end-of-slice yield keeps the Simulation resident —
//     checkpoint cost is only paid when the slot or the memory is
//     actually needed (preempt/pause) or on explicit request.
//
// Thread-safety: every public method may be called from any thread
// (the StatusBus serves them over the wire). JobSpec callbacks run on
// worker threads and must not call back into the Scheduler.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "farm/job.hpp"

namespace vpic::farm {

struct SliceOutcome;

class Scheduler {
 public:
  struct Options {
    /// Worker threads == maximum concurrently stepping jobs.
    int max_concurrent = 2;
    /// Scheduling quantum in simulation steps.
    std::int64_t slice_steps = 8;
    /// Directory for per-job checkpoint rings when JobSpec::ckpt_base is
    /// empty (created on first use; rings are siblings, one per job name).
    std::string ring_dir = ".vpic_farm";
  };

  Scheduler();  // default Options
  explicit Scheduler(Options opt);
  /// Stops accepting work, asks running slices to yield at the next step
  /// boundary, and joins the workers. Non-terminal jobs are left as-is
  /// (their rings persist; a future Scheduler can resubmit and resume).
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Enqueue a job. Throws std::invalid_argument on a duplicate or empty
  /// name, a missing factory, or total_steps < 1. If the job's ring
  /// already holds generations (a previous farm run), the first slice
  /// restores from it and continues — submit-with-existing-ring IS the
  /// farm's crash-recovery path.
  void submit(JobSpec spec);

  // ---- steering (all return false for an unknown name or a state the
  // ---- transition does not apply to) --------------------------------
  /// Park a job: running → yields at the next step boundary, checkpoints
  /// to its ring and releases the engine; queued → parks immediately.
  bool pause(const std::string& name);
  /// Make a Paused job runnable again.
  bool resume(const std::string& name);
  /// Terminal stop. `drop_checkpoints` purges the job's ring too.
  bool cancel(const std::string& name, bool drop_checkpoints = false);
  /// Force an immediate checkpoint-and-release yield (running jobs) or
  /// park-to-ring of a resident queued job. The job stays runnable.
  bool preempt(const std::string& name);
  /// Re-prioritize; may trigger a preemption of a lower-priority runner.
  bool set_priority(const std::string& name, int priority);
  /// Elastic rescale (docs/ELASTIC.md): the next time the job's engine is
  /// rebuilt it runs with `workers` stealing-pool threads and, when
  /// `tiles` > 0, that many z-slab tiles (TileConfig — excluded from the
  /// checkpoint fingerprint, so the parked state restores unchanged). A
  /// running job is preempted so the new shape takes effect promptly; a
  /// resident queued job is parked. The override persists across further
  /// preemptions until the next rescale. `workers` < 1 or an unknown /
  /// terminal job returns false.
  bool rescale(const std::string& name, int workers, int tiles = 0);

  /// Status of every job ever submitted, in submission order.
  [[nodiscard]] std::vector<JobStatus> snapshot() const;
  /// Status of one job; nullopt for an unknown name.
  [[nodiscard]] std::optional<JobStatus> status(const std::string& name) const;

  /// Block until `name` reaches a terminal state (Completed / Cancelled /
  /// Failed). Returns its final status; nullopt for an unknown name.
  std::optional<JobStatus> wait(const std::string& name);
  /// Block until no job is runnable or running (Paused jobs do not hold
  /// wait_idle open — they only move on explicit resume()).
  void wait_idle();

  [[nodiscard]] const Options& options() const noexcept { return opt_; }

 private:
  struct Job;

  void worker_loop();
  /// Highest priority, then lowest vtime, then submission order; nullptr
  /// when nothing is runnable. Caller holds mu_.
  Job* pick_runnable_locked();
  /// If a runnable job outranks a running one and no worker is idle, flag
  /// the weakest runner to yield-and-checkpoint. Caller holds mu_.
  void maybe_preempt_locked();
  /// Checkpoint `j`'s resident engine to its ring and release it. The
  /// engine must be quiescent (between slices / inline under mu_).
  void park_to_ring(Job& j);
  /// One scheduling quantum, run with mu_ dropped: build/restore the
  /// engine if needed, step to the slice target or an early yield, sample
  /// energies. Returns what happened; the caller applies it under mu_.
  /// `workers`/`tiles` are the job's rescale overrides, snapshotted under
  /// mu_ by the caller (0 = deck default).
  SliceOutcome run_slice(Job& j, bool restore_from_ring, int workers,
                         int tiles);
  void finalize_locked(Job& j, JobState terminal, const std::string& error);
  [[nodiscard]] JobStatus status_of_locked(const Job& j) const;

  Options opt_;
  mutable std::mutex mu_;
  std::condition_variable cv_work_;   // workers: runnable job / stop
  std::condition_variable cv_state_;  // wait()/wait_idle() watchers
  std::vector<std::unique_ptr<Job>> jobs_;  // stable addresses
  int running_ = 0;                   // jobs in state Running
  bool stop_ = false;
  std::vector<std::thread> workers_;  // last member: joined first
};

}  // namespace vpic::farm
