// farm/status_bus.hpp
//
// Live steering + in-situ diagnostics for a running farm (docs/FARM.md):
// a localhost TCP server speaking the length-prefixed wire protocol
// (farm/wire.hpp). Requests are one-line text commands:
//
//   ping                      liveness probe
//   status                    full farm snapshot (see below)
//   pause <job>               Scheduler::pause
//   resume <job>              Scheduler::resume
//   cancel <job> [drop]       Scheduler::cancel ("drop" purges the ring)
//   preempt <job>             Scheduler::preempt
//   prio <job> <int>          Scheduler::set_priority
//   rescale <job> <workers> [tiles]
//                             Scheduler::rescale — park the job and
//                             resume it at a new tile-worker shape
//                             (elastic rescale, docs/ELASTIC.md)
//
// Command responses are one JSON object: {"ok":true,...} or
// {"ok":false,"error":"..."}. The `status` response reuses the
// vpic-bench-v1 report envelope — {"schema":"vpic-bench-v1","bench":
// "farm_status","records":[...]} with one record per job carrying its
// JobStatus (state, step, priorities, vtime, preemption/restore counts,
// slice-boundary energies) plus the job's "job.<name>.*" prof counters —
// so tools/check_bench_schema.py and every BenchReport consumer can parse
// a live farm the same way they parse a bench artifact.
//
// The bus binds 127.0.0.1 only: steering is a local-operator interface,
// not a network service.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "farm/scheduler.hpp"

namespace vpic::farm {

class StatusBus {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral, read back via port()) and
  /// serves until destruction. Throws std::runtime_error when the socket
  /// cannot be bound. The Scheduler must outlive the bus.
  explicit StatusBus(Scheduler& sched, std::uint16_t port = 0);
  ~StatusBus();
  StatusBus(const StatusBus&) = delete;
  StatusBus& operator=(const StatusBus&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Execute one steering command and return the JSON response — exactly
  /// what the socket serves for the same payload. Public so embedders and
  /// tests can drive the command surface without a connection.
  [[nodiscard]] std::string handle_command(const std::string& request);

 private:
  void accept_loop();
  void serve(int fd);

  Scheduler& sched_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::mutex conn_mu_;
  std::vector<int> conn_fds_;           // live connections (shutdown on stop)
  std::vector<std::thread> conn_threads_;
  bool stopping_ = false;               // guarded by conn_mu_
  std::thread acceptor_;                // last member: joined first
};

/// Minimal steering client for the bus: connects to 127.0.0.1:port and
/// exchanges one frame per request(). Used by tests, examples and the
/// bench harness; throws std::runtime_error on connect/wire failures.
class WireClient {
 public:
  explicit WireClient(std::uint16_t port);
  ~WireClient();
  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// Send one command, return the JSON response payload.
  std::string request(const std::string& command);

 private:
  int fd_ = -1;
};

}  // namespace vpic::farm
