// farm/scheduler.cpp — worker pool, weighted fair queueing, and the
// checkpoint-based preemption lifecycle (docs/FARM.md).
//
// Locking model: one mutex (mu_) guards the job table and every status
// field. Workers step simulations with the lock dropped; a job's engine
// (Job::sim) is touched only by the worker that owns it while the job is
// Running, or inline under mu_ for jobs that are provably not running
// (queued-resident pause/preempt). The per-step yield flag is the only
// cross-thread signal read without the lock — an atomic the engine polls
// between steps via Simulation::run_until.

#include "farm/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <limits>
#include <stdexcept>

#include "ckpt/ring.hpp"
#include "prof/prof.hpp"

namespace vpic::farm {

namespace fs = std::filesystem;
using clock_t_ = std::chrono::steady_clock;

const char* to_string(JobState s) noexcept {
  switch (s) {
    case JobState::Queued:
      return "queued";
    case JobState::Running:
      return "running";
    case JobState::Preempted:
      return "preempted";
    case JobState::Paused:
      return "paused";
    case JobState::Completed:
      return "completed";
    case JobState::Cancelled:
      return "cancelled";
    case JobState::Failed:
      return "failed";
  }
  return "?";
}

namespace {

bool is_terminal(JobState s) noexcept {
  return s == JobState::Completed || s == JobState::Cancelled ||
         s == JobState::Failed;
}

bool is_runnable(JobState s) noexcept {
  return s == JobState::Queued || s == JobState::Preempted;
}

}  // namespace

struct Scheduler::Job {
  JobSpec spec;
  std::size_t index = 0;  // submission order (final fairness tiebreak)
  std::string ring_base;
  JobState state = JobState::Queued;
  std::int64_t step = 0;
  double vtime = 0;
  std::int64_t slices = 0;
  std::int64_t preemptions = 0;
  std::int64_t restores = 0;
  std::int64_t checkpoints = 0;
  // Set by steering calls, polled by the engine between steps
  // (Simulation::run_until); cleared by the owning worker at slice start.
  std::atomic<bool> yield{false};
  // Steering intents, guarded by mu_; applied by the owning worker after
  // the slice for Running jobs, inline otherwise.
  bool cancel_req = false;
  bool pause_req = false;
  bool preempt_req = false;
  bool drop_ckpt_on_cancel = false;
  bool has_ckpt = false;  // the ring holds at least one generation
  // Elastic rescale overrides (docs/ELASTIC.md), guarded by mu_; 0 means
  // "deck default". Snapshotted by the owning worker before the slice and
  // applied to the freshly built engine's TileConfig ahead of restore.
  int workers_override = 0;
  int tiles_override = 0;
  std::int64_t rescales = 0;
  std::optional<core::Simulation> sim;  // resident engine (may be parked)
  double field_energy = 0;
  std::vector<double> kinetic;
  std::string error;
  clock_t_::time_point submitted{};
  double latency_s = 0;
};

/// Everything a slice produced, applied to the job under mu_ afterwards
/// (keeps worker-side writes to shared fields lock-protected for TSan).
struct SliceOutcome {
  std::int64_t step = 0;
  std::int64_t taken = 0;
  std::int64_t restores = 0;
  double field_energy = 0;
  std::vector<double> kinetic;
  bool failed = false;
  std::string error;
};

Scheduler::Scheduler() : Scheduler(Options{}) {}

Scheduler::Scheduler(Options opt) : opt_(std::move(opt)) {
  opt_.max_concurrent = std::max(1, opt_.max_concurrent);
  opt_.slice_steps = std::max<std::int64_t>(1, opt_.slice_steps);
  if (opt_.ring_dir.empty()) opt_.ring_dir = ".vpic_farm";
  workers_.reserve(static_cast<std::size_t>(opt_.max_concurrent));
  for (int i = 0; i < opt_.max_concurrent; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

Scheduler::~Scheduler() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
    // Running slices end at the next step boundary and park to their
    // rings, so in-flight progress survives a farm shutdown.
    for (auto& j : jobs_)
      if (j->state == JobState::Running)
        j->yield.store(true, std::memory_order_relaxed);
    cv_work_.notify_all();
  }
  for (auto& w : workers_) w.join();
}

void Scheduler::submit(JobSpec spec) {
  if (spec.name.empty())
    throw std::invalid_argument("farm: job name must not be empty");
  if (!spec.make)
    throw std::invalid_argument("farm: job '" + spec.name +
                                "' has no deck factory");
  if (spec.total_steps < 1)
    throw std::invalid_argument("farm: job '" + spec.name +
                                "' must run at least one step");
  std::lock_guard lk(mu_);
  if (stop_)
    throw std::runtime_error("farm: scheduler is shutting down");
  for (const auto& j : jobs_)
    if (j->spec.name == spec.name)
      throw std::invalid_argument("farm: duplicate job name '" + spec.name +
                                  "'");
  auto job = std::make_unique<Job>();
  job->index = jobs_.size();
  job->ring_base = spec.ckpt_base.empty() ? opt_.ring_dir + "/" + spec.name
                                          : spec.ckpt_base;
  job->spec = std::move(spec);
  job->submitted = clock_t_::now();
  // A ring with committed generations means a previous farm (or run) was
  // interrupted: the first slice restores and continues from it.
  job->has_ckpt = !ckpt::GenerationRing(job->ring_base,
                                        job->spec.ckpt_keep_last)
                       .generations()
                       .empty();
  // Start at the minimum live virtual time: prompt service without
  // letting a latecomer replay the head start others already consumed.
  double vmin = std::numeric_limits<double>::infinity();
  for (const auto& j : jobs_)
    if (!is_terminal(j->state) && j->state != JobState::Paused)
      vmin = std::min(vmin, j->vtime);
  job->vtime = std::isinf(vmin) ? 0.0 : vmin;
  jobs_.push_back(std::move(job));
  maybe_preempt_locked();
  cv_work_.notify_one();
}

Scheduler::Job* Scheduler::pick_runnable_locked() {
  Job* best = nullptr;
  for (const auto& j : jobs_) {
    if (!is_runnable(j->state)) continue;
    if (!best || j->spec.priority > best->spec.priority ||
        (j->spec.priority == best->spec.priority && j->vtime < best->vtime))
      best = j.get();
  }
  return best;
}

void Scheduler::maybe_preempt_locked() {
  int running = 0;
  for (const auto& j : jobs_)
    if (j->state == JobState::Running) ++running;
  if (running < opt_.max_concurrent) return;  // an idle worker exists
  const Job* waiting = pick_runnable_locked();
  if (!waiting) return;
  // Weakest runner: lowest priority, then largest vtime (most served).
  Job* victim = nullptr;
  for (const auto& j : jobs_) {
    if (j->state != JobState::Running) continue;
    if (j->preempt_req || j->pause_req || j->cancel_req) continue;
    if (!victim || j->spec.priority < victim->spec.priority ||
        (j->spec.priority == victim->spec.priority &&
         j->vtime > victim->vtime))
      victim = j.get();
  }
  if (victim && waiting->spec.priority > victim->spec.priority) {
    victim->preempt_req = true;
    victim->yield.store(true, std::memory_order_relaxed);
  }
}

void Scheduler::park_to_ring(Job& j) {
  if (!j.sim) return;
  const fs::path base(j.ring_base);
  if (base.has_parent_path()) {
    std::error_code ec;
    fs::create_directories(base.parent_path(), ec);
  }
  ckpt::GenerationRing ring(j.ring_base, j.spec.ckpt_keep_last);
  j.sim->checkpoint(ring.path_for(ring.next_generation()));
  ring.prune();
  j.sim.reset();
}

SliceOutcome Scheduler::run_slice(Job& j, bool restore_from_ring,
                                  int workers, int tiles) {
  SliceOutcome out;
  try {
    // Every engine counter fired during this slice (sort/push dispatch,
    // tune cache events, ...) lands under the job's namespace.
    prof::CounterScope scope("job." + j.spec.name + ".");
    if (!j.sim) {
      j.sim.emplace(j.spec.make());
      // Elastic rescale: the override reshapes the fresh engine before the
      // restore. Legal because TileConfig is excluded from the checkpoint
      // fingerprint — the parked state is shape-agnostic (docs/ELASTIC.md).
      if (workers > 0) {
        auto& t = j.sim->config().tiles;
        t.enabled = true;
        t.exec = core::TileExec::Stealing;
        t.workers = workers;
        if (tiles > 0) t.count = tiles;
        prof::counter_add("farm.rescale_applied");
      }
      if (restore_from_ring) {
        j.sim->restore_latest(j.ring_base);
        out.restores = 1;
        prof::counter_add("farm.restore");
      }
      // Tile-granular preemption observation (docs/TILES.md): a tiled
      // step polls between every (phase x tile) task, so a yield raised
      // mid-step is noticed within one tile's worth of work instead of a
      // whole step. The job still exits at the step boundary (the ckpt
      // ring needs a quiescent engine); the counter's value is the number
      // of phase polls that ran with a yield pending — a direct measure
      // of how quickly a preempt is seen. Untiled sims ignore the poll.
      j.sim->set_phase_poll([&j] {
        if (j.yield.load(std::memory_order_relaxed))
          prof::counter_add("farm.yield_seen_midstep");
      });
    }
    prof::counter_add("farm.slice");
    const std::int64_t target = std::min(
        j.sim->step_count() + opt_.slice_steps, j.spec.total_steps);
    out.taken = j.sim->run_until(target, [&j] {
      return j.yield.load(std::memory_order_relaxed);
    });
    out.step = j.sim->step_count();
    // Slice-boundary in-situ sample: the engine is quiescent here, so the
    // StatusBus never reads fields/particles racing a step.
    const auto e = j.sim->energies();
    out.field_energy = e.field;
    out.kinetic = e.species;
    if (j.spec.on_slice) j.spec.on_slice(*j.sim);
  } catch (const std::exception& e) {
    out.failed = true;
    out.error = e.what();
  } catch (...) {
    out.failed = true;
    out.error = "unknown error";
  }
  return out;
}

void Scheduler::worker_loop() {
  std::unique_lock lk(mu_);
  for (;;) {
    Job* j = nullptr;
    cv_work_.wait(lk, [&] {
      if (stop_) return true;
      j = pick_runnable_locked();
      return j != nullptr;
    });
    if (stop_) return;
    j->state = JobState::Running;
    ++running_;
    j->yield.store(false, std::memory_order_relaxed);
    j->preempt_req = false;
    const bool restore_from_ring = j->has_ckpt && !j->sim;
    const int workers = j->workers_override;
    const int tiles = j->tiles_override;
    lk.unlock();
    SliceOutcome out = run_slice(*j, restore_from_ring, workers, tiles);
    lk.lock();
    if (out.failed) {
      --running_;
      finalize_locked(*j, JobState::Failed, out.error);
      continue;
    }
    j->step = out.step;
    j->vtime += static_cast<double>(out.taken) /
                static_cast<double>(std::max(1, j->spec.weight));
    ++j->slices;
    j->restores += out.restores;
    j->field_energy = out.field_energy;
    j->kinetic = std::move(out.kinetic);
    const bool completed = out.step >= j->spec.total_steps;
    if (completed) {
      std::string cb_err;
      if (j->spec.on_complete) {
        lk.unlock();
        try {
          j->spec.on_complete(*j->sim);
        } catch (const std::exception& e) {
          cb_err = std::string("on_complete: ") + e.what();
        } catch (...) {
          cb_err = "on_complete: unknown error";
        }
        lk.lock();
      }
      --running_;
      finalize_locked(*j, cb_err.empty() ? JobState::Completed
                                         : JobState::Failed,
                      cb_err);
    } else if (j->cancel_req) {
      --running_;
      finalize_locked(*j, JobState::Cancelled, "");
    } else if (j->pause_req || j->preempt_req ||
               j->yield.load(std::memory_order_relaxed)) {
      // Preempt or pause: park the quiescent engine to the per-job ring
      // and release its memory; state survives on disk.
      const bool pausing = j->pause_req;
      lk.unlock();
      std::string park_err;
      try {
        park_to_ring(*j);
      } catch (const std::exception& e) {
        park_err = std::string("park: ") + e.what();
      } catch (...) {
        park_err = "park: unknown error";
      }
      lk.lock();
      --running_;
      if (!park_err.empty()) {
        finalize_locked(*j, JobState::Failed, park_err);
        continue;
      }
      j->has_ckpt = true;
      ++j->checkpoints;
      if (pausing) {
        j->state = JobState::Paused;
        j->pause_req = false;
      } else {
        j->state = JobState::Preempted;
        ++j->preemptions;
      }
      cv_work_.notify_all();
      cv_state_.notify_all();
    } else {
      // Ordinary end of quantum: requeue with the engine resident.
      --running_;
      j->state = JobState::Queued;
      cv_work_.notify_all();
      cv_state_.notify_all();
    }
  }
}

void Scheduler::finalize_locked(Job& j, JobState terminal,
                                const std::string& error) {
  j.sim.reset();
  j.state = terminal;
  j.error = error;
  j.latency_s =
      std::chrono::duration<double>(clock_t_::now() - j.submitted).count();
  if (terminal == JobState::Cancelled && j.drop_ckpt_on_cancel) {
    ckpt::GenerationRing(j.ring_base, j.spec.ckpt_keep_last).purge();
    j.has_ckpt = false;
  }
  cv_state_.notify_all();
  cv_work_.notify_all();
}

bool Scheduler::pause(const std::string& name) {
  std::lock_guard lk(mu_);
  for (const auto& jp : jobs_) {
    if (jp->spec.name != name) continue;
    Job& j = *jp;
    if (is_terminal(j.state) || j.state == JobState::Paused) return false;
    if (j.state == JobState::Running) {
      j.pause_req = true;
      j.yield.store(true, std::memory_order_relaxed);
      return true;  // applied by the owning worker at the step boundary
    }
    // Queued/Preempted: park inline (the engine is provably not stepping).
    const bool had_sim = j.sim.has_value();
    try {
      park_to_ring(j);
    } catch (const std::exception& e) {
      finalize_locked(j, JobState::Failed, std::string("park: ") + e.what());
      return false;
    }
    if (had_sim) {
      j.has_ckpt = true;
      ++j.checkpoints;
    }
    j.state = JobState::Paused;
    cv_state_.notify_all();
    return true;
  }
  return false;
}

bool Scheduler::resume(const std::string& name) {
  std::lock_guard lk(mu_);
  for (const auto& jp : jobs_) {
    if (jp->spec.name != name) continue;
    if (jp->state != JobState::Paused) return false;
    jp->state = jp->has_ckpt && !jp->sim ? JobState::Preempted
                                         : JobState::Queued;
    cv_work_.notify_all();
    cv_state_.notify_all();
    return true;
  }
  return false;
}

bool Scheduler::cancel(const std::string& name, bool drop_checkpoints) {
  std::lock_guard lk(mu_);
  for (const auto& jp : jobs_) {
    if (jp->spec.name != name) continue;
    Job& j = *jp;
    if (is_terminal(j.state)) return false;
    j.drop_ckpt_on_cancel = drop_checkpoints;
    if (j.state == JobState::Running) {
      j.cancel_req = true;
      j.yield.store(true, std::memory_order_relaxed);
      return true;
    }
    finalize_locked(j, JobState::Cancelled, "");
    return true;
  }
  return false;
}

bool Scheduler::preempt(const std::string& name) {
  std::lock_guard lk(mu_);
  for (const auto& jp : jobs_) {
    if (jp->spec.name != name) continue;
    Job& j = *jp;
    if (j.state == JobState::Running) {
      j.preempt_req = true;
      j.yield.store(true, std::memory_order_relaxed);
      return true;
    }
    if (is_runnable(j.state) && j.sim) {
      try {
        park_to_ring(j);
      } catch (const std::exception& e) {
        finalize_locked(j, JobState::Failed,
                        std::string("park: ") + e.what());
        return false;
      }
      j.has_ckpt = true;
      ++j.checkpoints;
      ++j.preemptions;
      j.state = JobState::Preempted;
      cv_state_.notify_all();
      return true;
    }
    return false;
  }
  return false;
}

bool Scheduler::set_priority(const std::string& name, int priority) {
  std::lock_guard lk(mu_);
  for (const auto& jp : jobs_) {
    if (jp->spec.name != name) continue;
    if (is_terminal(jp->state)) return false;
    jp->spec.priority = priority;
    maybe_preempt_locked();
    cv_work_.notify_all();
    return true;
  }
  return false;
}

bool Scheduler::rescale(const std::string& name, int workers, int tiles) {
  if (workers < 1) return false;
  std::lock_guard lk(mu_);
  for (const auto& jp : jobs_) {
    if (jp->spec.name != name) continue;
    Job& j = *jp;
    if (is_terminal(j.state)) return false;
    j.workers_override = workers;
    j.tiles_override = tiles;
    ++j.rescales;
    if (j.state == JobState::Running) {
      // Checkpoint-and-release at the next step boundary; the rebuild
      // picks up the new shape before restoring.
      j.preempt_req = true;
      j.yield.store(true, std::memory_order_relaxed);
      return true;
    }
    if (is_runnable(j.state) && j.sim) {
      // Resident but not stepping: park inline so the next slice rebuilds
      // at the new shape instead of continuing the warm engine.
      try {
        park_to_ring(j);
      } catch (const std::exception& e) {
        finalize_locked(j, JobState::Failed,
                        std::string("park: ") + e.what());
        return false;
      }
      j.has_ckpt = true;
      ++j.checkpoints;
      j.state = JobState::Preempted;
      cv_work_.notify_all();
      cv_state_.notify_all();
    }
    // Paused or already-parked jobs: the override simply applies when the
    // engine is next rebuilt.
    return true;
  }
  return false;
}

JobStatus Scheduler::status_of_locked(const Job& j) const {
  JobStatus s;
  s.name = j.spec.name;
  s.state = j.state;
  s.step = j.step;
  s.total_steps = j.spec.total_steps;
  s.priority = j.spec.priority;
  s.weight = j.spec.weight;
  s.slices = j.slices;
  s.preemptions = j.preemptions;
  s.restores = j.restores;
  s.checkpoints = j.checkpoints;
  s.rescales = j.rescales;
  s.rescale_workers = j.workers_override;
  s.rescale_tiles = j.tiles_override;
  s.vtime = j.vtime;
  s.field_energy = j.field_energy;
  s.kinetic = j.kinetic;
  s.latency_s = j.latency_s;
  s.error = j.error;
  return s;
}

std::vector<JobStatus> Scheduler::snapshot() const {
  std::lock_guard lk(mu_);
  std::vector<JobStatus> out;
  out.reserve(jobs_.size());
  for (const auto& j : jobs_) out.push_back(status_of_locked(*j));
  return out;
}

std::optional<JobStatus> Scheduler::status(const std::string& name) const {
  std::lock_guard lk(mu_);
  for (const auto& j : jobs_)
    if (j->spec.name == name) return status_of_locked(*j);
  return std::nullopt;
}

std::optional<JobStatus> Scheduler::wait(const std::string& name) {
  std::unique_lock lk(mu_);
  Job* j = nullptr;
  for (const auto& jp : jobs_)
    if (jp->spec.name == name) j = jp.get();
  if (!j) return std::nullopt;
  cv_state_.wait(lk, [&] { return is_terminal(j->state); });
  return status_of_locked(*j);
}

void Scheduler::wait_idle() {
  std::unique_lock lk(mu_);
  cv_state_.wait(lk, [&] {
    for (const auto& j : jobs_)
      if (is_runnable(j->state) || j->state == JobState::Running) return false;
    return true;
  });
}

}  // namespace vpic::farm
