#include "pk/config.hpp"

#include <algorithm>
#include <cstdlib>
#include <thread>

namespace vpic::pk {

namespace {
int g_threads = 0;  // 0 = uninitialized
}

int concurrency() noexcept {
#if PK_HAVE_OPENMP
  return omp_get_max_threads();
#else
  return std::max(1u, std::thread::hardware_concurrency());
#endif
}

void initialize() noexcept {
  if (g_threads > 0) return;
  // Honor OMP_NUM_THREADS if set; else use all hardware threads.
  const char* env = std::getenv("OMP_NUM_THREADS");
  int nt = env ? std::atoi(env) : 0;
  if (nt <= 0) nt = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  initialize(nt);
}

void initialize(int num_threads) noexcept {
  g_threads = std::max(1, num_threads);
#if PK_HAVE_OPENMP
  omp_set_num_threads(g_threads);
#endif
}

void finalize() noexcept { g_threads = 0; }

}  // namespace vpic::pk
