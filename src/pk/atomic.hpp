// pk/atomic.hpp
//
// Portable atomic operations over raw view storage, mirroring
// Kokkos::atomic_*. The sorting algorithms (Alg. 1 line 5, Alg. 2 lines
// 5/12) and the current-deposition scatter phase of the particle push are
// the two heavy users; atomic contention under repeated keys is one of the
// central effects the paper measures (Figures 5b/6b).
#pragma once

#include <atomic>
#include <type_traits>

#include "pk/config.hpp"

namespace vpic::pk {

template <class T>
PK_INLINE T atomic_fetch_add(T* addr, T val) noexcept {
  if constexpr (std::is_integral_v<T>) {
    return std::atomic_ref<T>(*addr).fetch_add(val,
                                               std::memory_order_relaxed);
  } else {
    // Floating point: CAS loop (std::atomic_ref<float>::fetch_add is C++26).
    std::atomic_ref<T> ref(*addr);
    T expected = ref.load(std::memory_order_relaxed);
    while (!ref.compare_exchange_weak(expected, expected + val,
                                      std::memory_order_relaxed)) {
    }
    return expected;
  }
}

template <class T>
PK_INLINE void atomic_add(T* addr, T val) noexcept {
  (void)atomic_fetch_add(addr, val);
}

template <class T>
PK_INLINE void atomic_inc(T* addr) noexcept {
  static_assert(std::is_integral_v<T>);
  std::atomic_ref<T>(*addr).fetch_add(T{1}, std::memory_order_relaxed);
}

template <class T>
PK_INLINE T atomic_load(const T* addr) noexcept {
  return std::atomic_ref<T>(*const_cast<T*>(addr))
      .load(std::memory_order_relaxed);
}

template <class T>
PK_INLINE void atomic_store(T* addr, T val) noexcept {
  std::atomic_ref<T>(*addr).store(val, std::memory_order_relaxed);
}

template <class T>
PK_INLINE bool atomic_compare_exchange(T* addr, T& expected, T desired) noexcept {
  return std::atomic_ref<T>(*addr).compare_exchange_strong(
      expected, desired, std::memory_order_relaxed);
}

template <class T>
PK_INLINE T atomic_fetch_max(T* addr, T val) noexcept {
  std::atomic_ref<T> ref(*addr);
  T cur = ref.load(std::memory_order_relaxed);
  while (cur < val &&
         !ref.compare_exchange_weak(cur, val, std::memory_order_relaxed)) {
  }
  return cur;
}

template <class T>
PK_INLINE T atomic_fetch_min(T* addr, T val) noexcept {
  std::atomic_ref<T> ref(*addr);
  T cur = ref.load(std::memory_order_relaxed);
  while (val < cur &&
         !ref.compare_exchange_weak(cur, val, std::memory_order_relaxed)) {
  }
  return cur;
}

}  // namespace vpic::pk
