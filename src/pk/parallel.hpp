// pk/parallel.hpp
//
// parallel_for / parallel_reduce / parallel_scan dispatch, modeled on
// Kokkos. The Serial and OpenMP backends share kernel code; the policy's
// execution_space tag selects the backend at compile time. Range kernels
// internally mark the iteration loop with PK_IVDEP, matching the paper's
// description of Kokkos' internal "#pragma ivdep" (Section 4.2) — this is
// precisely the "auto vectorization" baseline of the vectorization study.
#pragma once

#include <type_traits>
#include <vector>

#include "pk/execution.hpp"
#include "pk/reducers.hpp"

namespace vpic::pk {

// ----------------------------------------------------------------------
// parallel_for: 1-D range
// ----------------------------------------------------------------------

template <class Functor>
void parallel_for(const RangePolicy<Serial>& p, const Functor& f) {
  PK_IVDEP
  for (index_t i = p.begin; i < p.end; ++i) f(i);
}

template <class Functor>
void parallel_for(const RangePolicy<OpenMP>& p, const Functor& f) {
#if PK_HAVE_OPENMP
#pragma omp parallel for schedule(static)
  for (index_t i = p.begin; i < p.end; ++i) f(i);
#else
  PK_IVDEP
  for (index_t i = p.begin; i < p.end; ++i) f(i);
#endif
}

/// Convenience overload: parallel_for(n, f) on the default space.
template <class Functor>
void parallel_for(index_t n, const Functor& f) {
  parallel_for(RangePolicy<DefaultExecSpace>(n), f);
}

// ----------------------------------------------------------------------
// parallel_for: 2-D MD range
// ----------------------------------------------------------------------

template <class Functor>
void parallel_for(const MDRangePolicy2<Serial>& p, const Functor& f) {
  for (index_t i = p.begin0; i < p.end0; ++i)
    for (index_t j = p.begin1; j < p.end1; ++j) f(i, j);
}

template <class Functor>
void parallel_for(const MDRangePolicy2<OpenMP>& p, const Functor& f) {
#if PK_HAVE_OPENMP
#pragma omp parallel for collapse(2) schedule(static)
  for (index_t i = p.begin0; i < p.end0; ++i)
    for (index_t j = p.begin1; j < p.end1; ++j) f(i, j);
#else
  for (index_t i = p.begin0; i < p.end0; ++i)
    for (index_t j = p.begin1; j < p.end1; ++j) f(i, j);
#endif
}

// ----------------------------------------------------------------------
// parallel_for: 3-D MD range
// ----------------------------------------------------------------------

template <class Functor>
void parallel_for(const MDRangePolicy3<Serial>& p, const Functor& f) {
  for (index_t i = p.begin0; i < p.end0; ++i)
    for (index_t j = p.begin1; j < p.end1; ++j)
      for (index_t k = p.begin2; k < p.end2; ++k) f(i, j, k);
}

template <class Functor>
void parallel_for(const MDRangePolicy3<OpenMP>& p, const Functor& f) {
#if PK_HAVE_OPENMP
#pragma omp parallel for collapse(2) schedule(static)
  for (index_t i = p.begin0; i < p.end0; ++i)
    for (index_t j = p.begin1; j < p.end1; ++j)
      for (index_t k = p.begin2; k < p.end2; ++k) f(i, j, k);
#else
  for (index_t i = p.begin0; i < p.end0; ++i)
    for (index_t j = p.begin1; j < p.end1; ++j)
      for (index_t k = p.begin2; k < p.end2; ++k) f(i, j, k);
#endif
}

// ----------------------------------------------------------------------
// parallel_for: hierarchical (team) policies
// ----------------------------------------------------------------------

template <class Functor>
void parallel_for(const TeamPolicy<Serial>& p, const Functor& f) {
  for (index_t lr = 0; lr < p.league_size; ++lr)
    f(TeamMember(lr, p.league_size, 0, 1));
}

template <class Functor>
void parallel_for(const TeamPolicy<OpenMP>& p, const Functor& f) {
#if PK_HAVE_OPENMP
#pragma omp parallel for schedule(dynamic, 1)
  for (index_t lr = 0; lr < p.league_size; ++lr)
    f(TeamMember(lr, p.league_size, 0, 1));
#else
  for (index_t lr = 0; lr < p.league_size; ++lr)
    f(TeamMember(lr, p.league_size, 0, 1));
#endif
}

/// Nested team-thread loop (host teams are one thread: plain loop).
template <class Functor>
PK_INLINE void parallel_for(const TeamThreadRange& r, const Functor& f) {
  for (index_t i = r.begin; i < r.end; ++i) f(i);
}

/// Innermost vector loop: marked ivdep so the backend's auto-vectorizer
/// treats it exactly like Kokkos ThreadVectorRange on a CPU backend.
template <class Functor>
PK_INLINE void parallel_for(const ThreadVectorRange& r, const Functor& f) {
  PK_IVDEP
  for (index_t i = r.begin; i < r.end; ++i) f(i);
}

// ----------------------------------------------------------------------
// parallel_reduce
// ----------------------------------------------------------------------

template <class Reducer, class Functor>
void parallel_reduce(const RangePolicy<Serial>& p, const Functor& f,
                     typename Reducer::value_type& result) {
  auto acc = Reducer::identity();
  for (index_t i = p.begin; i < p.end; ++i) f(i, acc);
  result = acc;
}

template <class Reducer, class Functor>
void parallel_reduce(const RangePolicy<OpenMP>& p, const Functor& f,
                     typename Reducer::value_type& result) {
#if PK_HAVE_OPENMP
  const int nt = OpenMP::concurrency();
  std::vector<typename Reducer::value_type> partial(
      static_cast<std::size_t>(nt), Reducer::identity());
#pragma omp parallel
  {
    const int tid = omp_get_thread_num();
    auto acc = Reducer::identity();
#pragma omp for schedule(static) nowait
    for (index_t i = p.begin; i < p.end; ++i) f(i, acc);
    partial[static_cast<std::size_t>(tid)] = acc;
  }
  auto total = Reducer::identity();
  for (const auto& v : partial) Reducer::join(total, v);
  result = total;
#else
  parallel_reduce<Reducer>(RangePolicy<Serial>(p.begin, p.end), f, result);
#endif
}

/// Sum-reduction convenience, mirroring Kokkos' default reducer.
template <class ExecSpace, class Functor, class T>
void parallel_reduce(const RangePolicy<ExecSpace>& p, const Functor& f,
                     T& result) {
  parallel_reduce<Sum<T>>(p, f, result);
}

template <class Functor, class T>
void parallel_reduce(index_t n, const Functor& f, T& result) {
  parallel_reduce<Sum<T>>(RangePolicy<DefaultExecSpace>(n), f, result);
}

// ----------------------------------------------------------------------
// parallel_scan (exclusive prefix sum; functor form and array form)
// ----------------------------------------------------------------------

/// Kokkos-style scan functor contract: f(i, partial, final_pass).
template <class Functor, class T>
void parallel_scan(const RangePolicy<Serial>& p, const Functor& f, T& total) {
  T acc{};
  for (index_t i = p.begin; i < p.end; ++i) f(i, acc, true);
  total = acc;
}

template <class Functor, class T>
void parallel_scan(const RangePolicy<OpenMP>& p, const Functor& f, T& total) {
#if PK_HAVE_OPENMP
  const int nt = OpenMP::concurrency();
  const index_t n = p.count();
  if (n == 0) {
    total = T{};
    return;
  }
  std::vector<T> chunk_sum(static_cast<std::size_t>(nt) + 1, T{});
#pragma omp parallel
  {
    const int tid = omp_get_thread_num();
    const index_t lo = p.begin + n * tid / nt;
    const index_t hi = p.begin + n * (tid + 1) / nt;
    T acc{};
    for (index_t i = lo; i < hi; ++i) f(i, acc, false);
    chunk_sum[static_cast<std::size_t>(tid) + 1] = acc;
#pragma omp barrier
#pragma omp single
    {
      for (int t = 1; t <= nt; ++t)
        chunk_sum[static_cast<std::size_t>(t)] +=
            chunk_sum[static_cast<std::size_t>(t) - 1];
    }
    T acc2 = chunk_sum[static_cast<std::size_t>(tid)];
    for (index_t i = lo; i < hi; ++i) f(i, acc2, true);
  }
  total = chunk_sum[static_cast<std::size_t>(nt)];
#else
  parallel_scan(RangePolicy<Serial>(p.begin, p.end), f, total);
#endif
}

}  // namespace vpic::pk
