// pk/parallel.hpp
//
// parallel_for / parallel_reduce / parallel_scan dispatch, modeled on
// Kokkos. The Serial and OpenMP backends share kernel code; the policy's
// execution_space tag selects the backend at compile time. Range kernels
// internally mark the iteration loop with PK_IVDEP, matching the paper's
// description of Kokkos' internal "#pragma ivdep" (Section 4.2) — this is
// precisely the "auto vectorization" baseline of the vectorization study.
//
// Every overload exists in a named and an unnamed form, like Kokkos'
// optional kernel labels. Each dispatch fires begin/end events through the
// pk::prof hook table (pk/prof_hooks.hpp); with no handler registered the
// instrumentation is one predictable branch per *dispatch* (never per
// iteration) — see docs/PROFILING.md.
#pragma once

#include <type_traits>
#include <vector>

#include "pk/execution.hpp"
#include "pk/prof_hooks.hpp"
#include "pk/reducers.hpp"

namespace vpic::pk {

namespace detail {

// ----------------------------------------------------------------------
// Raw (uninstrumented) loop bodies. These are the seed dispatch paths the
// profiling overhead test compares against.
// ----------------------------------------------------------------------

template <class Functor>
PK_INLINE void for_impl(const RangePolicy<Serial>& p, const Functor& f) {
  PK_IVDEP
  for (index_t i = p.begin; i < p.end; ++i) f(i);
}

template <class Functor>
PK_INLINE void for_impl(const RangePolicy<OpenMP>& p, const Functor& f) {
#if PK_HAVE_OPENMP
#pragma omp parallel for schedule(static)
  for (index_t i = p.begin; i < p.end; ++i) f(i);
#else
  PK_IVDEP
  for (index_t i = p.begin; i < p.end; ++i) f(i);
#endif
}

template <class Functor>
PK_INLINE void for_impl(const MDRangePolicy2<Serial>& p, const Functor& f) {
  for (index_t i = p.begin0; i < p.end0; ++i)
    for (index_t j = p.begin1; j < p.end1; ++j) f(i, j);
}

template <class Functor>
PK_INLINE void for_impl(const MDRangePolicy2<OpenMP>& p, const Functor& f) {
#if PK_HAVE_OPENMP
#pragma omp parallel for collapse(2) schedule(static)
  for (index_t i = p.begin0; i < p.end0; ++i)
    for (index_t j = p.begin1; j < p.end1; ++j) f(i, j);
#else
  for (index_t i = p.begin0; i < p.end0; ++i)
    for (index_t j = p.begin1; j < p.end1; ++j) f(i, j);
#endif
}

template <class Functor>
PK_INLINE void for_impl(const MDRangePolicy3<Serial>& p, const Functor& f) {
  for (index_t i = p.begin0; i < p.end0; ++i)
    for (index_t j = p.begin1; j < p.end1; ++j)
      for (index_t k = p.begin2; k < p.end2; ++k) f(i, j, k);
}

template <class Functor>
PK_INLINE void for_impl(const MDRangePolicy3<OpenMP>& p, const Functor& f) {
#if PK_HAVE_OPENMP
#pragma omp parallel for collapse(2) schedule(static)
  for (index_t i = p.begin0; i < p.end0; ++i)
    for (index_t j = p.begin1; j < p.end1; ++j)
      for (index_t k = p.begin2; k < p.end2; ++k) f(i, j, k);
#else
  for (index_t i = p.begin0; i < p.end0; ++i)
    for (index_t j = p.begin1; j < p.end1; ++j)
      for (index_t k = p.begin2; k < p.end2; ++k) f(i, j, k);
#endif
}

template <class Functor>
PK_INLINE void for_impl(const TeamPolicy<Serial>& p, const Functor& f) {
  for (index_t lr = 0; lr < p.league_size; ++lr)
    f(TeamMember(lr, p.league_size, 0, 1));
}

template <class Functor>
PK_INLINE void for_impl(const TeamPolicy<OpenMP>& p, const Functor& f) {
#if PK_HAVE_OPENMP
#pragma omp parallel for schedule(dynamic, 1)
  for (index_t lr = 0; lr < p.league_size; ++lr)
    f(TeamMember(lr, p.league_size, 0, 1));
#else
  for (index_t lr = 0; lr < p.league_size; ++lr)
    f(TeamMember(lr, p.league_size, 0, 1));
#endif
}

template <class Policy>
PK_INLINE std::uint64_t policy_work(const Policy& p) noexcept {
  if constexpr (requires { p.league_size; })
    return static_cast<std::uint64_t>(p.league_size);
  else if constexpr (requires { p.begin2; })
    return static_cast<std::uint64_t>((p.end0 - p.begin0) *
                                      (p.end1 - p.begin1) *
                                      (p.end2 - p.begin2));
  else if constexpr (requires { p.begin1; })
    return static_cast<std::uint64_t>((p.end0 - p.begin0) *
                                      (p.end1 - p.begin1));
  else
    return static_cast<std::uint64_t>(p.end - p.begin);
}

}  // namespace detail

// ----------------------------------------------------------------------
// parallel_for: one instrumented entry per policy family. The named form
// is the primary; the unnamed form forwards with a null label.
// ----------------------------------------------------------------------

template <template <class> class Policy, class ExecSpace, class Functor>
void parallel_for(const char* name, const Policy<ExecSpace>& p,
                  const Functor& f) {
  const std::uint64_t kid = prof::begin_parallel(
      "parallel_for", name, ExecSpace::name(), detail::policy_work(p));
  detail::for_impl(p, f);
  prof::end_parallel("parallel_for", kid);
}

template <template <class> class Policy, class ExecSpace, class Functor>
void parallel_for(const Policy<ExecSpace>& p, const Functor& f) {
  parallel_for(nullptr, p, f);
}

/// Convenience overloads: parallel_for([name,] n, f) on the default space.
template <class Functor>
void parallel_for(const char* name, index_t n, const Functor& f) {
  parallel_for(name, RangePolicy<DefaultExecSpace>(n), f);
}

template <class Functor>
void parallel_for(index_t n, const Functor& f) {
  parallel_for(nullptr, RangePolicy<DefaultExecSpace>(n), f);
}

/// Nested team-thread loop (host teams are one thread: plain loop). Nested
/// ranges fire no events — they are inner loops of an already-instrumented
/// team dispatch, exactly like Kokkos Tools.
template <class Functor>
PK_INLINE void parallel_for(const TeamThreadRange& r, const Functor& f) {
  for (index_t i = r.begin; i < r.end; ++i) f(i);
}

/// Innermost vector loop: marked ivdep so the backend's auto-vectorizer
/// treats it exactly like Kokkos ThreadVectorRange on a CPU backend.
template <class Functor>
PK_INLINE void parallel_for(const ThreadVectorRange& r, const Functor& f) {
  PK_IVDEP
  for (index_t i = r.begin; i < r.end; ++i) f(i);
}

// ----------------------------------------------------------------------
// parallel_reduce
// ----------------------------------------------------------------------

namespace detail {

template <class Reducer, class Functor>
PK_INLINE void reduce_impl(const RangePolicy<Serial>& p, const Functor& f,
                           typename Reducer::value_type& result) {
  auto acc = Reducer::identity();
  for (index_t i = p.begin; i < p.end; ++i) f(i, acc);
  result = acc;
}

template <class Reducer, class Functor>
PK_INLINE void reduce_impl(const RangePolicy<OpenMP>& p, const Functor& f,
                           typename Reducer::value_type& result) {
#if PK_HAVE_OPENMP
  const int nt = OpenMP::concurrency();
  std::vector<typename Reducer::value_type> partial(
      static_cast<std::size_t>(nt), Reducer::identity());
#pragma omp parallel
  {
    const int tid = omp_get_thread_num();
    auto acc = Reducer::identity();
#pragma omp for schedule(static) nowait
    for (index_t i = p.begin; i < p.end; ++i) f(i, acc);
    partial[static_cast<std::size_t>(tid)] = acc;
  }
  auto total = Reducer::identity();
  for (const auto& v : partial) Reducer::join(total, v);
  result = total;
#else
  reduce_impl<Reducer>(RangePolicy<Serial>(p.begin, p.end), f, result);
#endif
}

}  // namespace detail

template <class Reducer, class ExecSpace, class Functor>
void parallel_reduce(const char* name, const RangePolicy<ExecSpace>& p,
                     const Functor& f,
                     typename Reducer::value_type& result) {
  const std::uint64_t kid = prof::begin_parallel(
      "parallel_reduce", name, ExecSpace::name(), detail::policy_work(p));
  detail::reduce_impl<Reducer>(p, f, result);
  prof::end_parallel("parallel_reduce", kid);
}

template <class Reducer, class ExecSpace, class Functor>
void parallel_reduce(const RangePolicy<ExecSpace>& p, const Functor& f,
                     typename Reducer::value_type& result) {
  parallel_reduce<Reducer>(nullptr, p, f, result);
}

/// Sum-reduction convenience, mirroring Kokkos' default reducer.
template <class ExecSpace, class Functor, class T>
void parallel_reduce(const char* name, const RangePolicy<ExecSpace>& p,
                     const Functor& f, T& result) {
  parallel_reduce<Sum<T>>(name, p, f, result);
}

template <class ExecSpace, class Functor, class T>
void parallel_reduce(const RangePolicy<ExecSpace>& p, const Functor& f,
                     T& result) {
  parallel_reduce<Sum<T>>(nullptr, p, f, result);
}

template <class Functor, class T>
void parallel_reduce(const char* name, index_t n, const Functor& f,
                     T& result) {
  parallel_reduce<Sum<T>>(name, RangePolicy<DefaultExecSpace>(n), f, result);
}

template <class Functor, class T>
void parallel_reduce(index_t n, const Functor& f, T& result) {
  parallel_reduce<Sum<T>>(nullptr, RangePolicy<DefaultExecSpace>(n), f,
                          result);
}

// ----------------------------------------------------------------------
// parallel_scan (exclusive prefix sum; functor form and array form)
// ----------------------------------------------------------------------

namespace detail {

/// Kokkos-style scan functor contract: f(i, partial, final_pass).
template <class Functor, class T>
PK_INLINE void scan_impl(const RangePolicy<Serial>& p, const Functor& f,
                         T& total) {
  T acc{};
  for (index_t i = p.begin; i < p.end; ++i) f(i, acc, true);
  total = acc;
}

template <class Functor, class T>
PK_INLINE void scan_impl(const RangePolicy<OpenMP>& p, const Functor& f,
                         T& total) {
#if PK_HAVE_OPENMP
  const int nt = OpenMP::concurrency();
  const index_t n = p.count();
  if (n == 0) {
    total = T{};
    return;
  }
  std::vector<T> chunk_sum(static_cast<std::size_t>(nt) + 1, T{});
#pragma omp parallel
  {
    const int tid = omp_get_thread_num();
    const index_t lo = p.begin + n * tid / nt;
    const index_t hi = p.begin + n * (tid + 1) / nt;
    T acc{};
    for (index_t i = lo; i < hi; ++i) f(i, acc, false);
    chunk_sum[static_cast<std::size_t>(tid) + 1] = acc;
#pragma omp barrier
#pragma omp single
    {
      for (int t = 1; t <= nt; ++t)
        chunk_sum[static_cast<std::size_t>(t)] +=
            chunk_sum[static_cast<std::size_t>(t) - 1];
    }
    T acc2 = chunk_sum[static_cast<std::size_t>(tid)];
    for (index_t i = lo; i < hi; ++i) f(i, acc2, true);
  }
  total = chunk_sum[static_cast<std::size_t>(nt)];
#else
  scan_impl(RangePolicy<Serial>(p.begin, p.end), f, total);
#endif
}

}  // namespace detail

template <class ExecSpace, class Functor, class T>
void parallel_scan(const char* name, const RangePolicy<ExecSpace>& p,
                   const Functor& f, T& total) {
  const std::uint64_t kid = prof::begin_parallel(
      "parallel_scan", name, ExecSpace::name(), detail::policy_work(p));
  detail::scan_impl(p, f, total);
  prof::end_parallel("parallel_scan", kid);
}

template <class ExecSpace, class Functor, class T>
void parallel_scan(const RangePolicy<ExecSpace>& p, const Functor& f,
                   T& total) {
  parallel_scan(nullptr, p, f, total);
}

}  // namespace vpic::pk
