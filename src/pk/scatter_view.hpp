// pk/scatter_view.hpp
//
// ScatterView: Kokkos's abstraction for parallel scatter-add contention,
// and the mechanism behind VPIC's platform split for the current
// accumulator: on GPUs, scatters go through atomics (massive parallelism,
// hardware atomic units); on CPUs, each thread gets a private replica of
// the target array and replicas are reduced afterwards (VPIC 1.2's
// accumulator blocks). Kernels written against ScatterView::access() are
// oblivious to which strategy is active — the portability win the paper's
// framework discussion (Section 2.2) attributes to Kokkos.
#pragma once

#include <cassert>
#include <vector>

#include "pk/atomic.hpp"
#include "pk/execution.hpp"
#include "pk/view.hpp"

namespace vpic::pk {

enum class ScatterStrategy : std::uint8_t {
  Atomic,      // GPU-style: atomic RMW into the single target
  Duplicated,  // CPU-style: per-thread replicas + contribute() reduction
};

template <class T>
class ScatterView {
 public:
  /// Wrap a rank-1 target. Duplicated mode allocates (threads-1) replicas
  /// lazily at construction; replicas are zero-initialized.
  explicit ScatterView(View<T, 1> target,
                       ScatterStrategy strategy = ScatterStrategy::Atomic)
      : target_(std::move(target)), strategy_(strategy) {
    if (strategy_ == ScatterStrategy::Duplicated) {
      const int nt = DefaultExecSpace::concurrency();
      replicas_.reserve(static_cast<std::size_t>(nt > 1 ? nt - 1 : 0));
      for (int t = 1; t < nt; ++t)
        replicas_.emplace_back("scatter_replica", target_.size());
    }
  }

  /// Per-thread accessor; cheap to construct inside a kernel.
  class Access {
   public:
    Access(const ScatterView& sv, int thread) noexcept
        : data_(sv.slot_for(thread)), atomic_(sv.strategy_ ==
                                              ScatterStrategy::Atomic) {}

    PK_INLINE void add(index_t i, T v) const noexcept {
      if (atomic_)
        atomic_add(&data_[i], v);
      else
        data_[i] += v;
    }

   private:
    T* data_;
    bool atomic_;
  };

  /// Accessor for the calling thread (OpenMP thread id; 0 under Serial).
  [[nodiscard]] Access access() const noexcept {
#if PK_HAVE_OPENMP
    return Access(*this, omp_get_thread_num());
#else
    return Access(*this, 0);
#endif
  }

  /// Fold all replicas into the target (no-op for Atomic). Mirrors
  /// Kokkos::Experimental::contribute.
  void contribute() {
    for (auto& rep : replicas_) {
      T* PK_RESTRICT dst = target_.data();
      const T* PK_RESTRICT src = rep.data();
      const index_t n = target_.size();
      PK_OMP_SIMD
      for (index_t i = 0; i < n; ++i) dst[i] += src[i];
      // Reset the replica so the ScatterView is reusable next step.
      for (index_t i = 0; i < n; ++i) rep(i) = T{};
    }
  }

  [[nodiscard]] const View<T, 1>& target() const noexcept { return target_; }
  [[nodiscard]] ScatterStrategy strategy() const noexcept {
    return strategy_;
  }
  [[nodiscard]] std::size_t replica_count() const noexcept {
    return replicas_.size();
  }

 private:
  // Precondition for Duplicated mode: the thread id is below the
  // concurrency captured at construction (Kokkos has the same contract).
  [[nodiscard]] T* slot_for(int thread) const noexcept {
    if (strategy_ == ScatterStrategy::Atomic || thread == 0)
      return target_.data();
    const auto r = static_cast<std::size_t>(thread - 1);
    assert(r < replicas_.size() && "thread pool grew after construction");
    return replicas_[r].data();
  }

  View<T, 1> target_;
  ScatterStrategy strategy_;
  std::vector<View<T, 1>> replicas_;
};

}  // namespace vpic::pk
