#include "pk/stealing.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <vector>

#include "pk/instance.hpp"
#include "prof/prof.hpp"

namespace vpic::pk {

namespace {

// Which deque the current thread owns during a run() round (-1 off the
// pool). Instance worker threads persist across rounds, so the index is
// stable for the pool's lifetime once set.
thread_local int t_worker = -1;

std::uint64_t xorshift(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

}  // namespace

struct StealPool::Impl {
  struct Worker {
    std::mutex mu;
    std::deque<std::function<void()>> dq;
    std::uint64_t rng = 0;
    // Per-round tallies, written only by the owning worker thread during
    // a round and read by run() after the fences.
    std::uint64_t tasks_run = 0;
    std::uint64_t steal_attempts = 0;
    std::uint64_t steal_hits = 0;
    std::uint64_t tasks_stolen = 0;
    std::uint64_t idle_us = 0;
  };

  std::vector<std::unique_ptr<Worker>> workers;
  std::vector<Instance<>> instances;
  std::atomic<std::uint64_t> pending{0};
  std::mutex cv_mu;
  std::condition_variable cv;
  std::mutex err_mu;
  std::exception_ptr first_error;
  StealStats last;

  explicit Impl(int n, std::uint64_t seed) {
    if (n < 1) n = 1;
    workers.reserve(static_cast<std::size_t>(n));
    instances.reserve(static_cast<std::size_t>(n));
    for (int w = 0; w < n; ++w) {
      workers.push_back(std::make_unique<Worker>());
      // splitmix-style stream separation so victim sequences differ.
      workers.back()->rng =
          seed ^ (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(w + 1));
      instances.emplace_back();
    }
  }

  void push(int home, std::function<void()> task) {
    Worker& wk = *workers[static_cast<std::size_t>(home)];
    {
      std::lock_guard<std::mutex> lk(wk.mu);
      wk.dq.push_back(std::move(task));
    }
    pending.fetch_add(1, std::memory_order_release);
    cv.notify_one();
  }

  /// Steal ~half of some victim's deque (front = oldest = coarsest).
  /// Returns one task to run now; the rest land on the thief's own deque.
  std::function<void()> try_steal(int self) {
    const int n = static_cast<int>(workers.size());
    if (n < 2) return nullptr;
    Worker& me = *workers[static_cast<std::size_t>(self)];
    for (int probe = 0; probe + 1 < n; ++probe) {
      int victim =
          static_cast<int>(xorshift(me.rng) % static_cast<std::uint64_t>(n));
      if (victim == self) victim = (victim + 1) % n;
      Worker& vk = *workers[static_cast<std::size_t>(victim)];
      std::vector<std::function<void()>> loot;
      {
        std::lock_guard<std::mutex> lk(vk.mu);
        ++me.steal_attempts;
        const std::size_t have = vk.dq.size();
        if (have == 0) continue;
        const std::size_t take = (have + 1) / 2;
        loot.reserve(take);
        for (std::size_t i = 0; i < take; ++i) {
          loot.push_back(std::move(vk.dq.front()));
          vk.dq.pop_front();
        }
      }
      ++me.steal_hits;
      me.tasks_stolen += loot.size();
      std::function<void()> now = std::move(loot.front());
      if (loot.size() > 1) {
        std::lock_guard<std::mutex> lk(me.mu);
        for (std::size_t i = 1; i < loot.size(); ++i)
          me.dq.push_back(std::move(loot[i]));
      }
      return now;
    }
    return nullptr;
  }

  void drain(int self) {
    t_worker = self;
    Worker& me = *workers[static_cast<std::size_t>(self)];
    for (;;) {
      std::function<void()> task;
      {
        std::lock_guard<std::mutex> lk(me.mu);
        if (!me.dq.empty()) {
          task = std::move(me.dq.back());
          me.dq.pop_back();
        }
      }
      if (!task) task = try_steal(self);
      if (task) {
        ++me.tasks_run;
        try {
          task();
        } catch (...) {
          std::lock_guard<std::mutex> lk(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
        if (pending.fetch_sub(1, std::memory_order_acq_rel) == 1)
          cv.notify_all();
        continue;
      }
      if (pending.load(std::memory_order_acquire) == 0) break;
      // Nothing runnable but tasks are in flight elsewhere and may spawn
      // more: nap on the cv (short timeout bounds any missed wakeup) and
      // charge the wait to this worker's idle account.
      const auto t0 = std::chrono::steady_clock::now();
      {
        std::unique_lock<std::mutex> lk(cv_mu);
        if (pending.load(std::memory_order_acquire) != 0)
          cv.wait_for(lk, std::chrono::microseconds(200));
      }
      me.idle_us += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
    }
  }
};

StealPool::StealPool(int workers, std::uint64_t seed)
    : impl_(std::make_unique<Impl>(workers, seed)) {}

StealPool::~StealPool() {
  // Instances fence-and-join on destruction; nothing queued outside run().
}

int StealPool::workers() const {
  return static_cast<int>(impl_->workers.size());
}

int StealPool::current_worker() noexcept { return t_worker; }

void StealPool::seed(int home, std::function<void()> task) {
  const int n = workers();
  if (home < 0 || home >= n) home = 0;
  impl_->push(home, std::move(task));
}

void StealPool::spawn(std::function<void()> task) {
  const int w = (t_worker >= 0 && t_worker < workers()) ? t_worker : 0;
  impl_->push(w, std::move(task));
}

StealStats StealPool::run() {
  Impl& im = *impl_;
  for (auto& wk : im.workers) {
    wk->tasks_run = wk->steal_attempts = wk->steal_hits = 0;
    wk->tasks_stolen = wk->idle_us = 0;
  }
  im.first_error = nullptr;

  const int n = workers();
  for (int w = 0; w < n; ++w)
    pk::async(im.instances[static_cast<std::size_t>(w)], "steal.drain",
              [&im, w] { im.drain(w); });
  for (int w = 0; w < n; ++w) im.instances[static_cast<std::size_t>(w)].fence();

  StealStats s;
  for (auto& wk : im.workers) {
    s.tasks_run += wk->tasks_run;
    s.steal_attempts += wk->steal_attempts;
    s.steal_hits += wk->steal_hits;
    s.tasks_stolen += wk->tasks_stolen;
    s.idle_us += wk->idle_us;
  }
  im.last = s;

  // Fired here (not on the workers) so a farm job's CounterScope prefix
  // on the caller applies.
  vpic::prof::counter_add("steal.tasks_run", s.tasks_run);
  vpic::prof::counter_add("steal.attempts", s.steal_attempts);
  vpic::prof::counter_add("steal.hits", s.steal_hits);
  vpic::prof::counter_add("steal.tasks_moved", s.tasks_stolen);
  vpic::prof::counter_add("steal.idle_us", s.idle_us);

  if (im.first_error) {
    std::exception_ptr e = im.first_error;
    im.first_error = nullptr;
    std::rethrow_exception(e);
  }
  return s;
}

const StealStats& StealPool::last_stats() const { return impl_->last; }

}  // namespace vpic::pk
