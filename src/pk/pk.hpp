// pk/pk.hpp — umbrella header for the portability layer.
#pragma once

#include "pk/atomic.hpp"
#include "pk/config.hpp"
#include "pk/execution.hpp"
#include "pk/instance.hpp"
#include "pk/layout.hpp"
#include "pk/parallel.hpp"
#include "pk/prof_hooks.hpp"
#include "pk/reducers.hpp"
#include "pk/scatter_view.hpp"
#include "pk/timer.hpp"
#include "pk/view.hpp"
