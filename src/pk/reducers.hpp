// pk/reducers.hpp
//
// Reduction identities/joins mirroring Kokkos' reducer concept. Used by
// pk::parallel_reduce. MinMax is what the sorting library uses to find key
// bounds (Algorithms 1 and 2, line 2: (max_k, min_k) <- MINMAX(keys)).
#pragma once

#include <limits>

#include "pk/config.hpp"

namespace vpic::pk {

template <class T>
struct Sum {
  using value_type = T;
  static constexpr T identity() noexcept { return T{}; }
  static PK_INLINE void join(T& dst, const T& src) noexcept { dst += src; }
};

template <class T>
struct Prod {
  using value_type = T;
  static constexpr T identity() noexcept { return T{1}; }
  static PK_INLINE void join(T& dst, const T& src) noexcept { dst *= src; }
};

template <class T>
struct Min {
  using value_type = T;
  static constexpr T identity() noexcept {
    return std::numeric_limits<T>::max();
  }
  static PK_INLINE void join(T& dst, const T& src) noexcept {
    if (src < dst) dst = src;
  }
};

template <class T>
struct Max {
  using value_type = T;
  static constexpr T identity() noexcept {
    return std::numeric_limits<T>::lowest();
  }
  static PK_INLINE void join(T& dst, const T& src) noexcept {
    if (src > dst) dst = src;
  }
};

template <class T>
struct MinMaxValue {
  T min_val;
  T max_val;
};

template <class T>
struct MinMax {
  using value_type = MinMaxValue<T>;
  static constexpr value_type identity() noexcept {
    return {std::numeric_limits<T>::max(), std::numeric_limits<T>::lowest()};
  }
  static PK_INLINE void join(value_type& dst, const value_type& src) noexcept {
    if (src.min_val < dst.min_val) dst.min_val = src.min_val;
    if (src.max_val > dst.max_val) dst.max_val = src.max_val;
  }
};

}  // namespace vpic::pk
