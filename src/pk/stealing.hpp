#pragma once
// Work-stealing task pool on top of pk::Instance worker threads.
//
// Each worker owns a LIFO deque: the owner pushes/pops at the back (hot
// in cache, depth-first), idle workers steal *half* a victim's deque from
// the front (breadth-first, coarsest tasks first — the classic Cilk/ABP
// split that bounds steal traffic to O(workers * log(tasks))). Victims
// are picked by a per-worker xorshift RNG so no two thieves convoy on the
// same queue.
//
// The pool is built for core::StepGraph's tiled step: tasks are seeded
// onto specific deques by a cost model (tune-probed ns/particle * tile
// population) so the *expected* load starts balanced, and stealing only
// pays for the residual imbalance the model missed. Tasks may spawn
// further tasks from inside a task (dependency-graph continuations); a
// run() round terminates when every spawned task has finished.
//
// Determinism note: the pool never promises an execution *order* — tiled
// physics stays bit-deterministic because deposits go to tile-private
// accumulator blocks merged in fixed tile order, not because of anything
// the scheduler does. The bit-identical sequential mode bypasses this
// pool entirely (StepGraph::execute_serial).
//
// Counters (fired from run(), on the caller's thread, so a farm job's
// prof::CounterScope prefix applies): steal.attempts, steal.hits,
// steal.tasks_moved, steal.idle_us, steal.tasks_run.

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

namespace vpic::pk {

struct StealStats {
  std::uint64_t tasks_run = 0;      // tasks executed this round
  std::uint64_t steal_attempts = 0; // lock-and-look probes of a victim
  std::uint64_t steal_hits = 0;     // probes that moved >= 1 task
  std::uint64_t tasks_stolen = 0;   // tasks moved across deques
  std::uint64_t idle_us = 0;        // summed worker wait time (all workers)
};

/// Persistent pool of `workers` threads executing std::function tasks
/// with per-worker deques and randomized steal-half balancing.
class StealPool {
 public:
  /// Spawns `workers` threads (>= 1). `seed` fixes the victim-selection
  /// RNG streams so runs are reproducible scheduler-wise too.
  explicit StealPool(int workers, std::uint64_t seed = 0x9e3779b97f4a7c15ull);
  ~StealPool();

  StealPool(const StealPool&) = delete;
  StealPool& operator=(const StealPool&) = delete;

  int workers() const;

  /// Enqueue a task on worker `home`'s deque (cost-model seeding).
  /// Thread-safe and callable from inside a running task too — the
  /// dependency-graph executor uses that to LPT-spread a wave of
  /// newly-ready tasks instead of piling them on one deque.
  void seed(int home, std::function<void()> task);

  /// Enqueue a task from *inside* a running task: lands on the back of
  /// the calling worker's own deque (LIFO, cache-warm continuation).
  /// Falls back to deque 0 when called from a non-worker thread.
  void spawn(std::function<void()> task);

  /// Execute every seeded task (plus anything they spawn) to completion.
  /// Returns per-round stats and fires the prof counters listed above on
  /// the calling thread. Rethrows the first task exception after the
  /// round drains (remaining tasks are still executed).
  StealStats run();

  /// Stats from the last completed run().
  const StealStats& last_stats() const;

  /// Worker index of the calling thread while inside a task, -1 outside.
  /// Schedulers use it to attribute phase placement in their telemetry.
  static int current_worker() noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace vpic::pk
