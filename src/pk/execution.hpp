// pk/execution.hpp
//
// Execution spaces and policies, modeled on Kokkos. Two host backends are
// provided: Serial and OpenMP. Kernels take a policy tagged with a space and
// are dispatched by pk::parallel_for / parallel_reduce / parallel_scan
// (pk/parallel.hpp). TeamPolicy provides the hierarchical parallelism used
// by the "auto" vectorization strategy (Section 4.2: league -> threads,
// vector ranges -> compiler-vectorized inner loops).
#pragma once

#include <cassert>

#include "pk/config.hpp"
#include "pk/layout.hpp"

namespace vpic::pk {

struct Serial {
  static constexpr const char* name() noexcept { return "Serial"; }
  static int concurrency() noexcept { return 1; }
};

struct OpenMP {
  static constexpr const char* name() noexcept { return "OpenMP"; }
  static int concurrency() noexcept {
#if PK_HAVE_OPENMP
    return omp_get_max_threads();
#else
    return 1;
#endif
  }
};

#if PK_HAVE_OPENMP
using DefaultExecSpace = OpenMP;
#else
using DefaultExecSpace = Serial;
#endif

/// 1-D iteration range [begin, end).
template <class ExecSpace = DefaultExecSpace>
struct RangePolicy {
  using execution_space = ExecSpace;
  index_t begin = 0;
  index_t end = 0;

  RangePolicy(index_t b, index_t e) : begin(b), end(e) { assert(e >= b); }
  explicit RangePolicy(index_t n) : RangePolicy(0, n) {}
  [[nodiscard]] index_t count() const noexcept { return end - begin; }
};

/// 2-D rectangular iteration (subset of Kokkos MDRangePolicy).
template <class ExecSpace = DefaultExecSpace>
struct MDRangePolicy2 {
  using execution_space = ExecSpace;
  index_t begin0 = 0, end0 = 0;
  index_t begin1 = 0, end1 = 0;

  MDRangePolicy2(index_t b0, index_t e0, index_t b1, index_t e1)
      : begin0(b0), end0(e0), begin1(b1), end1(e1) {
    assert(e0 >= b0 && e1 >= b1);
  }
};

/// 3-D rectangular iteration (subset of Kokkos MDRangePolicy<Rank<3>>).
template <class ExecSpace = DefaultExecSpace>
struct MDRangePolicy3 {
  using execution_space = ExecSpace;
  index_t begin0 = 0, end0 = 0;
  index_t begin1 = 0, end1 = 0;
  index_t begin2 = 0, end2 = 0;

  MDRangePolicy3(index_t b0, index_t e0, index_t b1, index_t e1, index_t b2,
                 index_t e2)
      : begin0(b0), end0(e0), begin1(b1), end1(e1), begin2(b2), end2(e2) {
    assert(e0 >= b0 && e1 >= b1 && e2 >= b2);
  }
};

/// Hierarchical (league-of-teams) policy. On the host a team is one thread;
/// vector-level parallelism maps to compiler-vectorized loops, mirroring how
/// Kokkos maps TeamThreadRange/ThreadVectorRange on CPU backends.
template <class ExecSpace = DefaultExecSpace>
struct TeamPolicy {
  using execution_space = ExecSpace;
  index_t league_size = 0;
  int team_size = 1;
  int vector_length = 1;

  TeamPolicy(index_t league, int team, int vlen = 1)
      : league_size(league), team_size(team), vector_length(vlen) {
    assert(league >= 0 && team >= 1 && vlen >= 1);
  }
};

/// Handle passed to team-policy kernels (subset of Kokkos team member API).
class TeamMember {
 public:
  TeamMember(index_t league_rank, index_t league_size, int team_rank,
             int team_size) noexcept
      : league_rank_(league_rank),
        league_size_(league_size),
        team_rank_(team_rank),
        team_size_(team_size) {}

  [[nodiscard]] index_t league_rank() const noexcept { return league_rank_; }
  [[nodiscard]] index_t league_size() const noexcept { return league_size_; }
  [[nodiscard]] int team_rank() const noexcept { return team_rank_; }
  [[nodiscard]] int team_size() const noexcept { return team_size_; }

  /// Host teams are a single thread; barrier is a no-op but kept so kernels
  /// written against the portable API read identically to Kokkos code.
  void team_barrier() const noexcept {}

 private:
  index_t league_rank_;
  index_t league_size_;
  int team_rank_;
  int team_size_;
};

/// Nested range executed by the threads of one team.
struct TeamThreadRange {
  const TeamMember& member;
  index_t begin;
  index_t end;
  TeamThreadRange(const TeamMember& m, index_t n)
      : member(m), begin(0), end(n) {}
  TeamThreadRange(const TeamMember& m, index_t b, index_t e)
      : member(m), begin(b), end(e) {}
};

/// Innermost vector range: the loop the compiler is asked to vectorize.
struct ThreadVectorRange {
  const TeamMember& member;
  index_t begin;
  index_t end;
  ThreadVectorRange(const TeamMember& m, index_t n)
      : member(m), begin(0), end(n) {}
  ThreadVectorRange(const TeamMember& m, index_t b, index_t e)
      : member(m), begin(b), end(e) {}
};

}  // namespace vpic::pk
