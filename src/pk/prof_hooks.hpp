// pk/prof_hooks.hpp
//
// Profiling hook table for the portability layer, modeled on the Kokkos
// Tools callback interface (kokkosp_*). The dispatch sites in
// pk/parallel.hpp and the View allocation paths in pk/view.hpp fire
// begin/end events through this table; consumers (normally the built-in
// tool in src/prof, but any handler can register) observe every kernel
// launch and every View allocation without touching kernel code.
//
// Cost model: when no handler is registered the per-dispatch cost is one
// relaxed atomic load and a predictable branch — the compiled-in hooks are
// branch-predicted away (tests/test_prof.cpp asserts <1% dispatch
// overhead). Registration is not thread-safe against concurrent dispatch:
// install handlers before spawning parallel work, as Kokkos Tools does.
#pragma once

#include <atomic>
#include <cstdint>

#include "pk/config.hpp"

namespace vpic::pk::prof {

/// Callback table (all pointers optional). `kind` is the dispatch flavor:
/// "parallel_for" | "parallel_reduce" | "parallel_scan". `work` is the
/// iteration count (league size for team policies). The begin callback may
/// write a cookie through `kernel_id`; it is handed back to the matching
/// end callback, mirroring kokkosp_begin_parallel_for's kID.
struct EventHooks {
  void (*begin_parallel)(const char* kind, const char* name,
                         const char* exec_space, std::uint64_t work,
                         std::uint64_t* kernel_id) = nullptr;
  void (*end_parallel)(const char* kind, std::uint64_t kernel_id) = nullptr;
  void (*push_region)(const char* name) = nullptr;
  void (*pop_region)() = nullptr;
  void (*allocate)(const char* space, const char* label, const void* ptr,
                   std::uint64_t bytes) = nullptr;
  void (*deallocate)(const char* space, const char* label, const void* ptr,
                     std::uint64_t bytes) = nullptr;
  /// Synchronization events (kokkosp_begin/end_fence). `instance_id` is the
  /// pk::Instance being fenced, or 0 for the global pk::fence(). The begin
  /// callback may write a cookie through `handle`, handed back to end_fence.
  void (*begin_fence)(const char* name, std::uint32_t instance_id,
                      std::uint64_t* handle) = nullptr;
  void (*end_fence)(std::uint64_t handle) = nullptr;
  /// An asynchronous dispatch was enqueued on an instance (fires on the
  /// submitting thread; the matching begin/end_parallel fire later on the
  /// instance's worker). `queue_depth` counts tasks pending on the instance
  /// including this one — traces built from these events show queue
  /// occupancy over time.
  void (*async_dispatch)(const char* kind, const char* name,
                         std::uint32_t instance_id,
                         std::uint64_t queue_depth) = nullptr;

  [[nodiscard]] bool any() const noexcept {
    return begin_parallel || end_parallel || push_region || pop_region ||
           allocate || deallocate || begin_fence || end_fence ||
           async_dispatch;
  }
};

inline EventHooks& hooks() noexcept {
  static EventHooks h;
  return h;
}

/// Fast-path guard: true iff any handler is registered. Relaxed is enough —
/// registration happens-before dispatch by contract (see header comment).
inline std::atomic<bool>& hooks_active() noexcept {
  static std::atomic<bool> active{false};
  return active;
}

inline bool active() noexcept {
  return hooks_active().load(std::memory_order_relaxed);
}

/// Install a handler table (replaces any previous one).
inline void set_event_hooks(const EventHooks& h) noexcept {
  hooks() = h;
  hooks_active().store(h.any(), std::memory_order_release);
}

inline void clear_event_hooks() noexcept {
  hooks() = EventHooks{};
  hooks_active().store(false, std::memory_order_release);
}

/// Process-wide count of View buffer allocations (allocating constructors
/// only; unmanaged wrappers and aliases don't count). Always maintained,
/// handler or not — the zero-allocation sort pipeline asserts on it
/// (tests/test_sort_pipeline.cpp). Atomic so concurrent View construction
/// under OpenMP counts correctly.
inline std::atomic<std::int64_t>& alloc_count() noexcept {
  static std::atomic<std::int64_t> count{0};
  return count;
}

// ----------------------------------------------------------------------
// Inline emit helpers used by the instrumented pk entry points.
// ----------------------------------------------------------------------

inline std::uint64_t begin_parallel(const char* kind, const char* name,
                                    const char* exec_space,
                                    std::uint64_t work) noexcept {
  if (active()) [[unlikely]] {
    std::uint64_t id = 0;
    if (auto* cb = hooks().begin_parallel)
      cb(kind, name ? name : "<unlabeled>", exec_space, work, &id);
    return id;
  }
  return 0;
}

inline void end_parallel(const char* kind, std::uint64_t kernel_id) noexcept {
  if (active()) [[unlikely]] {
    if (auto* cb = hooks().end_parallel) cb(kind, kernel_id);
  }
}

inline void region_push(const char* name) noexcept {
  if (active()) [[unlikely]] {
    if (auto* cb = hooks().push_region) cb(name);
  }
}

inline void region_pop() noexcept {
  if (active()) [[unlikely]] {
    if (auto* cb = hooks().pop_region) cb();
  }
}

inline void notify_allocate(const char* space, const char* label,
                            const void* ptr, std::uint64_t bytes) noexcept {
  alloc_count().fetch_add(1, std::memory_order_relaxed);
  if (active()) [[unlikely]] {
    if (auto* cb = hooks().allocate) cb(space, label, ptr, bytes);
  }
}

inline void notify_deallocate(const char* space, const char* label,
                              const void* ptr, std::uint64_t bytes) noexcept {
  if (active()) [[unlikely]] {
    if (auto* cb = hooks().deallocate) cb(space, label, ptr, bytes);
  }
}

inline std::uint64_t begin_fence(const char* name,
                                 std::uint32_t instance_id) noexcept {
  if (active()) [[unlikely]] {
    std::uint64_t handle = 0;
    if (auto* cb = hooks().begin_fence)
      cb(name ? name : "pk::fence", instance_id, &handle);
    return handle;
  }
  return 0;
}

inline void end_fence(std::uint64_t handle) noexcept {
  if (active()) [[unlikely]] {
    if (auto* cb = hooks().end_fence) cb(handle);
  }
}

inline void notify_async_dispatch(const char* kind, const char* name,
                                  std::uint32_t instance_id,
                                  std::uint64_t queue_depth) noexcept {
  if (active()) [[unlikely]] {
    if (auto* cb = hooks().async_dispatch)
      cb(kind, name ? name : "<unlabeled>", instance_id, queue_depth);
  }
}

}  // namespace vpic::pk::prof
