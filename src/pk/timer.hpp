// pk/timer.hpp — wall-clock timer (mirrors Kokkos::Timer).
#pragma once

#include <chrono>

namespace vpic::pk {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Seconds since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace vpic::pk
