// pk/view.hpp
//
// pk::View — a reference-counted multidimensional array with a layout
// policy, modeled on Kokkos::View. This is the data-structure half of the
// portability layer: every array in the PIC engine, the sorting library and
// the benchmarks is a View, so layout decisions (AoS vs SoA, LayoutLeft vs
// LayoutRight) are made in one place per container and kernels stay
// layout-agnostic.
#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <type_traits>

#include "pk/config.hpp"
#include "pk/layout.hpp"
#include "pk/prof_hooks.hpp"

namespace vpic::pk {

/// Process-wide count of View buffer allocations (allocating constructor
/// only; unmanaged wrappers and aliases don't count). Test/bench hook: the
/// zero-allocation sort pipeline asserts this stays flat across
/// steady-state sorts (tests/test_sort_pipeline.cpp, bench/sort_pipeline).
/// Delegates to the prof allocation counter so registered profiling
/// handlers (src/prof) see the same event stream this counter counts.
inline std::atomic<std::int64_t>& view_alloc_count() noexcept {
  return prof::alloc_count();
}

/// Tag types mirroring Kokkos memory spaces. This build is host-only (the
/// GPU is an analytic model, not an execution target), so both spaces
/// allocate host memory; the tag preserves API shape and documents intent.
struct HostSpace {
  static constexpr const char* name() noexcept { return "HostSpace"; }
};
struct DeviceSimSpace {
  static constexpr const char* name() noexcept { return "DeviceSimSpace"; }
};

namespace detail {

/// Affine layouts expose per-dimension strides(); non-affine layouts (e.g.
/// LayoutAoSoA) declare `is_affine = false` and provide offset()/span()
/// instead. Absence of the member means affine (LayoutRight/LayoutLeft
/// predate the distinction).
template <class L, class = void>
struct layout_is_affine : std::true_type {};
template <class L>
struct layout_is_affine<L, std::void_t<decltype(L::is_affine)>>
    : std::bool_constant<L::is_affine> {};

}  // namespace detail

template <class T, int Rank, class Layout = LayoutRight,
          class MemSpace = HostSpace>
class View {
  static_assert(Rank >= 1 && Rank <= 4, "pk::View supports ranks 1..4");
  static_assert(std::is_trivially_copyable_v<T>,
                "pk::View elements must be trivially copyable");

 public:
  using value_type = T;
  using layout_type = Layout;
  using memory_space = MemSpace;
  static constexpr int rank = Rank;
  static constexpr bool is_affine = detail::layout_is_affine<Layout>::value;

  View() = default;

  /// Allocating constructor. Extents are per-dimension element counts; the
  /// label is carried for diagnostics (mirrors Kokkos labels). Non-affine
  /// layouts may allocate more than size() elements (span(): e.g. AoSoA
  /// pads the last tile).
  template <class... Ext,
            class = std::enable_if_t<sizeof...(Ext) == std::size_t(Rank)>>
  explicit View(std::string label, Ext... exts)
      : label_(std::move(label)), ext_{static_cast<index_t>(exts)...} {
    for ([[maybe_unused]] auto e : ext_)
      assert(e >= 0 && "negative extent");
    init_map();
    T* raw = new T[static_cast<std::size_t>(span_)]();
    const auto bytes =
        static_cast<std::uint64_t>(span_) * static_cast<std::uint64_t>(sizeof(T));
    // The deleter fires the matching deallocate event when the last owner
    // releases the buffer (alloc/dealloc pairing is asserted in
    // tests/test_prof.cpp).
    data_ = std::shared_ptr<T[]>(
        raw, [label = label_, bytes](T* p) {
          prof::notify_deallocate(MemSpace::name(), label.c_str(), p, bytes);
          delete[] p;
        });
    prof::notify_allocate(MemSpace::name(), label_.c_str(), raw, bytes);
  }

  /// Unmanaged wrapper around caller-owned memory (Kokkos unmanaged views).
  /// For non-affine layouts the pointer must cover span() elements.
  template <class... Ext,
            class = std::enable_if_t<sizeof...(Ext) == std::size_t(Rank)>>
  View(T* ptr, Ext... exts)
      : label_("unmanaged"), ext_{static_cast<index_t>(exts)...} {
    init_map();
    data_ = std::shared_ptr<T[]>(ptr, [](T*) {});
  }

  [[nodiscard]] const std::string& label() const noexcept { return label_; }
  [[nodiscard]] index_t extent(int d) const noexcept {
    return ext_[static_cast<std::size_t>(d)];
  }
  [[nodiscard]] index_t stride(int d) const noexcept {
    return strides_[static_cast<std::size_t>(d)];
  }
  [[nodiscard]] index_t size() const noexcept { return size_; }
  [[nodiscard]] index_t size_bytes() const noexcept {
    return size_ * static_cast<index_t>(sizeof(T));
  }
  /// Allocated elements — equals size() for affine layouts, may exceed it
  /// for padded layouts (AoSoA rounds the element extent up to whole tiles).
  [[nodiscard]] index_t span() const noexcept { return span_; }
  [[nodiscard]] index_t span_bytes() const noexcept {
    return span_ * static_cast<index_t>(sizeof(T));
  }
  [[nodiscard]] T* data() const noexcept { return data_.get(); }
  [[nodiscard]] bool allocated() const noexcept {
    return static_cast<bool>(data_);
  }
  [[nodiscard]] long use_count() const noexcept { return data_.use_count(); }

  /// Shared-ownership handle (used by subview aliasing).
  [[nodiscard]] const std::shared_ptr<T[]>& data_ptr() const noexcept {
    return data_;
  }
  /// Replace the ownership handle without changing the data pointer
  /// (subview plumbing; the handle must alias the same allocation).
  void adopt_ownership(std::shared_ptr<T[]> sp) noexcept {
    data_ = std::move(sp);
  }

  template <class... Idx>
  PK_INLINE T& operator()(Idx... idx) const noexcept {
    static_assert(sizeof...(Idx) == std::size_t(Rank),
                  "index count must equal rank");
    return data_[static_cast<std::size_t>(offset(idx...))];
  }

  /// Flat element access independent of layout (for whole-array sweeps).
  PK_INLINE T& flat(index_t i) const noexcept {
    return data_[static_cast<std::size_t>(i)];
  }

  template <class... Idx>
  PK_INLINE index_t offset(Idx... idx) const noexcept {
    const std::array<index_t, Rank> ii{static_cast<index_t>(idx)...};
    for (int d = 0; d < Rank; ++d) {
      assert(ii[static_cast<std::size_t>(d)] >= 0 &&
             ii[static_cast<std::size_t>(d)] < ext_[static_cast<std::size_t>(d)] &&
             "pk::View index out of bounds");
    }
    if constexpr (is_affine) {
      index_t off = 0;
      for (int d = 0; d < Rank; ++d)
        off += ii[static_cast<std::size_t>(d)] *
               strides_[static_cast<std::size_t>(d)];
      return off;
    } else {
      return Layout::template offset<Rank>(ext_, ii);
    }
  }

 private:
  void init_map() noexcept {
    size_ = 1;
    for (auto e : ext_) size_ *= e;
    if constexpr (is_affine) {
      strides_ = Layout::template strides<Rank>(ext_);
      span_ = size_;
    } else {
      span_ = Layout::template span<Rank>(ext_);
    }
  }

  std::string label_;
  std::shared_ptr<T[]> data_;
  std::array<index_t, Rank> ext_{};
  std::array<index_t, Rank> strides_{};
  index_t size_ = 0;
  index_t span_ = 0;
};

/// Tag selecting a whole dimension in subview() (Kokkos::ALL).
struct AllTag {};
inline constexpr AllTag ALL{};

namespace detail {

/// Build a rank-1 view aliasing a contiguous slice of another view's
/// storage; the slice shares ownership so the parent stays alive.
template <class T, class L, class M, int RSrc>
View<T, 1, L, M> alias_slice(const View<T, RSrc, L, M>& parent,
                             index_t offset, index_t extent) {
  // Aliasing shared_ptr: same control block, shifted pointer.
  std::shared_ptr<T[]> sp(parent.data_ptr(), parent.data() + offset);
  View<T, 1, L, M> out(parent.data() + offset, extent);
  out.adopt_ownership(std::move(sp));
  return out;
}

}  // namespace detail

/// Contiguous rank-1 slice of a rank-2 view: row for LayoutRight.
/// The slice shares ownership with the parent.
template <class T, class M>
View<T, 1, LayoutRight, M> subview(const View<T, 2, LayoutRight, M>& v,
                                   index_t i, AllTag) {
  assert(i >= 0 && i < v.extent(0));
  return detail::alias_slice<T, LayoutRight, M>(v, i * v.stride(0),
                                                v.extent(1));
}

/// Contiguous rank-1 slice of a rank-2 view: column for LayoutLeft.
template <class T, class M>
View<T, 1, LayoutLeft, M> subview(const View<T, 2, LayoutLeft, M>& v,
                                  AllTag, index_t j) {
  assert(j >= 0 && j < v.extent(1));
  return detail::alias_slice<T, LayoutLeft, M>(v, j * v.stride(1),
                                               v.extent(0));
}

/// Innermost rank-1 slice of a rank-3 LayoutRight view.
template <class T, class M>
View<T, 1, LayoutRight, M> subview(const View<T, 3, LayoutRight, M>& v,
                                   index_t i, index_t j, AllTag) {
  assert(i >= 0 && i < v.extent(0) && j >= 0 && j < v.extent(1));
  return detail::alias_slice<T, LayoutRight, M>(
      v, i * v.stride(0) + j * v.stride(1), v.extent(2));
}

/// One whole tile of a rank-2 AoSoA view as a contiguous rank-1 slice of
/// extent(1) * TileW values — field-major (TileW lanes of field 0, then
/// field 1, ...). The slice shares ownership with the parent; this is the
/// hook that lets vector kernels hand a tile straight to simd loads.
template <int W, class T, class M>
View<T, 1, LayoutRight, M> tile_subview(const View<T, 2, LayoutAoSoA<W>, M>& v,
                                        index_t tile) {
  assert(tile >= 0 && tile < LayoutAoSoA<W>::tile_count(v.extent(0)));
  const index_t tile_elems = v.extent(1) * W;
  const index_t off = tile * tile_elems;
  std::shared_ptr<T[]> sp(v.data_ptr(), v.data() + off);
  View<T, 1, LayoutRight, M> out(v.data() + off, tile_elems);
  out.adopt_ownership(std::move(sp));
  return out;
}

/// deep_copy between views of identical shape (layouts may differ).
template <class T, int R, class LD, class MD, class LS, class MS>
void deep_copy(const View<T, R, LD, MD>& dst, const View<T, R, LS, MS>& src) {
  assert(dst.size() == src.size());
  for (int d = 0; d < R; ++d) assert(dst.extent(d) == src.extent(d));
  if constexpr (std::is_same_v<LD, LS>) {
    // span_bytes, not size_bytes: identical shape + layout means identical
    // padding too, and copying the padded tail keeps tombstoned pad lanes
    // (AoSoA) intact.
    assert(dst.span() == src.span());
    std::memcpy(dst.data(), src.data(),
                static_cast<std::size_t>(src.span_bytes()));
  } else {
    // Transposing copy: iterate logical indices.
    if constexpr (R == 1) {
      for (index_t i = 0; i < src.extent(0); ++i) dst(i) = src(i);
    } else if constexpr (R == 2) {
      for (index_t i = 0; i < src.extent(0); ++i)
        for (index_t j = 0; j < src.extent(1); ++j) dst(i, j) = src(i, j);
    } else if constexpr (R == 3) {
      for (index_t i = 0; i < src.extent(0); ++i)
        for (index_t j = 0; j < src.extent(1); ++j)
          for (index_t k = 0; k < src.extent(2); ++k)
            dst(i, j, k) = src(i, j, k);
    } else {
      for (index_t i = 0; i < src.extent(0); ++i)
        for (index_t j = 0; j < src.extent(1); ++j)
          for (index_t k = 0; k < src.extent(2); ++k)
            for (index_t l = 0; l < src.extent(3); ++l)
              dst(i, j, k, l) = src(i, j, k, l);
    }
  }
}

/// Fill a view with a constant (mirrors Kokkos::deep_copy(view, value)).
template <class T, int R, class L, class M>
void deep_copy(const View<T, R, L, M>& dst, const T& value) {
  T* p = dst.data();
  const index_t n = dst.size();
  for (index_t i = 0; i < n; ++i) p[static_cast<std::size_t>(i)] = value;
}

/// Allocate a same-shape host copy of a view (mirror + copy).
template <class T, int R, class L, class M>
View<T, R, L, HostSpace> create_mirror_copy(const View<T, R, L, M>& src) {
  View<T, R, L, HostSpace> dst = [&] {
    if constexpr (R == 1)
      return View<T, R, L, HostSpace>(src.label() + "_mirror", src.extent(0));
    else if constexpr (R == 2)
      return View<T, R, L, HostSpace>(src.label() + "_mirror", src.extent(0),
                                      src.extent(1));
    else if constexpr (R == 3)
      return View<T, R, L, HostSpace>(src.label() + "_mirror", src.extent(0),
                                      src.extent(1), src.extent(2));
    else
      return View<T, R, L, HostSpace>(src.label() + "_mirror", src.extent(0),
                                      src.extent(1), src.extent(2),
                                      src.extent(3));
  }();
  deep_copy(dst, src);
  return dst;
}

}  // namespace vpic::pk
