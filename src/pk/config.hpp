// pk/config.hpp
//
// Build-time configuration for the `pk` ("portable kernels") layer: the
// mini performance-portability framework this repository uses in place of
// Kokkos. The paper builds VPIC 2.0 on Kokkos 4.6; `pk` reproduces the
// subset of that programming model VPIC 2.0 relies on (Views with layout
// control, execution-space-tagged parallel dispatch, hierarchical
// parallelism, atomics, reducers) so the portability-overhead phenomena the
// paper studies are exercised by real abstractions rather than stubs.
#pragma once

#if defined(VPIC_ENABLE_OPENMP)
#include <omp.h>
#define PK_HAVE_OPENMP 1
#else
#define PK_HAVE_OPENMP 0
#endif

// Function annotation mirroring KOKKOS_INLINE_FUNCTION. Host-only build, so
// it reduces to inline, but keeping the annotation preserves the source
// shape of kernels written against the portability layer.
#define PK_INLINE inline

// Restrict qualifier for kernel pointer parameters.
#define PK_RESTRICT __restrict__

// Pragma helpers for the vectorization strategies (Section 3.1 / 4.2):
//  - PK_IVDEP marks loops the way Kokkos marks its internal loops
//    (#pragma ivdep semantics; GCC spells it "GCC ivdep").
//  - PK_OMP_SIMD is the "guided" strategy's forced-vectorization pragma.
#define PK_PRAGMA(x) _Pragma(#x)
#if defined(__clang__)
#define PK_IVDEP PK_PRAGMA(clang loop vectorize(enable))
#elif defined(__GNUC__)
#define PK_IVDEP PK_PRAGMA(GCC ivdep)
#else
#define PK_IVDEP
#endif

#if PK_HAVE_OPENMP
#define PK_OMP_SIMD PK_PRAGMA(omp simd)
#define PK_OMP_SIMD_REDUCTION(op, var) PK_PRAGMA(omp simd reduction(op : var))
#else
#define PK_OMP_SIMD PK_IVDEP
#define PK_OMP_SIMD_REDUCTION(op, var) PK_IVDEP
#endif

namespace vpic::pk {

/// Number of hardware threads the OpenMP host backend will use.
int concurrency() noexcept;

/// Runtime initialization (mirrors Kokkos::initialize; binds thread count).
/// Safe to call multiple times.
void initialize() noexcept;
void initialize(int num_threads) noexcept;

/// Mirrors Kokkos::finalize. No-op placeholder for API fidelity.
void finalize() noexcept;

/// Mirrors Kokkos::fence: blocks until every live asynchronous execution
/// instance (pk/instance.hpp) has drained, firing begin/end-fence events
/// through the prof hook table. Work dispatched without an instance is
/// synchronous, so with no instances live this returns immediately — but
/// it is no longer a no-op. Rethrows the first deferred exception captured
/// from asynchronous work (implemented in instance.cpp).
void fence();

/// RAII initialize/finalize pair (Kokkos::ScopeGuard).
class ScopeGuard {
 public:
  ScopeGuard() { initialize(); }
  explicit ScopeGuard(int num_threads) { initialize(num_threads); }
  ~ScopeGuard() { finalize(); }
  ScopeGuard(const ScopeGuard&) = delete;
  ScopeGuard& operator=(const ScopeGuard&) = delete;
};

}  // namespace vpic::pk
