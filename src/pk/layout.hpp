// pk/layout.hpp
//
// Memory layout policies for pk::View. Layout choice is one of the central
// levers the paper discusses (Section 2.3: Cabana/LLAMA-style layout
// control): LayoutRight (row-major, "C" order) is the natural CPU layout,
// LayoutLeft (column-major) is the coalescing-friendly GPU layout. Views are
// templated on the layout so kernels can be written once and instantiated
// per target, exactly as Kokkos does.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace vpic::pk {

using index_t = std::int64_t;

/// Row-major: last index is stride-1. Default host layout.
struct LayoutRight {
  static constexpr const char* name() noexcept { return "LayoutRight"; }

  template <int Rank>
  static std::array<index_t, Rank> strides(
      const std::array<index_t, Rank>& ext) noexcept {
    std::array<index_t, Rank> s{};
    index_t acc = 1;
    for (int d = Rank - 1; d >= 0; --d) {
      s[static_cast<std::size_t>(d)] = acc;
      acc *= ext[static_cast<std::size_t>(d)];
    }
    return s;
  }
};

/// Column-major: first index is stride-1. Default device layout (coalesced
/// when successive threads index the first dimension).
struct LayoutLeft {
  static constexpr const char* name() noexcept { return "LayoutLeft"; }

  template <int Rank>
  static std::array<index_t, Rank> strides(
      const std::array<index_t, Rank>& ext) noexcept {
    std::array<index_t, Rank> s{};
    index_t acc = 1;
    for (int d = 0; d < Rank; ++d) {
      s[static_cast<std::size_t>(d)] = acc;
      acc *= ext[static_cast<std::size_t>(d)];
    }
    return s;
  }
};

/// Array-of-Structures-of-Arrays (Cabana's AoSoA, LLAMA's blocked SoA):
/// rank-2 views only, indexed (element, field). Elements are grouped into
/// tiles of `TileW` consecutive elements; within a tile the layout is SoA
/// (field-major), so lane l of field f of tile t lives at
///
///   offset(i, f) = t * (nfields * TileW) + f * TileW + l,
///   t = i / TileW, l = i % TileW.
///
/// A tile of one field is `TileW` contiguous values — exactly one SIMD
/// register's worth when TileW matches vpic::simd's native width — so a
/// vector kernel loads SoA rows straight from memory with no register
/// transpose, while a whole element's fields still sit within one tile
/// (nfields * TileW values) for cache locality. The last tile is padded:
/// span() rounds the element extent up to a tile multiple.
///
/// This layout is not expressible as per-dimension strides (the element
/// index decomposes into tile and lane), so it provides the non-affine
/// mapping interface (`is_affine = false`, offset()/span()) that pk::View
/// detects instead of strides().
template <int TileW>
struct LayoutAoSoA {
  static_assert(TileW >= 2 && (TileW & (TileW - 1)) == 0,
                "AoSoA tile width must be a power-of-two >= 2");
  static constexpr bool is_affine = false;
  static constexpr index_t tile_width = TileW;

  static constexpr const char* name() noexcept { return "LayoutAoSoA"; }

  /// Number of (padded) tiles covering `elements`.
  static constexpr index_t tile_count(index_t elements) noexcept {
    return (elements + TileW - 1) / TileW;
  }

  /// Allocated elements: extents rounded up so every tile is whole.
  template <int Rank>
  static constexpr index_t span(const std::array<index_t, Rank>& ext) noexcept {
    static_assert(Rank == 2, "LayoutAoSoA is a rank-2 (element, field) map");
    return tile_count(ext[0]) * ext[1] * TileW;
  }

  template <int Rank>
  static constexpr index_t offset(const std::array<index_t, Rank>& ext,
                                  const std::array<index_t, Rank>& idx) noexcept {
    static_assert(Rank == 2, "LayoutAoSoA is a rank-2 (element, field) map");
    const index_t tile = idx[0] / TileW;
    const index_t lane = idx[0] % TileW;
    return tile * (ext[1] * TileW) + idx[1] * TileW + lane;
  }
};

}  // namespace vpic::pk
