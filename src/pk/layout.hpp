// pk/layout.hpp
//
// Memory layout policies for pk::View. Layout choice is one of the central
// levers the paper discusses (Section 2.3: Cabana/LLAMA-style layout
// control): LayoutRight (row-major, "C" order) is the natural CPU layout,
// LayoutLeft (column-major) is the coalescing-friendly GPU layout. Views are
// templated on the layout so kernels can be written once and instantiated
// per target, exactly as Kokkos does.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace vpic::pk {

using index_t = std::int64_t;

/// Row-major: last index is stride-1. Default host layout.
struct LayoutRight {
  static constexpr const char* name() noexcept { return "LayoutRight"; }

  template <int Rank>
  static std::array<index_t, Rank> strides(
      const std::array<index_t, Rank>& ext) noexcept {
    std::array<index_t, Rank> s{};
    index_t acc = 1;
    for (int d = Rank - 1; d >= 0; --d) {
      s[static_cast<std::size_t>(d)] = acc;
      acc *= ext[static_cast<std::size_t>(d)];
    }
    return s;
  }
};

/// Column-major: first index is stride-1. Default device layout (coalesced
/// when successive threads index the first dimension).
struct LayoutLeft {
  static constexpr const char* name() noexcept { return "LayoutLeft"; }

  template <int Rank>
  static std::array<index_t, Rank> strides(
      const std::array<index_t, Rank>& ext) noexcept {
    std::array<index_t, Rank> s{};
    index_t acc = 1;
    for (int d = 0; d < Rank; ++d) {
      s[static_cast<std::size_t>(d)] = acc;
      acc *= ext[static_cast<std::size_t>(d)];
    }
    return s;
  }
};

}  // namespace vpic::pk
