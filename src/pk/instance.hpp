// pk/instance.hpp
//
// Asynchronous execution-space instances, modeled on Kokkos' execution
// space instances (and, below them, CUDA streams): an Instance<ExecSpace>
// is an independent FIFO work queue backed by a dedicated worker thread.
// Work submitted through the instance-taking overloads of
// parallel_for/parallel_reduce/parallel_scan/deep_copy returns to the
// caller immediately and executes in submission order on the instance's
// worker; two different instances execute concurrently with each other and
// with the submitting thread.
//
//   pk::Instance<> a, b;
//   pk::parallel_for(a, "halo_pack", n, pack);     // returns immediately
//   pk::parallel_for(b, "interior", m, push);      // runs concurrently
//   a.fence();                                     // wait for the pack
//   pk::fence();                                   // wait for everything
//
// Semantics mirrored from Kokkos:
//   * FIFO per instance — tasks on one instance never reorder or overlap.
//   * fence() waits for everything previously submitted to that instance;
//     the free pk::fence() waits on every live instance (config.hpp).
//   * Instances are cheap shareable handles (shared_ptr semantics); the
//     last handle fences the queue and joins the worker on destruction.
//   * parallel_reduce/scan results and everything captured by reference
//     must stay alive (and must not be read) until the instance is fenced.
//
// Exceptions thrown by asynchronous work are captured and rethrown from
// the next fence() on that instance (or from the global pk::fence()),
// like asynchronous CUDA errors surfacing at the next synchronization.
//
// Observability: every asynchronous submission fires an async_dispatch
// event with the instance id and queue depth, the worker fires the usual
// begin/end_parallel events when the task actually runs, and fences fire
// begin/end_fence — so a trace shows both the submit timeline and the
// per-instance execution timeline (docs/ASYNC.md, docs/PROFILING.md).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "pk/parallel.hpp"
#include "pk/prof_hooks.hpp"
#include "pk/view.hpp"

namespace vpic::pk {

namespace detail {

/// Type-erased FIFO worker queue behind Instance<ExecSpace>. Non-template
/// so the queue/worker machinery lives in instance.cpp; the typed dispatch
/// wrappers below enqueue closures.
class InstanceImpl {
 public:
  explicit InstanceImpl(const char* space_name);
  ~InstanceImpl();
  InstanceImpl(const InstanceImpl&) = delete;
  InstanceImpl& operator=(const InstanceImpl&) = delete;

  /// Append a task; returns the queue depth including the new task (the
  /// async_dispatch event's occupancy sample).
  std::uint64_t enqueue(std::function<void()> task);

  /// Block until every previously enqueued task has finished. Rethrows the
  /// first exception thrown by an asynchronous task since the last fence.
  /// `what` labels the begin_fence prof event.
  void fence(const char* what);

  /// Tasks enqueued but not yet finished (includes the running one).
  [[nodiscard]] std::size_t pending() const;

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] const char* space_name() const noexcept {
    return space_name_;
  }

 private:
  void worker_loop();

  const char* space_name_;
  const std::uint32_t id_;
  mutable std::mutex mu_;
  std::condition_variable cv_work_;   // worker waits for tasks / stop
  std::condition_variable cv_idle_;   // fencers wait for an empty queue
  std::deque<std::function<void()>> queue_;
  bool running_ = false;  // worker is inside a task
  bool stop_ = false;
  std::exception_ptr error_;  // first deferred task failure
  std::thread worker_;        // last: joined before members die
};

/// Create a registered impl (global-fence registry; see config.cpp notes
/// in instance.cpp).
std::shared_ptr<InstanceImpl> create_instance(const char* space_name);

}  // namespace detail

template <class ExecSpace = DefaultExecSpace>
class Instance {
 public:
  using execution_space = ExecSpace;

  Instance() : impl_(detail::create_instance(ExecSpace::name())) {}

  /// Wait for all work previously submitted to this instance; rethrows
  /// deferred task exceptions (Kokkos/CUDA-style deferred error surfacing).
  void fence() const { impl_->fence("pk::Instance::fence"); }

  /// Stable nonzero id (0 is reserved for the global fence scope).
  [[nodiscard]] std::uint32_t id() const noexcept { return impl_->id(); }

  /// Queue occupancy snapshot (racy by nature; for tests/telemetry).
  [[nodiscard]] std::size_t pending() const { return impl_->pending(); }

  [[nodiscard]] detail::InstanceImpl& impl() const noexcept {
    return *impl_;
  }

 private:
  std::shared_ptr<detail::InstanceImpl> impl_;
};

// ----------------------------------------------------------------------
// Instance-taking dispatch overloads. Each enqueues the exact synchronous
// dispatch path (same instrumentation, same backend loops) onto the
// instance's worker and returns immediately. Kernel `name` must be a
// string literal or otherwise outlive the fence, as in Kokkos.
// ----------------------------------------------------------------------

template <template <class> class Policy, class ExecSpace, class Functor>
void parallel_for(const Instance<ExecSpace>& inst, const char* name,
                  const Policy<ExecSpace>& p, Functor f) {
  detail::InstanceImpl& q = inst.impl();
  const std::uint64_t depth = q.enqueue([name, p, f = std::move(f)] {
    const std::uint64_t kid = prof::begin_parallel(
        "parallel_for", name, ExecSpace::name(), detail::policy_work(p));
    detail::for_impl(p, f);
    prof::end_parallel("parallel_for", kid);
  });
  prof::notify_async_dispatch("parallel_for", name, q.id(), depth);
}

template <template <class> class Policy, class ExecSpace, class Functor>
void parallel_for(const Instance<ExecSpace>& inst, const Policy<ExecSpace>& p,
                  const Functor& f) {
  parallel_for(inst, nullptr, p, f);
}

/// Convenience range form on the instance's space.
template <class ExecSpace, class Functor>
void parallel_for(const Instance<ExecSpace>& inst, const char* name,
                  index_t n, const Functor& f) {
  parallel_for(inst, name, RangePolicy<ExecSpace>(n), f);
}

template <class ExecSpace, class Functor>
void parallel_for(const Instance<ExecSpace>& inst, index_t n,
                  const Functor& f) {
  parallel_for(inst, nullptr, RangePolicy<ExecSpace>(n), f);
}

/// Asynchronous reduce: `result` is written on the worker thread — do not
/// read it (or let it go out of scope) before fencing the instance.
template <class Reducer, class ExecSpace, class Functor>
void parallel_reduce(const Instance<ExecSpace>& inst, const char* name,
                     const RangePolicy<ExecSpace>& p, Functor f,
                     typename Reducer::value_type& result) {
  detail::InstanceImpl& q = inst.impl();
  const std::uint64_t depth =
      q.enqueue([name, p, f = std::move(f), &result] {
        const std::uint64_t kid = prof::begin_parallel(
            "parallel_reduce", name, ExecSpace::name(),
            detail::policy_work(p));
        detail::reduce_impl<Reducer>(p, f, result);
        prof::end_parallel("parallel_reduce", kid);
      });
  prof::notify_async_dispatch("parallel_reduce", name, q.id(), depth);
}

template <class ExecSpace, class Functor, class T>
void parallel_reduce(const Instance<ExecSpace>& inst, const char* name,
                     const RangePolicy<ExecSpace>& p, const Functor& f,
                     T& result) {
  parallel_reduce<Sum<T>>(inst, name, p, f, result);
}

template <class ExecSpace, class Functor, class T>
void parallel_reduce(const Instance<ExecSpace>& inst, const char* name,
                     index_t n, const Functor& f, T& result) {
  parallel_reduce<Sum<T>>(inst, name, RangePolicy<ExecSpace>(n), f, result);
}

/// Asynchronous exclusive scan; same result-lifetime rule as reduce.
template <class ExecSpace, class Functor, class T>
void parallel_scan(const Instance<ExecSpace>& inst, const char* name,
                   const RangePolicy<ExecSpace>& p, Functor f, T& total) {
  detail::InstanceImpl& q = inst.impl();
  const std::uint64_t depth =
      q.enqueue([name, p, f = std::move(f), &total] {
        const std::uint64_t kid = prof::begin_parallel(
            "parallel_scan", name, ExecSpace::name(),
            detail::policy_work(p));
        detail::scan_impl(p, f, total);
        prof::end_parallel("parallel_scan", kid);
      });
  prof::notify_async_dispatch("parallel_scan", name, q.id(), depth);
}

/// Asynchronous view-to-view copy on the instance (Kokkos'
/// deep_copy(exec, dst, src)). Both views are handle copies, so the
/// underlying buffers stay alive until the copy runs.
template <class ExecSpace, class T, int R, class LD, class MD, class LS,
          class MS>
void deep_copy(const Instance<ExecSpace>& inst, const View<T, R, LD, MD>& dst,
               const View<T, R, LS, MS>& src) {
  detail::InstanceImpl& q = inst.impl();
  const std::uint64_t depth =
      q.enqueue([dst, src] { deep_copy(dst, src); });
  prof::notify_async_dispatch("deep_copy", dst.label().c_str(), q.id(),
                              depth);
}

/// Asynchronous fill.
template <class ExecSpace, class T, int R, class L, class M>
void deep_copy(const Instance<ExecSpace>& inst, const View<T, R, L, M>& dst,
               const T& value) {
  detail::InstanceImpl& q = inst.impl();
  const std::uint64_t depth =
      q.enqueue([dst, value] { deep_copy(dst, value); });
  prof::notify_async_dispatch("deep_copy", dst.label().c_str(), q.id(),
                              depth);
}

/// Run an arbitrary host task on the instance's queue (the step-graph
/// scheduler submits phase bodies through this).
template <class ExecSpace>
void async(const Instance<ExecSpace>& inst, const char* name,
           std::function<void()> task) {
  detail::InstanceImpl& q = inst.impl();
  const std::uint64_t depth = q.enqueue(std::move(task));
  prof::notify_async_dispatch("async", name, q.id(), depth);
}

}  // namespace vpic::pk
