#include "pk/instance.hpp"

#include <atomic>
#include <vector>

#include "pk/config.hpp"

namespace vpic::pk {

namespace detail {

namespace {

std::uint32_t next_instance_id() {
  // 0 is reserved for the global fence scope.
  static std::atomic<std::uint32_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// Registry of live instances for the global pk::fence(). Weak pointers:
/// fence_all pins each instance for the duration of its fence without
/// keeping dead queues alive, and destruction never blocks on the
/// registry lock while a fence is in progress.
struct Registry {
  std::mutex mu;
  std::vector<std::weak_ptr<InstanceImpl>> instances;
};

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

InstanceImpl::InstanceImpl(const char* space_name)
    : space_name_(space_name), id_(next_instance_id()) {
  worker_ = std::thread([this] { worker_loop(); });
}

InstanceImpl::~InstanceImpl() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  worker_.join();
  // A deferred error with no fence between the failing task and
  // destruction is dropped, like an unchecked asynchronous CUDA error.
}

std::uint64_t InstanceImpl::enqueue(std::function<void()> task) {
  std::uint64_t depth;
  {
    std::lock_guard lk(mu_);
    queue_.push_back(std::move(task));
    depth = queue_.size() + (running_ ? 1 : 0);
  }
  cv_work_.notify_one();
  return depth;
}

void InstanceImpl::fence(const char* what) {
  const std::uint64_t handle = prof::begin_fence(what, id_);
  std::unique_lock lk(mu_);
  cv_idle_.wait(lk, [this] { return queue_.empty() && !running_; });
  std::exception_ptr err = std::exchange(error_, nullptr);
  lk.unlock();
  prof::end_fence(handle);
  if (err) std::rethrow_exception(err);
}

std::size_t InstanceImpl::pending() const {
  std::lock_guard lk(mu_);
  return queue_.size() + (running_ ? 1 : 0);
}

void InstanceImpl::worker_loop() {
  std::unique_lock lk(mu_);
  for (;;) {
    cv_work_.wait(lk, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stop_ set and drained
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    running_ = true;
    lk.unlock();
    try {
      task();
    } catch (...) {
      lk.lock();
      if (!error_) error_ = std::current_exception();
      lk.unlock();
    }
    lk.lock();
    running_ = false;
    if (queue_.empty()) cv_idle_.notify_all();
  }
}

std::shared_ptr<InstanceImpl> create_instance(const char* space_name) {
  auto impl = std::make_shared<InstanceImpl>(space_name);
  Registry& r = registry();
  std::lock_guard lk(r.mu);
  // Compact expired slots while we hold the lock anyway.
  std::erase_if(r.instances,
                [](const std::weak_ptr<InstanceImpl>& w) {
                  return w.expired();
                });
  r.instances.push_back(impl);
  return impl;
}

}  // namespace detail

void fence() {
  const std::uint64_t handle = prof::begin_fence("pk::fence", 0);
  // Snapshot under the lock, fence outside it: a fence can take arbitrary
  // time and must not block instance creation/destruction.
  std::vector<std::shared_ptr<detail::InstanceImpl>> live;
  {
    detail::Registry& r = detail::registry();
    std::lock_guard lk(r.mu);
    live.reserve(r.instances.size());
    for (const auto& w : r.instances)
      if (auto s = w.lock()) live.push_back(std::move(s));
  }
  std::exception_ptr first;
  for (const auto& inst : live) {
    try {
      inst->fence("pk::fence");
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  prof::end_fence(handle);
  if (first) std::rethrow_exception(first);
}

}  // namespace vpic::pk
