#include "kernels/rajaperf_kernels.hpp"

#include <cmath>

#include "simd/simd.hpp"

namespace vpic::kernels {

namespace {
constexpr int kW = simd::native_width<double>();
using D = simd::simd<double, kW>;
}  // namespace

void axpy(Strategy s, double a, const pk::View<double, 1>& x,
          pk::View<double, 1>& y) {
  const index_t n = x.size();
  const double* PK_RESTRICT xp = x.data();
  double* PK_RESTRICT yp = y.data();
  switch (s) {
    case Strategy::Auto:
      pk::parallel_for(n, [=](index_t i) { yp[i] += a * xp[i]; });
      break;
    case Strategy::Guided: {
#if PK_HAVE_OPENMP
#pragma omp parallel for simd schedule(static)
#endif
      for (index_t i = 0; i < n; ++i) yp[i] += a * xp[i];
      break;
    }
    case Strategy::Manual: {
      const index_t nv = n / kW * kW;
      const D av(a);
      pk::parallel_for(nv / kW, [=](index_t b) {
        const index_t i = b * kW;
        D yv = D::load(yp + i);
        yv += av * D::load(xp + i);
        yv.store(yp + i);
      });
      for (index_t i = nv; i < n; ++i) yp[i] += a * xp[i];
      break;
    }
  }
}

void planckian(Strategy s, const pk::View<double, 1>& x,
               const pk::View<double, 1>& v, const pk::View<double, 1>& u,
               pk::View<double, 1>& y) {
  const index_t n = x.size();
  const double* PK_RESTRICT xp = x.data();
  const double* PK_RESTRICT vp = v.data();
  const double* PK_RESTRICT up = u.data();
  double* PK_RESTRICT yp = y.data();
  switch (s) {
    case Strategy::Auto:
      pk::parallel_for(n, [=](index_t i) {
        yp[i] = up[i] / (std::exp(xp[i] / vp[i]) - 1.0);
      });
      break;
    case Strategy::Guided: {
#if PK_HAVE_OPENMP
#pragma omp parallel for simd schedule(static)
#endif
      for (index_t i = 0; i < n; ++i)
        yp[i] = up[i] / (std::exp(xp[i] / vp[i]) - 1.0);
      break;
    }
    case Strategy::Manual: {
      const index_t nv = n / kW * kW;
      const D one(1.0);
      pk::parallel_for(nv / kW, [=](index_t b) {
        const index_t i = b * kW;
        const D xv = D::load(xp + i);
        const D vv = D::load(vp + i);
        const D uv = D::load(up + i);
        const D e = simd::exp(xv / vv);
        (uv / (e - one)).store(yp + i);
      });
      for (index_t i = nv; i < n; ++i)
        yp[i] = up[i] / (std::exp(xp[i] / vp[i]) - 1.0);
      break;
    }
  }
}

double pi_reduce(Strategy s, index_t n) {
  const double dx = 1.0 / static_cast<double>(n);
  switch (s) {
    case Strategy::Auto: {
      double pi = 0;
      pk::parallel_reduce(
          n,
          [=](index_t i, double& acc) {
            const double t = (static_cast<double>(i) + 0.5) * dx;
            acc += 4.0 / (1.0 + t * t);
          },
          pi);
      return pi * dx;
    }
    case Strategy::Guided: {
      double pi = 0;
#if PK_HAVE_OPENMP
#pragma omp parallel for simd reduction(+ : pi) schedule(static)
#endif
      for (index_t i = 0; i < n; ++i) {
        const double t = (static_cast<double>(i) + 0.5) * dx;
        pi += 4.0 / (1.0 + t * t);
      }
      return pi * dx;
    }
    case Strategy::Manual: {
      const index_t nb = n / kW;
      const D dxv(dx);
      const D four(4.0), one(1.0), half(0.5);
      // Per-thread vector accumulators via parallel_reduce over blocks.
      struct VecSum {
        using value_type = double;
        static constexpr double identity() noexcept { return 0.0; }
        static void join(double& a, const double& b) noexcept { a += b; }
      };
      double pi = 0;
      pk::parallel_reduce<VecSum>(
          pk::RangePolicy<>(nb),
          [=](index_t b, double& acc) {
            const D i0(static_cast<double>(b * kW));
            const D t = (i0 + D::iota() + half) * dxv;
            acc += (four / (one + t * t)).reduce_sum();
          },
          pi);
      for (index_t i = nb * kW; i < n; ++i) {
        const double t = (static_cast<double>(i) + 0.5) * dx;
        pi += 4.0 / (1.0 + t * t);
      }
      return pi * dx;
    }
  }
  return 0;
}

}  // namespace vpic::kernels
