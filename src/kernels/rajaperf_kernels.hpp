// kernels/rajaperf_kernels.hpp
//
// The three microbenchmark kernels of the vectorization study (Section
// 5.3), derived from the RAJAPerf suite, each implemented with the three
// portable strategies:
//
//   AXPY       y[i] += a * x[i]                 — trivially vectorizable
//   PLANCKIAN  y[i] = u[i] / (exp(x[i]/v[i]) - 1) — libm exp blocks
//                                                  auto-vectorization
//   PI_REDUCE  pi = sum 4/(1+((i+1/2)/n)^2) / n  — reduction with division
//
// Strategy mapping (Section 4.2): auto = portability-layer loop with
// internal ivdep; guided = #pragma omp simd (+ kernel splitting where it
// helps); manual = the portable SIMD library, including its vector exp.
#pragma once

#include "pk/pk.hpp"

namespace vpic::kernels {

using pk::index_t;

enum class Strategy : std::uint8_t { Auto, Guided, Manual };

inline const char* to_string(Strategy s) noexcept {
  switch (s) {
    case Strategy::Auto:
      return "auto";
    case Strategy::Guided:
      return "guided";
    case Strategy::Manual:
      return "manual";
  }
  return "?";
}

// y += a*x
void axpy(Strategy s, double a, const pk::View<double, 1>& x,
          pk::View<double, 1>& y);

// y = u / (exp(x/v) - 1)
void planckian(Strategy s, const pk::View<double, 1>& x,
               const pk::View<double, 1>& v, const pk::View<double, 1>& u,
               pk::View<double, 1>& y);

// midpoint-rule quadrature of 4/(1+t^2) on [0,1] (= pi)
double pi_reduce(Strategy s, index_t n);

}  // namespace vpic::kernels
