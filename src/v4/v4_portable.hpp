// v4/v4_portable.hpp
//
// Portable (scalar-array) implementation of the VPIC 1.2-style "ad hoc"
// SIMD classes. VPIC 1.2 ships one such file per ISA (v4_sse, v4_avx2,
// v4_avx512, v4_neon, v4_altivec, ...), each re-implementing the identical
// API with that ISA's intrinsics — the duplication quantified in Figure 1.
// This file is the always-available fallback and the reference semantics
// for the intrinsic versions.
#pragma once

#include <cmath>

namespace vpic::v4 {

class v4float_portable {
 public:
  static constexpr int width = 4;
  static constexpr const char* isa = "portable";

  v4float_portable() : f_{0, 0, 0, 0} {}
  explicit v4float_portable(float a) : f_{a, a, a, a} {}
  v4float_portable(float a, float b, float c, float d) : f_{a, b, c, d} {}

  static v4float_portable load(const float* p) {
    return {p[0], p[1], p[2], p[3]};
  }
  void store(float* p) const {
    p[0] = f_[0];
    p[1] = f_[1];
    p[2] = f_[2];
    p[3] = f_[3];
  }

  float operator[](int i) const { return f_[i]; }
  void set(int i, float v) { f_[i] = v; }

  friend v4float_portable operator+(v4float_portable a, v4float_portable b) {
    return {a.f_[0] + b.f_[0], a.f_[1] + b.f_[1], a.f_[2] + b.f_[2],
            a.f_[3] + b.f_[3]};
  }
  friend v4float_portable operator-(v4float_portable a, v4float_portable b) {
    return {a.f_[0] - b.f_[0], a.f_[1] - b.f_[1], a.f_[2] - b.f_[2],
            a.f_[3] - b.f_[3]};
  }
  friend v4float_portable operator*(v4float_portable a, v4float_portable b) {
    return {a.f_[0] * b.f_[0], a.f_[1] * b.f_[1], a.f_[2] * b.f_[2],
            a.f_[3] * b.f_[3]};
  }
  friend v4float_portable operator/(v4float_portable a, v4float_portable b) {
    return {a.f_[0] / b.f_[0], a.f_[1] / b.f_[1], a.f_[2] / b.f_[2],
            a.f_[3] / b.f_[3]};
  }

  static v4float_portable fma(v4float_portable a, v4float_portable b,
                              v4float_portable c) {
    return {std::fma(a.f_[0], b.f_[0], c.f_[0]),
            std::fma(a.f_[1], b.f_[1], c.f_[1]),
            std::fma(a.f_[2], b.f_[2], c.f_[2]),
            std::fma(a.f_[3], b.f_[3], c.f_[3])};
  }

  static v4float_portable sqrt(v4float_portable a) {
    return {std::sqrt(a.f_[0]), std::sqrt(a.f_[1]), std::sqrt(a.f_[2]),
            std::sqrt(a.f_[3])};
  }
  static v4float_portable rsqrt(v4float_portable a) {
    return {1.0f / std::sqrt(a.f_[0]), 1.0f / std::sqrt(a.f_[1]),
            1.0f / std::sqrt(a.f_[2]), 1.0f / std::sqrt(a.f_[3])};
  }

  float hsum() const { return f_[0] + f_[1] + f_[2] + f_[3]; }

  /// 4x4 transpose across four registers.
  static void transpose(v4float_portable& r0, v4float_portable& r1,
                        v4float_portable& r2, v4float_portable& r3) {
    const v4float_portable c0{r0.f_[0], r1.f_[0], r2.f_[0], r3.f_[0]};
    const v4float_portable c1{r0.f_[1], r1.f_[1], r2.f_[1], r3.f_[1]};
    const v4float_portable c2{r0.f_[2], r1.f_[2], r2.f_[2], r3.f_[2]};
    const v4float_portable c3{r0.f_[3], r1.f_[3], r2.f_[3], r3.f_[3]};
    r0 = c0;
    r1 = c1;
    r2 = c2;
    r3 = c3;
  }

 private:
  float f_[4];
};

}  // namespace vpic::v4
